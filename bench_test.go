// Benchmarks regenerating the shape of every table and figure in the
// paper's evaluation (§V), plus ablations over the design choices called
// out in DESIGN.md. Each benchmark runs the relevant pipelines on a reduced
// synthetic dataset and reports the figure's key quantity via ReportMetric
// (speedup factors, reduction factors, imbalance ratios), so `go test
// -bench=.` doubles as a quick shape check; `cmd/experiments -run all`
// produces the full-size tables recorded in EXPERIMENTS.md.
package dedukt_test

import (
	"testing"

	"dedukt"

	"dedukt/internal/cluster"
	"dedukt/internal/dna"
	"dedukt/internal/expt"
	"dedukt/internal/genome"
	"dedukt/internal/kcount"
	"dedukt/internal/minimizer"
	"dedukt/internal/pipeline"
)

// benchScale keeps benchmark iterations fast; the experiment CLI runs at 1.0.
const benchScale = 0.05

func datasetReads(b *testing.B, name string, scale float64) []dedukt.Read {
	b.Helper()
	d, err := genome.DatasetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	reads, err := d.Reads(scale)
	if err != nil {
		b.Fatal(err)
	}
	return reads
}

func mustRun(b *testing.B, cfg pipeline.Config, reads []dedukt.Read) *pipeline.Result {
	b.Helper()
	res, err := pipeline.Run(cfg, reads)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// paperGPU/paperCPU mirror the experiment harness' scaled layouts.
func paperGPU(nodes int) cluster.Layout {
	l := cluster.SummitGPU(nodes)
	l.Net.LatencyUs = 0
	g := *l.GPU
	g.LaunchOverheadUs = 0
	g.LinkLatencyUs = 0
	l.GPU = &g
	return l
}

func paperCPU(nodes int) cluster.Layout {
	l := cluster.SummitCPU(nodes)
	l.Net.LatencyUs = 0
	return l
}

// BenchmarkFig3Breakdown regenerates Fig. 3: CPU vs GPU k-mer counters at
// equal node count on H. sapien 54X; reports the compute acceleration and
// the exchange share of the GPU total.
func BenchmarkFig3Breakdown(b *testing.B) {
	reads := datasetReads(b, "H. sapien 54X", benchScale)
	cpuCfg := pipeline.Default(paperCPU(8), pipeline.KmerMode)
	cpuCfg.CPULoadLift = 1e4
	gpuCfg := pipeline.Default(paperGPU(8), pipeline.KmerMode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpuRes := mustRun(b, cpuCfg, reads)
		gpuRes := mustRun(b, gpuCfg, reads)
		computeCPU := (cpuRes.Modeled.Parse + cpuRes.Modeled.Count).Seconds()
		computeGPU := (gpuRes.Modeled.Parse + gpuRes.Modeled.Count).Seconds()
		b.ReportMetric(computeCPU/computeGPU, "compute-speedup")
		b.ReportMetric(100*gpuRes.Modeled.Exchange.Seconds()/gpuRes.Modeled.Total().Seconds(), "exchange-share-%")
	}
}

// BenchmarkFig6Speedup regenerates Figs. 6a/6b: overall GPU-over-CPU
// speedups in the three GPU configurations.
func BenchmarkFig6Speedup(b *testing.B) {
	for _, tc := range []struct {
		name    string
		dataset string
		nodes   int
	}{
		{"a_16nodes_ecoli", "E. coli 30X", 4},
		{"b_64nodes_hsapien", "H. sapien 54X", 8},
	} {
		b.Run(tc.name, func(b *testing.B) {
			reads := datasetReads(b, tc.dataset, benchScale)
			cpuCfg := pipeline.Default(paperCPU(tc.nodes), pipeline.KmerMode)
			cpuCfg.CPULoadLift = 1e4
			kmerCfg := pipeline.Default(paperGPU(tc.nodes), pipeline.KmerMode)
			smCfg := pipeline.Default(paperGPU(tc.nodes), pipeline.SupermerMode)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cpuRes := mustRun(b, cpuCfg, reads)
				kmerRes := mustRun(b, kmerCfg, reads)
				smRes := mustRun(b, smCfg, reads)
				b.ReportMetric(cpuRes.Modeled.Total().Seconds()/kmerRes.Modeled.Total().Seconds(), "speedup-kmer")
				b.ReportMetric(cpuRes.Modeled.Total().Seconds()/smRes.Modeled.Total().Seconds(), "speedup-supermer")
			}
		})
	}
}

// BenchmarkFig7 regenerates Fig. 7: GPU k-mer vs supermer phase breakdown;
// reports the supermer exchange saving and the supermer counting overhead.
func BenchmarkFig7(b *testing.B) {
	reads := datasetReads(b, "C. elegans 40X", benchScale)
	kmerCfg := pipeline.Default(paperGPU(8), pipeline.KmerMode)
	smCfg := pipeline.Default(paperGPU(8), pipeline.SupermerMode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kmerRes := mustRun(b, kmerCfg, reads)
		smRes := mustRun(b, smCfg, reads)
		b.ReportMetric(kmerRes.Modeled.Exchange.Seconds()/smRes.Modeled.Exchange.Seconds(), "exchange-saving")
		b.ReportMetric(smRes.Modeled.Count.Seconds()/kmerRes.Modeled.Count.Seconds(), "count-overhead")
	}
}

// BenchmarkFig8Alltoallv regenerates Fig. 8: the Alltoallv-only speedup of
// supermers (m=7 and m=9) over k-mers.
func BenchmarkFig8Alltoallv(b *testing.B) {
	reads := datasetReads(b, "V. vulnificus 30X", benchScale)
	kmerCfg := pipeline.Default(paperGPU(4), pipeline.KmerMode)
	sm7 := pipeline.Default(paperGPU(4), pipeline.SupermerMode)
	sm9 := pipeline.Default(paperGPU(4), pipeline.SupermerMode)
	sm9.M = 9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kmerRes := mustRun(b, kmerCfg, reads)
		b.ReportMetric(kmerRes.AlltoallvTime.Seconds()/mustRun(b, sm7, reads).AlltoallvTime.Seconds(), "speedup-m7")
		b.ReportMetric(kmerRes.AlltoallvTime.Seconds()/mustRun(b, sm9, reads).AlltoallvTime.Seconds(), "speedup-m9")
	}
}

// BenchmarkFig9Scaling regenerates Fig. 9: k-mer insertion rate at two node
// counts; reports the parallel efficiency of the step.
func BenchmarkFig9Scaling(b *testing.B) {
	reads := datasetReads(b, "C. elegans 40X", benchScale)
	small := pipeline.Default(paperGPU(4), pipeline.KmerMode)
	big := pipeline.Default(paperGPU(16), pipeline.KmerMode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rSmall := mustRun(b, small, reads)
		rBig := mustRun(b, big, reads)
		b.ReportMetric(rBig.InsertionRate()/rSmall.InsertionRate(), "rate-gain-4x-nodes")
	}
}

// BenchmarkTable2Volume regenerates Table II: items exchanged per mode.
func BenchmarkTable2Volume(b *testing.B) {
	reads := datasetReads(b, "E. coli 30X", benchScale)
	kmerCfg := pipeline.Default(paperGPU(4), pipeline.KmerMode)
	sm7 := pipeline.Default(paperGPU(4), pipeline.SupermerMode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kmerRes := mustRun(b, kmerCfg, reads)
		smRes := mustRun(b, sm7, reads)
		b.ReportMetric(float64(kmerRes.ItemsExchanged)/float64(smRes.ItemsExchanged), "item-reduction")
		b.ReportMetric(float64(kmerRes.PayloadBytes)/float64(smRes.PayloadBytes), "byte-reduction")
	}
}

// BenchmarkTable3Imbalance regenerates Table III: the per-partition load
// imbalance of k-mer hashing vs minimizer partitioning.
func BenchmarkTable3Imbalance(b *testing.B) {
	reads := datasetReads(b, "H. sapien 54X", benchScale)
	kmerCfg := pipeline.Default(paperGPU(8), pipeline.KmerMode)
	smCfg := pipeline.Default(paperGPU(8), pipeline.SupermerMode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(mustRun(b, kmerCfg, reads).LoadImbalance(), "imbalance-kmer")
		b.ReportMetric(mustRun(b, smCfg, reads).LoadImbalance(), "imbalance-supermer")
	}
}

// BenchmarkOrderingAblation compares the three minimizer orderings'
// partition skew (DESIGN.md §5).
func BenchmarkOrderingAblation(b *testing.B) {
	reads := datasetReads(b, "C. elegans 40X", benchScale)
	for _, name := range []string{"value", "kmc2", "hashed"} {
		b.Run(name, func(b *testing.B) {
			ord, err := minimizer.ByName(name, &dna.Random)
			if err != nil {
				b.Fatal(err)
			}
			cfg := pipeline.Default(paperGPU(4), pipeline.SupermerMode)
			cfg.Ord = ord
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := mustRun(b, cfg, reads)
				b.ReportMetric(res.LoadImbalance(), "imbalance")
				b.ReportMetric(float64(res.ItemsExchanged), "supermers")
			}
		})
	}
}

// BenchmarkWindowAblation sweeps the supermer window (DESIGN.md §5):
// longer windows ship fewer bytes but cap at the sequential supermer length.
func BenchmarkWindowAblation(b *testing.B) {
	reads := datasetReads(b, "C. elegans 40X", benchScale)
	for _, w := range []int{7, 15, 31} {
		b.Run(map[int]string{7: "w7", 15: "w15", 31: "w31"}[w], func(b *testing.B) {
			cfg := pipeline.Default(paperGPU(4), pipeline.SupermerMode)
			cfg.Window = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := mustRun(b, cfg, reads)
				b.ReportMetric(float64(res.PayloadBytes), "payload-bytes")
			}
		})
	}
}

// BenchmarkProbingAblation compares linear vs quadratic probing in the
// counting kernel (§III-B.3 mentions both).
func BenchmarkProbingAblation(b *testing.B) {
	reads := datasetReads(b, "E. coli 30X", benchScale)
	for _, p := range []kcount.Probing{kcount.Linear, kcount.Quadratic} {
		b.Run(p.String(), func(b *testing.B) {
			cfg := pipeline.Default(paperGPU(4), pipeline.KmerMode)
			cfg.Probing = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := mustRun(b, cfg, reads)
				b.ReportMetric(res.Modeled.Count.Seconds()*1e6, "count-us")
			}
		})
	}
}

// BenchmarkGPUDirectAblation compares host-staged vs GPUDirect exchange
// (§III-B.2 supports both).
func BenchmarkGPUDirectAblation(b *testing.B) {
	reads := datasetReads(b, "E. coli 30X", benchScale)
	staged := pipeline.Default(paperGPU(4), pipeline.KmerMode)
	direct := staged
	direct.GPUDirect = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sRes := mustRun(b, staged, reads)
		dRes := mustRun(b, direct, reads)
		b.ReportMetric(sRes.Modeled.Exchange.Seconds()/dRes.Modeled.Exchange.Seconds(), "staging-overhead")
	}
}

// BenchmarkExperimentHarness exercises one full experiment driver end to
// end at a tiny scale (the CLI path used for EXPERIMENTS.md).
func BenchmarkExperimentHarness(b *testing.B) {
	e, err := expt.ByID("table2")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(expt.Options{Out: discard{}, Scale: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
