// Command kserve serves counted k-mer spectra (KCD databases, see
// cmd/kmertools and dedukt -okcd) over HTTP: sharded by the pipeline's
// exchange owner hash, with micro-batched shard workers, a hot-k-mer LRU,
// and queue-depth admission control.
//
//	dedukt -okcd counts.kcd && kserve -kcd counts.kcd -addr :8080
//	kserve -kcd a.kcd -kcd b.kcd      # union of compatible databases
//
//	curl localhost:8080/kmer/ACGTACGTACGTACGTA
//	curl -X POST localhost:8080/batch -d '{"kmers":["ACGTACGTACGTACGTA"]}'
//	curl localhost:8080/histogram
//	curl localhost:8080/topn?n=10
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM drains gracefully: in-flight requests finish, queued
// lookups are answered, then the process exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"dedukt/internal/dna"
	"dedukt/internal/kserve"
	"dedukt/internal/obs"
	"dedukt/internal/stats"
)

// pathList collects repeated -kcd flags.
type pathList []string

func (p *pathList) String() string     { return strings.Join(*p, ",") }
func (p *pathList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("kserve: ")
	var kcds pathList
	flag.Var(&kcds, "kcd", "KCD database to serve (repeatable; multiple files are unioned)")
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		shards      = flag.Int("shards", 0, "serving shards (0 = GOMAXPROCS)")
		maxBatch    = flag.Int("max-batch", 64, "max lookups per shard micro-batch")
		maxWait     = flag.Duration("max-wait", 200*time.Microsecond, "max time a shard holds an open micro-batch (negative = serve immediately)")
		queue       = flag.Int("queue", 1024, "per-shard queue depth before 429s")
		cache       = flag.Int("cache", 4096, "hot-k-mer LRU size in entries (negative disables)")
		topN        = flag.Int("topn", 64, "top-N horizon precomputed for /topn")
		encoding    = flag.String("encoding", "random", "base encoding the KCD was packed under: random (CLI default) or lex")
		shard       = flag.String("shard", "", "cluster shard to serve as IDX/OF (e.g. 0/2): keep only keys owned by that slice of the key space; empty serves everything")
		replicaID   = flag.String("replica-id", "", "replica name reported in /healthz (default host-pid)")
		drainGrace  = flag.Duration("drain-grace", 0, "handoff window between SIGTERM (healthz goes 503 draining) and shutdown, so a router can move traffic off this replica first")
		slow        = flag.Duration("slow", 0, "TESTING ONLY: delay every /kmer and /batch request by this much (straggler injection for hedging tests)")
		traceSample = flag.Int("trace-sample", 0, "enable request tracing: root a span for 1-in-N headerless requests; incoming sampled traceparents are always continued (0 disables rooting; tracing stays on if -trace-out is set)")
		traceOut    = flag.String("trace-out", "", "write the recorded span buffer to this file on exit (tracing also serves /debug/trace live)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off by default; e.g. 127.0.0.1:6060)")
	)
	flag.Parse()
	kcds = append(kcds, flag.Args()...)
	if len(kcds) == 0 {
		log.Fatal("at least one -kcd database is required")
	}

	enc := &dna.Random
	switch *encoding {
	case "random":
	case "lex":
		enc = &dna.Lexicographic
	default:
		log.Fatalf("unknown encoding %q", *encoding)
	}

	db, err := kserve.LoadDatabases(kcds)
	if err != nil {
		log.Fatal(err)
	}
	shardIdx, shardCount := 0, 1
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &shardIdx, &shardCount); err != nil {
			log.Fatalf("bad -shard %q, want IDX/OF like 0/2", *shard)
		}
		if db, err = kserve.FilterShard(db, shardIdx, shardCount); err != nil {
			log.Fatal(err)
		}
	}
	if *replicaID == "" {
		host, _ := os.Hostname()
		*replicaID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var tracer *obs.Tracer
	if *traceSample > 0 || *traceOut != "" {
		tracer = obs.NewTracer(*replicaID, *traceSample, 0)
	}
	obs.ServePprof(*pprofAddr, log.Printf)
	svc, err := kserve.New(db, kserve.Options{
		Shards:     *shards,
		MaxBatch:   *maxBatch,
		MaxWait:    *maxWait,
		QueueDepth: *queue,
		CacheSize:  *cache,
		TopN:       *topN,
		Enc:        enc,
		ReplicaID:  *replicaID,
		ShardIndex: shardIdx,
		ShardCount: shardCount,
		DrainGrace: *drainGrace,
		Slow:       *slow,
		Tracer:     tracer,
	})
	if err != nil {
		log.Fatal(err)
	}
	obs.RegisterBuildInfo(svc.Registry(), "kserve")
	log.Printf("replica %s serving %s distinct %d-mers (%s, cluster shard %d/%d) from %d file(s) across %d shards",
		*replicaID, stats.Count(svc.Distinct()), svc.K(), canonicalLabel(svc.Canonical()),
		shardIdx, shardCount, len(kcds), svc.Metrics().Shards)
	serveErr := kserve.ServeUntilInterrupt(*addr, svc, log.Printf)
	if tracer != nil && *traceOut != "" {
		// Written after the drain so the dump holds the whole run (trace
		// dumps survive a serve error too — that's when they matter most).
		if err := tracer.WriteSpansFile(*traceOut); err != nil {
			log.Printf("trace-out: %v", err)
		} else {
			log.Printf("wrote %d spans to %s", tracer.Len(), *traceOut)
		}
	}
	if serveErr != nil {
		log.Fatal(serveErr)
	}
}

func canonicalLabel(c bool) string {
	if c {
		return "canonical"
	}
	return "as counted"
}
