// Command dedukt is the distributed k-mer counter CLI: it runs the full
// simulated pipeline (parse & process → exchange → count) over a FASTQ/FASTA
// file or a named synthetic dataset and reports the counted spectrum
// together with the Summit-projected phase breakdown.
//
// Examples:
//
//	dedukt -in reads.fastq -k 17 -mode supermer -m 7 -nodes 16
//	dedukt -dataset "E. coli 30X" -scale 0.5 -mode kmer -engine cpu
//	dedukt -in reads.fasta.gz -k 21 -canonical -top 10
//	dedukt -in a.fastq.gz,b.fastq.gz -stream -mem-budget 64M
//	dedukt -in big.fastq -stream -ckpt-dir ckpt -ckpt-rounds 4
//	dedukt -in big.fastq -resume ckpt
//	dedukt -fault-seed 1 -fault-drop 0.05
//
// -in accepts a comma-separated file list; gzip inputs are detected by
// their magic bytes, so any mix of plain and compressed files works
// regardless of suffix. With -stream the input is never materialized:
// ranks pull bounded chunks on demand and the live working set stays
// under -mem-budget however large the dataset is.
//
// Without -in or -dataset, a small synthetic dataset is used, so
// fault-injection demos run standalone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"dedukt/internal/cluster"
	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/fault"
	"dedukt/internal/genome"
	"dedukt/internal/kcount"
	"dedukt/internal/kserve"
	"dedukt/internal/minimizer"
	"dedukt/internal/obs"
	"dedukt/internal/pipeline"
	recov "dedukt/internal/recover"
	"dedukt/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dedukt: ")
	var (
		inPath    = flag.String("in", "", "comma-separated input FASTQ/FASTA paths (gzip detected by magic bytes); mutually exclusive with -dataset")
		dataset   = flag.String("dataset", "", `synthetic Table I dataset, e.g. "E. coli 30X"`)
		scale     = flag.Float64("scale", 1.0, "synthetic dataset scale factor")
		k         = flag.Int("k", 17, "k-mer length (1..32)")
		m         = flag.Int("m", 7, "minimizer length (supermer mode)")
		window    = flag.Int("window", 15, "supermer window in k-mer positions (supermer mode)")
		mode      = flag.String("mode", "supermer", "exchange mode: kmer or supermer")
		engine    = flag.String("engine", "gpu", "compute engine: gpu or cpu")
		nodes     = flag.Int("nodes", 4, "number of Summit nodes to simulate")
		ordering  = flag.String("ordering", "value", "minimizer ordering: value, kmc2 or hashed")
		encoding  = flag.String("encoding", "random", "base encoding: random (paper) or lex")
		canonical = flag.Bool("canonical", false, "count canonical k-mers (kmer mode only)")
		gpudirect = flag.Bool("gpudirect", false, "model GPUDirect transfers (skip host staging)")
		exchange  = flag.String("exchange", "flat", "exchange strategy: flat (direct P×P Alltoallv) or hier (intra-node gather → leader Alltoallv → intra-node scatter)")
		overlap   = flag.Bool("overlap", false, "overlap each round's exchange with the next round's parse (nonblocking collectives; needs -round-bases for multi-round input)")
		top       = flag.Int("top", 5, "print the N most frequent k-mers")
		histMax   = flag.Int("hist", 10, "print histogram classes up to this frequency")
		asJSON    = flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
		trimQ     = flag.Int("trimq", 0, "quality-trim read ends below this phred score before counting (0 = off)")
		roundB    = flag.Int("round-bases", 0, "cap the bases a rank processes per round, forcing multi-round operation (0 = one round)")
		stream    = flag.Bool("stream", false, "stream -in files through the pipeline without preloading them (bounded memory; requires -in)")
		memBudget = flag.String("mem-budget", "", "streaming working-set budget, e.g. 64M or 2G (default 256M; implies multi-round ingestion)")
		spillDir  = flag.String("spill-dir", "", "count out-of-core: spill received items into minimizer-partitioned bins under this directory (pass 1), then count one bin at a time (pass 2); bit-identical to in-memory counting")
		spillBins = flag.Int("spill-bins", 0, "disk bins per rank when -spill-dir is set (default 32)")
		ckptDir   = flag.String("ckpt-dir", "", "checkpoint the run into this directory every -ckpt-rounds rounds (requires -stream); enables -resume and shrink recovery")
		ckptEvery = flag.Int("ckpt-rounds", 4, "rounds between checkpoints when -ckpt-dir is set")
		noShrink  = flag.Bool("no-shrink", false, "disable in-place shrink recovery after a rank death (the run fails instead; resume it with -resume)")
		resume    = flag.String("resume", "", "resume an interrupted run from this checkpoint directory (requires the same -in/-k/... configuration)")
		gpuStats  = flag.Bool("gpustats", false, "print GPU kernel efficiency metrics (GPU engine only)")
		outKCD    = flag.String("okcd", "", "write the counted k-mers to this KCD database (see cmd/kmertools)")
		serve     = flag.String("serve", "", "after counting, serve the spectrum over HTTP on this address (see cmd/kserve; blocks until SIGINT)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off by default; e.g. 127.0.0.1:6060)")

		runReport  = flag.Bool("report", false, "print the per-round observability report (imbalance trajectory, slowest-rank attribution, fault tallies)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto or chrome://tracing)")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics in Prometheus text format to this file")

		faultSeed     = flag.Uint64("fault-seed", 0, "fault schedule seed (same seed replays the same faults)")
		faultKill     = flag.Float64("fault-kill", 0, "per-(rank,round) probability a rank dies at round start")
		faultDelay    = flag.Float64("fault-delay", 0, "per-(rank,round) probability of a straggler stall")
		faultDelayFor = flag.Duration("fault-delayfor", 0, "straggler stall length (default 2ms)")
		faultDrop     = flag.Float64("fault-drop", 0, "per-payload probability it vanishes in flight")
		faultCorrupt  = flag.Float64("fault-corrupt", 0, "per-payload probability one bit flips in flight")
		maxRetries    = flag.Int("max-retries", 0, "exchange retry budget per round (0 = default of 2, -1 = none)")
		deadline      = flag.Duration("deadline", 0, "per-collective deadline before peers give up on a stalled rank (0 = none)")

		faultKillRank  = flag.Int("fault-kill-rank", -1, "deterministically kill this rank at -fault-kill-round (both must be set; exercises checkpoint/resume and shrink recovery)")
		faultKillRound = flag.Int("fault-kill-round", -1, "round at which -fault-kill-rank dies")
	)
	flag.Parse()

	if *resume != "" {
		// -resume continues a checkpointed streaming run; it implies the
		// stream path and reuses its flags.
		*stream = true
		*ckptDir = *resume
	}

	var reads []fastq.Record
	if *stream {
		// Streaming pulls records on demand inside the pipeline; nothing
		// is preloaded here (that is the point).
		if *inPath == "" {
			log.Fatal("-stream requires -in (synthetic datasets are generated in memory already)")
		}
		if *dataset != "" {
			log.Fatal("-stream and -dataset are mutually exclusive")
		}
	} else {
		var err error
		reads, err = loadReads(*inPath, *dataset, *scale)
		if err != nil {
			log.Fatal(err)
		}
		if *trimQ > 0 {
			before := len(reads)
			reads = fastq.TrimAll(reads, *trimQ, *k)
			log.Printf("quality trim q<%d: kept %d of %d reads", *trimQ, len(reads), before)
		}
	}

	enc := &dna.Random
	if *encoding == "lex" {
		enc = &dna.Lexicographic
	} else if *encoding != "random" {
		log.Fatalf("unknown encoding %q", *encoding)
	}
	ord, err := minimizer.ByName(*ordering, enc)
	if err != nil {
		log.Fatal(err)
	}
	exch, err := pipeline.ParseExchange(*exchange)
	if err != nil {
		log.Fatal(err)
	}

	var layout cluster.Layout
	switch *engine {
	case "gpu":
		layout = cluster.SummitGPU(*nodes)
	case "cpu":
		layout = cluster.SummitCPU(*nodes)
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	if (*faultKillRank >= 0) != (*faultKillRound >= 0) {
		log.Fatal("-fault-kill-rank and -fault-kill-round must be set together")
	}
	if *ckptDir != "" && !*stream {
		log.Fatal("-ckpt-dir requires -stream (checkpointing rides the streaming cursor protocol)")
	}
	if *spillDir != "" && (*outKCD != "" || *serve != "") {
		log.Fatal("-spill-dir cannot be combined with -okcd or -serve (they keep the full per-rank tables spilling exists to avoid)")
	}
	if *spillBins != 0 && *spillDir == "" {
		log.Fatal("-spill-bins requires -spill-dir")
	}
	var ckpt pipeline.CkptConfig
	if *ckptDir != "" {
		paths := splitPaths(*inPath)
		inputs, ierr := statInputs(paths)
		if ierr != nil {
			log.Fatal(ierr)
		}
		ckpt = pipeline.CkptConfig{
			Dir:      *ckptDir,
			Every:    *ckptEvery,
			NoShrink: *noShrink,
			Inputs:   inputs,
			// Reopen rebuilds the exact source stack of the original run
			// (files → optional quality trim) fast-forwarded to a
			// checkpoint cursor. Cursors address the raw stream, so the
			// trim wrapper goes on after seeking.
			Reopen: func(cur fastq.Cursor) (fastq.Source, error) {
				s, err := fastq.OpenStream(paths...)
				if err != nil {
					return nil, err
				}
				if err := s.SeekCursor(cur); err != nil {
					s.Close()
					return nil, err
				}
				if *trimQ > 0 {
					return fastq.NewTrimSource(s, *trimQ, *k), nil
				}
				return s, nil
			},
		}
	}

	cfg := pipeline.Config{
		Layout:     layout,
		Enc:        enc,
		K:          *k,
		M:          *m,
		Window:     *window,
		Ord:        ord,
		Canonical:  *canonical,
		Exchange:   exch,
		GPUDirect:  *gpudirect,
		Overlap:    *overlap,
		KeepTables: *outKCD != "" || *serve != "",
		Fault: fault.Config{
			Seed:     *faultSeed,
			Kill:     *faultKill,
			Delay:    *faultDelay,
			DelayFor: *faultDelayFor,
			Drop:     *faultDrop,
			Corrupt:  *faultCorrupt,
		},
		Ckpt:             ckpt,
		Spill:            pipeline.SpillConfig{Dir: *spillDir, Bins: *spillBins},
		RoundBases:       *roundB,
		MaxRetries:       *maxRetries,
		ExchangeDeadline: *deadline,
	}
	if *faultKillRank >= 0 {
		cfg.Fault.FatalKill = true
		cfg.Fault.FatalRank = *faultKillRank
		cfg.Fault.FatalRound = *faultKillRound
	}
	obs.ServePprof(*pprofAddr, log.Printf)
	var rec *obs.Recorder
	if *runReport || *traceOut != "" || *metricsOut != "" || *serve != "" {
		rec = obs.NewRecorder(layout.Ranks())
		cfg.Obs = rec
		obs.RegisterBuildInfo(rec.Registry(), "dedukt")
	}
	switch *mode {
	case "kmer":
		cfg.Mode = pipeline.KmerMode
	case "supermer":
		cfg.Mode = pipeline.SupermerMode
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	var res *pipeline.Result
	switch {
	case *resume != "":
		budget, perr := parseSize(*memBudget)
		if perr != nil {
			log.Fatalf("-mem-budget: %v", perr)
		}
		cfg.MemBudgetBytes = budget
		// The checkpoint's Reopen hook supplies the fast-forwarded
		// source; nothing to open here.
		res, err = pipeline.ResumeStream(cfg)
	case *stream:
		budget, perr := parseSize(*memBudget)
		if perr != nil {
			log.Fatalf("-mem-budget: %v", perr)
		}
		cfg.MemBudgetBytes = budget
		in, serr := fastq.OpenStream(splitPaths(*inPath)...)
		if serr != nil {
			log.Fatal(serr)
		}
		var src fastq.Source = in
		if *trimQ > 0 {
			src = fastq.NewTrimSource(in, *trimQ, *k)
		}
		res, err = pipeline.RunStream(cfg, src)
		in.Close()
	default:
		res, err = pipeline.Run(cfg, reads)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		if err := writeObsArtifacts(rec, *traceOut, *metricsOut); err != nil {
			log.Fatal(err)
		}
	}
	// An incomplete spectrum (retry budget exhausted, no checkpoint to
	// recover from) is a degraded result: report it, but exit nonzero so
	// scripts never mistake a lower bound for the real counts.
	exitCode := 0
	if res.Incomplete {
		exitCode = 3
	}
	if *asJSON {
		if err := reportJSON(os.Stdout, cfg, res, *top); err != nil {
			log.Fatal(err)
		}
		os.Exit(exitCode)
	}
	report(os.Stdout, cfg, res, *top, *histMax)
	if *gpuStats && res.GPU {
		reportGPUStats(os.Stdout, res)
	}
	if *runReport {
		fmt.Fprintln(os.Stdout)
		if err := rec.BuildReport().WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *outKCD != "" {
		path := *outKCD
		if res.Incomplete {
			// Never let a degraded spectrum masquerade as a database a
			// downstream tool would trust.
			path += ".partial"
			log.Printf("run incomplete: writing %s instead of %s", path, *outKCD)
		}
		if err := writeKCD(path, cfg, res); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
	if *serve != "" {
		if res.Incomplete {
			log.Print("run incomplete: refusing to serve a partial spectrum")
			os.Exit(exitCode)
		}
		if err := serveResult(*serve, cfg, res, rec); err != nil {
			log.Fatal(err)
		}
	}
	os.Exit(exitCode)
}

// writeObsArtifacts saves the recorded trace and metrics exposition to the
// paths given by -trace-out and -metrics-out (empty paths are skipped).
func writeObsArtifacts(rec *obs.Recorder, tracePath, metricsPath string) error {
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("wrote trace %s", tracePath)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := rec.Registry().WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("wrote metrics %s", metricsPath)
	}
	return nil
}

// serveResult is the count→serve handoff: the freshly counted spectrum is
// handed to the kserve layer without touching disk and served until
// SIGINT/SIGTERM. The pipeline's recorder registry is shared with the
// service, so GET /metrics exposes counting and serving metrics together.
func serveResult(addr string, cfg pipeline.Config, res *pipeline.Result, rec *obs.Recorder) error {
	merged := res.MergedTable()
	if merged == nil {
		return fmt.Errorf("serve: no tables retained")
	}
	var flags uint32
	if cfg.Canonical {
		flags |= kcount.FlagCanonical
	}
	svc, err := kserve.New(kcount.FromTable(merged, cfg.K, flags), kserve.Options{Enc: cfg.Enc, Registry: rec.Registry()})
	if err != nil {
		return err
	}
	log.Printf("serving %s distinct %d-mers", stats.Count(svc.Distinct()), svc.K())
	return kserve.ServeUntilInterrupt(addr, svc, log.Printf)
}

// writeKCD merges the per-rank tables and saves a KCD database.
func writeKCD(path string, cfg pipeline.Config, res *pipeline.Result) error {
	merged := res.MergedTable()
	if merged == nil {
		return fmt.Errorf("no tables retained")
	}
	var flags uint32
	if cfg.Canonical {
		flags |= kcount.FlagCanonical
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := kcount.FromTable(merged, cfg.K, flags).Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reportGPUStats prints the kernel-level efficiency metrics aggregated
// across ranks and rounds.
func reportGPUStats(w io.Writer, res *pipeline.Result) {
	fmt.Fprintf(w, "\nGPU kernel statistics (all ranks):\n")
	t := stats.NewTable("kernel", "threads", "compute ops", "mem transactions", "atomics", "divergence", "coalescing")
	p := res.GPUParse
	c := res.GPUCount
	t.Row("parse", p.Threads, stats.Count(p.ComputeOps), stats.Count(p.MemTransactions),
		stats.Count(p.AtomicOps), fmt.Sprintf("%.2f×", p.DivergenceWaste()),
		fmt.Sprintf("%.2f", p.CoalescingEfficiency()))
	t.Row("count", c.Threads, stats.Count(c.ComputeOps), stats.Count(c.MemTransactions),
		stats.Count(c.AtomicOps), fmt.Sprintf("%.2f×", c.DivergenceWaste()),
		fmt.Sprintf("%.2f", c.CoalescingEfficiency()))
	fmt.Fprint(w, t)
}

// jsonReport is the machine-readable result schema of -json.
type jsonReport struct {
	Run        string            `json:"run"`
	K          int               `json:"k"`
	M          int               `json:"m,omitempty"`
	Window     int               `json:"window,omitempty"`
	Mode       string            `json:"mode"`
	Exchange   string            `json:"exchange"`
	Nodes      int               `json:"nodes"`
	Ranks      int               `json:"ranks"`
	Rounds     int               `json:"rounds"`
	ParseSec   float64           `json:"parse_sec"`
	ExchSec    float64           `json:"exchange_sec"`
	CountSec   float64           `json:"count_sec"`
	TotalSec   float64           `json:"total_sec"`
	Overlap    bool              `json:"overlap,omitempty"`
	OverlapSec float64           `json:"overlap_total_sec,omitempty"`
	Items      uint64            `json:"items_exchanged"`
	Payload    uint64            `json:"payload_bytes"`
	Fabric     uint64            `json:"fabric_bytes"`
	Total      uint64            `json:"total_kmers"`
	Distinct   uint64            `json:"distinct_kmers"`
	Imbalance  float64           `json:"load_imbalance"`
	Streamed   bool              `json:"streamed,omitempty"`
	MemBudget  int64             `json:"mem_budget_bytes,omitempty"`
	Spilled    bool              `json:"spilled,omitempty"`
	SpillBins  int               `json:"spill_bins,omitempty"`
	InputReads uint64            `json:"input_reads,omitempty"`
	InputBases uint64            `json:"input_bases,omitempty"`
	Histogram  map[uint32]uint64 `json:"histogram"`
	Top        []jsonKmer        `json:"top_kmers,omitempty"`
	Build      obs.BuildInfo     `json:"build"`

	// Incomplete is always present: automation checks it to decide whether
	// the spectrum is exact or a degraded lower bound.
	Incomplete  bool        `json:"incomplete"`
	Resumed     bool        `json:"resumed,omitempty"`
	Recovered   bool        `json:"recovered,omitempty"`
	DeadRanks   []int       `json:"dead_ranks,omitempty"`
	Checkpoints int         `json:"checkpoints,omitempty"`
	Faults      *jsonFaults `json:"faults,omitempty"`
}

// jsonFaults is the run-wide fault and recovery tally (omitted when zero).
type jsonFaults struct {
	Killed    uint64 `json:"killed"`
	Delayed   uint64 `json:"delayed"`
	Dropped   uint64 `json:"dropped"`
	Corrupted uint64 `json:"corrupted"`
	BadFrames uint64 `json:"bad_frames"`
	Retries   uint64 `json:"retries"`
	Discarded uint64 `json:"discarded_items"`
}

type jsonKmer struct {
	Kmer  string `json:"kmer"`
	Count uint32 `json:"count"`
}

func reportJSON(w io.Writer, cfg pipeline.Config, res *pipeline.Result, top int) error {
	rep := jsonReport{
		Run: res.Name, K: cfg.K, Mode: res.Mode.String(),
		Exchange: cfg.Exchange.String(),
		Nodes:    res.Nodes, Ranks: res.Ranks, Rounds: res.Rounds,
		ParseSec: res.Modeled.Parse.Seconds(), ExchSec: res.Modeled.Exchange.Seconds(),
		CountSec: res.Modeled.Count.Seconds(), TotalSec: res.Modeled.Total().Seconds(),
		Items: res.ItemsExchanged, Payload: res.PayloadBytes, Fabric: res.Volume.FabricBytes,
		Total: res.TotalKmers, Distinct: res.DistinctKmers,
		Imbalance: res.LoadImbalance(), Histogram: res.Histogram.Counts,
		Build: obs.ReadBuild(),
	}
	if cfg.Mode == pipeline.SupermerMode {
		rep.M, rep.Window = cfg.M, cfg.Window
	}
	if res.Overlap {
		rep.Overlap = true
		rep.OverlapSec = res.ModeledTotal().Seconds()
	}
	if res.Streamed {
		rep.Streamed = true
		rep.MemBudget = res.MemBudget
	}
	if res.Spilled {
		rep.Spilled = true
		rep.SpillBins = res.SpillBins
	}
	rep.InputReads, rep.InputBases = res.InputReads, res.InputBases
	rep.Incomplete = res.Incomplete
	rep.Resumed = res.Resumed
	rep.Recovered = res.Recovered
	rep.DeadRanks = res.DeadRanks
	rep.Checkpoints = res.Checkpoints
	if tf := res.TotalFaults(); tf.Total()+tf.BadFrames+tf.Retries+tf.Discarded > 0 || res.Incomplete {
		rep.Faults = &jsonFaults{
			Killed: tf.Killed, Delayed: tf.Delayed, Dropped: tf.Dropped, Corrupted: tf.Corrupted,
			BadFrames: tf.BadFrames, Retries: tf.Retries, Discarded: tf.Discarded,
		}
	}
	if top > len(res.TopKmers) {
		top = len(res.TopKmers)
	}
	for _, kv := range res.TopKmers[:top] {
		rep.Top = append(rep.Top, jsonKmer{dna.Kmer(kv.Key).String(cfg.Enc, cfg.K), kv.Count})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func loadReads(inPath, dataset string, scale float64) ([]fastq.Record, error) {
	switch {
	case inPath != "" && dataset != "":
		return nil, fmt.Errorf("-in and -dataset are mutually exclusive")
	case inPath != "":
		s, err := fastq.OpenStream(splitPaths(inPath)...)
		if err != nil {
			return nil, err
		}
		defer s.Close()
		var out []fastq.Record
		for {
			rec, err := s.Next()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			out = append(out, rec.Clone())
		}
	case dataset != "":
		d, err := genome.DatasetByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Reads(scale)
	default:
		// Standalone demo: a small synthetic input so runs like
		// `dedukt -fault-seed 1 -fault-drop 0.05` need no files.
		d, err := genome.DatasetByName("E. coli 30X")
		if err != nil {
			return nil, err
		}
		log.Printf("no -in or -dataset given: using synthetic %q at scale 0.05", d.Name)
		return d.Reads(0.05)
	}
}

// statInputs records the checkpoint fingerprint of the input file list:
// each path with its current size. A resume under a renamed, grown, or
// truncated input fails the manifest fingerprint check instead of
// silently counting the wrong data.
func statInputs(paths []string) ([]recov.InputFile, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("checkpointing requires -in input files")
	}
	inputs := make([]recov.InputFile, len(paths))
	for i, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		inputs[i] = recov.InputFile{Path: p, Size: fi.Size()}
	}
	return inputs, nil
}

// splitPaths splits the comma-separated -in value into individual file
// paths, dropping empty segments so trailing commas are harmless.
func splitPaths(in string) []string {
	var paths []string
	for _, p := range strings.Split(in, ",") {
		if p = strings.TrimSpace(p); p != "" {
			paths = append(paths, p)
		}
	}
	return paths
}

// parseSize parses a byte size like "64M", "2G", "512k" or a plain byte
// count. An empty string means "use the default" and parses to 0.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q (use a byte count or a K/M/G suffix)", s)
	}
	return n * mult, nil
}

func report(w io.Writer, cfg pipeline.Config, res *pipeline.Result, top, histMax int) {
	if res.Incomplete {
		fmt.Fprintf(w, "*** INCOMPLETE RUN: counts below are a lower bound, not the spectrum ***\n\n")
	}
	fmt.Fprintf(w, "dedukt run: %s, k=%d", res.Name, cfg.K)
	if cfg.Mode == pipeline.SupermerMode {
		fmt.Fprintf(w, ", m=%d, window=%d, ordering=%s", cfg.M, cfg.Window, cfg.Ord.Name())
	}
	fmt.Fprintf(w, ", %d nodes × %d ranks, %s exchange\n\n", res.Nodes, res.Ranks/res.Nodes, cfg.Exchange)

	t := stats.NewTable("phase", "Summit-projected time")
	t.Row("parse & process", res.Modeled.Parse)
	t.Row("exchange", res.Modeled.Exchange)
	t.Row("count", res.Modeled.Count)
	t.Row("total (excl. I/O)", res.Modeled.Total())
	if res.Overlap {
		t.Row("total (overlapped)", res.ModeledTotal())
	}
	fmt.Fprint(w, t)

	fmt.Fprintf(w, "\nexchanged: %s %ss (%s payload, %s over the fabric)\n",
		stats.Count(res.ItemsExchanged), res.Mode, stats.Bytes(res.PayloadBytes), stats.Bytes(res.Volume.FabricBytes))
	fmt.Fprintf(w, "counted:   %s k-mer instances, %s distinct, load imbalance %.2f\n",
		stats.Count(res.TotalKmers), stats.Count(res.DistinctKmers), res.LoadImbalance())
	if res.Streamed {
		fmt.Fprintf(w, "streamed:  %s reads (%s bases) in %d bounded rounds under a %s working-set budget\n",
			stats.Count(res.InputReads), stats.Count(res.InputBases), res.Rounds, stats.Bytes(uint64(res.MemBudget)))
	}
	if res.Spilled {
		fmt.Fprintf(w, "spilled:   counted out-of-core in two passes over %d disk bins per rank\n", res.SpillBins)
	}
	if res.Checkpoints > 0 {
		fmt.Fprintf(w, "checkpoint: %d rounds persisted\n", res.Checkpoints)
	}
	if res.Resumed {
		fmt.Fprintf(w, "resumed:   continued from a checkpoint; counts are exact\n")
	}
	if res.Recovered {
		fmt.Fprintf(w, "shrunk:    rank(s) %v died; survivors replayed and absorbed their shares — counts are exact\n", res.DeadRanks)
	}

	if tf := res.TotalFaults(); tf.Total()+tf.BadFrames+tf.Retries+tf.Discarded > 0 || res.Incomplete {
		fmt.Fprintf(w, "faults:    injected %d (%d killed, %d delayed, %d dropped, %d corrupted); observed %d bad frames, %d retries\n",
			tf.Total(), tf.Killed, tf.Delayed, tf.Dropped, tf.Corrupted, tf.BadFrames, tf.Retries)
		if res.Incomplete {
			fmt.Fprintf(w, "INCOMPLETE: retry budget exhausted, %d items discarded — counts are a lower bound\n", tf.Discarded)
		} else if tf.Retries > 0 {
			fmt.Fprintf(w, "recovered: every faulted round verified after retry; counts are exact\n")
		} else {
			fmt.Fprintf(w, "recovered: no payload damage; counts are exact\n")
		}
	}

	if len(res.Histogram.Counts) > 0 && histMax > 0 {
		fmt.Fprintf(w, "\nk-mer frequency spectrum (f: #distinct):\n")
		for _, f := range res.Histogram.Frequencies() {
			if int(f) > histMax {
				fmt.Fprintf(w, "  ...  (%d more classes)\n", remainingClasses(res.Histogram, histMax))
				break
			}
			fmt.Fprintf(w, "  %3d: %d\n", f, res.Histogram.Counts[f])
		}
	}
	if top > 0 && len(res.TopKmers) > 0 {
		fmt.Fprintf(w, "\nmost frequent k-mers:\n")
		n := top
		if n > len(res.TopKmers) {
			n = len(res.TopKmers)
		}
		for _, kv := range res.TopKmers[:n] {
			fmt.Fprintf(w, "  %s  %d\n", dna.Kmer(kv.Key).String(cfg.Enc, cfg.K), kv.Count)
		}
	}
}

func remainingClasses(h kcount.Histogram, histMax int) int {
	n := 0
	for f := range h.Counts {
		if int(f) > histMax {
			n++
		}
	}
	return n
}
