// Command kload drives a kproxy (or a bare kserve replica — both speak
// GET /kmer and POST /batch) with a reproducible synthetic workload and
// prints a JSON latency/throughput summary.
//
//	kload -target http://127.0.0.1:9090 -n 100000 -batch 64 -c 16
//	kload -target http://127.0.0.1:9090 -n 50000 -qps 20000   # open loop
//
// Keys are sampled from a fixed population under a zipfian (default) or
// uniform mix; k is learned from the target's /healthz. With -qps the
// harness runs open-loop: every request has a scheduled arrival time and
// latency is measured from that schedule, so server stalls show up as the
// queueing delay they caused instead of being silently absorbed
// (coordinated omission). The summary counts request-level failures and
// per-key degradation markers separately, matching kproxy's partial-batch
// contract.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"dedukt/internal/kcluster"
	"dedukt/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kload: ")
	var (
		target = flag.String("target", "http://127.0.0.1:9090", "base URL of the kproxy (or kserve) under load")
		n      = flag.Int("n", 10000, "measured requests")
		warmup = flag.Int("warmup", 0, "untimed warmup requests (fills caches and the hedge histogram)")
		batch  = flag.Int("batch", 1, "lookups per request (1 = GET /kmer, >1 = POST /batch)")
		conc   = flag.Int("c", 8, "concurrent workers")
		qps    = flag.Float64("qps", 0, "open-loop offered rate in lookups/sec (0 = closed loop)")
		keys   = flag.Int("keys", 65536, "sampled key-population size")
		dist   = flag.String("dist", "zipf", "key mix: zipf or uniform")
		zipfS  = flag.Float64("zipf-s", 1.1, "zipfian skew (>1)")
		seed   = flag.Int64("seed", 1, "population/mix seed")
		quiet  = flag.Bool("q", false, "suppress progress lines (JSON summary only)")

		traceSample = flag.Int("trace-sample", 0, "root a trace for 1-in-N measured requests and forward traceparent to the target (0 = no tracing)")
		traceOut    = flag.String("trace-out", "", "write the recorded root spans to this file (join with the servers' dumps via kmertools trace-join)")
		slo         = flag.String("slo", "", "latency objective as <duration>:p<percentile> (e.g. 5ms:p99); adds error-budget accounting to the summary")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	var sloObj *kcluster.SLO
	if *slo != "" {
		parsed, err := kcluster.ParseSLO(*slo)
		if err != nil {
			log.Fatal(err)
		}
		sloObj = &parsed
	}
	var tracer *obs.Tracer
	if *traceSample > 0 {
		tracer = obs.NewTracer("kload", *traceSample, 0)
	}
	sum, err := kcluster.RunLoad(ctx, kcluster.LoadOptions{
		Target:      *target,
		Requests:    *n,
		Warmup:      *warmup,
		Batch:       *batch,
		Concurrency: *conc,
		QPS:         *qps,
		Keys:        *keys,
		Dist:        *dist,
		ZipfS:       *zipfS,
		Seed:        *seed,
		Logf:        logf,
		Tracer:      tracer,
		SLO:         sloObj,
	})
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil && *traceOut != "" {
		if err := tracer.WriteSpansFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		logf("wrote %d spans to %s", tracer.Len(), *traceOut)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		log.Fatal(err)
	}
	if sum.Errors > 0 {
		os.Exit(1)
	}
}
