// Command kmertools operates on KCD k-mer count databases, mirroring the
// workflow of KMC3's kmc_tools (the state-of-the-art tool the paper
// discusses in §VI):
//
//	kmertools count -in reads.fastq -k 17 -o db.kcd [-canonical] [-min 2]
//	kmertools info -db db.kcd
//	kmertools histo -db db.kcd
//	kmertools dump -db db.kcd [-n 20]
//	kmertools lookup -db db.kcd ACGTACGTACGTACGTA ...   (or k-mers on stdin)
//	kmertools intersect|union|subtract -a x.kcd -b y.kcd -o out.kcd
//	kmertools filter -db db.kcd -min 3 -max 1000 -o out.kcd
//	kmertools trace-join -o joined.json kload.json kproxy.json replica*.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
	"dedukt/internal/kmer"
	"dedukt/internal/obs"
	"dedukt/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kmertools: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "count":
		err = runCount(args)
	case "info":
		err = runInfo(args)
	case "histo":
		err = runHisto(args)
	case "dump":
		err = runDump(args)
	case "lookup":
		err = runLookup(args)
	case "intersect", "union", "subtract":
		err = runSetOp(cmd, args)
	case "filter":
		err = runFilter(args)
	case "trace-join":
		err = runTraceJoin(args)
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kmertools <count|info|histo|dump|lookup|intersect|union|subtract|filter|trace-join> [flags]")
	os.Exit(2)
}

func loadDB(path string) (*kcount.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kcount.ReadDatabase(f)
}

func saveDB(path string, d *kcount.Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runCount(args []string) error {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	in := fs.String("in", "", "input FASTQ/FASTA (.gz supported)")
	k := fs.Int("k", 17, "k-mer length (1..32)")
	out := fs.String("o", "", "output KCD path")
	canonical := fs.Bool("canonical", false, "count canonical k-mers")
	min := fs.Uint("min", 1, "drop k-mers below this count")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("count: -in and -o are required")
	}
	if *k <= 0 || *k > dna.MaxK {
		return fmt.Errorf("count: k=%d outside (0,%d]", *k, dna.MaxK)
	}
	r, closer, err := fastq.Open(*in)
	if err != nil {
		return err
	}
	defer closer.Close()
	table := kcount.NewTable(1024, kcount.Linear)
	nReads := 0
	for {
		rec, rerr := r.Read()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return rerr
		}
		nReads++
		kmer.ForEach(&dna.Random, rec.Seq, *k, func(w dna.Kmer, _ int) {
			key := uint64(w)
			if *canonical {
				key = uint64(w.Canonical(&dna.Random, *k))
			}
			table.Inc(key)
		})
	}
	var flags uint32
	if *canonical {
		flags |= kcount.FlagCanonical
	}
	d := kcount.FromTable(table, *k, flags)
	if *min > 1 {
		d = kcount.FilterCounts(d, uint32(*min), 0)
	}
	if err := saveDB(*out, d); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kmertools: counted %d reads -> %s distinct k-mers -> %s\n",
		nReads, stats.Count(uint64(d.Len())), *out)
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	db := fs.String("db", "", "KCD path")
	fs.Parse(args)
	d, err := loadDB(*db)
	if err != nil {
		return err
	}
	h := d.Histogram()
	fmt.Printf("k:           %d\n", d.K)
	fmt.Printf("canonical:   %v\n", d.Canonical())
	fmt.Printf("distinct:    %s\n", stats.Count(uint64(d.Len())))
	fmt.Printf("total count: %s\n", stats.Count(h.Total()))
	fmt.Printf("singletons:  %s\n", stats.Count(h.Singletons()))
	return nil
}

func runHisto(args []string) error {
	fs := flag.NewFlagSet("histo", flag.ExitOnError)
	db := fs.String("db", "", "KCD path")
	max := fs.Int("max", 100, "largest frequency class to print")
	fs.Parse(args)
	d, err := loadDB(*db)
	if err != nil {
		return err
	}
	h := d.Histogram()
	for _, f := range h.Frequencies() {
		if int(f) > *max {
			break
		}
		fmt.Printf("%d\t%d\n", f, h.Counts[f])
	}
	return nil
}

func runDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	db := fs.String("db", "", "KCD path")
	n := fs.Int("n", 0, "dump at most N entries (0 = all)")
	fs.Parse(args)
	d, err := loadDB(*db)
	if err != nil {
		return err
	}
	limit := len(d.Entries)
	if *n > 0 && *n < limit {
		limit = *n
	}
	for _, e := range d.Entries[:limit] {
		fmt.Printf("%s\t%d\n", dna.Kmer(e.Key).String(&dna.Random, d.K), e.Count)
	}
	return nil
}

// runLookup resolves ASCII k-mers against a KCD from the command line —
// the batch twin of kserve's GET /kmer/{seq}, sharing the same
// kcount.ParseQuery path (length check, packing, canonical folding).
// K-mers come from the argument list, or from stdin (whitespace-separated)
// when no arguments are given.
func runLookup(args []string) error {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	db := fs.String("db", "", "KCD path")
	strict := fs.Bool("strict", false, "fail on the first malformed k-mer instead of reporting and continuing")
	fs.Parse(args)
	d, err := loadDB(*db)
	if err != nil {
		return err
	}
	lookupOne := func(seq string) error {
		key, err := kcount.ParseQuery(&dna.Random, d.K, d.Canonical(), seq)
		if err != nil {
			if *strict {
				return err
			}
			fmt.Fprintf(os.Stderr, "kmertools: %v\n", err)
			fmt.Printf("%s\tERR\n", seq)
			return nil
		}
		fmt.Printf("%s\t%d\n", seq, d.Get(key))
		return nil
	}
	if fs.NArg() > 0 {
		for _, seq := range fs.Args() {
			if err := lookupOne(seq); err != nil {
				return err
			}
		}
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		if err := lookupOne(sc.Text()); err != nil {
			return err
		}
	}
	return sc.Err()
}

func runSetOp(op string, args []string) error {
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	aPath := fs.String("a", "", "first operand")
	bPath := fs.String("b", "", "second operand")
	out := fs.String("o", "", "output KCD path")
	fs.Parse(args)
	if *aPath == "" || *bPath == "" || *out == "" {
		return fmt.Errorf("%s: -a, -b and -o are required", op)
	}
	a, err := loadDB(*aPath)
	if err != nil {
		return err
	}
	b, err := loadDB(*bPath)
	if err != nil {
		return err
	}
	var d *kcount.Database
	switch op {
	case "intersect":
		d, err = kcount.Intersect(a, b)
	case "union":
		d, err = kcount.Union(a, b)
	case "subtract":
		d, err = kcount.Subtract(a, b)
	}
	if err != nil {
		return err
	}
	if err := saveDB(*out, d); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kmertools: %s -> %s distinct k-mers -> %s\n", op, stats.Count(uint64(d.Len())), *out)
	return nil
}

func runFilter(args []string) error {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	db := fs.String("db", "", "KCD path")
	min := fs.Uint("min", 1, "minimum count")
	max := fs.Uint("max", 0, "maximum count (0 = unbounded)")
	out := fs.String("o", "", "output KCD path")
	fs.Parse(args)
	d, err := loadDB(*db)
	if err != nil {
		return err
	}
	filtered := kcount.FilterCounts(d, uint32(*min), uint32(*max))
	if err := saveDB(*out, filtered); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kmertools: kept %s of %s entries -> %s\n",
		stats.Count(uint64(filtered.Len())), stats.Count(uint64(d.Len())), *out)
	return nil
}

// runTraceJoin merges per-process request-trace dumps (written by kload,
// kproxy, and kserve via -trace-out or fetched from /debug/trace) into one
// Chrome trace-event JSON, viewable in Perfetto or chrome://tracing. Each
// process becomes a pid row; spans sharing a trace ID line up across rows.
func runTraceJoin(args []string) error {
	fs := flag.NewFlagSet("trace-join", flag.ExitOnError)
	out := fs.String("o", "", "output trace-event JSON path (default stdout)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("trace-join: at least one trace dump is required")
	}
	var dumps []obs.TraceDump
	var spans int
	var dropped uint64
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		d, err := obs.ReadTraceDump(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("trace-join: %s: %w", path, err)
		}
		spans += len(d.Spans)
		dropped += d.Dropped
		dumps = append(dumps, d)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := obs.JoinTraces(w, dumps); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kmertools: joined %d spans from %d process(es)", spans, len(dumps))
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, " (%d dropped at capture)", dropped)
	}
	fmt.Fprintln(os.Stderr)
	return nil
}
