// Command experiments regenerates every table and figure of the paper's
// evaluation section (§V) from the scaled synthetic datasets.
//
//	experiments -list            # show available experiments
//	experiments -run fig6a       # one experiment
//	experiments -run all         # the full evaluation
//	experiments -run all -scale 0.1   # a quick pass at 1/10 size
//
// EXPERIMENTS.md records the paper-vs-measured comparison for each.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dedukt/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		run   = flag.String("run", "", `experiment id, or "all"`)
		scale = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default scaled sizes)")
	)
	flag.Parse()

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run == "" {
		log.Fatal("use -list, or -run <id|all>")
	}

	opts := expt.Options{Out: os.Stdout, Scale: *scale}
	var todo []expt.Experiment
	if *run == "all" {
		todo = expt.All()
	} else {
		e, err := expt.ByID(*run)
		if err != nil {
			log.Fatal(err)
		}
		todo = []expt.Experiment{e}
	}
	for i, e := range todo {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		if err := e.Run(opts); err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Printf("[%s completed in %.1fs]\n", e.ID, time.Since(start).Seconds())
	}
}
