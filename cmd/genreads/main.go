// Command genreads writes a synthetic FASTQ dataset: either a custom
// genome/read-simulator configuration or a scaled stand-in for one of the
// paper's Table I datasets.
//
// Examples:
//
//	genreads -genome-len 100000 -coverage 30 -o reads.fastq
//	genreads -dataset "C. elegans 40X" -scale 0.5 -o celegans.fastq
//	genreads -genome-len 50000 -coverage 10 -model short -err 0.01
//	genreads -coverage 10 -o reads.fastq.gz
//
// A .gz output suffix enables gzip compression automatically; -gzip
// forces it for any output name (or stdout).
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"dedukt/internal/fastq"
	"dedukt/internal/genome"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genreads: ")
	var (
		out        = flag.String("o", "", "output path (default stdout)")
		dataset    = flag.String("dataset", "", `Table I dataset name, e.g. "E. coli 30X"`)
		scale      = flag.Float64("scale", 1.0, "dataset scale factor")
		genomeLen  = flag.Int("genome-len", 100_000, "genome length in bases (custom mode)")
		coverage   = flag.Float64("coverage", 30, "sequencing depth (custom mode)")
		repeatFrac = flag.Float64("repeat-frac", 0.1, "fraction of genome covered by repeats")
		gc         = flag.Float64("gc", 0.5, "G+C fraction")
		model      = flag.String("model", "long", "read model: long or short")
		meanLen    = flag.Int("mean-len", 0, "mean read length (0 = model default)")
		errRate    = flag.Float64("err", 0.002, "per-base substitution error rate")
		ambigRate  = flag.Float64("ambig", 0, "per-base N rate")
		seed       = flag.Int64("seed", 1, "random seed")
		gz         = flag.Bool("gzip", false, "gzip-compress the output (implied by a .gz output suffix)")
	)
	flag.Parse()

	var (
		reads []fastq.Record
		err   error
	)
	if *dataset != "" {
		var d genome.Dataset
		d, err = genome.DatasetByName(*dataset)
		if err == nil {
			reads, err = d.Reads(*scale)
		}
	} else {
		reads, err = custom(*genomeLen, *coverage, *repeatFrac, *gc, *model, *meanLen, *errRate, *ambigRate, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	var zw *gzip.Writer
	if *gz || strings.HasSuffix(*out, ".gz") {
		zw = gzip.NewWriter(w)
		w = zw
	}
	fw := fastq.NewWriter(w)
	bases := 0
	for _, rec := range reads {
		if err := fw.Write(rec); err != nil {
			log.Fatal(err)
		}
		bases += len(rec.Seq)
	}
	if err := fw.Flush(); err != nil {
		log.Fatal(err)
	}
	if zw != nil {
		// Flush order matters: the fastq writer above, then the gzip
		// member must be finalized before the file closes.
		if err := zw.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "genreads: wrote %d reads, %d bases\n", len(reads), bases)
}

func custom(genomeLen int, coverage, repeatFrac, gc float64, model string, meanLen int, errRate, ambigRate float64, seed int64) ([]fastq.Record, error) {
	cfg := genome.DefaultConfig(genomeLen)
	cfg.RepeatFraction = repeatFrac
	cfg.GC = gc
	cfg.Seed = seed
	g, err := genome.Generate("synthetic", cfg)
	if err != nil {
		return nil, err
	}
	var prof genome.ReadProfile
	switch model {
	case "long":
		prof = genome.DefaultLongReads()
	case "short":
		prof = genome.DefaultShortReads()
	default:
		return nil, fmt.Errorf("unknown read model %q", model)
	}
	if meanLen > 0 {
		prof.MeanLen = meanLen
	}
	prof.ErrRate = errRate
	prof.AmbigRate = ambigRate
	prof.Seed = seed + 1
	return genome.SimulateReads(g, coverage, prof)
}
