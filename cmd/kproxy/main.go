// Command kproxy fronts a replicated kserve cluster: it probes the seed
// replicas' /healthz, learns the cluster shape (k, canonical, shard
// count), places each shard's replicas on a consistent-hash ring, and
// routes GET /kmer/{seq} and POST /batch by the pipeline's owner hash —
// hedging slow requests at a latency quantile, retrying hard failures on
// the next ring candidate, and degrading batches to per-key error markers
// when a shard loses every replica.
//
//	kserve -kcd counts.kcd -shard 0/2 -addr :8081 &
//	kserve -kcd counts.kcd -shard 0/2 -addr :8082 &
//	kserve -kcd counts.kcd -shard 1/2 -addr :8083 &
//	kserve -kcd counts.kcd -shard 1/2 -addr :8084 &
//	kproxy -replica :8081 -replica :8082 -replica :8083 -replica :8084
//
//	curl localhost:9090/kmer/ACGTACGTACGTACGTA
//	curl -X POST localhost:9090/batch -d '{"kmers":["ACGTACGTACGTACGTA"]}'
//	curl localhost:9090/healthz       # cluster shape + per-replica state
//	curl localhost:9090/metrics       # kcluster_* (hedges, retries, …)
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dedukt/internal/dna"
	"dedukt/internal/kcluster"
	"dedukt/internal/obs"
)

// addrList collects repeated -replica flags.
type addrList []string

func (p *addrList) String() string { return strings.Join(*p, ",") }
func (p *addrList) Set(v string) error {
	if !strings.Contains(v, ":") {
		v = "127.0.0.1:" + v
	} else if strings.HasPrefix(v, ":") {
		v = "127.0.0.1" + v
	}
	*p = append(*p, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("kproxy: ")
	var replicas addrList
	flag.Var(&replicas, "replica", "kserve replica address (repeatable; host:port, :port, or bare port)")
	var (
		addr          = flag.String("addr", "127.0.0.1:9090", "listen address (port 0 picks a free port)")
		probeInterval = flag.Duration("probe-interval", 250*time.Millisecond, "replica /healthz probe period")
		failThreshold = flag.Int("fail-threshold", 2, "consecutive hard failures before a replica is down")
		vnodes        = flag.Int("vnodes", 64, "virtual nodes per replica on each shard ring")
		hedgeQ        = flag.Float64("hedge-quantile", 0.9, "observed-latency quantile at which a hedge fires")
		hedgeMin      = flag.Duration("hedge-min", time.Millisecond, "lower clamp on the hedge delay")
		hedgeMax      = flag.Duration("hedge-max", 25*time.Millisecond, "upper clamp on the hedge delay (also the cold-start delay)")
		reqTimeout    = flag.Duration("request-timeout", 2*time.Second, "per-upstream-attempt timeout")
		encoding      = flag.String("encoding", "random", "base encoding the replicas serve: random (CLI default) or lex")
		traceSample   = flag.Int("trace-sample", 0, "enable request tracing: root a span for 1-in-N headerless requests; incoming sampled traceparents are always continued (0 disables rooting; tracing stays on if -trace-out is set)")
		traceOut      = flag.String("trace-out", "", "write the recorded span buffer to this file on exit (tracing also serves /debug/trace live)")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off by default)")
	)
	flag.Parse()
	for _, a := range flag.Args() {
		_ = replicas.Set(a)
	}
	if len(replicas) == 0 {
		log.Fatal("at least one -replica address is required")
	}
	enc := &dna.Random
	switch *encoding {
	case "random":
	case "lex":
		enc = &dna.Lexicographic
	default:
		log.Fatalf("unknown encoding %q", *encoding)
	}

	reg, err := kcluster.NewRegistry(kcluster.RegistryOptions{
		Seeds:         replicas,
		ProbeInterval: *probeInterval,
		FailThreshold: *failThreshold,
		Vnodes:        *vnodes,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()
	reg.ProbeNow()
	if k, canonical, shards, ready := reg.Shape(); ready {
		log.Printf("routing %d replicas across %d shard(s), k=%d canonical=%v", len(replicas), shards, k, canonical)
	} else {
		log.Printf("no replica answered yet; routing %d seeds, shape pending", len(replicas))
	}

	var tracer *obs.Tracer
	if *traceSample > 0 || *traceOut != "" {
		tracer = obs.NewTracer("kproxy", *traceSample, 0)
	}
	obs.ServePprof(*pprofAddr, log.Printf)
	router := kcluster.NewRouter(reg, kcluster.RouterOptions{
		Enc:            enc,
		HedgeQuantile:  *hedgeQ,
		HedgeMin:       *hedgeMin,
		HedgeMax:       *hedgeMax,
		RequestTimeout: *reqTimeout,
		Tracer:         tracer,
	})
	obs.RegisterBuildInfo(reg.Obs(), "kproxy")
	writeTrace := func() {
		if tracer == nil || *traceOut == "" {
			return
		}
		if err := tracer.WriteSpansFile(*traceOut); err != nil {
			log.Printf("trace-out: %v", err)
		} else {
			log.Printf("wrote %d spans to %s", tracer.Len(), *traceOut)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", ln.Addr())
	srv := &http.Server{Handler: kcluster.NewHandler(router)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		writeTrace()
		log.Fatal(err)
	case got := <-sig:
		log.Printf("caught %s, shutting down", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		writeTrace()
		if err != nil {
			log.Fatal(err)
		}
	}
}
