package expt

import (
	"fmt"

	"dedukt/internal/cluster"
	"dedukt/internal/dna"
	"dedukt/internal/genome"
	"dedukt/internal/minimizer"
	"dedukt/internal/pipeline"
	"dedukt/internal/stats"
)

// RunAblation sweeps the design choices DESIGN.md §5 calls out — minimizer
// ordering and window size — on C. elegans 40X at 16 nodes, reporting the
// supermer count, exchanged payload, partition imbalance and end-to-end
// time each choice produces. The paper fixes ordering=random-encoding value
// and window=15; this table shows why those are good defaults.
func RunAblation(o Options) error {
	d, err := genome.DatasetByName("C. elegans 40X")
	if err != nil {
		return err
	}
	reads, err := loadDataset(d, o)
	if err != nil {
		return err
	}
	layout := paperize(cluster.SummitGPU(16))

	fmt.Fprintf(o.Out, "Ablation — minimizer ordering (k=17, m=7, window=15, %s, scale %.2f)\n", d.Name, o.scale())
	t := stats.NewTable("ordering", "supermers", "payload", "imbalance", "total time")
	for _, name := range []string{"value", "kmc2", "hashed"} {
		ord, err := minimizer.ByName(name, &dna.Random)
		if err != nil {
			return err
		}
		cfg := pipeline.Default(layout, pipeline.SupermerMode)
		cfg.Ord = ord
		res, err := pipeline.Run(cfg, reads)
		if err != nil {
			return err
		}
		t.Row(name, stats.Count(res.ItemsExchanged), stats.Bytes(res.PayloadBytes),
			fmt.Sprintf("%.2f", res.LoadImbalance()), res.Modeled.Total())
	}
	fmt.Fprint(o.Out, t)

	fmt.Fprintf(o.Out, "\nAblation — window size (k=17, m=7, value ordering)\n")
	t2 := stats.NewTable("window", "max supermer", "supermers", "payload", "total time")
	for _, w := range []int{7, 15, 31, 63} {
		cfg := pipeline.Default(layout, pipeline.SupermerMode)
		cfg.Window = w
		res, err := pipeline.Run(cfg, reads)
		if err != nil {
			return err
		}
		t2.Row(w, fmt.Sprintf("%d bases", w+cfg.K-1),
			stats.Count(res.ItemsExchanged), stats.Bytes(res.PayloadBytes), res.Modeled.Total())
	}
	fmt.Fprint(o.Out, t2)
	fmt.Fprintln(o.Out, "window 15 packs any supermer into one 64-bit word (§IV-C); larger windows"+
		" cut the supermer count but pad the fixed-stride wire image")
	return nil
}
