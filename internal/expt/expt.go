// Package expt contains one driver per table and figure of the paper's
// evaluation (§V). Each driver generates the scaled synthetic equivalent of
// the paper's dataset(s), runs the relevant pipeline configurations, and
// prints a table with the same rows/series the paper reports, so shape
// comparisons are direct. EXPERIMENTS.md records paper-vs-measured for
// every driver.
package expt

import (
	"fmt"
	"io"

	"dedukt/internal/cluster"
	"dedukt/internal/fastq"
	"dedukt/internal/genome"
	"dedukt/internal/pipeline"
)

// Options control an experiment run.
type Options struct {
	// Out receives the experiment's report.
	Out io.Writer
	// Scale multiplies the registry's scaled dataset sizes (1.0 = default;
	// use 0.1 for a quick pass). It must be positive.
	Scale float64
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the CLI handle ("fig6a", "table2", ...).
	ID string
	// Title describes what the paper shows.
	Title string
	// Run executes the experiment and prints its report.
	Run func(o Options) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: datasets used for performance evaluation", RunTable1},
		{"fig3", "Fig. 3: runtime breakdown, CPU vs GPU k-mer counters, H. sapien 54X, 64 nodes", RunFig3},
		{"fig6a", "Fig. 6a: overall speedup over CPU baseline, 16 nodes (96 GPUs vs 672 cores)", RunFig6a},
		{"fig6b", "Fig. 6b: overall speedup over CPU baseline, 64 nodes (384 GPUs vs 2688 cores)", RunFig6b},
		{"fig7", "Fig. 7: GPU k-mer vs supermer runtime breakdown, 64 nodes (384 GPUs)", RunFig7},
		{"fig8", "Fig. 8: MPI_Alltoallv speedup using supermers vs k-mers", RunFig8},
		{"fig9", "Fig. 9: scalability of k-mer insertion rate, 4-128 nodes", RunFig9},
		{"table2", "Table II: k-mers and supermers exchanged per dataset", RunTable2},
		{"table3", "Table III: per-partition k-mer load imbalance (384 GPUs)", RunTable3},
		{"theory", "§IV-D: theoretical vs measured communication volume", RunTheory},
		{"balance", "§VII future work: frequency-balanced minimizer partitioning", RunBalance},
		{"ablation", "design-choice ablations: minimizer ordering and window size", RunAblation},
		{"whatif", "what-if projection: A100 GPUs and GPUDirect on the 64-node run", RunWhatIf},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q (use -list)", id)
}

// loadDataset synthesizes a dataset's reads at the requested scale.
func loadDataset(d genome.Dataset, o Options) ([]fastq.Record, error) {
	return d.Reads(o.scale())
}

// paperize adapts a layout for scaled-down experiment runs: fixed
// per-operation costs (kernel launch, link latency, per-round network
// latency α) are zeroed because at ~1/10⁴ of the paper's data volume they
// would be charged at ~10⁴× their real relative weight — on the real runs
// they are well under 0.1% of any phase. Bandwidth-proportional and
// per-item costs, which carry every reproduced ratio, are untouched.
func paperize(l cluster.Layout) cluster.Layout {
	l.Net.LatencyUs = 0
	if l.GPU != nil {
		g := *l.GPU
		g.LaunchOverheadUs = 0
		g.LinkLatencyUs = 0
		l.GPU = &g
	}
	return l
}

// liftFor returns the CPU load lift for a dataset: the real-to-simulated
// input size ratio, so the baseline's load-dependent unit cost is evaluated
// at the paper's per-rank operating point.
func liftFor(d genome.Dataset, reads []fastq.Record) float64 {
	sim := totalBases(reads)
	if sim == 0 {
		return 1
	}
	lift := d.RealBases() / float64(sim)
	if lift < 1 {
		return 1
	}
	return lift
}

// gpuConfigs returns the three GPU configurations the figures compare:
// k-mer mode and supermer mode with m=7 and m=9.
func gpuConfigs(layout cluster.Layout) []struct {
	Label string
	Cfg   pipeline.Config
} {
	kmer := pipeline.Default(layout, pipeline.KmerMode)
	sm7 := pipeline.Default(layout, pipeline.SupermerMode)
	sm7.M = 7
	sm9 := pipeline.Default(layout, pipeline.SupermerMode)
	sm9.M = 9
	return []struct {
		Label string
		Cfg   pipeline.Config
	}{
		{"kmer", kmer},
		{"supermer (m=7)", sm7},
		{"supermer (m=9)", sm9},
	}
}

// totalBases sums read lengths.
func totalBases(reads []fastq.Record) int {
	n := 0
	for _, r := range reads {
		n += len(r.Seq)
	}
	return n
}
