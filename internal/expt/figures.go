package expt

import (
	"fmt"

	"dedukt/internal/cluster"
	"dedukt/internal/genome"
	"dedukt/internal/pipeline"
	"dedukt/internal/stats"
)

// RunTable1 prints the dataset inventory: the paper's rows plus the scaled
// synthetic stand-ins actually generated.
func RunTable1(o Options) error {
	t := stats.NewTable("Short Name", "Species and Strain", "Paper Fastq", "Scaled genome", "Coverage", "Synthetic bases")
	for _, d := range genome.Table1() {
		reads, err := loadDataset(d, o)
		if err != nil {
			return err
		}
		t.Row(d.Name, d.Species,
			fmt.Sprintf("%d MB", d.RealFastqMB),
			stats.Count(uint64(float64(d.ScaledGenomeLen)*o.scale())),
			fmt.Sprintf("%.0fX", d.Coverage),
			stats.Count(uint64(totalBases(reads))))
	}
	fmt.Fprintln(o.Out, "Table I — datasets (paper inputs and scaled synthetic equivalents)")
	fmt.Fprint(o.Out, t)
	return nil
}

// RunFig3 reproduces the Fig. 3 breakdown: the CPU baseline on 64 nodes
// (2688 cores) against the GPU k-mer counter on 64 nodes (384 GPUs) for
// H. sapien 54X, reporting the three-module split and the compute speedup.
func RunFig3(o Options) error {
	d, err := genome.DatasetByName("H. sapien 54X")
	if err != nil {
		return err
	}
	reads, err := loadDataset(d, o)
	if err != nil {
		return err
	}
	cpuCfg := pipeline.Default(paperize(cluster.SummitCPU(64)), pipeline.KmerMode)
	cpuCfg.CPULoadLift = liftFor(d, reads)
	cpuRes, err := pipeline.Run(cpuCfg, reads)
	if err != nil {
		return err
	}
	gpuRes, err := pipeline.Run(pipeline.Default(paperize(cluster.SummitGPU(64)), pipeline.KmerMode), reads)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "Fig. 3 — runtime breakdown on 64 nodes, %s (%s bases, scale %.2f)\n",
		d.Name, stats.Count(uint64(totalBases(reads))), o.scale())
	t := stats.NewTable("module", "CPU 2688 cores", "GPU 384 GPUs", "speedup")
	t.Row("parse & process kmers", cpuRes.Modeled.Parse, gpuRes.Modeled.Parse,
		stats.Speedup(cpuRes.Modeled.Parse, gpuRes.Modeled.Parse))
	t.Row("exchange (incl. MPI call)", cpuRes.Modeled.Exchange, gpuRes.Modeled.Exchange,
		stats.Speedup(cpuRes.Modeled.Exchange, gpuRes.Modeled.Exchange))
	t.Row("kmer counter", cpuRes.Modeled.Count, gpuRes.Modeled.Count,
		stats.Speedup(cpuRes.Modeled.Count, gpuRes.Modeled.Count))
	t.Row("total (excl. I/O)", cpuRes.Modeled.Total(), gpuRes.Modeled.Total(),
		stats.Speedup(cpuRes.Modeled.Total(), gpuRes.Modeled.Total()))
	fmt.Fprint(o.Out, t)
	computeCPU := cpuRes.Modeled.Parse + cpuRes.Modeled.Count
	computeGPU := gpuRes.Modeled.Parse + gpuRes.Modeled.Count
	fmt.Fprintf(o.Out, "compute-only acceleration: %.0f× (paper: ~100×)\n",
		stats.Speedup(computeCPU, computeGPU))
	fmt.Fprintf(o.Out, "exchange share of GPU total: %.0f%% (paper: up to 80%%)\n",
		100*gpuRes.Modeled.Exchange.Seconds()/gpuRes.Modeled.Total().Seconds())
	return nil
}

// runFig6 is the common driver of Figs. 6a and 6b: overall speedup of the
// three GPU configurations over the CPU baseline at equal node count.
func runFig6(o Options, nodes int, datasets []genome.Dataset, caption string) error {
	gpuLayout := paperize(cluster.SummitGPU(nodes))
	cpuLayout := paperize(cluster.SummitCPU(nodes))
	fmt.Fprintf(o.Out, "%s (scale %.2f)\n", caption, o.scale())
	t := stats.NewTable("dataset", "CPU total", "kmer", "supermer (m=7)", "supermer (m=9)")
	for _, d := range datasets {
		reads, err := loadDataset(d, o)
		if err != nil {
			return err
		}
		cpuCfg := pipeline.Default(cpuLayout, pipeline.KmerMode)
		cpuCfg.CPULoadLift = liftFor(d, reads)
		cpuRes, err := pipeline.Run(cpuCfg, reads)
		if err != nil {
			return err
		}
		row := []any{d.Name, cpuRes.Modeled.Total()}
		for _, gc := range gpuConfigs(gpuLayout) {
			res, err := pipeline.Run(gc.Cfg, reads)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.1f×", stats.Speedup(cpuRes.Modeled.Total(), res.Modeled.Total())))
		}
		t.Row(row...)
	}
	fmt.Fprint(o.Out, t)
	return nil
}

// RunFig6a reproduces Fig. 6a: the four small datasets on 16 nodes (96 GPUs
// vs 672 cores). Paper: ~11× (kmer) and ~13× (supermer) average speedup.
func RunFig6a(o Options) error {
	return runFig6(o, 16, genome.SmallDatasets(),
		"Fig. 6a — speedup over CPU baseline, 16 nodes (96 GPUs vs 672 cores)")
}

// RunFig6b reproduces Fig. 6b: C. elegans 40X and H. sapien 54X on 64 nodes
// (384 GPUs vs 2688 cores). Paper: up to 150× for H. sapiens supermers.
func RunFig6b(o Options) error {
	return runFig6(o, 64, genome.LargeDatasets(),
		"Fig. 6b — speedup over CPU baseline, 64 nodes (384 GPUs vs 2688 cores)")
}

// RunFig7 reproduces Figs. 7a/7b: the three-module breakdown of the GPU
// pipelines (kmer, supermer m=7, supermer m=9) on 64 nodes for the two
// large datasets. Paper: supermers add ~33% parse and ~27% count but save
// ~33% exchange, a net win because exchange is up to 80% of the total.
func RunFig7(o Options) error {
	layout := paperize(cluster.SummitGPU(64))
	for _, d := range genome.LargeDatasets() {
		reads, err := loadDataset(d, o)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "Fig. 7 — GPU runtime breakdown, 64 nodes (384 GPUs), %s (scale %.2f)\n", d.Name, o.scale())
		t := stats.NewTable("module", "kmer", "supermer (m=7)", "supermer (m=9)")
		var rows [3][]any
		rows[0] = []any{"parse & process kmers"}
		rows[1] = []any{"exchange (incl. MPI_alltoallv)"}
		rows[2] = []any{"kmer counter"}
		totals := []any{"total"}
		for _, gc := range gpuConfigs(layout) {
			res, err := pipeline.Run(gc.Cfg, reads)
			if err != nil {
				return err
			}
			rows[0] = append(rows[0], res.Modeled.Parse)
			rows[1] = append(rows[1], res.Modeled.Exchange)
			rows[2] = append(rows[2], res.Modeled.Count)
			totals = append(totals, res.Modeled.Total())
		}
		for _, r := range rows {
			t.Row(r...)
		}
		t.Row(totals...)
		fmt.Fprint(o.Out, t)
	}
	return nil
}

// runFig8 reports the Alltoallv-only speedup of the two supermer
// configurations over k-mer mode.
func runFig8(o Options, nodes int, datasets []genome.Dataset, caption string) error {
	layout := paperize(cluster.SummitGPU(nodes))
	fmt.Fprintf(o.Out, "%s (scale %.2f)\n", caption, o.scale())
	t := stats.NewTable("dataset", "alltoallv kmer", "speedup m=7", "speedup m=9")
	for _, d := range datasets {
		reads, err := loadDataset(d, o)
		if err != nil {
			return err
		}
		var times []any
		var kmerT float64
		for i, gc := range gpuConfigs(layout) {
			res, err := pipeline.Run(gc.Cfg, reads)
			if err != nil {
				return err
			}
			sec := res.AlltoallvTime.Seconds()
			if i == 0 {
				kmerT = sec
				times = append(times, res.AlltoallvTime)
			} else {
				times = append(times, fmt.Sprintf("%.2f×", kmerT/sec))
			}
		}
		t.Row(append([]any{d.Name}, times...)...)
	}
	fmt.Fprint(o.Out, t)
	return nil
}

// RunFig8 reproduces Figs. 8a (16 nodes, small datasets) and 8b (64 nodes,
// large datasets). Paper: up to 3× Alltoallv speedup on H. sapiens.
func RunFig8(o Options) error {
	if err := runFig8(o, 16, genome.SmallDatasets(),
		"Fig. 8a — Alltoallv speedup of supermers vs k-mers, 16 nodes (96 GPUs)"); err != nil {
		return err
	}
	return runFig8(o, 64, genome.LargeDatasets(),
		"Fig. 8b — Alltoallv speedup of supermers vs k-mers, 64 nodes (384 GPUs)")
}

// RunFig9 reproduces Fig. 9: scalability of the GPU computation kernels
// (k-mer insertion rate, exchange excluded) from 4 to 128 nodes. Small
// datasets stop at 32 nodes, as in the paper.
func RunFig9(o Options) error {
	fmt.Fprintf(o.Out, "Fig. 9 — k-mer insertion rate (kmers/s of kernel time, excl. exchange; scale %.2f)\n", o.scale())
	nodeCounts := []int{4, 16, 32, 64, 128}
	t := stats.NewTable("dataset", "4", "16", "32", "64", "128")
	for _, d := range genome.Table1() {
		reads, err := loadDataset(d, o)
		if err != nil {
			return err
		}
		row := []any{d.Name}
		for _, nodes := range nodeCounts {
			if !d.Large && nodes > 32 {
				row = append(row, "-")
				continue
			}
			cfg := pipeline.Default(paperize(cluster.SummitGPU(nodes)), pipeline.KmerMode)
			res, err := pipeline.Run(cfg, reads)
			if err != nil {
				return err
			}
			row = append(row, stats.Count(uint64(res.InsertionRate()))+"/s")
		}
		t.Row(row...)
	}
	fmt.Fprint(o.Out, t)
	fmt.Fprintln(o.Out, "paper: near-linear scaling; C. elegans and H. sapiens gain 2.3× from 64 to 128 nodes")
	return nil
}
