package expt

import (
	"fmt"

	"dedukt/internal/cluster"
	"dedukt/internal/genome"
	"dedukt/internal/pipeline"
	"dedukt/internal/stats"
)

// RunTable2 reproduces Table II: the number of items exchanged by the
// k-mer-based counter versus the supermer-based counter at m=9 and m=7.
// Paper: supermers cut the item count ~3.3-3.8×, with m=7 strictly fewer
// than m=9.
func RunTable2(o Options) error {
	layout := paperize(cluster.SummitGPU(16))
	fmt.Fprintf(o.Out, "Table II — items exchanged (scale %.2f, 96 ranks)\n", o.scale())
	t := stats.NewTable("dataset", "kmer", "supermer (m=9)", "supermer (m=7)", "reduction m=7")
	for _, d := range genome.Table1() {
		reads, err := loadDataset(d, o)
		if err != nil {
			return err
		}
		var items [3]uint64
		for i, m := range []int{0, 9, 7} {
			cfg := pipeline.Default(layout, pipeline.SupermerMode)
			if m == 0 {
				cfg = pipeline.Default(layout, pipeline.KmerMode)
			} else {
				cfg.M = m
			}
			res, err := pipeline.Run(cfg, reads)
			if err != nil {
				return err
			}
			items[i] = res.ItemsExchanged
		}
		t.Row(d.Name, stats.Count(items[0]), stats.Count(items[1]), stats.Count(items[2]),
			fmt.Sprintf("%.2f×", float64(items[0])/float64(items[2])))
	}
	fmt.Fprint(o.Out, t)
	return nil
}

// RunTable3 reproduces Table III: the per-partition k-mer load (min, max,
// average) and the max/avg imbalance on 384 GPU partitions, k-mer hashing
// versus supermer (m=7) minimizer partitioning, for the two large datasets.
// Paper: 1.16 (C. elegans) and 2.37 (H. sapiens) for supermers versus ~1.1
// for k-mer hashing.
func RunTable3(o Options) error {
	layout := paperize(cluster.SummitGPU(64)) // 384 ranks
	fmt.Fprintf(o.Out, "Table III — per-partition k-mer load, 384 partitions (scale %.2f)\n", o.scale())
	t := stats.NewTable("dataset", "avg", "kmer min", "kmer max", "kmer imb",
		"sm(m=7) min", "sm(m=7) max", "sm imb")
	for _, d := range genome.LargeDatasets() {
		reads, err := loadDataset(d, o)
		if err != nil {
			return err
		}
		resK, err := pipeline.Run(pipeline.Default(layout, pipeline.KmerMode), reads)
		if err != nil {
			return err
		}
		cfgS := pipeline.Default(layout, pipeline.SupermerMode)
		cfgS.M = 7
		resS, err := pipeline.Run(cfgS, reads)
		if err != nil {
			return err
		}
		minK, maxK, avg := stats.MinMaxMean(resK.PerRankKmers)
		minS, maxS, _ := stats.MinMaxMean(resS.PerRankKmers)
		t.Row(d.Name, stats.Count(uint64(avg)),
			stats.Count(minK), stats.Count(maxK), fmt.Sprintf("%.2f", resK.LoadImbalance()),
			stats.Count(minS), stats.Count(maxS), fmt.Sprintf("%.2f", resS.LoadImbalance()))
	}
	fmt.Fprint(o.Out, t)
	return nil
}

// RunBalance evaluates the frequency-balanced minimizer partitioner this
// library implements for the paper's §VII future work ("devise a better
// partitioning algorithm that maintains the locality and at the same time
// partitions data evenly"): Table III's supermer imbalance with hash
// assignment versus LPT load-aware assignment, plus the end-to-end effect.
func RunBalance(o Options) error {
	layout := paperize(cluster.SummitGPU(64)) // 384 ranks
	fmt.Fprintf(o.Out, "§VII future work — balanced minimizer partitioning, 384 partitions (scale %.2f)\n", o.scale())
	t := stats.NewTable("dataset", "hash imb", "balanced imb", "hash total", "balanced total", "gain")
	for _, d := range genome.LargeDatasets() {
		reads, err := loadDataset(d, o)
		if err != nil {
			return err
		}
		hashCfg := pipeline.Default(layout, pipeline.SupermerMode)
		resHash, err := pipeline.Run(hashCfg, reads)
		if err != nil {
			return err
		}
		balCfg := hashCfg
		balCfg.BalancedPartition = true
		resBal, err := pipeline.Run(balCfg, reads)
		if err != nil {
			return err
		}
		t.Row(d.Name,
			fmt.Sprintf("%.2f", resHash.LoadImbalance()),
			fmt.Sprintf("%.2f", resBal.LoadImbalance()),
			resHash.Modeled.Total(), resBal.Modeled.Total(),
			fmt.Sprintf("%.2f×", resHash.Modeled.Total().Seconds()/resBal.Modeled.Total().Seconds()))
	}
	fmt.Fprint(o.Out, t)
	return nil
}

// RunTheory reproduces the §IV-D analysis: the model predicts per-processor
// communication of O((P-1)/P · K/P · k) bases in k-mer mode and the
// supermer reduction ≈ kmer-bases / supermer-bases; compare both with the
// measured traffic.
func RunTheory(o Options) error {
	layout := paperize(cluster.SummitGPU(16))
	p := layout.Ranks()
	fmt.Fprintf(o.Out, "§IV-D — theoretical vs measured communication (96 ranks, scale %.2f)\n", o.scale())
	t := stats.NewTable("dataset", "K (kmers)", "pred fabric", "meas fabric", "avg s (bases)", "pred reduction", "meas reduction")
	for _, d := range genome.SmallDatasets() {
		reads, err := loadDataset(d, o)
		if err != nil {
			return err
		}
		resK, err := pipeline.Run(pipeline.Default(layout, pipeline.KmerMode), reads)
		if err != nil {
			return err
		}
		resS, err := pipeline.Run(pipeline.Default(layout, pipeline.SupermerMode), reads)
		if err != nil {
			return err
		}
		const k = 17
		// §IV-D model: with a uniform hash, each rank ships (P-1)/P of its
		// k-mers off-rank; the fabric only carries the inter-NODE share,
		// (P - ranksPerNode)/P with co-located ranks excluded.
		interFrac := float64(p-layout.RanksPerNode) / float64(p)
		predictedFabric := uint64(float64(resK.ItemsExchanged*8) * interFrac)
		// Average supermer length s in bases: a supermer holding n k-mers
		// spans n+k-1 bases.
		sAvg := float64(resK.ItemsExchanged)/float64(resS.ItemsExchanged) + k - 1
		// Predicted byte reduction: K k-mers × 8B vs S supermers × 9B wire
		// images (§IV-C's one word + length byte).
		predictedReduction := float64(resK.ItemsExchanged*8) / float64(resS.ItemsExchanged*9)
		measuredReduction := float64(resK.PayloadBytes) / float64(resS.PayloadBytes)
		t.Row(d.Name,
			stats.Count(resK.ItemsExchanged),
			stats.Bytes(predictedFabric),
			stats.Bytes(resK.Volume.FabricBytes),
			fmt.Sprintf("%.1f", sAvg),
			fmt.Sprintf("%.2f×", predictedReduction),
			fmt.Sprintf("%.2f×", measuredReduction))
	}
	fmt.Fprint(o.Out, t)
	fmt.Fprintln(o.Out, "pred fabric: uniform-hash model O((P-1)/P · K/P · k) summed over ranks, inter-node share only")
	return nil
}
