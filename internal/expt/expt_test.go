package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("%d experiments, want 13", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("fig6a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestOptionsScaleDefault(t *testing.T) {
	if (Options{}).scale() != 1.0 {
		t.Fatal("zero scale should default to 1")
	}
	if (Options{Scale: 0.5}).scale() != 0.5 {
		t.Fatal("explicit scale ignored")
	}
}

// The experiment drivers at a tiny scale: each must run end to end and
// produce a non-trivial report. (Full-scale output is exercised by
// cmd/experiments and recorded in EXPERIMENTS.md.)
func TestExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	// fig9 sweeps five node counts over six datasets — the heaviest driver;
	// keep the scale very small.
	scales := map[string]float64{
		"table1": 0.02, "fig3": 0.02, "fig6a": 0.02, "fig6b": 0.02,
		"fig7": 0.02, "fig8": 0.02, "fig9": 0.01, "table2": 0.02,
		"table3": 0.02, "theory": 0.02, "balance": 0.02, "ablation": 0.02, "whatif": 0.02,
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(Options{Out: &buf, Scale: scales[e.ID]}); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("suspiciously short report:\n%s", out)
			}
			if !strings.Contains(out, "---") && !strings.Contains(out, "—") {
				t.Fatalf("no table rendered:\n%s", out)
			}
		})
	}
}
