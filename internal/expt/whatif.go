package expt

import (
	"fmt"

	"dedukt/internal/cluster"
	"dedukt/internal/genome"
	"dedukt/internal/gpusim"
	"dedukt/internal/pipeline"
	"dedukt/internal/stats"
)

// RunWhatIf projects the pipeline onto hardware the paper did not have: the
// same 64-node run with A100s instead of V100s, and with GPUDirect instead
// of host-staged exchange — the "opens the door to omics computations at
// unprecedented scale" direction of §VII, quantified with the calibrated
// cost model. The communication bottleneck thesis predicts modest gains
// from a faster GPU and real gains only from attacking the exchange.
func RunWhatIf(o Options) error {
	d, err := genome.DatasetByName("H. sapien 54X")
	if err != nil {
		return err
	}
	reads, err := loadDataset(d, o)
	if err != nil {
		return err
	}

	type variant struct {
		label     string
		gpu       gpusim.Config
		gpuDirect bool
	}
	variants := []variant{
		{"V100, host-staged (paper)", gpusim.V100(), false},
		{"V100, GPUDirect", gpusim.V100(), true},
		{"A100, host-staged", gpusim.A100(), false},
		{"A100, GPUDirect", gpusim.A100(), true},
	}

	fmt.Fprintf(o.Out, "What-if — %s, 64 nodes, supermer m=7 (scale %.2f)\n", d.Name, o.scale())
	t := stats.NewTable("configuration", "parse", "exchange", "count", "total", "vs paper")
	var baseline float64
	for i, v := range variants {
		layout := paperize(cluster.SummitGPU(64))
		g := v.gpu
		g.LaunchOverheadUs = 0
		g.LinkLatencyUs = 0
		layout.GPU = &g
		cfg := pipeline.Default(layout, pipeline.SupermerMode)
		cfg.GPUDirect = v.gpuDirect
		res, err := pipeline.Run(cfg, reads)
		if err != nil {
			return err
		}
		total := res.Modeled.Total().Seconds()
		if i == 0 {
			baseline = total
		}
		t.Row(v.label, res.Modeled.Parse, res.Modeled.Exchange, res.Modeled.Count,
			res.Modeled.Total(), fmt.Sprintf("%.2f×", baseline/total))
	}
	fmt.Fprint(o.Out, t)
	fmt.Fprintln(o.Out, "the exchange-bound regime caps GPU-generation gains; transport changes move the needle")
	return nil
}
