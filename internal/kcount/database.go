package kcount

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Sentinel errors for the two corruption classes a reader must distinguish:
// a short file (interrupted download, partial write) versus a full-length
// file whose bytes are wrong. Both are wrapped with positional context;
// test with errors.Is.
var (
	// ErrTruncated marks a KCD stream that ended before the declared
	// structure was complete (short magic, header, entry, or checksum).
	ErrTruncated = errors.New("truncated database")
	// ErrChecksum marks a structurally complete KCD whose trailing CRC32
	// does not match the stream contents.
	ErrChecksum = errors.New("checksum mismatch")
)

// eofAs maps the io.ReadFull end-of-input errors onto sentinel, keeping any
// other I/O error (permission, device) intact.
func eofAs(err, sentinel error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return sentinel
	}
	return err
}

// The KCD (k-mer count database) on-disk format stores a counted table
// sorted by packed key — the library's equivalent of a KMC database
// (the paper's §VI discusses KMC3 and its database tooling):
//
//	magic   "DKCD"            4 bytes
//	version uint16            (1)
//	k       uint16
//	flags   uint32            bit 0: canonical counts
//	n       uint64            entry count
//	entries n × (key uint64, count uint32), ascending by key
//	crc32   uint32            IEEE, over everything after the magic
//
// All integers are little-endian. Keys are 2-bit packed k-mers under the
// encoding the producer used (the format does not fix one; record it out of
// band — the CLI always uses dna.Random).
const (
	kcdMagic   = "DKCD"
	kcdVersion = 1

	// FlagCanonical marks databases of canonical k-mer counts.
	FlagCanonical = 1 << 0
)

// Database is a loaded KCD: entries sorted by key.
type Database struct {
	// K is the k-mer length.
	K int
	// Flags carries FlagCanonical etc.
	Flags uint32
	// Entries are (key, count) pairs in ascending key order.
	Entries []KV
}

// Canonical reports whether the database holds canonical counts.
func (d *Database) Canonical() bool { return d.Flags&FlagCanonical != 0 }

// Len returns the number of distinct k-mers.
func (d *Database) Len() int { return len(d.Entries) }

// Get returns key's count via binary search (0 if absent).
func (d *Database) Get(key uint64) uint32 {
	i := sort.Search(len(d.Entries), func(i int) bool { return d.Entries[i].Key >= key })
	if i < len(d.Entries) && d.Entries[i].Key == key {
		return d.Entries[i].Count
	}
	return 0
}

// Table converts the database to an in-memory counter table.
func (d *Database) Table() *Table {
	t := NewTable(len(d.Entries), Linear)
	for _, e := range d.Entries {
		t.Add(e.Key, e.Count)
	}
	return t
}

// Histogram computes the frequency spectrum.
func (d *Database) Histogram() Histogram {
	h := Histogram{Counts: make(map[uint32]uint64)}
	for _, e := range d.Entries {
		h.Counts[e.Count]++
	}
	return h
}

// FromTable builds a sorted Database from a table.
func FromTable(t *Table, k int, flags uint32) *Database {
	d := &Database{K: k, Flags: flags, Entries: make([]KV, 0, t.Len())}
	t.ForEach(func(key uint64, count uint32) {
		d.Entries = append(d.Entries, KV{key, count})
	})
	sort.Slice(d.Entries, func(i, j int) bool { return d.Entries[i].Key < d.Entries[j].Key })
	return d
}

// crcWriter tees writes into a CRC.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// Write serializes the database.
func (d *Database) Write(w io.Writer) error {
	if d.K <= 0 || d.K > 32 {
		return fmt.Errorf("kcount: database k=%d outside (0,32]", d.K)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(kcdMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	hdr := make([]byte, 2+2+4+8)
	binary.LittleEndian.PutUint16(hdr[0:], kcdVersion)
	binary.LittleEndian.PutUint16(hdr[2:], uint16(d.K))
	binary.LittleEndian.PutUint32(hdr[4:], d.Flags)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(d.Entries)))
	if _, err := cw.Write(hdr); err != nil {
		return err
	}
	var prev uint64
	ent := make([]byte, 12)
	for i, e := range d.Entries {
		if i > 0 && e.Key <= prev {
			return fmt.Errorf("kcount: entries not strictly ascending at %d", i)
		}
		prev = e.Key
		binary.LittleEndian.PutUint64(ent[0:], e.Key)
		binary.LittleEndian.PutUint32(ent[8:], e.Count)
		if _, err := cw.Write(ent); err != nil {
			return err
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], cw.crc)
	if _, err := bw.Write(crc[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// StreamDatabase reads a KCD stream entry by entry without materializing
// the whole database — the constant-memory path for databases that exceed
// RAM. fn is invoked once per entry in ascending key order; a non-nil
// return aborts the scan and is passed through. The header (k, flags) is
// returned; structure and checksum are verified exactly as in ReadDatabase.
func StreamDatabase(r io.Reader, fn func(key uint64, count uint32) error) (k int, flags uint32, err error) {
	d, err := readKCD(r, fn)
	if err != nil {
		return 0, 0, err
	}
	return d.K, d.Flags, nil
}

// ReadDatabase parses a KCD stream, verifying structure and checksum.
func ReadDatabase(r io.Reader) (*Database, error) {
	return readKCD(r, nil)
}

// readKCD is the shared KCD parser: when fn is nil, entries are collected
// into the returned Database; otherwise they stream through fn and
// Entries stays empty.
func readKCD(r io.Reader, fn func(key uint64, count uint32) error) (*Database, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("kcount: reading magic: %w", eofAs(err, ErrTruncated))
	}
	if string(magic) != kcdMagic {
		return nil, fmt.Errorf("kcount: bad magic %q", magic)
	}
	crc := uint32(0)
	readFull := func(buf []byte) error {
		if _, err := io.ReadFull(br, buf); err != nil {
			return eofAs(err, ErrTruncated)
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf)
		return nil
	}
	hdr := make([]byte, 2+2+4+8)
	if err := readFull(hdr); err != nil {
		return nil, fmt.Errorf("kcount: reading header: %w", err)
	}
	version := binary.LittleEndian.Uint16(hdr[0:])
	if version != kcdVersion {
		return nil, fmt.Errorf("kcount: unsupported KCD version %d", version)
	}
	k := int(binary.LittleEndian.Uint16(hdr[2:]))
	if k <= 0 || k > 32 {
		return nil, fmt.Errorf("kcount: corrupt k=%d", k)
	}
	flags := binary.LittleEndian.Uint32(hdr[4:])
	n := binary.LittleEndian.Uint64(hdr[8:])
	const maxEntries = 1 << 34 // 16 Gi entries ≈ 192 GiB: reject nonsense sizes
	if n > maxEntries {
		return nil, fmt.Errorf("kcount: implausible entry count %d", n)
	}
	d := &Database{K: k, Flags: flags}
	if fn == nil {
		d.Entries = make([]KV, 0, n)
	}
	ent := make([]byte, 12)
	var prev uint64
	for i := uint64(0); i < n; i++ {
		if err := readFull(ent); err != nil {
			return nil, fmt.Errorf("kcount: reading entry %d: %w", i, err)
		}
		key := binary.LittleEndian.Uint64(ent[0:])
		count := binary.LittleEndian.Uint32(ent[8:])
		if i > 0 && key <= prev {
			return nil, fmt.Errorf("kcount: entries not ascending at %d", i)
		}
		if count == 0 {
			return nil, fmt.Errorf("kcount: zero count at entry %d", i)
		}
		prev = key
		if fn != nil {
			if err := fn(key, count); err != nil {
				return nil, err
			}
		} else {
			d.Entries = append(d.Entries, KV{key, count})
		}
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("kcount: reading checksum: %w", eofAs(err, ErrTruncated))
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != crc {
		return nil, fmt.Errorf("kcount: %w: file %08x, computed %08x", ErrChecksum, got, crc)
	}
	return d, nil
}
