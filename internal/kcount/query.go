package kcount

import (
	"fmt"

	"dedukt/internal/dna"
)

// ParseQuery converts an ASCII k-mer into the packed key under which a
// database with the given parameters stores it: the sequence is 2-bit
// packed under e and, for canonical databases, folded to the canonical
// strand. The sequence length must equal k — a query of the wrong length
// can never hit, so it is an error rather than a silent zero.
//
// This is the single ASCII→key path shared by the kserve service and the
// kmertools lookup subcommand, so CLI and HTTP queries agree byte-for-byte.
func ParseQuery(e *dna.Encoding, k int, canonical bool, seq string) (uint64, error) {
	if len(seq) != k {
		return 0, fmt.Errorf("kcount: query length %d, database k=%d", len(seq), k)
	}
	w, err := dna.KmerFromString(e, seq)
	if err != nil {
		return 0, err
	}
	if canonical {
		w = w.Canonical(e, k)
	}
	return uint64(w), nil
}

// Lookup resolves an ASCII k-mer against the database under encoding e,
// honoring the database's canonical flag. Absent k-mers return count 0.
func (d *Database) Lookup(e *dna.Encoding, seq string) (uint32, error) {
	key, err := ParseQuery(e, d.K, d.Canonical(), seq)
	if err != nil {
		return 0, err
	}
	return d.Get(key), nil
}

// GetBatch resolves a batch of packed keys, appending one count per key
// (0 for absent keys) to dst and returning it.
func (d *Database) GetBatch(dst []uint32, keys []uint64) []uint32 {
	for _, key := range keys {
		dst = append(dst, d.Get(key))
	}
	return dst
}

// Split partitions the database into n shards by destOf(key) — typically
// kernels.DestOf, the exchange phase's owner-rank hash, so a serving shard
// owns exactly the keys the corresponding rank would have counted. Entry
// order (ascending by key) is preserved within each shard; entries are
// subslices-by-copy so shards stay valid if d is released.
func (d *Database) Split(n int, destOf func(key uint64) int) ([]*Database, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kcount: split into %d shards", n)
	}
	shards := make([]*Database, n)
	sizes := make([]int, n)
	for _, e := range d.Entries {
		dest := destOf(e.Key)
		if dest < 0 || dest >= n {
			return nil, fmt.Errorf("kcount: destOf(%#x) = %d outside [0,%d)", e.Key, dest, n)
		}
		sizes[dest]++
	}
	for i := range shards {
		shards[i] = &Database{K: d.K, Flags: d.Flags, Entries: make([]KV, 0, sizes[i])}
	}
	for _, e := range d.Entries {
		s := shards[destOf(e.Key)]
		s.Entries = append(s.Entries, e)
	}
	return shards, nil
}
