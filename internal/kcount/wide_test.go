package kcount

import (
	"math/rand"
	"strings"
	"testing"

	"dedukt/internal/dna"
)

func TestWideTableBasic(t *testing.T) {
	tab := NewWideTable(4, Linear)
	a := dna.MustKmer128(&dna.Random, strings.Repeat("ACGT", 12)) // k=48
	b := dna.MustKmer128(&dna.Random, strings.Repeat("GGCA", 12))
	if !tab.Inc(a) {
		t.Fatal("first insert should be new")
	}
	if tab.Inc(a) {
		t.Fatal("second insert should not be new")
	}
	tab.Add(b, 5)
	if tab.Get(a) != 2 || tab.Get(b) != 5 {
		t.Fatalf("counts %d/%d", tab.Get(a), tab.Get(b))
	}
	if tab.Len() != 2 || tab.TotalCount() != 7 {
		t.Fatalf("len=%d total=%d", tab.Len(), tab.TotalCount())
	}
	var zero dna.Kmer128
	if tab.Get(zero) != 0 {
		t.Fatal("absent key should be 0")
	}
}

func TestWideTableGrowthAndOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	tab := NewWideTable(2, Quadratic)
	oracle := map[dna.Kmer128]uint32{}
	for i := 0; i < 30_000; i++ {
		key := dna.Kmer128{Hi: uint64(rng.Intn(50)), Lo: uint64(rng.Intn(100))}
		tab.Inc(key)
		oracle[key]++
	}
	if tab.Len() != len(oracle) {
		t.Fatalf("len %d, oracle %d", tab.Len(), len(oracle))
	}
	for k, want := range oracle {
		if got := tab.Get(k); got != want {
			t.Fatalf("Get(%v) = %d, want %d", k, got, want)
		}
	}
	seen := 0
	tab.ForEach(func(k dna.Kmer128, c uint32) {
		if oracle[k] != c {
			t.Fatalf("ForEach %v count %d, oracle %d", k, c, oracle[k])
		}
		seen++
	})
	if seen != len(oracle) {
		t.Fatalf("visited %d", seen)
	}
	h := tab.Histogram()
	if h.Distinct() != uint64(len(oracle)) || h.Total() != tab.TotalCount() {
		t.Fatal("histogram inconsistent")
	}
}

func TestCountWideMatchesNaive(t *testing.T) {
	// Wide counting at k=45 must match a string-keyed oracle, with N
	// handling and canonical mode.
	rng := rand.New(rand.NewSource(82))
	const k = 45
	reads := make([][]byte, 40)
	for i := range reads {
		seq := make([]byte, 80+rng.Intn(120))
		for j := range seq {
			if rng.Intn(60) == 0 {
				seq[j] = 'N'
			} else {
				seq[j] = "ACGT"[rng.Intn(4)]
			}
		}
		reads[i] = seq
	}
	for _, canonical := range []bool{false, true} {
		oracle := map[string]uint32{}
		for _, seq := range reads {
		outer:
			for i := 0; i+k <= len(seq); i++ {
				win := seq[i : i+k]
				for _, c := range win {
					if c == 'N' {
						continue outer
					}
				}
				key := string(win)
				if canonical {
					rc := dna.MustKmer128(&dna.Random, key).ReverseComplement(&dna.Random, k).String(&dna.Random, k)
					if rcLess(rc, key, k) {
						key = rc
					}
				}
				oracle[key]++
			}
		}
		tab := CountWide(&dna.Random, reads, k, canonical)
		if tab.Len() != len(oracle) {
			t.Fatalf("canonical=%v: distinct %d, oracle %d", canonical, tab.Len(), len(oracle))
		}
		for s, want := range oracle {
			if got := tab.Get(dna.MustKmer128(&dna.Random, s)); got != want {
				t.Fatalf("canonical=%v: %q = %d, want %d", canonical, s, got, want)
			}
		}
	}
}

// rcLess compares two k-mer strings under the dna.Random encoding's packed
// order (the canonical tie-break used by Kmer128.Canonical).
func rcLess(a, b string, k int) bool {
	return dna.MustKmer128(&dna.Random, a).Less(dna.MustKmer128(&dna.Random, b))
}
