package kcount

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"dedukt/internal/dna"
)

func TestTableBasic(t *testing.T) {
	tab := NewTable(4, Linear)
	if isNew := tab.Inc(42); !isNew {
		t.Fatal("first insert should be new")
	}
	if isNew := tab.Inc(42); isNew {
		t.Fatal("second insert should not be new")
	}
	tab.Add(7, 5)
	if got := tab.Get(42); got != 2 {
		t.Fatalf("Get(42) = %d, want 2", got)
	}
	if got := tab.Get(7); got != 5 {
		t.Fatalf("Get(7) = %d, want 5", got)
	}
	if got := tab.Get(999); got != 0 {
		t.Fatalf("Get(999) = %d, want 0", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if tab.TotalCount() != 7 {
		t.Fatalf("TotalCount = %d, want 7", tab.TotalCount())
	}
}

func TestTableZeroKey(t *testing.T) {
	// Key 0 (the all-A k-mer under lexicographic encoding) must work.
	tab := NewTable(4, Linear)
	tab.Inc(0)
	tab.Inc(0)
	if got := tab.Get(0); got != 2 {
		t.Fatalf("Get(0) = %d, want 2", got)
	}
}

func TestTableSentinelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for sentinel key")
		}
	}()
	NewTable(4, Linear).Inc(^uint64(0))
}

func TestTableGrowth(t *testing.T) {
	tab := NewTable(2, Linear)
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		tab.Add(i, uint32(i%7)+1)
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if got := tab.Get(i); got != uint32(i%7)+1 {
			t.Fatalf("Get(%d) = %d after growth", i, got)
		}
	}
	if tab.LoadFactor() > 0.7 {
		t.Fatalf("load factor %.2f > 0.7 after growth", tab.LoadFactor())
	}
}

func TestTableMatchesMapOracle(t *testing.T) {
	for _, prob := range []Probing{Linear, Quadratic} {
		rng := rand.New(rand.NewSource(31))
		tab := NewTable(16, prob)
		oracle := map[uint64]uint32{}
		for i := 0; i < 50_000; i++ {
			key := uint64(rng.Intn(5_000)) // heavy duplication
			tab.Inc(key)
			oracle[key]++
		}
		if tab.Len() != len(oracle) {
			t.Fatalf("%v: Len %d != oracle %d", prob, tab.Len(), len(oracle))
		}
		for k, want := range oracle {
			if got := tab.Get(k); got != want {
				t.Fatalf("%v: Get(%d) = %d, want %d", prob, k, got, want)
			}
		}
		seen := 0
		tab.ForEach(func(k uint64, c uint32) {
			if oracle[k] != c {
				t.Fatalf("%v: ForEach key %d count %d, oracle %d", prob, k, c, oracle[k])
			}
			seen++
		})
		if seen != len(oracle) {
			t.Fatalf("%v: ForEach visited %d, want %d", prob, seen, len(oracle))
		}
	}
}

func TestTableMerge(t *testing.T) {
	a, b := NewTable(4, Linear), NewTable(4, Linear)
	a.Add(1, 2)
	a.Add(2, 3)
	b.Add(2, 4)
	b.Add(3, 1)
	a.Merge(b)
	want := map[uint64]uint32{1: 2, 2: 7, 3: 1}
	for k, w := range want {
		if got := a.Get(k); got != w {
			t.Errorf("merged Get(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestHistogram(t *testing.T) {
	tab := NewTable(8, Linear)
	// 3 singletons, 2 doubletons, 1 kmer with count 5.
	for _, k := range []uint64{10, 11, 12} {
		tab.Inc(k)
	}
	for _, k := range []uint64{20, 21} {
		tab.Add(k, 2)
	}
	tab.Add(30, 5)
	h := tab.Histogram()
	if h.Counts[1] != 3 || h.Counts[2] != 2 || h.Counts[5] != 1 {
		t.Fatalf("histogram = %v", h.Counts)
	}
	if h.Distinct() != 6 {
		t.Fatalf("Distinct = %d", h.Distinct())
	}
	if h.Total() != 3+4+5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Singletons() != 3 {
		t.Fatalf("Singletons = %d", h.Singletons())
	}
	fs := h.Frequencies()
	if len(fs) != 3 || fs[0] != 1 || fs[2] != 5 {
		t.Fatalf("Frequencies = %v", fs)
	}
	h2 := Histogram{Counts: map[uint32]uint64{1: 1}}
	h.Merge(h2)
	if h.Counts[1] != 4 {
		t.Fatal("merge failed")
	}
}

func TestTopK(t *testing.T) {
	tab := NewTable(8, Linear)
	tab.Add(1, 10)
	tab.Add(2, 30)
	tab.Add(3, 20)
	tab.Add(4, 30)
	top := tab.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK len %d", len(top))
	}
	if top[0].Key != 2 || top[1].Key != 4 || top[2].Key != 3 {
		t.Fatalf("TopK order = %v", top)
	}
	if got := tab.TopK(100); len(got) != 4 {
		t.Fatalf("TopK(100) len %d", len(got))
	}
}

func TestSerialCountOracle(t *testing.T) {
	reads := [][]byte{[]byte("ACGTACGT"), []byte("ACGT"), []byte("NNACGT")}
	m := SerialCount(&dna.Lexicographic, reads, 4)
	acgt := dna.MustKmer(&dna.Lexicographic, "ACGT")
	if m[acgt] != 4 {
		t.Fatalf("ACGT count = %d, want 4", m[acgt])
	}
	tab := NewTable(8, Linear)
	for k, c := range m {
		tab.Add(uint64(k), c)
	}
	if diff := tab.EqualToOracle(m); diff != "" {
		t.Fatal(diff)
	}
	tab.Inc(uint64(acgt))
	if diff := tab.EqualToOracle(m); diff == "" {
		t.Fatal("EqualToOracle should detect count drift")
	}
}

func TestAtomicTableSerialSemantics(t *testing.T) {
	tab := NewAtomicTable(100, 0.5, Linear)
	oracle := map[uint64]uint32{}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 5_000; i++ {
		key := uint64(rng.Intn(90))
		if _, _, err := tab.Inc(key); err != nil {
			t.Fatal(err)
		}
		oracle[key]++
	}
	if tab.Len() != len(oracle) {
		t.Fatalf("Len %d != %d", tab.Len(), len(oracle))
	}
	for k, want := range oracle {
		if got := tab.Get(k); got != want {
			t.Fatalf("Get(%d) = %d, want %d", k, got, want)
		}
	}
	if tab.Probes() == 0 {
		t.Fatal("probe accounting missing")
	}
}

func TestAtomicTableConcurrent(t *testing.T) {
	// 8 goroutines hammer a small key space; total counts must conserve.
	tab := NewAtomicTable(512, 0.5, Linear)
	const workers, perWorker, keySpace = 8, 20_000, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				if _, _, err := tab.Inc(uint64(rng.Intn(keySpace))); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	var total uint64
	tab.ForEach(func(_ uint64, c uint32) { total += uint64(c) })
	if total != workers*perWorker {
		t.Fatalf("count conservation violated: %d != %d", total, workers*perWorker)
	}
	if tab.Len() > keySpace {
		t.Fatalf("Len %d > key space %d", tab.Len(), keySpace)
	}
}

func TestAtomicTableFull(t *testing.T) {
	tab := NewAtomicTable(4, 0.5, Linear)
	capacity := tab.Cap()
	var err error
	for i := 0; err == nil && i < capacity+1; i++ {
		_, _, err = tab.Inc(uint64(i * 1_000_003))
	}
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("expected ErrTableFull, got %v", err)
	}
}

func TestAtomicSnapshot(t *testing.T) {
	tab := NewAtomicTable(16, 0.5, Quadratic)
	tab.Add(5, 3)
	tab.Add(9, 1)
	snap := tab.Snapshot()
	if snap.Get(5) != 3 || snap.Get(9) != 1 || snap.Len() != 2 {
		t.Fatal("snapshot mismatch")
	}
}

func TestQuadraticProbeFullCycle(t *testing.T) {
	// Triangular quadratic probing must visit every slot of a power-of-two
	// table — otherwise inserts could fail while slots remain free.
	const capacity = 64
	seen := map[uint64]bool{}
	for i := uint64(0); i < capacity; i++ {
		seen[Quadratic.step(i)%capacity] = true
	}
	if len(seen) != capacity {
		t.Fatalf("quadratic probe visits %d/%d slots", len(seen), capacity)
	}
}

func TestTablePropertyInsertFind(t *testing.T) {
	f := func(keys []uint64, deltas []uint8) bool {
		tab := NewTable(8, Linear)
		oracle := map[uint64]uint32{}
		for i, k := range keys {
			if k > MaxKey {
				k = MaxKey
			}
			d := uint32(1)
			if i < len(deltas) {
				d = uint32(deltas[i]) + 1
			}
			tab.Add(k, d)
			oracle[k] += d
		}
		for k, want := range oracle {
			if tab.Get(k) != want {
				return false
			}
		}
		return tab.Len() == len(oracle)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
