package kcount

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func sampleDB(t *testing.T, n int, seed int64) *Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tab := NewTable(n, Linear)
	for i := 0; i < n*3; i++ {
		tab.Inc(uint64(rng.Intn(n * 2)))
	}
	return FromTable(tab, 17, 0)
}

func TestDatabaseRoundTrip(t *testing.T) {
	d := sampleDB(t, 5_000, 101)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != d.K || back.Flags != d.Flags || back.Len() != d.Len() {
		t.Fatalf("header mismatch: %+v vs %+v", back, d)
	}
	for i := range d.Entries {
		if back.Entries[i] != d.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestDatabaseEmptyRoundTrip(t *testing.T) {
	d := &Database{K: 17, Flags: FlagCanonical}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 || !back.Canonical() {
		t.Fatalf("empty round trip: %+v", back)
	}
}

func TestDatabaseSortedAndGet(t *testing.T) {
	d := sampleDB(t, 1_000, 102)
	for i := 1; i < len(d.Entries); i++ {
		if d.Entries[i].Key <= d.Entries[i-1].Key {
			t.Fatal("entries not sorted")
		}
	}
	for _, e := range d.Entries {
		if d.Get(e.Key) != e.Count {
			t.Fatalf("Get(%d) = %d, want %d", e.Key, d.Get(e.Key), e.Count)
		}
	}
	if d.Get(^uint64(0)-1) != 0 {
		t.Fatal("absent key should be 0")
	}
	// Table conversion preserves everything.
	tab := d.Table()
	if tab.Len() != d.Len() {
		t.Fatal("table conversion lost entries")
	}
	// Histogram totals agree.
	if d.Histogram().Distinct() != uint64(d.Len()) {
		t.Fatal("histogram distinct mismatch")
	}
}

func TestDatabaseCorruptionDetected(t *testing.T) {
	d := sampleDB(t, 500, 103)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string]func([]byte) []byte{
		"bad magic":   func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version": func(b []byte) []byte { b[4] = 99; return b },
		"flipped bit": func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)-5] },
		"bad crc":     func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },
	}
	for name, corrupt := range cases {
		data := corrupt(append([]byte(nil), good...))
		if _, err := ReadDatabase(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestDatabaseRejectsBadK(t *testing.T) {
	d := &Database{K: 0}
	if err := d.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("k=0 should fail")
	}
	d = &Database{K: 40}
	if err := d.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("k=40 should fail")
	}
}

func TestDatabaseRejectsUnsortedWrite(t *testing.T) {
	d := &Database{K: 17, Entries: []KV{{5, 1}, {3, 1}}}
	if err := d.Write(&bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("unsorted write not rejected: %v", err)
	}
}

func dbFrom(entries ...KV) *Database { return &Database{K: 17, Entries: entries} }

func TestIntersect(t *testing.T) {
	a := dbFrom(KV{1, 5}, KV{3, 2}, KV{7, 9})
	b := dbFrom(KV{3, 4}, KV{5, 1}, KV{7, 3})
	got, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{{3, 2}, {7, 3}}
	if len(got.Entries) != len(want) {
		t.Fatalf("entries %v", got.Entries)
	}
	for i := range want {
		if got.Entries[i] != want[i] {
			t.Fatalf("entry %d = %v, want %v", i, got.Entries[i], want[i])
		}
	}
}

func TestUnion(t *testing.T) {
	a := dbFrom(KV{1, 5}, KV{3, 2})
	b := dbFrom(KV{2, 1}, KV{3, 4})
	got, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{{1, 5}, {2, 1}, {3, 6}}
	if len(got.Entries) != len(want) {
		t.Fatalf("entries %v", got.Entries)
	}
	for i := range want {
		if got.Entries[i] != want[i] {
			t.Fatalf("entry %d = %v", i, got.Entries[i])
		}
	}
	// Saturation.
	s, _ := Union(dbFrom(KV{1, 0xffffffff}), dbFrom(KV{1, 10}))
	if s.Entries[0].Count != 0xffffffff {
		t.Fatal("union should saturate")
	}
}

func TestSubtract(t *testing.T) {
	a := dbFrom(KV{1, 5}, KV{3, 2}, KV{9, 4})
	b := dbFrom(KV{1, 2}, KV{3, 7})
	got, err := Subtract(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{{1, 3}, {9, 4}} // key 3 went ≤ 0 and dropped
	if len(got.Entries) != len(want) {
		t.Fatalf("entries %v", got.Entries)
	}
	for i := range want {
		if got.Entries[i] != want[i] {
			t.Fatalf("entry %d = %v", i, got.Entries[i])
		}
	}
}

func TestSetOpsCompatibility(t *testing.T) {
	a := &Database{K: 17}
	b := &Database{K: 21}
	if _, err := Intersect(a, b); err == nil {
		t.Error("k mismatch should fail")
	}
	c := &Database{K: 17, Flags: FlagCanonical}
	if _, err := Union(a, c); err == nil {
		t.Error("canonical mismatch should fail")
	}
}

func TestFilterCounts(t *testing.T) {
	a := dbFrom(KV{1, 1}, KV{2, 5}, KV{3, 50})
	got := FilterCounts(a, 2, 10)
	if len(got.Entries) != 1 || got.Entries[0].Key != 2 {
		t.Fatalf("filtered %v", got.Entries)
	}
	if got := FilterCounts(a, 2, 0); len(got.Entries) != 2 {
		t.Fatalf("unbounded max filtered %v", got.Entries)
	}
}

func TestSetOpsAgainstMapOracle(t *testing.T) {
	// Property: merge-based set ops equal the map computation on random
	// databases.
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 30; trial++ {
		mk := func() (*Database, map[uint64]uint32) {
			tab := NewTable(64, Linear)
			m := map[uint64]uint32{}
			for i := 0; i < 200; i++ {
				k := uint64(rng.Intn(150))
				tab.Inc(k)
				m[k]++
			}
			return FromTable(tab, 17, 0), m
		}
		a, ma := mk()
		b, mb := mk()

		inter, _ := Intersect(a, b)
		for _, e := range inter.Entries {
			want := ma[e.Key]
			if mb[e.Key] < want {
				want = mb[e.Key]
			}
			if e.Count != want || want == 0 {
				t.Fatalf("intersect key %d = %d, want %d", e.Key, e.Count, want)
			}
		}
		uni, _ := Union(a, b)
		if len(uni.Entries) != len(unionKeys(ma, mb)) {
			t.Fatal("union key set wrong")
		}
		sub, _ := Subtract(a, b)
		for _, e := range sub.Entries {
			if e.Count != ma[e.Key]-mb[e.Key] {
				t.Fatalf("subtract key %d = %d", e.Key, e.Count)
			}
		}
	}
}

func unionKeys(a, b map[uint64]uint32) map[uint64]bool {
	out := map[uint64]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func TestStreamDatabase(t *testing.T) {
	d := sampleDB(t, 2_000, 105)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var got []KV
	k, flags, err := StreamDatabase(bytes.NewReader(buf.Bytes()), func(key uint64, count uint32) error {
		got = append(got, KV{key, count})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if k != d.K || flags != d.Flags || len(got) != d.Len() {
		t.Fatalf("stream header/len mismatch: k=%d flags=%d n=%d", k, flags, len(got))
	}
	for i := range got {
		if got[i] != d.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
	// Early abort propagates.
	sentinel := bytes.NewReader(buf.Bytes())
	n := 0
	_, _, err = StreamDatabase(sentinel, func(uint64, uint32) error {
		n++
		if n == 10 {
			return errStop
		}
		return nil
	})
	if err != errStop || n != 10 {
		t.Fatalf("abort: err=%v n=%d", err, n)
	}
	// Corruption still detected in streaming mode.
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/2] ^= 1
	if _, _, err := StreamDatabase(bytes.NewReader(data), func(uint64, uint32) error { return nil }); err == nil {
		t.Fatal("streaming reader missed corruption")
	}
}

var errStop = errSentinel("stop")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
