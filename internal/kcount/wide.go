package kcount

import (
	"math/bits"

	"dedukt/internal/dna"
	"dedukt/internal/hash"
)

// WideTable is the open-addressing counter for two-word (k ≤ 64) k-mers:
// the serial counting path for k values beyond the distributed pipeline's
// single-word range. Slots are empty when their count is zero, so no key
// biasing is needed.
type WideTable struct {
	keys   [][2]uint64
	counts []uint32
	mask   uint64
	n      int
	prob   Probing
	// Probes accumulates slot inspections, as in Table.
	Probes uint64
}

// NewWideTable creates a table with capacity for at least expected entries
// at ≤50% initial load.
func NewWideTable(expected int, prob Probing) *WideTable {
	if expected < 1 {
		expected = 1
	}
	capacity := 1 << uint(bits.Len(uint(expected*2-1)))
	if capacity < 8 {
		capacity = 8
	}
	return &WideTable{
		keys:   make([][2]uint64, capacity),
		counts: make([]uint32, capacity),
		mask:   uint64(capacity - 1),
		prob:   prob,
	}
}

// Len returns the number of distinct keys.
func (t *WideTable) Len() int { return t.n }

// Cap returns the slot capacity.
func (t *WideTable) Cap() int { return len(t.keys) }

func wideSlot(key dna.Kmer128, mask uint64) uint64 {
	w := key.Words()
	return hash.Words64(w[:], tableSeed) & mask
}

// Add increments key's count by delta, inserting if absent; reports whether
// the key was new.
func (t *WideTable) Add(key dna.Kmer128, delta uint32) (isNew bool) {
	if float64(t.n+1) > 0.7*float64(len(t.keys)) {
		t.grow()
	}
	kw := key.Words()
	slot := wideSlot(key, t.mask)
	for i := uint64(0); ; i++ {
		idx := (slot + t.prob.step(i)) & t.mask
		t.Probes++
		switch {
		case t.counts[idx] == 0:
			t.keys[idx] = kw
			t.counts[idx] = delta
			t.n++
			return true
		case t.keys[idx] == kw:
			t.counts[idx] += delta
			return false
		}
	}
}

// Inc is Add(key, 1).
func (t *WideTable) Inc(key dna.Kmer128) bool { return t.Add(key, 1) }

// Get returns key's count (0 if absent).
func (t *WideTable) Get(key dna.Kmer128) uint32 {
	kw := key.Words()
	slot := wideSlot(key, t.mask)
	for i := uint64(0); ; i++ {
		idx := (slot + t.prob.step(i)) & t.mask
		switch {
		case t.counts[idx] == 0:
			return 0
		case t.keys[idx] == kw:
			return t.counts[idx]
		}
	}
}

// ForEach visits every (key, count) pair in unspecified order.
func (t *WideTable) ForEach(fn func(key dna.Kmer128, count uint32)) {
	for i, c := range t.counts {
		if c != 0 {
			fn(dna.Kmer128{Hi: t.keys[i][0], Lo: t.keys[i][1]}, c)
		}
	}
}

// TotalCount sums all counts.
func (t *WideTable) TotalCount() uint64 {
	var total uint64
	for _, c := range t.counts {
		total += uint64(c)
	}
	return total
}

// Histogram computes the frequency spectrum.
func (t *WideTable) Histogram() Histogram {
	h := Histogram{Counts: make(map[uint32]uint64)}
	for _, c := range t.counts {
		if c != 0 {
			h.Counts[c]++
		}
	}
	return h
}

func (t *WideTable) grow() {
	old := *t
	t.keys = make([][2]uint64, len(old.keys)*2)
	t.counts = make([]uint32, len(old.counts)*2)
	t.mask = uint64(len(t.keys) - 1)
	t.n = 0
	for i, c := range old.counts {
		if c != 0 {
			t.Add(dna.Kmer128{Hi: old.keys[i][0], Lo: old.keys[i][1]}, c)
		}
	}
	t.Probes = old.Probes
}

// CountWide counts the k-mers (k ≤ 64) of reads into a WideTable,
// optionally canonicalizing. Windows containing invalid bases are skipped,
// matching the k ≤ 32 scanner's convention.
func CountWide(enc *dna.Encoding, reads [][]byte, k int, canonical bool) *WideTable {
	t := NewWideTable(1024, Linear)
	for _, seq := range reads {
		var w dna.Kmer128
		valid := 0
		for _, ch := range seq {
			code, ok := enc.Encode(ch)
			if !ok {
				valid = 0
				continue
			}
			w = w.Append(k, code)
			valid++
			if valid < k {
				continue
			}
			key := w
			if canonical {
				key = w.Canonical(enc, k)
			}
			t.Inc(key)
		}
	}
	return t
}
