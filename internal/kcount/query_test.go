package kcount

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"dedukt/internal/dna"
)

// TestDatabaseTruncationErrors pins the error classification of short
// streams: every truncation point — mid-magic, mid-header, mid-entry,
// mid-checksum — must surface ErrTruncated, never a bare EOF or a
// misleading structural error.
func TestDatabaseTruncationErrors(t *testing.T) {
	d := sampleDB(t, 200, 104)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cuts := map[string]int{
		"empty":          0,
		"short magic":    2,
		"short header":   4 + 7,             // inside the fixed header
		"no entries":     4 + 16,            // header complete, first entry missing
		"mid entry":      4 + 16 + 12*3 + 5, // inside the 4th entry
		"no checksum":    len(good) - 4,     // all entries, checksum absent
		"short checksum": len(good) - 2,     // checksum half-written
	}
	for name, cut := range cuts {
		_, err := ReadDatabase(bytes.NewReader(good[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("%s (cut at %d): got %v, want ErrTruncated", name, cut, err)
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%s: raw EOF leaked through: %v", name, err)
		}
		// The streaming reader must classify identically.
		if _, _, serr := StreamDatabase(bytes.NewReader(good[:cut]), func(uint64, uint32) error { return nil }); !errors.Is(serr, ErrTruncated) {
			t.Errorf("%s: StreamDatabase got %v, want ErrTruncated", name, serr)
		}
	}
}

// TestDatabaseChecksumErrors flips single bytes and checks the CRC (or a
// structural check that fires first) rejects the stream; a flip confined to
// the trailing CRC itself must be reported as ErrChecksum.
func TestDatabaseChecksumErrors(t *testing.T) {
	d := sampleDB(t, 200, 105)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for _, pos := range []int{len(good) - 1, len(good) - 4} {
		data := append([]byte(nil), good...)
		data[pos] ^= 0x01
		_, err := ReadDatabase(bytes.NewReader(data))
		if !errors.Is(err, ErrChecksum) {
			t.Errorf("flipped CRC byte %d: got %v, want ErrChecksum", pos, err)
		}
	}

	// A flipped count byte leaves the key order intact, so only the CRC
	// catches it. (Entry layout: 8 key bytes then 4 count bytes.)
	data := append([]byte(nil), good...)
	firstCount := 4 + 16 + 8
	data[firstCount] ^= 0x01
	if _, err := ReadDatabase(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped count byte: got %v, want ErrChecksum", err)
	}

	// Truncation takes precedence over checksum: a short file is reported
	// as truncated even though its CRC cannot match either.
	if _, err := ReadDatabase(bytes.NewReader(data[:len(data)-6])); !errors.Is(err, ErrTruncated) {
		t.Errorf("corrupt+truncated: got %v, want ErrTruncated", err)
	}
}

func TestParseQuery(t *testing.T) {
	e := &dna.Random
	const k = 5
	seq := "ACGTA"
	want := uint64(dna.MustKmer(e, seq))
	got, err := ParseQuery(e, k, false, seq)
	if err != nil || got != want {
		t.Fatalf("ParseQuery(%q) = %#x, %v; want %#x", seq, got, err, want)
	}

	// Canonical folding: the query and its reverse complement resolve to
	// the same key.
	canon, err := ParseQuery(e, k, true, seq)
	if err != nil {
		t.Fatal(err)
	}
	rc := dna.MustKmer(e, seq).ReverseComplement(e, k).String(e, k)
	canonRC, err := ParseQuery(e, k, true, rc)
	if err != nil {
		t.Fatal(err)
	}
	if canon != canonRC {
		t.Fatalf("canonical queries diverge: %#x vs %#x", canon, canonRC)
	}

	for _, bad := range []string{"", "ACG", "ACGTAA", "ACGTN"} {
		if _, err := ParseQuery(e, k, false, bad); err == nil {
			t.Errorf("ParseQuery(%q) accepted", bad)
		}
	}
}

func TestDatabaseLookup(t *testing.T) {
	e := &dna.Random
	const k = 7
	tab := NewTable(8, Linear)
	seqs := []string{"ACGTACG", "TTTTTTT", "GATTACA"}
	for i, s := range seqs {
		for j := 0; j <= i; j++ {
			tab.Inc(uint64(dna.MustKmer(e, s)))
		}
	}
	d := FromTable(tab, k, 0)
	for i, s := range seqs {
		c, err := d.Lookup(e, s)
		if err != nil {
			t.Fatal(err)
		}
		if int(c) != i+1 {
			t.Fatalf("Lookup(%q) = %d, want %d", s, c, i+1)
		}
	}
	if c, err := d.Lookup(e, "CCCCCCC"); err != nil || c != 0 {
		t.Fatalf("absent Lookup = %d, %v", c, err)
	}
	if _, err := d.Lookup(e, "ACGT"); err == nil {
		t.Fatal("wrong-length Lookup accepted")
	}
}

func TestDatabaseSplit(t *testing.T) {
	d := sampleDB(t, 2_000, 106)
	const n = 7
	destOf := func(key uint64) int { return int(key % n) }
	shards, err := d.Split(n, destOf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range shards {
		if s.K != d.K || s.Flags != d.Flags {
			t.Fatalf("shard %d header mismatch", i)
		}
		for j, e := range s.Entries {
			if destOf(e.Key) != i {
				t.Fatalf("shard %d holds foreign key %#x", i, e.Key)
			}
			if j > 0 && e.Key <= s.Entries[j-1].Key {
				t.Fatalf("shard %d not ascending at %d", i, j)
			}
			if s.Get(e.Key) != d.Get(e.Key) {
				t.Fatalf("shard %d count mismatch for %#x", i, e.Key)
			}
		}
		total += s.Len()
	}
	if total != d.Len() {
		t.Fatalf("split lost entries: %d vs %d", total, d.Len())
	}

	if _, err := d.Split(0, destOf); err == nil {
		t.Fatal("Split(0) accepted")
	}
	if _, err := d.Split(2, func(uint64) int { return 5 }); err == nil {
		t.Fatal("out-of-range destOf accepted")
	}
}

func TestDatabaseGetBatch(t *testing.T) {
	d := dbFrom(KV{2, 10}, KV{5, 20}, KV{9, 30})
	got := d.GetBatch(nil, []uint64{5, 1, 9, 2, 2})
	want := []uint32{20, 0, 30, 10, 10}
	if len(got) != len(want) {
		t.Fatalf("GetBatch len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GetBatch[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestDatabaseGarbageStreams feeds structured garbage that is not a
// truncation of a valid file.
func TestDatabaseGarbageStreams(t *testing.T) {
	huge := make([]byte, 4+16)
	copy(huge, "DKCD")
	huge[4] = 1                // version
	huge[6] = 17               // k
	for i := 12; i < 20; i++ { // n = 0xffff… : implausible
		huge[i] = 0xff
	}
	if _, err := ReadDatabase(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("implausible n: %v", err)
	}
}
