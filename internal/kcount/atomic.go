package kcount

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"
)

// ErrTableFull is returned when an insert exhausts the probe budget of a
// fixed-capacity atomic table.
var ErrTableFull = errors.New("kcount: atomic table full")

// AtomicTable is the fixed-capacity concurrent counter with the GPU kernel's
// semantics (§III-B.3): a slot is claimed by an atomic compare-and-swap on
// the key word, and the count is bumped with an atomic add — "both
// operations are handled atomically to avoid race conditions". Capacity is
// fixed at construction exactly like a device-resident table; inserting
// beyond capacity returns ErrTableFull.
type AtomicTable struct {
	keys   []atomic.Uint64 // biased: stored = key + 1; 0 = empty
	counts []atomic.Uint32
	mask   uint64
	prob   Probing
	n      atomic.Int64
	probes atomic.Uint64
}

// NewAtomicTable creates a table with capacity the next power of two above
// expected/maxLoad (maxLoad 0 defaults to 0.5).
func NewAtomicTable(expected int, maxLoad float64, prob Probing) *AtomicTable {
	if maxLoad <= 0 || maxLoad >= 1 {
		maxLoad = 0.5
	}
	if expected < 1 {
		expected = 1
	}
	want := int(float64(expected)/maxLoad) + 1
	capacity := 1 << uint(bits.Len(uint(want-1)))
	if capacity < 8 {
		capacity = 8
	}
	return &AtomicTable{
		keys:   make([]atomic.Uint64, capacity),
		counts: make([]atomic.Uint32, capacity),
		mask:   uint64(capacity - 1),
		prob:   prob,
	}
}

// Cap returns the slot capacity.
func (t *AtomicTable) Cap() int { return len(t.keys) }

// Len returns the number of distinct keys currently stored.
func (t *AtomicTable) Len() int { return int(t.n.Load()) }

// Probes returns the cumulative number of slot inspections, the memory-
// traffic figure consumed by the GPU cost model.
func (t *AtomicTable) Probes() uint64 { return t.probes.Load() }

// Add atomically increments key's count by delta, claiming a slot if the
// key is new. Safe for concurrent use. Returns whether the key was newly
// inserted, and the number of slots probed.
func (t *AtomicTable) Add(key uint64, delta uint32) (isNew bool, probes int, err error) {
	if key > MaxKey {
		panic("kcount: key collides with empty sentinel")
	}
	stored := key + 1
	slot := slotOf(key, t.mask)
	capacity := uint64(len(t.keys))
	for i := uint64(0); i < capacity; i++ {
		idx := (slot + t.prob.step(i)) & t.mask
		probes++
		cur := t.keys[idx].Load()
		if cur == 0 {
			if t.keys[idx].CompareAndSwap(0, stored) {
				// Slot claimed.
				t.counts[idx].Add(delta)
				t.n.Add(1)
				t.probes.Add(uint64(probes))
				return true, probes, nil
			}
			// Lost the race; re-read the winner's key.
			cur = t.keys[idx].Load()
		}
		if cur == stored {
			t.counts[idx].Add(delta)
			t.probes.Add(uint64(probes))
			return false, probes, nil
		}
	}
	t.probes.Add(uint64(probes))
	return false, probes, fmt.Errorf("%w (cap %d)", ErrTableFull, capacity)
}

// Inc is Add(key, 1).
func (t *AtomicTable) Inc(key uint64) (bool, int, error) { return t.Add(key, 1) }

// Get returns the count of key (0 if absent). Safe concurrently with Add,
// though counts read during insertion races may lag.
func (t *AtomicTable) Get(key uint64) uint32 {
	stored := key + 1
	slot := slotOf(key, t.mask)
	capacity := uint64(len(t.keys))
	for i := uint64(0); i < capacity; i++ {
		idx := (slot + t.prob.step(i)) & t.mask
		switch t.keys[idx].Load() {
		case 0:
			return 0
		case stored:
			return t.counts[idx].Load()
		}
	}
	return 0
}

// ForEach calls fn for every (key, count) pair. Callers must ensure no
// concurrent writers.
func (t *AtomicTable) ForEach(fn func(key uint64, count uint32)) {
	for i := range t.keys {
		if stored := t.keys[i].Load(); stored != 0 {
			fn(stored-1, t.counts[i].Load())
		}
	}
}

// Snapshot copies the contents into a serial Table (for histogramming and
// reporting once the kernel has finished).
func (t *AtomicTable) Snapshot() *Table {
	out := NewTable(t.Len(), t.prob)
	t.ForEach(func(k uint64, c uint32) { out.Add(k, c) })
	return out
}
