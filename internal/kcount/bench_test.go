package kcount

import (
	"math/rand"
	"testing"
)

func benchKeys(n, space int) []uint64 {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(space))
	}
	return keys
}

func BenchmarkTableInc(b *testing.B) {
	keys := benchKeys(1<<16, 1<<14)
	b.SetBytes(8)
	b.ResetTimer()
	tab := NewTable(1<<14, Linear)
	for i := 0; i < b.N; i++ {
		tab.Inc(keys[i&(1<<16-1)])
	}
}

func BenchmarkTableIncQuadratic(b *testing.B) {
	keys := benchKeys(1<<16, 1<<14)
	b.ResetTimer()
	tab := NewTable(1<<14, Quadratic)
	for i := 0; i < b.N; i++ {
		tab.Inc(keys[i&(1<<16-1)])
	}
}

func BenchmarkAtomicTableInc(b *testing.B) {
	keys := benchKeys(1<<16, 1<<14)
	tab := NewAtomicTable(1<<14, 0.5, Linear)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tab.Inc(keys[i&(1<<16-1)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAtomicTableIncParallel(b *testing.B) {
	keys := benchKeys(1<<16, 1<<14)
	tab := NewAtomicTable(1<<14, 0.5, Linear)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := tab.Inc(keys[i&(1<<16-1)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkTableGet(b *testing.B) {
	keys := benchKeys(1<<16, 1<<14)
	tab := NewTable(1<<14, Linear)
	for _, k := range keys {
		tab.Inc(k)
	}
	b.ResetTimer()
	var hit uint32
	for i := 0; i < b.N; i++ {
		hit += tab.Get(keys[i&(1<<16-1)])
	}
	_ = hit
}

func BenchmarkHistogram(b *testing.B) {
	tab := NewTable(1<<14, Linear)
	for _, k := range benchKeys(1<<16, 1<<14) {
		tab.Inc(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := tab.Histogram()
		if h.Distinct() == 0 {
			b.Fatal("empty histogram")
		}
	}
}
