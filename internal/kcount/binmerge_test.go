package kcount

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestBinAccumulatorEmpty: an accumulator that saw no bins (or only nil
// and empty ones) reports the zero spectrum — the same shape an empty
// Table reports, so a rank whose slice is empty folds identically.
func TestBinAccumulatorEmpty(t *testing.T) {
	a := NewBinAccumulator(64)
	a.AddTable(nil)
	a.AddTable(NewTable(1, Linear))
	if a.Total() != 0 || a.Distinct() != 0 {
		t.Fatalf("empty accumulator reports %d/%d", a.Total(), a.Distinct())
	}
	if len(a.Histogram().Counts) != 0 {
		t.Fatalf("empty accumulator histogram %v", a.Histogram().Counts)
	}
	if len(a.TopK()) != 0 {
		t.Fatalf("empty accumulator top-k %v", a.TopK())
	}
}

// TestBinAccumulatorSingletons: bins holding one k-mer each — the
// degenerate partition — fold to the same spectrum as one table holding
// them all, including the count-desc/key-asc top-k tie-break.
func TestBinAccumulatorSingletons(t *testing.T) {
	whole := NewTable(8, Linear)
	a := NewBinAccumulator(64)
	for i, count := range []uint32{5, 2, 5, 9, 1} {
		key := uint64(1000 + i)
		whole.Add(key, count)
		bin := NewTable(1, Linear)
		bin.Add(key, count)
		a.AddTable(bin)
	}
	assertSameSpectrum(t, whole, a)
}

// TestBinAccumulatorCollidingBins: keys engineered to land in the same
// table slots (and to cross any minimizer-style grouping arbitrarily)
// are split across bins by a rule unrelated to either — the fold must
// still be exact, because correctness rests only on bins being
// key-disjoint, not on how the partition relates to hashes or orderings.
func TestBinAccumulatorCollidingBins(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const bins = 7
	whole := NewTable(512, Linear)
	parts := make([]*Table, bins)
	for b := range parts {
		// Deliberately tiny: every bin table grows through collisions.
		parts[b] = NewTable(1, Linear)
	}
	for i := 0; i < 2_000; i++ {
		// Low-entropy keys: many slot collisions inside each table, and
		// duplicate counts so the top-k tie-break is exercised hard.
		key := uint64(rng.Intn(600)) * 64
		whole.Inc(key)
		parts[key%bins].Inc(key)
	}
	a := NewBinAccumulator(64)
	for _, p := range parts {
		a.AddTable(p)
	}
	assertSameSpectrum(t, whole, a)
}

// TestBinAccumulatorTopKTruncation: when the union of per-bin top-ks
// exceeds the cap, the merged list keeps the globally heaviest entries
// in Table.TopK's exact order.
func TestBinAccumulatorTopKTruncation(t *testing.T) {
	a := NewBinAccumulator(3)
	whole := NewTable(16, Linear)
	for b := 0; b < 4; b++ {
		bin := NewTable(4, Linear)
		for i := 0; i < 3; i++ {
			key := uint64(100*b + i)
			count := uint32(10*b + i + 1)
			bin.Add(key, count)
			whole.Add(key, count)
		}
		a.AddTable(bin)
	}
	if got, want := a.TopK(), whole.TopK(3); !reflect.DeepEqual(got, want) {
		t.Fatalf("truncated top-k %v, want %v", got, want)
	}
}

// assertSameSpectrum compares the accumulator's fold against counting
// everything in one table: total, distinct, histogram, and top-k must be
// bit-identical.
func assertSameSpectrum(t *testing.T, whole *Table, a *BinAccumulator) {
	t.Helper()
	if a.Total() != whole.TotalCount() {
		t.Fatalf("total %d, want %d", a.Total(), whole.TotalCount())
	}
	if a.Distinct() != uint64(whole.Len()) {
		t.Fatalf("distinct %d, want %d", a.Distinct(), whole.Len())
	}
	if !reflect.DeepEqual(a.Histogram().Counts, whole.Histogram().Counts) {
		t.Fatalf("histogram %v, want %v", a.Histogram().Counts, whole.Histogram().Counts)
	}
	if got, want := a.TopK(), whole.TopK(64); !reflect.DeepEqual(got, want) {
		t.Fatalf("top-k %v, want %v", got, want)
	}
}
