package kcount

import "sort"

// BinAccumulator folds per-bin spectra into one rank-level spectrum for
// the out-of-core counting path (DESIGN.md §16). The spill bins
// partition the rank's key space — every distinct key lives in exactly
// one bin — so totals and distinct counts add, histogram classes add,
// and the global top-K is a subset of the union of per-bin top-Ks (any
// key in the global top-K would make its own bin's top-K too). That
// disjointness is what makes the fold bit-identical to counting the
// whole slice in one table.
type BinAccumulator struct {
	topK     int
	total    uint64
	distinct uint64
	hist     Histogram
	top      []KV
}

// NewBinAccumulator builds an empty accumulator keeping the top topK
// keys across bins.
func NewBinAccumulator(topK int) *BinAccumulator {
	return &BinAccumulator{topK: topK, hist: Histogram{Counts: make(map[uint32]uint64)}}
}

// AddTable folds one bin's counted table in. A nil or empty table is a
// valid empty bin and contributes nothing.
func (a *BinAccumulator) AddTable(t *Table) {
	if t == nil || t.Len() == 0 {
		return
	}
	a.total += t.TotalCount()
	a.distinct += uint64(t.Len())
	a.hist.Merge(t.Histogram())
	a.top = append(a.top, t.TopK(a.topK)...)
	// Re-truncate with the table's tie-break (count desc, key asc) so the
	// running top-K stays bounded and ordered identically to Table.TopK.
	sort.Slice(a.top, func(i, j int) bool {
		if a.top[i].Count != a.top[j].Count {
			return a.top[i].Count > a.top[j].Count
		}
		return a.top[i].Key < a.top[j].Key
	})
	if len(a.top) > a.topK {
		a.top = a.top[:a.topK]
	}
}

// Total returns the summed k-mer occurrence count across bins.
func (a *BinAccumulator) Total() uint64 { return a.total }

// Distinct returns the summed distinct-key count across bins.
func (a *BinAccumulator) Distinct() uint64 { return a.distinct }

// Histogram returns the merged frequency histogram.
func (a *BinAccumulator) Histogram() Histogram { return a.hist }

// TopK returns the merged top-K (count desc, key asc), at most the
// configured length.
func (a *BinAccumulator) TopK() []KV { return a.top }
