package kcount

import "fmt"

// Set operations over sorted databases, with kmc_tools semantics (the KMC3
// companion tool the paper cites [14]): all run in one linear merge pass
// and return sorted results.

// mustCompatible rejects operand mismatches.
func mustCompatible(a, b *Database) error {
	if a.K != b.K {
		return fmt.Errorf("kcount: operand k mismatch: %d vs %d", a.K, b.K)
	}
	if a.Canonical() != b.Canonical() {
		return fmt.Errorf("kcount: mixing canonical and plain databases")
	}
	return nil
}

// Intersect keeps keys present in both operands with the minimum of the two
// counts.
func Intersect(a, b *Database) (*Database, error) {
	if err := mustCompatible(a, b); err != nil {
		return nil, err
	}
	out := &Database{K: a.K, Flags: a.Flags}
	i, j := 0, 0
	for i < len(a.Entries) && j < len(b.Entries) {
		ka, kb := a.Entries[i].Key, b.Entries[j].Key
		switch {
		case ka < kb:
			i++
		case ka > kb:
			j++
		default:
			c := a.Entries[i].Count
			if b.Entries[j].Count < c {
				c = b.Entries[j].Count
			}
			out.Entries = append(out.Entries, KV{ka, c})
			i++
			j++
		}
	}
	return out, nil
}

// Union keeps every key with the sum of counts (saturating at the uint32
// maximum).
func Union(a, b *Database) (*Database, error) {
	if err := mustCompatible(a, b); err != nil {
		return nil, err
	}
	out := &Database{K: a.K, Flags: a.Flags, Entries: make([]KV, 0, len(a.Entries)+len(b.Entries))}
	i, j := 0, 0
	for i < len(a.Entries) || j < len(b.Entries) {
		switch {
		case j >= len(b.Entries) || (i < len(a.Entries) && a.Entries[i].Key < b.Entries[j].Key):
			out.Entries = append(out.Entries, a.Entries[i])
			i++
		case i >= len(a.Entries) || b.Entries[j].Key < a.Entries[i].Key:
			out.Entries = append(out.Entries, b.Entries[j])
			j++
		default:
			sum := uint64(a.Entries[i].Count) + uint64(b.Entries[j].Count)
			if sum > 0xffffffff {
				sum = 0xffffffff
			}
			out.Entries = append(out.Entries, KV{a.Entries[i].Key, uint32(sum)})
			i++
			j++
		}
	}
	return out, nil
}

// Subtract decrements a's counts by b's, dropping keys that reach zero
// (kmc_tools "counters_subtract").
func Subtract(a, b *Database) (*Database, error) {
	if err := mustCompatible(a, b); err != nil {
		return nil, err
	}
	out := &Database{K: a.K, Flags: a.Flags}
	j := 0
	for _, e := range a.Entries {
		for j < len(b.Entries) && b.Entries[j].Key < e.Key {
			j++
		}
		c := e.Count
		if j < len(b.Entries) && b.Entries[j].Key == e.Key {
			if b.Entries[j].Count >= c {
				continue
			}
			c -= b.Entries[j].Count
		}
		out.Entries = append(out.Entries, KV{e.Key, c})
	}
	return out, nil
}

// FilterCounts keeps entries with minCount ≤ count ≤ maxCount
// (maxCount 0 = unbounded) — kmc_tools "transform ... reduce".
func FilterCounts(a *Database, minCount, maxCount uint32) *Database {
	out := &Database{K: a.K, Flags: a.Flags}
	for _, e := range a.Entries {
		if e.Count < minCount {
			continue
		}
		if maxCount != 0 && e.Count > maxCount {
			continue
		}
		out.Entries = append(out.Entries, e)
	}
	return out
}
