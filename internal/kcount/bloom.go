package kcount

import (
	"fmt"
	"math"

	"dedukt/internal/hash"
)

// Bloom is a Bloom filter over packed k-mer keys, used to keep singleton
// k-mers (overwhelmingly sequencing errors) out of the counter table — the
// memory optimization of Melsted & Pritchard's BFCounter that diBELLA's
// k-mer analysis (this paper's CPU baseline lineage) inherits from HipMer.
//
// The filter absorbs each key's first sighting; from the second sighting on
// the key lives in the hash table. TestAndSet is the single primitive:
// it reports whether the key was (probabilistically) seen before, and marks
// it seen.
type Bloom struct {
	bits   []uint64
	mask   uint64 // bit-index mask (len(bits)*64 is a power of two)
	hashes int
}

// NewBloom sizes a filter for the expected number of distinct keys at the
// target false-positive rate (classic m = -n·ln(p)/ln(2)², rounded up to a
// power of two bits; k = m/n·ln(2) hash functions).
func NewBloom(expected int, fpRate float64) (*Bloom, error) {
	if expected < 1 {
		expected = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		return nil, fmt.Errorf("kcount: bloom false-positive rate %v outside (0,1)", fpRate)
	}
	mBits := float64(expected) * -math.Log(fpRate) / (math.Ln2 * math.Ln2)
	bits := uint64(64)
	for float64(bits) < mBits {
		bits <<= 1
	}
	k := int(math.Round(float64(bits) / float64(expected) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Bloom{
		bits:   make([]uint64, bits/64),
		mask:   bits - 1,
		hashes: k,
	}, nil
}

// Bits returns the filter size in bits.
func (b *Bloom) Bits() int { return len(b.bits) * 64 }

// Hashes returns the number of hash functions.
func (b *Bloom) Hashes() int { return b.hashes }

// bitPositions derives the k bit indices by double hashing (Kirsch &
// Mitzenmacher): h_i = h1 + i·h2.
func (b *Bloom) position(key uint64, i int) uint64 {
	h1 := hash.Mix64Seeded(key, 0xb100f11e)
	h2 := hash.Mix64Seeded(key, 0x5eed) | 1
	return (h1 + uint64(i)*h2) & b.mask
}

// Test reports whether key is (probabilistically) present.
func (b *Bloom) Test(key uint64) bool {
	for i := 0; i < b.hashes; i++ {
		pos := b.position(key, i)
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// TestAndSet marks key present and reports whether it already was. Not safe
// for concurrent use — it backs the (serial per-rank) CPU pipeline's
// singleton filter.
func (b *Bloom) TestAndSet(key uint64) bool {
	present := true
	for i := 0; i < b.hashes; i++ {
		pos := b.position(key, i)
		word, bit := pos/64, uint64(1)<<(pos%64)
		if b.bits[word]&bit == 0 {
			present = false
			b.bits[word] |= bit
		}
	}
	return present
}

// FillRatio returns the fraction of set bits (diagnostic: the realized
// false-positive rate is ≈ FillRatio^Hashes).
func (b *Bloom) FillRatio() float64 {
	var set int
	for _, w := range b.bits {
		set += popcount64(w)
	}
	return float64(set) / float64(b.Bits())
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
