// Package kcount implements the k-mer counter hash tables of §III-B.3: open
// addressing with linear (or, as an ablation, quadratic) probing, slot
// selection by MurmurHash3, and an atomic variant with the insert/increment
// semantics of the GPU kernel. A map-based serial oracle is provided for
// correctness testing, plus histogram/spectrum utilities over counted
// tables.
package kcount

import (
	"fmt"
	"math/bits"
	"sort"

	"dedukt/internal/dna"
	"dedukt/internal/hash"
	"dedukt/internal/kmer"
)

// Probing selects the collision resolution sequence (§III-B.3: "a probe
// sequence (linear, quadratic, etc). In this work, we use linear probing").
type Probing int

const (
	// Linear probes slots h, h+1, h+2, ...
	Linear Probing = iota
	// Quadratic probes slots h, h+1, h+3, h+6, ... (triangular offsets,
	// a full cycle for power-of-two capacities).
	Quadratic
)

func (p Probing) String() string {
	switch p {
	case Linear:
		return "linear"
	case Quadratic:
		return "quadratic"
	default:
		return fmt.Sprintf("Probing(%d)", int(p))
	}
}

// tableSeed is the slot-hash seed; it must differ from the seed used for
// destination-rank hashing so table position is independent of rank
// assignment.
const tableSeed = 0x9e3779b97f4a7c15

// slotOf returns the home slot for a key in a table of capacity mask+1.
func slotOf(key uint64, mask uint64) uint64 {
	return hash.Mix64Seeded(key, tableSeed) & mask
}

// step returns the i-th probe offset (i ≥ 1) for the configured policy.
func (p Probing) step(i uint64) uint64 {
	if p == Quadratic {
		return i * (i + 1) / 2
	}
	return i
}

// Table is a serial open-addressing counter: packed k-mer keys to uint32
// counts. Keys are stored biased by +1 so the zero word can serve as the
// empty sentinel; this supports every k ≤ 31 (and k = 32 except the all-T
// k-mer under lexicographic encoding, which the constructor rejects via
// MaxKey). The table grows by rehashing at 70% load.
type Table struct {
	keys   []uint64 // biased: stored = key + 1; 0 = empty
	counts []uint32
	mask   uint64
	n      int // occupied slots
	prob   Probing
	// Probes accumulates the total number of slots inspected across all
	// operations — the quantity the GPU cost model charges memory traffic
	// for.
	Probes uint64
}

// MaxKey is the largest storable key (reserved sentinel excluded).
const MaxKey = ^uint64(0) - 1

// NewTable creates a table with capacity for at least expected entries at
// ≤50% initial load.
func NewTable(expected int, prob Probing) *Table {
	if expected < 1 {
		expected = 1
	}
	capacity := 1 << uint(bits.Len(uint(expected*2-1)))
	if capacity < 8 {
		capacity = 8
	}
	return &Table{
		keys:   make([]uint64, capacity),
		counts: make([]uint32, capacity),
		mask:   uint64(capacity - 1),
		prob:   prob,
	}
}

// Len returns the number of distinct keys stored.
func (t *Table) Len() int { return t.n }

// Cap returns the current slot capacity.
func (t *Table) Cap() int { return len(t.keys) }

// LoadFactor returns occupied/capacity.
func (t *Table) LoadFactor() float64 { return float64(t.n) / float64(len(t.keys)) }

// Add increments the count of key by delta, inserting it if absent, and
// reports whether the key was newly inserted. It panics on the reserved
// sentinel key.
func (t *Table) Add(key uint64, delta uint32) (isNew bool) {
	if key > MaxKey {
		panic("kcount: key collides with empty sentinel")
	}
	if float64(t.n+1) > 0.7*float64(len(t.keys)) {
		t.grow()
	}
	stored := key + 1
	slot := slotOf(key, t.mask)
	for i := uint64(0); ; i++ {
		idx := (slot + t.prob.step(i)) & t.mask
		t.Probes++
		switch t.keys[idx] {
		case 0:
			t.keys[idx] = stored
			t.counts[idx] = delta
			t.n++
			return true
		case stored:
			t.counts[idx] += delta
			return false
		}
	}
}

// Inc is Add(key, 1) — the per-k-mer hot path of COUNTKMER.
func (t *Table) Inc(key uint64) bool { return t.Add(key, 1) }

// Get returns the count of key (0 if absent).
func (t *Table) Get(key uint64) uint32 {
	stored := key + 1
	slot := slotOf(key, t.mask)
	for i := uint64(0); ; i++ {
		idx := (slot + t.prob.step(i)) & t.mask
		switch t.keys[idx] {
		case 0:
			return 0
		case stored:
			return t.counts[idx]
		}
	}
}

// ForEach calls fn for every (key, count) pair in unspecified order.
func (t *Table) ForEach(fn func(key uint64, count uint32)) {
	for i, stored := range t.keys {
		if stored != 0 {
			fn(stored-1, t.counts[i])
		}
	}
}

// TotalCount sums all counts (the k-mer multiset size).
func (t *Table) TotalCount() uint64 {
	var total uint64
	t.ForEach(func(_ uint64, c uint32) { total += uint64(c) })
	return total
}

func (t *Table) grow() {
	old := *t
	t.keys = make([]uint64, len(old.keys)*2)
	t.counts = make([]uint32, len(old.counts)*2)
	t.mask = uint64(len(t.keys) - 1)
	t.n = 0
	for i, stored := range old.keys {
		if stored != 0 {
			t.Add(stored-1, old.counts[i])
		}
	}
	t.Probes = old.Probes
}

// Merge folds other into t.
func (t *Table) Merge(other *Table) {
	other.ForEach(func(k uint64, c uint32) { t.Add(k, c) })
}

// Histogram is a k-mer frequency spectrum: Counts[f] = number of distinct
// k-mers occurring exactly f times (f ≥ 1). The paper motivates counting by
// exactly these histograms (§II-A).
type Histogram struct {
	Counts map[uint32]uint64
}

// Histogram computes the frequency spectrum of the table.
func (t *Table) Histogram() Histogram {
	h := Histogram{Counts: make(map[uint32]uint64)}
	t.ForEach(func(_ uint64, c uint32) { h.Counts[c]++ })
	return h
}

// Distinct returns the number of distinct k-mers.
func (h Histogram) Distinct() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Total returns the total k-mer multiset size Σ f·Counts[f].
func (h Histogram) Total() uint64 {
	var n uint64
	for f, c := range h.Counts {
		n += uint64(f) * c
	}
	return n
}

// Singletons returns the number of k-mers seen exactly once (usually
// sequencing errors).
func (h Histogram) Singletons() uint64 { return h.Counts[1] }

// Frequencies returns the sorted list of occupied frequency classes.
func (h Histogram) Frequencies() []uint32 {
	fs := make([]uint32, 0, len(h.Counts))
	for f := range h.Counts {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	return fs
}

// Merge adds other's classes into h.
func (h Histogram) Merge(other Histogram) {
	for f, c := range other.Counts {
		h.Counts[f] += c
	}
}

// TopK returns the k highest-count (key, count) pairs of the table, counts
// descending, keys ascending among ties — the "k-mers of scientific
// interest by frequency" query from §II-A.
func (t *Table) TopK(k int) []KV {
	all := make([]KV, 0, t.Len())
	t.ForEach(func(key uint64, c uint32) { all = append(all, KV{key, c}) })
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// KV is a k-mer/count pair.
type KV struct {
	Key   uint64
	Count uint32
}

// SerialCount is the reference oracle: count k-mers of all reads with a Go
// map. Every pipeline variant must reproduce exactly this multiset.
func SerialCount(enc *dna.Encoding, reads [][]byte, k int) map[dna.Kmer]uint32 {
	m := make(map[dna.Kmer]uint32)
	for _, r := range reads {
		kmer.ForEach(enc, r, k, func(w dna.Kmer, _ int) { m[w]++ })
	}
	return m
}

// EqualToOracle compares a table against the oracle map, returning a
// description of the first difference, or "" when identical.
func (t *Table) EqualToOracle(oracle map[dna.Kmer]uint32) string {
	if uint64(len(oracle)) != uint64(t.Len()) {
		return fmt.Sprintf("distinct kmers: table %d, oracle %d", t.Len(), len(oracle))
	}
	var diff string
	t.ForEach(func(key uint64, c uint32) {
		if diff != "" {
			return
		}
		if want := oracle[dna.Kmer(key)]; want != c {
			diff = fmt.Sprintf("kmer %#x: table %d, oracle %d", key, c, want)
		}
	})
	return diff
}
