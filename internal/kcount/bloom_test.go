package kcount

import (
	"math/rand"
	"testing"
)

func TestBloomBasics(t *testing.T) {
	b, err := NewBloom(1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bits()%64 != 0 || b.Hashes() < 1 {
		t.Fatalf("bits=%d hashes=%d", b.Bits(), b.Hashes())
	}
	if b.Test(42) {
		t.Fatal("empty filter claims presence")
	}
	if b.TestAndSet(42) {
		t.Fatal("first TestAndSet should report absent")
	}
	if !b.TestAndSet(42) {
		t.Fatal("second TestAndSet should report present")
	}
	if !b.Test(42) {
		t.Fatal("Test should see the key now")
	}
}

func TestBloomValidation(t *testing.T) {
	for _, fp := range []float64{0, 1, -0.5} {
		if _, err := NewBloom(10, fp); err == nil {
			t.Errorf("fp=%v should be rejected", fp)
		}
	}
	if b, err := NewBloom(0, 0.01); err != nil || b == nil {
		t.Error("tiny expected count should still work")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b, _ := NewBloom(10_000, 0.01)
	rng := rand.New(rand.NewSource(51))
	keys := make([]uint64, 10_000)
	for i := range keys {
		keys[i] = rng.Uint64()
		b.TestAndSet(keys[i])
	}
	for _, k := range keys {
		if !b.Test(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	const n = 50_000
	b, _ := NewBloom(n, 0.01)
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < n; i++ {
		b.TestAndSet(rng.Uint64())
	}
	// Probe with fresh keys; fp rate should be within ~4x of target
	// (power-of-two rounding makes it conservative).
	fp := 0
	const probes = 50_000
	for i := 0; i < probes; i++ {
		if b.Test(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.04 {
		t.Fatalf("false-positive rate %.4f too high (fill %.3f)", rate, b.FillRatio())
	}
}

func TestBloomFillRatio(t *testing.T) {
	b, _ := NewBloom(1000, 0.01)
	if b.FillRatio() != 0 {
		t.Fatal("fresh filter should be empty")
	}
	b.TestAndSet(1)
	if b.FillRatio() <= 0 {
		t.Fatal("fill ratio should rise after insert")
	}
}
