package mpisim

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunBasics(t *testing.T) {
	var count atomic.Int32
	seen := make([]atomic.Bool, 8)
	_, err := Run(8, func(c *Comm) error {
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
		if seen[c.Rank()].Swap(true) {
			t.Errorf("rank %d ran twice", c.Rank())
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if _, err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Fatal("size 0 should fail")
	}
	if _, err := RunWithOptions(2, Options{Deadline: -time.Second}, func(*Comm) error { return nil }); err == nil {
		t.Fatal("negative deadline should fail")
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, all pre-barrier writes must be visible.
	const p = 16
	vals := make([]int, p)
	_, err := Run(p, func(c *Comm) error {
		vals[c.Rank()] = c.Rank() + 1
		if err := c.Barrier(); err != nil {
			return err
		}
		for i, v := range vals {
			if v != i+1 {
				t.Errorf("rank %d: vals[%d] = %d after barrier", c.Rank(), i, v)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const p = 5
	_, err := Run(p, func(c *Comm) error {
		send := make([]int, p)
		for j := range send {
			send[j] = c.Rank()*100 + j
		}
		recv, err := c.Alltoall(send)
		if err != nil {
			return err
		}
		for i, v := range recv {
			if want := i*100 + c.Rank(); v != want {
				t.Errorf("rank %d: recv[%d] = %d, want %d", c.Rank(), i, v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvBytesPermutation(t *testing.T) {
	// Property (e) of DESIGN.md: the exchange is a permutation — no payload
	// lost or duplicated, each byte slice arrives at exactly its target.
	const p = 7
	_, err := Run(p, func(c *Comm) error {
		send := make([][]byte, p)
		for j := range send {
			send[j] = []byte(fmt.Sprintf("from%d-to%d", c.Rank(), j))
		}
		recv, err := c.AlltoallvBytes(send)
		if err != nil {
			return err
		}
		for i, payload := range recv {
			want := fmt.Sprintf("from%d-to%d", i, c.Rank())
			if string(payload) != want {
				t.Errorf("rank %d: recv[%d] = %q, want %q", c.Rank(), i, payload, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvUint64(t *testing.T) {
	const p = 4
	totalSent := make([]uint64, p)
	totalRecv := make([]uint64, p)
	_, err := Run(p, func(c *Comm) error {
		send := make([][]uint64, p)
		for j := range send {
			for x := 0; x <= c.Rank()+j; x++ {
				send[j] = append(send[j], uint64(1000*c.Rank()+x))
			}
			totalSent[c.Rank()] += uint64(len(send[j]))
		}
		recv, err := c.AlltoallvUint64(send)
		if err != nil {
			return err
		}
		var got uint64
		for i, words := range recv {
			got += uint64(len(words))
			if len(words) != i+c.Rank()+1 {
				t.Errorf("rank %d: recv[%d] has %d words", c.Rank(), i, len(words))
			}
		}
		totalRecv[c.Rank()] = got
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var sent, recvd uint64
	for i := 0; i < p; i++ {
		sent += totalSent[i]
		recvd += totalRecv[i]
	}
	if sent != recvd {
		t.Fatalf("conservation violated: sent %d, received %d", sent, recvd)
	}
}

func TestReductionsAndGather(t *testing.T) {
	const p = 6
	_, err := Run(p, func(c *Comm) error {
		if got, err := c.AllreduceSum(uint64(c.Rank())); err != nil || got != p*(p-1)/2 {
			t.Errorf("sum = %d, err = %v", got, err)
		}
		if got, err := c.AllreduceMax(uint64(c.Rank() * 10)); err != nil || got != (p-1)*10 {
			t.Errorf("max = %d, err = %v", got, err)
		}
		all, err := c.GatherUint64(uint64(c.Rank() * c.Rank()))
		if err != nil {
			return err
		}
		for i, v := range all {
			if v != uint64(i*i) {
				t.Errorf("gather[%d] = %d", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleCollectivesInSequence(t *testing.T) {
	// Slot reuse across many collectives must be safe.
	const p, rounds = 5, 20
	_, err := Run(p, func(c *Comm) error {
		for r := 0; r < rounds; r++ {
			v, err := c.AllreduceSum(uint64(r))
			if err != nil {
				return err
			}
			if v != uint64(r*p) {
				t.Errorf("round %d: sum %d", r, v)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceRecorded(t *testing.T) {
	const p = 3
	trace, err := Run(p, func(c *Comm) error {
		send := make([][]byte, p)
		for j := range send {
			send[j] = make([]byte, (c.Rank()+1)*(j+1))
		}
		_, err := c.AlltoallvBytes(send)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 1 || trace[0].Op != "alltoallv" {
		t.Fatalf("trace = %+v", trace)
	}
	if got := trace[0].Bytes[1][2]; got != 2*3 {
		t.Fatalf("bytes[1][2] = %d, want 6", got)
	}
	var want uint64
	for i := 1; i <= p; i++ {
		for j := 1; j <= p; j++ {
			want += uint64(i * j)
		}
	}
	if trace[0].TotalBytes() != want {
		t.Fatalf("TotalBytes = %d, want %d", trace[0].TotalBytes(), want)
	}
}

func TestPanicPropagates(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			panic("boom")
		}
		return c.Barrier() // peers must not deadlock
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("peers should fail with ErrPeerDead, got %v", err)
	}
}

func TestAllRankFailuresReported(t *testing.T) {
	// Regression: every rank's failure must appear in the joined error, not
	// just the first one — mixed panics and error returns.
	_, err := Run(6, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return errors.New("failure-one")
		case 3:
			panic("failure-three")
		case 5:
			return errors.New("failure-five")
		}
		err := c.Barrier()
		if err == nil {
			t.Errorf("rank %d: barrier should fail after peer deaths", c.Rank())
		}
		return err
	})
	if err == nil {
		t.Fatal("expected a joined error")
	}
	for _, want := range []string{"failure-one", "failure-three", "failure-five", "rank 1", "rank 3", "rank 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	if !errors.Is(err, ErrPeerDead) {
		t.Errorf("surviving ranks should report ErrPeerDead: %v", err)
	}
}

func TestErrorReturnPoisonsWorld(t *testing.T) {
	// A rank that returns an error (no panic) must still unblock peers.
	var unblocked atomic.Int32
	_, err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			return errors.New("early exit")
		}
		if err := c.Barrier(); err != nil {
			unblocked.Add(1)
			return err
		}
		return nil
	})
	if err == nil || !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v", err)
	}
	if unblocked.Load() != 2 {
		t.Fatalf("%d peers unblocked, want 2", unblocked.Load())
	}
}

func TestRankDeathUnblocksCollectives(t *testing.T) {
	// Poisoned-world semantics: a rank dying inside each collective must
	// unblock all peers with ErrPeerDead within the deadline.
	collectives := []struct {
		name string
		call func(c *Comm) error
	}{
		{"barrier", func(c *Comm) error { return c.Barrier() }},
		{"alltoall", func(c *Comm) error {
			_, err := c.Alltoall(make([]int, c.Size()))
			return err
		}},
		{"alltoallvbytes", func(c *Comm) error {
			send := make([][]byte, c.Size())
			for j := range send {
				send[j] = []byte{byte(c.Rank()), byte(j)}
			}
			_, err := c.AlltoallvBytes(send)
			return err
		}},
	}
	for _, tc := range collectives {
		t.Run(tc.name, func(t *testing.T) {
			const p = 5
			start := time.Now()
			var peerErrs atomic.Int32
			_, err := RunWithOptions(p, Options{Deadline: 5 * time.Second}, func(c *Comm) error {
				if c.Rank() == 1 {
					return fmt.Errorf("rank 1 dies before %s", tc.name)
				}
				err := tc.call(c)
				if err == nil {
					t.Errorf("rank %d: %s completed despite dead peer", c.Rank(), tc.name)
					return nil
				}
				if errors.Is(err, ErrPeerDead) {
					peerErrs.Add(1)
				}
				return err
			})
			if err == nil || !errors.Is(err, ErrPeerDead) {
				t.Fatalf("err = %v", err)
			}
			if peerErrs.Load() != p-1 {
				t.Fatalf("%d peers saw ErrPeerDead, want %d", peerErrs.Load(), p-1)
			}
			// "Within the deadline": unblocking is poison-driven, far faster
			// than the 5s deadline.
			if elapsed := time.Since(start); elapsed > 4*time.Second {
				t.Fatalf("unblocking took %v", elapsed)
			}
		})
	}
}

func TestCollectiveDeadline(t *testing.T) {
	// A live but stalled straggler must trip ErrDeadline for the waiters
	// (and for itself once it arrives at the poisoned barrier).
	var deadlineErrs atomic.Int32
	start := time.Now()
	_, err := RunWithOptions(4, Options{Deadline: 30 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 2 {
			time.Sleep(300 * time.Millisecond) // well past the deadline
		}
		err := c.Barrier()
		if errors.Is(err, ErrDeadline) {
			deadlineErrs.Add(1)
		}
		return err
	})
	if err == nil || !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v", err)
	}
	if deadlineErrs.Load() != 4 {
		t.Fatalf("%d ranks saw ErrDeadline, want 4", deadlineErrs.Load())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline release took %v", elapsed)
	}
}

func TestDeadlineNotTrippedByFastRun(t *testing.T) {
	// A healthy world far under the deadline must be unaffected by timers.
	_, err := RunWithOptions(8, Options{Deadline: 5 * time.Second}, func(c *Comm) error {
		for r := 0; r < 10; r++ {
			if _, err := c.AllreduceSum(1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMismatchedSendLengthFails(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		_, err := c.Alltoall([]int{1, 2}) // wrong length
		if err == nil {
			t.Error("mismatched length should error")
		}
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestNetModelIntraNodeFree(t *testing.T) {
	nm := NetModel{RanksPerNode: 2, InjectionGBs: 10, LatencyUs: 0}
	// Two ranks on one node exchanging: no fabric time.
	intra := [][]uint64{{0, 1 << 30}, {1 << 30, 0}}
	if d := nm.CollectiveTime(intra); d != 0 {
		t.Fatalf("intra-node traffic cost %v, want 0", d)
	}
	vs := nm.Volumes(intra)
	if vs.FabricBytes != 0 || vs.TotalBytes != 2<<30 {
		t.Fatalf("volumes = %+v", vs)
	}
}

func TestNetModelInjectionBound(t *testing.T) {
	nm := NetModel{RanksPerNode: 1, InjectionGBs: 10, LatencyUs: 0}
	// Rank 0 sends 10 GB to rank 1: 1 second at 10 GB/s.
	m := [][]uint64{{0, 10_000_000_000}, {0, 0}}
	got := nm.CollectiveTime(m).Seconds()
	if got < 0.99 || got > 1.01 {
		t.Fatalf("time = %.3fs, want 1s", got)
	}
	vs := nm.Volumes(m)
	if vs.MaxNodeBytes != 10_000_000_000 {
		t.Fatalf("MaxNodeBytes = %d", vs.MaxNodeBytes)
	}
}

func TestNetModelSkewRaisesTime(t *testing.T) {
	nm := NetModel{RanksPerNode: 1, InjectionGBs: 1, LatencyUs: 0}
	// Balanced: each of 4 ranks sends 1 unit to each other rank.
	balanced := make([][]uint64, 4)
	skewed := make([][]uint64, 4)
	for i := range balanced {
		balanced[i] = make([]uint64, 4)
		skewed[i] = make([]uint64, 4)
		for j := range balanced[i] {
			if i != j {
				balanced[i][j] = 1 << 20
			}
		}
	}
	// Same total volume, all into rank 3.
	skewed[0][3] = 3 << 20
	skewed[1][3] = 3 << 20
	skewed[2][3] = 3 << 20
	skewed[0][1] = 1 << 20 // residual to keep totals close
	tb := nm.CollectiveTime(balanced)
	ts := nm.CollectiveTime(skewed)
	if ts <= tb {
		t.Fatalf("skewed exchange (%v) should cost more than balanced (%v)", ts, tb)
	}
}

func TestNetModelLatencyTerm(t *testing.T) {
	nm := NetModel{RanksPerNode: 1, InjectionGBs: 1000, LatencyUs: 100}
	m := make([][]uint64, 9)
	for i := range m {
		m[i] = make([]uint64, 9)
		for j := range m[i] {
			if i != j {
				m[i][j] = 1 // negligible bytes: the fabric round-trips dominate
			}
		}
	}
	got := nm.CollectiveTime(m)
	want := time.Duration(100*8) * time.Microsecond
	if got < want-time.Microsecond || got > want+time.Millisecond {
		t.Fatalf("latency-only time %v, want ≈%v", got, want)
	}
	// Only ranks that touch the fabric pay latency rounds: a leader-only
	// exchange among 3 of the 9 ranks pays α(3−1), and a collective that
	// moves no fabric bytes (empty, or purely intra-node) pays nothing.
	leaders := make([][]uint64, 9)
	for i := range leaders {
		leaders[i] = make([]uint64, 9)
	}
	leaders[0][3], leaders[3][6], leaders[6][0] = 1, 1, 1
	if got := nm.CollectiveTime(leaders); got < 199*time.Microsecond || got > 201*time.Microsecond {
		t.Fatalf("leader exchange latency %v, want ≈200µs", got)
	}
	if got := nm.CollectiveTime(make([][]uint64, 9)); got != 0 {
		t.Fatalf("empty collective cost %v, want 0", got)
	}
	intra := NetModel{RanksPerNode: 3, InjectionGBs: 1000, LatencyUs: 100}
	node := make([][]uint64, 9)
	for i := range node {
		node[i] = make([]uint64, 9)
		for j := range node[i] {
			if i/3 == j/3 && i != j {
				node[i][j] = 1 << 20
			}
		}
	}
	if got := intra.CollectiveTime(node); got != 0 {
		t.Fatalf("intra-node collective cost %v, want 0", got)
	}
}

func TestNetModelTraceTime(t *testing.T) {
	nm := NetModel{RanksPerNode: 1, InjectionGBs: 1, LatencyUs: 0}
	m := [][]uint64{{0, 1_000_000_000}, {0, 0}}
	trace := []TraceEntry{{Op: "alltoallv", Bytes: m}, {Op: "alltoallv", Bytes: m}, {Op: "barrier"}}
	got := nm.TraceTime(trace).Seconds()
	if got < 1.99 || got > 2.01 {
		t.Fatalf("trace time %.3f, want 2s", got)
	}
}

func TestNetModelValidate(t *testing.T) {
	bad := []NetModel{
		{RanksPerNode: 0, InjectionGBs: 1},
		{RanksPerNode: 1, InjectionGBs: 0},
		{RanksPerNode: 1, InjectionGBs: 1, LatencyUs: -1},
	}
	for i, nm := range bad {
		if err := nm.Validate(); err == nil {
			t.Errorf("model %d should be invalid", i)
		}
	}
	if (NetModel{RanksPerNode: 6, InjectionGBs: 23, LatencyUs: 2}).Validate() != nil {
		t.Error("valid model rejected")
	}
}

func TestNetModelNodeMapping(t *testing.T) {
	nm := NetModel{RanksPerNode: 6, InjectionGBs: 23}
	if nm.NodeOf(0) != 0 || nm.NodeOf(5) != 0 || nm.NodeOf(6) != 1 {
		t.Fatal("node mapping wrong")
	}
	if nm.Nodes(96) != 16 || nm.Nodes(97) != 17 {
		t.Fatal("node count wrong")
	}
}

func TestBigWorld(t *testing.T) {
	// 384 ranks (the paper's 64-node GPU configuration) must run fine.
	const p = 384
	_, err := Run(p, func(c *Comm) error {
		s, err := c.AllreduceSum(1)
		if err != nil {
			return err
		}
		if s != p {
			t.Errorf("sum = %d", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ---- Nonblocking collective tests ------------------------------------------

func TestNonblockingAlltoallMatchesBlocking(t *testing.T) {
	const p = 5
	_, err := Run(p, func(c *Comm) error {
		send := make([]int, p)
		for j := range send {
			send[j] = c.Rank()*100 + j
		}
		req := c.IAlltoall(send)
		// The send vector is copied at post time: clobbering it here must
		// not affect the exchange.
		for j := range send {
			send[j] = -1
		}
		recv, err := req.Wait()
		if err != nil {
			return err
		}
		for i, v := range recv {
			if want := i*100 + c.Rank(); v != want {
				t.Errorf("rank %d recv[%d] = %d, want %d", c.Rank(), i, v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingAlltoallvPayloads(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) error {
		words := make([][]uint64, p)
		bytes := make([][]byte, p)
		for j := range words {
			words[j] = []uint64{uint64(c.Rank()), uint64(j)}
			bytes[j] = []byte{byte(c.Rank()), byte(j), 0xAA}
		}
		wr := c.IAlltoallvUint64(words)
		br := c.IAlltoallvBytes(bytes)
		gotW, err := wr.Wait()
		if err != nil {
			return err
		}
		gotB, err := br.Wait()
		if err != nil {
			return err
		}
		for i := 0; i < p; i++ {
			if gotW[i][0] != uint64(i) || gotW[i][1] != uint64(c.Rank()) {
				t.Errorf("rank %d words from %d = %v", c.Rank(), i, gotW[i])
			}
			if gotB[i][0] != byte(i) || gotB[i][1] != byte(c.Rank()) || gotB[i][2] != 0xAA {
				t.Errorf("rank %d bytes from %d = %v", c.Rank(), i, gotB[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNonblockingOverlapsCompute posts an exchange, performs local work
// before Wait, and checks the result is still delivered intact — the
// overlap pattern the pipeline's double-buffered round loop uses.
func TestNonblockingOverlapsCompute(t *testing.T) {
	const p = 6
	_, err := Run(p, func(c *Comm) error {
		send := make([][]uint64, p)
		for j := range send {
			send[j] = []uint64{uint64(c.Rank()<<8 | j)}
		}
		req := c.IAlltoallvUint64(send)
		// Simulated local compute while the exchange is in flight.
		sum := uint64(0)
		for i := 0; i < 1000; i++ {
			sum += uint64(i)
		}
		if sum == 0 {
			t.Error("unreachable")
		}
		recv, err := req.Wait()
		if err != nil {
			return err
		}
		for i := range recv {
			if recv[i][0] != uint64(i<<8|c.Rank()) {
				t.Errorf("rank %d recv[%d] = %v", c.Rank(), i, recv[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingPostingOrderPreserved(t *testing.T) {
	// Two exchanges posted back to back must match across ranks in posting
	// order, even though both run on background goroutines.
	const p = 4
	_, err := Run(p, func(c *Comm) error {
		first := make([]int, p)
		second := make([]int, p)
		for j := range first {
			first[j] = 1
			second[j] = 2
		}
		r1 := c.IAlltoall(first)
		r2 := c.IAlltoall(second)
		got2, err := r2.Wait() // waiting out of order is legal
		if err != nil {
			return err
		}
		got1, err := r1.Wait()
		if err != nil {
			return err
		}
		for i := 0; i < p; i++ {
			if got1[i] != 1 || got2[i] != 2 {
				t.Errorf("rank %d got1[%d]=%d got2[%d]=%d", c.Rank(), i, got1[i], i, got2[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitIdempotent(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		req := c.IAlltoall([]int{1, 2, 3})
		a, err := req.Wait()
		if err != nil {
			return err
		}
		b, err := req.Wait()
		if err != nil {
			return err
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("second Wait returned different data: %v vs %v", a, b)
			}
		}
		// After Wait, blocking collectives are legal again.
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockingWhilePendingErrors(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		req := c.IAlltoall([]int{0, 0})
		if _, berr := c.AllreduceSum(1); berr == nil {
			t.Error("AllreduceSum with pending request should error")
		} else if !strings.Contains(berr.Error(), "outstanding") {
			t.Errorf("unexpected error: %v", berr)
		}
		if berr := c.Barrier(); berr == nil {
			t.Error("Barrier with pending request should error")
		}
		_, err := req.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingValidationError(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		req := c.IAlltoall([]int{1}) // wrong length
		if _, werr := req.Wait(); werr == nil {
			t.Error("bad send length should surface from Wait")
		}
		// The failed request must not wedge the pending counter.
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingPeerDeathPoisons(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			return boom // dies without posting
		}
		req := c.IAlltoallvUint64(make([][]uint64, 3))
		_, werr := req.Wait()
		if werr == nil {
			t.Errorf("rank %d: Wait should fail after peer death", c.Rank())
		} else if !errors.Is(werr, ErrPeerDead) {
			t.Errorf("rank %d: want ErrPeerDead, got %v", c.Rank(), werr)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want the dead rank's error, got %v", err)
	}
}

func TestNonblockingDeadline(t *testing.T) {
	_, err := RunWithOptions(2, Options{Deadline: 30 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 1 {
			time.Sleep(200 * time.Millisecond) // stall past the deadline
		}
		req := c.IAlltoall([]int{1, 1})
		_, werr := req.Wait()
		if c.Rank() == 0 {
			if werr == nil || !errors.Is(werr, ErrDeadline) {
				t.Errorf("rank 0: want ErrDeadline, got %v", werr)
			}
		}
		return nil
	})
	_ = err // world is poisoned; per-rank outcomes checked above
}
