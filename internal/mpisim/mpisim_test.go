package mpisim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunBasics(t *testing.T) {
	var count atomic.Int32
	seen := make([]atomic.Bool, 8)
	_, err := Run(8, func(c *Comm) {
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
		if seen[c.Rank()].Swap(true) {
			t.Errorf("rank %d ran twice", c.Rank())
		}
		count.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if _, err := Run(0, func(*Comm) {}); err == nil {
		t.Fatal("size 0 should fail")
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, all pre-barrier writes must be visible.
	const p = 16
	vals := make([]int, p)
	_, err := Run(p, func(c *Comm) {
		vals[c.Rank()] = c.Rank() + 1
		c.Barrier()
		for i, v := range vals {
			if v != i+1 {
				t.Errorf("rank %d: vals[%d] = %d after barrier", c.Rank(), i, v)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const p = 5
	_, err := Run(p, func(c *Comm) {
		send := make([]int, p)
		for j := range send {
			send[j] = c.Rank()*100 + j
		}
		recv := c.Alltoall(send)
		for i, v := range recv {
			if want := i*100 + c.Rank(); v != want {
				t.Errorf("rank %d: recv[%d] = %d, want %d", c.Rank(), i, v, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvBytesPermutation(t *testing.T) {
	// Property (e) of DESIGN.md: the exchange is a permutation — no payload
	// lost or duplicated, each byte slice arrives at exactly its target.
	const p = 7
	_, err := Run(p, func(c *Comm) {
		send := make([][]byte, p)
		for j := range send {
			send[j] = []byte(fmt.Sprintf("from%d-to%d", c.Rank(), j))
		}
		recv := c.AlltoallvBytes(send)
		for i, payload := range recv {
			want := fmt.Sprintf("from%d-to%d", i, c.Rank())
			if string(payload) != want {
				t.Errorf("rank %d: recv[%d] = %q, want %q", c.Rank(), i, payload, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvUint64(t *testing.T) {
	const p = 4
	totalSent := make([]uint64, p)
	totalRecv := make([]uint64, p)
	_, err := Run(p, func(c *Comm) {
		send := make([][]uint64, p)
		for j := range send {
			for x := 0; x <= c.Rank()+j; x++ {
				send[j] = append(send[j], uint64(1000*c.Rank()+x))
			}
			totalSent[c.Rank()] += uint64(len(send[j]))
		}
		recv := c.AlltoallvUint64(send)
		var got uint64
		for i, words := range recv {
			got += uint64(len(words))
			if len(words) != i+c.Rank()+1 {
				t.Errorf("rank %d: recv[%d] has %d words", c.Rank(), i, len(words))
			}
		}
		totalRecv[c.Rank()] = got
	})
	if err != nil {
		t.Fatal(err)
	}
	var sent, recvd uint64
	for i := 0; i < p; i++ {
		sent += totalSent[i]
		recvd += totalRecv[i]
	}
	if sent != recvd {
		t.Fatalf("conservation violated: sent %d, received %d", sent, recvd)
	}
}

func TestReductionsAndGather(t *testing.T) {
	const p = 6
	_, err := Run(p, func(c *Comm) {
		if got := c.AllreduceSum(uint64(c.Rank())); got != p*(p-1)/2 {
			t.Errorf("sum = %d", got)
		}
		if got := c.AllreduceMax(uint64(c.Rank() * 10)); got != (p-1)*10 {
			t.Errorf("max = %d", got)
		}
		all := c.GatherUint64(uint64(c.Rank() * c.Rank()))
		for i, v := range all {
			if v != uint64(i*i) {
				t.Errorf("gather[%d] = %d", i, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleCollectivesInSequence(t *testing.T) {
	// Slot reuse across many collectives must be safe.
	const p, rounds = 5, 20
	_, err := Run(p, func(c *Comm) {
		for r := 0; r < rounds; r++ {
			v := c.AllreduceSum(uint64(r))
			if v != uint64(r*p) {
				t.Errorf("round %d: sum %d", r, v)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceRecorded(t *testing.T) {
	const p = 3
	trace, err := Run(p, func(c *Comm) {
		send := make([][]byte, p)
		for j := range send {
			send[j] = make([]byte, (c.Rank()+1)*(j+1))
		}
		c.AlltoallvBytes(send)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 1 || trace[0].Op != "alltoallv" {
		t.Fatalf("trace = %+v", trace)
	}
	if got := trace[0].Bytes[1][2]; got != 2*3 {
		t.Fatalf("bytes[1][2] = %d, want 6", got)
	}
	var want uint64
	for i := 1; i <= p; i++ {
		for j := 1; j <= p; j++ {
			want += uint64(i * j)
		}
	}
	if trace[0].TotalBytes() != want {
		t.Fatalf("TotalBytes = %d, want %d", trace[0].TotalBytes(), want)
	}
}

func TestPanicPropagates(t *testing.T) {
	_, err := Run(4, func(c *Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
		c.Barrier() // peers must not deadlock
	})
	if err == nil || !strings.Contains(err.Error(), "boom") && !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("err = %v", err)
	}
}

func TestMismatchedSendLengthPanics(t *testing.T) {
	_, err := Run(3, func(c *Comm) {
		c.Alltoall([]int{1, 2}) // wrong length
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestNetModelIntraNodeFree(t *testing.T) {
	nm := NetModel{RanksPerNode: 2, InjectionGBs: 10, LatencyUs: 0}
	// Two ranks on one node exchanging: no fabric time.
	intra := [][]uint64{{0, 1 << 30}, {1 << 30, 0}}
	if d := nm.CollectiveTime(intra); d != 0 {
		t.Fatalf("intra-node traffic cost %v, want 0", d)
	}
	vs := nm.Volumes(intra)
	if vs.FabricBytes != 0 || vs.TotalBytes != 2<<30 {
		t.Fatalf("volumes = %+v", vs)
	}
}

func TestNetModelInjectionBound(t *testing.T) {
	nm := NetModel{RanksPerNode: 1, InjectionGBs: 10, LatencyUs: 0}
	// Rank 0 sends 10 GB to rank 1: 1 second at 10 GB/s.
	m := [][]uint64{{0, 10_000_000_000}, {0, 0}}
	got := nm.CollectiveTime(m).Seconds()
	if got < 0.99 || got > 1.01 {
		t.Fatalf("time = %.3fs, want 1s", got)
	}
	vs := nm.Volumes(m)
	if vs.MaxNodeBytes != 10_000_000_000 {
		t.Fatalf("MaxNodeBytes = %d", vs.MaxNodeBytes)
	}
}

func TestNetModelSkewRaisesTime(t *testing.T) {
	nm := NetModel{RanksPerNode: 1, InjectionGBs: 1, LatencyUs: 0}
	// Balanced: each of 4 ranks sends 1 unit to each other rank.
	balanced := make([][]uint64, 4)
	skewed := make([][]uint64, 4)
	for i := range balanced {
		balanced[i] = make([]uint64, 4)
		skewed[i] = make([]uint64, 4)
		for j := range balanced[i] {
			if i != j {
				balanced[i][j] = 1 << 20
			}
		}
	}
	// Same total volume, all into rank 3.
	skewed[0][3] = 3 << 20
	skewed[1][3] = 3 << 20
	skewed[2][3] = 3 << 20
	skewed[0][1] = 1 << 20 // residual to keep totals close
	tb := nm.CollectiveTime(balanced)
	ts := nm.CollectiveTime(skewed)
	if ts <= tb {
		t.Fatalf("skewed exchange (%v) should cost more than balanced (%v)", ts, tb)
	}
}

func TestNetModelLatencyTerm(t *testing.T) {
	nm := NetModel{RanksPerNode: 1, InjectionGBs: 1000, LatencyUs: 100}
	m := make([][]uint64, 9)
	for i := range m {
		m[i] = make([]uint64, 9)
	}
	got := nm.CollectiveTime(m)
	want := time.Duration(100*8) * time.Microsecond
	if got < want-time.Microsecond || got > want+time.Millisecond {
		t.Fatalf("latency-only time %v, want ≈%v", got, want)
	}
}

func TestNetModelTraceTime(t *testing.T) {
	nm := NetModel{RanksPerNode: 1, InjectionGBs: 1, LatencyUs: 0}
	m := [][]uint64{{0, 1_000_000_000}, {0, 0}}
	trace := []TraceEntry{{Op: "alltoallv", Bytes: m}, {Op: "alltoallv", Bytes: m}, {Op: "barrier"}}
	got := nm.TraceTime(trace).Seconds()
	if got < 1.99 || got > 2.01 {
		t.Fatalf("trace time %.3f, want 2s", got)
	}
}

func TestNetModelValidate(t *testing.T) {
	bad := []NetModel{
		{RanksPerNode: 0, InjectionGBs: 1},
		{RanksPerNode: 1, InjectionGBs: 0},
		{RanksPerNode: 1, InjectionGBs: 1, LatencyUs: -1},
	}
	for i, nm := range bad {
		if err := nm.Validate(); err == nil {
			t.Errorf("model %d should be invalid", i)
		}
	}
	if (NetModel{RanksPerNode: 6, InjectionGBs: 23, LatencyUs: 2}).Validate() != nil {
		t.Error("valid model rejected")
	}
}

func TestNetModelNodeMapping(t *testing.T) {
	nm := NetModel{RanksPerNode: 6, InjectionGBs: 23}
	if nm.NodeOf(0) != 0 || nm.NodeOf(5) != 0 || nm.NodeOf(6) != 1 {
		t.Fatal("node mapping wrong")
	}
	if nm.Nodes(96) != 16 || nm.Nodes(97) != 17 {
		t.Fatal("node count wrong")
	}
}

func TestBigWorld(t *testing.T) {
	// 384 ranks (the paper's 64-node GPU configuration) must run fine.
	const p = 384
	_, err := Run(p, func(c *Comm) {
		s := c.AllreduceSum(1)
		if s != p {
			t.Errorf("sum = %d", s)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
