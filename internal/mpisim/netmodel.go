package mpisim

import (
	"fmt"
	"time"
)

// NetModel evaluates the time of collectives over a recorded traffic matrix
// using the standard α–β model on a non-blocking fat tree: a node's cost is
// bounded by its injection bandwidth (shared by all its ranks), traffic
// between ranks of the same node is free (it moves over shared memory /
// NVLink, not the fabric), and each of the P-1 pairwise exchange rounds of
// a large Alltoallv pays one latency α.
//
// Summit numbers (§V-A): dual-rail EDR Infiniband, 23 GB/s injection per
// node, 6 GPU ranks (or 42 CPU ranks) per node.
type NetModel struct {
	// RanksPerNode maps rank → node as node = rank / RanksPerNode.
	RanksPerNode int
	// InjectionGBs is per-node injection bandwidth (GB/s, one direction).
	InjectionGBs float64
	// Efficiency is the fraction of injection bandwidth a large Alltoallv
	// actually sustains (0 or unset means 1.0). Many-to-many exchanges on
	// fat trees realize only a few percent of nominal injection bandwidth
	// because of incast congestion and per-pair rendezvous overheads; the
	// paper's measured exchange times (Fig. 7: ≈0.6 s for C. elegans and
	// ≈25 s for H. sapiens k-mer mode at 64 nodes) calibrate Summit's
	// value to ≈0.04.
	Efficiency float64
	// LatencyUs is the per-message-round latency α in microseconds.
	LatencyUs float64
}

// Validate reports configuration errors.
func (n NetModel) Validate() error {
	switch {
	case n.RanksPerNode <= 0:
		return fmt.Errorf("mpisim: RanksPerNode=%d", n.RanksPerNode)
	case n.InjectionGBs <= 0:
		return fmt.Errorf("mpisim: InjectionGBs=%f", n.InjectionGBs)
	case n.Efficiency < 0 || n.Efficiency > 1:
		return fmt.Errorf("mpisim: Efficiency=%f outside [0,1]", n.Efficiency)
	case n.LatencyUs < 0:
		return fmt.Errorf("mpisim: LatencyUs=%f", n.LatencyUs)
	}
	return nil
}

// effectiveGBs returns the realized per-node bandwidth.
func (n NetModel) effectiveGBs() float64 {
	if n.Efficiency == 0 {
		return n.InjectionGBs
	}
	return n.InjectionGBs * n.Efficiency
}

// NodeOf returns the node hosting rank r.
func (n NetModel) NodeOf(r int) int { return r / n.RanksPerNode }

// Nodes returns the node count for a world of size p.
func (n NetModel) Nodes(p int) int { return (p + n.RanksPerNode - 1) / n.RanksPerNode }

// Topology returns the node grouping the model describes, for the
// wall-level wire emulation and the hierarchical exchange.
func (n NetModel) Topology() Topology { return Topology{RanksPerNode: n.RanksPerNode} }

// CollectiveTime evaluates one traffic matrix. bytes[i][j] is the payload
// rank i sent to rank j; entries between co-located ranks are excluded from
// fabric traffic. The latency term charges one α per pairwise exchange
// round among the ranks that actually touch the fabric: a flat P×P
// Alltoallv with payload everywhere pays α(P−1), a leader-only exchange
// pays α(L−1), and a purely intra-node collective pays nothing — which is
// exactly the message-count term a hierarchical exchange trades bandwidth
// slack for.
func (n NetModel) CollectiveTime(bytes [][]uint64) time.Duration {
	if err := n.Validate(); err != nil {
		panic(err)
	}
	p := len(bytes)
	if p == 0 {
		return 0
	}
	nodes := n.Nodes(p)
	out := make([]uint64, nodes)
	in := make([]uint64, nodes)
	active := make([]bool, p) // ranks with any fabric in/out traffic
	for i, row := range bytes {
		ni := n.NodeOf(i)
		for j, b := range row {
			nj := n.NodeOf(j)
			if ni == nj || b == 0 {
				continue // intra-node: not fabric traffic
			}
			out[ni] += b
			in[nj] += b
			active[i] = true
			active[j] = true
		}
	}
	var worst uint64
	for i := 0; i < nodes; i++ {
		if out[i] > worst {
			worst = out[i]
		}
		if in[i] > worst {
			worst = in[i]
		}
	}
	fabricRanks := 0
	for _, a := range active {
		if a {
			fabricRanks++
		}
	}
	bw := float64(worst) / (n.effectiveGBs() * 1e9)
	var lat float64
	if fabricRanks > 1 {
		lat = n.LatencyUs * 1e-6 * float64(fabricRanks-1)
	}
	return time.Duration((bw + lat) * float64(time.Second))
}

// TraceTime sums CollectiveTime over a whole trace.
func (n NetModel) TraceTime(trace []TraceEntry) time.Duration {
	var total time.Duration
	for _, e := range trace {
		if e.Bytes != nil {
			total += n.CollectiveTime(e.Bytes)
		}
	}
	return total
}

// VolumeStats summarizes a traffic matrix.
type VolumeStats struct {
	// TotalBytes is the whole-matrix payload including intra-node traffic.
	TotalBytes uint64
	// FabricBytes excludes intra-node traffic.
	FabricBytes uint64
	// MaxNodeBytes is the busiest node's max(in, out) fabric traffic.
	MaxNodeBytes uint64
}

// Volumes computes VolumeStats for a traffic matrix.
func (n NetModel) Volumes(bytes [][]uint64) VolumeStats {
	var vs VolumeStats
	nodes := n.Nodes(len(bytes))
	out := make([]uint64, nodes)
	in := make([]uint64, nodes)
	for i, row := range bytes {
		ni := n.NodeOf(i)
		for j, b := range row {
			vs.TotalBytes += b
			if nj := n.NodeOf(j); nj != ni {
				vs.FabricBytes += b
				out[ni] += b
				in[nj] += b
			}
		}
	}
	for i := 0; i < nodes; i++ {
		if out[i] > vs.MaxNodeBytes {
			vs.MaxNodeBytes = out[i]
		}
		if in[i] > vs.MaxNodeBytes {
			vs.MaxNodeBytes = in[i]
		}
	}
	return vs
}
