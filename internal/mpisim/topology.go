package mpisim

import "fmt"

// Topology groups a world's ranks into nodes of RanksPerNode consecutive
// ranks — the machine hierarchy the two-stage exchange exploits: ranks of
// one node share NVLink/host memory (near-free), nodes share the fabric.
// When RanksPerNode does not divide the world the last node is ragged
// (fewer members); its first rank is still its leader. The zero value
// (RanksPerNode 0 or 1) puts every rank on its own node, which makes every
// off-rank transfer fabric traffic — the flat accounting.
type Topology struct {
	// RanksPerNode is the node width. Values <= 1 mean one rank per node.
	RanksPerNode int
}

// span returns the effective node width (>= 1).
func (t Topology) span() int {
	if t.RanksPerNode <= 1 {
		return 1
	}
	return t.RanksPerNode
}

// NodeOf returns the node index of a rank.
func (t Topology) NodeOf(rank int) int { return rank / t.span() }

// Nodes returns the node count of a p-rank world (ceiling division: a
// ragged trailing node counts).
func (t Topology) Nodes(p int) int {
	if p <= 0 {
		return 0
	}
	return (p + t.span() - 1) / t.span()
}

// LeaderOf returns the leader of a rank's node: the node's first rank.
func (t Topology) LeaderOf(rank int) int { return t.NodeOf(rank) * t.span() }

// IsLeader reports whether a rank leads its node.
func (t Topology) IsLeader(rank int) bool { return t.LeaderOf(rank) == rank }

// SameNode reports whether two ranks are co-located.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// nodeRowsOK rejects a node-scoped collective's send vector when it
// carries payload to an off-node rank: the node tier cannot reach it.
func nodeRowsOK[T any](t Topology, rank int, send [][]T) error {
	for j, p := range send {
		if len(p) > 0 && !t.SameNode(rank, j) {
			return fmt.Errorf("mpisim: node-scoped collective: rank %d sent %d-item payload to off-node rank %d",
				rank, len(p), j)
		}
	}
	return nil
}

// NodeAlltoallvUint64 is AlltoallvUint64 constrained to the node tier of
// the given topology: every rank of the world participates (the call is
// world-synchronous — semantically a set of concurrent per-node
// sub-communicator collectives sharing one barrier, which keeps the
// same-order-everywhere collective rule trivially satisfied), but payload
// may only travel between co-located ranks; a non-empty off-node row is
// rejected. The traffic is recorded under the "node_alltoallv" trace op —
// all intra-node, so the α–β model prices it at zero fabric time — and it
// pays no emulated wire time by construction: this is the NVLink tier the
// hierarchical exchange uses for its gather and scatter stages.
func (c *Comm) NodeAlltoallvUint64(t Topology, send [][]uint64) ([][]uint64, error) {
	if err := c.checkLen(len(send)); err != nil {
		return nil, err
	}
	if err := nodeRowsOK(t, c.rank, send); err != nil {
		return nil, err
	}
	if err := c.syncReady(); err != nil {
		return nil, err
	}
	all, err := exchange(c, send)
	if err != nil {
		return nil, err
	}
	recv := make([][]uint64, c.Size())
	for i, row := range all {
		recv[i] = row[c.rank]
	}
	c.recordMatrix("node_alltoallv", all)
	return recv, nil
}

// NodeAlltoallvBytes is the byte-payload twin of NodeAlltoallvUint64.
func (c *Comm) NodeAlltoallvBytes(t Topology, send [][]byte) ([][]byte, error) {
	if err := c.checkLen(len(send)); err != nil {
		return nil, err
	}
	if err := nodeRowsOK(t, c.rank, send); err != nil {
		return nil, err
	}
	if err := c.syncReady(); err != nil {
		return nil, err
	}
	all, err := exchange(c, send)
	if err != nil {
		return nil, err
	}
	recv := make([][]byte, c.Size())
	for i, row := range all {
		recv[i] = row[c.rank]
	}
	c.recordMatrix("node_alltoallv", all)
	return recv, nil
}
