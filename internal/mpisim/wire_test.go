package mpisim

import (
	"testing"
	"time"
)

// busyWait burns wall-clock time without yielding, standing in for a rank's
// compute phase. Wall-based (not op-counted) so instrumented builds (-race)
// see the same durations.
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	x := 0
	for time.Now().Before(end) {
		x++
	}
	_ = x
}

// wireWorld is the round structure the pipeline drives: an announce
// (IAlltoall), a payload (IAlltoallvUint64), and a settle collective
// (AllreduceSum) per round, with compute split before and after the
// exchange.
type wirePend struct {
	ann *Request[[]int]
	pay *Request[[][]uint64]
}

func wirePost(c *Comm) wirePend {
	counts := make([]int, c.Size())
	send := make([][]uint64, c.Size())
	for i := range send {
		counts[i] = 1
		send[i] = []uint64{uint64(c.Rank())}
	}
	return wirePend{c.IAlltoall(counts), c.IAlltoallvUint64(send)}
}

func wireFinish(c *Comm, p wirePend) error {
	if _, err := p.ann.Wait(); err != nil {
		return err
	}
	if _, err := p.pay.Wait(); err != nil {
		return err
	}
	_, err := c.AllreduceSum(0)
	return err
}

// TestWireTimeBlockingPaysTransfer: with a flat WireTime and round-
// synchronized ranks, the blocking schedule pays roughly compute + wire per
// round — the settle collective holds every rank until the slowest wire
// elapses.
//
// TestWireTimeOverlapHidesTransfer: the overlapped schedule (one round
// lookahead, post before the compute that hides it) approaches
// max(compute, wire) per round. The assertion is deliberately loose — a
// scheduler hiccup must not flake CI — but the expected gap is large: with
// wire ≈ transfer-bound rounds the overlapped run should recover a
// substantial fraction of the wire time.
func TestWireTimeOverlapHidesTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const (
		ranks   = 6
		rounds  = 8
		wire    = 10 * time.Millisecond
		compute = 8 * time.Millisecond // per round, across all ranks
	)
	opt := Options{WireTime: func(int) time.Duration { return wire }}

	run := func(overlap bool) time.Duration {
		start := time.Now()
		_, err := RunWithOptions(ranks, opt, func(c *Comm) error {
			if !overlap {
				for r := 0; r < rounds; r++ {
					busyWait(compute / 2 / ranks)
					p := wirePost(c)
					if err := wireFinish(c, p); err != nil {
						return err
					}
					busyWait(compute / 2 / ranks)
				}
				return nil
			}
			busyWait(compute / 2 / ranks)
			p := wirePost(c)
			for r := 0; r < rounds; r++ {
				if r+1 < rounds {
					busyWait(compute / 2 / ranks)
				}
				if err := wireFinish(c, p); err != nil {
					return err
				}
				if r+1 < rounds {
					p = wirePost(c)
				}
				busyWait(compute / 2 / ranks)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	serial := run(false)
	overlapped := run(true)
	t.Logf("serial %v, overlapped %v", serial, overlapped)

	// Serial pays wire on every round; it cannot beat rounds × wire.
	if min := rounds * wire; serial < min {
		t.Errorf("serial run %v beat the wire floor %v: WireTime not charged", serial, min)
	}
	// Overlap must recover a meaningful share of the wire time. The model
	// predicts ≈ rounds × max(compute, wire) vs rounds × (compute + wire):
	// a ~45% gap here; demand 10%.
	if overlapped >= serial-serial/10 {
		t.Errorf("overlapped run %v did not hide wire time (serial %v)", overlapped, serial)
	}
}

// TestWireTimeSelfDeliveryFree: a single-rank world sends only to itself;
// self-delivery is a local copy and must not be charged wire time.
func TestWireTimeSelfDeliveryFree(t *testing.T) {
	opt := Options{WireTime: func(int) time.Duration { return time.Second }}
	start := time.Now()
	_, err := RunWithOptions(1, opt, func(c *Comm) error {
		_, err := c.AlltoallvUint64([][]uint64{{1, 2, 3}})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("self-only exchange took %v: wire charged for self-delivery", el)
	}
}

// TestWireTimeElapsedSinceInitiation: the wire clock starts when the
// collective is initiated, not when the barrier completes — compute done
// between post and Wait counts toward the transfer (RDMA-like semantics).
func TestWireTimeElapsedSinceInitiation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const wire = 30 * time.Millisecond
	opt := Options{WireTime: func(int) time.Duration { return wire }}
	start := time.Now()
	_, err := RunWithOptions(2, opt, func(c *Comm) error {
		send := [][]uint64{{1}, {2}}
		req := c.IAlltoallvUint64(send)
		busyWait(wire) // compute covers the whole transfer
		_, err := req.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each rank computed `wire` once; the transfer overlapped it entirely,
	// so the run must finish well under compute + wire (2 ranks share the
	// clock in the worst 1-core case: allow 2×wire + half).
	if el := time.Since(start); el > 2*wire+wire/2 {
		t.Errorf("run took %v: wire time not counted from initiation (wire %v)", el, wire)
	}
}
