package mpisim

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestTopologyGrouping pins the node arithmetic, including the ragged last
// node and the flat zero value.
func TestTopologyGrouping(t *testing.T) {
	tp := Topology{RanksPerNode: 3}
	for rank, wantNode := range []int{0, 0, 0, 1, 1, 1, 2} {
		if got := tp.NodeOf(rank); got != wantNode {
			t.Fatalf("NodeOf(%d) = %d, want %d", rank, got, wantNode)
		}
	}
	if got := tp.Nodes(7); got != 3 {
		t.Fatalf("Nodes(7) = %d, want 3 (ragged last node counts)", got)
	}
	if got := tp.Nodes(6); got != 2 {
		t.Fatalf("Nodes(6) = %d, want 2", got)
	}
	if got := tp.LeaderOf(6); got != 6 || !tp.IsLeader(6) {
		t.Fatalf("rank 6 must lead its singleton ragged node (leader %d)", got)
	}
	if tp.IsLeader(4) || tp.LeaderOf(4) != 3 {
		t.Fatalf("rank 4's leader = %d, want 3", tp.LeaderOf(4))
	}
	if !tp.SameNode(3, 5) || tp.SameNode(2, 3) {
		t.Fatal("SameNode boundaries wrong at the 3/3/1 grouping")
	}

	// The zero value is the flat world: every rank its own node and leader.
	var flat Topology
	if flat.NodeOf(5) != 5 || !flat.IsLeader(5) || flat.SameNode(1, 2) {
		t.Fatal("zero-value Topology must place every rank on its own node")
	}
	if got := flat.Nodes(4); got != 4 {
		t.Fatalf("flat Nodes(4) = %d, want 4", got)
	}
}

// TestNodeAlltoallv: payload travels between co-located ranks only; the
// world stays synchronous; an off-node row is a structured error.
func TestNodeAlltoallv(t *testing.T) {
	tp := Topology{RanksPerNode: 2}
	_, err := Run(6, func(c *Comm) error {
		send := make([][]uint64, c.Size())
		for j := range send {
			if tp.SameNode(c.Rank(), j) {
				send[j] = []uint64{uint64(c.Rank()*100 + j)}
			}
		}
		recv, err := c.NodeAlltoallvUint64(tp, send)
		if err != nil {
			return err
		}
		for i, part := range recv {
			if tp.SameNode(c.Rank(), i) {
				want := []uint64{uint64(i*100 + c.Rank())}
				if !reflect.DeepEqual(part, want) {
					return fmt.Errorf("rank %d recv[%d] = %v, want %v", c.Rank(), i, part, want)
				}
			} else if len(part) != 0 {
				return fmt.Errorf("rank %d received off-node payload from %d", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNodeAlltoallvRejectsOffNodeRow(t *testing.T) {
	tp := Topology{RanksPerNode: 2}
	_, errs, err := RunRanks(4, Options{}, func(c *Comm) error {
		send := make([][]byte, c.Size())
		if c.Rank() == 1 {
			send[3] = []byte{0xff} // rank 1 (node 0) → rank 3 (node 1): illegal
		}
		// The offender is rejected before it deposits; it exits with the
		// error, poisoning the world so its peers fail with ErrPeerDead
		// instead of waiting forever on the missing deposit.
		_, err := c.NodeAlltoallvBytes(tp, send)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "off-node") {
		t.Fatalf("offending rank error = %v, want the off-node rejection", errs[1])
	}
	for _, r := range []int{0, 2, 3} {
		if !errors.Is(errs[r], ErrPeerDead) {
			t.Fatalf("rank %d error = %v, want ErrPeerDead", r, errs[r])
		}
	}
}

// TestWireNodeCrediting: with RanksPerNode set, intra-node payload pays no
// emulated wire time, off-node payload does — per byte and per message.
func TestWireNodeCrediting(t *testing.T) {
	const perMsg = 2 * time.Millisecond
	run := func(ranksPerNode, dest int) time.Duration {
		opt := Options{
			RanksPerNode: ranksPerNode,
			WireMsg:      func(msgs int) time.Duration { return time.Duration(msgs) * perMsg },
		}
		start := time.Now()
		_, err := RunWithOptions(4, opt, func(c *Comm) error {
			send := make([][]uint64, c.Size())
			if c.Rank() == 0 {
				send[dest] = []uint64{1, 2, 3}
			}
			_, err := c.AlltoallvUint64(send)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Rank 0 → rank 3 crosses nodes (2-wide nodes): one fabric message.
	if el := run(2, 3); el < perMsg {
		t.Fatalf("off-node payload finished in %v, want >= %v of wire time", el, perMsg)
	}
	// Rank 0 → rank 1 stays on node: no fabric traffic, no wire sleep.
	if el := run(2, 1); el >= perMsg {
		t.Fatalf("intra-node payload took %v, want < %v (wire must not charge it)", el, perMsg)
	}
	// Flat accounting (no topology): the same neighbor transfer is fabric.
	if el := run(0, 1); el < perMsg {
		t.Fatalf("flat-world payload finished in %v, want >= %v", el, perMsg)
	}
}
