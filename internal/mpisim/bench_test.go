package mpisim

import "testing"

// BenchmarkAlltoallv measures the simulator's exchange cost (simulation
// overhead, not modeled network time).
func BenchmarkAlltoallv(b *testing.B) {
	const p = 24
	payload := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Run(p, func(c *Comm) error {
			send := make([][]byte, p)
			for j := range send {
				send[j] = payload
			}
			_, err := c.AlltoallvBytes(send)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectiveTimeEval(b *testing.B) {
	nm := NetModel{RanksPerNode: 6, InjectionGBs: 23, Efficiency: 0.04, LatencyUs: 2}
	m := make([][]uint64, 96)
	for i := range m {
		m[i] = make([]uint64, 96)
		for j := range m[i] {
			m[i][j] = 1 << 16
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nm.CollectiveTime(m) <= 0 {
			b.Fatal("non-positive")
		}
	}
}
