package mpisim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestShrinkAfterRankDeath kills one rank mid-run and has the survivors
// shrink onto a smaller world and finish a collective there.
func TestShrinkAfterRankDeath(t *testing.T) {
	const size = 4
	const dead = 2
	sums := make([]uint64, size)
	maps := make([][]int, size)
	trace, errs, err := RunRanks(size, Options{Deadline: 5 * time.Second}, func(c *Comm) error {
		if c.Rank() == dead {
			return errors.New("boom")
		}
		// Survivors eventually hit the poisoned world.
		old := c.Rank()
		for {
			if _, err := c.AllreduceSum(1); err != nil {
				if !errors.Is(err, ErrPeerDead) {
					return err
				}
				break
			}
		}
		survivors, err := c.Shrink()
		if err != nil {
			return err
		}
		maps[old] = survivors
		if c.Size() != size-1 {
			return fmt.Errorf("shrunk size %d, want %d", c.Size(), size-1)
		}
		if survivors[c.Rank()] != old {
			return fmt.Errorf("survivors[%d]=%d, want old rank %d", c.Rank(), survivors[c.Rank()], old)
		}
		s, err := c.AllreduceSum(uint64(old))
		if err != nil {
			return err
		}
		sums[old] = s
		// A recorded collective in the shrunk world must land in the same
		// trace as the pre-death ones.
		if _, err := c.Alltoall(make([]int, c.Size())); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range errs {
		if r == dead {
			if e == nil {
				t.Fatalf("dead rank %d reported no error", r)
			}
			continue
		}
		if e != nil {
			t.Fatalf("survivor %d: %v", r, e)
		}
	}
	want := uint64(0 + 1 + 3)
	for _, r := range []int{0, 1, 3} {
		if sums[r] != want {
			t.Fatalf("rank %d post-shrink sum %d, want %d", r, sums[r], want)
		}
		if len(maps[r]) != 3 || maps[r][0] != 0 || maps[r][1] != 1 || maps[r][2] != 3 {
			t.Fatalf("rank %d survivors map %v, want [0 1 3]", r, maps[r])
		}
	}
	if len(trace) == 0 {
		t.Fatal("no trace entries recorded across worlds")
	}
}

// TestShrinkRefusals covers the protocol's guard rails.
func TestShrinkRefusals(t *testing.T) {
	// Healthy world: Shrink must refuse.
	_, errs, err := RunRanks(2, Options{}, func(c *Comm) error {
		if _, err := c.Shrink(); err == nil {
			return errors.New("Shrink on a healthy world succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range errs {
		if e != nil {
			t.Fatalf("rank %d: %v", r, e)
		}
	}

	// Deadline-poisoned world: the stalled rank may still be alive, so
	// Shrink must refuse with the deadline error, not ErrPeerDead.
	release := make(chan struct{})
	_, errs, err = RunRanks(2, Options{Deadline: 20 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 1 {
			<-release
			return nil
		}
		if err := c.Barrier(); !errors.Is(err, ErrDeadline) {
			return fmt.Errorf("barrier: got %v, want ErrDeadline", err)
		}
		_, err := c.Shrink()
		if err == nil {
			return errors.New("Shrink on a deadline-poisoned world succeeded")
		}
		if !errors.Is(err, ErrDeadline) {
			return fmt.Errorf("Shrink: got %v, want ErrDeadline", err)
		}
		close(release)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, e := range errs {
		if e != nil {
			t.Fatalf("rank %d: %v", r, e)
		}
	}
}

// TestShrinkTwice chains two shrinks: kill one rank, recover, kill
// another, recover again, verifying the survivor mappings compose.
func TestShrinkTwice(t *testing.T) {
	const size = 4
	finished := make([]bool, size)
	_, errs, err := RunRanks(size, Options{Deadline: 5 * time.Second}, func(c *Comm) error {
		old := c.Rank()
		if old == 1 {
			return errors.New("first death")
		}
		if _, err := c.AllreduceSum(1); !errors.Is(err, ErrPeerDead) {
			return fmt.Errorf("want ErrPeerDead, got %v", err)
		}
		sv1, err := c.Shrink()
		if err != nil {
			return err
		}
		// Second death, in the shrunk world: old rank 3 is new rank 2.
		if old == 3 {
			return errors.New("second death")
		}
		for {
			if _, err := c.AllreduceSum(1); err != nil {
				if !errors.Is(err, ErrPeerDead) {
					return err
				}
				break
			}
		}
		sv2, err := c.Shrink()
		if err != nil {
			return err
		}
		// sv2 maps new rank → first-shrunk-world rank; compose with sv1
		// to reach original ids.
		if got := sv1[sv2[c.Rank()]]; got != old {
			return fmt.Errorf("composed mapping %d, want %d", got, old)
		}
		if c.Size() != 2 {
			return fmt.Errorf("size %d after two shrinks, want 2", c.Size())
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		finished[old] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 2} {
		if errs[r] != nil {
			t.Fatalf("survivor %d: %v", r, errs[r])
		}
		if !finished[r] {
			t.Fatalf("survivor %d did not finish", r)
		}
	}
	if errs[1] == nil || errs[3] == nil {
		t.Fatal("dead ranks reported no error")
	}
}

// TestAllreduceOr checks the union semantics the dead-set agreement
// relies on.
func TestAllreduceOr(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		got, err := c.AllreduceOr(1 << uint(c.Rank()))
		if err != nil {
			return err
		}
		if got != 0b111 {
			return fmt.Errorf("AllreduceOr = %b, want 111", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
