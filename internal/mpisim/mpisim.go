// Package mpisim is a bulk-synchronous message-passing simulator: the MPI
// substrate of the reproduction (see DESIGN.md, "Substitutions").
//
// Ranks run as goroutines inside one process and exchange data through
// shared memory, so payloads are moved bit-exactly; the *cost* of the
// paper's many-to-many exchanges (MPI_Alltoall + MPI_Alltoallv, Alg. 1
// line 8) is evaluated separately by a calibrated network model over the
// recorded traffic matrices (see netmodel.go).
//
// The collective semantics mirror MPI: every rank must call the same
// collectives in the same order; a collective returns only after all ranks
// have entered it. Unlike raw MPI — where one dead or stalled rank
// deadlocks the world — failures here are structured: a rank body that
// returns an error or panics poisons the communicator, unblocking every
// peer's in-flight and future collectives with ErrPeerDead; a collective
// that waits past the configured deadline poisons it with ErrDeadline.
// Run reports every rank's failure via errors.Join.
package mpisim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"dedukt/internal/obs"
)

// ErrPeerDead is wrapped by collective errors after a peer rank has failed
// (returned a non-nil error or panicked): the collective can never
// complete, so it unblocks with this instead of deadlocking.
var ErrPeerDead = errors.New("mpisim: peer rank dead")

// ErrDeadline is wrapped by collective errors when a rank waited in a
// collective past the communicator's deadline (a peer is stalled or never
// arriving). The whole world is poisoned: the collective cannot complete
// for anyone.
var ErrDeadline = errors.New("mpisim: collective deadline exceeded")

// Options configures a Run.
type Options struct {
	// Deadline bounds how long any rank may wait inside one collective for
	// its peers. 0 means wait forever (a dead peer still unblocks waiters
	// via poisoning; the deadline additionally catches live-but-stalled
	// peers). The deadline is per collective call, not per run.
	Deadline time.Duration
	// Obs, when non-nil, receives collective metrics (ops and bytes per
	// collective kind, deadline hits) in its registry and a deadline_hit
	// instant event when a collective times out.
	Obs *obs.Recorder
	// WireTime, when non-nil, emulates fabric transfer time at wall level:
	// each payload collective (Alltoallv and its nonblocking forms) returns
	// its received payloads no earlier than WireTime(b) after the collective
	// was initiated, where b is the bytes this rank ships to its peers
	// (self-delivery stays free: b == 0 charges nothing). The clock starts
	// at initiation — the blocking call or the nonblocking post — and the
	// collective sleeps only whatever remains of WireTime(b) once the
	// exchange itself is done, like an RDMA transfer that progresses while
	// the CPU computes: compute done between an IAlltoallv post and its
	// Wait genuinely overlaps the wire. A blocking caller pays the
	// remainder on the rank's own goroutine, a nonblocking post on the
	// background request. Ranks sleep concurrently, so a collective's wall
	// cost is the slowest rank's wire time, not the sum. nil means an
	// instantaneous wire (the default). The sleep happens after the barrier
	// waits and therefore never trips Deadline.
	WireTime func(sentBytes int) time.Duration
	// WireMsg, when non-nil, adds a per-message α component to the emulated
	// wire: a payload collective additionally waits WireMsg(m), where m is
	// the number of distinct off-node destinations this rank shipped payload
	// to. It composes with WireTime (the β/bandwidth component) under the
	// same clock-from-initiation rule. A flat P×P Alltoallv pays m ≈ P−1 per
	// rank; a hierarchical exchange routes everything through node leaders
	// and pays m = leaders−1 — exactly the message-count reduction the
	// two-stage exchange exists to buy.
	WireMsg func(messages int) time.Duration
	// RanksPerNode, when > 1, makes the emulated wire topology-aware: ranks
	// are grouped into nodes of RanksPerNode consecutive ranks (the last
	// node may be smaller) and payload between co-located ranks is credited
	// as intra-node traffic — the NVLink/shared-memory tier — paying no
	// WireTime and counting no WireMsg messages, mirroring how
	// NetModel.CollectiveTime excludes intra-node bytes from fabric time.
	// 0 or 1 charges every off-rank byte (the legacy flat accounting).
	RanksPerNode int
}

// Comm is one rank's handle on the communicator. It is owned by the rank's
// goroutine and is not safe for concurrent use.
type Comm struct {
	rank  int
	world *world
	// asyncTail is the completion channel of the most recently posted
	// nonblocking request: each new request waits on it, so posted
	// collectives execute strictly in posting order (the MPI nonblocking
	// ordering rule).
	asyncTail chan struct{}
	// pending counts posted-but-unwaited nonblocking requests; blocking
	// collectives refuse to start while it is nonzero (see syncReady).
	pending int
}

// world holds the shared state of one Run. A Run may pass through several
// worlds: Shrink retires a poisoned world and migrates the survivors into
// a fresh, smaller one; the trace log is shared across them so the run's
// collective history stays in one sequence.
type world struct {
	size     int
	deadline time.Duration
	obs      *obs.Recorder
	wireTime func(sentBytes int) time.Duration
	wireMsg  func(messages int) time.Duration
	topo     Topology
	tr       *traceLog

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	phase   int
	failure error // non-nil once poisoned; the reason every collective fails

	// slots carries one deposit per rank for the collective in flight.
	slots []any

	// Shrink protocol state (see Comm.Shrink): which ranks of THIS world
	// have died, and how many survivors have arrived in Shrink. The
	// protocol completes when every rank is accounted for — dead or
	// shrinking — and publishes the successor world in shrunk.
	dead      []bool
	numDead   int
	shrinkers int
	shrunk    *shrunkWorld
	shrinkErr error
}

// shrunkWorld is the successor published by a completed shrink:
// survivors[i] is the old-world rank now running as rank i of w.
type shrunkWorld struct {
	w         *world
	survivors []int
}

// traceLog accumulates the run's collective trace across worlds.
type traceLog struct {
	mu      sync.Mutex
	entries []TraceEntry
}

// TraceEntry records the traffic matrix of one collective.
type TraceEntry struct {
	// Op names the collective ("alltoallv", "alltoall", ...).
	Op string
	// Bytes[i][j] is the payload rank i sent to rank j (nil for
	// zero-payload collectives like barriers).
	Bytes [][]uint64
}

// TotalBytes sums the whole matrix.
func (e TraceEntry) TotalBytes() uint64 {
	var n uint64
	for _, row := range e.Bytes {
		for _, b := range row {
			n += b
		}
	}
	return n
}

// Run executes body once per rank on size ranks and returns after all
// complete. A rank failure (non-nil return or panic) poisons the world:
// peers blocked in or later entering a collective fail with an error
// wrapping ErrPeerDead instead of deadlocking. The returned error joins
// every rank's failure (errors.Join), each wrapped with its rank id; the
// Trace lists every completed collective's traffic matrix in program order.
func Run(size int, body func(c *Comm) error) (trace []TraceEntry, err error) {
	return RunWithOptions(size, Options{}, body)
}

// RunWithOptions is Run with collective deadlines configured.
func RunWithOptions(size int, opt Options, body func(c *Comm) error) (trace []TraceEntry, err error) {
	trace, errs, err := RunRanks(size, opt, body)
	if err != nil {
		return nil, err
	}
	var joined []error
	for r, e := range errs {
		if e != nil {
			joined = append(joined, fmt.Errorf("rank %d: %w", r, e))
		}
	}
	return trace, errors.Join(joined...)
}

// RunRanks is RunWithOptions exposing each rank's individual outcome:
// errs[r] is rank r's return (nil on success). Callers running recovery
// protocols need the split — after a shrink completes, a dead rank's
// error is expected and must not mask the survivors' success — while
// plain callers use RunWithOptions' joined form. The non-nil err return
// reports only setup failures (bad size or options), not rank failures.
func RunRanks(size int, opt Options, body func(c *Comm) error) (trace []TraceEntry, errs []error, err error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("mpisim: non-positive world size %d", size)
	}
	if opt.Deadline < 0 {
		return nil, nil, fmt.Errorf("mpisim: negative deadline %v", opt.Deadline)
	}
	w := &world{
		size: size, deadline: opt.Deadline, obs: opt.Obs, wireTime: opt.WireTime,
		wireMsg: opt.WireMsg, topo: Topology{RanksPerNode: opt.RanksPerNode},
		tr: &traceLog{}, slots: make([]any, size), dead: make([]bool, size),
	}
	w.cond = sync.NewCond(&w.mu)

	errs = make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			// The Comm outlives the body call so the defer can mark the
			// rank dead in whatever world it migrated to (see Shrink).
			c := &Comm{rank: rank, world: w}
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpisim: rank panicked: %v", p)
				}
				if errs[rank] != nil {
					// Unblock peers stuck in a collective: mark this rank
					// dead and poison its current world so their
					// collectives fail instead of deadlocking.
					c.die()
				}
			}()
			// pprof labels attribute CPU samples of large simulated worlds
			// to their rank; the obs span recorder refines the phase label
			// while phases are open.
			pprof.Do(context.Background(), pprof.Labels("rank", strconv.Itoa(rank), "phase", "rank-body"),
				func(context.Context) {
					errs[rank] = body(c)
				})
		}(r)
	}
	wg.Wait()
	return w.tr.entries, errs, nil
}

// die marks the rank dead in its current world and poisons it, waking
// both collective waiters (who fail with ErrPeerDead) and Shrink waiters
// (whose completion condition now accounts for this rank).
func (c *Comm) die() {
	w := c.world
	w.mu.Lock()
	if !w.dead[c.rank] {
		w.dead[c.rank] = true
		w.numDead++
	}
	if w.failure == nil {
		w.failure = fmt.Errorf("mpisim: rank %d dead: %w", c.rank, ErrPeerDead)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Shrink is the collective reconfiguration protocol of a world poisoned
// by rank death (MPI-ULFM's MPI_Comm_shrink, DESIGN.md §12): every
// surviving rank calls Shrink, the protocol completes once each of the
// world's ranks is accounted for — dead (its goroutine exited) or
// arrived here — and the survivors migrate onto a fresh communicator of
// size Size()-numDead, reranked densely in old-rank order. The returned
// slice maps new rank → previous-world rank (survivors[c.Rank()] is this
// rank's old id); callers chain these mappings across repeated shrinks.
//
// Shrink refuses a healthy world and a world poisoned by anything other
// than rank death (notably ErrDeadline: the stalled rank may still be
// alive and mutating shared payloads, so shrinking would race it). It
// waits at most the communicator deadline for its peers. Nonblocking
// requests posted before the shrink belong to the retired world and must
// be abandoned, never Waited, after Shrink returns.
func (c *Comm) Shrink() (survivors []int, err error) {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failure == nil {
		return nil, fmt.Errorf("mpisim: Shrink on a healthy communicator")
	}
	if !errors.Is(w.failure, ErrPeerDead) {
		return nil, fmt.Errorf("mpisim: cannot shrink: %w", w.failure)
	}
	if w.dead[c.rank] {
		return nil, fmt.Errorf("mpisim: dead rank %d cannot shrink", c.rank)
	}
	w.shrinkers++
	if w.deadline > 0 {
		timer := time.AfterFunc(w.deadline, func() {
			w.mu.Lock()
			if w.shrunk == nil && w.shrinkErr == nil {
				w.shrinkErr = fmt.Errorf("mpisim: waited %v for survivors to shrink: %w", w.deadline, ErrDeadline)
				w.cond.Broadcast()
			}
			w.mu.Unlock()
		})
		defer timer.Stop()
	}
	for w.shrunk == nil && w.shrinkErr == nil {
		if w.shrinkers+w.numDead >= w.size {
			// Last rank accounted for: build the successor world. Peers
			// woken by the broadcast find it in w.shrunk.
			alive := make([]int, 0, w.size-w.numDead)
			for r := 0; r < w.size; r++ {
				if !w.dead[r] {
					alive = append(alive, r)
				}
			}
			nw := &world{
				size: len(alive), deadline: w.deadline, obs: w.obs,
				wireTime: w.wireTime, wireMsg: w.wireMsg, topo: w.topo,
				tr:    w.tr,
				slots: make([]any, len(alive)), dead: make([]bool, len(alive)),
			}
			nw.cond = sync.NewCond(&nw.mu)
			w.shrunk = &shrunkWorld{w: nw, survivors: alive}
			w.cond.Broadcast()
			break
		}
		w.cond.Wait()
	}
	if w.shrinkErr != nil {
		return nil, w.shrinkErr
	}
	sh := w.shrunk
	newRank := -1
	for i, o := range sh.survivors {
		if o == c.rank {
			newRank = i
			break
		}
	}
	if newRank < 0 {
		return nil, fmt.Errorf("mpisim: rank %d missing from the shrunk world", c.rank)
	}
	c.world = sh.w
	c.rank = newRank
	c.pending = 0
	c.asyncTail = nil
	return append([]int(nil), sh.survivors...), nil
}

// poison marks the world failed with the given reason (first reason wins)
// and wakes every waiter.
func (w *world) poison(reason error) {
	w.mu.Lock()
	if w.failure == nil {
		w.failure = reason
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.world.size }

// syncReady guards every blocking collective: starting one while the rank
// has unwaited nonblocking requests outstanding would interleave two
// collective streams, scrambling the same-order-on-every-rank matching the
// simulator (like MPI) requires. Wait on all requests first.
func (c *Comm) syncReady() error {
	if c.pending > 0 {
		return fmt.Errorf("mpisim: rank %d: blocking collective with %d nonblocking requests outstanding (Wait first)", c.rank, c.pending)
	}
	return nil
}

// Barrier blocks until every rank has entered it, or fails with an error
// wrapping ErrPeerDead (a peer died) or ErrDeadline (the wait exceeded the
// communicator deadline).
func (c *Comm) Barrier() error {
	if err := c.syncReady(); err != nil {
		return err
	}
	return c.world.barrier(c.rank)
}

func (w *world) barrier(rank int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failure != nil {
		return w.failure
	}
	w.arrived++
	if w.arrived == w.size {
		w.arrived = 0
		w.phase++
		w.cond.Broadcast()
		return nil
	}
	phase := w.phase
	// satisfied flags (under w.mu) that this waiter left the barrier, so a
	// late-firing deadline timer does not poison a completed collective.
	satisfied := false
	if w.deadline > 0 {
		timer := time.AfterFunc(w.deadline, func() {
			w.mu.Lock()
			fired := !satisfied && w.failure == nil
			if fired {
				w.failure = fmt.Errorf("mpisim: waited %v in a collective: %w", w.deadline, ErrDeadline)
				w.cond.Broadcast()
			}
			w.mu.Unlock()
			if fired && w.obs != nil {
				// The stalled peer is unknown; the instant lands on the rank
				// whose wait tripped the deadline (round unknown here: -1).
				w.obs.Instant(rank, -1, obs.EvDeadline)
				w.obs.Registry().Counter("mpisim_deadline_hits_total", "Collectives that exceeded the communicator deadline.").Inc()
			}
		})
		defer timer.Stop()
	}
	for w.phase == phase && w.failure == nil {
		w.cond.Wait()
	}
	satisfied = true
	return w.failure // nil on normal completion
}

// exchange is the generic all-to-all primitive: every rank deposits one
// value and receives everyone's deposits (including its own). Two barriers
// delimit the deposit and collection phases so slots can be reused by the
// next collective.
func exchange[T any](c *Comm, v T) ([]T, error) {
	w := c.world
	w.slots[c.rank] = v
	if err := w.barrier(c.rank); err != nil {
		return nil, err
	}
	out := make([]T, w.size)
	for i, s := range w.slots {
		out[i] = s.(T)
	}
	if err := w.barrier(c.rank); err != nil {
		return nil, err
	}
	return out, nil
}

// record appends a trace entry exactly once per collective (rank 0 writes)
// and, when a recorder is attached, publishes per-op collective metrics.
func (c *Comm) record(op string, bytes [][]uint64) {
	if c.rank != 0 {
		return
	}
	w := c.world
	e := TraceEntry{Op: op, Bytes: bytes}
	w.tr.mu.Lock()
	w.tr.entries = append(w.tr.entries, e)
	w.tr.mu.Unlock()
	if w.obs != nil {
		reg := w.obs.Registry()
		reg.Counter("mpisim_collectives_total", "Completed collectives by kind.", obs.L("op", op)).Inc()
		reg.Counter("mpisim_collective_bytes_total", "Payload bytes moved by collectives, by kind.", obs.L("op", op)).Add(e.TotalBytes())
	}
}

// Alltoall exchanges one int per destination: rank i's send[j] arrives as
// the returned recv[i] on rank j. This is the count exchange that precedes
// every Alltoallv (MPI_Alltoall in Alg. 1).
func (c *Comm) Alltoall(send []int) ([]int, error) {
	if err := c.checkLen(len(send)); err != nil {
		return nil, err
	}
	if err := c.syncReady(); err != nil {
		return nil, err
	}
	return c.alltoall(append([]int(nil), send...))
}

// alltoall is the unchecked implementation; it owns send (callers copy when
// the caller may still mutate the slice).
func (c *Comm) alltoall(send []int) ([]int, error) {
	all, err := exchange(c, send)
	if err != nil {
		return nil, err
	}
	recv := make([]int, c.Size())
	for i, row := range all {
		recv[i] = row[c.rank]
	}
	if c.rank == 0 {
		bytes := make([][]uint64, c.Size())
		for i := range bytes {
			bytes[i] = make([]uint64, c.Size())
			for j := range bytes[i] {
				bytes[i][j] = 8 // one count word per pair
			}
		}
		c.record("alltoall", bytes)
	}
	return recv, nil
}

// AlltoallvBytes performs the variable-size many-to-many exchange of byte
// payloads: send[j] goes to rank j; recv[i] is the payload from rank i.
// Payloads are referenced, not copied — receivers must not mutate them.
func (c *Comm) AlltoallvBytes(send [][]byte) ([][]byte, error) {
	if err := c.checkLen(len(send)); err != nil {
		return nil, err
	}
	if err := c.syncReady(); err != nil {
		return nil, err
	}
	return c.alltoallvBytes(send, c.wireClock())
}

// wire pays whatever remains of the emulated wall-level wire time for a
// payload this rank sends off-node: WireTime(bytes) for the bandwidth
// component plus WireMsg(msgs) for the per-destination α component
// (self-delivery — and, with Options.RanksPerNode set, delivery to
// co-located ranks — is an intra-node copy and stays free). The clock
// starts at `posted` — the moment the collective was initiated — because
// the emulated fabric moves data without the CPU, like RDMA: wall time the
// caller spent computing (or starved of the scheduler) since initiation
// already counts toward the transfer.
func (c *Comm) wire(sentBytes, msgs int, posted time.Time) {
	w := c.world
	if (w.wireTime == nil && w.wireMsg == nil) || sentBytes == 0 {
		return // nothing left the node: the fabric (and its latency floor) is not involved
	}
	var d time.Duration
	if w.wireTime != nil {
		d += w.wireTime(sentBytes)
	}
	if w.wireMsg != nil && msgs > 0 {
		d += w.wireMsg(msgs)
	}
	if d -= time.Since(posted); d > 0 {
		time.Sleep(d)
	}
}

// wireClock timestamps a payload collective's initiation; it is zero-cost
// when no wire model is configured.
func (c *Comm) wireClock() (t time.Time) {
	if c.world.wireTime != nil || c.world.wireMsg != nil {
		t = time.Now()
	}
	return t
}

// sentOffNode tallies the bytes and distinct destinations of the rows a
// rank ships across the fabric: rows to itself — and, under a node-aware
// topology, to co-located ranks — are intra-node copies and count nothing.
func sentOffNode[T any](c *Comm, send [][]T, width int) (sent, msgs int) {
	topo := c.world.topo
	for i, p := range send {
		if len(p) == 0 || i == c.rank || topo.SameNode(i, c.rank) {
			continue
		}
		sent += width * len(p)
		msgs++
	}
	return sent, msgs
}

func (c *Comm) alltoallvBytes(send [][]byte, posted time.Time) ([][]byte, error) {
	sent, msgs := sentOffNode(c, send, 1)
	all, err := exchange(c, send)
	if err != nil {
		return nil, err
	}
	c.wire(sent, msgs, posted)
	recv := make([][]byte, c.Size())
	for i, row := range all {
		recv[i] = row[c.rank]
	}
	c.recordMatrix("alltoallv", all)
	return recv, nil
}

// AlltoallvUint64 exchanges word payloads (packed k-mers / supermers).
func (c *Comm) AlltoallvUint64(send [][]uint64) ([][]uint64, error) {
	if err := c.checkLen(len(send)); err != nil {
		return nil, err
	}
	if err := c.syncReady(); err != nil {
		return nil, err
	}
	return c.alltoallvUint64(send, c.wireClock())
}

func (c *Comm) alltoallvUint64(send [][]uint64, posted time.Time) ([][]uint64, error) {
	sent, msgs := sentOffNode(c, send, 8)
	all, err := exchange(c, send)
	if err != nil {
		return nil, err
	}
	c.wire(sent, msgs, posted)
	recv := make([][]uint64, c.Size())
	for i, row := range all {
		recv[i] = row[c.rank]
	}
	c.recordMatrix("alltoallv", all)
	return recv, nil
}

func recordBytes[T any](all []T, f func(T, int, int) uint64, size int) [][]uint64 {
	m := make([][]uint64, size)
	for i := range m {
		m[i] = make([]uint64, size)
		for j := range m[i] {
			m[i][j] = f(all[i], i, j)
		}
	}
	return m
}

func (c *Comm) recordMatrix(op string, all any) {
	if c.rank != 0 {
		return
	}
	size := c.Size()
	var m [][]uint64
	switch v := all.(type) {
	case [][][]byte:
		m = recordBytes(v, func(p [][]byte, i, j int) uint64 { return uint64(len(p[j])) }, size)
	case [][][]uint64:
		m = recordBytes(v, func(p [][]uint64, i, j int) uint64 { return 8 * uint64(len(p[j])) }, size)
	default:
		panic(fmt.Sprintf("mpisim: unsupported payload type %T", all))
	}
	c.record(op, m)
}

// AllreduceSum returns the sum of v across ranks.
func (c *Comm) AllreduceSum(v uint64) (uint64, error) {
	if err := c.syncReady(); err != nil {
		return 0, err
	}
	all, err := exchange(c, v)
	if err != nil {
		return 0, err
	}
	var s uint64
	for _, x := range all {
		s += x
	}
	return s, nil
}

// AllreduceMax returns the max of v across ranks.
func (c *Comm) AllreduceMax(v uint64) (uint64, error) {
	if err := c.syncReady(); err != nil {
		return 0, err
	}
	all, err := exchange(c, v)
	if err != nil {
		return 0, err
	}
	var m uint64
	for _, x := range all {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// AllreduceOr returns the bitwise OR of v across ranks. The recovery
// layer agrees on dead-rank sets with it: each survivor contributes a bit
// mask of the deaths it observed, and the OR is the union — which max or
// sum cannot express when observations differ.
func (c *Comm) AllreduceOr(v uint64) (uint64, error) {
	if err := c.syncReady(); err != nil {
		return 0, err
	}
	all, err := exchange(c, v)
	if err != nil {
		return 0, err
	}
	var m uint64
	for _, x := range all {
		m |= x
	}
	return m, nil
}

// GatherUint64 returns every rank's value, indexed by rank (available on
// all ranks — an allgather; the paper's reporting needs no rooted gather).
func (c *Comm) GatherUint64(v uint64) ([]uint64, error) {
	if err := c.syncReady(); err != nil {
		return nil, err
	}
	return exchange(c, v)
}

func (c *Comm) checkLen(n int) error {
	if n != c.Size() {
		return fmt.Errorf("mpisim: send vector length %d != world size %d", n, c.Size())
	}
	return nil
}

// ---- Nonblocking collectives ------------------------------------------------
//
// IAlltoall / IAlltoallv* post a collective and return immediately with a
// Request; the exchange runs on a background goroutine while the posting rank
// keeps computing (the overlap the paper's communication-bound rounds leave on
// the table). As in MPI:
//
//   - posted requests on one rank complete in posting order (each request's
//     goroutine waits for the previous one), so the same-collective-order rule
//     still holds across ranks as long as every rank posts in the same order;
//   - vector payloads are referenced, not copied — the sender must not mutate
//     them until Wait returns (IAlltoall copies its small count vector at post
//     time, so that buffer may be reused immediately);
//   - blocking collectives may not be issued while requests are outstanding
//     (syncReady); Wait every request first.
//
// Poisoning composes: a background collective that fails with ErrPeerDead or
// ErrDeadline delivers that error from Wait.

type asyncResult[T any] struct {
	v   T
	err error
}

// Request is a posted nonblocking collective. Wait blocks until it completes
// and returns its result; calling Wait again returns the same result. A
// Request must be waited by the rank that posted it.
type Request[T any] struct {
	c    *Comm
	ch   chan asyncResult[T]
	done bool
	v    T
	err  error
}

// Wait blocks until the posted collective completes and returns its result.
// Idempotent: later calls return the cached result.
func (r *Request[T]) Wait() (T, error) {
	if !r.done {
		res := <-r.ch
		r.done = true
		r.v, r.err = res.v, res.err
		r.c.pending--
	}
	return r.v, r.err
}

// post starts op on a background goroutine chained after the rank's previous
// nonblocking request, preserving posting order. The result channel is
// buffered so the goroutine never leaks even if Wait is never called (e.g.
// the world was poisoned and the rank body bailed out).
//
// Posting yields to the scheduler before returning. On a real machine the
// NIC picks up a posted isend immediately; with fewer cores than ranks the
// Go scheduler would otherwise run each rank's post only at the start of
// that rank's next CPU slice, staggering the ranks' wire clocks by up to a
// full round of compute and charging that stagger to whichever collective
// synchronizes next. The yield lets every runnable rank reach its post (and
// every posted collective's goroutine start) before compute resumes.
func post[T any](c *Comm, op func() (T, error)) *Request[T] {
	r := &Request[T]{c: c, ch: make(chan asyncResult[T], 1)}
	prev := c.asyncTail
	done := make(chan struct{})
	c.asyncTail = done
	c.pending++
	go func() {
		defer close(done)
		if prev != nil {
			<-prev
		}
		v, err := op()
		r.ch <- asyncResult[T]{v, err}
	}()
	runtime.Gosched()
	return r
}

// postErr wraps an immediate validation failure in an already-completed
// Request so callers have a single error path (through Wait).
func postErr[T any](c *Comm, err error) *Request[T] {
	r := &Request[T]{c: c, ch: make(chan asyncResult[T], 1)}
	c.pending++
	var zero T
	r.ch <- asyncResult[T]{zero, err}
	return r
}

// IAlltoall posts the count exchange. The send vector is copied at post time,
// so the caller may reuse it immediately.
func (c *Comm) IAlltoall(send []int) *Request[[]int] {
	if err := c.checkLen(len(send)); err != nil {
		return postErr[[]int](c, err)
	}
	owned := append([]int(nil), send...)
	return post(c, func() ([]int, error) { return c.alltoall(owned) })
}

// IAlltoallvBytes posts the byte-payload exchange. Payloads are referenced:
// the caller must not mutate send or its rows until Wait returns.
func (c *Comm) IAlltoallvBytes(send [][]byte) *Request[[][]byte] {
	if err := c.checkLen(len(send)); err != nil {
		return postErr[[][]byte](c, err)
	}
	posted := c.wireClock()
	return post(c, func() ([][]byte, error) { return c.alltoallvBytes(send, posted) })
}

// IAlltoallvUint64 posts the word-payload exchange. Payloads are referenced:
// the caller must not mutate send or its rows until Wait returns.
func (c *Comm) IAlltoallvUint64(send [][]uint64) *Request[[][]uint64] {
	if err := c.checkLen(len(send)); err != nil {
		return postErr[[][]uint64](c, err)
	}
	posted := c.wireClock()
	return post(c, func() ([][]uint64, error) { return c.alltoallvUint64(send, posted) })
}
