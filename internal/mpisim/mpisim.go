// Package mpisim is a bulk-synchronous message-passing simulator: the MPI
// substrate of the reproduction (see DESIGN.md, "Substitutions").
//
// Ranks run as goroutines inside one process and exchange data through
// shared memory, so payloads are moved bit-exactly; the *cost* of the
// paper's many-to-many exchanges (MPI_Alltoall + MPI_Alltoallv, Alg. 1
// line 8) is evaluated separately by a calibrated network model over the
// recorded traffic matrices (see netmodel.go).
//
// The collective semantics mirror MPI: every rank must call the same
// collectives in the same order; a collective returns only after all ranks
// have entered it.
package mpisim

import (
	"fmt"
	"sync"
)

// Comm is one rank's handle on the communicator.
type Comm struct {
	rank  int
	world *world
}

// world holds the shared state of one Run.
type world struct {
	size int

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	phase   int
	dead    bool

	// slots carries one deposit per rank for the collective in flight.
	slots []any

	traceMu sync.Mutex
	trace   []TraceEntry
}

// TraceEntry records the traffic matrix of one collective.
type TraceEntry struct {
	// Op names the collective ("alltoallv", "alltoall", ...).
	Op string
	// Bytes[i][j] is the payload rank i sent to rank j (nil for
	// zero-payload collectives like barriers).
	Bytes [][]uint64
}

// TotalBytes sums the whole matrix.
func (e TraceEntry) TotalBytes() uint64 {
	var n uint64
	for _, row := range e.Bytes {
		for _, b := range row {
			n += b
		}
	}
	return n
}

// Run executes body once per rank on size ranks and returns after all
// complete. A panic in any rank is recovered and returned as an error (the
// other ranks may deadlock-free exit only if they do not wait on the dead
// rank, so Run fails fast by re-panicking the first panic after unblocking —
// in practice: treat a non-nil error as fatal for the whole computation).
// The returned Trace lists every collective's traffic matrix in program
// order.
func Run(size int, body func(c *Comm)) (trace []TraceEntry, err error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpisim: non-positive world size %d", size)
	}
	w := &world{size: size, slots: make([]any, size)}
	w.cond = sync.NewCond(&w.mu)

	panics := make(chan any, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
					// Unblock peers stuck in a barrier: poison the world so
					// their collectives fail instead of deadlocking.
					w.mu.Lock()
					w.dead = true
					w.phase++
					w.cond.Broadcast()
					w.mu.Unlock()
				}
			}()
			body(&Comm{rank: rank, world: w})
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		return w.trace, fmt.Errorf("mpisim: rank panicked: %v", p)
	default:
	}
	return w.trace, nil
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.world.size }

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.world.barrier() }

func (w *world) barrier() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		panic("mpisim: world poisoned by a peer rank's panic")
	}
	w.arrived++
	if w.arrived == w.size {
		w.arrived = 0
		w.phase++
		w.cond.Broadcast()
		return
	}
	phase := w.phase
	for w.phase == phase && !w.dead {
		w.cond.Wait()
	}
	if w.dead {
		panic("mpisim: world poisoned by a peer rank's panic")
	}
}

// exchange is the generic all-to-all primitive: every rank deposits one
// value and receives everyone's deposits (including its own). Two barriers
// delimit the deposit and collection phases so slots can be reused by the
// next collective.
func exchange[T any](c *Comm, v T) []T {
	w := c.world
	w.slots[c.rank] = v
	w.barrier()
	out := make([]T, w.size)
	for i, s := range w.slots {
		out[i] = s.(T)
	}
	w.barrier()
	return out
}

// record appends a trace entry exactly once per collective (rank 0 writes).
func (c *Comm) record(op string, bytes [][]uint64) {
	if c.rank != 0 {
		return
	}
	w := c.world
	w.traceMu.Lock()
	w.trace = append(w.trace, TraceEntry{Op: op, Bytes: bytes})
	w.traceMu.Unlock()
}

// Alltoall exchanges one int per destination: rank i's send[j] arrives as
// the returned recv[i] on rank j. This is the count exchange that precedes
// every Alltoallv (MPI_Alltoall in Alg. 1).
func (c *Comm) Alltoall(send []int) []int {
	c.mustLen(len(send))
	all := exchange(c, append([]int(nil), send...))
	recv := make([]int, c.Size())
	for i, row := range all {
		recv[i] = row[c.rank]
	}
	if c.rank == 0 {
		bytes := make([][]uint64, c.Size())
		for i := range bytes {
			bytes[i] = make([]uint64, c.Size())
			for j := range bytes[i] {
				bytes[i][j] = 8 // one count word per pair
			}
		}
		c.record("alltoall", bytes)
	}
	return recv
}

// AlltoallvBytes performs the variable-size many-to-many exchange of byte
// payloads: send[j] goes to rank j; recv[i] is the payload from rank i.
// Payloads are referenced, not copied — receivers must not mutate them.
func (c *Comm) AlltoallvBytes(send [][]byte) [][]byte {
	c.mustLen(len(send))
	all := exchange(c, send)
	recv := make([][]byte, c.Size())
	for i, row := range all {
		recv[i] = row[c.rank]
	}
	c.recordMatrix("alltoallv", all)
	return recv
}

// AlltoallvUint64 exchanges word payloads (packed k-mers / supermers).
func (c *Comm) AlltoallvUint64(send [][]uint64) [][]uint64 {
	c.mustLen(len(send))
	all := exchange(c, send)
	recv := make([][]uint64, c.Size())
	for i, row := range all {
		recv[i] = row[c.rank]
	}
	c.recordMatrix("alltoallv", all)
	return recv
}

func recordBytes[T any](all []T, f func(T, int, int) uint64, size int) [][]uint64 {
	m := make([][]uint64, size)
	for i := range m {
		m[i] = make([]uint64, size)
		for j := range m[i] {
			m[i][j] = f(all[i], i, j)
		}
	}
	return m
}

func (c *Comm) recordMatrix(op string, all any) {
	if c.rank != 0 {
		return
	}
	size := c.Size()
	var m [][]uint64
	switch v := all.(type) {
	case [][][]byte:
		m = recordBytes(v, func(p [][]byte, i, j int) uint64 { return uint64(len(p[j])) }, size)
	case [][][]uint64:
		m = recordBytes(v, func(p [][]uint64, i, j int) uint64 { return 8 * uint64(len(p[j])) }, size)
	default:
		panic(fmt.Sprintf("mpisim: unsupported payload type %T", all))
	}
	c.record(op, m)
}

// AllreduceSum returns the sum of v across ranks.
func (c *Comm) AllreduceSum(v uint64) uint64 {
	all := exchange(c, v)
	var s uint64
	for _, x := range all {
		s += x
	}
	return s
}

// AllreduceMax returns the max of v across ranks.
func (c *Comm) AllreduceMax(v uint64) uint64 {
	all := exchange(c, v)
	var m uint64
	for _, x := range all {
		if x > m {
			m = x
		}
	}
	return m
}

// GatherUint64 returns every rank's value, indexed by rank (available on
// all ranks — an allgather; the paper's reporting needs no rooted gather).
func (c *Comm) GatherUint64(v uint64) []uint64 {
	return exchange(c, v)
}

func (c *Comm) mustLen(n int) {
	if n != c.Size() {
		panic(fmt.Sprintf("mpisim: send vector length %d != world size %d", n, c.Size()))
	}
}
