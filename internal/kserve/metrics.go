package kserve

import (
	"math/bits"
	"strconv"
	"time"

	"dedukt/internal/obs"
	"dedukt/internal/stats"
)

// batchBuckets is the number of log2 batch-size histogram classes:
// 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65–128, >128.
const batchBuckets = 9

// BatchBucketLabels names the batch-size distribution classes, index-aligned
// with ShardMetrics.BatchSizeDist.
var BatchBucketLabels = [batchBuckets]string{
	"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128", ">128",
}

// batchSizeBounds are the Prometheus histogram upper bounds matching
// BatchBucketLabels (the +Inf bucket is the final ">128" class).
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// batchBucket maps a batch size (≥1) to its log2 class.
func batchBucket(n int) int {
	b := bits.Len(uint(n - 1))
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	return b
}

// serviceMetrics are the service-wide hot-path counters, registered in the
// shared observability registry (see newServiceMetrics) so GET /metrics
// exposes them in Prometheus text format alongside every other subsystem.
type serviceMetrics struct {
	start       time.Time
	requests    *obs.Counter // every lookup, including cache hits
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	coalesced   *obs.Counter   // singleflight followers
	rejected    *obs.Counter   // admission-control drops
	queueWait   *obs.Histogram // admission → batch start, per call
	serveStage  *obs.Histogram // micro-batch serve duration
}

// shardMetrics are one shard's counters, written only by its worker and
// the (lock-free) admission path.
type shardMetrics struct {
	enqueued  *obs.Counter
	served    *obs.Counter
	batches   *obs.Counter
	rejected  *obs.Counter
	batchSize *obs.Histogram
}

// initMetrics registers the service's metric families into reg and wires
// the derived gauges (uptime, QPS, hit rate, imbalance) as exposition-time
// functions over the live counters.
func (s *Service) initMetrics(reg *obs.Registry) {
	s.reg = reg
	s.met = serviceMetrics{
		start:       time.Now(),
		requests:    reg.Counter("kserve_requests_total", "Lookups received, including cache hits."),
		cacheHits:   reg.Counter("kserve_cache_hits_total", "Lookups answered by the hot-k-mer cache."),
		cacheMisses: reg.Counter("kserve_cache_misses_total", "Lookups that missed the cache."),
		coalesced:   reg.Counter("kserve_coalesced_total", "Lookups coalesced onto an in-flight request (singleflight followers)."),
		rejected:    reg.Counter("kserve_rejected_total", "Lookups shed by admission control (HTTP 429)."),
		queueWait: reg.Histogram("kserve_stage_seconds",
			"Serving-stage latency: queue_wait is admission to micro-batch start per lookup, serve is micro-batch execution.",
			obs.ExpBuckets(0.000001, 4, 10), obs.L("stage", "queue_wait")),
		serveStage: reg.Histogram("kserve_stage_seconds",
			"Serving-stage latency: queue_wait is admission to micro-batch start per lookup, serve is micro-batch execution.",
			obs.ExpBuckets(0.000001, 4, 10), obs.L("stage", "serve")),
	}
	reg.Gauge("kserve_k", "Served k-mer length.").Set(float64(s.k))
	reg.Gauge("kserve_distinct_kmers", "Distinct k-mers in the served spectrum.").Set(float64(s.distinct))
	reg.Gauge("kserve_shards", "Number of serving shards.").Set(float64(len(s.shards)))
	reg.Gauge("kserve_cluster_shard_index", "Cluster shard of the key space this replica holds.").Set(float64(s.opts.ShardIndex))
	reg.Gauge("kserve_cluster_shard_count", "Total cluster shards the key space is split into.").Set(float64(s.opts.ShardCount))
	reg.GaugeFunc("kserve_draining", "1 while the service is draining (BeginDrain/Close).", func() float64 {
		if s.Draining() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("kserve_uptime_seconds", "Seconds since the service started.", func() float64 {
		return time.Since(s.met.start).Seconds()
	})
	reg.GaugeFunc("kserve_qps", "Mean lookups per second since start.", func() float64 {
		if up := time.Since(s.met.start).Seconds(); up > 0 {
			return float64(s.met.requests.Value()) / up
		}
		return 0
	})
	reg.GaugeFunc("kserve_cache_hit_rate", "Cache hits / (hits + misses).", func() float64 {
		h, m := s.met.cacheHits.Value(), s.met.cacheMisses.Value()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	reg.GaugeFunc("kserve_cache_len", "Entries in the hot-k-mer cache.", func() float64 {
		if s.cache == nil {
			return 0
		}
		return float64(s.cache.len())
	})
	reg.GaugeFunc("kserve_shard_load_imbalance", "Max/avg of per-shard served lookups (the paper's Table III metric, serving side).", func() float64 {
		served := make([]uint64, len(s.shards))
		for i, sh := range s.shards {
			served[i] = sh.met.served.Value()
		}
		return stats.Imbalance(served)
	})
}

// initShardMetrics registers one shard's metric series, labeled by shard id.
func (s *Service) initShardMetrics(reg *obs.Registry, sh *shard) {
	label := obs.L("shard", strconv.Itoa(sh.id))
	sh.met = shardMetrics{
		enqueued:  reg.Counter("kserve_shard_enqueued_total", "Lookups enqueued per shard.", label),
		served:    reg.Counter("kserve_shard_served_total", "Lookups served per shard.", label),
		batches:   reg.Counter("kserve_shard_batches_total", "Micro-batches served per shard.", label),
		rejected:  reg.Counter("kserve_shard_rejected_total", "Lookups shed per shard (full queue).", label),
		batchSize: reg.Histogram("kserve_batch_size", "Micro-batch size distribution.", batchSizeBounds, label),
	}
	reg.GaugeFunc("kserve_shard_queue_depth", "Pending lookups per shard.", func() float64 {
		return float64(len(sh.queue))
	}, label)
	reg.Gauge("kserve_shard_entries", "Distinct k-mers owned per shard.", label).Set(float64(len(sh.entries)))
}

// Metrics is a point-in-time snapshot of the service, shaped for JSON
// (/metrics?format=json). ShardLoadImbalance is max/avg of per-shard served
// requests — the serving-side analogue of the paper's Table III
// load-imbalance metric, computed with the same stats.Imbalance.
type Metrics struct {
	UptimeSec          float64        `json:"uptime_sec"`
	K                  int            `json:"k"`
	Canonical          bool           `json:"canonical"`
	DistinctKmers      uint64         `json:"distinct_kmers"`
	Shards             int            `json:"shards"`
	Requests           uint64         `json:"requests"`
	QPS                float64        `json:"qps"`
	CacheHits          uint64         `json:"cache_hits"`
	CacheMisses        uint64         `json:"cache_misses"`
	CacheHitRate       float64        `json:"cache_hit_rate"`
	CacheLen           int            `json:"cache_len"`
	Coalesced          uint64         `json:"coalesced"`
	Rejected           uint64         `json:"rejected"`
	ShardLoadImbalance float64        `json:"shard_load_imbalance"`
	EntryImbalance     float64        `json:"entry_imbalance"`
	BatchBuckets       []string       `json:"batch_buckets"`
	PerShard           []ShardMetrics `json:"per_shard"`
}

// ShardMetrics is one shard's slice of the snapshot.
type ShardMetrics struct {
	Shard         int      `json:"shard"`
	Entries       int      `json:"entries"`
	Served        uint64   `json:"served"`
	Batches       uint64   `json:"batches"`
	MeanBatchSize float64  `json:"mean_batch_size"`
	Rejected      uint64   `json:"rejected"`
	QueueDepth    int      `json:"queue_depth"`
	QueueCap      int      `json:"queue_cap"`
	BatchSizeDist []uint64 `json:"batch_size_dist"`
}

// Metrics snapshots the service counters. Counters are read individually
// with atomic loads; the snapshot is consistent enough for monitoring, not
// a linearizable cut.
func (s *Service) Metrics() Metrics {
	up := time.Since(s.met.start).Seconds()
	m := Metrics{
		UptimeSec:     up,
		K:             s.k,
		Canonical:     s.canonical,
		DistinctKmers: s.distinct,
		Shards:        len(s.shards),
		Requests:      s.met.requests.Value(),
		CacheHits:     s.met.cacheHits.Value(),
		CacheMisses:   s.met.cacheMisses.Value(),
		Coalesced:     s.met.coalesced.Value(),
		Rejected:      s.met.rejected.Value(),
		BatchBuckets:  BatchBucketLabels[:],
	}
	if up > 0 {
		m.QPS = float64(m.Requests) / up
	}
	if probes := m.CacheHits + m.CacheMisses; probes > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(probes)
	}
	if s.cache != nil {
		m.CacheLen = s.cache.len()
	}
	served := make([]uint64, len(s.shards))
	entries := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		served[i] = sh.met.served.Value()
		entries[i] = uint64(len(sh.entries))
		dist, batches, sum := sh.met.batchSize.Snapshot()
		sm := ShardMetrics{
			Shard:         i,
			Entries:       len(sh.entries),
			Served:        served[i],
			Batches:       batches,
			Rejected:      sh.met.rejected.Value(),
			QueueDepth:    len(sh.queue),
			QueueCap:      cap(sh.queue),
			BatchSizeDist: dist,
		}
		if batches > 0 {
			sm.MeanBatchSize = sum / float64(batches)
		}
		m.PerShard = append(m.PerShard, sm)
	}
	m.ShardLoadImbalance = stats.Imbalance(served)
	m.EntryImbalance = stats.Imbalance(entries)
	return m
}
