package kserve

import (
	"math/bits"
	"sync/atomic"
	"time"

	"dedukt/internal/stats"
)

// batchBuckets is the number of log2 batch-size histogram classes:
// 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65–128, >128.
const batchBuckets = 9

// BatchBucketLabels names the batch-size distribution classes, index-aligned
// with ShardMetrics.BatchSizeDist.
var BatchBucketLabels = [batchBuckets]string{
	"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128", ">128",
}

// batchBucket maps a batch size (≥1) to its log2 class.
func batchBucket(n int) int {
	b := bits.Len(uint(n - 1))
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	return b
}

// serviceMetrics are the service-wide hot-path counters.
type serviceMetrics struct {
	start       time.Time
	requests    atomic.Uint64 // every lookup, including cache hits
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	coalesced   atomic.Uint64 // singleflight followers
	rejected    atomic.Uint64 // admission-control drops
}

// shardMetrics are one shard's counters, written only by its worker and
// the (lock-free) admission path.
type shardMetrics struct {
	enqueued  atomic.Uint64
	served    atomic.Uint64
	batches   atomic.Uint64
	rejected  atomic.Uint64
	batchDist [batchBuckets]atomic.Uint64
}

// Metrics is a point-in-time snapshot of the service, shaped for JSON
// (/metrics). ShardLoadImbalance is max/avg of per-shard served requests —
// the serving-side analogue of the paper's Table III load-imbalance metric,
// computed with the same stats.Imbalance.
type Metrics struct {
	UptimeSec          float64        `json:"uptime_sec"`
	K                  int            `json:"k"`
	Canonical          bool           `json:"canonical"`
	DistinctKmers      uint64         `json:"distinct_kmers"`
	Shards             int            `json:"shards"`
	Requests           uint64         `json:"requests"`
	QPS                float64        `json:"qps"`
	CacheHits          uint64         `json:"cache_hits"`
	CacheMisses        uint64         `json:"cache_misses"`
	CacheHitRate       float64        `json:"cache_hit_rate"`
	CacheLen           int            `json:"cache_len"`
	Coalesced          uint64         `json:"coalesced"`
	Rejected           uint64         `json:"rejected"`
	ShardLoadImbalance float64        `json:"shard_load_imbalance"`
	EntryImbalance     float64        `json:"entry_imbalance"`
	BatchBuckets       []string       `json:"batch_buckets"`
	PerShard           []ShardMetrics `json:"per_shard"`
}

// ShardMetrics is one shard's slice of the snapshot.
type ShardMetrics struct {
	Shard         int      `json:"shard"`
	Entries       int      `json:"entries"`
	Served        uint64   `json:"served"`
	Batches       uint64   `json:"batches"`
	MeanBatchSize float64  `json:"mean_batch_size"`
	Rejected      uint64   `json:"rejected"`
	QueueDepth    int      `json:"queue_depth"`
	QueueCap      int      `json:"queue_cap"`
	BatchSizeDist []uint64 `json:"batch_size_dist"`
}

// Metrics snapshots the service counters. Counters are read individually
// with atomic loads; the snapshot is consistent enough for monitoring, not
// a linearizable cut.
func (s *Service) Metrics() Metrics {
	up := time.Since(s.met.start).Seconds()
	m := Metrics{
		UptimeSec:     up,
		K:             s.k,
		Canonical:     s.canonical,
		DistinctKmers: s.distinct,
		Shards:        len(s.shards),
		Requests:      s.met.requests.Load(),
		CacheHits:     s.met.cacheHits.Load(),
		CacheMisses:   s.met.cacheMisses.Load(),
		Coalesced:     s.met.coalesced.Load(),
		Rejected:      s.met.rejected.Load(),
		BatchBuckets:  BatchBucketLabels[:],
	}
	if up > 0 {
		m.QPS = float64(m.Requests) / up
	}
	if probes := m.CacheHits + m.CacheMisses; probes > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(probes)
	}
	if s.cache != nil {
		m.CacheLen = s.cache.len()
	}
	served := make([]uint64, len(s.shards))
	entries := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		served[i] = sh.met.served.Load()
		entries[i] = uint64(len(sh.entries))
		sm := ShardMetrics{
			Shard:         i,
			Entries:       len(sh.entries),
			Served:        served[i],
			Batches:       sh.met.batches.Load(),
			Rejected:      sh.met.rejected.Load(),
			QueueDepth:    len(sh.queue),
			QueueCap:      cap(sh.queue),
			BatchSizeDist: make([]uint64, batchBuckets),
		}
		for b := range sm.BatchSizeDist {
			sm.BatchSizeDist[b] = sh.met.batchDist[b].Load()
		}
		if sm.Batches > 0 {
			sm.MeanBatchSize = float64(sm.Served) / float64(sm.Batches)
		}
		m.PerShard = append(m.PerShard, sm)
	}
	m.ShardLoadImbalance = stats.Imbalance(served)
	m.EntryImbalance = stats.Imbalance(entries)
	return m
}
