package kserve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dedukt/internal/dna"
)

// TestConcurrentLookupsDuringShutdown fires point and batch lookups from
// many goroutines while Close races them (run under -race). The invariant:
// every lookup either returns the exact database count or fails with
// ErrClosed/ErrOverloaded — never a wrong count, panic, or deadlock.
func TestConcurrentLookupsDuringShutdown(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 2_000, 11, 0)
	svc, err := New(db, Options{Shards: 4, MaxBatch: 16, MaxWait: 50 * time.Microsecond, QueueDepth: 256, CacheSize: 512})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wrong, served, refused atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := db.Entries[i%len(db.Entries)]
				i += 7
				if g%2 == 0 {
					got, err := svc.LookupKey(ctx, e.Key)
					switch {
					case err == nil:
						served.Add(1)
						if got != e.Count {
							wrong.Add(1)
						}
					case errors.Is(err, ErrClosed), errors.Is(err, ErrOverloaded):
						refused.Add(1)
					default:
						t.Errorf("unexpected error: %v", err)
						return
					}
				} else {
					keys := []uint64{e.Key, db.Entries[(i+1)%len(db.Entries)].Key}
					got, err := svc.LookupKeys(ctx, keys)
					switch {
					case err == nil:
						served.Add(1)
						if got[0] != db.Get(keys[0]) || got[1] != db.Get(keys[1]) {
							wrong.Add(1)
						}
					case errors.Is(err, ErrClosed), errors.Is(err, ErrOverloaded):
						refused.Add(1)
					default:
						t.Errorf("unexpected batch error: %v", err)
						return
					}
				}
			}
		}(g)
	}

	time.Sleep(5 * time.Millisecond)
	// Two concurrent Closes race the lookups and each other.
	var cwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cwg.Add(1)
		go func() { defer cwg.Done(); svc.Close() }()
	}
	cwg.Wait()
	close(stop)
	wg.Wait()

	if wrong.Load() != 0 {
		t.Fatalf("%d lookups returned wrong counts", wrong.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no lookup succeeded before shutdown")
	}
	// After a drained Close every new lookup is refused.
	if _, err := svc.LookupKey(ctx, db.Entries[0].Key); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close lookup: %v", err)
	}
	t.Logf("served=%d refused=%d", served.Load(), refused.Load())
}

// TestBackpressure429 pins the admission-control path deterministically:
// with the single shard's worker held mid-batch and its depth-1 queue
// occupied, the next request must be rejected with ErrOverloaded — and
// HTTP must translate that to 429 — instead of blocking or growing state.
func TestBackpressure429(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1_000, 12, 0)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	svc, err := New(db, Options{
		Shards: 1, MaxBatch: 1, MaxWait: -1, QueueDepth: 1, CacheSize: -1,
		testHookBeforeServe: func(_, _ int) {
			once.Do(func() {
				entered <- struct{}{}
				<-release
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx := context.Background()
	k0, k1, k2, k3 := db.Entries[0], db.Entries[1], db.Entries[2], db.Entries[3]

	c0, err := svc.getAsync(context.Background(), k0.Key)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // worker now blocked serving [k0]; queue empty

	c1, err := svc.getAsync(context.Background(), k1.Key)
	if err != nil {
		t.Fatal(err) // occupies the single queue slot
	}
	if _, err := svc.getAsync(context.Background(), k2.Key); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated enqueue: %v, want ErrOverloaded", err)
	}

	// The HTTP layer reports the same condition as 429 with Retry-After.
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	seq := dna.Kmer(k3.Key).String(&dna.Random, k)
	resp, err := http.Get(ts.URL + "/kmer/" + seq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated GET = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Release the worker: the held and queued requests complete exactly.
	close(release)
	if v, err := c0.wait(ctx); err != nil || v != k0.Count {
		t.Fatalf("held request: %d, %v; want %d", v, err, k0.Count)
	}
	if v, err := c1.wait(ctx); err != nil || v != k1.Count {
		t.Fatalf("queued request: %d, %v; want %d", v, err, k1.Count)
	}
	m := svc.Metrics()
	if m.Rejected < 2 {
		t.Fatalf("rejected = %d, want ≥2", m.Rejected)
	}
}

// TestQueuedLookupsAnswereredOnClose verifies graceful drain: requests
// sitting in a shard queue when Close begins still complete with correct
// counts rather than being dropped.
func TestQueuedLookupsAnsweredOnClose(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1_000, 13, 0)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	svc, err := New(db, Options{
		Shards: 1, MaxBatch: 4, MaxWait: -1, QueueDepth: 64, CacheSize: -1,
		testHookBeforeServe: func(_, _ int) {
			once.Do(func() {
				entered <- struct{}{}
				<-release
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	c0, err := svc.getAsync(context.Background(), db.Entries[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	var queued []*call
	for _, e := range db.Entries[1:20] {
		c, err := svc.getAsync(context.Background(), e.Key)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, c)
	}

	done := make(chan struct{})
	go func() { svc.Close(); close(done) }()
	close(release)
	<-done

	ctx := context.Background()
	if v, err := c0.wait(ctx); err != nil || v != db.Entries[0].Count {
		t.Fatalf("first request: %d, %v", v, err)
	}
	for i, c := range queued {
		v, err := c.wait(ctx)
		if err != nil {
			t.Fatalf("queued %d: %v", i, err)
		}
		if want := db.Entries[i+1].Count; v != want {
			t.Fatalf("queued %d = %d, want %d", i, v, want)
		}
	}
}
