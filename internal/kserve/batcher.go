package kserve

import (
	"context"
	"sync/atomic"
	"time"

	"dedukt/internal/obs"
)

// call is one in-flight key resolution — a future completed exactly once
// by the owning shard worker (or immediately, for cache hits and admission
// failures). Point lookups carry their own done channel and may be shared
// by multiple waiters via singleflight; batch lookups instead embed their
// calls in a pooled slab (batchSlab) whose members report completion to a
// shared callGroup, so a 256-key batch costs one channel, not 256.
type call struct {
	key  uint64
	val  uint32
	err  error
	done chan struct{} // per-call completion; nil for group members
	grp  *callGroup    // batch-slab membership; nil for point calls

	// enq stamps admission time so the shard worker can attribute queue
	// wait (kserve_stage_seconds{stage="queue_wait"} and, when sc is a
	// sampled trace context, a queue_wait span). Both fields are plain
	// values on the already-allocated call — tracing adds no allocations
	// to the lookup hot path.
	enq time.Time
	sc  obs.SpanContext
}

func newCall(key uint64) *call {
	return &call{key: key, done: make(chan struct{})}
}

// completedCall wraps an already-known value (cache hit) in the same shape.
func completedCall(v uint32) *call {
	c := &call{val: v, done: make(chan struct{})}
	close(c.done)
	return c
}

// callGroup is the shared completion of one batch slab: the last member to
// complete closes done, releasing the single batch waiter.
type callGroup struct {
	remaining atomic.Int32
	done      chan struct{}
}

func (g *callGroup) finish() {
	if g.remaining.Add(-1) == 0 {
		close(g.done)
	}
}

// complete publishes the result and releases the waiter(s). Must be called
// exactly once per non-completed call.
func (c *call) complete(v uint32, err error) {
	c.val = v
	c.err = err
	if c.grp != nil {
		c.grp.finish()
		return
	}
	close(c.done)
}

// wait blocks until the call completes or ctx is canceled. A canceled wait
// abandons the call without canceling it — the shard still completes it
// for any remaining singleflight waiters.
func (c *call) wait(ctx context.Context) (uint32, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// collectBatch assembles one micro-batch: it blocks for the first request,
// then keeps the batch open until it reaches maxBatch keys or maxWait has
// elapsed — the serving-side analogue of the pipeline's bulk-synchronous
// rounds, trading a bounded latency for fewer, larger probe passes. A
// closed queue ends collection early; collectBatch returns (batch, false)
// once the queue is closed and drained.
func collectBatch(queue <-chan *call, batch []*call, maxBatch int, maxWait time.Duration) ([]*call, bool) {
	first, ok := <-queue
	if !ok {
		return batch, false
	}
	batch = append(batch, first)

	if maxWait <= 0 {
		// Opportunistic drain: take whatever is already queued, never wait.
		for len(batch) < maxBatch {
			select {
			case c, ok := <-queue:
				if !ok {
					return batch, false
				}
				batch = append(batch, c)
			default:
				return batch, true
			}
		}
		return batch, true
	}

	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	for len(batch) < maxBatch {
		select {
		case c, ok := <-queue:
			if !ok {
				return batch, false
			}
			batch = append(batch, c)
		case <-timer.C:
			return batch, true
		}
	}
	return batch, true
}
