package kserve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"dedukt/internal/dna"
	"dedukt/internal/kcount"
	"dedukt/internal/kernels"
	"dedukt/internal/obs"
)

// sampleDB builds a deterministic database of n-ish distinct k-mers.
func sampleDB(t testing.TB, k, n int, seed int64, flags uint32) *kcount.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tab := kcount.NewTable(n, kcount.Linear)
	mask := uint64(dna.KmerMask(k))
	for i := 0; i < n*3; i++ {
		key := rng.Uint64() % (mask + 1)
		if flags&kcount.FlagCanonical != 0 {
			key = uint64(dna.Kmer(key).Canonical(&dna.Random, k))
		}
		tab.Inc(key)
	}
	return kcount.FromTable(tab, k, flags)
}

func newService(t testing.TB, db *kcount.Database, opts Options) *Service {
	t.Helper()
	svc, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func TestServiceLookupMatchesDatabase(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 2_000, 1, 0)
	// MaxWait -1: sequential lookups would otherwise each pay the full
	// micro-batch window (~ms of timer granularity × 2000 keys).
	svc := newService(t, db, Options{Shards: 4, MaxWait: -1})
	ctx := context.Background()

	for _, e := range db.Entries {
		got, err := svc.LookupKey(ctx, e.Key)
		if err != nil {
			t.Fatal(err)
		}
		if want := db.Get(e.Key); got != want {
			t.Fatalf("LookupKey(%#x) = %d, want %d", e.Key, got, want)
		}
	}
	// ASCII path agrees with the packed path.
	for _, e := range db.Entries[:50] {
		seq := dna.Kmer(e.Key).String(&dna.Random, k)
		got, err := svc.Lookup(ctx, seq)
		if err != nil {
			t.Fatal(err)
		}
		if got != e.Count {
			t.Fatalf("Lookup(%q) = %d, want %d", seq, got, e.Count)
		}
	}
	// Absent keys are 0, nil.
	absent := 0
	for key := uint64(0); absent < 20; key++ {
		if db.Get(key) != 0 {
			continue
		}
		absent++
		if got, err := svc.LookupKey(ctx, key); err != nil || got != 0 {
			t.Fatalf("absent LookupKey(%#x) = %d, %v", key, got, err)
		}
	}
	// Malformed queries error.
	for _, bad := range []string{"", "ACGT", strings.Repeat("A", k-1), strings.Repeat("A", k)[:k-1] + "N"} {
		if _, err := svc.Lookup(ctx, bad); err == nil {
			t.Errorf("Lookup(%q) accepted", bad)
		}
	}
}

func TestServiceCanonical(t *testing.T) {
	const k = 9
	db := sampleDB(t, k, 500, 2, kcount.FlagCanonical)
	svc := newService(t, db, Options{Shards: 3})
	ctx := context.Background()
	if !svc.Canonical() {
		t.Fatal("canonical flag lost")
	}
	e := &dna.Random
	for _, kv := range db.Entries[:50] {
		fwd := dna.Kmer(kv.Key).String(e, k)
		rc := dna.Kmer(kv.Key).ReverseComplement(e, k).String(e, k)
		a, err := svc.Lookup(ctx, fwd)
		if err != nil {
			t.Fatal(err)
		}
		b, err := svc.Lookup(ctx, rc)
		if err != nil {
			t.Fatal(err)
		}
		if a != kv.Count || b != kv.Count {
			t.Fatalf("strands disagree for %q: fwd %d, rc %d, want %d", fwd, a, b, kv.Count)
		}
	}
}

func TestServiceBatch(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1_000, 3, 0)
	svc := newService(t, db, Options{Shards: 4})
	ctx := context.Background()

	var seqs []string
	var want []uint32
	for _, e := range db.Entries[:200] {
		seqs = append(seqs, dna.Kmer(e.Key).String(&dna.Random, k))
		want = append(want, e.Count)
	}
	// Duplicates exercise coalescing; an absent k-mer rides along.
	seqs = append(seqs, seqs[0], seqs[1])
	want = append(want, want[0], want[1])
	got, err := svc.LookupBatch(ctx, seqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch[%d] (%s) = %d, want %d", i, seqs[i], got[i], want[i])
		}
	}
	// One bad k-mer fails the whole batch.
	if _, err := svc.LookupBatch(ctx, []string{seqs[0], "NOPE"}); err == nil {
		t.Fatal("malformed batch accepted")
	}
}

// TestServiceBatching pins the micro-batch coalescing path: with the
// worker held on its first batch, queued requests must be served as one
// batch of MaxBatch, not eight singletons.
func TestServiceBatching(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 2_000, 4, 0)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	first := true
	svc, err := New(db, Options{
		Shards: 1, MaxBatch: 8, MaxWait: -1, QueueDepth: 64, CacheSize: -1,
		testHookBeforeServe: func(_, _ int) {
			if first { // worker-only, no lock needed
				first = false
				entered <- struct{}{}
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	c0, err := svc.getAsync(context.Background(), db.Entries[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // worker is now blocked serving [key0]
	var calls []*call
	for _, e := range db.Entries[1:9] {
		c, err := svc.getAsync(context.Background(), e.Key)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, c)
	}
	close(release)
	ctx := context.Background()
	if _, err := c0.wait(ctx); err != nil {
		t.Fatal(err)
	}
	for i, c := range calls {
		v, err := c.wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if want := db.Entries[i+1].Count; v != want {
			t.Fatalf("batched call %d = %d, want %d", i, v, want)
		}
	}
	m := svc.Metrics()
	sh := m.PerShard[0]
	if sh.Batches != 2 || sh.Served != 9 {
		t.Fatalf("batches=%d served=%d, want 2 and 9", sh.Batches, sh.Served)
	}
	if sh.BatchSizeDist[batchBucket(8)] != 1 {
		t.Fatalf("missing batch-of-8 in distribution: %v", sh.BatchSizeDist)
	}
}

func TestCacheHitsAndSingleflight(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 500, 5, 0)
	svc := newService(t, db, Options{Shards: 2, CacheSize: 128})
	ctx := context.Background()
	key := db.Entries[0].Key
	for i := 0; i < 10; i++ {
		if _, err := svc.LookupKey(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	m := svc.Metrics()
	if m.CacheHits < 9 {
		t.Fatalf("cache hits = %d, want ≥9", m.CacheHits)
	}
	if m.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %v", m.CacheHitRate)
	}
	if m.Requests != 10 {
		t.Fatalf("requests = %d, want 10", m.Requests)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(2)
	c.add(1, 10)
	c.add(2, 20)
	if _, ok := c.get(1); !ok { // refresh 1: now 2 is LRU
		t.Fatal("key 1 missing")
	}
	c.add(3, 30)
	if _, ok := c.get(2); ok {
		t.Fatal("key 2 should have been evicted")
	}
	if v, ok := c.get(1); !ok || v != 10 {
		t.Fatalf("key 1 lost: %d %v", v, ok)
	}
	if v, ok := c.get(3); !ok || v != 30 {
		t.Fatalf("key 3 lost: %d %v", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	c.add(3, 33) // update in place
	if v, _ := c.get(3); v != 33 {
		t.Fatalf("update lost: %d", v)
	}
}

func TestBatchBucket(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 64: 6, 65: 7, 128: 7, 129: 8, 100000: 8}
	for n, want := range cases {
		if got := batchBucket(n); got != want {
			t.Errorf("batchBucket(%d) = %d, want %d", n, got, want)
		}
	}
	if len(BatchBucketLabels) != batchBuckets {
		t.Fatal("label/bucket mismatch")
	}
}

func TestServiceClose(t *testing.T) {
	db := sampleDB(t, 17, 200, 6, 0)
	svc, err := New(db, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // idempotent
	if !svc.Draining() {
		t.Fatal("Draining() false after Close")
	}
	if _, err := svc.LookupKey(context.Background(), db.Entries[0].Key); err != ErrClosed {
		t.Fatalf("lookup after close: %v, want ErrClosed", err)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1_000, 7, 0)
	svc := newService(t, db, Options{Shards: 4, TopN: 16})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	get := func(t *testing.T, path string, wantCode int, into any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantCode)
		}
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("kmer", func(t *testing.T) {
		e := db.Entries[0]
		seq := dna.Kmer(e.Key).String(&dna.Random, k)
		var res KmerResult
		get(t, "/kmer/"+seq, http.StatusOK, &res)
		if res.Count != e.Count || !res.Present || res.Kmer != seq {
			t.Fatalf("point lookup: %+v, want count %d", res, e.Count)
		}
		get(t, "/kmer/AC", http.StatusBadRequest, nil)
		get(t, "/kmer/"+strings.Repeat("N", k), http.StatusBadRequest, nil)
	})

	t.Run("batch", func(t *testing.T) {
		var seqs []string
		for _, e := range db.Entries[:25] {
			seqs = append(seqs, dna.Kmer(e.Key).String(&dna.Random, k))
		}
		body, _ := json.Marshal(batchRequest{Kmers: seqs})
		resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /batch = %d", resp.StatusCode)
		}
		var br batchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		if len(br.Results) != len(seqs) {
			t.Fatalf("batch results %d, want %d", len(br.Results), len(seqs))
		}
		for i, r := range br.Results {
			if want := db.Entries[i].Count; r.Count != want {
				t.Fatalf("batch[%d] = %d, want %d", i, r.Count, want)
			}
		}
		// Malformed body and malformed k-mer are both 400.
		for _, bad := range []string{"{", `{"kmers":["XYZ"]}`} {
			resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(bad))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("bad batch %q = %d, want 400", bad, resp.StatusCode)
			}
		}
	})

	t.Run("histogram", func(t *testing.T) {
		var hr histogramResponse
		get(t, "/histogram", http.StatusOK, &hr)
		want := db.Histogram()
		if hr.Distinct != want.Distinct() || hr.Total != want.Total() || hr.K != k {
			t.Fatalf("histogram mismatch: %+v", hr)
		}
		for f, c := range want.Counts {
			if hr.Classes[f] != c {
				t.Fatalf("class %d = %d, want %d", f, hr.Classes[f], c)
			}
		}
	})

	t.Run("topn", func(t *testing.T) {
		var tr topNResponse
		get(t, "/topn?n=5", http.StatusOK, &tr)
		want := db.Table().TopK(5)
		if tr.N != 5 || len(tr.Kmers) != 5 {
			t.Fatalf("topn shape: %+v", tr)
		}
		for i, kv := range want {
			if tr.Kmers[i].Count != kv.Count {
				t.Fatalf("top[%d] = %d, want %d", i, tr.Kmers[i].Count, kv.Count)
			}
			// Counts must agree with a point lookup of the same k-mer.
			var res KmerResult
			get(t, "/kmer/"+tr.Kmers[i].Kmer, http.StatusOK, &res)
			if res.Count != kv.Count {
				t.Fatalf("top[%d] point lookup = %d, want %d", i, res.Count, kv.Count)
			}
		}
		get(t, "/topn?n=bogus", http.StatusBadRequest, nil)
	})

	t.Run("healthz", func(t *testing.T) {
		var h healthResponse
		get(t, "/healthz", http.StatusOK, &h)
		if h.Status != "ok" || h.K != k || h.Shards != 4 {
			t.Fatalf("healthz: %+v", h)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		var m Metrics
		get(t, "/metrics?format=json", http.StatusOK, &m)
		if m.Shards != 4 || len(m.PerShard) != 4 {
			t.Fatalf("metrics shards: %+v", m)
		}
		if m.Requests == 0 || m.ShardLoadImbalance < 1 {
			t.Fatalf("metrics counters: requests=%d imbalance=%v", m.Requests, m.ShardLoadImbalance)
		}
		entries := 0
		for _, sm := range m.PerShard {
			entries += sm.Entries
		}
		if uint64(entries) != m.DistinctKmers {
			t.Fatalf("shard entries %d, want %d", entries, m.DistinctKmers)
		}
	})

	t.Run("metrics prometheus", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		body := buf.String()
		for _, want := range []string{
			"# TYPE kserve_requests_total counter",
			"# TYPE kserve_shards gauge",
			"# TYPE kserve_batch_size histogram",
			`kserve_shard_served_total{shard="0"}`,
			`kserve_batch_size_bucket{shard="0",le="+Inf"}`,
			"kserve_shard_load_imbalance",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("prometheus exposition missing %q:\n%s", want, body)
			}
		}
		// Every non-comment line is "name{labels} value" with a parseable
		// float value — the shape Prometheus scrapers require.
		for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("malformed exposition line %q", line)
			}
			if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
				t.Fatalf("bad value in line %q: %v", line, err)
			}
		}
	})

	t.Run("draining", func(t *testing.T) {
		svc.Close()
		get(t, "/healthz", http.StatusServiceUnavailable, nil)
		seq := dna.Kmer(db.Entries[0].Key).String(&dna.Random, k)
		get(t, "/kmer/"+seq, http.StatusServiceUnavailable, nil)
	})
}

func TestLookupContextCanceled(t *testing.T) {
	db := sampleDB(t, 17, 200, 8, 0)
	svc := newService(t, db, Options{Shards: 1, CacheSize: -1, MaxWait: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.LookupKey(ctx, db.Entries[0].Key); err != context.Canceled {
		// A raced completion is acceptable; an error other than
		// context.Canceled or nil is not.
		if err != nil {
			t.Fatalf("canceled lookup: %v", err)
		}
	}
}

func TestLoadDatabases(t *testing.T) {
	dir := t.TempDir()
	a := sampleDB(t, 17, 300, 9, 0)
	b := sampleDB(t, 17, 300, 10, 0)
	write := func(name string, d *kcount.Database) string {
		path := dir + "/" + name
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if err := writeFile(path, buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		return path
	}
	pa, pb := write("a.kcd", a), write("b.kcd", b)

	merged, err := LoadDatabases([]string{pa, pb})
	if err != nil {
		t.Fatal(err)
	}
	want, err := kcount.Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != want.Len() {
		t.Fatalf("merged %d entries, want %d", merged.Len(), want.Len())
	}
	for _, e := range want.Entries {
		if merged.Get(e.Key) != e.Count {
			t.Fatalf("merged count for %#x = %d, want %d", e.Key, merged.Get(e.Key), e.Count)
		}
	}
	if _, err := LoadDatabases(nil); err == nil {
		t.Fatal("empty path list accepted")
	}
	if _, err := LoadDatabases([]string{dir + "/missing.kcd"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestBeginDrainHandoff pins the drain/handoff contract the cluster router
// relies on: after BeginDrain, /healthz answers 503 with Retry-After (so a
// router can tell an orderly drain from a crash) while lookups keep being
// served until Close.
func TestBeginDrainHandoff(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 500, 21, 0)
	svc := newService(t, db, Options{Shards: 2, MaxWait: -1, ReplicaID: "r0"})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.ReplicaID != "r0" || h.ShardCount != 1 || h.Status != "ok" {
		t.Fatalf("healthz before drain: %+v", h)
	}

	svc.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining healthz missing Retry-After")
	}
	// The handoff window: lookups still succeed after BeginDrain.
	seq := dna.Kmer(db.Entries[0].Key).String(&dna.Random, k)
	resp, err = http.Get(ts.URL + "/kmer/" + seq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup during drain window: %d, want 200", resp.StatusCode)
	}

	svc.Close()
	resp, err = http.Get(ts.URL + "/kmer/" + seq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("lookup after close: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("closed lookup missing Retry-After")
	}
}

// TestFilterShard pins the cluster sharding helper: shards are disjoint,
// cover the database, and agree with kernels.DestOf.
func TestFilterShard(t *testing.T) {
	db := sampleDB(t, 17, 2_000, 22, 0)
	const n = 3
	total := 0
	for idx := 0; idx < n; idx++ {
		part, err := FilterShard(db, idx, n)
		if err != nil {
			t.Fatal(err)
		}
		if part.K != db.K || part.Flags != db.Flags {
			t.Fatalf("shard %d lost metadata: %+v", idx, part)
		}
		for _, e := range part.Entries {
			if kernels.DestOf(e.Key, n) != idx {
				t.Fatalf("shard %d holds foreign key %#x", idx, e.Key)
			}
			if got := db.Get(e.Key); got != e.Count {
				t.Fatalf("shard %d key %#x count %d, want %d", idx, e.Key, e.Count, got)
			}
		}
		total += part.Len()
	}
	if total != db.Len() {
		t.Fatalf("shards cover %d entries, want %d", total, db.Len())
	}
	if same, err := FilterShard(db, 0, 1); err != nil || same != db {
		t.Fatalf("FilterShard(db, 0, 1) = (%p, %v), want identity", same, err)
	}
	if _, err := FilterShard(db, 2, 2); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestBatchAllocRegression pins the pooled batch path: resolving a 256-key
// batch through LookupKeysInto must stay within a handful of allocations
// (one completion channel plus slack for pool misses) — the regression
// guard for BenchmarkKserveBatch, which sat at 526 allocs/op before the
// batch slab landed.
func TestBatchAllocRegression(t *testing.T) {
	db := sampleDB(t, 17, 50_000, 23, 0)
	svc := newService(t, db, Options{Shards: 4, CacheSize: -1, MaxWait: -1, QueueDepth: 4096})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = db.Entries[rng.Intn(len(db.Entries))].Key
	}
	out := make([]uint32, len(keys))
	for i := 0; i < 32; i++ { // warm the slab pool and worker batch slices
		if err := svc.LookupKeysInto(ctx, keys, out); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := svc.LookupKeysInto(ctx, keys, out); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 16 {
		t.Fatalf("LookupKeysInto allocates %.1f/op for 256 keys, want ≤16", avg)
	}
	for i, key := range keys {
		if want := db.Get(key); out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

// TestLookupAllocRegression pins the point-lookup hot path with tracing
// plumbed in but sampling off: LookupKey through singleflight and the
// shard micro-batch queue must stay at its pre-tracing budget of 2
// allocations (the call struct and its completion channel) — the
// regression guard for BenchmarkKserveLookup, so span plumbing can never
// silently tax untraced traffic.
func TestLookupAllocRegression(t *testing.T) {
	db := sampleDB(t, 17, 50_000, 29, 0)
	tracer := obs.NewTracer("kserve-test", 0, 0) // wired but never sampling
	svc := newService(t, db, Options{Shards: 4, CacheSize: -1, MaxWait: -1, QueueDepth: 4096, Tracer: tracer})
	ctx := context.Background()
	key := db.Entries[1234].Key
	for i := 0; i < 32; i++ { // warm the shard worker's batch slice
		if _, err := svc.LookupKey(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := svc.LookupKey(ctx, key); err != nil {
			t.Fatal(err)
		}
	})
	// 2 is the structural floor; allow fractional scheduler noise but fail
	// before a third steady allocation creeps in.
	if avg > 2.5 {
		t.Fatalf("LookupKey allocates %.2f/op with sampling off, want ≤2", avg)
	}
	if tracer.Len() != 0 {
		t.Fatalf("never-sampling tracer recorded %d spans", tracer.Len())
	}
}

// TestHandlerTracing drives a sampled request through the HTTP surface and
// asserts the replica records the full span chain — server span continued
// from the incoming traceparent, queue_wait on admission, serve_batch on
// the owning shard — all under the caller's trace ID, and that
// /debug/trace exposes the same dump.
func TestHandlerTracing(t *testing.T) {
	db := sampleDB(t, 17, 5_000, 31, 0)
	tracer := obs.NewTracer("replica-test", 1, 0)
	svc := newService(t, db, Options{Shards: 2, CacheSize: -1, MaxWait: -1, Tracer: tracer})
	h := NewHandler(svc)

	client := obs.NewTracer("client", 1, 0)
	root := client.StartRoot("request", "load")
	seq := dna.Kmer(db.Entries[7].Key).String(&dna.Random, 17)
	req := httptest.NewRequest("GET", "/kmer/"+seq, nil)
	req.Header.Set(obs.TraceparentHeader, root.Context().Traceparent())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	root.End()
	if rec.Code != http.StatusOK {
		t.Fatalf("traced lookup: status %d: %s", rec.Code, rec.Body)
	}

	spans := tracer.Snapshot()
	names := make(map[string]string, len(spans)) // name → trace ID
	for _, sp := range spans {
		names[sp.Name] = sp.Trace
	}
	wantTrace := client.Snapshot()[0].Trace
	for _, name := range []string{"kserve_lookup", "queue_wait", "serve_batch"} {
		if names[name] == "" {
			t.Fatalf("missing %q span; got %v", name, names)
		}
		if names[name] != wantTrace {
			t.Fatalf("%q span on trace %s, want caller trace %s", name, names[name], wantTrace)
		}
	}

	// An unsampled traceparent must be respected: no new spans recorded.
	before := tracer.Len()
	req2 := httptest.NewRequest("GET", "/kmer/"+seq, nil)
	sc := root.Context()
	sc.Sampled = false
	req2.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("unsampled lookup: status %d", rec2.Code)
	}
	if tracer.Len() != before {
		t.Fatalf("unsampled request grew the span buffer: %d → %d", before, tracer.Len())
	}

	// /debug/trace serves the same dump, named for the process.
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec3.Code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", rec3.Code)
	}
	dump, err := obs.ReadTraceDump(rec3.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Process != "replica-test" || len(dump.Spans) != len(spans) {
		t.Fatalf("/debug/trace dump = %q/%d spans, want replica-test/%d", dump.Process, len(dump.Spans), len(spans))
	}
}
