package kserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"dedukt/internal/dna"
	"dedukt/internal/kcount"
	"dedukt/internal/kernels"
	"dedukt/internal/obs"
)

// maxBatchBody bounds a /batch request body; maxBatchKmers bounds how many
// k-mers one batch may carry. Both protect the admission path from a single
// oversized request.
const (
	maxBatchBody  = 4 << 20
	maxBatchKmers = 8192
)

// KmerResult is one point-lookup answer.
type KmerResult struct {
	Kmer    string `json:"kmer"`
	Count   uint32 `json:"count"`
	Present bool   `json:"present"`
}

// batchRequest is the POST /batch body.
type batchRequest struct {
	Kmers []string `json:"kmers"`
}

// batchResponse is the POST /batch answer, results index-aligned with the
// request.
type batchResponse struct {
	Results []KmerResult `json:"results"`
}

// histogramResponse is the GET /histogram answer.
type histogramResponse struct {
	K          int               `json:"k"`
	Canonical  bool              `json:"canonical"`
	Distinct   uint64            `json:"distinct"`
	Total      uint64            `json:"total"`
	Singletons uint64            `json:"singletons"`
	Classes    map[uint32]uint64 `json:"classes"`
}

// topNResponse is the GET /topn answer.
type topNResponse struct {
	N     int          `json:"n"`
	Kmers []KmerResult `json:"kmers"`
}

// healthResponse is the GET /healthz answer. ReplicaID, ShardIndex and
// ShardCount identify this process within a replicated cluster (see
// internal/kcluster): the kproxy registry probes /healthz and uses them to
// build its routing rings, and Canonical/K let the router pack queries the
// same way the replica does.
type healthResponse struct {
	Status     string `json:"status"`
	ReplicaID  string `json:"replica_id,omitempty"`
	K          int    `json:"k"`
	Canonical  bool   `json:"canonical"`
	Distinct   uint64 `json:"distinct"`
	Shards     int    `json:"shards"`
	ShardIndex int    `json:"shard_index"`
	ShardCount int    `json:"shard_count"`
}

// NewHandler builds the HTTP surface over svc:
//
//	GET  /kmer/{seq}  point lookup (ASCII k-mer)
//	POST /batch       bulk lookup {"kmers": ["ACGT…", …]}
//	GET  /histogram   frequency spectrum
//	GET  /topn?n=10   most frequent k-mers (precomputed horizon)
//	GET  /healthz     liveness (503 while draining)
//	GET  /metrics     Prometheus text exposition (?format=json for the
//	                  legacy Metrics snapshot)
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /kmer/{seq}", func(w http.ResponseWriter, r *http.Request) {
		ctx, span := startServerSpan(svc, r, "kserve_lookup")
		defer span.End()
		if d := svc.opts.Slow; d > 0 {
			time.Sleep(d)
		}
		seq := r.PathValue("seq")
		count, err := svc.Lookup(ctx, seq)
		if err != nil {
			span.SetAttr("error", err.Error())
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, KmerResult{Kmer: seq, Count: count, Present: count > 0})
	})
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		ctx, span := startServerSpan(svc, r, "kserve_batch")
		defer span.End()
		if d := svc.opts.Slow; d > 0 {
			time.Sleep(d)
		}
		var req batchRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
		if err := dec.Decode(&req); err != nil {
			writeErr(w, fmt.Errorf("%w: %v", errBadRequest, err))
			return
		}
		if len(req.Kmers) > maxBatchKmers {
			writeErr(w, fmt.Errorf("%w: batch of %d exceeds %d", errBadRequest, len(req.Kmers), maxBatchKmers))
			return
		}
		bb := batchBufPool.Get().(*batchBuffers)
		defer func() { batchBufPool.Put(bb) }()
		keys := bb.keys[:0]
		for i, q := range req.Kmers {
			key, err := svc.ParseQuery(q)
			if err != nil {
				writeErr(w, fmt.Errorf("%w: kmer %d: %v", errBadRequest, i, err))
				bb.keys = keys
				return
			}
			keys = append(keys, key)
		}
		if cap(bb.counts) < len(keys) {
			bb.counts = make([]uint32, len(keys))
		}
		counts := bb.counts[:len(keys)]
		span.SetAttr("batch_size", strconv.Itoa(len(keys)))
		if err := svc.LookupKeysInto(ctx, keys, counts); err != nil {
			span.SetAttr("error", err.Error())
			writeErr(w, err)
			bb.keys = keys
			return
		}
		results := bb.results[:0]
		for i, c := range counts {
			results = append(results, KmerResult{Kmer: req.Kmers[i], Count: c, Present: c > 0})
		}
		writeJSON(w, http.StatusOK, batchResponse{Results: results})
		bb.keys, bb.results = keys, results
	})
	mux.HandleFunc("GET /histogram", func(w http.ResponseWriter, r *http.Request) {
		h := svc.Histogram()
		writeJSON(w, http.StatusOK, histogramResponse{
			K: svc.K(), Canonical: svc.Canonical(),
			Distinct: h.Distinct(), Total: h.Total(), Singletons: h.Singletons(),
			Classes: h.Counts,
		})
	})
	mux.HandleFunc("GET /topn", func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				writeErr(w, fmt.Errorf("%w: bad n %q", errBadRequest, q))
				return
			}
			n = v
		}
		top := svc.Top(n)
		resp := topNResponse{N: len(top), Kmers: make([]KmerResult, len(top))}
		for i, kv := range top {
			resp.Kmers[i] = KmerResult{
				Kmer:    dna.Kmer(kv.Key).String(svc.opts.Enc, svc.K()),
				Count:   kv.Count,
				Present: true,
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		status, code := "ok", http.StatusOK
		if svc.Draining() {
			status, code = "draining", http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, healthResponse{
			Status: status, ReplicaID: svc.opts.ReplicaID,
			K: svc.K(), Canonical: svc.Canonical(),
			Distinct: svc.Distinct(), Shards: len(svc.shards),
			ShardIndex: svc.opts.ShardIndex, ShardCount: svc.opts.ShardCount,
		})
	})
	if t := svc.opts.Tracer; t != nil {
		mux.Handle("GET /debug/trace", t.DebugHandler())
	}
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" ||
			r.Header.Get("Accept") == "application/json" {
			writeJSON(w, http.StatusOK, svc.Metrics())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = svc.Registry().WritePrometheus(w)
	})
	return mux
}

// startServerSpan continues (or roots) a trace for one HTTP request: the
// incoming traceparent header decides trace identity and sampling, and the
// returned context carries the span so the shard workers can attribute
// queue wait and batch membership to it. With no tracer configured — or an
// unsampled request — the handle is a free no-op and the request context
// is returned unwrapped, keeping the untraced hot path allocation-clean.
func startServerSpan(svc *Service, r *http.Request, name string) (context.Context, obs.ReqSpanHandle) {
	ctx := r.Context()
	t := svc.opts.Tracer
	if t == nil {
		return ctx, obs.ReqSpanHandle{}
	}
	span := t.StartServer(r.Header, name, "http")
	if span.Sampled() {
		ctx = obs.ContextWithSpan(ctx, span.Context())
	}
	return ctx, span
}

// errBadRequest tags client errors the generic mapper should turn into 400.
var errBadRequest = errors.New("bad request")

// writeErr maps service errors onto HTTP statuses: overload → 429 (with
// Retry-After), draining/closed → 503 (with Retry-After, so a router can
// tell an orderly drain from a crashed peer and back off instead of
// blacklisting), malformed queries → 400.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// batchBuffers are the pooled per-request scratch slices of the /batch
// handler — parsed keys, resolved counts, rendered results — so steady
// batch traffic reuses them instead of reallocating three slices per hit.
type batchBuffers struct {
	keys    []uint64
	counts  []uint32
	results []KmerResult
}

var batchBufPool = sync.Pool{New: func() any { return new(batchBuffers) }}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ServeUntilInterrupt listens on addr (host:port; port 0 picks a free one),
// serves the service's HTTP API, and blocks until SIGINT/SIGTERM, then
// drains in two steps: BeginDrain flips /healthz to 503 "draining" and —
// after Options.DrainGrace, the handoff window in which a cluster router
// (cmd/kproxy) observes the drain and moves traffic to the shard's other
// replicas — in-flight HTTP requests get shutdownGrace to finish, queued
// lookups are answered, workers exit. logf receives progress lines
// (log.Printf-shaped); the bound address is always announced as
// "listening on <addr>" so callers and scripts can discover dynamic ports.
func ServeUntilInterrupt(addr string, svc *Service, logf func(format string, args ...any)) error {
	const shutdownGrace = 10 * time.Second
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logf("listening on %s", ln.Addr())
	srv := &http.Server{Handler: NewHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errc:
		svc.Close()
		return err
	case got := <-sig:
		svc.BeginDrain()
		if grace := svc.opts.DrainGrace; grace > 0 {
			logf("caught %s, draining (handoff window %s)", got, grace)
			select {
			case <-time.After(grace):
			case err := <-errc:
				svc.Close()
				return err
			}
		} else {
			logf("caught %s, draining", got)
		}
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		err := srv.Shutdown(ctx)
		svc.Close()
		logf("drained")
		return err
	}
}

// FilterShard returns the slice of db owned by cluster shard idx of n —
// the keys whose exchange owner hash kernels.DestOf(key, n) equals idx,
// exactly the keys rank idx of an n-rank pipeline would have counted. A
// replicated cluster starts n kserve processes per replica set, each with
// `-shard idx/n` over the same full database, and lets cmd/kproxy route
// keys by the same hash. n == 1 returns db unchanged.
func FilterShard(db *kcount.Database, idx, n int) (*kcount.Database, error) {
	if db == nil {
		return nil, fmt.Errorf("kserve: nil database")
	}
	if n <= 0 || idx < 0 || idx >= n {
		return nil, fmt.Errorf("kserve: shard %d/%d out of range", idx, n)
	}
	if n == 1 {
		return db, nil
	}
	out := &kcount.Database{K: db.K, Flags: db.Flags}
	for _, e := range db.Entries {
		if kernels.DestOf(e.Key, n) == idx {
			out.Entries = append(out.Entries, e)
		}
	}
	return out, nil
}

// LoadDatabases reads and unions one or more KCD files into a single
// database (they must agree on k and flags) — the multi-file load path of
// cmd/kserve, separated for testing.
func LoadDatabases(paths []string) (*kcount.Database, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("kserve: no databases given")
	}
	var merged *kcount.Database
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		d, err := kcount.ReadDatabase(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if merged == nil {
			merged = d
			continue
		}
		merged, err = kcount.Union(merged, d)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
	}
	return merged, nil
}
