package kserve

import (
	"container/list"
	"sync"
)

// lruCache is the bounded hot-k-mer cache: packed key → count, evicting
// least-recently-used. The spectrum is immutable while served, so entries
// never need invalidation — the bound exists purely to cap memory on
// heavy-tailed query mixes (the hot head of a read set hits a few thousand
// k-mers overwhelmingly often).
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[uint64]*list.Element
}

type lruEntry struct {
	key uint64
	val uint32
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[uint64]*list.Element, capacity),
	}
}

func (c *lruCache) get(key uint64) (uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return 0, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(key uint64, val uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key, val})
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup deduplicates concurrent lookups of the same key
// (singleflight): the first requester becomes the leader and enqueues to
// the shard; followers share the leader's call. The slot is cleared by the
// shard worker after the value is published to the cache, so late
// requesters hit the cache instead of re-flying.
type flightGroup struct {
	mu sync.Mutex
	m  map[uint64]*call
}

// join returns the in-flight call for key, creating one (leader=true) if
// none exists.
func (g *flightGroup) join(key uint64) (c *call, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := g.m[key]; c != nil {
		return c, false
	}
	c = newCall(key)
	g.m[key] = c
	return c, true
}

// forget clears key's slot (idempotent).
func (g *flightGroup) forget(key uint64) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}
