// Package kserve is the serving layer over counted k-mer spectra: it loads
// a KCD database (internal/kcount) and answers point, batch, histogram and
// top-N queries over HTTP. The batch counter's output is the product — KMC3
// ships a database + query toolkit beside its counter for the same reason —
// and the serving shape deliberately mirrors the counting pipeline:
//
//   - Entries are sharded with the exchange phase's owner-rank hash
//     (kernels.DestOf), so shard s serves exactly the keys rank s would
//     have counted, and the serving-side load imbalance is the same
//     Table III metric the paper reports for counting.
//   - Each shard runs one worker loop that coalesces requests into
//     micro-batches (max-batch-size / max-wait knobs) — the on-line
//     analogue of the pipeline's bulk-synchronous rounds.
//   - A bounded hot-k-mer LRU with singleflight dedup fronts the shards;
//     admission control sheds load (HTTP 429) when a shard queue is full
//     instead of growing goroutines without bound.
//
// Service is the embeddable core; server.go adds the HTTP surface used by
// cmd/kserve and dedukt -serve.
package kserve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dedukt/internal/dna"
	"dedukt/internal/kcount"
	"dedukt/internal/kernels"
	"dedukt/internal/obs"
)

// Exported failure modes; the HTTP layer maps them to 429 and 503.
var (
	// ErrOverloaded reports that the owning shard's queue was full — the
	// admission-control path. Retry after backoff.
	ErrOverloaded = errors.New("kserve: shard queue full")
	// ErrClosed reports a lookup issued after Close began draining.
	ErrClosed = errors.New("kserve: service closed")
)

// Options tunes the service. The zero value picks sensible defaults.
type Options struct {
	// Shards is the number of serving shards (default GOMAXPROCS, min 1).
	Shards int
	// MaxBatch caps a micro-batch (default 64 keys).
	MaxBatch int
	// MaxWait bounds how long a worker holds an open micro-batch waiting
	// for more requests (default 200µs; 0 means "serve whatever is
	// immediately queued", never an indefinite wait).
	MaxWait time.Duration
	// QueueDepth bounds each shard's pending-request queue; a full queue
	// rejects with ErrOverloaded (default 1024).
	QueueDepth int
	// CacheSize bounds the hot-k-mer LRU in entries (default 4096;
	// negative disables caching).
	CacheSize int
	// TopN is how many top k-mers to precompute for /topn (default 64).
	TopN int
	// Enc is the base encoding ASCII queries are packed under (default
	// dna.Random, the CLI's encoding).
	Enc *dna.Encoding
	// Registry, when non-nil, is the observability registry the service
	// registers its metrics into — share one with a pipeline recorder to
	// get counting and serving metrics in a single /metrics exposition.
	// nil creates a private registry (GET /metrics works either way).
	Registry *obs.Registry
	// ReplicaID names this process in a replicated cluster; it is reported
	// in /healthz so a router (cmd/kproxy) can tell replicas apart. Empty
	// is fine for standalone use.
	ReplicaID string
	// ShardIndex/ShardCount declare which cluster shard of the key space
	// this replica holds (keys with kernels.DestOf(key, ShardCount) ==
	// ShardIndex; see FilterShard). The default 0/1 means "the whole key
	// space". These are distinct from Shards, the in-process worker split.
	ShardIndex int
	ShardCount int
	// DrainGrace is how long ServeUntilInterrupt keeps serving after
	// BeginDrain before shutting down — the handoff window in which
	// /healthz already answers 503 "draining" so a router can move traffic
	// off this replica while in-flight and freshly routed requests still
	// succeed. 0 drains immediately (the standalone behavior).
	DrainGrace time.Duration
	// Slow, when positive, sleeps every /kmer and /batch request by that
	// duration before serving it — straggler fault injection for hedging
	// tests and cluster smoke scripts. Never set it in production.
	Slow time.Duration
	// Tracer, when non-nil, records request spans for sampled lookups:
	// the HTTP handlers continue traces from incoming traceparent headers
	// and the shard workers attribute queue wait and micro-batch serving
	// to them. nil (the default) disables tracing entirely; unsampled
	// requests cost nothing beyond a context check either way.
	Tracer *obs.Tracer

	// testHookBeforeServe, when set (tests only), runs in a shard worker
	// before each batch is served — used to hold a shard busy
	// deterministically. Set before New so workers never race the write.
	testHookBeforeServe func(shardID, batchLen int)
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards < 1 {
			o.Shards = 1
		}
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait < 0 {
		o.MaxWait = 0
	} else if o.MaxWait == 0 {
		o.MaxWait = 200 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.TopN <= 0 {
		o.TopN = 64
	}
	if o.Enc == nil {
		o.Enc = &dna.Random
	}
	if o.ShardCount <= 0 {
		o.ShardCount = 1
		o.ShardIndex = 0
	}
	return o
}

// Service shards a counted spectrum and serves lookups against it.
type Service struct {
	opts      Options
	k         int
	canonical bool
	shards    []*shard
	cache     *lruCache // nil when disabled
	flight    flightGroup
	met       serviceMetrics
	reg       *obs.Registry

	// Precomputed at load: whole-spectrum queries never touch the shards.
	hist     kcount.Histogram
	top      []kcount.KV
	distinct uint64
	total    uint64

	mu        sync.RWMutex // serializes enqueue against Close
	closed    bool
	closedBit atomic.Bool    // fast-path mirror of closed for cache hits
	draining  atomic.Bool    // BeginDrain called; still serving
	wg        sync.WaitGroup // shard workers
}

// New builds a service over db. The database is split with the exchange
// owner hash; db itself is not retained.
func New(db *kcount.Database, opts Options) (*Service, error) {
	opts = opts.withDefaults()
	if db == nil {
		return nil, fmt.Errorf("kserve: nil database")
	}
	parts, err := db.Split(opts.Shards, func(key uint64) int {
		return kernels.DestOf(key, opts.Shards)
	})
	if err != nil {
		return nil, err
	}
	s := &Service{
		opts:      opts,
		k:         db.K,
		canonical: db.Canonical(),
		hist:      db.Histogram(),
		distinct:  uint64(db.Len()),
	}
	s.total = s.hist.Total()
	s.top = db.Table().TopK(opts.TopN)
	if opts.CacheSize > 0 {
		s.cache = newLRU(opts.CacheSize)
	}
	s.flight.m = make(map[uint64]*call)
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.initMetrics(reg)
	s.shards = make([]*shard, opts.Shards)
	for i, p := range parts {
		s.shards[i] = &shard{
			id:      i,
			entries: p.Entries,
			queue:   make(chan *call, opts.QueueDepth),
			svc:     s,
		}
		s.initShardMetrics(reg, s.shards[i])
	}
	for i := range s.shards {
		s.wg.Add(1)
		go s.shards[i].run()
	}
	return s, nil
}

// Registry returns the observability registry the service's metrics live
// in — the one passed via Options.Registry, or the private registry New
// created. Use it to serve Prometheus text exposition.
func (s *Service) Registry() *obs.Registry { return s.reg }

// K returns the database k-mer length.
func (s *Service) K() int { return s.k }

// Canonical reports whether the served spectrum holds canonical counts.
func (s *Service) Canonical() bool { return s.canonical }

// Distinct returns the number of distinct k-mers served.
func (s *Service) Distinct() uint64 { return s.distinct }

// Histogram returns the precomputed frequency spectrum.
func (s *Service) Histogram() kcount.Histogram { return s.hist }

// Top returns up to n of the most frequent k-mers (n capped at
// Options.TopN, the precomputed horizon).
func (s *Service) Top(n int) []kcount.KV {
	if n > len(s.top) {
		n = len(s.top)
	}
	if n < 0 {
		n = 0
	}
	return s.top[:n]
}

// ParseQuery packs an ASCII k-mer into the service's key space (length
// check, encoding, canonical folding) — kcount.ParseQuery under the
// service's parameters.
func (s *Service) ParseQuery(seq string) (uint64, error) {
	return kcount.ParseQuery(s.opts.Enc, s.k, s.canonical, seq)
}

// Lookup resolves one ASCII k-mer. Absent k-mers return 0, nil.
func (s *Service) Lookup(ctx context.Context, seq string) (uint32, error) {
	key, err := s.ParseQuery(seq)
	if err != nil {
		return 0, err
	}
	return s.LookupKey(ctx, key)
}

// LookupKey resolves one packed key through cache, singleflight and the
// owning shard's micro-batch queue.
func (s *Service) LookupKey(ctx context.Context, key uint64) (uint32, error) {
	c, err := s.getAsync(ctx, key)
	if err != nil {
		return 0, err
	}
	return c.wait(ctx)
}

// LookupBatch resolves a batch of ASCII k-mers: all keys are enqueued
// before any reply is awaited, so one round trip per shard suffices
// regardless of batch size. Any malformed k-mer fails the whole batch.
func (s *Service) LookupBatch(ctx context.Context, seqs []string) ([]uint32, error) {
	keys := make([]uint64, len(seqs))
	for i, q := range seqs {
		key, err := s.ParseQuery(q)
		if err != nil {
			return nil, fmt.Errorf("kmer %d: %w", i, err)
		}
		keys[i] = key
	}
	return s.LookupKeys(ctx, keys)
}

// LookupKeys is LookupBatch over pre-packed keys.
func (s *Service) LookupKeys(ctx context.Context, keys []uint64) ([]uint32, error) {
	out := make([]uint32, len(keys))
	if err := s.LookupKeysInto(ctx, keys, out); err != nil {
		return nil, err
	}
	return out, nil
}

// batchSlab is the pooled per-batch state of LookupKeysInto: one call per
// key, all reporting completion to one shared group, so a steady batch
// workload allocates only the group's completion channel per batch.
type batchSlab struct {
	calls []call
	grp   callGroup
}

var slabPool = sync.Pool{New: func() any { return new(batchSlab) }}

func getSlab(n int) *batchSlab {
	s := slabPool.Get().(*batchSlab)
	if cap(s.calls) < n {
		s.calls = make([]call, n)
	}
	s.calls = s.calls[:n]
	s.grp.remaining.Store(int32(n))
	s.grp.done = make(chan struct{})
	return s
}

// LookupKeysInto resolves keys into out (which must be exactly len(keys)
// long), the allocation-free core of LookupBatch: per-batch call state
// comes from a pool and every key completes into one shared group. Batch
// calls skip the singleflight group — bulk lookups rarely collide, and
// skipping it keeps the hot path free of the per-key map mutex — but still
// read and publish the hot-k-mer cache. If any key fails admission
// (ErrOverloaded/ErrClosed) the first such error is returned after the
// rest of the batch completes; out then holds counts for the keys that
// were served and 0 for the failed ones.
func (s *Service) LookupKeysInto(ctx context.Context, keys []uint64, out []uint32) error {
	if len(out) != len(keys) {
		return fmt.Errorf("kserve: out length %d != keys length %d", len(out), len(keys))
	}
	if len(keys) == 0 {
		return nil
	}
	slab := getSlab(len(keys))
	now := time.Now()
	var sc obs.SpanContext
	if s.opts.Tracer != nil {
		sc = obs.SpanFromContext(ctx)
	}
	for i, key := range keys {
		c := &slab.calls[i]
		*c = call{key: key, grp: &slab.grp, enq: now, sc: sc}
		if s.closedBit.Load() {
			c.complete(0, ErrClosed)
			continue
		}
		s.met.requests.Add(1)
		if s.cache != nil {
			if v, ok := s.cache.get(key); ok {
				s.met.cacheHits.Add(1)
				c.complete(v, nil)
				continue
			}
			s.met.cacheMisses.Add(1)
		}
		sh := s.shards[kernels.DestOf(key, len(s.shards))]
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			c.complete(0, ErrClosed)
			continue
		}
		select {
		case sh.queue <- c:
			s.mu.RUnlock()
			sh.met.enqueued.Add(1)
		default:
			s.mu.RUnlock()
			sh.met.rejected.Add(1)
			s.met.rejected.Add(1)
			c.complete(0, ErrOverloaded)
		}
	}
	select {
	case <-slab.grp.done:
	case <-ctx.Done():
		// Abandoned: enqueued calls will still complete into this slab, so
		// it must not be pooled for reuse.
		return ctx.Err()
	}
	var firstErr error
	for i := range slab.calls {
		out[i] = slab.calls[i].val
		if err := slab.calls[i].err; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	slabPool.Put(slab)
	return firstErr
}

// getAsync starts (or joins) the resolution of key and returns its call.
// Cache hits return an already-completed call.
func (s *Service) getAsync(ctx context.Context, key uint64) (*call, error) {
	if s.closedBit.Load() {
		return nil, ErrClosed
	}
	s.met.requests.Add(1)
	if s.cache != nil {
		if v, ok := s.cache.get(key); ok {
			s.met.cacheHits.Add(1)
			return completedCall(v), nil
		}
		s.met.cacheMisses.Add(1)
	}

	c, leader := s.flight.join(key)
	if !leader {
		s.met.coalesced.Add(1)
		return c, nil
	}
	c.enq = time.Now()
	if s.opts.Tracer != nil {
		c.sc = obs.SpanFromContext(ctx)
	}

	sh := s.shards[kernels.DestOf(key, len(s.shards))]
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.flight.forget(key)
		c.complete(0, ErrClosed)
		return nil, ErrClosed
	}
	select {
	case sh.queue <- c:
		s.mu.RUnlock()
		sh.met.enqueued.Add(1)
		return c, nil
	default:
		s.mu.RUnlock()
		s.flight.forget(key)
		sh.met.rejected.Add(1)
		s.met.rejected.Add(1)
		c.complete(0, ErrOverloaded)
		return nil, ErrOverloaded
	}
}

// BeginDrain marks the service as draining without refusing lookups: from
// here /healthz answers 503 (with Retry-After) so a cluster router stops
// routing new traffic to this replica, while requests already in flight —
// and any that still arrive during the handoff window — are served
// normally. Call Close after the window to stop serving. Idempotent.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain or Close has begun.
func (s *Service) Draining() bool { return s.draining.Load() || s.closedBit.Load() }

// Close drains the service: no new lookups are admitted, every queued
// request is answered, then the shard workers exit. Safe to call more than
// once and concurrently with lookups.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.closedBit.Store(true)
	s.draining.Store(true)
	s.mu.Unlock()
	// No enqueue can start after this point (closed is checked under the
	// read lock before every send), so closing the queues is race-free and
	// workers drain the buffered remainder before exiting.
	for _, sh := range s.shards {
		close(sh.queue)
	}
	s.wg.Wait()
}
