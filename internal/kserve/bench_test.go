package kserve

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dedukt/internal/kcount"
)

// benchService builds a 100k-entry service; cache disabled so the shard
// queue/batch path is what's measured unless the bench opts in.
func benchService(b *testing.B, opts Options) (*Service, *kcount.Database) {
	b.Helper()
	db := sampleDB(b, 17, 100_000, 42, 0)
	svc, err := New(db, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	return svc, db
}

// BenchmarkKserveLookup measures concurrent point lookups through the full
// singleflight + micro-batch path (cache off, no batch window — a window
// would just bench the timer): the serving analogue of the pipeline's
// per-k-mer cost.
func BenchmarkKserveLookup(b *testing.B) {
	svc, db := benchService(b, Options{Shards: 4, CacheSize: -1, MaxWait: -1})
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(1))
		for pb.Next() {
			key := db.Entries[rng.Intn(len(db.Entries))].Key
			if _, err := svc.LookupKey(ctx, key); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKserveBatch measures 256-key bulk lookups — one enqueue round
// per shard, amortizing the queue hop across the batch.
func BenchmarkKserveBatch(b *testing.B) {
	svc, db := benchService(b, Options{Shards: 4, CacheSize: -1, MaxWait: 20 * time.Microsecond, MaxBatch: 256, QueueDepth: 4096})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = db.Entries[rng.Intn(len(db.Entries))].Key
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.LookupKeys(ctx, keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKserveCacheHit measures the hot-k-mer fast path: every lookup
// after the first is an LRU hit that never touches a shard.
func BenchmarkKserveCacheHit(b *testing.B) {
	svc, db := benchService(b, Options{Shards: 4, CacheSize: 1024})
	ctx := context.Background()
	hot := db.Entries[0].Key
	if _, err := svc.LookupKey(ctx, hot); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := svc.LookupKey(ctx, hot); err != nil {
				b.Fatal(err)
			}
		}
	})
}
