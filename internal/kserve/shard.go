package kserve

import (
	"sort"
	"strconv"
	"time"

	"dedukt/internal/kcount"
	"dedukt/internal/obs"
)

// shard owns one partition of the spectrum — the keys whose exchange
// owner-rank hash maps to this shard — and serves them from a single
// worker goroutine, so probes within a shard never contend.
type shard struct {
	id      int
	entries []kcount.KV // ascending by key
	queue   chan *call
	met     shardMetrics
	svc     *Service
}

// get is the point lookup: binary search over the sorted shard partition
// (0 when absent), identical to kcount.Database.Get.
func (sh *shard) get(key uint64) uint32 {
	i := sort.Search(len(sh.entries), func(i int) bool { return sh.entries[i].Key >= key })
	if i < len(sh.entries) && sh.entries[i].Key == key {
		return sh.entries[i].Count
	}
	return 0
}

// run is the shard worker loop: collect a micro-batch, serve it, repeat
// until the queue is closed and drained.
func (sh *shard) run() {
	defer sh.svc.wg.Done()
	var batch []*call
	for {
		var open bool
		batch, open = collectBatch(sh.queue, batch[:0], sh.svc.opts.MaxBatch, sh.svc.opts.MaxWait)
		if len(batch) > 0 {
			sh.serve(batch)
		}
		if !open {
			return
		}
	}
}

// serve resolves one micro-batch: probe, publish to the cache, retire the
// singleflight slot, release the waiters — in that order, so a request
// arriving after the flight slot clears finds the value in the cache.
// Queue wait (admission → batch start) is attributed per call into the
// stage histogram; sampled calls additionally get queue_wait spans and
// one serve_batch span adopted from the first traced call's context, so
// a joined trace shows which micro-batch a request rode in and how long
// it sat in the shard queue first.
func (sh *shard) serve(batch []*call) {
	if hook := sh.svc.opts.testHookBeforeServe; hook != nil {
		hook(sh.id, len(batch))
	}
	start := time.Now()
	tracer := sh.svc.opts.Tracer
	var batchParent obs.SpanContext
	for _, c := range batch {
		if !c.enq.IsZero() {
			sh.svc.met.queueWait.Observe(start.Sub(c.enq).Seconds())
			if tracer != nil && c.sc.Sampled {
				tracer.RecordSpan(c.sc, "queue_wait", sh.tid(), c.enq, start.Sub(c.enq), nil)
				if !batchParent.Valid() {
					batchParent = c.sc
				}
			}
		}
	}
	sh.met.batches.Add(1)
	sh.met.served.Add(uint64(len(batch)))
	sh.met.batchSize.Observe(float64(len(batch)))
	for _, c := range batch {
		v := sh.get(c.key)
		if sh.svc.cache != nil {
			sh.svc.cache.add(c.key, v)
		}
		// Batch-slab members never joined the flight group; forgetting
		// their key here could clear an unrelated point lookup's slot early.
		if c.grp == nil {
			sh.svc.flight.forget(c.key)
		}
		c.complete(v, nil)
	}
	dur := time.Since(start)
	sh.svc.met.serveStage.Observe(dur.Seconds())
	if tracer != nil && batchParent.Valid() {
		tracer.RecordSpan(batchParent, "serve_batch", sh.tid(), start, dur,
			map[string]string{"batch_size": strconv.Itoa(len(batch))})
	}
}

// tid is the trace thread name this shard's spans land on.
func (sh *shard) tid() string { return "shard " + strconv.Itoa(sh.id) }
