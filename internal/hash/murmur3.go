// Package hash implements MurmurHash3 from scratch, the hash family the
// paper uses both to assign k-mers to destination processors (Alg. 1 line 5)
// and to pick slots in the GPU open-addressing counter table (§III-B.3).
//
// Three variants are provided:
//
//   - Sum32: MurmurHash3_x86_32, the classic 32-bit hash.
//   - Sum128: MurmurHash3_x64_128, the 128-bit hash (the variant diBELLA
//     uses for k-mer bucketing).
//   - Mix64: the 64-bit finalizer (fmix64), a fast bijective mixer ideal for
//     already-packed k-mer words — this is what the hot GPU kernels use.
//
// All variants are implemented over byte slices and over raw uint64 words so
// the packed k-mer path never materializes bytes.
package hash

import "encoding/binary"

const (
	c1x86 = 0xcc9e2d51
	c2x86 = 0x1b873593

	c1x64 = 0x87c37b91114253d5
	c2x64 = 0x4cf5ad432745937f
)

func rotl32(x uint32, r uint) uint32 { return x<<r | x>>(32-r) }
func rotl64(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Sum32 computes MurmurHash3_x86_32 of data with the given seed.
func Sum32(data []byte, seed uint32) uint32 {
	h1 := seed
	nblocks := len(data) / 4
	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint32(data[i*4:])
		k1 *= c1x86
		k1 = rotl32(k1, 15)
		k1 *= c2x86
		h1 ^= k1
		h1 = rotl32(h1, 13)
		h1 = h1*5 + 0xe6546b64
	}
	// Tail.
	var k1 uint32
	tail := data[nblocks*4:]
	switch len(tail) {
	case 3:
		k1 ^= uint32(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint32(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint32(tail[0])
		k1 *= c1x86
		k1 = rotl32(k1, 15)
		k1 *= c2x86
		h1 ^= k1
	}
	h1 ^= uint32(len(data))
	return fmix32(h1)
}

// Sum128 computes MurmurHash3_x64_128 of data with the given seed, returning
// the two 64-bit halves.
func Sum128(data []byte, seed uint64) (uint64, uint64) {
	h1, h2 := seed, seed
	nblocks := len(data) / 16
	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1x64
		k1 = rotl64(k1, 31)
		k1 *= c2x64
		h1 ^= k1

		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2x64
		k2 = rotl64(k2, 33)
		k2 *= c1x64
		h2 ^= k2

		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail.
	var k1, k2 uint64
	tail := data[nblocks*16:]
	switch len(tail) {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2x64
		k2 = rotl64(k2, 33)
		k2 *= c1x64
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1x64
		k1 = rotl64(k1, 31)
		k1 *= c2x64
		h1 ^= k1
	}

	h1 ^= uint64(len(data))
	h2 ^= uint64(len(data))
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

// Sum64 returns the first 64-bit half of Sum128, the common single-word
// digest of the 128-bit variant.
func Sum64(data []byte, seed uint64) uint64 {
	h1, _ := Sum128(data, seed)
	return h1
}

// Mix64 applies the MurmurHash3 64-bit finalizer to a single word. It is a
// bijection on uint64, so distinct packed k-mers never collide before the
// modulo — the property the destination-assignment tests rely on.
func Mix64(x uint64) uint64 { return fmix64(x) }

// Mix64Seeded folds a seed into the word before finalizing; used to derive
// independent hash functions (e.g. table slot vs. destination rank).
func Mix64Seeded(x, seed uint64) uint64 { return fmix64(x ^ seed) }

// Words64 hashes a packed multi-word key (e.g. a LongKmer) by chaining the
// 64-bit finalizer with the x64_128 block constants, avoiding any byte
// materialization.
func Words64(words []uint64, seed uint64) uint64 {
	h := seed ^ uint64(len(words))*c1x64
	for _, w := range words {
		k := w * c1x64
		k = rotl64(k, 31)
		k *= c2x64
		h ^= k
		h = rotl64(h, 27)
		h = h*5 + 0x52dce729
	}
	return fmix64(h)
}
