package hash

import (
	"testing"
	"testing/quick"
)

// Reference vectors computed with the canonical C++ MurmurHash3
// (SMHasher) implementation.
func TestSum32Vectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint32
		want uint32
	}{
		{"", 0, 0},
		{"", 1, 0x514e28b7},
		{"", 0xffffffff, 0x81f16f39},
		{"a", 0, 0x3c2569b2},
		{"aaaa", 0x9747b28c, 0x5a97808a},
		{"Hello, world!", 0x9747b28c, 0x24884cba},
		{"abc", 0, 0xb3dd93fa},
		{"abcd", 0, 0x43ed676a},
		{"The quick brown fox jumps over the lazy dog", 0x9747b28c, 0x2fa826cd},
	}
	for _, c := range cases {
		if got := Sum32([]byte(c.in), c.seed); got != c.want {
			t.Errorf("Sum32(%q, %#x) = %#x, want %#x", c.in, c.seed, got, c.want)
		}
	}
}

func TestSum128Vectors(t *testing.T) {
	cases := []struct {
		in     string
		seed   uint64
		w1, w2 uint64
	}{
		{"", 0, 0, 0},
		{"hello", 0, 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"19 Jan 2038 at 3:14:07 AM", 0, 0xb89e5988b737affc, 0x664fc2950231b2cb},
		{"The quick brown fox jumps over the lazy dog.", 0, 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
	}
	for _, c := range cases {
		h1, h2 := Sum128([]byte(c.in), c.seed)
		if h1 != c.w1 || h2 != c.w2 {
			t.Errorf("Sum128(%q) = (%#x, %#x), want (%#x, %#x)", c.in, h1, h2, c.w1, c.w2)
		}
	}
}

func TestSum64MatchesSum128(t *testing.T) {
	data := []byte("GATTACAGATTACA")
	h1, _ := Sum128(data, 7)
	if Sum64(data, 7) != h1 {
		t.Fatal("Sum64 must equal first half of Sum128")
	}
}

func TestMix64Bijective(t *testing.T) {
	// fmix64 is invertible; check no collisions over a structured sample
	// (sequential packed k-mers are exactly the adversarial input here).
	seen := make(map[uint64]uint64, 1<<16)
	for x := uint64(0); x < 1<<16; x++ {
		h := Mix64(x)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", x, prev)
		}
		seen[h] = x
	}
}

func TestMix64SeededDiffers(t *testing.T) {
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if Mix64Seeded(x, 1) == Mix64Seeded(x, 2) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/1000 values hashed identically under different seeds", same)
	}
}

func TestWords64Consistency(t *testing.T) {
	a := Words64([]uint64{1, 2, 3}, 0)
	b := Words64([]uint64{1, 2, 3}, 0)
	if a != b {
		t.Fatal("Words64 not deterministic")
	}
	if Words64([]uint64{1, 2, 3}, 0) == Words64([]uint64{3, 2, 1}, 0) {
		t.Fatal("Words64 ignores order")
	}
	if Words64([]uint64{1}, 0) == Words64([]uint64{1, 0}, 0) {
		t.Fatal("Words64 ignores length")
	}
}

func TestSum32IncrementalTails(t *testing.T) {
	// Every tail length 0..15 exercised; hash must differ from neighbors.
	data := []byte("abcdefghijklmnop")
	prev := make(map[uint32]int)
	for n := 0; n <= len(data); n++ {
		h := Sum32(data[:n], 0x12345678)
		if at, dup := prev[h]; dup {
			t.Fatalf("len %d collides with len %d", n, at)
		}
		prev[h] = n
	}
}

func TestUniformityOfRankAssignment(t *testing.T) {
	// The paper relies on MurmurHash3 giving near-uniform rank assignment.
	// Hash 200k sequential "k-mers" into 96 buckets and check max/avg skew.
	const n, p = 200000, 96
	counts := make([]int, p)
	for x := uint64(0); x < n; x++ {
		counts[Mix64(x)%p]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	avg := float64(n) / p
	if imbalance := float64(max) / avg; imbalance > 1.10 {
		t.Fatalf("rank assignment imbalance %.3f > 1.10", imbalance)
	}
}

func TestQuickSum128DeterministicAndSeedSensitive(t *testing.T) {
	f := func(data []byte, seed uint64) bool {
		a1, a2 := Sum128(data, seed)
		b1, b2 := Sum128(data, seed)
		if a1 != b1 || a2 != b2 {
			return false
		}
		c1, c2 := Sum128(data, seed+1)
		// With overwhelming probability a different seed changes the hash.
		return len(data) == 0 || a1 != c1 || a2 != c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
