package hash

import "testing"

func BenchmarkMix64(b *testing.B) {
	var h uint64
	for i := 0; i < b.N; i++ {
		h = Mix64(h + uint64(i))
	}
	_ = h
}

func BenchmarkSum32(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum32(data, 0)
	}
}

func BenchmarkSum128(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum128(data, 0)
	}
}

func BenchmarkWords64(b *testing.B) {
	words := []uint64{1, 2, 3, 4}
	var h uint64
	for i := 0; i < b.N; i++ {
		h = Words64(words, h)
	}
	_ = h
}
