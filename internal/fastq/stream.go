package fastq

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// Source streams records one at a time: the out-of-core counterpart of a
// preloaded []Record. Next returns io.EOF after the last record and a
// non-nil error on malformed input; like Reader.Read, the returned
// record's slices are only valid until the next call — callers that
// retain a record must Clone it. Implementations need not be safe for
// concurrent use; the pipeline serializes pulls behind one producer lock.
type Source interface {
	Next() (Record, error)
}

// Cursor marks a resumable position in a record stream: the next
// undelivered record is record number Record (0-based) of input number
// Input. The zero Cursor is the start of the stream. Cursors address
// records, not byte offsets — gzip inputs have no random access, so a
// resume re-parses and discards the records before the cursor (see
// Stream.SeekCursor).
type Cursor struct {
	Input  int
	Record uint64
}

// CursorSource is a Source that can report a checkpoint cursor for its
// undelivered remainder. Cursor must be captured between Next calls; it
// then identifies exactly the records not yet returned. Stream and
// SliceSource implement it; the pipeline's checkpointing requires it.
type CursorSource interface {
	Source
	Cursor() Cursor
}

// SliceSource adapts an in-memory read set to the Source interface.
type SliceSource struct {
	recs []Record
	i    int
}

// NewSliceSource streams recs in order.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next returns the next record or io.EOF.
func (s *SliceSource) Next() (Record, error) {
	if s.i >= len(s.recs) {
		return Record{}, io.EOF
	}
	rec := s.recs[s.i]
	s.i++
	return rec, nil
}

// Cursor reports the position of the next undelivered record (a
// SliceSource is a single input, so Cursor.Input is always 0).
func (s *SliceSource) Cursor() Cursor { return Cursor{Record: uint64(s.i)} }

// SeekCursor positions the source at a cursor previously captured by
// Cursor.
func (s *SliceSource) SeekCursor(c Cursor) error {
	if c.Input != 0 || c.Record > uint64(len(s.recs)) {
		return fmt.Errorf("fastq: cursor input %d record %d outside a %d-record slice source", c.Input, c.Record, len(s.recs))
	}
	s.i = int(c.Record)
	return nil
}

// Input is one named reader feeding a Stream; Name labels errors.
type Input struct {
	Name string
	R    io.Reader
}

// InputError attributes a stream failure to one input of a multi-input
// Stream. Unwrap exposes the underlying cause (parse errors keep their
// line numbers; truncated gzip members surface io.ErrUnexpectedEOF).
type InputError struct {
	// Input is the failing input's name (the file path for OpenStream).
	Input string
	// Err is the underlying failure.
	Err error
}

func (e *InputError) Error() string { return fmt.Sprintf("fastq: input %s: %v", e.Input, e.Err) }

// Unwrap returns the underlying error.
func (e *InputError) Unwrap() error { return e.Err }

// Stream concatenates the records of a sequence of FASTQ/FASTA inputs,
// decompressing gzip inputs detected by their magic bytes (0x1f 0x8b) —
// the detection is per input, so plain and compressed files mix freely
// and a ".gz" suffix is not required. Concatenated gzip members within
// one input decompress as one stream (gzip multistream), and a
// truncated member is an error, never a silently shortened read set.
// Every non-EOF error is an *InputError naming the offending input, and
// errors are sticky: once Next fails, it keeps returning the same error.
type Stream struct {
	inputs   []Input
	paths    []string // lazily opened when non-nil; nil for NewStream
	cur      int      // next input index
	curInput int      // index of the currently open input
	curRecs  uint64   // records delivered from the currently open input
	name     string   // current input name, for error attribution
	r        *Reader
	file     io.Closer // open file backing the current input (paths mode)
	reads    uint64
	bases    uint64
	err      error // sticky terminal error (never io.EOF)
}

// NewStream streams the given inputs in order. Empty inputs are skipped.
func NewStream(inputs ...Input) *Stream { return &Stream{inputs: inputs} }

// OpenStream opens the given files as one concatenated stream. Every
// path is stat'ed up front so a missing file fails fast, but files are
// opened lazily, one at a time, and closed as they drain — a
// thousand-file dataset holds one descriptor. Close releases the
// currently open file when the stream is abandoned early.
func OpenStream(paths ...string) (*Stream, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("fastq: no input paths")
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			return nil, err
		}
	}
	return &Stream{paths: paths}, nil
}

// Next returns the next record across all inputs, or io.EOF after the
// last input drains.
func (s *Stream) Next() (Record, error) {
	if s.err != nil {
		return Record{}, s.err
	}
	for {
		if s.r == nil {
			if err := s.advance(); err != nil {
				if err != io.EOF {
					s.err = err
				}
				return Record{}, err
			}
		}
		rec, err := s.r.Read()
		if err == nil {
			s.reads++
			s.curRecs++
			s.bases += uint64(len(rec.Seq))
			return rec, nil
		}
		if err == io.EOF {
			s.r = nil
			s.closeCurrent()
			continue // next input
		}
		s.err = &InputError{Input: s.name, Err: err}
		return Record{}, s.err
	}
}

// Reads and Bases report the records and bases delivered so far.
func (s *Stream) Reads() uint64 { return s.reads }
func (s *Stream) Bases() uint64 { return s.bases }

// Cursor reports the resume position of the next undelivered record.
// Capture it between Next calls; SeekCursor on a fresh stream over the
// same inputs then replays exactly the records not yet returned.
func (s *Stream) Cursor() Cursor {
	if s.r == nil {
		return Cursor{Input: s.cur}
	}
	return Cursor{Input: s.curInput, Record: s.curRecs}
}

// SeekCursor fast-forwards a fresh stream to a cursor previously
// captured by Cursor: inputs before c.Input are skipped without being
// opened, and c.Record records of input c.Input are parsed and
// discarded (records are not byte-addressable — gzip inputs have no
// random access). Skipped records do not count toward Reads/Bases.
// Seeking a stream that already delivered records is an error, as is a
// cursor pointing past the input's actual records (a changed or
// truncated file must fail the resume, never silently shift it).
func (s *Stream) SeekCursor(c Cursor) error {
	if s.err != nil {
		return s.err
	}
	if s.r != nil || s.cur != 0 || s.reads != 0 {
		return fmt.Errorf("fastq: SeekCursor on a stream that already delivered records")
	}
	n := len(s.paths)
	if s.paths == nil {
		n = len(s.inputs)
	}
	if c.Input < 0 || c.Input > n {
		return fmt.Errorf("fastq: cursor input %d outside this stream's %d inputs", c.Input, n)
	}
	s.cur = c.Input
	if c.Record == 0 {
		return nil
	}
	if c.Input == n {
		return fmt.Errorf("fastq: cursor claims %d records past the last input", c.Record)
	}
	if err := s.advance(); err != nil {
		if err == io.EOF {
			return fmt.Errorf("fastq: cursor input %d: no records remain", c.Input)
		}
		s.err = err
		return err
	}
	if s.curInput != c.Input {
		// advance skips empty inputs; a cursor with records into one is
		// stale (the file changed since the checkpoint).
		return fmt.Errorf("fastq: cursor claims %d records in input %d, which is empty", c.Record, c.Input)
	}
	for i := uint64(0); i < c.Record; i++ {
		if _, err := s.r.Read(); err != nil {
			if err == io.EOF {
				return fmt.Errorf("fastq: cursor record %d past the end of input %s", c.Record, s.name)
			}
			s.err = &InputError{Input: s.name, Err: err}
			return s.err
		}
	}
	s.curRecs = c.Record
	return nil
}

// Close releases the currently open file, if any. Safe to call at any
// point; Next after Close reopens nothing (drained inputs stay drained,
// the current input restarts is not supported — Close is for abandoning
// a stream early or after io.EOF).
func (s *Stream) Close() error {
	if s.file == nil {
		return nil
	}
	err := s.file.Close()
	s.file = nil
	return err
}

func (s *Stream) closeCurrent() {
	if s.file != nil {
		s.file.Close()
		s.file = nil
	}
}

// advance opens the next non-empty input, returning io.EOF when none
// remain.
func (s *Stream) advance() error {
	for {
		var raw io.Reader
		if s.paths != nil {
			if s.cur >= len(s.paths) {
				return io.EOF
			}
			s.name = s.paths[s.cur]
			f, err := os.Open(s.name)
			if err != nil {
				s.cur++
				return &InputError{Input: s.name, Err: err}
			}
			s.file = f
			raw = f
		} else {
			if s.cur >= len(s.inputs) {
				return io.EOF
			}
			s.name = s.inputs[s.cur].Name
			raw = s.inputs[s.cur].R
		}
		s.cur++
		r, empty, err := sniffGzip(raw)
		if err != nil {
			s.closeCurrent()
			return &InputError{Input: s.name, Err: err}
		}
		if empty {
			s.closeCurrent()
			continue
		}
		s.r = NewReader(r)
		s.curInput = s.cur - 1
		s.curRecs = 0
		return nil
	}
}

// sniffGzip peeks the input's first two bytes and wraps it in a gzip
// decompressor when they are the gzip magic. empty reports an input with
// no bytes at all (skipped by the stream, like an empty file).
func sniffGzip(raw io.Reader) (r io.Reader, empty bool, err error) {
	br := bufio.NewReaderSize(raw, 1<<15)
	magic, err := br.Peek(2)
	if err == io.EOF {
		// Zero or one byte: no gzip member fits. Empty inputs are
		// skipped; a lone byte goes to the parser, which reports it.
		if len(magic) == 0 {
			return nil, true, nil
		}
		return br, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	if magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, false, err
		}
		return gz, false, nil
	}
	return br, false, nil
}

// trimSource wraps a Source with per-record quality trimming.
type trimSource struct {
	src    Source
	minQ   int
	minLen int
}

// NewTrimSource returns a Source that quality-trims every record of src
// (see TrimQuality) and drops records whose trimmed sequence is shorter
// than minLen — the streaming equivalent of TrimAll. When src is a
// CursorSource the returned source is one too, delegating to src:
// trimming is deterministic per raw record, so resuming the raw stream
// at the cursor re-trims the remainder identically.
func NewTrimSource(src Source, minQ, minLen int) Source {
	t := &trimSource{src: src, minQ: minQ, minLen: minLen}
	if cs, ok := src.(CursorSource); ok {
		return &trimCursorSource{trimSource: t, cs: cs}
	}
	return t
}

// trimCursorSource is a trimSource over a cursor-capable raw stream.
type trimCursorSource struct {
	*trimSource
	cs CursorSource
}

func (t *trimCursorSource) Cursor() Cursor { return t.cs.Cursor() }

func (t *trimSource) Next() (Record, error) {
	for {
		rec, err := t.src.Next()
		if err != nil {
			return rec, err
		}
		trimmed := TrimQuality(rec, t.minQ)
		if len(trimmed.Seq) >= t.minLen {
			return trimmed, nil
		}
	}
}
