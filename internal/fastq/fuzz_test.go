package fastq

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the FASTQ/FASTA reader: it must never
// panic, and any input it accepts must survive a write→re-read round trip.
func FuzzReader(f *testing.F) {
	f.Add([]byte(sampleFastq))
	f.Add([]byte(sampleFasta))
	f.Add([]byte("@r\nACGT\n+\nIIII\n"))
	f.Add([]byte(">r\nACGT\n"))
	f.Add([]byte("@\n\n+\n\n"))
	f.Add([]byte("@r\nACGT"))
	f.Add([]byte(">r\n>x\nA\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Round trip: what was parsed must re-parse identically.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			// Records with newlines in ID/seq cannot round-trip the text
			// format; the reader never produces them (lines are split),
			// but guard the invariant explicitly.
			if strings.ContainsAny(r.ID, "\n\r") {
				t.Fatalf("reader produced ID with newline: %q", r.ID)
			}
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return
		}
		back, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip %d records, want %d", len(back), len(recs))
		}
		for i := range recs {
			if back[i].ID != recs[i].ID || !bytes.Equal(back[i].Seq, recs[i].Seq) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}

// gzBytes compresses data into a single gzip member.
func gzBytes(tb testing.TB, data []byte) []byte {
	tb.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		tb.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzStream feeds two arbitrary inputs (optionally gzip-compressed by
// the harness) to the multi-input Stream. Invariants: it never panics;
// every failure is a structured *InputError naming the failing input;
// and it never silently drops reads — when both inputs parse cleanly on
// their own, the stream must deliver exactly their concatenation.
// Truncated gzip members (seeded below, and any the fuzzer mutates into
// existence — raw bytes starting 0x1f 0x8b take the gzip path) must
// error, not shorten the read set.
func FuzzStream(f *testing.F) {
	trunc := gzBytes(f, []byte(sampleFastq))
	f.Add([]byte(sampleFastq), []byte(sampleFasta), false, false) // mixed formats across inputs
	f.Add([]byte(sampleFasta), []byte(sampleFastq), true, true)   // both gzipped
	f.Add(trunc[:len(trunc)/2], []byte{}, false, false)           // truncated gzip member
	f.Add([]byte("@r\nACGT\n+\nII"), []byte(">x\nAC"), false, false)
	f.Add([]byte("@r\r\nACGT\r\n+\r\nIIII\r\n"), []byte(">c\r\nACGT\r\n"), false, true) // CRLF
	f.Add([]byte{}, []byte(">r\nACGT\n"), true, false)                                  // empty first input
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00}, []byte("@r\nA\n+\nI\n"), false, false)        // bare gzip magic
	f.Fuzz(func(t *testing.T, a, b []byte, gzA, gzB bool) {
		inA, inB := a, b
		if gzA {
			inA = gzBytes(t, a)
		}
		if gzB {
			inB = gzBytes(t, b)
		}
		s := NewStream(Input{Name: "a", R: bytes.NewReader(inA)}, Input{Name: "b", R: bytes.NewReader(inB)})
		var got []Record
		var streamErr error
		for {
			rec, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var ie *InputError
				if !errors.As(err, &ie) {
					t.Fatalf("unstructured stream error %T: %v", err, err)
				}
				if ie.Input != "a" && ie.Input != "b" {
					t.Fatalf("error names unknown input %q", ie.Input)
				}
				// Errors are sticky: the stream must not resume past one.
				if _, again := s.Next(); !errors.Is(again, err) {
					t.Fatalf("error not sticky: %v then %v", err, again)
				}
				streamErr = err
				break
			}
			got = append(got, rec.Clone())
		}
		// No silent drops: inputs that parse cleanly in isolation must
		// stream as their exact concatenation, with no error.
		wantA, errA := ReadAll(bytes.NewReader(a))
		wantB, errB := ReadAll(bytes.NewReader(b))
		if errA != nil || errB != nil {
			return // at least one input is malformed; the error above (if any) covered it
		}
		if streamErr != nil {
			t.Fatalf("inputs parse cleanly alone but stream failed: %v", streamErr)
		}
		want := append(wantA, wantB...)
		if len(got) != len(want) {
			t.Fatalf("stream delivered %d records, concatenation has %d", len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || !bytes.Equal(got[i].Seq, want[i].Seq) {
				t.Fatalf("record %d differs from concatenation", i)
			}
		}
	})
}
