package fastq

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the FASTQ/FASTA reader: it must never
// panic, and any input it accepts must survive a write→re-read round trip.
func FuzzReader(f *testing.F) {
	f.Add([]byte(sampleFastq))
	f.Add([]byte(sampleFasta))
	f.Add([]byte("@r\nACGT\n+\nIIII\n"))
	f.Add([]byte(">r\nACGT\n"))
	f.Add([]byte("@\n\n+\n\n"))
	f.Add([]byte("@r\nACGT"))
	f.Add([]byte(">r\n>x\nA\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Round trip: what was parsed must re-parse identically.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			// Records with newlines in ID/seq cannot round-trip the text
			// format; the reader never produces them (lines are split),
			// but guard the invariant explicitly.
			if strings.ContainsAny(r.ID, "\n\r") {
				t.Fatalf("reader produced ID with newline: %q", r.ID)
			}
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return
		}
		back, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip %d records, want %d", len(back), len(recs))
		}
		for i := range recs {
			if back[i].ID != recs[i].ID || !bytes.Equal(back[i].Seq, recs[i].Seq) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}
