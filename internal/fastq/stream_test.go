package fastq

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// drainStream pulls a stream dry, cloning records.
func drainStream(t *testing.T, s Source) ([]Record, error) {
	t.Helper()
	var out []Record
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec.Clone())
	}
}

func gzCompress(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestOpenStreamMultiFileGzip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "a.fastq")
	suffixed := filepath.Join(dir, "b.fastq.gz")
	// Gzip content behind a non-.gz name: detection must go by magic
	// bytes, not the suffix.
	unsuffixed := filepath.Join(dir, "c.fastq")
	if err := os.WriteFile(plain, []byte("@r1\nACGT\n+\nIIII\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(suffixed, gzCompress(t, []byte(">r2\nGGCC\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(unsuffixed, gzCompress(t, []byte("@r3\nTTTT\n+\nIIII\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenStream(plain, suffixed, unsuffixed)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs, err := drainStream(t, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].ID != "r1" || recs[1].ID != "r2" || recs[2].ID != "r3" {
		t.Fatalf("concatenation wrong: %+v", recs)
	}
	if string(recs[1].Seq) != "GGCC" {
		t.Fatalf("gzip record decoded wrong: %q", recs[1].Seq)
	}
	if s.Reads() != 3 || s.Bases() != 12 {
		t.Fatalf("tallies %d/%d, want 3/12", s.Reads(), s.Bases())
	}
}

func TestOpenStreamMissingFile(t *testing.T) {
	if _, err := OpenStream(filepath.Join(t.TempDir(), "nope.fastq")); err == nil {
		t.Fatal("missing file must fail fast at OpenStream")
	}
	if _, err := OpenStream(); err == nil {
		t.Fatal("no paths must be rejected")
	}
}

func TestStreamSkipsEmptyInputs(t *testing.T) {
	s := NewStream(
		Input{Name: "empty1", R: bytes.NewReader(nil)},
		Input{Name: "data", R: bytes.NewReader([]byte(">r\nACGT\n"))},
		Input{Name: "empty2", R: bytes.NewReader(nil)},
	)
	recs, err := drainStream(t, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "r" {
		t.Fatalf("got %+v", recs)
	}
}

func TestStreamConcatenatedGzipMembers(t *testing.T) {
	// Two gzip members back to back in one input — the standard output
	// of `cat a.gz b.gz` — must decompress as one stream.
	raw := append(gzCompress(t, []byte("@r1\nAC\n+\nII\n")), gzCompress(t, []byte("@r2\nGT\n+\nII\n"))...)
	s := NewStream(Input{Name: "multi", R: bytes.NewReader(raw)})
	recs, err := drainStream(t, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "r1" || recs[1].ID != "r2" {
		t.Fatalf("multistream gzip wrong: %+v", recs)
	}
}

func TestStreamTruncatedGzip(t *testing.T) {
	// FASTQ and FASTA content, truncated mid-member: both must surface a
	// structured error naming the input — never a silently shortened
	// read set (the FASTA case regresses if readFasta swallows read
	// errors again).
	for _, content := range []string{
		"@r1\nACGT\n+\nIIII\n@r2\nGGGG\n+\nIIII\n",
		">r1\nACGT\n>r2\nGGGG\n",
	} {
		full := gzCompress(t, []byte(content))
		s := NewStream(Input{Name: "trunc", R: bytes.NewReader(full[:len(full)-6])})
		_, err := drainStream(t, s)
		var ie *InputError
		if !errors.As(err, &ie) || ie.Input != "trunc" {
			t.Fatalf("want InputError for truncated gzip of %q, got %v", content[:3], err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want io.ErrUnexpectedEOF cause, got %v", err)
		}
	}
}

func TestStreamMidRecordEOF(t *testing.T) {
	s := NewStream(Input{Name: "cut", R: bytes.NewReader([]byte("@r\nACGT\n+\n"))})
	_, err := drainStream(t, s)
	var ie *InputError
	if !errors.As(err, &ie) {
		t.Fatalf("want structured error, got %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want truncated-record cause, got %v", err)
	}
	// Sticky: the stream does not resume past a failure.
	if _, again := s.Next(); !errors.Is(again, err) {
		t.Fatalf("error not sticky: %v", again)
	}
}

func TestStreamCRLF(t *testing.T) {
	s := NewStream(Input{Name: "crlf", R: bytes.NewReader([]byte("@r\r\nACGT\r\n+\r\nIIII\r\n"))})
	recs, err := drainStream(t, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Seq) != "ACGT" {
		t.Fatalf("CRLF input parsed wrong: %+v", recs)
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Record{{ID: "a", Seq: []byte("AC")}, {ID: "b", Seq: []byte("GT")}}
	got, err := drainStream(t, NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("got %+v", got)
	}
}

func TestTrimSource(t *testing.T) {
	reads := []Record{
		{ID: "keep", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIIII$")},
		{ID: "drop", Seq: []byte("ACGT"), Qual: []byte("$$$$")},
	}
	want := TrimAll(append([]Record(nil), reads...), 20, 5)
	got, err := drainStream(t, NewTrimSource(NewSliceSource(reads), 20, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("trim stream kept %d records, TrimAll kept %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || !bytes.Equal(got[i].Seq, want[i].Seq) {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
