// Package fastq provides streaming FASTQ and FASTA readers and writers.
//
// The paper's inputs (Table I) are FASTQ files from 792 MB to 317 GB; the
// distributed pipeline partitions them across ranks with parallel I/O
// (§IV-D). This package supplies the equivalent single-machine substrate:
// record-at-a-time streaming with O(record) memory, optional gzip, and a
// partitioner that splits a dataset into per-rank read sets.
package fastq

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Record is a single sequencing read.
type Record struct {
	// ID is the read identifier (text after '@'/'>' up to the first space).
	ID string
	// Seq holds the nucleotide characters.
	Seq []byte
	// Qual holds per-base quality characters (FASTQ only; nil for FASTA).
	Qual []byte
}

// Clone returns a deep copy of r, safe to retain after the next Read call.
func (r Record) Clone() Record {
	return Record{
		ID:   r.ID,
		Seq:  append([]byte(nil), r.Seq...),
		Qual: append([]byte(nil), r.Qual...),
	}
}

// Reader streams records from FASTQ or FASTA input, auto-detected from the
// first byte ('@' → FASTQ, '>' → FASTA).
type Reader struct {
	br     *bufio.Reader
	isQ    bool
	sniffd bool
	line   int
	rec    Record // reused buffer returned by Read
}

// NewReader wraps r. Call Read until it returns io.EOF.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) sniff() error {
	b, err := r.br.Peek(1)
	if err != nil {
		return err
	}
	switch b[0] {
	case '@':
		r.isQ = true
	case '>':
		r.isQ = false
	default:
		return fmt.Errorf("fastq: unrecognized leading byte %q", b[0])
	}
	r.sniffd = true
	return nil
}

func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadBytes('\n')
	if len(line) > 0 {
		r.line++
		line = bytes.TrimRight(line, "\r\n")
		return line, nil
	}
	return nil, err
}

// Read returns the next record. The returned record's slices are only valid
// until the next Read; use Clone to retain them. Read returns io.EOF at the
// end of input.
func (r *Reader) Read() (Record, error) {
	if !r.sniffd {
		if err := r.sniff(); err != nil {
			return Record{}, err
		}
	}
	if r.isQ {
		return r.readFastq()
	}
	return r.readFasta()
}

// printable reports whether every byte is graphic ASCII (0x21-0x7e);
// spaceOK additionally admits spaces and tabs (header descriptions).
func printable(b []byte, spaceOK bool) bool {
	for _, c := range b {
		if c >= '!' && c <= '~' {
			continue
		}
		if spaceOK && (c == ' ' || c == '\t') {
			continue
		}
		return false
	}
	return true
}

func parseID(header []byte) string {
	h := string(header[1:])
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		h = h[:i]
	}
	return h
}

func (r *Reader) readFastq() (Record, error) {
	header, err := r.readLine()
	if err != nil {
		return Record{}, err
	}
	if len(header) == 0 || header[0] != '@' {
		return Record{}, fmt.Errorf("fastq: line %d: expected '@' header, got %q", r.line, header)
	}
	if !printable(header[1:], true) {
		return Record{}, fmt.Errorf("fastq: line %d: non-printable byte in header", r.line)
	}
	seq, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("fastq: line %d: truncated record: %w", r.line, unexpected(err))
	}
	if len(seq) == 0 {
		return Record{}, fmt.Errorf("fastq: line %d: empty sequence", r.line)
	}
	if !printable(seq, false) {
		return Record{}, fmt.Errorf("fastq: line %d: non-printable byte in sequence", r.line)
	}
	plus, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("fastq: line %d: truncated record: %w", r.line, unexpected(err))
	}
	if len(plus) == 0 || plus[0] != '+' {
		return Record{}, fmt.Errorf("fastq: line %d: expected '+' separator, got %q", r.line, plus)
	}
	qual, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("fastq: line %d: truncated record: %w", r.line, unexpected(err))
	}
	if len(qual) != len(seq) {
		return Record{}, fmt.Errorf("fastq: line %d: quality length %d != sequence length %d", r.line, len(qual), len(seq))
	}
	if !printable(qual, false) {
		return Record{}, fmt.Errorf("fastq: line %d: non-printable byte in quality string", r.line)
	}
	r.rec = Record{ID: parseID(header), Seq: seq, Qual: qual}
	return r.rec, nil
}

func (r *Reader) readFasta() (Record, error) {
	header, err := r.readLine()
	if err != nil {
		return Record{}, err
	}
	if len(header) == 0 || header[0] != '>' {
		return Record{}, fmt.Errorf("fastq: line %d: expected '>' header, got %q", r.line, header)
	}
	if !printable(header[1:], true) {
		return Record{}, fmt.Errorf("fastq: line %d: non-printable byte in header", r.line)
	}
	r.rec.Seq = r.rec.Seq[:0]
	for {
		b, err := r.br.Peek(1)
		if err == io.EOF || (err == nil && b[0] == '>') {
			break // end of input or next record
		}
		if err != nil {
			// A real read failure (e.g. a truncated gzip member) must not
			// silently shorten the record.
			return Record{}, fmt.Errorf("fastq: line %d: truncated record: %w", r.line, unexpected(err))
		}
		line, err := r.readLine()
		if err != nil {
			if err == io.EOF {
				break
			}
			return Record{}, fmt.Errorf("fastq: line %d: %w", r.line, err)
		}
		if !printable(line, false) {
			return Record{}, fmt.Errorf("fastq: line %d: non-printable byte in sequence", r.line)
		}
		r.rec.Seq = append(r.rec.Seq, line...)
	}
	if len(r.rec.Seq) == 0 {
		return Record{}, fmt.Errorf("fastq: line %d: empty FASTA record", r.line)
	}
	r.rec.ID = parseID(header)
	r.rec.Qual = nil
	return r.rec, nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadAll drains the reader, returning deep-copied records.
func ReadAll(r io.Reader) ([]Record, error) {
	fr := NewReader(r)
	var out []Record
	for {
		rec, err := fr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec.Clone())
	}
}

// Open opens a FASTQ/FASTA file, transparently decompressing ".gz" paths.
// The returned closer must be closed by the caller.
func Open(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return NewReader(gz), multiCloser{gz, f}, nil
	}
	return NewReader(f), f, nil
}

type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Writer emits records in FASTQ format (or FASTA when a record has no
// quality string).
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriterSize(w, 1<<16)} }

// Write emits one record.
func (w *Writer) Write(rec Record) error {
	var err error
	if rec.Qual != nil {
		_, err = fmt.Fprintf(w.bw, "@%s\n%s\n+\n%s\n", rec.ID, rec.Seq, rec.Qual)
	} else {
		_, err = fmt.Fprintf(w.bw, ">%s\n%s\n", rec.ID, rec.Seq)
	}
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Partition splits records into p per-rank partitions of near-equal total
// base count, mirroring the parallel-I/O assumption in the paper's analysis
// ("the input of size D is partitioned roughly uniformly over P parallel
// processors", §IV-D). It uses longest-processing-time-first (LPT) greedy
// assignment — reads sorted by descending length, each placed on the
// currently lightest rank — which bounds the heaviest rank at 4/3 of
// optimal even with heavy-tailed long-read length distributions.
func Partition(records []Record, p int) [][]Record {
	if p <= 0 {
		panic("fastq: non-positive partition count")
	}
	order := make([]int, len(records))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(records[order[a]].Seq) > len(records[order[b]].Seq)
	})
	parts := make([][]Record, p)
	loads := make([]int, p)
	for _, idx := range order {
		rec := records[idx]
		min := 0
		for i := 1; i < p; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		parts[min] = append(parts[min], rec)
		loads[min] += len(rec.Seq)
	}
	return parts
}
