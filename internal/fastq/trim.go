package fastq

// Quality-based read preprocessing: the standard cleanup applied before
// k-mer counting so low-confidence base calls do not flood the spectrum
// with error singletons.

// PhredOffset is the Sanger/Illumina-1.8 quality encoding offset.
const PhredOffset = 33

// Phred returns the numeric quality of one quality character.
func Phred(q byte) int { return int(q) - PhredOffset }

// TrimQuality trims low-quality tails from both ends of a read using
// Richard Mott's algorithm (the BWA/seqtk convention): scanning from each
// end, partial sums of (minQ − phred) are accumulated and the read is cut
// where the running sum is maximal. Records without quality strings (FASTA)
// are returned unchanged. The returned record aliases the input's slices.
func TrimQuality(rec Record, minQ int) Record {
	if rec.Qual == nil || len(rec.Seq) == 0 {
		return rec
	}
	// Scan from the 3' end backwards accumulating s += minQ - q; the best
	// (maximal) prefix of that scan marks the tail to drop, and vice versa.
	end := len(rec.Seq)
	best, sum := 0, 0
	for i := len(rec.Qual) - 1; i >= 0; i-- {
		sum += minQ - Phred(rec.Qual[i])
		if sum < 0 {
			break
		}
		if sum > best {
			best = sum
			end = i
		}
	}
	start := 0
	best, sum = 0, 0
	for i := 0; i < end; i++ {
		sum += minQ - Phred(rec.Qual[i])
		if sum < 0 {
			break
		}
		if sum > best {
			best = sum
			start = i + 1
		}
	}
	if start >= end {
		return Record{ID: rec.ID, Seq: rec.Seq[:0], Qual: rec.Qual[:0]}
	}
	return Record{ID: rec.ID, Seq: rec.Seq[start:end], Qual: rec.Qual[start:end]}
}

// TrimAll quality-trims every record and drops reads shorter than minLen
// afterwards, returning the survivors.
func TrimAll(reads []Record, minQ, minLen int) []Record {
	out := reads[:0:0]
	for _, r := range reads {
		t := TrimQuality(r, minQ)
		if len(t.Seq) >= minLen {
			out = append(out, t)
		}
	}
	return out
}

// MeanQuality returns the average phred score of a record's quality string
// (0 for FASTA records).
func MeanQuality(rec Record) float64 {
	if len(rec.Qual) == 0 {
		return 0
	}
	sum := 0
	for _, q := range rec.Qual {
		sum += Phred(q)
	}
	return float64(sum) / float64(len(rec.Qual))
}
