package fastq

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleFastq = `@read1 some description
ACGTACGT
+
IIIIIIII
@read2
GGGG
+
!!!!
`

const sampleFasta = `>chr1 the first
ACGTACGT
GGGG
>chr2
TTTT
`

func TestReadFastq(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(sampleFastq))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != "read1" || string(recs[0].Seq) != "ACGTACGT" || string(recs[0].Qual) != "IIIIIIII" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].ID != "read2" || string(recs[1].Seq) != "GGGG" {
		t.Errorf("record 1 = %+v", recs[1])
	}
}

func TestReadFasta(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(sampleFasta))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != "chr1" || string(recs[0].Seq) != "ACGTACGTGGGG" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[0].Qual != nil {
		t.Error("FASTA record should have nil quality")
	}
	if recs[1].ID != "chr2" || string(recs[1].Seq) != "TTTT" {
		t.Errorf("record 1 = %+v", recs[1])
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad leading byte": "XACGT\n",
		"missing plus":     "@r\nACGT\nACGT\nIIII\n",
		"qual mismatch":    "@r\nACGT\n+\nII\n",
		"truncated":        "@r\nACGT\n+\n",
		"empty fasta":      ">r\n>r2\nAC\n",
	}
	for name, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEmptyInputIsEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("got %v, want EOF", err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	recs, _ := ReadAll(strings.NewReader(sampleFastq))
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i].ID != recs[i].ID || !bytes.Equal(back[i].Seq, recs[i].Seq) || !bytes.Equal(back[i].Qual, recs[i].Qual) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, back[i], recs[i])
		}
	}
}

func TestWriterFasta(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{ID: "x", Seq: []byte("ACGT")}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if got := buf.String(); got != ">x\nACGT\n" {
		t.Fatalf("got %q", got)
	}
}

func TestOpenGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write([]byte(sampleFastq)); err != nil {
		t.Fatal(err)
	}
	gz.Close()
	f.Close()

	r, closer, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	rec, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "read1" {
		t.Fatalf("got %q", rec.ID)
	}
}

func TestOpenPlain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq")
	if err := os.WriteFile(path, []byte(sampleFastq), 0o644); err != nil {
		t.Fatal(err)
	}
	r, closer, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	recs := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs++
	}
	if recs != 2 {
		t.Fatalf("read %d records, want 2", recs)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, _, err := Open("/nonexistent/file.fastq"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPartitionBalance(t *testing.T) {
	var recs []Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, Record{ID: "r", Seq: make([]byte, 50+i%100)})
	}
	const p = 7
	parts := Partition(recs, p)
	if len(parts) != p {
		t.Fatalf("%d partitions", len(parts))
	}
	total, max, min := 0, 0, 1<<62
	for _, part := range parts {
		bases := 0
		for _, r := range part {
			bases += len(r.Seq)
		}
		total += bases
		if bases > max {
			max = bases
		}
		if bases < min {
			min = bases
		}
	}
	want := 0
	for _, r := range recs {
		want += len(r.Seq)
	}
	if total != want {
		t.Fatalf("partition lost bases: %d != %d", total, want)
	}
	if float64(max)/(float64(total)/p) > 1.05 {
		t.Fatalf("partition imbalance too high: min %d max %d", min, max)
	}
}

func TestPartitionPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Partition(nil, 0)
}

func TestCloneIndependence(t *testing.T) {
	r := NewReader(strings.NewReader(sampleFastq))
	rec1, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	keep := rec1.Clone()
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if string(keep.Seq) != "ACGTACGT" {
		t.Fatalf("clone corrupted by subsequent read: %q", keep.Seq)
	}
}
