package fastq

import (
	"strings"
	"testing"
)

// qual builds a quality string from phred scores.
func qual(scores ...int) []byte {
	out := make([]byte, len(scores))
	for i, s := range scores {
		out[i] = byte(s + PhredOffset)
	}
	return out
}

func TestPhred(t *testing.T) {
	if Phred('!') != 0 || Phred('I') != 40 {
		t.Fatalf("phred decoding wrong: %d %d", Phred('!'), Phred('I'))
	}
}

func TestTrimQualityCleanReadUntouched(t *testing.T) {
	rec := Record{ID: "r", Seq: []byte("ACGTACGT"), Qual: qual(40, 40, 40, 40, 40, 40, 40, 40)}
	got := TrimQuality(rec, 20)
	if string(got.Seq) != "ACGTACGT" {
		t.Fatalf("clean read trimmed to %q", got.Seq)
	}
}

func TestTrimQualityBadTail(t *testing.T) {
	// Last three bases are junk (q=2) — they must go.
	rec := Record{
		ID:   "r",
		Seq:  []byte("ACGTACGTAT"),
		Qual: qual(40, 40, 40, 40, 40, 40, 40, 2, 2, 2),
	}
	got := TrimQuality(rec, 20)
	if string(got.Seq) != "ACGTACG" {
		t.Fatalf("trimmed to %q, want ACGTACG", got.Seq)
	}
	if len(got.Qual) != len(got.Seq) {
		t.Fatal("quality not trimmed in step")
	}
}

func TestTrimQualityBadHead(t *testing.T) {
	rec := Record{
		ID:   "r",
		Seq:  []byte("ATACGTACGT"),
		Qual: qual(2, 2, 40, 40, 40, 40, 40, 40, 40, 40),
	}
	got := TrimQuality(rec, 20)
	if string(got.Seq) != "ACGTACGT" {
		t.Fatalf("trimmed to %q, want ACGTACGT", got.Seq)
	}
}

func TestTrimQualityAllBad(t *testing.T) {
	rec := Record{ID: "r", Seq: []byte("ACGT"), Qual: qual(2, 2, 2, 2)}
	got := TrimQuality(rec, 20)
	if len(got.Seq) != 0 {
		t.Fatalf("all-bad read kept %q", got.Seq)
	}
}

func TestTrimQualityFastaPassthrough(t *testing.T) {
	rec := Record{ID: "r", Seq: []byte("ACGT")}
	got := TrimQuality(rec, 20)
	if string(got.Seq) != "ACGT" {
		t.Fatal("FASTA record modified")
	}
}

func TestTrimAll(t *testing.T) {
	reads := []Record{
		{ID: "keep", Seq: []byte("ACGTACGTAC"), Qual: qual(40, 40, 40, 40, 40, 40, 40, 40, 40, 40)},
		{ID: "short", Seq: []byte("ACGTAT"), Qual: qual(40, 40, 40, 2, 2, 2)},
		{ID: "junk", Seq: []byte("ACGT"), Qual: qual(2, 2, 2, 2)},
	}
	out := TrimAll(reads, 20, 5)
	if len(out) != 1 || out[0].ID != "keep" {
		ids := make([]string, len(out))
		for i, r := range out {
			ids[i] = r.ID
		}
		t.Fatalf("survivors: %s", strings.Join(ids, ","))
	}
}

func TestMeanQuality(t *testing.T) {
	rec := Record{Seq: []byte("ACGT"), Qual: qual(10, 20, 30, 40)}
	if got := MeanQuality(rec); got != 25 {
		t.Fatalf("mean quality %f", got)
	}
	if MeanQuality(Record{Seq: []byte("AC")}) != 0 {
		t.Fatal("FASTA mean quality should be 0")
	}
}
