package minimizer

import (
	"fmt"

	"dedukt/internal/dna"
)

// Scanner streams (k-mer, minimizer) pairs over a read in O(1) amortized
// time per position, using a monotonic deque over m-mer ranks — the classic
// sliding-window-minimum algorithm. It is the fast host-side alternative to
// calling Of for every k-mer (which costs O(k−m) per position, the cost the
// GPU kernel pays in registers); tests pin the two implementations to
// identical output.
type Scanner struct {
	enc *dna.Encoding
	seq []byte
	k   int
	m   int
	ord Ordering

	next    int      // next base index to consume
	valid   int      // consecutive valid bases ending before next
	kw      dna.Kmer // rolling k-mer
	mw      dna.Kmer // rolling m-mer
	deque   []cand   // rank-monotonic candidates, front = current minimizer
	headPos int      // read offset of the front base of the current k-mer
}

type cand struct {
	pos  int // start offset of the m-mer
	mmer dna.Kmer
	rank uint64
}

// NewScanner constructs a rolling scanner; it panics on invalid parameters
// (use minimizer.Config.Validate to pre-check user input).
func NewScanner(enc *dna.Encoding, seq []byte, k, m int, ord Ordering) *Scanner {
	if k <= 0 || k > dna.MaxK {
		panic(fmt.Sprintf("minimizer: k=%d outside (0,%d]", k, dna.MaxK))
	}
	if m <= 0 || m > k {
		panic(fmt.Sprintf("minimizer: m=%d outside (0,k=%d]", m, k))
	}
	if ord == nil {
		panic("minimizer: nil ordering")
	}
	return &Scanner{enc: enc, seq: seq, k: k, m: m, ord: ord}
}

// Next returns the next valid k-mer, its minimizer, and its start offset.
// ok is false at the end of the read.
func (s *Scanner) Next() (w, min dna.Kmer, pos int, ok bool) {
	for s.next < len(s.seq) {
		code, valid := s.enc.Encode(s.seq[s.next])
		base := s.next
		s.next++
		if !valid {
			s.valid = 0
			s.deque = s.deque[:0]
			continue
		}
		s.kw = s.kw.Append(s.k, code)
		s.mw = s.mw.Append(s.m, code)
		s.valid++

		if s.valid >= s.m {
			// The m-mer ending at `base` starts at base-m+1.
			c := cand{pos: base - s.m + 1, mmer: s.mw, rank: s.ord.Rank(s.mw, s.m)}
			// Strictly-greater pop keeps the leftmost occurrence of equal
			// ranks at the front — Of's tie-break.
			for len(s.deque) > 0 && s.deque[len(s.deque)-1].rank > c.rank {
				s.deque = s.deque[:len(s.deque)-1]
			}
			s.deque = append(s.deque, c)
		}
		if s.valid < s.k {
			continue
		}
		kpos := base - s.k + 1
		// Evict m-mers that start before the k-mer window.
		for len(s.deque) > 0 && s.deque[0].pos < kpos {
			s.deque = s.deque[1:]
		}
		return s.kw, s.deque[0].mmer, kpos, true
	}
	return 0, 0, 0, false
}

// ForEachWithMinimizer calls fn for every valid k-mer of seq with its
// minimizer, using the rolling scanner.
func ForEachWithMinimizer(enc *dna.Encoding, seq []byte, k, m int, ord Ordering, fn func(w, min dna.Kmer, pos int)) {
	s := NewScanner(enc, seq, k, m, ord)
	for {
		w, min, pos, ok := s.Next()
		if !ok {
			return
		}
		fn(w, min, pos)
	}
}
