package minimizer

import (
	"sort"
	"testing"

	"dedukt/internal/dna"
	"dedukt/internal/kmer"
)

// FuzzSupermerInvariants drives the windowed builder with fuzz-derived
// reads and parameters, checking the core invariants: the k-mer multiset is
// preserved, every k-mer shares its supermer's minimizer, lengths respect
// the window bound, and the rolling scanner agrees with the naive one.
func FuzzSupermerInvariants(f *testing.F) {
	f.Add([]byte("GTCATGCATTACCGGTA"), uint8(3), uint8(2), uint8(4))
	f.Add([]byte("ACGTNNNNACGTACGTACGT"), uint8(8), uint8(4), uint8(7))
	f.Add([]byte(""), uint8(17), uint8(7), uint8(15))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, mRaw, wRaw uint8) {
		k := int(kRaw%32) + 1
		m := int(mRaw)%k + 1
		window := int(wRaw)%64 + 1
		seq := make([]byte, len(raw))
		for i, b := range raw {
			if b&0x80 != 0 {
				seq[i] = 'N'
			} else {
				seq[i] = "ACGT"[b&3]
			}
		}
		c := Config{K: k, M: m, Window: window, Ord: Value{}}
		if c.Validate() != nil {
			t.Fatalf("fuzz-derived config invalid: %+v", c)
		}
		var all []dna.Kmer
		maxBases := c.MaxSupermerBases()
		err := BuildWindowed(&dna.Random, seq, c, func(s Supermer) {
			if s.Len(k) > maxBases {
				t.Fatalf("supermer %d bases > bound %d", s.Len(k), maxBases)
			}
			start := len(all)
			all = s.Kmers(all, k)
			for _, w := range all[start:] {
				if Of(w, k, m, c.Ord) != s.Min {
					t.Fatal("k-mer minimizer differs from supermer minimizer")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		want := kmer.Extract(nil, &dna.Random, seq, k)
		if len(all) != len(want) {
			t.Fatalf("%d kmers from supermers, %d from scanner", len(all), len(want))
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if all[i] != want[i] {
				t.Fatal("k-mer multiset changed")
			}
		}
		// Rolling scanner agreement.
		i := 0
		ForEachWithMinimizer(&dna.Random, seq, k, m, c.Ord, func(w, min dna.Kmer, pos int) {
			if min != Of(w, k, m, c.Ord) {
				t.Fatal("rolling scanner minimizer mismatch")
			}
			i++
		})
		if i != len(want) {
			t.Fatalf("rolling scanner yielded %d kmers, want %d", i, len(want))
		}
	})
}
