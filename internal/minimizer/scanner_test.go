package minimizer

import (
	"math/rand"
	"testing"

	"dedukt/internal/dna"
	"dedukt/internal/kmer"
)

func TestScannerMatchesOf(t *testing.T) {
	// The rolling deque scanner must agree with the per-k-mer Of scan for
	// every ordering, k, m, including reads with invalid bases.
	rng := rand.New(rand.NewSource(61))
	orderings := []Ordering{Value{}, NewKMC2(&dna.Random), Hashed{Seed: 3}}
	for trial := 0; trial < 150; trial++ {
		k := 2 + rng.Intn(28)
		m := 1 + rng.Intn(k)
		seq := randomRead(rng, 30+rng.Intn(300), 0.03)
		ord := orderings[trial%len(orderings)]

		type rec struct {
			w, min dna.Kmer
			pos    int
		}
		var want []rec
		kmer.ForEach(&dna.Random, seq, k, func(w dna.Kmer, pos int) {
			want = append(want, rec{w, Of(w, k, m, ord), pos})
		})
		var got []rec
		ForEachWithMinimizer(&dna.Random, seq, k, m, ord, func(w, min dna.Kmer, pos int) {
			got = append(got, rec{w, min, pos})
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d m=%d): %d kmers vs %d", trial, k, m, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (k=%d m=%d, ord=%s) kmer %d:\n got %+v\nwant %+v",
					trial, k, m, ord.Name(), i, got[i], want[i])
			}
		}
	}
}

func TestScannerEmptyAndShort(t *testing.T) {
	s := NewScanner(&dna.Random, nil, 5, 3, Value{})
	if _, _, _, ok := s.Next(); ok {
		t.Fatal("empty read yielded a k-mer")
	}
	s = NewScanner(&dna.Random, []byte("ACG"), 5, 3, Value{})
	if _, _, _, ok := s.Next(); ok {
		t.Fatal("short read yielded a k-mer")
	}
}

func TestScannerPanicsOnBadParams(t *testing.T) {
	cases := []func(){
		func() { NewScanner(&dna.Random, nil, 0, 1, Value{}) },
		func() { NewScanner(&dna.Random, nil, 5, 6, Value{}) },
		func() { NewScanner(&dna.Random, nil, 5, 0, Value{}) },
		func() { NewScanner(&dna.Random, nil, 5, 3, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkScannerRolling(b *testing.B) {
	seq := benchRead(64 << 10)
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ForEachWithMinimizer(&dna.Random, seq, 17, 7, Value{}, func(_, _ dna.Kmer, _ int) { n++ })
		if n == 0 {
			b.Fatal("no kmers")
		}
	}
}

func BenchmarkScannerNaiveOf(b *testing.B) {
	seq := benchRead(64 << 10)
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		kmer.ForEach(&dna.Random, seq, 17, func(w dna.Kmer, _ int) {
			_ = Of(w, 17, 7, Value{})
			n++
		})
		if n == 0 {
			b.Fatal("no kmers")
		}
	}
}
