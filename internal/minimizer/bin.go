package minimizer

import (
	"dedukt/internal/dna"
	"dedukt/internal/hash"
)

// spillBinSeed matches kernels.SpillBinSeed ("spil"): supermer-mode and
// kmer-mode spill use the same salt family but hash different inputs
// (minimizer rank vs. k-mer key), so the constants coinciding is
// harmless. Duplicated here because minimizer cannot import kernels.
const spillBinSeed = 0x7370696c

// SpillBinOf maps a minimizer to its out-of-core spill bin (DESIGN.md
// §16). Binning hashes the ordering's rank rather than the raw m-mer so
// the partition follows the run's minimizer ordering — the Gerbil/KMC
// idea of minimizer-partitioned disk bins. Every k-mer of a supermer
// shares the supermer's minimizer, so binning whole supermer images by
// minimizer keeps each distinct k-mer key in exactly one bin.
func SpillBinOf(min dna.Kmer, m int, ord Ordering, bins int) int {
	return int(hash.Mix64Seeded(ord.Rank(min, m), spillBinSeed) % uint64(bins))
}
