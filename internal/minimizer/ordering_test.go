package minimizer

import (
	"math/rand"
	"testing"

	"dedukt/internal/dna"
)

func TestOfLexicographic(t *testing.T) {
	// Under the lexicographic encoding, Value{} is the classic lexicographic
	// minimizer. GTCATGCA with m=4: candidates GTCA TCAT CATG ATGC TGCA;
	// smallest is ATGC.
	k, m := 8, 4
	w := dna.MustKmer(&dna.Lexicographic, "GTCATGCA")
	min := Of(w, k, m, Value{})
	if got := min.String(&dna.Lexicographic, m); got != "ATGC" {
		t.Fatalf("minimizer = %q, want ATGC", got)
	}
}

func TestOfLeftmostTieBreak(t *testing.T) {
	// Two occurrences of the minimal m-mer: leftmost must win (same value,
	// so the returned kmer is equal either way) — check the scan is stable
	// by using a rank that counts occurrences.
	k, m := 6, 2
	w := dna.MustKmer(&dna.Lexicographic, "ACACAC")
	min := Of(w, k, m, Value{})
	if got := min.String(&dna.Lexicographic, m); got != "AC" {
		t.Fatalf("minimizer = %q, want AC", got)
	}
}

func TestOfWholeKmerWhenMEqualsK(t *testing.T) {
	w := dna.MustKmer(&dna.Lexicographic, "GATTACA")
	if Of(w, 7, 7, Value{}) != w {
		t.Fatal("m=k should return the k-mer itself")
	}
}

func TestOfPanicsOnBadM(t *testing.T) {
	w := dna.MustKmer(&dna.Lexicographic, "ACGT")
	for _, m := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("m=%d should panic", m)
				}
			}()
			Of(w, 4, m, Value{})
		}()
	}
}

func TestOfMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(30)
		m := 1 + rng.Intn(k)
		codes := make([]dna.Code, k)
		for i := range codes {
			codes[i] = dna.Code(rng.Intn(4))
		}
		w := dna.KmerFromCodes(codes)
		for _, ord := range []Ordering{Value{}, NewKMC2(&dna.Random), Hashed{Seed: 9}} {
			got := Of(w, k, m, ord)
			// Naive: enumerate all m-mers, track min rank.
			best := w.Sub(k, 0, m)
			bestRank := ord.Rank(best, m)
			for i := 1; i+m <= k; i++ {
				c := w.Sub(k, i, m)
				if r := ord.Rank(c, m); r < bestRank {
					best, bestRank = c, r
				}
			}
			if got != best {
				t.Fatalf("trial %d ord %s: Of=%x naive=%x", trial, ord.Name(), got, best)
			}
		}
	}
}

func TestKMC2DemotesAAAandACA(t *testing.T) {
	for _, enc := range []*dna.Encoding{&dna.Lexicographic, &dna.Random} {
		ord := NewKMC2(enc)
		m := 4
		aaa := dna.MustKmer(enc, "AAAA")
		aca := dna.MustKmer(enc, "ACAT")
		ordinary := dna.MustKmer(enc, "TTTT") // lexicographically largest normal m-mer
		if ord.Rank(aaa, m) <= ord.Rank(ordinary, m) {
			t.Errorf("%s: AAAA should rank below TTTT", enc.Name())
		}
		if ord.Rank(aca, m) <= ord.Rank(ordinary, m) {
			t.Errorf("%s: ACAT should rank below TTTT", enc.Name())
		}
		// Ordinary m-mers keep lexicographic relative order.
		lo := dna.MustKmer(enc, "AGTC")
		hi := dna.MustKmer(enc, "CGTC")
		if ord.Rank(lo, m) >= ord.Rank(hi, m) {
			t.Errorf("%s: AGTC should rank above CGTC", enc.Name())
		}
	}
}

func TestKMC2EncodingIndependent(t *testing.T) {
	// The KMC2 rank of an m-mer must not depend on which encoding packed it.
	rng := rand.New(rand.NewSource(6))
	lex := NewKMC2(&dna.Lexicographic)
	rnd := NewKMC2(&dna.Random)
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(12)
		seq := make([]byte, m)
		for i := range seq {
			seq[i] = "ACGT"[rng.Intn(4)]
		}
		a := lex.Rank(dna.MustKmer(&dna.Lexicographic, string(seq)), m)
		b := rnd.Rank(dna.MustKmer(&dna.Random, string(seq)), m)
		if a != b {
			t.Fatalf("%s: lex-encoded rank %d != random-encoded rank %d", seq, a, b)
		}
	}
}

func TestHashedSeedIndependence(t *testing.T) {
	w := dna.MustKmer(&dna.Random, "ACGTACG")
	if (Hashed{Seed: 1}).Rank(w, 7) == (Hashed{Seed: 2}).Rank(w, 7) {
		t.Fatal("different seeds should give different orders")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"value", "kmc2", "hashed"} {
		ord, err := ByName(name, &dna.Random)
		if err != nil {
			t.Fatal(err)
		}
		if ord.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, ord.Name())
		}
	}
	if _, err := ByName("nope", &dna.Random); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestOrderingSkewRandomVsLex(t *testing.T) {
	// The paper's motivation for the random encoding (§IV-A): binning m-mers
	// by minimizer under lexicographic order concentrates mass in A-rich
	// bins. Measure the largest bin over the minimizers of many random
	// k-mers; the random encoding must not be worse than lexicographic.
	rng := rand.New(rand.NewSource(77))
	const k, m, n, bins = 17, 7, 20000, 64
	count := func(enc *dna.Encoding) int {
		counts := make([]int, bins)
		for i := 0; i < n; i++ {
			codes := make([]dna.Code, k)
			for j := range codes {
				codes[j] = dna.Code(rng.Intn(4))
			}
			min := Of(dna.KmerFromCodes(codes), k, m, Value{})
			counts[uint64(min)%bins]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max
	}
	// Both encodings see the same RNG stream shape; compare max bin loads.
	lexMax := count(&dna.Lexicographic)
	rndMax := count(&dna.Random)
	if rndMax > lexMax*2 {
		t.Fatalf("random encoding max bin %d far worse than lex %d", rndMax, lexMax)
	}
	t.Logf("max bin: lex=%d random=%d (avg %d)", lexMax, rndMax, n/bins)
}
