package minimizer

import (
	"fmt"

	"dedukt/internal/dna"
)

// Supermer is a contiguous run of bases whose constituent k-mers all share
// one minimizer (§IV-A). A supermer containing n k-mers spans n+k-1 bases.
type Supermer struct {
	// Seq is the 2-bit-packed base sequence of the supermer.
	Seq dna.PackedSeq
	// Min is the shared minimizer of every k-mer in the supermer; it
	// determines the destination processor (Alg. 2 line 7).
	Min dna.Kmer
	// NKmers is the number of k-mers packed inside (the paper's per-supermer
	// length byte encodes this, §IV-B).
	NKmers int
}

// Len returns the supermer length in bases for k-mer length k.
func (s *Supermer) Len(k int) int { return s.NKmers + k - 1 }

// Kmers appends the constituent k-mers to dst, in read order — the
// receiving-side extraction of Alg. 2 (COUNTKMER).
func (s *Supermer) Kmers(dst []dna.Kmer, k int) []dna.Kmer {
	for i := 0; i < s.NKmers; i++ {
		dst = append(dst, s.Seq.Kmer(i, k))
	}
	return dst
}

// Config bundles the supermer parameters of a run.
type Config struct {
	// K is the k-mer length (the paper uses 17).
	K int
	// M is the minimizer length (the paper evaluates 7 and 9).
	M int
	// Window is the number of consecutive k-mer start positions one GPU
	// thread owns (§IV-B); a supermer never crosses a window boundary, so
	// its length is at most Window+K-1 bases. The paper sets Window=15 so
	// every supermer fits one 64-bit word (15+17-1 = 31 ≤ 32 bases).
	Window int
	// Ord is the minimizer ordering.
	Ord Ordering
}

// Validate checks parameter consistency.
func (c Config) Validate() error {
	if c.K <= 0 || c.K > dna.MaxK {
		return fmt.Errorf("minimizer: k=%d outside (0,%d]", c.K, dna.MaxK)
	}
	if c.M <= 0 || c.M > c.K {
		return fmt.Errorf("minimizer: m=%d outside (0,k=%d]", c.M, c.K)
	}
	if c.Window <= 0 {
		return fmt.Errorf("minimizer: window=%d must be positive", c.Window)
	}
	if c.Ord == nil {
		return fmt.Errorf("minimizer: nil ordering")
	}
	return nil
}

// MaxSupermerBases returns the longest supermer the windowed builder can
// emit: Window k-mer positions spanning Window+K-1 bases.
func (c Config) MaxSupermerBases() int { return c.Window + c.K - 1 }

// DefaultConfig returns the paper's operating point: k=17, m=7, window=15,
// value ordering (paired with the dna.Random encoding).
func DefaultConfig() Config {
	return Config{K: 17, M: 7, Window: 15, Ord: Value{}}
}

// BuildSequential constructs maximal supermers of a read: the window-free
// reference algorithm, extending each supermer while consecutive k-mers
// share a minimizer. Invalid bases (N, separators) terminate the current
// supermer, and k-mer windows containing them are skipped.
//
// The GPU-style windowed builder (BuildWindowed) must produce supermers
// whose k-mer multiset equals this builder's output — windows only split
// runs, never move k-mers between minimizers.
func BuildSequential(enc *dna.Encoding, seq []byte, c Config, emit func(Supermer)) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b := newBuilder(enc, seq, c)
	for b.nextValidKmer() {
		if b.contiguous() && b.min == b.curMin {
			b.extend()
		} else {
			b.flush(emit)
			b.start()
		}
	}
	b.flush(emit)
	return nil
}

// BuildWindowed constructs supermers exactly as the GPU kernel does
// (Alg. 2): the read's k-mer start positions are cut into chunks of
// c.Window, each processed independently, so no supermer crosses a chunk
// boundary and every supermer fits c.MaxSupermerBases() bases. One simulated
// GPU thread owns one window (§IV-B).
func BuildWindowed(enc *dna.Encoding, seq []byte, c Config, emit func(Supermer)) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b := newBuilder(enc, seq, c)
	for b.nextValidKmer() {
		sameWindow := b.pos/c.Window == b.openWindow
		if b.contiguous() && sameWindow && b.min == b.curMin {
			b.extend()
		} else {
			b.flush(emit)
			b.start()
		}
	}
	b.flush(emit)
	return nil
}

// builder holds the shared scanning state of the two construction modes.
type builder struct {
	enc *dna.Encoding
	seq []byte
	c   Config

	// Rolling scan state.
	next   int      // next base index to consume
	valid  int      // consecutive valid bases ending before next
	kw     dna.Kmer // rolling k-mer
	pos    int      // start position of the current k-mer (valid after nextValidKmer)
	curMin dna.Kmer // minimizer of the current k-mer

	// Current supermer state.
	open       bool
	start0     int // base offset of the supermer's first base
	min        dna.Kmer
	nk         int
	lastPos    int // start position of the most recent k-mer in the supermer
	openWindow int // window index (pos/Window) that opened the supermer
}

func newBuilder(enc *dna.Encoding, seq []byte, c Config) *builder {
	return &builder{enc: enc, seq: seq, c: c, lastPos: -2}
}

// contiguous reports whether the current k-mer directly follows the last
// k-mer appended to the open supermer. A gap (caused by an invalid base
// between them) must terminate the supermer even if the minimizer matches,
// because the intervening bases cannot be represented in the packed run.
func (b *builder) contiguous() bool { return b.open && b.pos == b.lastPos+1 }

// nextValidKmer advances to the next k-mer window containing only valid
// bases, updating pos and curMin. It also terminates any open supermer when
// an invalid base is crossed (contiguity would be broken).
func (b *builder) nextValidKmer() bool {
	for b.next < len(b.seq) {
		code, ok := b.enc.Encode(b.seq[b.next])
		b.next++
		if !ok {
			b.valid = 0
			continue
		}
		b.kw = b.kw.Append(b.c.K, code)
		b.valid++
		if b.valid >= b.c.K {
			b.pos = b.next - b.c.K
			b.curMin = Of(b.kw, b.c.K, b.c.M, b.c.Ord)
			return true
		}
	}
	return false
}

func (b *builder) start() {
	b.open = true
	b.start0 = b.pos
	b.min = b.curMin
	b.nk = 1
	b.lastPos = b.pos
	b.openWindow = b.pos / b.c.Window
}

func (b *builder) extend() {
	b.nk++
	b.lastPos = b.pos
}

func (b *builder) flush(emit func(Supermer)) {
	if !b.open {
		return
	}
	nBases := b.nk + b.c.K - 1
	s := Supermer{Min: b.min, NKmers: b.nk, Seq: dna.NewPackedSeq(nBases)}
	for i := b.start0; i < b.start0+nBases; i++ {
		s.Seq.Append(b.enc.MustEncode(b.seq[i]))
	}
	emit(s)
	b.open = false
}

// SupermerStats summarizes a supermer decomposition.
type SupermerStats struct {
	NSupermers  int
	NKmers      int
	TotalBases  int // Σ supermer lengths — the communicated payload
	MaxLenBases int
}

// Collect runs the windowed builder over many reads and accumulates both the
// supermers (if keep is non-nil) and summary statistics.
func Collect(enc *dna.Encoding, reads [][]byte, c Config, keep func(Supermer)) (SupermerStats, error) {
	var st SupermerStats
	for _, r := range reads {
		err := BuildWindowed(enc, r, c, func(s Supermer) {
			st.NSupermers++
			st.NKmers += s.NKmers
			l := s.Len(c.K)
			st.TotalBases += l
			if l > st.MaxLenBases {
				st.MaxLenBases = l
			}
			if keep != nil {
				keep(s)
			}
		})
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// AvgLen returns the average supermer length in bases (the paper's s).
func (st SupermerStats) AvgLen() float64 {
	if st.NSupermers == 0 {
		return 0
	}
	return float64(st.TotalBases) / float64(st.NSupermers)
}

// KmerModeBases returns the bases that k-mer mode would communicate for the
// same k-mer multiset: NKmers × k (§IV-A's (L-k+1)·k term).
func (st SupermerStats) KmerModeBases(k int) int { return st.NKmers * k }

// Reduction returns the communication-volume reduction factor of supermers
// over k-mers in bases (the paper's headline ≈4× at k=17, w=15, m=7).
func (st SupermerStats) Reduction(k int) float64 {
	if st.TotalBases == 0 {
		return 0
	}
	return float64(st.KmerModeBases(k)) / float64(st.TotalBases)
}
