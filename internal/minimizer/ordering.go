// Package minimizer implements minimizer orderings, minimizer selection,
// and supermer construction (§II-B, §IV).
//
// A minimizer of a k-mer is its smallest length-m sub-sequence under some
// total order on m-mers (§II-B). Consecutive k-mers of a read often share a
// minimizer; a maximal run of such k-mers is packed into a single *supermer*
// — the unit DEDUKT ships between nodes instead of individual k-mers (§IV-A).
//
// Three orderings from the paper are provided:
//
//   - Value: compare packed m-mer values directly. Under the lexicographic
//     encoding this is Roberts' classic lexicographic ordering; under the
//     DEDUKT "random" encoding (A=1, C=0, T=2, G=3) it is the paper's cheap
//     skew-reducing custom ordering (§IV-A).
//   - KMC2: lexicographic order modified to give lower priority to m-mers
//     starting with AAA or ACA, used by KMC2 and Gerbil (§II-B).
//   - Hashed: order m-mers by an invertible 64-bit mix of their value; the
//     strongest skew reducer, included as an ablation beyond the paper.
package minimizer

import (
	"fmt"

	"dedukt/internal/dna"
	"dedukt/internal/hash"
)

// Ordering ranks m-mers; the m-mer with the smallest rank (ties broken
// toward the leftmost occurrence) is the minimizer.
type Ordering interface {
	// Rank maps a packed m-mer to its priority; smaller is preferred.
	Rank(w dna.Kmer, m int) uint64
	// Name identifies the ordering in reports and benchmarks.
	Name() string
}

// Value orders m-mers by their packed 2-bit value under the pipeline's
// encoding. See the package comment for how the encoding choice turns this
// into either the lexicographic or the paper's random ordering.
type Value struct{}

// Rank implements Ordering.
func (Value) Rank(w dna.Kmer, _ int) uint64 { return uint64(w) }

// Name implements Ordering.
func (Value) Name() string { return "value" }

// KMC2 is the KMC2/Gerbil ordering: lexicographic, except m-mers beginning
// with AAA or ACA are demoted below all others, spreading out the huge
// poly-A bins (§II-B). It must know the encoding to recognize the A and C
// codes.
type KMC2 struct {
	enc *dna.Encoding
	// lexOf maps the encoding's codes to lexicographic codes so ranks are
	// comparable as lexicographic values.
	lexOf [4]uint64
	a, c  dna.Code
}

// NewKMC2 builds the KMC2 ordering for m-mers packed under enc.
func NewKMC2(enc *dna.Encoding) *KMC2 {
	o := &KMC2{enc: enc, a: enc.MustEncode('A'), c: enc.MustEncode('C')}
	for code := dna.Code(0); code < 4; code++ {
		o.lexOf[code] = uint64(dna.Lexicographic.MustEncode(enc.Decode(code)))
	}
	return o
}

// Rank implements Ordering.
func (o *KMC2) Rank(w dna.Kmer, m int) uint64 {
	var lex uint64
	for i := 0; i < m; i++ {
		lex = lex<<2 | o.lexOf[w.Base(m, i)]
	}
	if m >= 3 {
		b0, b1, b2 := w.Base(m, 0), w.Base(m, 1), w.Base(m, 2)
		if b0 == o.a && b2 == o.a && (b1 == o.a || b1 == o.c) {
			// Demote AAA* and ACA* below every ordinary m-mer.
			lex |= 1 << (2 * uint(m))
		}
	}
	return lex
}

// Name implements Ordering.
func (o *KMC2) Name() string { return "kmc2" }

// Hashed orders m-mers by a MurmurHash3 finalizer of their packed value —
// a pseudo-random total order that equalizes bin sizes most aggressively.
type Hashed struct {
	// Seed derives independent orders; 0 is fine.
	Seed uint64
}

// Rank implements Ordering.
func (o Hashed) Rank(w dna.Kmer, _ int) uint64 { return hash.Mix64Seeded(uint64(w), o.Seed) }

// Name implements Ordering.
func (o Hashed) Name() string { return "hashed" }

// ByName returns a named ordering: "value", "kmc2" or "hashed".
func ByName(name string, enc *dna.Encoding) (Ordering, error) {
	switch name {
	case "value":
		return Value{}, nil
	case "kmc2":
		return NewKMC2(enc), nil
	case "hashed":
		return Hashed{}, nil
	default:
		return nil, fmt.Errorf("minimizer: unknown ordering %q", name)
	}
}

// Of returns the minimizer of the k-mer w: the m-mer with minimal rank,
// leftmost occurrence winning ties. This is the MINIMIZER(kmer) primitive of
// Alg. 2; it scans the k-m+1 m-mer positions of the k-mer.
func Of(w dna.Kmer, k, m int, ord Ordering) dna.Kmer {
	if m <= 0 || m > k {
		panic(fmt.Sprintf("minimizer: m=%d outside (0,k=%d]", m, k))
	}
	best := w.Sub(k, 0, m)
	bestRank := ord.Rank(best, m)
	for i := 1; i+m <= k; i++ {
		cand := w.Sub(k, i, m)
		if r := ord.Rank(cand, m); r < bestRank {
			best, bestRank = cand, r
		}
	}
	return best
}
