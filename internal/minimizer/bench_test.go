package minimizer

import (
	"math/rand"
	"testing"

	"dedukt/internal/dna"
)

func benchRead(n int) []byte {
	rng := rand.New(rand.NewSource(1))
	seq := make([]byte, n)
	for i := range seq {
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	return seq
}

func BenchmarkOf(b *testing.B) {
	w := dna.MustKmer(&dna.Random, "GATTACAGATTACAGAT")
	for _, tc := range []struct {
		name string
		ord  Ordering
	}{
		{"value", Value{}},
		{"kmc2", NewKMC2(&dna.Random)},
		{"hashed", Hashed{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var min dna.Kmer
			for i := 0; i < b.N; i++ {
				min = Of(w, 17, 7, tc.ord)
			}
			_ = min
		})
	}
}

func BenchmarkBuildWindowed(b *testing.B) {
	seq := benchRead(64 << 10)
	c := Config{K: 17, M: 7, Window: 15, Ord: Value{}}
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := BuildWindowed(&dna.Random, seq, c, func(Supermer) { n++ }); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no supermers")
		}
	}
}

func BenchmarkBuildSequential(b *testing.B) {
	seq := benchRead(64 << 10)
	c := Config{K: 17, M: 7, Window: 1 << 20, Ord: Value{}}
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := BuildSequential(&dna.Random, seq, c, func(Supermer) {}); err != nil {
			b.Fatal(err)
		}
	}
}
