package minimizer

import (
	"math/rand"
	"sort"
	"testing"

	"dedukt/internal/dna"
	"dedukt/internal/kmer"
)

func seqCfg(k, m, window int) Config {
	return Config{K: k, M: m, Window: window, Ord: Value{}}
}

func collectSeq(t *testing.T, enc *dna.Encoding, seq []byte, c Config, windowed bool) []Supermer {
	t.Helper()
	var out []Supermer
	var err error
	if windowed {
		err = BuildWindowed(enc, seq, c, func(s Supermer) { out = append(out, s) })
	} else {
		err = BuildSequential(enc, seq, c, func(s Supermer) { out = append(out, s) })
	}
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// sortedKmers returns the sorted multiset of k-mers contained in supermers.
func sortedKmers(sms []Supermer, k int) []dna.Kmer {
	var all []dna.Kmer
	for i := range sms {
		all = sms[i].Kmers(all, k)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

func TestSupermerBasicRun(t *testing.T) {
	// The Fig. 5 scenario: two consecutive k-mers sharing a minimizer merge
	// into one supermer of k+1 bases. Under true lexicographic order with
	// k=3, m=2, the read CAAG works: CAA and AAG both have minimizer AA.
	enc := &dna.Lexicographic
	c := seqCfg(3, 2, 100)
	sms := collectSeq(t, enc, []byte("CAAG"), c, false)
	if len(sms) != 1 {
		t.Fatalf("got %d supermers, want 1", len(sms))
	}
	s := sms[0]
	if got := s.Seq.String(enc); got != "CAAG" {
		t.Fatalf("supermer seq = %q, want CAAG", got)
	}
	if s.NKmers != 2 || s.Len(c.K) != 4 {
		t.Fatalf("NKmers=%d Len=%d", s.NKmers, s.Len(c.K))
	}
	if got := s.Min.String(enc, c.M); got != "AA" {
		t.Fatalf("minimizer = %q, want AA", got)
	}
	// And a minimizer change splits: GTC (min GT) then TCA (min CA).
	sms = collectSeq(t, enc, []byte("GTCA"), c, false)
	if len(sms) != 2 {
		t.Fatalf("GTCA: got %d supermers, want 2", len(sms))
	}
}

func TestSupermerMinimizerInvariant(t *testing.T) {
	// Every k-mer inside a supermer must have the supermer's minimizer,
	// and be assigned to the same destination regardless of context.
	rng := rand.New(rand.NewSource(21))
	enc := &dna.Random
	c := seqCfg(17, 7, 15)
	for trial := 0; trial < 40; trial++ {
		seq := randomRead(rng, 300, 0.02)
		for _, windowed := range []bool{false, true} {
			for _, s := range collectSeq(t, enc, seq, c, windowed) {
				var ks []dna.Kmer
				ks = s.Kmers(ks, c.K)
				if len(ks) != s.NKmers {
					t.Fatalf("Kmers returned %d, NKmers=%d", len(ks), s.NKmers)
				}
				for _, w := range ks {
					if min := Of(w, c.K, c.M, c.Ord); min != s.Min {
						t.Fatalf("kmer minimizer %x != supermer minimizer %x", min, s.Min)
					}
				}
			}
		}
	}
}

func TestSupermerKmerMultisetEquality(t *testing.T) {
	// Property (b) of DESIGN.md: the k-mer multiset recovered from the
	// supermers equals the sliding-window multiset, for both builders, any
	// window size, with invalid bases present.
	rng := rand.New(rand.NewSource(22))
	enc := &dna.Random
	for trial := 0; trial < 60; trial++ {
		k := 4 + rng.Intn(20)
		m := 1 + rng.Intn(k/2+1)
		window := 1 + rng.Intn(20)
		c := seqCfg(k, m, window)
		seq := randomRead(rng, 50+rng.Intn(400), 0.03)
		want := kmer.Extract(nil, enc, seq, k)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, windowed := range []bool{false, true} {
			got := sortedKmers(collectSeq(t, enc, seq, c, windowed), k)
			if len(got) != len(want) {
				t.Fatalf("trial %d windowed=%v: %d kmers vs %d", trial, windowed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d windowed=%v: kmer %d differs", trial, windowed, i)
				}
			}
		}
	}
}

func TestWindowedLengthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	enc := &dna.Random
	c := seqCfg(17, 7, 15)
	maxB := c.MaxSupermerBases()
	if maxB != 31 {
		t.Fatalf("max supermer bases = %d, want 31 (fits one 64-bit word)", maxB)
	}
	for trial := 0; trial < 30; trial++ {
		seq := randomRead(rng, 1000, 0)
		for _, s := range collectSeq(t, enc, seq, c, true) {
			if s.Len(c.K) > maxB {
				t.Fatalf("windowed supermer length %d > %d", s.Len(c.K), maxB)
			}
		}
	}
}

func TestSequentialAtLeastAsLongAsWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	enc := &dna.Random
	c := seqCfg(17, 7, 15)
	seq := randomRead(rng, 2000, 0)
	seqSms := collectSeq(t, enc, seq, c, false)
	winSms := collectSeq(t, enc, seq, c, true)
	if len(seqSms) > len(winSms) {
		// Sequential merges everything windowed does and possibly more.
		t.Fatalf("sequential produced MORE supermers (%d) than windowed (%d)", len(seqSms), len(winSms))
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// §IV-A: a 19-base read with k=8, m=4 (lexicographic ordering) whose
	// supermer decomposition has 3 supermers communicates 12+3*(8-1) = 33
	// bases versus (19-8+1)*8 = 96 in k-mer mode — a 2.9× reduction. The
	// figure's exact read is not in the text, so find a 19-base read with 3
	// maximal supermers and verify the arithmetic the paper derives.
	enc := &dna.Lexicographic
	c := seqCfg(8, 4, 1000) // window larger than the read: maximal supermers
	rng := rand.New(rand.NewSource(1))
	for {
		seq := randomRead(rng, 19, 0)
		sms := collectSeq(t, enc, seq, c, false)
		if len(sms) != 3 {
			continue
		}
		total := 0
		nk := 0
		for _, s := range sms {
			total += s.Len(c.K)
			nk += s.NKmers
		}
		if nk != 12 {
			t.Fatalf("19-base read must contain 12 8-mers, got %d", nk)
		}
		if total != 33 {
			t.Fatalf("3 supermers over 12 kmers must span 33 bases, got %d", total)
		}
		kmerBases := nk * c.K
		if kmerBases != 96 {
			t.Fatalf("k-mer mode bases = %d, want 96", kmerBases)
		}
		reduction := float64(kmerBases) / float64(total)
		if reduction < 2.85 || reduction > 2.95 {
			t.Fatalf("reduction = %.2f, want ≈2.9", reduction)
		}
		return
	}
}

func TestBuildValidation(t *testing.T) {
	enc := &dna.Random
	bad := []Config{
		{K: 0, M: 1, Window: 1, Ord: Value{}},
		{K: 33, M: 1, Window: 1, Ord: Value{}},
		{K: 5, M: 6, Window: 1, Ord: Value{}},
		{K: 5, M: 0, Window: 1, Ord: Value{}},
		{K: 5, M: 3, Window: 0, Ord: Value{}},
		{K: 5, M: 3, Window: 1, Ord: nil},
	}
	for i, c := range bad {
		if err := BuildSequential(enc, []byte("ACGT"), c, func(Supermer) {}); err == nil {
			t.Errorf("config %d should fail sequential", i)
		}
		if err := BuildWindowed(enc, []byte("ACGT"), c, func(Supermer) {}); err == nil {
			t.Errorf("config %d should fail windowed", i)
		}
	}
}

func TestBuildShortAndInvalidReads(t *testing.T) {
	enc := &dna.Random
	c := seqCfg(8, 4, 15)
	for _, seq := range []string{"", "ACG", "NNNNNNNNNNNN"} {
		sms := collectSeq(t, enc, []byte(seq), c, true)
		if len(sms) != 0 {
			t.Errorf("%q yielded %d supermers", seq, len(sms))
		}
	}
}

func TestCollectStats(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	enc := &dna.Random
	c := seqCfg(17, 7, 15)
	reads := make([][]byte, 50)
	for i := range reads {
		reads[i] = randomRead(rng, 500, 0.01)
	}
	var kept []Supermer
	st, err := Collect(enc, reads, c, func(s Supermer) { kept = append(kept, s) })
	if err != nil {
		t.Fatal(err)
	}
	if st.NSupermers != len(kept) {
		t.Fatalf("stats count %d != kept %d", st.NSupermers, len(kept))
	}
	wantK := 0
	for _, r := range reads {
		wantK += kmer.Count(enc, r, c.K)
	}
	if st.NKmers != wantK {
		t.Fatalf("stats kmers %d != scanner count %d", st.NKmers, wantK)
	}
	if st.MaxLenBases > c.MaxSupermerBases() {
		t.Fatalf("max supermer %d > bound %d", st.MaxLenBases, c.MaxSupermerBases())
	}
	// The reduction at the paper's operating point is substantial (§V-D
	// reports ~4× at window 15, counting the k-mer payload in bases).
	if r := st.Reduction(c.K); r < 2.5 {
		t.Fatalf("volume reduction %.2f, expected > 2.5 at k=17,m=7,w=15", r)
	}
	if st.AvgLen() <= float64(c.K) {
		t.Fatalf("avg supermer length %.1f should exceed k=%d", st.AvgLen(), c.K)
	}
}

func TestSmallerMGivesFewerSupermers(t *testing.T) {
	// §V-D: "Using a smaller minimizer length creates an opportunity to
	// have longer but fewer supermers" (Table II, m=7 vs m=9).
	rng := rand.New(rand.NewSource(26))
	enc := &dna.Random
	reads := make([][]byte, 80)
	for i := range reads {
		reads[i] = randomRead(rng, 800, 0)
	}
	counts := map[int]int{}
	for _, m := range []int{7, 9} {
		c := Config{K: 17, M: m, Window: 15, Ord: Value{}}
		st, err := Collect(enc, reads, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[m] = st.NSupermers
	}
	if counts[7] >= counts[9] {
		t.Fatalf("m=7 gave %d supermers, m=9 gave %d — expected fewer at m=7", counts[7], counts[9])
	}
}

func randomRead(rng *rand.Rand, n int, nRate float64) []byte {
	seq := make([]byte, n)
	for i := range seq {
		if nRate > 0 && rng.Float64() < nRate {
			seq[i] = 'N'
		} else {
			seq[i] = "ACGT"[rng.Intn(4)]
		}
	}
	return seq
}
