package kernels

import (
	"fmt"

	"dedukt/internal/dna"
	"dedukt/internal/gpusim"
)

// ParseConfig parameterizes the k-mer parsing kernel.
type ParseConfig struct {
	// Enc is the 2-bit base encoding.
	Enc *dna.Encoding
	// K is the k-mer length.
	K int
	// NumDest is the number of destination ranks (hash-table partitions).
	NumDest int
	// Canonical, when true, replaces each k-mer with the smaller of itself
	// and its reverse complement before hashing, so a k-mer and its RC
	// share one table entry. The paper does not canonicalize; this is a
	// library option.
	Canonical bool
}

// Validate checks the configuration.
func (c ParseConfig) Validate() error {
	if c.Enc == nil {
		return fmt.Errorf("kernels: nil encoding")
	}
	if c.K <= 0 || c.K > dna.MaxK {
		return fmt.Errorf("kernels: k=%d outside (0,%d]", c.K, dna.MaxK)
	}
	if c.NumDest <= 0 {
		return fmt.Errorf("kernels: NumDest=%d", c.NumDest)
	}
	return nil
}

// grow returns s resized to n elements, reusing its backing array when it is
// large enough (contents are unspecified — callers overwrite).
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ParseScratch holds the reusable buffers of one rank's ParseKmers calls:
// the staged keys/destinations, the per-warp histogram and cursors, and the
// contiguous output arena the per-destination parts are views into. A zero
// value is ready to use; reusing one across rounds removes all per-round
// allocation from the parse path. Parts returned by ParseKmers alias the
// scratch and are valid until the next call with the same scratch.
type ParseScratch struct {
	keys    []uint64
	dests   []int32
	counts  []int32
	cursors []int32
	destOff []int
	out     []uint64
	parts   [][]uint64
}

// ParseKmers is the GPU parse & process kernel of §III-B.1 (Fig. 2),
// implemented as the real GPU buffer-packing pattern: pass 1 cuts the
// concatenated base array into one position per thread, builds and hashes
// each k-mer (coalesced reads — consecutive threads read consecutive bases)
// and bumps a per-warp destination histogram in shared memory; an exclusive
// prefix sum over (warp × destination) then assigns every warp a private
// cursor range; pass 2 replays the staged keys with contention-free
// scattered writes into one contiguous buffer partitioned by destination.
// No global atomics and no locks — the histogram lives in per-warp shared
// memory and the scatter slots are disjoint by construction.
//
// The returned out[d] holds the packed k-mers bound for rank d, as views
// into one contiguous arena in scr (deterministic order: warp-major, then
// position). The returned stats aggregate all three launches; the pipeline
// prices them as one fused launch.
func ParseKmers(dev *gpusim.Device, cfg ParseConfig, data []byte, scr *ParseScratch) (out [][]uint64, st gpusim.KernelStats, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, st, err
	}
	if scr == nil {
		scr = &ParseScratch{}
	}
	threads := len(data) - cfg.K + 1
	if threads < 0 {
		threads = 0
	}
	ws := dev.Config().WarpSize
	nWarps := (threads + ws - 1) / ws
	numDest := cfg.NumDest

	scr.keys = grow(scr.keys, threads)
	scr.dests = grow(scr.dests, threads)
	scr.counts = grow(scr.counts, nWarps*numDest)
	scr.cursors = grow(scr.cursors, nWarps*numDest)
	scr.destOff = grow(scr.destOff, numDest+1)
	for i := range scr.counts {
		scr.counts[i] = 0
	}

	dataAddr := dev.Alloc(int64(len(data)))
	keysAddr := dev.Alloc(int64(8 * threads))
	destsAddr := dev.Alloc(int64(4 * threads))
	countsAddr := dev.Alloc(int64(4 * nWarps * numDest))
	bufAddr := dev.Alloc(int64(8 * threads))

	enc, k := cfg.Enc, cfg.K
	keys, dests, counts := scr.keys, scr.dests, scr.counts
	dev.ResetContention()

	// Pass 1: parse, hash, stage, histogram. The per-warp histogram bump is
	// a shared-memory increment (warp lanes execute sequentially within one
	// goroutine, so no synchronization is needed — the same privatization a
	// real kernel gets from shared memory plus warp-synchronous execution).
	st, err = dev.Launch(gpusim.LaunchSpec{Name: "parse_kmers", Threads: threads}, func(tid int, ctx *gpusim.Ctx) {
		dests[tid] = -1 // scratch reuse leaves stale values
		// One overlapped read of the thread's k bases; warp lanes share
		// sectors, which is exactly the coalescing §III-B.1 engineers for.
		ctx.Read(dataAddr+uint64(tid), k)
		var w dna.Kmer
		for i := 0; i < k; i++ {
			code, ok := enc.Encode(data[tid+i])
			ctx.Compute(OpsEncodeBase)
			if !ok {
				return // window crosses a separator or an N: no k-mer here
			}
			w = w.Append(k, code)
			ctx.Compute(OpsKmerRoll)
		}
		if cfg.Canonical {
			w = w.Canonical(enc, k)
			ctx.Compute(k * OpsKmerRoll) // reverse-complement unrolled
		}
		ctx.Compute(OpsHash + OpsDestSelect)
		dest := DestOf(uint64(w), numDest)

		keys[tid] = uint64(w)
		dests[tid] = int32(dest)
		counts[(tid/ws)*numDest+dest]++
		ctx.Compute(OpsEmit) // shared-memory histogram bump
		// Coalesced staging stores of key and destination.
		ctx.Write(keysAddr+uint64(tid*8), 8)
		ctx.Write(destsAddr+uint64(tid*4), 4)
	})
	if err != nil {
		return nil, st, err
	}

	// Exclusive prefix sum over (warp × destination), destination-major, so
	// each destination's range is contiguous in the output arena. The host
	// loop computes the real offsets; the cost-model launch charges the
	// device price of the equivalent Blelloch scan.
	total := 0
	for d := 0; d < numDest; d++ {
		scr.destOff[d] = total
		for w := 0; w < nWarps; w++ {
			scr.cursors[w*numDest+d] = int32(total)
			total += int(counts[w*numDest+d])
		}
	}
	scr.destOff[numDest] = total
	scanSt, err := dev.Launch(gpusim.LaunchSpec{Name: "scan_offsets", Threads: nWarps * numDest}, func(tid int, ctx *gpusim.Ctx) {
		ctx.Read(countsAddr+uint64(tid*4), 4)
		ctx.Compute(OpsScanStep)
		ctx.Write(countsAddr+uint64(tid*4), 4)
	})
	if err != nil {
		return nil, st, err
	}
	st.Add(scanSt)

	// Pass 2: contention-free scatter through the private cursors.
	scr.out = grow(scr.out, total)
	outBuf, cursors := scr.out, scr.cursors
	scatterSt, err := dev.Launch(gpusim.LaunchSpec{Name: "scatter_kmers", Threads: threads}, func(tid int, ctx *gpusim.Ctx) {
		ctx.Read(keysAddr+uint64(tid*8), 8)
		ctx.Read(destsAddr+uint64(tid*4), 4)
		d := dests[tid]
		if d < 0 {
			return // no k-mer at this position
		}
		cur := (tid/ws)*numDest + int(d)
		slot := cursors[cur]
		cursors[cur] = slot + 1
		outBuf[slot] = keys[tid]
		ctx.Compute(OpsEmit) // cursor bump + slot math
		ctx.Write(bufAddr+uint64(slot)*8, 8)
	})
	if err != nil {
		return nil, st, err
	}
	st.Add(scatterSt)

	scr.parts = grow(scr.parts, numDest)
	for d := 0; d < numDest; d++ {
		lo, hi := scr.destOff[d], scr.destOff[d+1]
		scr.parts[d] = outBuf[lo:hi:hi]
	}
	return scr.parts, st, nil
}

// CountDests is a host-side helper mirroring the kernel's destination
// assignment: it returns per-destination k-mer counts for a batch of packed
// k-mers (used to size buffers and to compute Table III-style partition
// loads without running a device).
func CountDests(kmers []uint64, numDest int) []uint64 {
	counts := make([]uint64, numDest)
	for _, w := range kmers {
		counts[DestOf(w, numDest)]++
	}
	return counts
}
