package kernels

import (
	"fmt"
	"sync"

	"dedukt/internal/dna"
	"dedukt/internal/gpusim"
)

// ParseConfig parameterizes the k-mer parsing kernel.
type ParseConfig struct {
	// Enc is the 2-bit base encoding.
	Enc *dna.Encoding
	// K is the k-mer length.
	K int
	// NumDest is the number of destination ranks (hash-table partitions).
	NumDest int
	// Canonical, when true, replaces each k-mer with the smaller of itself
	// and its reverse complement before hashing, so a k-mer and its RC
	// share one table entry. The paper does not canonicalize; this is a
	// library option.
	Canonical bool
}

// Validate checks the configuration.
func (c ParseConfig) Validate() error {
	if c.Enc == nil {
		return fmt.Errorf("kernels: nil encoding")
	}
	if c.K <= 0 || c.K > dna.MaxK {
		return fmt.Errorf("kernels: k=%d outside (0,%d]", c.K, dna.MaxK)
	}
	if c.NumDest <= 0 {
		return fmt.Errorf("kernels: NumDest=%d", c.NumDest)
	}
	return nil
}

// ParseKmers is the GPU parse & process kernel of §III-B.1 (Fig. 2): the
// concatenated, separator-delimited base array is cut into one position per
// thread; each thread builds the k-mer starting at its base (consecutive
// threads read consecutive bases — coalesced), hashes it to a destination
// rank, and pushes the packed word into that rank's outgoing buffer with an
// atomic cursor bump.
//
// The returned out[d] holds the packed k-mers bound for rank d. Buffer
// order within a destination is unspecified (as with any atomic-append GPU
// buffer); the k-mer multiset is deterministic.
func ParseKmers(dev *gpusim.Device, cfg ParseConfig, data []byte) (out [][]uint64, st gpusim.KernelStats, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, st, err
	}
	threads := len(data) - cfg.K + 1
	if threads < 0 {
		threads = 0
	}
	out = make([][]uint64, cfg.NumDest)
	locks := make([]sync.Mutex, cfg.NumDest)

	dataAddr := dev.Alloc(int64(len(data)))
	tailsAddr := dev.Alloc(int64(4 * cfg.NumDest))
	bufAddr := make([]uint64, cfg.NumDest)
	for d := range bufAddr {
		bufAddr[d] = dev.Alloc(int64(8 * (threads + 1)))
	}

	enc, k := cfg.Enc, cfg.K
	dev.ResetContention()
	st, err = dev.Launch(gpusim.LaunchSpec{Name: "parse_kmers", Threads: threads}, func(tid int, ctx *gpusim.Ctx) {
		// One overlapped read of the thread's k bases; warp lanes share
		// sectors, which is exactly the coalescing §III-B.1 engineers for.
		ctx.Read(dataAddr+uint64(tid), k)
		var w dna.Kmer
		for i := 0; i < k; i++ {
			code, ok := enc.Encode(data[tid+i])
			ctx.Compute(OpsEncodeBase)
			if !ok {
				return // window crosses a separator or an N: no k-mer here
			}
			w = w.Append(k, code)
			ctx.Compute(OpsKmerRoll)
		}
		if cfg.Canonical {
			w = w.Canonical(enc, k)
			ctx.Compute(k * OpsKmerRoll) // reverse-complement unrolled
		}
		ctx.Compute(OpsHash + OpsDestSelect)
		dest := DestOf(uint64(w), cfg.NumDest)

		// Reserve a slot: atomicAdd on the destination's tail counter.
		ctx.Atomic(tailsAddr+uint64(dest*4), 4)
		locks[dest].Lock()
		slot := len(out[dest])
		out[dest] = append(out[dest], uint64(w))
		locks[dest].Unlock()
		// Scattered store of the packed word into the partitioned buffer.
		ctx.Write(bufAddr[dest]+uint64(slot*8), 8)
		ctx.Compute(OpsEmit)
	})
	return out, st, err
}

// CountDests is a host-side helper mirroring the kernel's destination
// assignment: it returns per-destination k-mer counts for a batch of packed
// k-mers (used to size buffers and to compute Table III-style partition
// loads without running a device).
func CountDests(kmers []uint64, numDest int) []uint64 {
	counts := make([]uint64, numDest)
	for _, w := range kmers {
		counts[DestOf(w, numDest)]++
	}
	return counts
}
