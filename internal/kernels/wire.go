package kernels

import (
	"fmt"

	"dedukt/internal/dna"
	"dedukt/internal/minimizer"
)

// SupermerWire is the fixed-stride wire format for supermers (§IV-B/C): the
// packed bases occupy PackedBytes(Window+K-1) bytes, followed by one length
// byte holding the number of k-mers inside ("An extra buffer is also
// maintained to store the length of each supermer"). At the paper's
// operating point (k=17, window=15) the bases fit exactly one 64-bit
// machine word, so the stride is 9 bytes.
type SupermerWire struct {
	K      int
	Window int
}

// Stride returns the wire size of one supermer in bytes.
func (w SupermerWire) Stride() int { return dna.PackedBytes(w.Window+w.K-1) + 1 }

// Validate checks the format parameters.
func (w SupermerWire) Validate() error {
	if w.K <= 0 || w.K > dna.MaxK {
		return fmt.Errorf("kernels: wire k=%d outside (0,%d]", w.K, dna.MaxK)
	}
	if w.Window <= 0 || w.Window > 255 {
		return fmt.Errorf("kernels: wire window=%d outside (0,255]", w.Window)
	}
	return nil
}

// Encode appends the wire image of s to dst. The supermer must obey the
// windowed length bound.
func (w SupermerWire) Encode(dst []byte, s *minimizer.Supermer) []byte {
	if s.NKmers < 1 || s.NKmers > w.Window {
		panic(fmt.Sprintf("kernels: supermer with %d kmers exceeds window %d", s.NKmers, w.Window))
	}
	stride := w.Stride()
	start := len(dst)
	dst = append(dst, s.Seq.Bytes()...)
	for len(dst)-start < stride-1 {
		dst = append(dst, 0)
	}
	return append(dst, byte(s.NKmers))
}

// EncodeInto writes the wire image into buf (length ≥ Stride), for
// preallocated kernel output buffers. It returns the stride.
func (w SupermerWire) EncodeInto(buf []byte, s *minimizer.Supermer) int {
	stride := w.Stride()
	if len(buf) < stride {
		panic("kernels: wire buffer too small")
	}
	if s.NKmers < 1 || s.NKmers > w.Window {
		panic(fmt.Sprintf("kernels: supermer with %d kmers exceeds window %d", s.NKmers, w.Window))
	}
	n := copy(buf, s.Seq.Bytes())
	for i := n; i < stride-1; i++ {
		buf[i] = 0
	}
	buf[stride-1] = byte(s.NKmers)
	return stride
}

// Decode reads one supermer image from buf, returning the packed sequence
// view (no copy) and the k-mer count.
func (w SupermerWire) Decode(buf []byte) (seq dna.PackedSeq, nk int) {
	stride := w.Stride()
	if len(buf) < stride {
		panic("kernels: truncated supermer wire image")
	}
	nk = int(buf[stride-1])
	if nk < 1 || nk > w.Window {
		panic(fmt.Sprintf("kernels: corrupt supermer length byte %d (window %d)", nk, w.Window))
	}
	bases := nk + w.K - 1
	return dna.UnpackFrom(buf[:stride-1], bases), nk
}

// Count returns how many supermers a wire buffer holds.
func (w SupermerWire) Count(buf []byte) int {
	stride := w.Stride()
	if len(buf)%stride != 0 {
		panic(fmt.Sprintf("kernels: wire buffer length %d not a multiple of stride %d", len(buf), stride))
	}
	return len(buf) / stride
}
