package kernels

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"dedukt/internal/dna"
	"dedukt/internal/minimizer"
)

// ErrCorruptWire marks exchanged bytes that fail structural or checksum
// validation: a truncated image, an impossible length byte, a frame whose
// CRC does not match its payload, or a missing (dropped) frame. Receivers
// must treat exchanged bytes as untrusted — the fault-tolerant exchange
// (DESIGN.md §7) detects corruption through this error and retries the
// round instead of counting poisoned data.
var ErrCorruptWire = errors.New("kernels: corrupt wire data")

// SupermerWire is the fixed-stride wire format for supermers (§IV-B/C): the
// packed bases occupy PackedBytes(Window+K-1) bytes, followed by one length
// byte holding the number of k-mers inside ("An extra buffer is also
// maintained to store the length of each supermer"). At the paper's
// operating point (k=17, window=15) the bases fit exactly one 64-bit
// machine word, so the stride is 9 bytes.
type SupermerWire struct {
	K      int
	Window int
}

// Stride returns the wire size of one supermer in bytes.
func (w SupermerWire) Stride() int { return dna.PackedBytes(w.Window+w.K-1) + 1 }

// Validate checks the format parameters.
func (w SupermerWire) Validate() error {
	if w.K <= 0 || w.K > dna.MaxK {
		return fmt.Errorf("kernels: wire k=%d outside (0,%d]", w.K, dna.MaxK)
	}
	if w.Window <= 0 || w.Window > 255 {
		return fmt.Errorf("kernels: wire window=%d outside (0,255]", w.Window)
	}
	return nil
}

// Encode appends the wire image of s to dst. The supermer must obey the
// windowed length bound.
func (w SupermerWire) Encode(dst []byte, s *minimizer.Supermer) []byte {
	if s.NKmers < 1 || s.NKmers > w.Window {
		panic(fmt.Sprintf("kernels: supermer with %d kmers exceeds window %d", s.NKmers, w.Window))
	}
	stride := w.Stride()
	start := len(dst)
	dst = append(dst, s.Seq.Bytes()...)
	for len(dst)-start < stride-1 {
		dst = append(dst, 0)
	}
	return append(dst, byte(s.NKmers))
}

// EncodeInto writes the wire image into buf (length ≥ Stride), for
// preallocated kernel output buffers. It returns the stride.
func (w SupermerWire) EncodeInto(buf []byte, s *minimizer.Supermer) int {
	stride := w.Stride()
	if len(buf) < stride {
		panic("kernels: wire buffer too small")
	}
	if s.NKmers < 1 || s.NKmers > w.Window {
		panic(fmt.Sprintf("kernels: supermer with %d kmers exceeds window %d", s.NKmers, w.Window))
	}
	n := copy(buf, s.Seq.Bytes())
	for i := n; i < stride-1; i++ {
		buf[i] = 0
	}
	buf[stride-1] = byte(s.NKmers)
	return stride
}

// Decode reads one supermer image from buf, returning the packed sequence
// view (no copy) and the k-mer count. The bytes are exchanged data and
// therefore untrusted: a truncated image or an out-of-range length byte
// returns an error wrapping ErrCorruptWire, never a panic.
func (w SupermerWire) Decode(buf []byte) (seq dna.PackedSeq, nk int, err error) {
	stride := w.Stride()
	if len(buf) < stride {
		return dna.PackedSeq{}, 0, fmt.Errorf("%w: truncated supermer image (%d of %d bytes)",
			ErrCorruptWire, len(buf), stride)
	}
	nk = int(buf[stride-1])
	if nk < 1 || nk > w.Window {
		return dna.PackedSeq{}, 0, fmt.Errorf("%w: supermer length byte %d outside [1,%d]",
			ErrCorruptWire, nk, w.Window)
	}
	bases := nk + w.K - 1
	return dna.UnpackFrom(buf[:stride-1], bases), nk, nil
}

// Count returns how many supermers a wire buffer holds, or an error
// wrapping ErrCorruptWire when the buffer is not a whole number of images.
func (w SupermerWire) Count(buf []byte) (int, error) {
	stride := w.Stride()
	if len(buf)%stride != 0 {
		return 0, fmt.Errorf("%w: buffer length %d not a multiple of stride %d",
			ErrCorruptWire, len(buf), stride)
	}
	return len(buf) / stride, nil
}

// VerifyImages validates every supermer image in a wire buffer (structure
// and length bytes) without extracting k-mers, returning the image count.
// Counting kernels call it before launch so per-thread decodes cannot fail.
func (w SupermerWire) VerifyImages(buf []byte) (int, error) {
	n, err := w.Count(buf)
	if err != nil {
		return 0, err
	}
	stride := w.Stride()
	for i := 0; i < n; i++ {
		if _, _, err := w.Decode(buf[i*stride:]); err != nil {
			return 0, fmt.Errorf("supermer %d: %w", i, err)
		}
	}
	return n, nil
}

// Checksummed frames
//
// The exchange path wraps every per-destination payload in a frame so a
// receiver can detect in-flight corruption or loss before counting (the
// round-level retry of internal/pipeline keys off these failures). Frames
// exist in two flavors matching the two exchanged payload types: byte
// frames for supermer wire buffers and word frames for packed k-mers.
//
// Byte frame layout (header 12 bytes, little-endian):
//
//	[0:4)  magic "dkfr"
//	[4:8)  item count
//	[8:12) CRC32-C of the payload
//
// Word frame layout (header 1 word): low 32 bits item count, high 32 bits
// CRC32-C of the payload words' little-endian bytes.

// byteFrameHeader is the byte-frame header size.
const byteFrameHeader = 12

var frameMagic = [4]byte{'d', 'k', 'f', 'r'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// FrameBytes wraps a byte payload of the given item count in a checksummed
// frame.
func FrameBytes(payload []byte, items int) []byte {
	return AppendFrameBytes(make([]byte, 0, byteFrameHeader+len(payload)), payload, items)
}

// AppendFrameBytes appends the checksummed frame of payload to dst and
// returns the extended slice — the allocation-free form the exchange path
// uses to pack every destination's frame into one pooled arena.
func AppendFrameBytes(dst []byte, payload []byte, items int) []byte {
	var hdr [byteFrameHeader]byte
	copy(hdr[:], frameMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(items))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// UnframeBytes validates a byte frame and returns its payload (a view, not
// a copy) and item count. A nil frame (a dropped payload), bad magic, or a
// checksum mismatch returns an error wrapping ErrCorruptWire.
func UnframeBytes(frame []byte) (payload []byte, items int, err error) {
	if frame == nil {
		return nil, 0, fmt.Errorf("%w: missing frame (payload dropped)", ErrCorruptWire)
	}
	if len(frame) < byteFrameHeader {
		return nil, 0, fmt.Errorf("%w: frame truncated to %d bytes", ErrCorruptWire, len(frame))
	}
	if [4]byte(frame[:4]) != frameMagic {
		return nil, 0, fmt.Errorf("%w: bad frame magic %x", ErrCorruptWire, frame[:4])
	}
	items = int(binary.LittleEndian.Uint32(frame[4:]))
	payload = frame[byteFrameHeader:]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(frame[8:]); got != want {
		return nil, 0, fmt.Errorf("%w: frame checksum %08x != %08x", ErrCorruptWire, got, want)
	}
	return payload, items, nil
}

// wordsCRC checksums word payloads over their little-endian byte images.
func wordsCRC(words []uint64) uint32 {
	var buf [8]byte
	var crc uint32
	for _, w := range words {
		binary.LittleEndian.PutUint64(buf[:], w)
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	return crc
}

// FrameWords wraps a word payload (packed k-mers) in a one-word
// checksummed header.
func FrameWords(words []uint64) []uint64 {
	return AppendFrameWords(make([]uint64, 0, 1+len(words)), words)
}

// AppendFrameWords appends the framed payload to dst and returns the
// extended slice (see AppendFrameBytes).
func AppendFrameWords(dst []uint64, words []uint64) []uint64 {
	dst = append(dst, uint64(wordsCRC(words))<<32|uint64(uint32(len(words))))
	return append(dst, words...)
}

// UnframeWords validates a word frame and returns its payload (a view, not
// a copy). A nil frame, a count mismatch, or a checksum mismatch returns an
// error wrapping ErrCorruptWire.
func UnframeWords(frame []uint64) ([]uint64, error) {
	if frame == nil {
		return nil, fmt.Errorf("%w: missing frame (payload dropped)", ErrCorruptWire)
	}
	if len(frame) < 1 {
		return nil, fmt.Errorf("%w: word frame missing header", ErrCorruptWire)
	}
	words := frame[1:]
	if count := uint32(frame[0]); count != uint32(len(words)) {
		return nil, fmt.Errorf("%w: word frame count %d != payload %d", ErrCorruptWire, count, len(words))
	}
	if got, want := wordsCRC(words), uint32(frame[0]>>32); got != want {
		return nil, fmt.Errorf("%w: word frame checksum %08x != %08x", ErrCorruptWire, got, want)
	}
	return words, nil
}
