package kernels

import (
	"fmt"

	"dedukt/internal/dna"
	"dedukt/internal/gpusim"
	"dedukt/internal/minimizer"
)

// SupermerConfig parameterizes the supermer construction kernel.
type SupermerConfig struct {
	// Enc is the 2-bit base encoding (dna.Random reproduces the paper's
	// ordering when paired with minimizer.Value).
	Enc *dna.Encoding
	// C carries k, m, window and the minimizer ordering.
	C minimizer.Config
	// NumDest is the number of destination ranks.
	NumDest int
	// DestMap, when non-nil, overrides hash partitioning: the supermer
	// with minimizer w goes to rank DestMap[w]. It must have 4^m entries
	// with every value < NumDest (the balanced assignment of §VII's
	// future work). When nil, destinations come from DestOf.
	DestMap []uint16
}

// Validate checks the configuration.
func (c SupermerConfig) Validate() error {
	if c.Enc == nil {
		return fmt.Errorf("kernels: nil encoding")
	}
	if err := c.C.Validate(); err != nil {
		return err
	}
	if c.NumDest <= 0 {
		return fmt.Errorf("kernels: NumDest=%d", c.NumDest)
	}
	if c.DestMap != nil {
		if len(c.DestMap) != 1<<(2*uint(c.C.M)) {
			return fmt.Errorf("kernels: DestMap has %d entries, want 4^%d", len(c.DestMap), c.C.M)
		}
	}
	return (SupermerWire{K: c.C.K, Window: c.C.Window}).Validate()
}

// superDesc describes one supermer found by the descriptor pass: nk k-mers
// whose bases start at data[start], bound for rank dest.
type superDesc struct {
	start int32
	nk    int32
	dest  int32
}

// SupermerScratch holds the reusable buffers of one rank's BuildSupermers
// calls: per-thread supermer descriptors, the per-warp histogram and
// cursors, and the contiguous wire arena the per-destination parts are
// views into. A zero value is ready to use. Parts returned by
// BuildSupermers alias the scratch and are valid until the next call with
// the same scratch.
type SupermerScratch struct {
	descs   []superDesc
	nDescs  []int32
	counts  []int32
	cursors []int32
	destOff []int
	out     []byte
	parts   [][]byte
}

// BuildSupermers is the GPU supermer kernel of §IV-B (Fig. 5, Alg. 2),
// implemented with the same count/scan/scatter buffer scheme as ParseKmers:
// pass 1 cuts the k-mer start positions into chunks of Window, one thread
// per chunk; each thread sequentially rolls through its k-mers, computes
// each k-mer's minimizer in registers, extends the current supermer while
// the minimizer repeats, and records completed supermers as descriptors
// while bumping a per-warp destination histogram. After an exclusive prefix
// sum assigns cursor ranges, pass 2 packs each supermer's bases directly
// into its wire-format slot (packed bases + length byte) in one contiguous
// buffer partitioned by destination — no global atomics, no locks, no
// intermediate sequence objects.
//
// The emitted supermers are exactly those of minimizer.BuildWindowed over
// the same buffer — the property tests rely on this equivalence.
func BuildSupermers(dev *gpusim.Device, cfg SupermerConfig, data []byte, scr *SupermerScratch) (out [][]byte, st gpusim.KernelStats, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, st, err
	}
	if scr == nil {
		scr = &SupermerScratch{}
	}
	k, m, window, ord := cfg.C.K, cfg.C.M, cfg.C.Window, cfg.C.Ord
	wire := SupermerWire{K: k, Window: window}
	stride := wire.Stride()

	positions := len(data) - k + 1
	if positions < 0 {
		positions = 0
	}
	threads := (positions + window - 1) / window
	ws := dev.Config().WarpSize
	nWarps := (threads + ws - 1) / ws
	numDest := cfg.NumDest

	// A thread owns Window k-mer positions, so it can emit at most Window
	// supermers (each holds ≥ 1 k-mer).
	scr.descs = grow(scr.descs, threads*window)
	scr.nDescs = grow(scr.nDescs, threads)
	scr.counts = grow(scr.counts, nWarps*numDest)
	scr.cursors = grow(scr.cursors, nWarps*numDest)
	scr.destOff = grow(scr.destOff, numDest+1)
	for i := range scr.counts {
		scr.counts[i] = 0
	}

	dataAddr := dev.Alloc(int64(len(data)))
	descsAddr := dev.Alloc(int64(12 * threads * window))
	countsAddr := dev.Alloc(int64(4 * nWarps * numDest))
	mapAddr := uint64(0)
	if cfg.DestMap != nil {
		mapAddr = dev.Alloc(int64(2 * len(cfg.DestMap)))
	}
	bufAddr := dev.Alloc(int64(stride * (positions + 1)))

	enc := cfg.Enc
	descs, nDescs, counts := scr.descs, scr.nDescs, scr.counts
	dev.ResetContention()

	// Pass 1: roll minimizers, emit descriptors, build the per-warp
	// destination histogram in shared memory.
	st, err = dev.Launch(gpusim.LaunchSpec{Name: "build_supermers", Threads: threads}, func(tid int, ctx *gpusim.Ctx) {
		nDescs[tid] = 0
		lo := tid * window // first k-mer start position owned
		hi := lo + window  // one past the last owned position
		if hi > positions {
			hi = positions
		}
		// One read covers the thread's whole chunk of bases.
		span := hi - lo + k - 1
		ctx.Read(dataAddr+uint64(lo), span)

		var (
			w       dna.Kmer
			valid   int
			open    bool
			start0  int
			curMin  dna.Kmer
			nk      int
			lastPos int
		)
		flush := func() {
			if !open {
				return
			}
			open = false
			var dest int
			if cfg.DestMap != nil {
				// Table-driven destination: one small scattered load.
				ctx.Read(mapAddr+uint64(curMin)*2, 2)
				ctx.Compute(OpsEmit)
				dest = int(cfg.DestMap[curMin])
			} else {
				ctx.Compute(OpsHash + OpsDestSelect + OpsEmit)
				dest = DestOf(uint64(curMin), cfg.NumDest)
			}
			i := nDescs[tid]
			descs[tid*window+int(i)] = superDesc{start: int32(start0), nk: int32(nk), dest: int32(dest)}
			nDescs[tid] = i + 1
			counts[(tid/ws)*numDest+dest]++
			ctx.Compute(OpsEmit) // shared-memory histogram bump
			// Coalesced staging store of the descriptor.
			ctx.Write(descsAddr+uint64((tid*window+int(i))*12), 12)
		}
		// Roll bases from the chunk start; k-mers whose start lies in
		// [lo, hi) are owned by this thread.
		for p := lo; p < hi+k-1 && p < len(data); p++ {
			code, ok := enc.Encode(data[p])
			ctx.Compute(OpsEncodeBase)
			if !ok {
				valid = 0
				flush()
				continue
			}
			w = w.Append(k, code)
			ctx.Compute(OpsKmerRoll)
			valid++
			if valid < k {
				continue
			}
			pos := p - k + 1
			if pos < lo || pos >= hi {
				continue
			}
			ctx.Compute((k - m + 1) * OpsMinimizerCand)
			min := minimizer.Of(w, k, m, ord)
			if open && pos == lastPos+1 && min == curMin {
				nk++
				lastPos = pos
				continue
			}
			flush()
			open = true
			start0 = pos
			curMin = min
			nk = 1
			lastPos = pos
		}
		flush()
	})
	if err != nil {
		return nil, st, err
	}

	// Exclusive prefix sum over (warp × destination), destination-major.
	total := 0
	for d := 0; d < numDest; d++ {
		scr.destOff[d] = total
		for w := 0; w < nWarps; w++ {
			scr.cursors[w*numDest+d] = int32(total)
			total += int(counts[w*numDest+d])
		}
	}
	scr.destOff[numDest] = total
	scanSt, err := dev.Launch(gpusim.LaunchSpec{Name: "scan_offsets", Threads: nWarps * numDest}, func(tid int, ctx *gpusim.Ctx) {
		ctx.Read(countsAddr+uint64(tid*4), 4)
		ctx.Compute(OpsScanStep)
		ctx.Write(countsAddr+uint64(tid*4), 4)
	})
	if err != nil {
		return nil, st, err
	}
	st.Add(scanSt)

	// Pass 2: pack each supermer's bases straight into its wire slot.
	scr.out = grow(scr.out, total*stride)
	outBuf, cursors := scr.out, scr.cursors
	scatterSt, err := dev.Launch(gpusim.LaunchSpec{Name: "scatter_supermers", Threads: threads}, func(tid int, ctx *gpusim.Ctx) {
		n := int(nDescs[tid])
		for i := 0; i < n; i++ {
			ctx.Read(descsAddr+uint64((tid*window+i)*12), 12)
			d := descs[tid*window+i]
			cur := (tid/ws)*numDest + int(d.dest)
			slot := int(cursors[cur])
			cursors[cur] = int32(slot + 1)
			off := slot * stride
			img := outBuf[off : off+stride]
			for b := range img {
				img[b] = 0
			}
			nBases := int(d.nk) + k - 1
			ctx.Read(dataAddr+uint64(d.start), nBases)
			for b := 0; b < nBases; b++ {
				code := enc.MustEncode(data[int(d.start)+b])
				img[b/4] |= byte(code&3) << (2 * uint(b%4))
			}
			ctx.Compute(OpsPackBase * nBases)
			img[stride-1] = byte(d.nk)
			ctx.Compute(OpsEmit)
			ctx.Write(bufAddr+uint64(off), stride)
		}
	})
	if err != nil {
		return nil, st, err
	}
	st.Add(scatterSt)

	scr.parts = grow(scr.parts, numDest)
	for d := 0; d < numDest; d++ {
		lo, hi := scr.destOff[d]*stride, scr.destOff[d+1]*stride
		scr.parts[d] = outBuf[lo:hi:hi]
	}
	return scr.parts, st, nil
}
