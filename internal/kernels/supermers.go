package kernels

import (
	"fmt"
	"sync"

	"dedukt/internal/dna"
	"dedukt/internal/gpusim"
	"dedukt/internal/minimizer"
)

// SupermerConfig parameterizes the supermer construction kernel.
type SupermerConfig struct {
	// Enc is the 2-bit base encoding (dna.Random reproduces the paper's
	// ordering when paired with minimizer.Value).
	Enc *dna.Encoding
	// C carries k, m, window and the minimizer ordering.
	C minimizer.Config
	// NumDest is the number of destination ranks.
	NumDest int
	// DestMap, when non-nil, overrides hash partitioning: the supermer
	// with minimizer w goes to rank DestMap[w]. It must have 4^m entries
	// with every value < NumDest (the balanced assignment of §VII's
	// future work). When nil, destinations come from DestOf.
	DestMap []uint16
}

// Validate checks the configuration.
func (c SupermerConfig) Validate() error {
	if c.Enc == nil {
		return fmt.Errorf("kernels: nil encoding")
	}
	if err := c.C.Validate(); err != nil {
		return err
	}
	if c.NumDest <= 0 {
		return fmt.Errorf("kernels: NumDest=%d", c.NumDest)
	}
	if c.DestMap != nil {
		if len(c.DestMap) != 1<<(2*uint(c.C.M)) {
			return fmt.Errorf("kernels: DestMap has %d entries, want 4^%d", len(c.DestMap), c.C.M)
		}
	}
	return (SupermerWire{K: c.C.K, Window: c.C.Window}).Validate()
}

// BuildSupermers is the GPU supermer kernel of §IV-B (Fig. 5, Alg. 2): the
// k-mer start positions of the concatenated base array are cut into chunks
// of Window; one thread owns each chunk, sequentially rolls through its
// k-mers, computes each k-mer's minimizer in registers, and extends the
// current supermer while the minimizer repeats. Completed supermers are
// hashed by minimizer to a destination rank and appended to its outgoing
// buffer in wire format (packed bases + length byte).
//
// The emitted supermers are exactly those of minimizer.BuildWindowed over
// the same buffer — the property tests rely on this equivalence.
func BuildSupermers(dev *gpusim.Device, cfg SupermerConfig, data []byte) (out [][]byte, st gpusim.KernelStats, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, st, err
	}
	k, m, window, ord := cfg.C.K, cfg.C.M, cfg.C.Window, cfg.C.Ord
	wire := SupermerWire{K: k, Window: window}
	stride := wire.Stride()

	positions := len(data) - k + 1
	if positions < 0 {
		positions = 0
	}
	threads := (positions + window - 1) / window

	out = make([][]byte, cfg.NumDest)
	locks := make([]sync.Mutex, cfg.NumDest)

	dataAddr := dev.Alloc(int64(len(data)))
	tailsAddr := dev.Alloc(int64(4 * cfg.NumDest))
	mapAddr := uint64(0)
	if cfg.DestMap != nil {
		mapAddr = dev.Alloc(int64(2 * len(cfg.DestMap)))
	}
	bufAddr := make([]uint64, cfg.NumDest)
	for d := range bufAddr {
		bufAddr[d] = dev.Alloc(int64(stride * (positions + 1)))
	}

	enc := cfg.Enc
	dev.ResetContention()
	st, err = dev.Launch(gpusim.LaunchSpec{Name: "build_supermers", Threads: threads}, func(tid int, ctx *gpusim.Ctx) {
		lo := tid * window // first k-mer start position owned
		hi := lo + window  // one past the last owned position
		if hi > positions {
			hi = positions
		}
		// One read covers the thread's whole chunk of bases.
		span := hi - lo + k - 1
		ctx.Read(dataAddr+uint64(lo), span)

		var (
			w       dna.Kmer
			valid   int
			open    bool
			start0  int
			curMin  dna.Kmer
			nk      int
			lastPos int
		)
		flush := func() {
			if !open {
				return
			}
			open = false
			var dest int
			if cfg.DestMap != nil {
				// Table-driven destination: one small scattered load.
				ctx.Read(mapAddr+uint64(curMin)*2, 2)
				ctx.Compute(OpsEmit)
				dest = int(cfg.DestMap[curMin])
			} else {
				ctx.Compute(OpsHash + OpsDestSelect + OpsEmit)
				dest = DestOf(uint64(curMin), cfg.NumDest)
			}
			s := minimizer.Supermer{Min: curMin, NKmers: nk, Seq: dna.NewPackedSeq(nk + k - 1)}
			for i := start0; i < start0+nk+k-1; i++ {
				s.Seq.Append(enc.MustEncode(data[i]))
				ctx.Compute(OpsPackBase)
			}
			ctx.Atomic(tailsAddr+uint64(dest*4), 4)
			locks[dest].Lock()
			slot := len(out[dest]) / stride
			out[dest] = wire.Encode(out[dest], &s)
			locks[dest].Unlock()
			ctx.Write(bufAddr[dest]+uint64(slot*stride), stride)
		}
		// Roll bases from the chunk start; k-mers whose start lies in
		// [lo, hi) are owned by this thread.
		for p := lo; p < hi+k-1 && p < len(data); p++ {
			code, ok := enc.Encode(data[p])
			ctx.Compute(OpsEncodeBase)
			if !ok {
				valid = 0
				flush()
				continue
			}
			w = w.Append(k, code)
			ctx.Compute(OpsKmerRoll)
			valid++
			if valid < k {
				continue
			}
			pos := p - k + 1
			if pos < lo || pos >= hi {
				continue
			}
			ctx.Compute((k - m + 1) * OpsMinimizerCand)
			min := minimizer.Of(w, k, m, ord)
			if open && pos == lastPos+1 && min == curMin {
				nk++
				lastPos = pos
				continue
			}
			flush()
			open = true
			start0 = pos
			curMin = min
			nk = 1
			lastPos = pos
		}
		flush()
	})
	return out, st, err
}
