package kernels

import (
	"errors"
	"testing"

	"dedukt/internal/dna"
	"dedukt/internal/minimizer"
)

// FuzzWireRoundTrip drives the supermer wire codec with fuzz-derived
// supermer contents and parameters: Encode→Decode must be the identity, and
// Decode must reject corrupt length bytes with an error wrapping
// ErrCorruptWire (its documented contract) rather than panicking or reading
// out of bounds.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(17), uint8(15), uint8(3), []byte{0x1b, 0x2c})
	f.Add(uint8(5), uint8(1), uint8(1), []byte{})
	f.Add(uint8(32), uint8(255), uint8(200), []byte{0xff})
	f.Fuzz(func(t *testing.T, kRaw, windowRaw, nkRaw uint8, baseSeed []byte) {
		k := int(kRaw%32) + 1
		window := int(windowRaw)
		if window == 0 {
			window = 1
		}
		wire := SupermerWire{K: k, Window: window}
		if wire.Validate() != nil {
			return
		}
		nk := int(nkRaw)%window + 1
		nBases := nk + k - 1
		codes := make([]dna.Code, nBases)
		for i := range codes {
			if len(baseSeed) > 0 {
				codes[i] = dna.Code(baseSeed[i%len(baseSeed)] & 3)
			}
		}
		s := minimizer.Supermer{Seq: dna.PackCodes(codes), NKmers: nk}
		buf := wire.Encode(nil, &s)
		if len(buf) != wire.Stride() {
			t.Fatalf("stride %d, encoded %d", wire.Stride(), len(buf))
		}
		seq, gotNk, err := wire.Decode(buf)
		if err != nil {
			t.Fatalf("decode of valid image failed: %v", err)
		}
		if gotNk != nk || seq.Len() != nBases {
			t.Fatalf("decode nk=%d len=%d, want %d/%d", gotNk, seq.Len(), nk, nBases)
		}
		for i := range codes {
			if seq.At(i) != codes[i] {
				t.Fatalf("base %d mismatch", i)
			}
		}
		// Corrupt length byte: 0 and >window must be rejected with an error.
		for _, bad := range []byte{0, byte(window) + 1} {
			if int(bad) > 255 || (bad != 0 && window >= 255) {
				continue
			}
			corrupt := append([]byte(nil), buf...)
			corrupt[len(corrupt)-1] = bad
			if _, _, err := wire.Decode(corrupt); !errors.Is(err, ErrCorruptWire) {
				t.Fatalf("corrupt length byte %d: err=%v, want ErrCorruptWire", bad, err)
			}
		}
	})
}

// FuzzWireCorruptInput feeds fully attacker-controlled bytes — as arrive
// from the exchange — to every receive-side entry point: Decode, Count,
// VerifyImages, and UnframeBytes must return an error (or succeed) but
// never panic, whatever the input.
func FuzzWireCorruptInput(f *testing.F) {
	f.Add(uint8(17), uint8(15), []byte{})
	f.Add(uint8(17), uint8(15), []byte{0, 0, 0, 0, 0, 0, 0, 0, 16})
	f.Add(uint8(5), uint8(3), []byte("dkfr\x01\x00\x00\x00garbage"))
	f.Add(uint8(32), uint8(255), FrameBytes([]byte{1, 2, 3}, 1))
	f.Fuzz(func(t *testing.T, kRaw, windowRaw uint8, raw []byte) {
		k := int(kRaw%32) + 1
		window := int(windowRaw)
		if window == 0 {
			window = 1
		}
		wire := SupermerWire{K: k, Window: window}
		if wire.Validate() != nil {
			return
		}
		// None of these may panic; errors must wrap ErrCorruptWire.
		if _, _, err := wire.Decode(raw); err != nil && !errors.Is(err, ErrCorruptWire) {
			t.Fatalf("Decode error %v does not wrap ErrCorruptWire", err)
		}
		if _, err := wire.Count(raw); err != nil && !errors.Is(err, ErrCorruptWire) {
			t.Fatalf("Count error %v does not wrap ErrCorruptWire", err)
		}
		if _, err := wire.VerifyImages(raw); err != nil && !errors.Is(err, ErrCorruptWire) {
			t.Fatalf("VerifyImages error %v does not wrap ErrCorruptWire", err)
		}
		if payload, _, err := UnframeBytes(raw); err == nil {
			// An accepted frame must expose exactly the framed payload; the
			// image layer then re-validates it.
			_, _ = wire.VerifyImages(payload)
		} else if !errors.Is(err, ErrCorruptWire) {
			t.Fatalf("UnframeBytes error %v does not wrap ErrCorruptWire", err)
		}
		// Word-frame view of the same bytes (whole words only).
		words := make([]uint64, len(raw)/8)
		for i := range words {
			for b := 0; b < 8; b++ {
				words[i] |= uint64(raw[i*8+b]) << (8 * b)
			}
		}
		if _, err := UnframeWords(words); err != nil && !errors.Is(err, ErrCorruptWire) {
			t.Fatalf("UnframeWords error %v does not wrap ErrCorruptWire", err)
		}
	})
}
