package kernels

import (
	"testing"

	"dedukt/internal/dna"
	"dedukt/internal/minimizer"
)

// FuzzWireRoundTrip drives the supermer wire codec with fuzz-derived
// supermer contents and parameters: Encode→Decode must be the identity, and
// Decode must reject corrupt length bytes by panicking (its documented
// contract) rather than reading out of bounds.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(17), uint8(15), uint8(3), []byte{0x1b, 0x2c})
	f.Add(uint8(5), uint8(1), uint8(1), []byte{})
	f.Add(uint8(32), uint8(255), uint8(200), []byte{0xff})
	f.Fuzz(func(t *testing.T, kRaw, windowRaw, nkRaw uint8, baseSeed []byte) {
		k := int(kRaw%32) + 1
		window := int(windowRaw)
		if window == 0 {
			window = 1
		}
		wire := SupermerWire{K: k, Window: window}
		if wire.Validate() != nil {
			return
		}
		nk := int(nkRaw)%window + 1
		nBases := nk + k - 1
		codes := make([]dna.Code, nBases)
		for i := range codes {
			if len(baseSeed) > 0 {
				codes[i] = dna.Code(baseSeed[i%len(baseSeed)] & 3)
			}
		}
		s := minimizer.Supermer{Seq: dna.PackCodes(codes), NKmers: nk}
		buf := wire.Encode(nil, &s)
		if len(buf) != wire.Stride() {
			t.Fatalf("stride %d, encoded %d", wire.Stride(), len(buf))
		}
		seq, gotNk := wire.Decode(buf)
		if gotNk != nk || seq.Len() != nBases {
			t.Fatalf("decode nk=%d len=%d, want %d/%d", gotNk, seq.Len(), nk, nBases)
		}
		for i := range codes {
			if seq.At(i) != codes[i] {
				t.Fatalf("base %d mismatch", i)
			}
		}
		// Corrupt length byte: 0 and >window must panic (documented).
		for _, bad := range []byte{0, byte(window) + 1} {
			if int(bad) > 255 || (bad != 0 && window >= 255) {
				continue
			}
			corrupt := append([]byte(nil), buf...)
			corrupt[len(corrupt)-1] = bad
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("corrupt length byte %d not rejected", bad)
					}
				}()
				wire.Decode(corrupt)
			}()
		}
	})
}
