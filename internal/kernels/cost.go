// Package kernels implements the three GPU kernels of the DEDUKT pipeline
// on the gpusim device: ParseKmers (§III-B.1, Fig. 2), BuildSupermers
// (§IV-B, Fig. 5, Alg. 2) and CountKmers/CountSupermers (§III-B.3). The
// kernels compute real results — packed k-mers, supermers and counted
// tables — while recording the abstract work the cost model converts to
// V100 time.
//
// The same abstract-op constants are shared by the scalar CPU baseline
// (internal/pipeline), so CPU-vs-GPU comparisons reflect architecture and
// algorithm, not inconsistent bookkeeping.
package kernels

import "dedukt/internal/hash"

// Abstract operation costs, in scalar ALU ops. These are coarse but
// consistent: what matters for every reproduced figure is the *ratio*
// structure (parse vs count vs exchange, CPU vs GPU), which these capture.
const (
	// OpsEncodeBase: ASCII → 2-bit table lookup plus validity branch.
	OpsEncodeBase = 2
	// OpsKmerRoll: shift, or, mask to extend a rolling packed k-mer.
	OpsKmerRoll = 3
	// OpsHash: MurmurHash3 fmix64 finalizer (3 shifts, 2 mults, 3 xors).
	OpsHash = 12
	// OpsDestSelect: map a hash to a destination rank.
	OpsDestSelect = 3
	// OpsMinimizerCand: evaluate one m-mer candidate — extract the m-mer
	// (two shifts + mask), rank it, compare, conditionally update, plus
	// loop overhead.
	OpsMinimizerCand = 10
	// OpsProbe: hash-table probe bookkeeping (index math + compare).
	OpsProbe = 6
	// OpsPackBase: append one base to a packed supermer register.
	OpsPackBase = 2
	// OpsEmit: close out a supermer / write a k-mer record (cursor math).
	OpsEmit = 4
	// OpsScanStep: one element's share of a work-efficient Blelloch
	// exclusive scan (up-sweep add + down-sweep swap, amortized).
	OpsScanStep = 4
)

// DestSeed seeds the destination-rank hash; it must differ from the table
// slot seed so a rank's partition does not collapse onto a table stripe.
const DestSeed = 0x6b6d6572 // "kmer"

// DestOf maps a packed key (k-mer or minimizer) to its owner rank, the
// HASH(·, nProc) of Alg. 1 line 5 / Alg. 2 line 7. Every occurrence of a
// key maps to the same rank — the invariant the global hash table relies on.
func DestOf(key uint64, nProc int) int {
	return int(hash.Mix64Seeded(key, DestSeed) % uint64(nProc))
}

// FlatExchangeMessages is the fabric message count of one flat P×P payload
// Alltoallv round: every rank addresses every rank.
func FlatExchangeMessages(p int) int { return p * p }

// HierExchangeMessages is the fabric message count of one two-stage
// hierarchical exchange round: intra-node gather and scatter ride the
// NVLink tier (no fabric messages), so the fabric only carries the L×L
// leader Alltoallv where L = ceil(p / ranksPerNode) — a ragged last node
// still fields a leader. ranksPerNode <= 1 degenerates to the flat count.
func HierExchangeMessages(p, ranksPerNode int) int {
	if ranksPerNode <= 1 {
		return FlatExchangeMessages(p)
	}
	l := (p + ranksPerNode - 1) / ranksPerNode
	return l * l
}

// WorkMeter accumulates the scalar cost of CPU-side execution with the same
// constants the GPU kernels use; internal/cluster.CPUModel converts it to
// Power9 seconds.
type WorkMeter struct {
	// Ops is the abstract ALU op count.
	Ops uint64
	// Bytes is the memory traffic touched (reads + writes).
	Bytes uint64
	// Items is the number of k-mers processed; the CPU model charges its
	// calibrated per-item software overhead against it.
	Items uint64
}

// AddOps records n abstract ops.
func (w *WorkMeter) AddOps(n int) { w.Ops += uint64(n) }

// AddBytes records n bytes of memory traffic.
func (w *WorkMeter) AddBytes(n int) { w.Bytes += uint64(n) }

// AddItems records n processed k-mers.
func (w *WorkMeter) AddItems(n int) { w.Items += uint64(n) }

// Add accumulates another meter.
func (w *WorkMeter) Add(o WorkMeter) {
	w.Ops += o.Ops
	w.Bytes += o.Bytes
	w.Items += o.Items
}
