package kernels

import (
	"fmt"
	"sort"

	"dedukt/internal/dna"
	"dedukt/internal/gpusim"
	"dedukt/internal/hash"
	"dedukt/internal/kcount"
)

// slotAddrSeed derives representative device addresses for table probes; it
// matches nothing else so probe traffic is independent of rank assignment.
const slotAddrSeed = 0x7461626c // "tabl"

// probeAddr maps (key, probe#) to a pseudo slot address inside the table's
// key array — random-uniform like the real slot sequence, so the coalescing
// and contention analysis see the true access character (scattered,
// key-correlated) without exporting table internals.
func probeAddr(base uint64, key uint64, i int, capSlots int) uint64 {
	return base + (hash.Mix64Seeded(key, slotAddrSeed+uint64(i))%uint64(capSlots))*8
}

// partOffsets builds the exclusive prefix of part lengths: offsets[i] is the
// global index of part i's first item, offsets[len] the total. The counting
// kernels use it to map a flat thread id onto (part, index) without
// flattening the received payloads into one copy.
func partOffsets(offsets []int, lens func(i int) int, n int) ([]int, int) {
	offsets = grow(offsets, n+1)
	total := 0
	for i := 0; i < n; i++ {
		offsets[i] = total
		total += lens(i)
	}
	offsets[n] = total
	return offsets, total
}

// CountKmers is the GPU counting kernel of §III-B.3: one thread per
// received k-mer; each thread probes the open-addressing table (linear
// probing by default), claims a slot with atomicCAS when the k-mer is new,
// and bumps the count with atomicAdd. Inserts beyond capacity surface as
// ErrTableFull, matching a fixed-size device table.
//
// parts holds one payload per source rank (as delivered by the exchange)
// and is consumed in place — no flatten copy; a nil part is an empty one.
func CountKmers(dev *gpusim.Device, table *kcount.AtomicTable, parts [][]uint64) (st gpusim.KernelStats, err error) {
	keysAddr := dev.Alloc(int64(8 * table.Cap()))
	countsAddr := dev.Alloc(int64(4 * table.Cap()))
	offsets, total := partOffsets(nil, func(i int) int { return len(parts[i]) }, len(parts))
	inAddr := make([]uint64, len(parts))
	for i, p := range parts {
		inAddr[i] = dev.Alloc(int64(8 * len(p)))
	}

	dev.ResetContention()
	st, launchErr := dev.Launch(gpusim.LaunchSpec{Name: "count_kmers", Threads: total}, func(tid int, ctx *gpusim.Ctx) {
		part := sort.SearchInts(offsets, tid+1) - 1
		idx := tid - offsets[part]
		key := parts[part][idx]
		ctx.Read(inAddr[part]+uint64(idx*8), 8)
		isNew, probes, insErr := table.Inc(key)
		if insErr != nil {
			panic(insErr) // recovered by Launch and surfaced as an error
		}
		for i := 0; i < probes; i++ {
			ctx.Read(probeAddr(keysAddr, key, i, table.Cap()), 8)
			ctx.Compute(OpsProbe)
		}
		if isNew {
			// atomicCAS claiming the slot.
			ctx.Atomic(probeAddr(keysAddr, key, probes-1, table.Cap()), 8)
		}
		// atomicAdd on the count word; hot k-mers hammer one address, the
		// contention the paper blames for skew-induced slowdowns (§V-E).
		ctx.Atomic(countsAddr+(hash.Mix64(key)%uint64(table.Cap()))*4, 4)
		ctx.Compute(OpsEmit)
	})
	if launchErr != nil {
		return st, launchErr
	}
	return st, nil
}

// CountSupermers is the supermer-mode counting kernel (Alg. 2 COUNTKMER):
// one thread per received supermer; the thread decodes its packed bases,
// re-extracts the constituent k-mers, and inserts each into the table. The
// per-thread k-mer count varies with supermer length, so warps diverge —
// the cost model charges the warp-max path, reproducing the ~27% counting
// overhead the paper measures for supermer mode (§IV-B).
//
// parts holds one wire buffer per source rank and is consumed in place.
func CountSupermers(dev *gpusim.Device, table *kcount.AtomicTable, wire SupermerWire, parts [][]byte) (st gpusim.KernelStats, err error) {
	if err := wire.Validate(); err != nil {
		return st, err
	}
	stride := wire.Stride()
	// Received bytes are untrusted: validate every image up front so the
	// per-thread decodes below cannot fail mid-kernel.
	counts := make([]int, len(parts))
	for i, p := range parts {
		n, err := wire.VerifyImages(p)
		if err != nil {
			return st, fmt.Errorf("part %d: %w", i, err)
		}
		counts[i] = n
	}
	offsets, total := partOffsets(nil, func(i int) int { return counts[i] }, len(parts))

	keysAddr := dev.Alloc(int64(8 * table.Cap()))
	countsAddr := dev.Alloc(int64(4 * table.Cap()))
	inAddr := make([]uint64, len(parts))
	for i, p := range parts {
		inAddr[i] = dev.Alloc(int64(len(p)))
	}

	k := wire.K
	dev.ResetContention()
	st, launchErr := dev.Launch(gpusim.LaunchSpec{Name: "count_supermers", Threads: total}, func(tid int, ctx *gpusim.Ctx) {
		part := sort.SearchInts(offsets, tid+1) - 1
		idx := tid - offsets[part]
		img := parts[part][idx*stride : (idx+1)*stride]
		ctx.Read(inAddr[part]+uint64(idx*stride), stride)
		seq, nk, _ := wire.Decode(img) // images verified before launch
		// Roll the first k-mer, then slide one base at a time — the "extra
		// parsing phase ... to extract k-mers from the received supermers".
		var w dna.Kmer
		for i := 0; i < k-1; i++ {
			w = w.Append(k, seq.At(i))
			ctx.Compute(OpsKmerRoll)
		}
		for i := 0; i < nk; i++ {
			w = w.Append(k, seq.At(i+k-1))
			ctx.Compute(OpsKmerRoll)
			key := uint64(w)
			isNew, probes, insErr := table.Inc(key)
			if insErr != nil {
				panic(insErr)
			}
			for p := 0; p < probes; p++ {
				ctx.Read(probeAddr(keysAddr, key, p, table.Cap()), 8)
				ctx.Compute(OpsProbe)
			}
			if isNew {
				ctx.Atomic(probeAddr(keysAddr, key, probes-1, table.Cap()), 8)
			}
			ctx.Atomic(countsAddr+(hash.Mix64(key)%uint64(table.Cap()))*4, 4)
			ctx.Compute(OpsEmit)
		}
	})
	if launchErr != nil {
		return st, launchErr
	}
	return st, nil
}
