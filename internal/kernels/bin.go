package kernels

import "dedukt/internal/hash"

// SpillBinSeed salts the spill-bin hash so bin assignment is independent
// of both the destination-rank hash (DestSeed) and any table slot hash:
// a pathological key set that skews one cannot systematically skew the
// others. ASCII "spil".
const SpillBinSeed = 0x7370696c

// SpillBinOf maps a packed k-mer key to its out-of-core spill bin on the
// owning rank (DESIGN.md §16). Like DestOf it is a pure function of the
// key, so the bins partition the key space: pass 2 can count one bin at
// a time and merge the spectra without cross-bin reconciliation.
func SpillBinOf(key uint64, bins int) int {
	return int(hash.Mix64Seeded(key, SpillBinSeed) % uint64(bins))
}
