package kernels

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"dedukt/internal/dna"
	"dedukt/internal/gpusim"
	"dedukt/internal/kcount"
	"dedukt/internal/kmer"
	"dedukt/internal/minimizer"
)

func dev(t *testing.T) *gpusim.Device {
	t.Helper()
	d, err := gpusim.NewDevice(gpusim.V100())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func buildBuffer(reads []string) []byte {
	var b dna.SeqBuffer
	for _, r := range reads {
		b.AppendRead([]byte(r))
	}
	return b.Data()
}

func randReads(rng *rand.Rand, n, meanLen int, nRate float64) []string {
	reads := make([]string, n)
	for i := range reads {
		l := meanLen/2 + rng.Intn(meanLen)
		seq := make([]byte, l)
		for j := range seq {
			if nRate > 0 && rng.Float64() < nRate {
				seq[j] = 'N'
			} else {
				seq[j] = "ACGT"[rng.Intn(4)]
			}
		}
		reads[i] = string(seq)
	}
	return reads
}

func mustDecode(t *testing.T, wire SupermerWire, buf []byte) (dna.PackedSeq, int) {
	t.Helper()
	seq, nk, err := wire.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	return seq, nk
}

func mustCount(t *testing.T, wire SupermerWire, buf []byte) int {
	t.Helper()
	n, err := wire.Count(buf)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDestOfStable(t *testing.T) {
	// Same key, same rank — the global-hash-table invariant.
	for _, p := range []int{1, 6, 96, 384} {
		if DestOf(12345, p) != DestOf(12345, p) {
			t.Fatal("DestOf not deterministic")
		}
		if d := DestOf(12345, p); d < 0 || d >= p {
			t.Fatalf("DestOf out of range: %d/%d", d, p)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	wire := SupermerWire{K: 17, Window: 15}
	if err := wire.Validate(); err != nil {
		t.Fatal(err)
	}
	if wire.Stride() != 9 { // ⌈31/4⌉ + 1: the paper's word + length byte
		t.Fatalf("stride = %d, want 9", wire.Stride())
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		nk := 1 + rng.Intn(15)
		codes := make([]dna.Code, nk+16)
		for i := range codes {
			codes[i] = dna.Code(rng.Intn(4))
		}
		s := minimizer.Supermer{Seq: dna.PackCodes(codes), NKmers: nk}
		buf := wire.Encode(nil, &s)
		if len(buf) != wire.Stride() {
			t.Fatalf("encoded %d bytes", len(buf))
		}
		seq, gotNk := mustDecode(t, wire, buf)
		if gotNk != nk || seq.Len() != len(codes) {
			t.Fatalf("decode: nk=%d len=%d", gotNk, seq.Len())
		}
		for i := range codes {
			if seq.At(i) != codes[i] {
				t.Fatalf("base %d mismatch", i)
			}
		}
	}
	if mustCount(t, wire, make([]byte, 27)) != 3 {
		t.Fatal("Count wrong")
	}
	if _, err := wire.Count(make([]byte, 10)); err == nil {
		t.Fatal("non-multiple buffer should error")
	}
	if _, _, err := wire.Decode(make([]byte, 3)); err == nil {
		t.Fatal("truncated image should error")
	}
}

func TestWireValidate(t *testing.T) {
	for _, w := range []SupermerWire{{K: 0, Window: 15}, {K: 17, Window: 0}, {K: 17, Window: 256}, {K: 40, Window: 5}} {
		if w.Validate() == nil {
			t.Errorf("%+v should be invalid", w)
		}
	}
}

func TestWireEncodeInto(t *testing.T) {
	wire := SupermerWire{K: 5, Window: 10}
	codes := []dna.Code{0, 1, 2, 3, 0, 1, 2}
	s := minimizer.Supermer{Seq: dna.PackCodes(codes), NKmers: 3}
	buf := make([]byte, wire.Stride())
	if n := wire.EncodeInto(buf, &s); n != wire.Stride() {
		t.Fatalf("EncodeInto returned %d", n)
	}
	seq, nk := mustDecode(t, wire, buf)
	if nk != 3 || seq.At(6) != 2 {
		t.Fatal("EncodeInto round trip failed")
	}
}

func TestFrameBytesRoundTrip(t *testing.T) {
	payload := []byte("a supermer wire buffer stand-in")
	frame := FrameBytes(payload, 7)
	got, items, err := UnframeBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if items != 7 || string(got) != string(payload) {
		t.Fatalf("round trip: items=%d payload=%q", items, got)
	}
	// Empty payloads still frame (count 0) — a dropped payload is nil and
	// must stay distinguishable from an empty one.
	empty := FrameBytes(nil, 0)
	if _, items, err := UnframeBytes(empty); err != nil || items != 0 {
		t.Fatalf("empty frame: items=%d err=%v", items, err)
	}
	if _, _, err := UnframeBytes(nil); !errors.Is(err, ErrCorruptWire) {
		t.Fatalf("nil frame: err=%v", err)
	}
}

func TestFrameBytesDetectsCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5, 0x3C}, 20)
	frame := FrameBytes(payload, 5)
	// Flip every single bit in turn: each must be detected.
	for bit := 0; bit < 8*len(frame); bit++ {
		bad := append([]byte(nil), frame...)
		bad[bit/8] ^= 1 << (bit % 8)
		if _, _, err := UnframeBytes(bad); err == nil {
			// A flip inside the item-count field alone keeps magic and CRC
			// valid; the exchange layer cross-checks the count against the
			// Alltoall announcement, so only those bits may pass here.
			if bit < 32 || bit >= 64 {
				t.Fatalf("bit flip at %d undetected", bit)
			}
		} else if !errors.Is(err, ErrCorruptWire) {
			t.Fatalf("bit %d: error %v does not wrap ErrCorruptWire", bit, err)
		}
	}
	// Truncation must be detected.
	if _, _, err := UnframeBytes(frame[:8]); !errors.Is(err, ErrCorruptWire) {
		t.Fatalf("truncated frame: err=%v", err)
	}
}

func TestFrameWordsRoundTripAndCorruption(t *testing.T) {
	words := []uint64{0, 1, 0xdeadbeefcafef00d, ^uint64(0)}
	frame := FrameWords(words)
	got, err := UnframeWords(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(words) {
		t.Fatalf("round trip len %d", len(got))
	}
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
	for bit := 0; bit < 64*len(frame); bit++ {
		bad := append([]uint64(nil), frame...)
		bad[bit/64] ^= 1 << (bit % 64)
		if _, err := UnframeWords(bad); err == nil {
			t.Fatalf("word bit flip at %d undetected", bit)
		}
	}
	if _, err := UnframeWords(nil); !errors.Is(err, ErrCorruptWire) {
		t.Fatalf("nil word frame: err=%v", err)
	}
	if _, err := UnframeWords(frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated word frame undetected")
	}
	if empty, err := UnframeWords(FrameWords(nil)); err != nil || len(empty) != 0 {
		t.Fatalf("empty word frame: %v", err)
	}
}

func TestVerifyImages(t *testing.T) {
	wire := SupermerWire{K: 17, Window: 15}
	s := minimizer.Supermer{Seq: dna.PackCodes(make([]dna.Code, 19)), NKmers: 3}
	buf := wire.Encode(nil, &s)
	buf = wire.Encode(buf, &s)
	if n, err := wire.VerifyImages(buf); err != nil || n != 2 {
		t.Fatalf("VerifyImages = %d, %v", n, err)
	}
	bad := append([]byte(nil), buf...)
	bad[wire.Stride()-1] = 0 // corrupt first length byte
	if _, err := wire.VerifyImages(bad); !errors.Is(err, ErrCorruptWire) {
		t.Fatalf("corrupt image: err=%v", err)
	}
	if _, err := wire.VerifyImages(buf[:5]); !errors.Is(err, ErrCorruptWire) {
		t.Fatalf("ragged buffer: err=%v", err)
	}
}

func TestParseKmersMatchesScanner(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	reads := randReads(rng, 30, 200, 0.02)
	data := buildBuffer(reads)
	cfg := ParseConfig{Enc: &dna.Random, K: 17, NumDest: 7}
	out, st, err := ParseKmers(dev(t), cfg, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flatten and compare multisets with the host scanner.
	var got []uint64
	for d, part := range out {
		for _, w := range part {
			if DestOf(w, cfg.NumDest) != d {
				t.Fatalf("kmer %x binned to %d, hash says %d", w, d, DestOf(w, cfg.NumDest))
			}
			got = append(got, w)
		}
	}
	var want []uint64
	for _, r := range reads {
		for _, w := range kmer.Extract(nil, &dna.Random, []byte(r), cfg.K) {
			want = append(want, uint64(w))
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("%d kmers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kmer %d differs", i)
		}
	}
	// The stats aggregate the parse, scan and scatter launches: at least two
	// full passes over the positions.
	if st.Threads < 2*(len(data)-cfg.K+1) {
		t.Fatalf("threads = %d, want ≥ %d", st.Threads, 2*(len(data)-cfg.K+1))
	}
	if st.ComputeOps == 0 || st.MemTransactions == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
	// The prefix-sum buffer scheme needs no global atomics — that is the
	// point of the count/scan/scatter pattern.
	if st.AtomicOps != 0 {
		t.Fatalf("parse path issued %d atomics, want 0", st.AtomicOps)
	}
}

func TestParseKmersEmptyAndShort(t *testing.T) {
	cfg := ParseConfig{Enc: &dna.Random, K: 17, NumDest: 3}
	for _, data := range [][]byte{nil, []byte("ACGT\x00")} {
		out, _, err := ParseKmers(dev(t), cfg, data, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, part := range out {
			if len(part) != 0 {
				t.Fatal("short input should yield no kmers")
			}
		}
	}
}

func TestParseKmersValidation(t *testing.T) {
	d := dev(t)
	if _, _, err := ParseKmers(d, ParseConfig{Enc: nil, K: 17, NumDest: 2}, nil, nil); err == nil {
		t.Error("nil encoding should fail")
	}
	if _, _, err := ParseKmers(d, ParseConfig{Enc: &dna.Random, K: 0, NumDest: 2}, nil, nil); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := ParseKmers(d, ParseConfig{Enc: &dna.Random, K: 17, NumDest: 0}, nil, nil); err == nil {
		t.Error("NumDest=0 should fail")
	}
}

func TestBuildSupermersMatchesBuildWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	reads := randReads(rng, 25, 300, 0.02)
	data := buildBuffer(reads)
	mcfg := minimizer.Config{K: 17, M: 7, Window: 15, Ord: minimizer.Value{}}
	cfg := SupermerConfig{Enc: &dna.Random, C: mcfg, NumDest: 5}
	out, st, err := BuildSupermers(dev(t), cfg, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire := SupermerWire{K: 17, Window: 15}
	type sm struct {
		seq string
		nk  int
	}
	var got []sm
	for d, part := range out {
		for i := 0; i < mustCount(t, wire, part); i++ {
			seq, nk := mustDecode(t, wire, part[i*wire.Stride():])
			s := seq.String(&dna.Random)
			got = append(got, sm{s, nk})
			// Destination must be the minimizer's hash.
			w := seq.Kmer(0, 17)
			min := minimizer.Of(w, 17, 7, mcfg.Ord)
			if DestOf(uint64(min), cfg.NumDest) != d {
				t.Fatalf("supermer %q in partition %d, minimizer says %d", s, d, DestOf(uint64(min), cfg.NumDest))
			}
		}
	}
	var want []sm
	if err := minimizer.BuildWindowed(&dna.Random, data, mcfg, func(s minimizer.Supermer) {
		want = append(want, sm{s.Seq.String(&dna.Random), s.NKmers})
	}); err != nil {
		t.Fatal(err)
	}
	less := func(a, b sm) bool {
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.nk < b.nk
	}
	sort.Slice(got, func(i, j int) bool { return less(got[i], got[j]) })
	sort.Slice(want, func(i, j int) bool { return less(want[i], want[j]) })
	if len(got) != len(want) {
		t.Fatalf("%d supermers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("supermer %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if st.DivergenceWaste() < 1.0 {
		t.Fatalf("divergence waste %.2f < 1", st.DivergenceWaste())
	}
}

func TestBuildSupermersValidation(t *testing.T) {
	d := dev(t)
	bad := SupermerConfig{Enc: &dna.Random, C: minimizer.Config{K: 17, M: 99, Window: 15, Ord: minimizer.Value{}}, NumDest: 2}
	if _, _, err := BuildSupermers(d, bad, nil, nil); err == nil {
		t.Error("m>k should fail")
	}
	bad2 := SupermerConfig{Enc: &dna.Random, C: minimizer.Config{K: 17, M: 7, Window: 300, Ord: minimizer.Value{}}, NumDest: 2}
	if _, _, err := BuildSupermers(d, bad2, nil, nil); err == nil {
		t.Error("window>255 should fail")
	}
}

func TestCountKmersMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	kmers := make([]uint64, 30_000)
	for i := range kmers {
		kmers[i] = uint64(rng.Intn(4_000)) // heavy duplication
	}
	table := kcount.NewAtomicTable(5_000, 0.5, kcount.Linear)
	st, err := CountKmers(dev(t), table, [][]uint64{kmers})
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64]uint32{}
	for _, w := range kmers {
		oracle[w]++
	}
	if table.Len() != len(oracle) {
		t.Fatalf("table has %d keys, oracle %d", table.Len(), len(oracle))
	}
	for k, want := range oracle {
		if got := table.Get(k); got != want {
			t.Fatalf("count(%d) = %d, want %d", k, got, want)
		}
	}
	if st.AtomicOps == 0 || st.MemTransactions == 0 {
		t.Fatalf("stats missing: %+v", st)
	}
}

func TestCountKmersTableFull(t *testing.T) {
	table := kcount.NewAtomicTable(4, 0.5, kcount.Linear)
	kmers := make([]uint64, 100)
	for i := range kmers {
		kmers[i] = uint64(i * 7919)
	}
	_, err := CountKmers(dev(t), table, [][]uint64{kmers})
	if err == nil || !errors.Is(errors.Unwrap(err), kcount.ErrTableFull) && !errorsContains(err, "table full") {
		t.Fatalf("expected table-full error, got %v", err)
	}
}

func errorsContains(err error, sub string) bool {
	return err != nil && len(err.Error()) > 0 && (sub == "" || containsStr(err.Error(), sub))
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestCountSupermersMatchesOracle(t *testing.T) {
	// End-to-end single-rank supermer path: build, concatenate "received"
	// buffers, count, compare with the sliding-window oracle.
	rng := rand.New(rand.NewSource(45))
	reads := randReads(rng, 20, 250, 0.01)
	data := buildBuffer(reads)
	mcfg := minimizer.Config{K: 17, M: 7, Window: 15, Ord: minimizer.Value{}}
	cfg := SupermerConfig{Enc: &dna.Random, C: mcfg, NumDest: 4}
	d := dev(t)
	out, _, err := BuildSupermers(d, cfg, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire := SupermerWire{K: 17, Window: 15}
	oracle := kcount.SerialCount(&dna.Random, [][]byte{data}, 17)
	table := kcount.NewAtomicTable(len(oracle), 0.5, kcount.Linear)
	// The per-destination parts feed the counting kernel directly — the
	// zero-copy receive path of the pipeline.
	st, err := CountSupermers(d, table, wire, out)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != len(oracle) {
		t.Fatalf("distinct %d, oracle %d", table.Len(), len(oracle))
	}
	snap := table.Snapshot()
	if diff := snap.EqualToOracle(oracle); diff != "" {
		t.Fatal(diff)
	}
	if st.DivergenceWaste() <= 1.0 {
		t.Log("note: no divergence measured (uniform supermer lengths)")
	}
}

func TestCountSupermersBadBuffer(t *testing.T) {
	wire := SupermerWire{K: 17, Window: 15}
	table := kcount.NewAtomicTable(10, 0.5, kcount.Linear)
	if _, err := CountSupermers(dev(t), table, wire, [][]byte{make([]byte, 10)}); err == nil {
		t.Fatal("non-multiple buffer should fail")
	}
	if _, err := CountSupermers(dev(t), table, SupermerWire{K: 0, Window: 15}, nil); err == nil {
		t.Fatal("bad wire should fail")
	}
}

func TestCountDests(t *testing.T) {
	kmers := []uint64{1, 2, 3, 1, 1}
	counts := CountDests(kmers, 4)
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("total %d", total)
	}
	if counts[DestOf(1, 4)] < 3 {
		t.Fatal("duplicate key counts missing")
	}
}

func TestWorkMeter(t *testing.T) {
	var w WorkMeter
	w.AddOps(10)
	w.AddBytes(100)
	w.Add(WorkMeter{Ops: 5, Bytes: 50})
	if w.Ops != 15 || w.Bytes != 150 {
		t.Fatalf("meter = %+v", w)
	}
}

func TestSupermerCountingCostsMoreThanKmerCounting(t *testing.T) {
	// §IV-B: supermer mode adds ~27% to parse and ~23% to count. Verify the
	// direction: per processed k-mer, the supermer pipeline's parse kernel
	// charges more compute than the k-mer parse kernel.
	rng := rand.New(rand.NewSource(46))
	reads := randReads(rng, 40, 400, 0)
	data := buildBuffer(reads)
	d1 := dev(t)
	_, stK, err := ParseKmers(d1, ParseConfig{Enc: &dna.Random, K: 17, NumDest: 8}, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	d2 := dev(t)
	mcfg := minimizer.Config{K: 17, M: 7, Window: 15, Ord: minimizer.Value{}}
	_, stS, err := BuildSupermers(d2, SupermerConfig{Enc: &dna.Random, C: mcfg, NumDest: 8}, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both kernels process the same k-mer set; compare total compute.
	if stS.ComputeOps <= stK.ComputeOps/4 {
		t.Fatalf("supermer parse ops %d implausibly below kmer parse ops %d", stS.ComputeOps, stK.ComputeOps)
	}
	t.Logf("parse compute ops: kmer=%d supermer=%d (ratio %.2f)",
		stK.ComputeOps, stS.ComputeOps, float64(stS.ComputeOps)/float64(stK.ComputeOps))
}

func TestParseKmersCanonical(t *testing.T) {
	// Canonical parsing must merge a k-mer and its reverse complement into
	// one key, and keep the destination a function of the canonical form.
	seq := "ACGTTGCAAGGCATCTA"
	rc := make([]byte, len(seq))
	comp := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C'}
	for i := 0; i < len(seq); i++ {
		rc[len(seq)-1-i] = comp[seq[i]]
	}
	data := buildBuffer([]string{seq, string(rc)})
	cfg := ParseConfig{Enc: &dna.Random, K: 17, NumDest: 5, Canonical: true}
	out, _, err := ParseKmers(dev(t), cfg, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	var keys []uint64
	for d, part := range out {
		for _, w := range part {
			if DestOf(w, cfg.NumDest) != d {
				t.Fatal("canonical key routed to wrong destination")
			}
			keys = append(keys, w)
		}
	}
	// Both strands produce the single canonical 17-mer of this sequence.
	if len(keys) != 2 {
		t.Fatalf("%d kmers, want 2 (one per strand)", len(keys))
	}
	if keys[0] != keys[1] {
		t.Fatalf("strands canonicalized differently: %x vs %x", keys[0], keys[1])
	}
	want := dna.MustKmer(&dna.Random, seq).Canonical(&dna.Random, 17)
	if keys[0] != uint64(want) {
		t.Fatalf("canonical key %x, want %x", keys[0], uint64(want))
	}
}

func TestBuildSupermersDestMap(t *testing.T) {
	// A DestMap must override hash routing exactly.
	rng := rand.New(rand.NewSource(47))
	reads := randReads(rng, 10, 200, 0)
	data := buildBuffer(reads)
	mcfg := minimizer.Config{K: 17, M: 5, Window: 15, Ord: minimizer.Value{}}
	destMap := make([]uint16, 1<<10)
	for i := range destMap {
		destMap[i] = uint16(i % 3)
	}
	cfg := SupermerConfig{Enc: &dna.Random, C: mcfg, NumDest: 3, DestMap: destMap}
	out, _, err := BuildSupermers(dev(t), cfg, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire := SupermerWire{K: 17, Window: 15}
	n := 0
	for d, part := range out {
		for i := 0; i < mustCount(t, wire, part); i++ {
			seq, _ := mustDecode(t, wire, part[i*wire.Stride():])
			min := minimizer.Of(seq.Kmer(0, 17), 17, 5, mcfg.Ord)
			if int(destMap[min]) != d {
				t.Fatalf("supermer with minimizer %x in partition %d, map says %d", min, d, destMap[min])
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no supermers produced")
	}
	// Bad map size must be rejected.
	cfg.DestMap = make([]uint16, 7)
	if _, _, err := BuildSupermers(dev(t), cfg, data, nil); err == nil {
		t.Fatal("wrong-size DestMap accepted")
	}
}

// TestScratchReuse runs the packing kernels twice with one scratch — first
// on a large input, then on a smaller one — and checks the second result is
// unpolluted by the first (stale keys, dests or counts must not leak).
func TestScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	big := buildBuffer(randReads(rng, 30, 300, 0.02))
	small := buildBuffer(randReads(rng, 5, 120, 0.05))

	pcfg := ParseConfig{Enc: &dna.Random, K: 17, NumDest: 6}
	var ps ParseScratch
	if _, _, err := ParseKmers(dev(t), pcfg, big, &ps); err != nil {
		t.Fatal(err)
	}
	reused, _, err := ParseKmers(dev(t), pcfg, small, &ps)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, err := ParseKmers(dev(t), pcfg, small, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d := range fresh {
		if len(reused[d]) != len(fresh[d]) {
			t.Fatalf("dest %d: reused %d kmers, fresh %d", d, len(reused[d]), len(fresh[d]))
		}
		for i := range fresh[d] {
			if reused[d][i] != fresh[d][i] {
				t.Fatalf("dest %d kmer %d differs after scratch reuse", d, i)
			}
		}
	}

	mcfg := minimizer.Config{K: 17, M: 7, Window: 15, Ord: minimizer.Value{}}
	scfg := SupermerConfig{Enc: &dna.Random, C: mcfg, NumDest: 6}
	var ss SupermerScratch
	if _, _, err := BuildSupermers(dev(t), scfg, big, &ss); err != nil {
		t.Fatal(err)
	}
	sReused, _, err := BuildSupermers(dev(t), scfg, small, &ss)
	if err != nil {
		t.Fatal(err)
	}
	sFresh, _, err := BuildSupermers(dev(t), scfg, small, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d := range sFresh {
		if !bytes.Equal(sReused[d], sFresh[d]) {
			t.Fatalf("dest %d wire bytes differ after scratch reuse", d)
		}
	}
}

// TestParseKmersDeterministicOrder: the prefix-sum scatter produces a fixed
// output order (warp-major by position) independent of warp scheduling, so
// repeated runs must be byte-identical, not just multiset-equal.
func TestParseKmersDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	data := buildBuffer(randReads(rng, 20, 250, 0.01))
	cfg := ParseConfig{Enc: &dna.Random, K: 17, NumDest: 5}
	first, _, err := ParseKmers(dev(t), cfg, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		again, _, err := ParseKmers(dev(t), cfg, data, nil)
		if err != nil {
			t.Fatal(err)
		}
		for d := range first {
			if len(again[d]) != len(first[d]) {
				t.Fatalf("trial %d dest %d: %d vs %d kmers", trial, d, len(again[d]), len(first[d]))
			}
			for i := range first[d] {
				if again[d][i] != first[d][i] {
					t.Fatalf("trial %d dest %d: order differs at %d", trial, d, i)
				}
			}
		}
	}
}

func TestAppendFrames(t *testing.T) {
	// AppendFrameWords/Bytes into one arena must unframe identically to the
	// allocating forms.
	wordsA := []uint64{1, 2, 3}
	wordsB := []uint64{9}
	arena := AppendFrameWords(nil, wordsA)
	cut := len(arena)
	arena = AppendFrameWords(arena, wordsB)
	gotA, err := UnframeWords(arena[:cut])
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := UnframeWords(arena[cut:])
	if err != nil {
		t.Fatal(err)
	}
	if len(gotA) != 3 || gotA[2] != 3 || len(gotB) != 1 || gotB[0] != 9 {
		t.Fatalf("arena frames decode wrong: %v %v", gotA, gotB)
	}

	pay := []byte("payload")
	barena := AppendFrameBytes(nil, pay, 2)
	bcut := len(barena)
	barena = AppendFrameBytes(barena, nil, 0)
	gp, items, err := UnframeBytes(barena[:bcut])
	if err != nil || items != 2 || string(gp) != "payload" {
		t.Fatalf("byte arena frame: %q %d %v", gp, items, err)
	}
	if _, items, err := UnframeBytes(barena[bcut:]); err != nil || items != 0 {
		t.Fatalf("empty byte arena frame: %d %v", items, err)
	}
}

// TestExchangeMessageCounts pins the fabric message arithmetic the
// hierarchical exchange's metric assertions build on.
func TestExchangeMessageCounts(t *testing.T) {
	if got := FlatExchangeMessages(12); got != 144 {
		t.Fatalf("FlatExchangeMessages(12) = %d, want 144", got)
	}
	cases := []struct{ p, rpn, want int }{
		{12, 6, 4}, // 2 full nodes
		{12, 4, 9}, // 3 full nodes
		{7, 3, 9},  // ragged: nodes of 3, 3, 1 still field 3 leaders
		{6, 1, 36}, // one rank per node degenerates to flat
		{6, 0, 36}, // unset topology likewise
		{5, 8, 1},  // single node: only the leader's self-message
	}
	for _, c := range cases {
		if got := HierExchangeMessages(c.p, c.rpn); got != c.want {
			t.Fatalf("HierExchangeMessages(%d, %d) = %d, want %d", c.p, c.rpn, got, c.want)
		}
	}
}
