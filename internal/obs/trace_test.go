package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedRecorder fabricates a recorder with deterministic spans and instants
// (bypassing the wall clock) so the trace export can be golden-tested
// byte-for-byte.
func fixedRecorder() *Recorder {
	rec := NewRecorder(2)
	add := func(rank, round int, phase string, start, dur, modeled time.Duration, items uint64) {
		sh := rec.shard(rank)
		sh.spans = append(sh.spans, Span{
			Rank: rank, Round: round, Phase: phase,
			Start: start, Dur: dur, Modeled: modeled, Items: items,
		})
	}
	add(0, 0, PhaseParse, 0, 100*time.Microsecond, 40*time.Microsecond, 10)
	add(0, 0, PhaseExchange, 100*time.Microsecond, 300*time.Microsecond, 80*time.Microsecond, 10)
	add(0, 0, PhaseRetry, 250*time.Microsecond, 100*time.Microsecond, 0, 10)
	add(0, 0, PhaseCount, 400*time.Microsecond, 50*time.Microsecond, 20*time.Microsecond, 10)
	add(1, 0, PhaseParse, 0, 120*time.Microsecond, 40*time.Microsecond, 14)
	add(1, 0, PhaseExchange, 120*time.Microsecond, 280*time.Microsecond, 80*time.Microsecond, 14)
	add(1, 0, PhaseCount, 400*time.Microsecond, 70*time.Microsecond, 20*time.Microsecond, 14)
	sh := rec.shard(1)
	sh.instants = append(sh.instants, Instant{Rank: 1, Round: 0, Name: EvDrop, At: 150 * time.Microsecond})
	sh.instants = append(sh.instants, Instant{Rank: 1, Round: 0, Name: EvRetry, At: 240 * time.Microsecond})
	return rec
}

func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedRecorder().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace drifted from golden file (re-run with -update if intended):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestTraceShape decodes the export and checks the structural invariants the
// Perfetto/chrome://tracing loader relies on.
func TestTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedRecorder().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var meta, spans, instants int
	lastTs := -1.0
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			continue
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("span %q missing dur", ev.Name)
			}
			if _, ok := ev.Args["round"]; !ok {
				t.Fatalf("span %q missing round arg", ev.Name)
			}
			if _, ok := ev.Args["modeled_us"]; !ok {
				t.Fatalf("span %q missing modeled_us arg", ev.Name)
			}
		case "i":
			instants++
			if ev.S != "t" {
				t.Fatalf("instant %q scope = %q, want t", ev.Name, ev.S)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ev.Ts < lastTs {
			t.Fatalf("events not time-ordered: %v after %v", ev.Ts, lastTs)
		}
		lastTs = ev.Ts
	}
	if meta != 3 { // process_name + 2 thread_names
		t.Fatalf("metadata events = %d, want 3", meta)
	}
	if spans != 7 || instants != 2 {
		t.Fatalf("spans=%d instants=%d, want 7, 2", spans, instants)
	}
}

func TestWriteTraceNil(t *testing.T) {
	var rec *Recorder
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil-recorder trace is not valid JSON: %v", err)
	}
	if evs, ok := f["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("nil-recorder trace events = %v, want empty array", f["traceEvents"])
	}
}
