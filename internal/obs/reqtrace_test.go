package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer("test", 1, 16)
	root := tr.StartRoot("req", "client")
	sc := root.Context()
	if !sc.Valid() || !sc.Sampled {
		t.Fatalf("root context %+v not valid+sampled", sc)
	}
	hdr := sc.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent %q has wrong shape", hdr)
	}
	back, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if back != sc {
		t.Fatalf("round trip %+v != %+v", back, sc)
	}
	// Unsampled flag survives too.
	un := SpanContext{Trace: sc.Trace, Span: sc.Span, Sampled: false}
	back, err = ParseTraceparent(un.Traceparent())
	if err != nil {
		t.Fatal(err)
	}
	if back.Sampled {
		t.Fatal("unsampled context parsed as sampled")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-abc-def-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", // non-hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want rejection", s)
		}
	}
	good := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, err := ParseTraceparent(good)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", good, err)
	}
	if sc.Trace.String() != "4bf92f3577b34da6a3ce929d0e0e4736" || sc.Span.String() != "00f067aa0ba902b7" || !sc.Sampled {
		t.Fatalf("parsed %+v from %q", sc, good)
	}
}

func TestSpanFromHeader(t *testing.T) {
	h := http.Header{}
	if sc := SpanFromHeader(h); sc.Valid() {
		t.Fatal("absent header produced a valid context")
	}
	h.Set(TraceparentHeader, "garbage")
	if sc := SpanFromHeader(h); sc.Valid() {
		t.Fatal("malformed header produced a valid context")
	}
	h.Set(TraceparentHeader, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if sc := SpanFromHeader(h); !sc.Valid() || !sc.Sampled {
		t.Fatalf("valid header produced %+v", sc)
	}
}

func TestNilAndUnsampledTracerAreFree(t *testing.T) {
	var nilT *Tracer
	h := nilT.StartRoot("x", "")
	h.SetAttr("k", "v")
	h.End()
	nilT.RecordSpan(SpanContext{}, "x", "", time.Now(), 0, nil)
	if nilT.Len() != 0 || nilT.Snapshot() != nil {
		t.Fatal("nil tracer recorded something")
	}
	var sb bytes.Buffer
	if err := nilT.WriteSpans(&sb); err != nil {
		t.Fatal(err)
	}

	tr := NewTracer("p", 0, 16) // sample 0: never roots
	if h := tr.StartRoot("x", ""); h.Sampled() {
		t.Fatal("sample=0 tracer rooted a span")
	}
	// An unsampled parent disables the downstream tree.
	if h := tr.StartSpan(SpanContext{}, "x", ""); h.Sampled() {
		t.Fatal("zero parent produced a sampled child")
	}
	if tr.Len() != 0 {
		t.Fatalf("tracer buffered %d spans, want 0", tr.Len())
	}
}

func TestHeadSampling(t *testing.T) {
	tr := NewTracer("p", 4, 1024)
	kept := 0
	for i := 0; i < 100; i++ {
		h := tr.StartRoot("req", "")
		if h.Sampled() {
			kept++
			h.End()
		}
	}
	if kept != 25 {
		t.Fatalf("1-in-4 sampling kept %d of 100", kept)
	}
	if tr.Len() != 25 {
		t.Fatalf("buffered %d spans, want 25", tr.Len())
	}
}

func TestBufferLimitCountsDrops(t *testing.T) {
	tr := NewTracer("p", 1, 4)
	for i := 0; i < 10; i++ {
		tr.StartRoot("req", "").End()
	}
	d := tr.Dump()
	if len(d.Spans) != 4 || d.Dropped != 6 {
		t.Fatalf("dump has %d spans, %d dropped; want 4 and 6", len(d.Spans), d.Dropped)
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := NewTracer("proxy", 1, 64)
	root := tr.StartRoot("request", "client")
	child := tr.StartSpan(root.Context(), "attempt", "replica:1")
	child.SetAttr("hedged", "true")
	child.SetAttr("outcome", "winner")
	if child.Context().Trace != root.Context().Trace {
		t.Fatal("child left the trace")
	}
	if child.Context().Span == root.Context().Span {
		t.Fatal("child reused the parent span id")
	}
	child.End()
	tr.RecordSpan(child.Context(), "queue_wait", "shard 0", time.Now().Add(-time.Millisecond), time.Millisecond, nil)
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]ReqSpan{}
	for _, sp := range spans {
		byName[sp.Name] = sp
		if sp.Trace != root.Context().Trace.String() {
			t.Fatalf("span %q on trace %s, want %s", sp.Name, sp.Trace, root.Context().Trace)
		}
	}
	if byName["request"].Parent != "" {
		t.Fatal("root span has a parent")
	}
	if byName["attempt"].Parent != root.Context().Span.String() {
		t.Fatal("attempt span not parented to the root")
	}
	if byName["queue_wait"].Parent != byName["attempt"].Span {
		t.Fatal("recorded span not parented to the attempt")
	}
	if byName["attempt"].Attrs["outcome"] != "winner" || byName["attempt"].Attrs["hedged"] != "true" {
		t.Fatalf("attempt attrs = %v", byName["attempt"].Attrs)
	}
}

// TestContextCarriage pins the context.Context plumbing handlers use to
// hand the span context to the service layer.
func TestContextCarriage(t *testing.T) {
	if sc := SpanFromContext(context.Background()); sc.Valid() {
		t.Fatal("background context carries a span")
	}
	tr := NewTracer("p", 1, 8)
	h := tr.StartRoot("req", "")
	ctx := ContextWithSpan(context.Background(), h.Context())
	if got := SpanFromContext(ctx); got != h.Context() {
		t.Fatalf("carried %+v, want %+v", got, h.Context())
	}
}

func TestStartServerContinuesOrRoots(t *testing.T) {
	tr := NewTracer("serve", 1, 64)
	up := NewTracer("client", 1, 64)
	root := up.StartRoot("request", "")

	hdr := http.Header{}
	hdr.Set(TraceparentHeader, root.Context().Traceparent())
	h := tr.StartServer(hdr, "serve", "http")
	if h.Context().Trace != root.Context().Trace {
		t.Fatal("server span did not continue the incoming trace")
	}
	h.End()

	// Unsampled incoming context: respect the upstream decision.
	un := SpanContext{Trace: root.Context().Trace, Span: root.Context().Span}
	hdr.Set(TraceparentHeader, un.Traceparent())
	if h := tr.StartServer(hdr, "serve", "http"); h.Sampled() {
		t.Fatal("server sampled a request upstream chose not to")
	}

	// No header: local root decision.
	h = tr.StartServer(http.Header{}, "serve", "http")
	if !h.Sampled() {
		t.Fatal("sample=1 server did not root a headerless request")
	}
	h.End()
}

func TestDumpRoundTripAndDebugHandler(t *testing.T) {
	tr := NewTracer("kproxy", 1, 16)
	tr.StartRoot("request", "client").End()

	var sb bytes.Buffer
	if err := tr.WriteSpans(&sb); err != nil {
		t.Fatal(err)
	}
	d, err := ReadTraceDump(bytes.NewReader(sb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Process != "kproxy" || len(d.Spans) != 1 {
		t.Fatalf("dump %+v", d)
	}

	rr := httptest.NewRecorder()
	tr.DebugHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	d2, err := ReadTraceDump(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Process != "kproxy" || len(d2.Spans) != 1 {
		t.Fatalf("debug handler dump %+v", d2)
	}
}

// TestJoinTraces merges dumps from three synthetic processes and checks
// the Chrome trace shape trace-join promises: process/thread metadata,
// pid = dump order, args carrying trace/span/proc, re-based timestamps.
func TestJoinTraces(t *testing.T) {
	client := NewTracer("kload", 1, 16)
	proxy := NewTracer("kproxy", 1, 16)
	replica := NewTracer("r0a", 1, 16)

	root := client.StartRoot("request", "client")
	att := proxy.StartSpan(root.Context(), "attempt", "r0a")
	att.SetAttr("outcome", "winner")
	serve := replica.StartSpan(att.Context(), "serve_batch", "http")
	replica.RecordSpan(serve.Context(), "queue_wait", "shard 1", time.Now(), time.Millisecond, nil)
	serve.End()
	att.End()
	root.End()

	var sb bytes.Buffer
	err := JoinTraces(&sb, []TraceDump{client.Dump(), proxy.Dump(), replica.Dump()})
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(sb.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	var spans, meta int
	traceID := root.Context().Trace.String()
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			spans++
			if ev.Args["trace"] != traceID {
				t.Fatalf("event %q on trace %v, want %s", ev.Name, ev.Args["trace"], traceID)
			}
			procs[ev.Args["proc"].(string)] = true
			if ev.Ts < 0 {
				t.Fatalf("event %q has negative ts %v", ev.Name, ev.Ts)
			}
		}
	}
	if spans != 4 {
		t.Fatalf("joined %d spans, want 4", spans)
	}
	// 3 process_name entries + one thread_name per distinct tid (client,
	// r0a, http, shard 1).
	if meta != 3+4 {
		t.Fatalf("joined %d metadata events, want 7", meta)
	}
	for _, p := range []string{"kload", "kproxy", "r0a"} {
		if !procs[p] {
			t.Fatalf("trace %s does not span process %s (got %v)", traceID, p, procs)
		}
	}
}

// TestTracerConcurrent exercises rooting, child spans, recording and
// dumping from many goroutines (run under -race).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer("p", 2, 4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.StartRoot("req", "client")
				child := tr.StartSpan(root.Context(), "attempt", "r")
				child.SetAttr("i", "x")
				child.End()
				tr.RecordSpan(root.Context(), "wait", "shard", time.Now(), time.Microsecond, nil)
				root.End()
				if i%50 == 0 {
					_ = tr.Snapshot()
					var sb bytes.Buffer
					_ = tr.WriteSpans(&sb)
				}
			}
		}()
	}
	wg.Wait()
	// 8*200 roots at 1-in-2 → 800 sampled, 3 spans each.
	if got := tr.Len(); got != 2400 {
		t.Fatalf("buffered %d spans, want 2400", got)
	}
}

func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("01-ffffffffffffffffffffffffffffffff-ffffffffffffffff-ff")
	f.Add("")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01")
	f.Add("zz-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-zzzzzzzzzzzzzzzz-zz")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01 ")
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseTraceparent(s)
		if err != nil {
			return // rejected is fine; no panic is the property
		}
		if !sc.Valid() {
			t.Fatalf("ParseTraceparent(%q) accepted an invalid context %+v", s, sc)
		}
		// Accepted contexts must round-trip through the canonical form.
		back, err := ParseTraceparent(sc.Traceparent())
		if err != nil {
			t.Fatalf("canonical form of %q rejected: %v", s, err)
		}
		if back != sc {
			t.Fatalf("round trip %+v != %+v (input %q)", back, sc, s)
		}
	})
}
