package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the binary a metrics exposition or trace came from,
// read from the Go build metadata — so bench rows, traces and scrapes are
// attributable to a commit.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

// ReadBuild returns the running binary's build identity. Fields that the
// build did not stamp (no VCS metadata in test binaries, for example) are
// left empty.
func ReadBuild() BuildInfo {
	info := BuildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Path = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// RegisterBuildInfo exports the standard build_info gauge (value fixed at
// 1, identity in the labels) into reg, named for the binary, and returns
// the identity it stamped. Every serving binary calls this so /metrics
// says which commit produced the numbers.
func RegisterBuildInfo(reg *Registry, binary string) BuildInfo {
	info := ReadBuild()
	if reg == nil {
		return info
	}
	labels := []Label{
		L("binary", binary),
		L("go_version", info.GoVersion),
	}
	if info.Version != "" {
		labels = append(labels, L("version", info.Version))
	}
	if info.Revision != "" {
		labels = append(labels, L("revision", info.Revision))
	}
	reg.Gauge("build_info", "Build identity of this binary (value is always 1).", labels...).Set(1)
	return info
}
