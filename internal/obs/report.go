package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dedukt/internal/stats"
)

// RoundReport summarizes one parse-exchange-count round across ranks.
type RoundReport struct {
	Round int
	// Imbalance is max/avg over per-rank counted items this round — the
	// paper's Table III metric (stats.Imbalance) resolved per round, which
	// is where minimizer-induced skew actually shows up.
	Imbalance float64
	// Items is the total counted-item load of the round; MaxItems the
	// heaviest rank's share.
	Items, MaxItems uint64
	// SlowestRank spent the most wall time in the round's spans;
	// SlowestWall is that time.
	SlowestRank int
	SlowestWall time.Duration
	// Retries and Faults tally the round's retry_round instants and
	// injected-fault instants (kill/delay/drop/corrupt).
	Retries, Faults uint64
	// Degraded reports that the round exhausted its retry budget somewhere.
	Degraded bool
	// ModeledCompute is the slowest rank's modeled compute time this round
	// (stage_h2d + parse + count); ModeledExchange the slowest rank's
	// modeled exchange time. These feed the overlap estimate below.
	ModeledCompute, ModeledExchange time.Duration
}

// Report is the human-readable digest of one recorded run.
type Report struct {
	Ranks  int
	Rounds []RoundReport
	// PhaseWall is the total wall time per phase, summed over ranks and
	// rounds; PhaseModeled the same for the modeled Summit time.
	PhaseWall    map[string]time.Duration
	PhaseModeled map[string]time.Duration
	// Events tallies every instant by name (fault_kill, retry_round, ...).
	Events map[string]uint64
	// SlowestRank spent the most wall time across the whole run.
	SlowestRank int
	SlowestWall time.Duration
	// ModeledSerial is the modeled round-pipeline time when every round runs
	// compute then exchange back to back; ModeledOverlapped applies the
	// overlapped schedule, where round r's exchange hides behind round r+1's
	// compute: compute(0) + Σ max(exchange(r), compute(r+1)) + exchange(last).
	ModeledSerial, ModeledOverlapped time.Duration
}

// BuildReport folds the recorded spans and instants into a Report. A nil
// recorder yields an empty report.
func (r *Recorder) BuildReport() *Report {
	rep := &Report{
		PhaseWall:    map[string]time.Duration{},
		PhaseModeled: map[string]time.Duration{},
		Events:       map[string]uint64{},
		SlowestRank:  -1,
	}
	if r == nil {
		return rep
	}
	spans := r.Spans()
	instants := r.Instants()
	rep.Ranks = r.Ranks()

	maxRound := -1
	for _, s := range spans {
		if s.Round > maxRound {
			maxRound = s.Round
		}
	}
	for _, i := range instants {
		if i.Round > maxRound {
			maxRound = i.Round
		}
	}
	if maxRound < 0 {
		return rep
	}

	type roundAcc struct {
		items    []uint64 // per rank: counted items
		rankWall []uint64 // per rank: wall ns over all phases
		compute  []uint64 // per rank: modeled ns in stage_h2d+parse+count
		exch     []uint64 // per rank: modeled ns in exchange
	}
	accs := make([]roundAcc, maxRound+1)
	for i := range accs {
		accs[i] = roundAcc{
			items:    make([]uint64, rep.Ranks),
			rankWall: make([]uint64, rep.Ranks),
			compute:  make([]uint64, rep.Ranks),
			exch:     make([]uint64, rep.Ranks),
		}
	}
	runWall := make([]uint64, rep.Ranks)

	for _, s := range spans {
		rep.PhaseWall[s.Phase] += s.Dur
		rep.PhaseModeled[s.Phase] += s.Modeled
		if s.Round < 0 || s.Round > maxRound || s.Rank < 0 || s.Rank >= rep.Ranks {
			continue
		}
		a := &accs[s.Round]
		a.rankWall[s.Rank] += uint64(s.Dur)
		runWall[s.Rank] += uint64(s.Dur)
		switch s.Phase {
		case PhaseCount:
			a.items[s.Rank] += s.Items
			a.compute[s.Rank] += uint64(s.Modeled)
		case PhaseStageH2D, PhaseParse:
			a.compute[s.Rank] += uint64(s.Modeled)
		case PhaseExchange:
			a.exch[s.Rank] += uint64(s.Modeled)
		}
	}
	for _, i := range instants {
		rep.Events[i.Name]++
	}

	rep.Rounds = make([]RoundReport, maxRound+1)
	for rd := range rep.Rounds {
		a := &accs[rd]
		rr := RoundReport{Round: rd, SlowestRank: -1}
		rr.Imbalance = stats.Imbalance(a.items)
		for rk, n := range a.items {
			rr.Items += n
			if n > rr.MaxItems {
				rr.MaxItems = n
			}
			if rr.SlowestRank < 0 || a.rankWall[rk] > a.rankWall[rr.SlowestRank] {
				rr.SlowestRank = rk
			}
		}
		if rr.SlowestRank >= 0 {
			rr.SlowestWall = time.Duration(a.rankWall[rr.SlowestRank])
		}
		for rk := range a.compute {
			if d := time.Duration(a.compute[rk]); d > rr.ModeledCompute {
				rr.ModeledCompute = d
			}
			if d := time.Duration(a.exch[rk]); d > rr.ModeledExchange {
				rr.ModeledExchange = d
			}
		}
		rep.Rounds[rd] = rr
	}
	for rd, rr := range rep.Rounds {
		rep.ModeledSerial += rr.ModeledCompute + rr.ModeledExchange
		if rd == 0 {
			rep.ModeledOverlapped += rr.ModeledCompute
		}
		if rd+1 < len(rep.Rounds) {
			hidden := rep.Rounds[rd+1].ModeledCompute
			if rr.ModeledExchange > hidden {
				hidden = rr.ModeledExchange
			}
			rep.ModeledOverlapped += hidden
		} else {
			rep.ModeledOverlapped += rr.ModeledExchange
		}
	}
	for _, i := range instants {
		if i.Round < 0 || i.Round > maxRound {
			continue
		}
		rr := &rep.Rounds[i.Round]
		switch i.Name {
		case EvRetry:
			rr.Retries++
		case EvKill, EvDelay, EvDrop, EvCorrupt:
			rr.Faults++
		case EvDegraded:
			rr.Degraded = true
		}
	}
	for rk, w := range runWall {
		if rep.SlowestRank < 0 || w > uint64(rep.SlowestWall) {
			rep.SlowestRank = rk
			rep.SlowestWall = time.Duration(w)
		}
	}
	return rep
}

// WriteText renders the report as the run summary `dedukt -report` prints.
func (rep *Report) WriteText(w io.Writer) error {
	if len(rep.Rounds) == 0 {
		_, err := fmt.Fprintln(w, "observability report: no spans recorded")
		return err
	}
	fmt.Fprintf(w, "observability report: %d ranks, %d rounds\n\n", rep.Ranks, len(rep.Rounds))

	t := stats.NewTable("round", "counted items", "imbalance", "slowest rank", "rank wall", "retries", "faults", "degraded")
	for _, rr := range rep.Rounds {
		deg := ""
		if rr.Degraded {
			deg = "DEGRADED"
		}
		t.Row(rr.Round, stats.Count(rr.Items), rr.Imbalance,
			rr.SlowestRank, rr.SlowestWall, rr.Retries, rr.Faults, deg)
	}
	fmt.Fprint(w, t)

	fmt.Fprintf(w, "\nper-phase totals (all ranks × rounds):\n")
	phases := make([]string, 0, len(rep.PhaseWall))
	for p := range rep.PhaseWall {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	pt := stats.NewTable("phase", "wall", "modeled")
	for _, p := range phases {
		pt.Row(p, rep.PhaseWall[p], rep.PhaseModeled[p])
	}
	fmt.Fprint(w, pt)

	if rep.ModeledSerial > 0 {
		saved := rep.ModeledSerial - rep.ModeledOverlapped
		fmt.Fprintf(w, "\nmodeled round pipeline: serial %s, overlapped %s (%.1f%% hidden by overlap)\n",
			stats.Seconds(rep.ModeledSerial), stats.Seconds(rep.ModeledOverlapped),
			100*float64(saved)/float64(rep.ModeledSerial))
	}

	if len(rep.Events) > 0 {
		fmt.Fprintf(w, "\nevents:\n")
		names := make([]string, 0, len(rep.Events))
		for n := range rep.Events {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "  %-16s %d\n", n, rep.Events[n])
		}
	}
	if rep.SlowestRank >= 0 {
		fmt.Fprintf(w, "\nslowest rank overall: rank %d (%s of phase wall time)\n",
			rep.SlowestRank, stats.Seconds(rep.SlowestWall))
	}
	return nil
}
