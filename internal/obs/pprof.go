package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns the net/http/pprof surface on a private mux —
// /debug/pprof/ index, cmdline, profile, symbol, trace, and the named
// runtime profiles — without touching http.DefaultServeMux, so a binary
// only exposes profiling when it explicitly mounts this handler.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServePprof starts the opt-in profiling listener behind the -pprof-addr
// flag: off (a no-op) when addr is empty, otherwise an HTTP server on its
// own port serving PprofHandler in a background goroutine. Serving errors
// are reported through logf (log.Printf-shaped) rather than killing the
// process — profiling is diagnostics, never the service.
func ServePprof(addr string, logf func(format string, args ...any)) {
	if addr == "" {
		return
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logf("pprof listener: %v", err)
		return
	}
	logf("pprof listening on %s", ln.Addr())
	go func() {
		if err := http.Serve(ln, PprofHandler()); err != nil {
			logf("pprof server: %v", err)
		}
	}()
}
