package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderZeroAlloc pins the overhead contract: a disabled recorder
// must cost zero allocations on every hot-path operation, so instrumented
// code can leave the calls in unconditionally.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var rec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		h := rec.Begin(3, 1, PhaseExchange)
		h.End(time.Millisecond, 42)
		rec.Instant(3, 1, EvDrop)
		_ = rec.Registry()
		_ = rec.Spans()
		_ = rec.Instants()
		_ = rec.Ranks()
	}); n != 0 {
		t.Fatalf("nil recorder allocates %.1f per op, want 0", n)
	}
}

func TestSpanRecording(t *testing.T) {
	rec := NewRecorder(2)
	h := rec.Begin(1, 0, PhaseParse)
	time.Sleep(time.Millisecond)
	h.End(5*time.Millisecond, 17)
	rec.Instant(1, 0, EvCorrupt)

	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Rank != 1 || s.Round != 0 || s.Phase != PhaseParse || s.Items != 17 || s.Modeled != 5*time.Millisecond {
		t.Fatalf("span = %+v", s)
	}
	if s.Start < 0 || s.Dur < time.Millisecond {
		t.Fatalf("span timing: start=%v dur=%v", s.Start, s.Dur)
	}
	ins := rec.Instants()
	if len(ins) != 1 || ins[0].Name != EvCorrupt || ins[0].At < s.Start {
		t.Fatalf("instants = %+v", ins)
	}
}

// TestShardGrowth: ranks beyond the declared world appear on demand, and
// concurrent recording from many goroutines is race-clean (run with -race).
func TestShardGrowth(t *testing.T) {
	rec := NewRecorder(1)
	var wg sync.WaitGroup
	for rank := 0; rank < 8; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				h := rec.Begin(rank, round, PhaseCount)
				h.End(0, uint64(rank))
				rec.Instant(rank, round, EvRetry)
			}
		}(rank)
	}
	wg.Wait()
	if got := rec.Ranks(); got != 8 {
		t.Fatalf("ranks = %d, want 8", got)
	}
	if got := len(rec.Spans()); got != 32 {
		t.Fatalf("spans = %d, want 32", got)
	}
	if got := len(rec.Instants()); got != 32 {
		t.Fatalf("instants = %d, want 32", got)
	}
}

func TestBuildReport(t *testing.T) {
	rec := NewRecorder(2)
	add := func(rank, round int, phase string, dur time.Duration, items uint64) {
		sh := rec.shard(rank)
		sh.spans = append(sh.spans, Span{Rank: rank, Round: round, Phase: phase, Dur: dur, Items: items})
	}
	// Round 0: rank 1 counts 3× rank 0's load and is slower.
	add(0, 0, PhaseCount, 1*time.Millisecond, 100)
	add(1, 0, PhaseCount, 4*time.Millisecond, 300)
	// Round 1: balanced.
	add(0, 1, PhaseCount, 2*time.Millisecond, 200)
	add(1, 1, PhaseCount, 2*time.Millisecond, 200)
	rec.Instant(0, 0, EvDrop)
	rec.Instant(0, 0, EvRetry)
	rec.Instant(1, 1, EvDegraded)
	rec.Instant(0, -1, EvDeadline) // roundless event: tallied, no row

	rep := rec.BuildReport()
	if len(rep.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rep.Rounds))
	}
	r0 := rep.Rounds[0]
	if r0.Items != 400 || r0.MaxItems != 300 || r0.Imbalance != 1.5 {
		t.Fatalf("round 0 = %+v", r0)
	}
	if r0.SlowestRank != 1 || r0.SlowestWall != 4*time.Millisecond {
		t.Fatalf("round 0 slowest = rank %d %v", r0.SlowestRank, r0.SlowestWall)
	}
	if r0.Retries != 1 || r0.Faults != 1 || r0.Degraded {
		t.Fatalf("round 0 tallies = %+v", r0)
	}
	r1 := rep.Rounds[1]
	if r1.Imbalance != 1 || !r1.Degraded {
		t.Fatalf("round 1 = %+v", r1)
	}
	if rep.Events[EvDeadline] != 1 {
		t.Fatalf("deadline event lost: %v", rep.Events)
	}
	if rep.SlowestRank != 1 {
		t.Fatalf("run slowest rank = %d, want 1", rep.SlowestRank)
	}
	if rep.PhaseWall[PhaseCount] != 9*time.Millisecond {
		t.Fatalf("count wall = %v", rep.PhaseWall[PhaseCount])
	}

	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2 ranks, 2 rounds", "DEGRADED", "deadline_hit", "slowest rank overall: rank 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report text missing %q:\n%s", want, out)
		}
	}
}

func TestNilReport(t *testing.T) {
	var rec *Recorder
	rep := rec.BuildReport()
	if len(rep.Rounds) != 0 {
		t.Fatalf("nil report rounds = %d", len(rep.Rounds))
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no spans recorded") {
		t.Fatalf("nil report text: %q", sb.String())
	}
}
