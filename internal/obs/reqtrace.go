package obs

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing: the per-request half of the observability layer. The
// Recorder above captures a *run* (per-rank, per-round phase spans); a
// Tracer captures *requests* as they cross the serving cluster — kload
// mints a trace context, kproxy and every kserve replica continue it over
// the W3C traceparent header, and each process keeps its own bounded span
// buffer. kmertools trace-join (JoinTraces) merges the per-process dumps
// into one Chrome/Perfetto trace keyed by trace ID, so a single hedged
// lookup is visible end-to-end: router admission, both hedge attempts,
// the replica queue wait, the micro-batch, the probe.
//
// Spans carry wall-clock (unix) timestamps, not recorder-epoch offsets:
// the processes being joined share a machine clock, not an epoch.
//
// A nil *Tracer is valid and free, like a nil *Recorder: every method
// nil-checks, and an unsampled SpanContext short-circuits before any
// allocation, so the kserve lookup hot path stays at its 2-allocs/op
// budget when tracing is off (pinned by TestLookupAllocRegression).

// TraceID is a 128-bit trace identifier shared by every span of one
// request; SpanID is a 64-bit per-span identifier.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is all-zero (invalid per W3C trace
// context).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is all-zero.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext is the propagated slice of a trace: which trace the request
// belongs to, which span is the current parent, and whether the head-based
// sampling decision (made once, at the root) kept it. The zero value is
// "not traced" and makes every downstream operation a no-op.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context identifies a real trace (nonzero trace
// and span IDs, per the W3C trace-context invalid-value rule).
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// TraceparentHeader is the HTTP header a trace context travels in.
const TraceparentHeader = "traceparent"

// Traceparent renders the context in W3C traceparent form:
// "00-<32 hex trace>-<16 hex span>-<2 hex flags>", flags bit 0 = sampled.
func (c SpanContext) Traceparent() string {
	flags := "00"
	if c.Sampled {
		flags = "01"
	}
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent value. Malformed headers —
// wrong field lengths, non-hex digits, uppercase hex, an unknown version,
// or all-zero IDs — are rejected with an error; callers treat a rejected
// header as "no incoming trace" rather than failing the request.
func ParseTraceparent(s string) (SpanContext, error) {
	// version(2) '-' trace(32) '-' span(16) '-' flags(2)
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad shape", s)
	}
	ver, ok := hexByte(s[0], s[1])
	if !ok || ver == 0xff {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad version", s)
	}
	var c SpanContext
	for i := 0; i < 16; i++ {
		b, ok := hexByte(s[3+2*i], s[4+2*i])
		if !ok {
			return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad trace id", s)
		}
		c.Trace[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(s[36+2*i], s[37+2*i])
		if !ok {
			return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad span id", s)
		}
		c.Span[i] = b
	}
	flags, ok := hexByte(s[53], s[54])
	if !ok {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad flags", s)
	}
	if c.Trace.IsZero() || c.Span.IsZero() {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: zero id", s)
	}
	c.Sampled = flags&1 != 0
	return c, nil
}

// hexByte decodes two lowercase-hex digits (the W3C format forbids
// uppercase).
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(b byte) (byte, bool) {
	switch {
	case b >= '0' && b <= '9':
		return b - '0', true
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10, true
	}
	return 0, false
}

// SpanFromHeader extracts the incoming trace context from h, returning the
// zero (untraced) context when the header is absent or malformed.
func SpanFromHeader(h http.Header) SpanContext {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return SpanContext{}
	}
	c, err := ParseTraceparent(v)
	if err != nil {
		return SpanContext{}
	}
	return c
}

// spanCtxKey carries a SpanContext through a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc, so tracing flows through call
// chains (HTTP handler → service → shard) without changing signatures.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the SpanContext carried by ctx, or the zero
// (untraced) context.
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// ReqSpan is one completed request-scoped span, shaped for the per-process
// JSON dump (WriteSpans) that kmertools trace-join consumes. Tid groups
// spans onto display threads within the process — "shard 3" on a replica,
// a replica address on the proxy, "client" on the load generator.
type ReqSpan struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Tid     string            `json:"tid,omitempty"`
	StartNS int64             `json:"start_unix_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TraceDump is one process's span buffer, the unit trace-join merges.
type TraceDump struct {
	Process string    `json:"process"`
	Dropped uint64    `json:"dropped,omitempty"`
	Spans   []ReqSpan `json:"spans"`
}

// Tracer records request spans for one process. Create with NewTracer; a
// nil Tracer is a valid no-op sink (tracing off).
type Tracer struct {
	process string
	sample  int // root sampling: keep 1 in sample; <=0 never roots
	limit   int // max buffered spans; older spans win, overflow is counted

	ctr     atomic.Uint64 // root admission counter (head sampling)
	dropped atomic.Uint64

	mu    sync.Mutex
	rng   *rand.Rand // ID minting; guarded by mu
	spans []ReqSpan
}

// NewTracer builds a tracer for the named process. sample is the head
// sampling rate for locally minted roots: 1 keeps every request, N keeps 1
// in N, <=0 roots nothing (the tracer still records spans continuing a
// sampled incoming context). limit bounds the span buffer (default 65536);
// once full, new spans are counted as dropped rather than evicting older
// ones, so the head of a burst — the part a smoke test inspects — is kept.
func NewTracer(process string, sample, limit int) *Tracer {
	if limit <= 0 {
		limit = 65536
	}
	return &Tracer{
		process: process,
		sample:  sample,
		limit:   limit,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(os.Getpid())<<32)),
	}
}

// Process returns the tracer's process name ("" for nil).
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	return t.process
}

// mintIDs returns a fresh span ID and, when trace is zero, a fresh trace ID.
func (t *Tracer) mintIDs(trace TraceID) (TraceID, SpanID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var span SpanID
	for span.IsZero() {
		u := t.rng.Uint64()
		for i := range span {
			span[i] = byte(u >> (8 * i))
		}
	}
	for trace.IsZero() {
		hi, lo := t.rng.Uint64(), t.rng.Uint64()
		for i := 0; i < 8; i++ {
			trace[i] = byte(hi >> (8 * i))
			trace[8+i] = byte(lo >> (8 * i))
		}
	}
	return trace, span
}

// ReqSpanHandle is an open request span. The zero handle (nil tracer,
// unsampled parent) is valid and free: SetAttr and End do nothing.
type ReqSpanHandle struct {
	t      *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	tid    string
	start  time.Time
	attrs  map[string]string
}

// StartRoot opens a new root span, minting a trace ID, if this request
// passes head sampling (1 in sample); otherwise it returns a zero handle
// and the request proceeds untraced end-to-end.
func (t *Tracer) StartRoot(name, tid string) ReqSpanHandle {
	if t == nil || t.sample <= 0 {
		return ReqSpanHandle{}
	}
	if t.sample > 1 && (t.ctr.Add(1)-1)%uint64(t.sample) != 0 {
		return ReqSpanHandle{}
	}
	trace, span := t.mintIDs(TraceID{})
	return ReqSpanHandle{
		t:     t,
		sc:    SpanContext{Trace: trace, Span: span, Sampled: true},
		name:  name,
		tid:   tid,
		start: time.Now(),
	}
}

// StartSpan opens a child span of parent. When parent is unsampled (or the
// tracer nil) it returns a zero handle, so the sampling decision made at
// the root silently disables the whole downstream tree.
func (t *Tracer) StartSpan(parent SpanContext, name, tid string) ReqSpanHandle {
	if t == nil || !parent.Sampled || !parent.Valid() {
		return ReqSpanHandle{}
	}
	_, span := t.mintIDs(parent.Trace)
	return ReqSpanHandle{
		t:      t,
		sc:     SpanContext{Trace: parent.Trace, Span: span, Sampled: true},
		parent: parent.Span,
		name:   name,
		tid:    tid,
		start:  time.Now(),
	}
}

// StartServer opens the server-side span for an incoming HTTP request:
// continue the header's context when one arrived sampled, otherwise make a
// local root-sampling decision (covers curl and harnesses that don't
// propagate). A malformed traceparent is treated as absent.
func (t *Tracer) StartServer(h http.Header, name, tid string) ReqSpanHandle {
	if t == nil {
		return ReqSpanHandle{}
	}
	if sc := SpanFromHeader(h); sc.Valid() {
		if !sc.Sampled {
			return ReqSpanHandle{}
		}
		return t.StartSpan(sc, name, tid)
	}
	return t.StartRoot(name, tid)
}

// Context returns the handle's span context, the value to propagate to
// children (header injection, ContextWithSpan). Zero for a zero handle.
func (h ReqSpanHandle) Context() SpanContext { return h.sc }

// Sampled reports whether the handle records anything.
func (h ReqSpanHandle) Sampled() bool { return h.t != nil }

// SetAttr attaches a key=value annotation ("outcome"="winner",
// "replica"=addr). No-op on a zero handle.
func (h *ReqSpanHandle) SetAttr(k, v string) {
	if h.t == nil {
		return
	}
	if h.attrs == nil {
		h.attrs = make(map[string]string, 4)
	}
	h.attrs[k] = v
}

// End closes the span and buffers it. No-op on a zero handle.
func (h ReqSpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.record(ReqSpan{
		Trace:   h.sc.Trace.String(),
		Span:    h.sc.Span.String(),
		Parent:  parentString(h.parent),
		Name:    h.name,
		Tid:     h.tid,
		StartNS: h.start.UnixNano(),
		DurNS:   int64(time.Since(h.start)),
		Attrs:   h.attrs,
	})
}

func parentString(p SpanID) string {
	if p.IsZero() {
		return ""
	}
	return p.String()
}

// RecordSpan records an already-measured interval as a child span of
// parent — the shape used where the start was stamped long before the
// recording site, like a kserve call's queue wait (stamped at enqueue,
// recorded by the shard worker at dequeue). No-op when parent is unsampled
// or the tracer nil.
func (t *Tracer) RecordSpan(parent SpanContext, name, tid string, start time.Time, dur time.Duration, attrs map[string]string) {
	if t == nil || !parent.Sampled || !parent.Valid() {
		return
	}
	_, span := t.mintIDs(parent.Trace)
	t.record(ReqSpan{
		Trace:   parent.Trace.String(),
		Span:    span.String(),
		Parent:  parent.Span.String(),
		Name:    name,
		Tid:     tid,
		StartNS: start.UnixNano(),
		DurNS:   int64(dur),
		Attrs:   attrs,
	})
}

func (t *Tracer) record(sp ReqSpan) {
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Len returns the number of buffered spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Snapshot copies the buffered spans, ordered by start time.
func (t *Tracer) Snapshot() []ReqSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]ReqSpan(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool { return out[a].StartNS < out[b].StartNS })
	return out
}

// Dump snapshots the buffer as a TraceDump.
func (t *Tracer) Dump() TraceDump {
	if t == nil {
		return TraceDump{Spans: []ReqSpan{}}
	}
	return TraceDump{Process: t.process, Dropped: t.dropped.Load(), Spans: t.Snapshot()}
}

// WriteSpans writes the process's span dump as JSON — the -trace-out /
// GET /debug/trace payload, and trace-join's input. A nil tracer writes a
// valid empty dump.
func (t *Tracer) WriteSpans(w io.Writer) error {
	return json.NewEncoder(w).Encode(t.Dump())
}

// WriteSpansFile writes the dump to path (the -trace-out flag).
func (t *Tracer) WriteSpansFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteSpans(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DebugHandler serves the live span buffer as JSON — mounted at
// /debug/trace on kserve and kproxy so a smoke script can collect dumps
// without waiting for a graceful shutdown.
func (t *Tracer) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteSpans(w)
	})
}

// ReadTraceDump parses one process's span dump.
func ReadTraceDump(r io.Reader) (TraceDump, error) {
	var d TraceDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return TraceDump{}, err
	}
	return d, nil
}

// JoinTraces merges per-process span dumps into one Chrome trace-event
// JSON document (Perfetto-loadable): pid = process (dump order), tid =
// the span's Tid group within that process, and every event's args carry
// the trace/span/parent IDs plus the process name, so a single request
// can be filtered across processes by its trace ID. Timestamps are
// re-based to the earliest span so the trace starts at zero.
func JoinTraces(w io.Writer, dumps []TraceDump) error {
	var origin int64
	first := true
	for _, d := range dumps {
		for _, sp := range d.Spans {
			if first || sp.StartNS < origin {
				origin = sp.StartNS
				first = false
			}
		}
	}

	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	var body []traceEvent
	for pi, d := range dumps {
		pid := pi + 1
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": d.Process},
		})
		// Stable thread numbering: tids sorted by name within the process.
		names := map[string]bool{}
		for _, sp := range d.Spans {
			names[sp.Tid] = true
		}
		ordered := make([]string, 0, len(names))
		for n := range names {
			ordered = append(ordered, n)
		}
		sort.Strings(ordered)
		tids := make(map[string]int, len(ordered))
		for i, n := range ordered {
			tids[n] = i
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: i,
				Args: map[string]any{"name": threadName(n)},
			})
		}
		for _, sp := range d.Spans {
			dur := float64(sp.DurNS) / 1e3
			args := map[string]any{
				"trace": sp.Trace,
				"span":  sp.Span,
				"proc":  d.Process,
			}
			if sp.Parent != "" {
				args["parent"] = sp.Parent
			}
			for k, v := range sp.Attrs {
				args[k] = v
			}
			body = append(body, traceEvent{
				Name: sp.Name, Ph: "X", Pid: pid, Tid: tids[sp.Tid],
				Ts: float64(sp.StartNS-origin) / 1e3, Dur: &dur, Args: args,
			})
		}
	}
	// Same deterministic order as WriteTrace: by timestamp, longer spans
	// first at equal start, then by pid/tid.
	sort.SliceStable(body, func(a, b int) bool {
		if body[a].Ts != body[b].Ts {
			return body[a].Ts < body[b].Ts
		}
		da, db := 0.0, 0.0
		if body[a].Dur != nil {
			da = *body[a].Dur
		}
		if body[b].Dur != nil {
			db = *body[b].Dur
		}
		if da != db {
			return da > db
		}
		if body[a].Pid != body[b].Pid {
			return body[a].Pid < body[b].Pid
		}
		return body[a].Tid < body[b].Tid
	})
	f.TraceEvents = append(f.TraceEvents, body...)
	return json.NewEncoder(w).Encode(f)
}

func threadName(tid string) string {
	if tid == "" {
		return "main"
	}
	return tid
}
