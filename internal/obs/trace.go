package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"
)

// traceEvent is one entry of the Chrome trace-event format (the JSON array
// flavor Perfetto and chrome://tracing load). Fields follow the Trace Event
// Format spec: ph "M" = metadata, "X" = complete span, "i" = instant.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds since trace origin
	Dur  *float64       `json:"dur,omitempty"` // microseconds, complete events only
	S    string         `json:"s,omitempty"`   // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level JSON object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports every recorded span and instant as Chrome trace-event
// JSON. One trace thread per rank (tid = rank); span args carry the round,
// the modeled Summit time in microseconds, and the item count, so both the
// Go wall timeline and the modeled timeline are inspectable in Perfetto.
// A nil recorder writes a valid empty trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if r != nil {
		f.TraceEvents = r.traceEvents()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

func (r *Recorder) traceEvents() []traceEvent {
	spans := r.Spans()
	instants := r.Instants()

	ranks := map[int]bool{}
	for _, s := range spans {
		ranks[s.Rank] = true
	}
	for _, i := range instants {
		ranks[i.Rank] = true
	}
	rankIDs := make([]int, 0, len(ranks))
	for rk := range ranks {
		rankIDs = append(rankIDs, rk)
	}
	sort.Ints(rankIDs)

	events := make([]traceEvent, 0, len(spans)+len(instants)+len(rankIDs)+1)
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "dedukt"},
	})
	for _, rk := range rankIDs {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: rk,
			Args: map[string]any{"name": "rank " + strconv.Itoa(rk)},
		})
	}

	body := make([]traceEvent, 0, len(spans)+len(instants))
	for _, s := range spans {
		dur := micros(s.Dur)
		args := map[string]any{
			"round":      s.Round,
			"modeled_us": micros(s.Modeled),
		}
		if s.Items > 0 {
			args["items"] = s.Items
		}
		body = append(body, traceEvent{
			Name: s.Phase, Ph: "X", Pid: 0, Tid: s.Rank,
			Ts: micros(s.Start), Dur: &dur, Args: args,
		})
	}
	for _, i := range instants {
		body = append(body, traceEvent{
			Name: i.Name, Ph: "i", Pid: 0, Tid: i.Rank,
			Ts: micros(i.At), S: "t",
			Args: map[string]any{"round": i.Round},
		})
	}
	// Deterministic order: by timestamp, longer spans first at equal start
	// so enclosing spans precede nested ones, then by rank.
	sort.SliceStable(body, func(a, b int) bool {
		if body[a].Ts != body[b].Ts {
			return body[a].Ts < body[b].Ts
		}
		da, db := 0.0, 0.0
		if body[a].Dur != nil {
			da = *body[a].Dur
		}
		if body[b].Dur != nil {
			db = *body[b].Dur
		}
		if da != db {
			return da > db
		}
		return body[a].Tid < body[b].Tid
	})
	return append(events, body...)
}

func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
