package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a Prometheus-text-format metrics registry. Every subsystem —
// the pipeline, the mpisim collectives, the gpusim kernel engine, the fault
// injector, and the kserve serving layer — registers counters, gauges and
// histograms here; WritePrometheus renders the whole set as one exposition
// document ("# HELP" / "# TYPE" lines plus samples).
//
// Registration is get-or-create: asking for the same (name, labels) twice
// returns the same metric, so hot paths may resolve metrics lazily without
// coordinating ownership. All metric operations are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Label is one name="value" pair attached to a metric series.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// family is every series sharing one metric name.
type family struct {
	name, help, typ string

	mu     sync.Mutex
	series map[string]*series
	order  []*series
}

// series is one labeled instance of a metric.
type series struct {
	labels  string // rendered `k="v",k2="v2"` (no braces), "" when unlabeled
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric. Buckets are upper bounds
// in ascending order; an implicit +Inf bucket is always present.
type Histogram struct {
	upper   []float64
	buckets []atomic.Uint64 // len(upper)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the per-bucket (non-cumulative) counts, the sample count
// and the sample sum. The returned slice has one entry per configured upper
// bound plus a final +Inf entry.
func (h *Histogram) Snapshot() (buckets []uint64, count uint64, sum float64) {
	buckets = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.count.Load(), math.Float64frombits(h.sumBits.Load())
}

// Count returns the number of samples observed so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) from the bucket counts,
// interpolating linearly within the bucket that straddles the target rank.
// Samples in the +Inf bucket are attributed to the last finite upper bound
// (the estimate saturates there — a bounded answer beats a useless +Inf).
// Returns 0 when the histogram is empty. The estimate is only as fine as
// the bucket layout; kcluster uses it to derive hedge deadlines, where a
// bucket-resolution answer is exactly what is wanted.
func (h *Histogram) Quantile(q float64) float64 {
	buckets, count, _ := h.Snapshot()
	if count == 0 || len(h.upper) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	var cum float64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next || i == len(buckets)-1 {
			if i >= len(h.upper) {
				return h.upper[len(h.upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			hi := h.upper[i]
			frac := (rank - cum) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.upper[len(h.upper)-1]
}

// ExpBuckets returns n ascending upper bounds starting at start and growing
// by factor — the usual latency-histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("obs: bad ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter returns the counter with the given name and labels, creating it
// (and its family) on first use. The name must stay one metric type; mixing
// types under one name panics (programmer error).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	var c *Counter
	r.getSeries(name, help, "counter", labels, func(s *series) {
		if s.counter == nil {
			s.counter = &Counter{}
		}
		c = s.counter
	})
	return c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	var g *Gauge
	r.getSeries(name, help, "gauge", labels, func(s *series) {
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
		g = s.gauge
	})
	return g
}

// GaugeFunc registers a gauge whose value is read from f at exposition time
// (queue depths, cache sizes — state that already lives elsewhere). Calling
// it again for the same (name, labels) replaces f. f must not register or
// render metrics itself (it runs under the family lock).
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.getSeries(name, help, "gauge", labels, func(s *series) {
		s.gaugeFn = f
	})
}

// Histogram returns the histogram with the given name, labels and upper
// bounds, creating it on first use. Buckets must be ascending; they are
// fixed at first registration.
func (r *Registry) Histogram(name, help string, upper []float64, labels ...Label) *Histogram {
	var out *Histogram
	r.getSeries(name, help, "histogram", labels, func(s *series) {
		if s.hist == nil {
			h := &Histogram{
				upper:   append([]float64(nil), upper...),
				buckets: make([]atomic.Uint64, len(upper)+1),
			}
			if !sort.Float64sAreSorted(h.upper) {
				panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
			}
			s.hist = h
		}
		out = s.hist
	})
	return out
}

// getSeries resolves (name, labels) to its series, creating the family and
// series on first use, and runs init on it under the family lock — the
// lock is what makes concurrent get-or-create of the same metric safe.
func (r *Registry) getSeries(name, help, typ string, labels []Label, init func(*series)) {
	r.mu.Lock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.fams[name] = f
	}
	r.mu.Unlock()
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
		f.order = append(f.order, s)
	}
	init(s)
}

// renderLabels renders labels in the given order as `k="v",k2="v2"`.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), families sorted by name, series
// sorted by rendered label set. Both orders are fully deterministic —
// registration order can differ between otherwise-identical processes
// (lazy get-or-create races, conditional features), and a scrape diff or
// golden-file test must not flap on it (pinned by
// TestWritePrometheusGolden).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		// Series instruments are written under the family lock (lazy init,
		// GaugeFunc replacement), so render under it too.
		f.mu.Lock()
		ordered := append([]*series(nil), f.order...)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].labels < ordered[b].labels })
		for _, s := range ordered {
			writeSeries(&sb, f, s)
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeSeries(sb *strings.Builder, f *family, s *series) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(sb, "%s %d\n", sampleName(f.name, s.labels), s.counter.Value())
	case s.gaugeFn != nil:
		fmt.Fprintf(sb, "%s %s\n", sampleName(f.name, s.labels), formatFloat(s.gaugeFn()))
	case s.gauge != nil:
		fmt.Fprintf(sb, "%s %s\n", sampleName(f.name, s.labels), formatFloat(s.gauge.Value()))
	case s.hist != nil:
		buckets, count, sum := s.hist.Snapshot()
		var cum uint64
		for i, n := range buckets {
			cum += n
			le := "+Inf"
			if i < len(s.hist.upper) {
				le = formatFloat(s.hist.upper[i])
			}
			labels := s.labels
			if labels != "" {
				labels += ","
			}
			labels += `le="` + le + `"`
			fmt.Fprintf(sb, "%s %d\n", sampleName(f.name+"_bucket", labels), cum)
		}
		fmt.Fprintf(sb, "%s %s\n", sampleName(f.name+"_sum", s.labels), formatFloat(sum))
		fmt.Fprintf(sb, "%s %d\n", sampleName(f.name+"_count", s.labels), count)
	}
}

func sampleName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
