// Package obs is the run-wide observability layer: per-rank, per-round
// phase spans and fault instants (exported as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing), a Prometheus-text-format
// metrics registry shared by every subsystem, and a human-readable run
// report (per-round load-imbalance trajectory, slowest-rank attribution,
// retry and fault tallies).
//
// The paper's evaluation is phase-resolved — Fig. 3's parse/exchange/count
// breakdown, Fig. 8's Alltoallv time, Table III's load imbalance — but
// aggregates hide the per-rank, per-round timeline where stragglers,
// retries and minimizer-induced skew actually happen. A Recorder captures
// that timeline while the run executes.
//
// A nil *Recorder is valid and free: every method nil-checks and returns
// immediately without allocating, so instrumented hot paths cost nothing
// when observability is off (verified by a zero-allocation test).
package obs

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"
)

// Phase names for the pipeline's per-round spans. Components may record
// additional phases; these are the canonical set the report understands.
const (
	PhaseParse    = "parse"           // parse & process (kernel or scalar loop)
	PhaseStageH2D = "stage_h2d"       // host→device staging of the round's reads
	PhaseExchange = "exchange"        // announce + payload Alltoallv (all attempts)
	PhaseGather   = "gather"          // hierarchical exchange: intra-node gather onto the node leader
	PhaseLeader   = "leader_alltoall" // hierarchical exchange: inter-node Alltoallv between leaders
	PhaseScatter  = "scatter"         // hierarchical exchange: intra-node scatter from the leader
	PhaseRetry    = "retry"           // one retry attempt inside an exchange
	PhaseCount    = "count"           // table insertion
	PhaseCkpt     = "checkpoint"      // persisting a round checkpoint slice
	PhaseRecovery = "recovery"        // shrink reconfiguration + state reload
	PhaseSpill    = "spill_write"     // out-of-core pass 1: appending received items to disk bins
	PhaseBinCount = "bin_count"       // out-of-core pass 2: counting one spill bin
)

// Instant event names for faults and recovery milestones.
const (
	EvKill     = "fault_kill"
	EvDelay    = "fault_delay"
	EvDrop     = "fault_drop"
	EvCorrupt  = "fault_corrupt"
	EvRetry    = "retry_round"
	EvDegraded = "degraded_round"
	EvDeadline = "deadline_hit"
	EvCkpt     = "checkpoint_round" // a round checkpoint was persisted
	EvShrink   = "shrink_recovery"  // survivors completed a shrink recovery
)

// Span is one completed phase interval on one rank.
type Span struct {
	Rank, Round int
	Phase       string
	// Start is the offset from the recorder epoch; Dur the measured Go wall
	// time of the phase.
	Start, Dur time.Duration
	// Modeled is the Summit-projected time of the phase slice (0 when the
	// phase has no model component).
	Modeled time.Duration
	// Items is the number of items the phase handled (parsed, exchanged or
	// counted units) — the per-round load the report's imbalance trajectory
	// is computed over.
	Items uint64
}

// Instant is one point event on one rank (an injected fault, a retry
// decision, a degraded round).
type Instant struct {
	Rank, Round int
	Name        string
	At          time.Duration // offset from the recorder epoch
}

// rankShard is one rank's private span/instant buffer. Rank goroutines only
// touch their own shard, so the mutex is uncontended in steady state; it
// exists so exporters can read concurrently with a live run.
type rankShard struct {
	mu       sync.Mutex
	spans    []Span
	instants []Instant
	label    context.Context // pprof labels: rank only
}

// Recorder captures spans, instants and metrics for one run. Create with
// NewRecorder; a nil Recorder is a valid no-op sink.
type Recorder struct {
	epoch time.Time
	reg   *Registry

	mu     sync.Mutex
	shards []*rankShard
}

// NewRecorder builds a recorder expecting the given number of ranks (more
// ranks may appear later; shards grow on demand).
func NewRecorder(ranks int) *Recorder {
	if ranks < 0 {
		ranks = 0
	}
	r := &Recorder{epoch: time.Now(), reg: NewRegistry()}
	r.shards = make([]*rankShard, 0, ranks)
	for i := 0; i < ranks; i++ {
		r.shards = append(r.shards, newShard(i))
	}
	return r
}

func newShard(rank int) *rankShard {
	return &rankShard{
		label: pprof.WithLabels(context.Background(),
			pprof.Labels("rank", strconv.Itoa(rank))),
	}
}

// Registry returns the recorder's metrics registry (nil for a nil recorder:
// callers guard metric registration behind a nil check like spans).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Epoch returns the recorder's time origin.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// shard returns rank's buffer, growing the shard table when a rank beyond
// the declared world appears.
func (r *Recorder) shard(rank int) *rankShard {
	if rank < 0 {
		rank = 0
	}
	r.mu.Lock()
	for rank >= len(r.shards) {
		r.shards = append(r.shards, newShard(len(r.shards)))
	}
	s := r.shards[rank]
	r.mu.Unlock()
	return s
}

// SpanHandle is an open span returned by Begin. It is a value type: holding
// or discarding one never allocates.
type SpanHandle struct {
	r           *Recorder
	rank, round int
	phase       string
	start       time.Time
}

// Begin opens a span for (rank, round, phase) and tags the calling
// goroutine's pprof labels with the phase, so CPU profiles attribute
// samples to (rank, phase). On a nil recorder it returns a zero handle and
// does nothing.
func (r *Recorder) Begin(rank, round int, phase string) SpanHandle {
	if r == nil {
		return SpanHandle{}
	}
	sh := r.shard(rank)
	pprof.SetGoroutineLabels(pprof.WithLabels(sh.label, pprof.Labels("phase", phase)))
	return SpanHandle{r: r, rank: rank, round: round, phase: phase, start: time.Now()}
}

// End closes the span, attaching the modeled phase time and the item count.
// A zero handle (nil recorder) is a no-op.
func (h SpanHandle) End(modeled time.Duration, items uint64) {
	if h.r == nil {
		return
	}
	end := time.Now()
	sh := h.r.shard(h.rank)
	pprof.SetGoroutineLabels(sh.label)
	sp := Span{
		Rank:    h.rank,
		Round:   h.round,
		Phase:   h.phase,
		Start:   h.start.Sub(h.r.epoch),
		Dur:     end.Sub(h.start),
		Modeled: modeled,
		Items:   items,
	}
	sh.mu.Lock()
	sh.spans = append(sh.spans, sp)
	sh.mu.Unlock()
}

// Instant records a point event for (rank, round). No-op on nil.
func (r *Recorder) Instant(rank, round int, name string) {
	if r == nil {
		return
	}
	sh := r.shard(rank)
	ev := Instant{Rank: rank, Round: round, Name: name, At: time.Since(r.epoch)}
	sh.mu.Lock()
	sh.instants = append(sh.instants, ev)
	sh.mu.Unlock()
}

// Spans returns a copy of every recorded span, ordered by rank then start.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	shards := append([]*rankShard(nil), r.shards...)
	r.mu.Unlock()
	var out []Span
	for _, sh := range shards {
		sh.mu.Lock()
		out = append(out, sh.spans...)
		sh.mu.Unlock()
	}
	return out
}

// Instants returns a copy of every recorded instant, ordered by rank then
// time.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	shards := append([]*rankShard(nil), r.shards...)
	r.mu.Unlock()
	var out []Instant
	for _, sh := range shards {
		sh.mu.Lock()
		out = append(out, sh.instants...)
		sh.mu.Unlock()
	}
	return out
}

// Ranks returns the number of rank shards seen so far.
func (r *Recorder) Ranks() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.shards)
}
