package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "Requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: same (name, labels) resolves to the same metric.
	if again := reg.Counter("reqs_total", "Requests."); again != c {
		t.Fatal("second Counter call returned a different instance")
	}
	labeled := reg.Counter("reqs_total", "Requests.", L("code", "200"))
	if labeled == c {
		t.Fatal("labeled series aliased the unlabeled one")
	}

	g := reg.Gauge("temp", "Temperature.")
	g.Set(-3.5)
	if got := g.Value(); got != -3.5 {
		t.Fatalf("gauge = %v, want -3.5", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "Latency.", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	buckets, count, sum := h.Snapshot()
	if want := []uint64{2, 1, 1, 1}; len(buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(buckets), len(want))
	} else {
		for i := range want {
			if buckets[i] != want[i] {
				t.Fatalf("bucket[%d] = %d, want %d (%v)", i, buckets[i], want[i], buckets)
			}
		}
	}
	if count != 5 || sum != 106 {
		t.Fatalf("count=%d sum=%v, want 5, 106", count, sum)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name did not panic")
		}
	}()
	reg.Gauge("m", "")
}

func TestUnsortedHistogramPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("descending histogram bounds did not panic")
		}
	}()
	reg.Histogram("h", "", []float64{4, 2, 1})
}

// TestWritePrometheus pins the full exposition document: HELP/TYPE lines,
// family sort order, series registration order, label escaping, and the
// cumulative histogram rendering scrapers require.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "Bytes.", L("dir", "in")).Add(7)
	reg.Counter("b_total", "Bytes.", L("dir", "out")).Add(9)
	reg.Gauge("a_gauge", "A gauge.").Set(1.5)
	reg.GaugeFunc("z_fn", "Computed.", func() float64 { return 42 })
	h := reg.Histogram("h_lat", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	reg.Counter("esc_total", "Escapes.", L("p", `a"b\c`)).Inc()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge A gauge.
# TYPE a_gauge gauge
a_gauge 1.5
# HELP b_total Bytes.
# TYPE b_total counter
b_total{dir="in"} 7
b_total{dir="out"} 9
# HELP esc_total Escapes.
# TYPE esc_total counter
esc_total{p="a\"b\\c"} 1
# HELP h_lat Latency.
# TYPE h_lat histogram
h_lat_bucket{le="1"} 1
h_lat_bucket{le="2"} 2
h_lat_bucket{le="+Inf"} 3
h_lat_sum 11
h_lat_count 3
# HELP z_fn Computed.
# TYPE z_fn gauge
z_fn 42
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestConcurrentGetOrCreate races lazy registration from many goroutines
// (run with -race): every caller must resolve to the same instrument, and
// no increment may be lost to a double-init.
func TestConcurrentGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("shared_total", "").Inc()
				reg.Histogram("shared_hist", "", []float64{1, 2}).Observe(1)
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared_total", "").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost increments to double-init)", got, workers*perWorker)
	}
	if _, count, _ := reg.Histogram("shared_hist", "", []float64{1, 2}).Snapshot(); count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", count, workers*perWorker)
	}
}

func TestGaugeFuncReplacement(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("g", "", func() float64 { return 1 })
	reg.GaugeFunc("g", "", func() float64 { return 2 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "g 2\n") {
		t.Fatalf("re-registered GaugeFunc not replaced:\n%s", sb.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", "", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 samples uniform in (0,1]: every quantile lands in the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); got <= 0 || got > 1 {
		t.Fatalf("p50 = %v, want within (0,1]", got)
	}
	// Push the tail into (4,8]: p99 must move to the tail bucket while p50
	// stays in the head.
	for i := 0; i < 100; i++ {
		h.Observe(6)
	}
	if got := h.Quantile(0.99); got <= 4 || got > 8 {
		t.Fatalf("p99 = %v, want within (4,8]", got)
	}
	if got := h.Quantile(0.25); got > 1 {
		t.Fatalf("p25 = %v, want ≤1", got)
	}
	// +Inf samples saturate at the last finite bound instead of returning Inf.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.999); got != 8 {
		t.Fatalf("overflow quantile = %v, want saturation at 8", got)
	}
	if got := h.Count(); got != 1200 {
		t.Fatalf("Count = %d, want 1200", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 2, 5)
	want := []float64{0.001, 0.002, 0.004, 0.008, 0.016}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0, 2, 3) did not panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}

// TestWritePrometheusGolden pins the exposition byte-for-byte: families
// sorted by name, series sorted by label set — so two scrapes (or two
// processes that happened to register lazily in different orders) always
// diff clean. Registration order here is deliberately scrambled.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_requests_total", "Requests.", L("shard", "2")).Add(3)
	reg.Histogram("mm_latency_seconds", "Latency.", []float64{0.001, 0.01}, L("stage", "upstream")).Observe(0.005)
	reg.Counter("zz_requests_total", "Requests.", L("shard", "0")).Add(1)
	reg.Gauge("aa_up", "Up.").Set(1)
	reg.Histogram("mm_latency_seconds", "Latency.", []float64{0.001, 0.01}, L("stage", "route")).Observe(0.0005)
	reg.Counter("zz_requests_total", "Requests.", L("shard", "1")).Add(2)
	reg.Gauge("kk_info", "Identity.", L("binary", "kproxy"), L("go_version", "go1.22")).Set(1)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Fatalf("exposition drifted from golden file (re-run with -update if intended):\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}

	// Scrambled re-registration into a fresh registry must render
	// identically: order is a function of names and labels only.
	reg2 := NewRegistry()
	reg2.Gauge("kk_info", "Identity.", L("binary", "kproxy"), L("go_version", "go1.22")).Set(1)
	reg2.Histogram("mm_latency_seconds", "Latency.", []float64{0.001, 0.01}, L("stage", "route")).Observe(0.0005)
	reg2.Counter("zz_requests_total", "Requests.", L("shard", "1")).Add(2)
	reg2.Counter("zz_requests_total", "Requests.", L("shard", "0")).Add(1)
	reg2.Gauge("aa_up", "Up.").Set(1)
	reg2.Counter("zz_requests_total", "Requests.", L("shard", "2")).Add(3)
	reg2.Histogram("mm_latency_seconds", "Latency.", []float64{0.001, 0.01}, L("stage", "upstream")).Observe(0.005)
	var sb2 strings.Builder
	if err := reg2.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Fatalf("registration order leaked into the exposition:\nfirst:\n%s\nsecond:\n%s", sb.String(), sb2.String())
	}
}

// TestHistogramConcurrentObserveQuantile races Observe against Quantile
// and Snapshot (run with -race): the router reads Quantile on the request
// path to derive hedge deadlines while winners observe into the same
// histogram, so this pairing must be data-race free and the quantile must
// always land inside the bucket range.
func TestHistogramConcurrentObserveQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", ExpBuckets(0.001, 2, 10))
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			v := 0.001 * float64(w+1)
			for i := 0; i < 5000; i++ {
				h.Observe(v)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if q := h.Quantile(0.99); q < 0 || q > 0.001*512 {
					t.Errorf("concurrent p99 = %v outside bucket range", q)
					return
				}
				h.Snapshot()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := h.Count(); got != 4*5000 {
		t.Fatalf("Count = %d, want %d", got, 4*5000)
	}
}
