package debruijn

import (
	"math/rand"
	"strings"
	"testing"

	"dedukt/internal/dna"
	"dedukt/internal/kcount"
)

func graphFrom(t *testing.T, seqs []string, k int, minCount uint32) *Graph {
	t.Helper()
	reads := make([][]byte, len(seqs))
	for i, s := range seqs {
		reads[i] = []byte(s)
	}
	counts := kcount.SerialCount(&dna.Lexicographic, reads, k)
	g, err := BuildFromCounts(&dna.Lexicographic, k, counts, minCount)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLinearSequenceSingleUnitig(t *testing.T) {
	// A sequence with all-distinct k-mers compacts to exactly itself.
	seq := "ACGTTGCAAGGCATCT"
	g := graphFrom(t, []string{seq}, 5, 1)
	if g.Nodes() != len(seq)-5+1 {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	unitigs := g.Unitigs()
	if len(unitigs) != 1 {
		t.Fatalf("%d unitigs, want 1: %+v", len(unitigs), unitigs)
	}
	if unitigs[0].Seq != seq {
		t.Fatalf("unitig %q, want %q", unitigs[0].Seq, seq)
	}
	if unitigs[0].NKmers != g.Nodes() || unitigs[0].MeanCoverage != 1 || unitigs[0].MinCoverage != 1 {
		t.Fatalf("unitig stats %+v", unitigs[0])
	}
}

func TestCoverageWeights(t *testing.T) {
	seq := "ACGTTGCAAGG"
	g := graphFrom(t, []string{seq, seq, seq}, 5, 1)
	unitigs := g.Unitigs()
	if len(unitigs) != 1 {
		t.Fatalf("%d unitigs", len(unitigs))
	}
	if unitigs[0].MeanCoverage != 3 || unitigs[0].MinCoverage != 3 {
		t.Fatalf("coverage %+v, want 3", unitigs[0])
	}
}

func TestMinCountPrunesErrors(t *testing.T) {
	seq := strings.Repeat("ACGTTGCAAGGCATCTAGGAT", 2)[:30]
	errRead := "ACGTTGCATGGCATC" // one substitution mid-way
	g := graphFrom(t, []string{seq, seq, errRead}, 7, 2)
	// Error k-mers (count 1) must be pruned.
	for w := range g.nodes {
		if g.Count(w) < 2 {
			t.Fatalf("unpruned low-count node %x", w)
		}
	}
}

func TestBranchSplitsUnitigs(t *testing.T) {
	// Two reads sharing a prefix then diverging: the shared prefix is one
	// unitig, each branch another.
	a := "AACCGGTTA"
	b := "AACCGGTCA" // diverges at position 7
	g := graphFrom(t, []string{a, b}, 5, 1)
	unitigs := g.Unitigs()
	if len(unitigs) != 3 {
		for _, u := range unitigs {
			t.Logf("unitig: %q", u.Seq)
		}
		t.Fatalf("%d unitigs, want 3 (shared prefix + 2 branches)", len(unitigs))
	}
	// Unitigs partition the nodes.
	total := 0
	for _, u := range unitigs {
		total += u.NKmers
	}
	if total != g.Nodes() {
		t.Fatalf("unitigs cover %d nodes of %d", total, g.Nodes())
	}
}

func TestIsolatedCycle(t *testing.T) {
	// A circular sequence: every k-mer has in=out=1; the cycle must still
	// be emitted exactly once.
	circ := "ACGGTCA"
	doubled := circ + circ // k-mers of the cycle, each appearing... use k=4
	g := graphFrom(t, []string{doubled}, 4, 1)
	unitigs := g.Unitigs()
	total := 0
	for _, u := range unitigs {
		total += u.NKmers
	}
	if total != g.Nodes() {
		t.Fatalf("cycle nodes covered %d/%d", total, g.Nodes())
	}
	if len(unitigs) == 0 {
		t.Fatal("no unitigs emitted for cycle")
	}
}

func TestUnitigsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	seq := make([]byte, 400)
	for i := range seq {
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	g1 := graphFrom(t, []string{string(seq)}, 9, 1)
	g2 := graphFrom(t, []string{string(seq)}, 9, 1)
	u1, u2 := g1.Unitigs(), g2.Unitigs()
	if len(u1) != len(u2) {
		t.Fatal("nondeterministic unitig count")
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("unitig %d differs", i)
		}
	}
}

func TestUnitigsSpellValidKmers(t *testing.T) {
	// Property: every k-mer spelled by a unitig is a graph node, and
	// consecutive unitig k-mers are graph edges.
	rng := rand.New(rand.NewSource(92))
	seq := make([]byte, 600)
	for i := range seq {
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	k := 11
	g := graphFrom(t, []string{string(seq)}, k, 1)
	covered := 0
	for _, u := range g.Unitigs() {
		for i := 0; i+k <= len(u.Seq); i++ {
			w, err := dna.KmerFromString(&dna.Lexicographic, u.Seq[i:i+k])
			if err != nil {
				t.Fatal(err)
			}
			if !g.Has(w) {
				t.Fatalf("unitig spells non-node %q", u.Seq[i:i+k])
			}
			covered++
		}
	}
	if covered != g.Nodes() {
		t.Fatalf("unitigs spell %d kmers, graph has %d", covered, g.Nodes())
	}
}

func TestDegrees(t *testing.T) {
	g := graphFrom(t, []string{"AACCGGTTA", "AACCGGTCA"}, 5, 1)
	fork, _ := dna.KmerFromString(&dna.Lexicographic, "CCGGT")
	if g.OutDegree(fork) != 2 {
		t.Fatalf("fork out-degree %d, want 2", g.OutDegree(fork))
	}
	if g.InDegree(fork) != 1 {
		t.Fatalf("fork in-degree %d, want 1", g.InDegree(fork))
	}
}

func TestBuildValidation(t *testing.T) {
	tab := kcount.NewTable(4, kcount.Linear)
	if _, err := Build(&dna.Lexicographic, 1, tab, 1); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := Build(&dna.Lexicographic, 33, tab, 1); err == nil {
		t.Error("k=33 should fail")
	}
	if _, err := Build(nil, 5, tab, 1); err == nil {
		t.Error("nil encoding should fail")
	}
}

func TestSummarize(t *testing.T) {
	unitigs := []Unitig{{Seq: strings.Repeat("A", 100)}, {Seq: strings.Repeat("C", 60)}, {Seq: strings.Repeat("G", 40)}}
	st := Summarize(unitigs)
	if st.NUnitigs != 3 || st.TotalBases != 200 || st.LongestBases != 100 {
		t.Fatalf("stats %+v", st)
	}
	if st.N50 != 100 {
		t.Fatalf("N50 = %d, want 100 (100 covers half of 200)", st.N50)
	}
	if Summarize(nil).N50 != 0 {
		t.Fatal("empty N50 should be 0")
	}
}
