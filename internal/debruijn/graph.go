// Package debruijn builds weighted de Bruijn graphs from counted k-mer
// tables and compacts them into unitigs — the downstream representation the
// paper's introduction motivates (§II-A: k-mer histograms serve "as a
// (weighted) de Bruijn graph representation" for genome and metagenome
// assembly [4], [11], [25]).
//
// Nodes are the distinct counted k-mers; a directed edge joins u→v when the
// (k−1)-suffix of u equals the (k−1)-prefix of v and both k-mers are in the
// table. A unitig is a maximal non-branching path — the contigs an
// assembler's first stage emits.
package debruijn

import (
	"fmt"
	"sort"

	"dedukt/internal/dna"
	"dedukt/internal/kcount"
)

// Graph is a weighted de Bruijn graph over packed k-mers (k ≤ 32).
type Graph struct {
	k     int
	enc   *dna.Encoding
	nodes map[dna.Kmer]uint32 // k-mer -> multiplicity
}

// Build creates the graph from a counted table, keeping k-mers with
// count ≥ minCount (the standard error-pruning cutoff: singletons are
// overwhelmingly sequencing errors).
func Build(enc *dna.Encoding, k int, table *kcount.Table, minCount uint32) (*Graph, error) {
	if k <= 1 || k > dna.MaxK {
		return nil, fmt.Errorf("debruijn: k=%d outside (1,%d]", k, dna.MaxK)
	}
	if enc == nil {
		return nil, fmt.Errorf("debruijn: nil encoding")
	}
	g := &Graph{k: k, enc: enc, nodes: make(map[dna.Kmer]uint32, table.Len())}
	table.ForEach(func(key uint64, count uint32) {
		if count >= minCount {
			g.nodes[dna.Kmer(key)] = count
		}
	})
	return g, nil
}

// BuildFromCounts creates the graph from an explicit k-mer→count map (the
// oracle form used by tests and small pipelines).
func BuildFromCounts(enc *dna.Encoding, k int, counts map[dna.Kmer]uint32, minCount uint32) (*Graph, error) {
	t := kcount.NewTable(len(counts), kcount.Linear)
	for w, c := range counts {
		t.Add(uint64(w), c)
	}
	return Build(enc, k, t, minCount)
}

// K returns the k-mer length.
func (g *Graph) K() int { return g.k }

// Nodes returns the number of k-mer nodes.
func (g *Graph) Nodes() int { return len(g.nodes) }

// Count returns a node's multiplicity (0 if absent).
func (g *Graph) Count(w dna.Kmer) uint32 { return g.nodes[w] }

// Has reports whether w is a node.
func (g *Graph) Has(w dna.Kmer) bool { _, ok := g.nodes[w]; return ok }

// suffix drops the first base: the (k-1)-mer the successors extend.
func (g *Graph) successorsOf(w dna.Kmer) []dna.Kmer {
	var out []dna.Kmer
	for c := dna.Code(0); c < 4; c++ {
		next := w.Append(g.k, c)
		if g.Has(next) {
			out = append(out, next)
		}
	}
	return out
}

// predecessorsOf lists nodes u with an edge u→w.
func (g *Graph) predecessorsOf(w dna.Kmer) []dna.Kmer {
	// u = c · w[0:k-1]: shift w right by one base and try each leading c.
	base := w >> 2
	var out []dna.Kmer
	for c := dna.Code(0); c < 4; c++ {
		prev := base | dna.Kmer(c)<<(2*uint(g.k-1))
		if g.Has(prev) {
			out = append(out, prev)
		}
	}
	return out
}

// OutDegree and InDegree report branch structure.
func (g *Graph) OutDegree(w dna.Kmer) int { return len(g.successorsOf(w)) }

// InDegree reports the number of predecessors of w.
func (g *Graph) InDegree(w dna.Kmer) int { return len(g.predecessorsOf(w)) }

// Unitig is a maximal non-branching path, spelled as a base sequence of
// length (#kmers + k - 1), with coverage statistics from the k-mer counts.
type Unitig struct {
	// Seq is the spelled nucleotide sequence.
	Seq string
	// NKmers is the number of k-mer nodes on the path.
	NKmers int
	// MeanCoverage is the average multiplicity along the path.
	MeanCoverage float64
	// MinCoverage is the lowest multiplicity along the path.
	MinCoverage uint32
}

// Len returns the unitig length in bases.
func (u Unitig) Len() int { return len(u.Seq) }

// isPathInternal reports whether w continues a unitig: exactly one
// successor whose only predecessor is w.
func (g *Graph) linearNext(w dna.Kmer) (dna.Kmer, bool) {
	succ := g.successorsOf(w)
	if len(succ) != 1 {
		return 0, false
	}
	if len(g.predecessorsOf(succ[0])) != 1 {
		return 0, false
	}
	return succ[0], true
}

// Unitigs compacts the graph into its maximal non-branching paths. Every
// node belongs to exactly one unitig; isolated cycles are broken at their
// smallest k-mer. Output is sorted by descending length then by sequence,
// so it is deterministic.
func (g *Graph) Unitigs() []Unitig {
	visited := make(map[dna.Kmer]bool, len(g.nodes))
	var out []Unitig

	// Pass 1: paths starting at nodes that cannot extend backwards
	// (in-degree ≠ 1, or the predecessor branches forward).
	starts := make([]dna.Kmer, 0)
	for w := range g.nodes {
		preds := g.predecessorsOf(w)
		if len(preds) != 1 || len(g.successorsOf(preds[0])) != 1 {
			starts = append(starts, w)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, s := range starts {
		if !visited[s] {
			out = append(out, g.walk(s, visited))
		}
	}
	// Pass 2: isolated cycles (every node has in=out=1); break at the
	// smallest unvisited k-mer.
	cycles := make([]dna.Kmer, 0)
	for w := range g.nodes {
		if !visited[w] {
			cycles = append(cycles, w)
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	for _, s := range cycles {
		if !visited[s] {
			out = append(out, g.walk(s, visited))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Seq) != len(out[j].Seq) {
			return len(out[i].Seq) > len(out[j].Seq)
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// walk spells the unitig from s, marking nodes visited.
func (g *Graph) walk(s dna.Kmer, visited map[dna.Kmer]bool) Unitig {
	visited[s] = true
	seq := []byte(s.String(g.enc, g.k))
	count := g.nodes[s]
	sum := uint64(count)
	min := count
	n := 1
	cur := s
	for {
		next, ok := g.linearNext(cur)
		if !ok || visited[next] {
			break
		}
		visited[next] = true
		seq = append(seq, g.enc.Decode(next.Base(g.k, g.k-1)))
		c := g.nodes[next]
		sum += uint64(c)
		if c < min {
			min = c
		}
		n++
		cur = next
	}
	return Unitig{
		Seq:          string(seq),
		NKmers:       n,
		MeanCoverage: float64(sum) / float64(n),
		MinCoverage:  min,
	}
}

// Stats summarizes an assembly.
type Stats struct {
	// NUnitigs is the number of unitigs.
	NUnitigs int
	// TotalBases is the summed unitig length.
	TotalBases int
	// LongestBases is the longest unitig.
	LongestBases int
	// N50 is the standard contiguity metric: the length L such that
	// unitigs of length ≥ L cover half the total bases.
	N50 int
}

// Summarize computes assembly statistics over unitigs.
func Summarize(unitigs []Unitig) Stats {
	var st Stats
	st.NUnitigs = len(unitigs)
	lens := make([]int, len(unitigs))
	for i, u := range unitigs {
		lens[i] = u.Len()
		st.TotalBases += u.Len()
		if u.Len() > st.LongestBases {
			st.LongestBases = u.Len()
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	half := st.TotalBases / 2
	acc := 0
	for _, l := range lens {
		acc += l
		if acc >= half {
			st.N50 = l
			break
		}
	}
	return st
}
