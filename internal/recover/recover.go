// Package recover is the durable-state layer of the pipeline's
// checkpoint/restart and shrink-recovery machinery (DESIGN.md §12): it
// defines the on-disk checkpoint — one CRC-framed manifest plus one
// KCD-embedded spectrum slice per rank — and the deterministic successor
// function that reassigns a dead rank's key ownership to a survivor.
//
// A checkpoint directory holds, atomically (tmp+rename, manifest last):
//
//	MANIFEST                 the round/cursor manifest (see Manifest)
//	r<round>-s<slot>.ckpt    slot's spectrum slice at that round
//
// Readers are hardened the same way kcount's database reader is: a short
// file surfaces ErrTruncated, a full-length file with wrong bytes
// ErrChecksum, and a file from a different run ErrMismatch — a resume can
// fail, but it can never silently continue from the wrong state.
package recover

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
)

// Sentinel errors; test with errors.Is.
var (
	// ErrTruncated marks a manifest or rank checkpoint that ended before
	// its declared structure was complete.
	ErrTruncated = errors.New("recover: truncated checkpoint")
	// ErrChecksum marks a structurally complete file whose CRC32 does not
	// match its contents.
	ErrChecksum = errors.New("recover: checkpoint checksum mismatch")
	// ErrMismatch marks a checkpoint that does not belong to this run:
	// wrong magic/version, a fingerprint for a different configuration or
	// input set, or a rank file for a different round/slot.
	ErrMismatch = errors.New("recover: checkpoint does not match this run")
	// ErrNoCheckpoint reports a checkpoint directory with no manifest —
	// nothing has been persisted yet, so recovery replays from the start.
	ErrNoCheckpoint = errors.New("recover: no checkpoint manifest")
)

// InputFile fingerprints one input by path and size; a resume refuses a
// checkpoint whose input list differs (the cursor would land on the
// wrong records).
type InputFile struct {
	Path string `json:"path"`
	Size int64  `json:"size"`
}

// Fingerprint identifies the run configuration a checkpoint belongs to.
// Every field changes what the spectrum or its partition looks like;
// resuming under a different value would merge incompatible state.
type Fingerprint struct {
	K         int         `json:"k"`
	M         int         `json:"m,omitempty"`
	Window    int         `json:"window,omitempty"`
	Mode      string      `json:"mode"`
	Engine    string      `json:"engine"`
	Encoding  string      `json:"encoding"`
	Canonical bool        `json:"canonical,omitempty"`
	Ranks     int         `json:"ranks"`
	Nodes     int         `json:"nodes"`
	Inputs    []InputFile `json:"inputs,omitempty"`
}

// Hash folds the fingerprint into the 64-bit stamp carried by every rank
// checkpoint file (FNV-1a over the canonical JSON encoding).
func (f Fingerprint) Hash() uint64 {
	b, err := json.Marshal(f)
	if err != nil {
		// Fingerprint is plain data; Marshal cannot fail on it.
		panic(err)
	}
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return h
}

// Manifest is the checkpoint's round/cursor record: everything a resume
// needs beyond the per-slot spectrum slices. It is written by slot 0
// after every slot's slice landed, so a directory with a manifest always
// has the matching slices.
type Manifest struct {
	Fingerprint Fingerprint `json:"fingerprint"`
	// Round is the last completed round covered by this checkpoint; the
	// resumed loop continues at Round+1.
	Round int `json:"round"`
	// Cursor is the streaming source position of the first record not
	// yet counted through Round.
	Cursor fastq.Cursor `json:"cursor"`
	// Reads and Bases are the input totals delivered through Round,
	// re-seeding the resumed producer's tallies.
	Reads uint64 `json:"reads"`
	Bases uint64 `json:"bases"`
	// Survivors maps checkpoint slot → original rank id. On an unfaulted
	// run it is the identity; after a shrink recovery it lists the live
	// ranks, and Dead the original ranks whose ownership was remapped
	// (see Successor).
	Survivors []int `json:"survivors"`
	Dead      []int `json:"dead,omitempty"`
	// Incomplete records that a round covered by this checkpoint degraded
	// past its retry budget, so state resumed from it stays a lower
	// bound; the flag re-seeds Result.Incomplete across a resume.
	Incomplete bool `json:"incomplete,omitempty"`
}

// Manifest file framing:
//
//	magic   "DKMF"       4 bytes
//	version uint16       (1)
//	length  uint32       JSON payload bytes
//	payload length bytes of JSON (Manifest)
//	crc32   uint32       IEEE, over everything after the magic
//
// Rank checkpoint file framing:
//
//	magic   "DKCP"       4 bytes
//	version uint16       (1)
//	round   uint32
//	slot    uint32
//	fphash  uint64       Fingerprint.Hash() of the run
//	crc32   uint32       IEEE, over the header after the magic
//	body    an embedded KCD database (kcount format, self-checksummed)
//
// All integers are little-endian.
const (
	manifestMagic   = "DKMF"
	ckptMagic       = "DKCP"
	formatVersion   = 1
	manifestName    = "MANIFEST"
	maxManifestSize = 1 << 24 // a manifest is a few KB; cap the allocation
)

// ManifestPath returns the manifest location inside a checkpoint dir.
func ManifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// RankFilePath returns the location of a slot's spectrum slice for a
// round inside a checkpoint dir.
func RankFilePath(dir string, round, slot int) string {
	return filepath.Join(dir, fmt.Sprintf("r%08d-s%04d.ckpt", round, slot))
}

// WriteManifest encodes m into w with the CRC frame.
func WriteManifest(w io.Writer, m *Manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:2], formatVersion)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	crc := crc32.ChecksumIEEE(buf.Bytes()[len(manifestMagic):])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	buf.Write(tail[:])
	_, err = w.Write(buf.Bytes())
	return err
}

// ReadManifest decodes a CRC-framed manifest, returning ErrTruncated /
// ErrChecksum / ErrMismatch on damage — never a wrong manifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("manifest magic: %w", eofAs(err, ErrTruncated))
	}
	if string(magic[:]) != manifestMagic {
		return nil, fmt.Errorf("manifest magic %q: %w", magic[:], ErrMismatch)
	}
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("manifest header: %w", eofAs(err, ErrTruncated))
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != formatVersion {
		return nil, fmt.Errorf("manifest version %d (want %d): %w", v, formatVersion, ErrMismatch)
	}
	n := binary.LittleEndian.Uint32(hdr[2:6])
	if n > maxManifestSize {
		return nil, fmt.Errorf("manifest declares %d payload bytes: %w", n, ErrMismatch)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("manifest payload: %w", eofAs(err, ErrTruncated))
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("manifest checksum: %w", eofAs(err, ErrTruncated))
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if got := binary.LittleEndian.Uint32(tail[:]); got != crc.Sum32() {
		return nil, fmt.Errorf("manifest crc %08x != %08x: %w", got, crc.Sum32(), ErrChecksum)
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		// The CRC matched, so this is a framing bug or handcrafted file,
		// not wire damage; refuse it as a mismatch.
		return nil, fmt.Errorf("manifest payload: %v: %w", err, ErrMismatch)
	}
	if m.Round < 0 || len(m.Survivors) == 0 || len(m.Survivors) > m.Fingerprint.Ranks {
		return nil, fmt.Errorf("manifest round %d / %d survivors of %d ranks: %w",
			m.Round, len(m.Survivors), m.Fingerprint.Ranks, ErrMismatch)
	}
	seen := make(map[int]bool, len(m.Survivors))
	for _, o := range m.Survivors {
		if o < 0 || o >= m.Fingerprint.Ranks || seen[o] {
			return nil, fmt.Errorf("manifest survivor %d of %d ranks: %w", o, m.Fingerprint.Ranks, ErrMismatch)
		}
		seen[o] = true
	}
	for _, o := range m.Dead {
		if o < 0 || o >= m.Fingerprint.Ranks || seen[o] {
			return nil, fmt.Errorf("manifest dead rank %d: %w", o, ErrMismatch)
		}
		seen[o] = true
	}
	return &m, nil
}

// LoadManifest reads the manifest of a checkpoint directory, mapping an
// absent file onto ErrNoCheckpoint.
func LoadManifest(dir string) (*Manifest, error) {
	f, err := os.Open(ManifestPath(dir))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%s: %w", dir, ErrNoCheckpoint)
		}
		return nil, err
	}
	defer f.Close()
	return ReadManifest(f)
}

// SaveManifest atomically writes the manifest into dir.
func SaveManifest(dir string, m *Manifest) error {
	return atomicWrite(dir, manifestName, func(w io.Writer) error { return WriteManifest(w, m) })
}

// WriteRankFile encodes one slot's spectrum slice for a round.
func WriteRankFile(w io.Writer, round, slot int, fphash uint64, db *kcount.Database) error {
	var hdr bytes.Buffer
	hdr.WriteString(ckptMagic)
	var b [18]byte
	binary.LittleEndian.PutUint16(b[0:2], formatVersion)
	binary.LittleEndian.PutUint32(b[2:6], uint32(round))
	binary.LittleEndian.PutUint32(b[6:10], uint32(slot))
	binary.LittleEndian.PutUint64(b[10:18], fphash)
	hdr.Write(b[:])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(b[:]))
	hdr.Write(tail[:])
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	return db.Write(w)
}

// ReadRankFile decodes a slot spectrum slice, verifying the header CRC
// and the embedded database's own checksum.
func ReadRankFile(r io.Reader) (round, slot int, fphash uint64, db *kcount.Database, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("checkpoint magic: %w", eofAs(err, ErrTruncated))
	}
	if string(magic[:]) != ckptMagic {
		return 0, 0, 0, nil, fmt.Errorf("checkpoint magic %q: %w", magic[:], ErrMismatch)
	}
	var b [18]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("checkpoint header: %w", eofAs(err, ErrTruncated))
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("checkpoint header crc: %w", eofAs(err, ErrTruncated))
	}
	if got, want := binary.LittleEndian.Uint32(tail[:]), crc32.ChecksumIEEE(b[:]); got != want {
		return 0, 0, 0, nil, fmt.Errorf("checkpoint header crc %08x != %08x: %w", got, want, ErrChecksum)
	}
	if v := binary.LittleEndian.Uint16(b[0:2]); v != formatVersion {
		return 0, 0, 0, nil, fmt.Errorf("checkpoint version %d (want %d): %w", v, formatVersion, ErrMismatch)
	}
	round = int(binary.LittleEndian.Uint32(b[2:6]))
	slot = int(binary.LittleEndian.Uint32(b[6:10]))
	fphash = binary.LittleEndian.Uint64(b[10:18])
	db, err = kcount.ReadDatabase(r)
	if err != nil {
		// Map the embedded database's sentinels onto ours so callers
		// handle one error vocabulary.
		switch {
		case errors.Is(err, kcount.ErrTruncated):
			err = fmt.Errorf("checkpoint body: %v: %w", err, ErrTruncated)
		case errors.Is(err, kcount.ErrChecksum):
			err = fmt.Errorf("checkpoint body: %v: %w", err, ErrChecksum)
		}
		return 0, 0, 0, nil, err
	}
	return round, slot, fphash, db, nil
}

// SaveRankFile atomically writes one slot's slice into dir.
func SaveRankFile(dir string, round, slot int, fphash uint64, db *kcount.Database) error {
	name := fmt.Sprintf("r%08d-s%04d.ckpt", round, slot)
	return atomicWrite(dir, name, func(w io.Writer) error {
		return WriteRankFile(w, round, slot, fphash, db)
	})
}

// LoadRankFile reads a slot slice and validates it against the expected
// coordinates, so a misnamed or foreign file can never seed a resume.
func LoadRankFile(path string, round, slot int, fphash uint64) (*kcount.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, s, h, db, err := ReadRankFile(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r != round || s != slot || h != fphash {
		return nil, fmt.Errorf("%s: holds round %d slot %d run %016x, want round %d slot %d run %016x: %w",
			path, r, s, h, round, slot, fphash, ErrMismatch)
	}
	return db, nil
}

// RemoveStale deletes rank files of rounds other than keepRound (and
// leftover temp files), called by slot 0 after the manifest for
// keepRound landed. Failures are ignored — stale files are garbage, not
// state; the manifest alone decides what a resume reads.
func RemoveStale(dir string, keepRound int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keep := fmt.Sprintf("r%08d-", keepRound)
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
		case strings.HasSuffix(name, ".ckpt") && !strings.HasPrefix(name, keep):
		default:
			continue
		}
		os.Remove(filepath.Join(dir, name))
	}
}

// Successor returns the live owner of original rank r under the dead
// set: r itself while alive, else the next live rank cyclically. This is
// the deterministic ownership remap of shrink recovery, applied on top
// of kernels.DestOf — keys keep their original destination and dead
// destinations forward to their successor, so checkpointed slices stay
// valid across shrinks. The function composes: for dead sets D ⊆ D',
// Successor(Successor(r, D), D') == Successor(r, D'), which is what lets
// a checkpoint written after one shrink be reloaded after another.
// Returns -1 when every rank is dead.
func Successor(r int, dead []bool) int {
	for i := 0; i < len(dead); i++ {
		o := (r + i) % len(dead)
		if !dead[o] {
			return o
		}
	}
	return -1
}

// atomicWrite writes name into dir via a temp file + rename, so readers
// never observe a partially written checkpoint and a crash mid-write
// leaves the previous file intact.
func atomicWrite(dir, name string, fn func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, name+".*.tmp")
	if err != nil {
		return err
	}
	if err := fn(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// eofAs maps io.ReadFull's end-of-input errors onto sentinel, keeping
// other I/O errors intact (mirrors kcount's reader hardening).
func eofAs(err, sentinel error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return sentinel
	}
	return err
}
