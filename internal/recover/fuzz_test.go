package recover

import (
	"bytes"
	"errors"
	"testing"

	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
)

// FuzzCheckpointManifest feeds arbitrary bytes to both checkpoint
// readers. A damaged file may be rejected — with a structured sentinel,
// never a panic — but whatever decodes must be internally consistent, so
// a resume can never be seeded from wrong state.
func FuzzCheckpointManifest(f *testing.F) {
	var buf bytes.Buffer
	m := &Manifest{
		Fingerprint: testFingerprintF(),
		Round:       3,
		Cursor:      fastq.Cursor{Input: 1, Record: 7},
		Reads:       100, Bases: 10000,
		Survivors: []int{0, 1, 3}, Dead: []int{2},
	}
	if err := WriteManifest(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	buf.Reset()
	tbl := kcount.NewTable(8, kcount.Linear)
	tbl.Add(0x1, 2)
	tbl.Add(0x2, 5)
	if err := WriteRankFile(&buf, 3, 1, m.Fingerprint.Hash(), kcount.FromTable(tbl, 17, 0)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(manifestMagic))
	f.Add([]byte(ckptMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := ReadManifest(bytes.NewReader(data)); err != nil {
			structured := errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) || errors.Is(err, ErrMismatch)
			if !structured {
				t.Fatalf("ReadManifest: unstructured error %v", err)
			}
		} else {
			if m.Round < 0 || len(m.Survivors) == 0 || len(m.Survivors) > m.Fingerprint.Ranks {
				t.Fatalf("ReadManifest accepted inconsistent manifest: %+v", m)
			}
			for _, o := range m.Survivors {
				if o < 0 || o >= m.Fingerprint.Ranks {
					t.Fatalf("ReadManifest accepted survivor %d of %d ranks", o, m.Fingerprint.Ranks)
				}
			}
		}
		if round, slot, _, db, err := ReadRankFile(bytes.NewReader(data)); err != nil {
			structured := errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) || errors.Is(err, ErrMismatch) ||
				errors.Is(err, kcount.ErrTruncated) || errors.Is(err, kcount.ErrChecksum)
			if !structured {
				t.Fatalf("ReadRankFile: unstructured error %v", err)
			}
		} else {
			if round < 0 || slot < 0 || db == nil {
				t.Fatalf("ReadRankFile accepted inconsistent file: round %d slot %d db %v", round, slot, db)
			}
		}
	})
}

func testFingerprintF() Fingerprint {
	return Fingerprint{
		K: 17, M: 7, Mode: "supermer", Engine: "gpu", Encoding: "2bit",
		Ranks: 4, Nodes: 1,
		Inputs: []InputFile{{Path: "a.fq", Size: 1234}},
	}
}
