package recover

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
)

func testFingerprint() Fingerprint {
	return Fingerprint{
		K: 17, M: 7, Mode: "supermer", Engine: "gpu", Encoding: "2bit",
		Canonical: true, Ranks: 4, Nodes: 1,
		Inputs: []InputFile{{Path: "a.fq", Size: 1234}, {Path: "b.fq.gz", Size: 99}},
	}
}

func testDatabase(t *testing.T) *kcount.Database {
	t.Helper()
	tbl := kcount.NewTable(16, kcount.Linear)
	tbl.Add(0x1, 3)
	tbl.Add(0xabc, 1)
	tbl.Add(0xffff, 7)
	return kcount.FromTable(tbl, 17, 0)
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Fingerprint: testFingerprint(),
		Round:       5,
		Cursor:      fastq.Cursor{Input: 1, Record: 42},
		Reads:       1000,
		Bases:       100000,
		Survivors:   []int{0, 1, 3},
		Dead:        []int{2},
	}
	dir := t.TempDir()
	if err := SaveManifest(dir, m); err != nil {
		t.Fatalf("SaveManifest: %v", err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if got.Round != m.Round || got.Cursor != m.Cursor || got.Reads != m.Reads ||
		got.Bases != m.Bases || len(got.Survivors) != 3 || got.Survivors[2] != 3 ||
		len(got.Dead) != 1 || got.Dead[0] != 2 {
		t.Fatalf("manifest round-trip mismatch: %+v != %+v", got, m)
	}
	if got.Fingerprint.Hash() != m.Fingerprint.Hash() {
		t.Fatalf("fingerprint hash changed across round-trip")
	}
}

func TestLoadManifestMissing(t *testing.T) {
	_, err := LoadManifest(t.TempDir())
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing manifest: got %v, want ErrNoCheckpoint", err)
	}
}

func TestManifestCorruption(t *testing.T) {
	m := &Manifest{Fingerprint: testFingerprint(), Round: 2, Survivors: []int{0, 1, 2, 3}}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for cut := 0; cut < len(full); cut++ {
		_, err := ReadManifest(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrMismatch) {
			t.Fatalf("truncation at %d: unstructured error %v", cut, err)
		}
	}
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x5a
		got, err := ReadManifest(bytes.NewReader(mut))
		if err == nil && got.Round == m.Round && got.Fingerprint.Hash() == m.Fingerprint.Hash() {
			continue // flip didn't change meaning is impossible with CRC; but equal decode is fine
		}
		if err == nil {
			t.Fatalf("flip at %d decoded different manifest without error", i)
		}
	}
}

func TestManifestRejectsBadShape(t *testing.T) {
	cases := []Manifest{
		{Fingerprint: testFingerprint(), Round: -1, Survivors: []int{0}},
		{Fingerprint: testFingerprint(), Round: 0},                                               // no survivors
		{Fingerprint: testFingerprint(), Round: 0, Survivors: []int{0, 0}},                       // dup
		{Fingerprint: testFingerprint(), Round: 0, Survivors: []int{4}},                          // out of range
		{Fingerprint: testFingerprint(), Round: 0, Survivors: []int{0, 1, 2, 3}, Dead: []int{3}}, // overlap
	}
	for i, m := range cases {
		var buf bytes.Buffer
		if err := WriteManifest(&buf, &m); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifest(&buf); !errors.Is(err, ErrMismatch) {
			t.Fatalf("case %d: got %v, want ErrMismatch", i, err)
		}
	}
}

func TestRankFileRoundTrip(t *testing.T) {
	db := testDatabase(t)
	fp := testFingerprint().Hash()
	dir := t.TempDir()
	if err := SaveRankFile(dir, 3, 1, fp, db); err != nil {
		t.Fatalf("SaveRankFile: %v", err)
	}
	got, err := LoadRankFile(RankFilePath(dir, 3, 1), 3, 1, fp)
	if err != nil {
		t.Fatalf("LoadRankFile: %v", err)
	}
	if got.K != db.K || got.Len() != db.Len() {
		t.Fatalf("rank file round-trip: k=%d n=%d, want k=%d n=%d", got.K, got.Len(), db.K, db.Len())
	}
	for i, kv := range db.Entries {
		if got.Entries[i] != kv {
			t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], kv)
		}
	}

	// Wrong coordinates must be refused.
	if _, err := LoadRankFile(RankFilePath(dir, 3, 1), 4, 1, fp); !errors.Is(err, ErrMismatch) {
		t.Fatalf("wrong round: got %v, want ErrMismatch", err)
	}
	if _, err := LoadRankFile(RankFilePath(dir, 3, 1), 3, 2, fp); !errors.Is(err, ErrMismatch) {
		t.Fatalf("wrong slot: got %v, want ErrMismatch", err)
	}
	if _, err := LoadRankFile(RankFilePath(dir, 3, 1), 3, 1, fp+1); !errors.Is(err, ErrMismatch) {
		t.Fatalf("wrong fingerprint: got %v, want ErrMismatch", err)
	}
}

func TestRankFileCorruption(t *testing.T) {
	db := testDatabase(t)
	var buf bytes.Buffer
	if err := WriteRankFile(&buf, 1, 0, 0xdeadbeef, db); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, _, _, _, err := ReadRankFile(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrMismatch) {
			t.Fatalf("truncation at %d: unstructured error %v", cut, err)
		}
	}
	// Flip a byte in the embedded database body: its own CRC catches it.
	mut := append([]byte(nil), full...)
	mut[len(mut)-6] ^= 0xff
	if _, _, _, _, err := ReadRankFile(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("body flip: got %v, want ErrChecksum", err)
	}
	// Flip a header byte: the header CRC catches it.
	mut = append([]byte(nil), full...)
	mut[6] ^= 0xff
	if _, _, _, _, err := ReadRankFile(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("header flip: got %v, want ErrChecksum", err)
	}
}

func TestFingerprintHashSensitivity(t *testing.T) {
	base := testFingerprint()
	variants := []Fingerprint{base, base, base, base, base}
	variants[1].K = 21
	variants[2].Ranks = 8
	variants[3].Inputs = []InputFile{{Path: "a.fq", Size: 1235}, {Path: "b.fq.gz", Size: 99}}
	variants[4].Engine = "cpu"
	h0 := base.Hash()
	for i, v := range variants[1:] {
		if v.Hash() == h0 {
			t.Fatalf("variant %d hashes equal to base", i+1)
		}
	}
	if base.Hash() != h0 {
		t.Fatalf("hash not deterministic")
	}
}

func TestRemoveStale(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint().Hash()
	db := testDatabase(t)
	for _, r := range []int{1, 3, 5} {
		if err := SaveRankFile(dir, r, 0, fp, db); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.123.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	RemoveStale(dir, 5)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != filepath.Base(RankFilePath(dir, 5, 0)) {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("after RemoveStale: %v, want only round-5 slot file", names)
	}
}

func TestSuccessor(t *testing.T) {
	dead := []bool{false, true, true, false}
	cases := []struct{ r, want int }{{0, 0}, {1, 3}, {2, 3}, {3, 3}}
	for _, c := range cases {
		if got := Successor(c.r, dead); got != c.want {
			t.Fatalf("Successor(%d)=%d, want %d", c.r, got, c.want)
		}
	}
	if got := Successor(2, []bool{true, true, true}); got != -1 {
		t.Fatalf("all-dead Successor=%d, want -1", got)
	}
	// Composition: Successor(Successor(r, D), D') == Successor(r, D') for D ⊆ D'.
	d1 := []bool{false, true, false, false, false}
	d2 := []bool{false, true, true, false, true}
	for r := 0; r < 5; r++ {
		if got, want := Successor(Successor(r, d1), d2), Successor(r, d2); got != want {
			t.Fatalf("composition broken at r=%d: %d != %d", r, got, want)
		}
	}
}
