// Package kmer extracts k-mers from reads and concatenated base arrays.
//
// It implements the sliding-window parse of Alg. 1 (PARSEKMER): every
// position i of a read of length L with i ≤ L-k yields the k-mer
// r[i:i+k], provided the window contains only valid bases. Windows
// containing 'N' (or any non-ACGT character, including the read separator
// in concatenated GPU buffers) are skipped, and scanning restarts after the
// offending base — the standard convention in k-mer counters.
package kmer

import (
	"fmt"

	"dedukt/internal/dna"
)

// Scanner iterates the valid k-mers of a single read. The zero value is not
// usable; construct with NewScanner.
type Scanner struct {
	enc   *dna.Encoding
	seq   []byte
	k     int
	pos   int      // index of the next base to consume
	valid int      // number of consecutive valid bases ending just before pos
	cur   dna.Kmer // rolling window
}

// NewScanner returns a scanner over seq producing k-mers of length k
// encoded under enc. It panics if k is out of (0, dna.MaxK].
func NewScanner(enc *dna.Encoding, seq []byte, k int) *Scanner {
	if k <= 0 || k > dna.MaxK {
		panic(fmt.Sprintf("kmer: k=%d outside (0,%d]", k, dna.MaxK))
	}
	return &Scanner{enc: enc, seq: seq, k: k}
}

// Next returns the next k-mer and the read offset of its first base.
// ok is false when the read is exhausted.
func (s *Scanner) Next() (w dna.Kmer, pos int, ok bool) {
	for s.pos < len(s.seq) {
		code, valid := s.enc.Encode(s.seq[s.pos])
		s.pos++
		if !valid {
			s.valid = 0
			continue
		}
		s.cur = s.cur.Append(s.k, code)
		s.valid++
		if s.valid >= s.k {
			return s.cur, s.pos - s.k, true
		}
	}
	return 0, 0, false
}

// ForEach invokes fn for every valid k-mer of seq in order. It is the
// allocation-free bulk form of Scanner.
func ForEach(enc *dna.Encoding, seq []byte, k int, fn func(w dna.Kmer, pos int)) {
	s := NewScanner(enc, seq, k)
	for {
		w, pos, ok := s.Next()
		if !ok {
			return
		}
		fn(w, pos)
	}
}

// Count returns the number of valid k-mers in seq.
func Count(enc *dna.Encoding, seq []byte, k int) int {
	n := 0
	ForEach(enc, seq, k, func(dna.Kmer, int) { n++ })
	return n
}

// Extract appends all valid k-mers of seq to dst.
func Extract(dst []dna.Kmer, enc *dna.Encoding, seq []byte, k int) []dna.Kmer {
	ForEach(enc, seq, k, func(w dna.Kmer, _ int) { dst = append(dst, w) })
	return dst
}

// ExtractBuffer appends all valid k-mers from a concatenated, separator-
// delimited base buffer (dna.SeqBuffer.Data). Because the separator is an
// invalid base, k-mer windows never straddle two reads — this is exactly why
// the GPU staging format marks read ends with special bytes (§III-B.1).
func ExtractBuffer(dst []dna.Kmer, enc *dna.Encoding, data []byte, k int) []dna.Kmer {
	return Extract(dst, enc, data, k)
}

// MaxKmers bounds the number of k-mers a read of length L can produce:
// max(0, L-k+1). Used to presize outgoing buffers.
func MaxKmers(readLen, k int) int {
	if readLen < k {
		return 0
	}
	return readLen - k + 1
}
