package kmer

import (
	"math/rand"
	"testing"

	"dedukt/internal/dna"
)

func TestScannerBasic(t *testing.T) {
	// Fig. 2 of the paper: read "GTCA..." with k=3 yields GTC, TCA, ...
	seq := []byte("GTCATG")
	var got []string
	ForEach(&dna.Lexicographic, seq, 3, func(w dna.Kmer, pos int) {
		got = append(got, w.String(&dna.Lexicographic, 3))
	})
	want := []string{"GTC", "TCA", "CAT", "ATG"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScannerPositions(t *testing.T) {
	seq := []byte("ACGTACGT")
	k := 4
	i := 0
	ForEach(&dna.Random, seq, k, func(w dna.Kmer, pos int) {
		if pos != i {
			t.Fatalf("kmer %d at pos %d", i, pos)
		}
		if got := w.String(&dna.Random, k); got != string(seq[pos:pos+k]) {
			t.Fatalf("kmer at %d = %q", pos, got)
		}
		i++
	})
	if i != MaxKmers(len(seq), k) {
		t.Fatalf("yielded %d kmers, want %d", i, MaxKmers(len(seq), k))
	}
}

func TestScannerSkipsInvalidWindows(t *testing.T) {
	// N at position 4: windows overlapping it are suppressed.
	seq := []byte("ACGTNACGT")
	var got []string
	ForEach(&dna.Lexicographic, seq, 3, func(w dna.Kmer, pos int) {
		got = append(got, w.String(&dna.Lexicographic, 3))
	})
	want := []string{"ACG", "CGT", "ACG", "CGT"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestScannerShortRead(t *testing.T) {
	if n := Count(&dna.Lexicographic, []byte("AC"), 3); n != 0 {
		t.Fatalf("short read yielded %d kmers", n)
	}
	if n := Count(&dna.Lexicographic, []byte(""), 3); n != 0 {
		t.Fatalf("empty read yielded %d kmers", n)
	}
	if n := Count(&dna.Lexicographic, []byte("ACG"), 3); n != 1 {
		t.Fatalf("exact-k read yielded %d kmers", n)
	}
}

func TestScannerAllInvalid(t *testing.T) {
	if n := Count(&dna.Lexicographic, []byte("NNNNNNNN"), 3); n != 0 {
		t.Fatalf("all-N read yielded %d kmers", n)
	}
}

func TestNewScannerPanics(t *testing.T) {
	for _, k := range []int{0, -1, dna.MaxK + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			NewScanner(&dna.Lexicographic, []byte("ACGT"), k)
		}()
	}
}

func TestExtractBufferRespectsSeparators(t *testing.T) {
	var b dna.SeqBuffer
	b.AppendRead([]byte("ACGTA"))
	b.AppendRead([]byte("GGCC"))
	k := 3
	kmers := ExtractBuffer(nil, &dna.Lexicographic, b.Data(), k)
	// Per-read extraction must match: no k-mer straddles the boundary.
	var want []dna.Kmer
	want = Extract(want, &dna.Lexicographic, []byte("ACGTA"), k)
	want = Extract(want, &dna.Lexicographic, []byte("GGCC"), k)
	if len(kmers) != len(want) {
		t.Fatalf("buffer yielded %d kmers, per-read %d", len(kmers), len(want))
	}
	for i := range want {
		if kmers[i] != want[i] {
			t.Fatalf("kmer %d: %x vs %x", i, kmers[i], want[i])
		}
	}
}

func TestScannerMatchesNaive(t *testing.T) {
	// Property: rolling scanner equals naive substring encoding, for random
	// reads with injected Ns, across k values.
	rng := rand.New(rand.NewSource(11))
	alpha := "ACGTN"
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(120)
		seq := make([]byte, n)
		for i := range seq {
			if rng.Intn(12) == 0 {
				seq[i] = 'N'
			} else {
				seq[i] = alpha[rng.Intn(4)]
			}
		}
		k := 1 + rng.Intn(31)
		var naive []dna.Kmer
	outer:
		for i := 0; i+k <= n; i++ {
			for j := i; j < i+k; j++ {
				if seq[j] == 'N' {
					continue outer
				}
			}
			w, err := dna.KmerFromString(&dna.Random, string(seq[i:i+k]))
			if err != nil {
				t.Fatal(err)
			}
			naive = append(naive, w)
		}
		got := Extract(nil, &dna.Random, seq, k)
		if len(got) != len(naive) {
			t.Fatalf("trial %d (k=%d): %d vs naive %d kmers", trial, k, len(got), len(naive))
		}
		for i := range naive {
			if got[i] != naive[i] {
				t.Fatalf("trial %d: kmer %d mismatch", trial, i)
			}
		}
	}
}

func TestMaxKmers(t *testing.T) {
	cases := []struct{ l, k, want int }{{10, 3, 8}, {3, 3, 1}, {2, 3, 0}, {0, 5, 0}}
	for _, c := range cases {
		if got := MaxKmers(c.l, c.k); got != c.want {
			t.Errorf("MaxKmers(%d,%d) = %d, want %d", c.l, c.k, got, c.want)
		}
	}
}
