package kmer

import (
	"math/rand"
	"testing"

	"dedukt/internal/dna"
)

func BenchmarkScanner(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seq := make([]byte, 64<<10)
	for i := range seq {
		seq[i] = "ACGT"[rng.Intn(4)]
	}
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ForEach(&dna.Random, seq, 17, func(dna.Kmer, int) { n++ })
		if n == 0 {
			b.Fatal("no kmers")
		}
	}
}

func BenchmarkExtract(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seq := make([]byte, 16<<10)
	for i := range seq {
		if rng.Intn(50) == 0 {
			seq[i] = 'N'
		} else {
			seq[i] = "ACGT"[rng.Intn(4)]
		}
	}
	b.SetBytes(int64(len(seq)))
	buf := make([]dna.Kmer, 0, len(seq))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Extract(buf[:0], &dna.Random, seq, 17)
	}
}
