package fault

import "testing"

func TestFatalKill(t *testing.T) {
	in, err := New(Config{FatalKill: true, FatalRank: 2, FatalRound: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 4; rank++ {
		for round := 0; round < 6; round++ {
			want := rank == 2 && round == 3
			if got := in.FatalKill(rank, round); got != want {
				t.Fatalf("FatalKill(%d, %d) = %v, want %v", rank, round, got, want)
			}
		}
	}
	counts := in.Snapshot()
	if counts[2].Killed != 1 {
		t.Fatalf("rank 2 killed count %d, want 1", counts[2].Killed)
	}
	// The probabilistic Kill path must stay independent of FatalKill.
	if in.Kill(2, 3) {
		t.Fatal("probabilistic Kill fired with zero probability")
	}
}

func TestFatalKillValidation(t *testing.T) {
	if _, err := New(Config{FatalKill: true, FatalRank: 4, FatalRound: 0}, 4); err == nil {
		t.Fatal("fatal kill beyond world size accepted")
	}
	if err := (Config{FatalKill: true, FatalRank: -1, FatalRound: 0}).Validate(); err == nil {
		t.Fatal("negative fatal rank accepted")
	}
	if err := (Config{FatalKill: true, FatalRank: 0, FatalRound: -1}).Validate(); err == nil {
		t.Fatal("negative fatal round accepted")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	if !(Config{FatalKill: true}).Enabled() {
		t.Fatal("fatal kill config not enabled")
	}
}
