// Package fault is the deterministic fault injector of the reproduction's
// robustness layer. The paper's pipeline is bulk-synchronous: one slow,
// dead, or corrupting rank stalls or poisons every collective of Alg. 1.
// This package manufactures exactly those failures — on a seeded,
// replayable schedule — so the exchange path's detection and recovery
// machinery (checksummed frames, collective deadlines, round-level retry;
// see DESIGN.md §7) can be exercised and regression-tested.
//
// Every decision is a pure function of (seed, fault kind, rank, round,
// attempt, destination): the same seed replays the same fault schedule on
// every run, and a retry (attempt+1) re-rolls the dice, so transient faults
// clear under retry while the schedule stays reproducible.
package fault

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"dedukt/internal/hash"
	"dedukt/internal/obs"
)

// ErrKilled marks a rank terminated by the injector; pipeline rank bodies
// return it (wrapped with rank/round context) when their kill roll fires.
var ErrKilled = errors.New("fault: rank killed by injector")

// Config sets the per-event fault probabilities. The zero value injects
// nothing.
type Config struct {
	// Seed selects the fault schedule; the same seed replays the same
	// faults.
	Seed uint64
	// Kill is the per-(rank, round) probability that the rank dies at the
	// start of the round, abandoning its peers mid-collective.
	Kill float64
	// Delay is the per-(rank, round) probability that the rank stalls for
	// DelayFor before the round (a straggler).
	Delay float64
	// DelayFor is the straggler stall length (default 2ms).
	DelayFor time.Duration
	// Drop is the per-payload probability — rolled per (rank, round,
	// attempt, destination) — that the payload vanishes in flight: the
	// destination receives nothing from this rank.
	Drop float64
	// Corrupt is the per-payload probability that one bit of the framed
	// payload flips in flight.
	Corrupt float64
	// FatalKill schedules one deterministic, permanent rank death:
	// FatalRank dies at the start of round FatalRound and never comes
	// back (unlike the probabilistic Kill, which a replay may re-roll
	// past). This is the recovery subsystem's test fixture: checkpoint /
	// resume and shrink recovery need a kill that is certain to fire at a
	// known round. The zero value (false) is inert.
	FatalKill  bool
	FatalRank  int
	FatalRound int
}

// Enabled reports whether any fault has a non-zero probability.
func (c Config) Enabled() bool {
	return c.Kill > 0 || c.Delay > 0 || c.Drop > 0 || c.Corrupt > 0 || c.FatalKill
}

// Validate checks the probabilities.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"kill", c.Kill}, {"delay", c.Delay}, {"drop", c.Drop}, {"corrupt", c.Corrupt}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if c.DelayFor < 0 {
		return fmt.Errorf("fault: negative delay %v", c.DelayFor)
	}
	if c.FatalKill && (c.FatalRank < 0 || c.FatalRound < 0) {
		return fmt.Errorf("fault: fatal kill at rank %d round %d (both must be >= 0)", c.FatalRank, c.FatalRound)
	}
	return nil
}

// Counts tallies one rank's faults: what the injector did to it and what
// the recovery layer observed. All fields are cumulative over a run.
type Counts struct {
	// Injected events (sender side).
	Killed, Delayed, Dropped, Corrupted uint64
	// Observed events (receiver / recovery side): frames that failed
	// verification, rounds retried, and items lost to degraded rounds.
	BadFrames, Retries, Discarded uint64
}

// Total returns the sum of injected events.
func (c Counts) Total() uint64 { return c.Killed + c.Delayed + c.Dropped + c.Corrupted }

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Killed += other.Killed
	c.Delayed += other.Delayed
	c.Dropped += other.Dropped
	c.Corrupted += other.Corrupted
	c.BadFrames += other.BadFrames
	c.Retries += other.Retries
	c.Discarded += other.Discarded
}

// atomicCounts is the concurrent mirror of Counts (ranks run as
// goroutines, so counters must be race-free).
type atomicCounts struct {
	killed, delayed, dropped, corrupted atomic.Uint64
	badFrames, retries, discarded       atomic.Uint64
}

// Injector makes the seeded fault decisions and records per-rank tallies.
// All methods are safe for concurrent use by rank goroutines.
type Injector struct {
	cfg    Config
	counts []atomicCounts
}

// New builds an injector for a world of the given size. A zero Config
// yields an injector that never fires (the recovery counters still work).
func New(cfg Config, ranks int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("fault: non-positive world size %d", ranks)
	}
	if cfg.FatalKill && cfg.FatalRank >= ranks {
		return nil, fmt.Errorf("fault: fatal kill targets rank %d of a %d-rank world", cfg.FatalRank, ranks)
	}
	if cfg.DelayFor == 0 {
		cfg.DelayFor = 2 * time.Millisecond
	}
	return &Injector{cfg: cfg, counts: make([]atomicCounts, ranks)}, nil
}

// Salts separate the decision streams of each fault kind.
const (
	killSalt    = 0x6b696c6c // "kill"
	delaySalt   = 0x736c6f77 // "slow"
	dropSalt    = 0x64726f70 // "drop"
	corruptSalt = 0x666c6970 // "flip"
	bitSalt     = 0x62697473 // "bits"
)

// roll returns a uniform [0,1) value determined by the seed, the salt, and
// the event coordinates.
func (in *Injector) roll(salt uint64, ids ...int) float64 {
	return float64(in.mix(salt, ids...)>>11) / (1 << 53)
}

func (in *Injector) mix(salt uint64, ids ...int) uint64 {
	x := in.cfg.Seed ^ salt
	for _, id := range ids {
		x = hash.Mix64Seeded(uint64(id)+0x9e3779b97f4a7c15, x)
	}
	return x
}

// Kill reports whether the rank dies at the start of the round, recording
// the event when it fires.
func (in *Injector) Kill(rank, round int) bool {
	if in.cfg.Kill == 0 || in.roll(killSalt, rank, round) >= in.cfg.Kill {
		return false
	}
	in.counts[rank].killed.Add(1)
	return true
}

// FatalKill reports whether the rank dies permanently at the start of the
// round — an exact (rank, round) match of the scheduled fatal kill, not a
// roll. It fires on any attempt at that round, including a shrink replay
// that somehow revisits it, so recovery correctness cannot depend on the
// dead rank participating.
func (in *Injector) FatalKill(rank, round int) bool {
	if !in.cfg.FatalKill || rank != in.cfg.FatalRank || round != in.cfg.FatalRound {
		return false
	}
	in.counts[rank].killed.Add(1)
	return true
}

// Delay returns the straggler stall for the rank at the round (0 when the
// roll does not fire), recording the event when it does.
func (in *Injector) Delay(rank, round int) time.Duration {
	if in.cfg.Delay == 0 || in.roll(delaySalt, rank, round) >= in.cfg.Delay {
		return 0
	}
	in.counts[rank].delayed.Add(1)
	return in.cfg.DelayFor
}

// Drop reports whether the payload rank sends to dest on this (round,
// attempt) vanishes in flight.
func (in *Injector) Drop(rank, round, attempt, dest int) bool {
	if in.cfg.Drop == 0 || in.roll(dropSalt, rank, round, attempt, dest) >= in.cfg.Drop {
		return false
	}
	in.counts[rank].dropped.Add(1)
	return true
}

// CorruptBytes returns the frame with one bit flipped (in a copy) when the
// corruption roll fires, and the frame unchanged otherwise.
func (in *Injector) CorruptBytes(rank, round, attempt, dest int, frame []byte) ([]byte, bool) {
	if len(frame) == 0 || in.cfg.Corrupt == 0 ||
		in.roll(corruptSalt, rank, round, attempt, dest) >= in.cfg.Corrupt {
		return frame, false
	}
	bit := in.mix(bitSalt, rank, round, attempt, dest) % uint64(8*len(frame))
	out := append([]byte(nil), frame...)
	out[bit/8] ^= 1 << (bit % 8)
	in.counts[rank].corrupted.Add(1)
	return out, true
}

// CorruptWords is CorruptBytes for word-framed payloads.
func (in *Injector) CorruptWords(rank, round, attempt, dest int, frame []uint64) ([]uint64, bool) {
	if len(frame) == 0 || in.cfg.Corrupt == 0 ||
		in.roll(corruptSalt, rank, round, attempt, dest) >= in.cfg.Corrupt {
		return frame, false
	}
	bit := in.mix(bitSalt, rank, round, attempt, dest) % uint64(64*len(frame))
	out := append([]uint64(nil), frame...)
	out[bit/64] ^= 1 << (bit % 64)
	in.counts[rank].corrupted.Add(1)
	return out, true
}

// RecordBadFrames notes frames that failed verification on receive.
func (in *Injector) RecordBadFrames(rank int, n uint64) {
	if n > 0 {
		in.counts[rank].badFrames.Add(n)
	}
}

// RecordRetry notes one retried exchange round.
func (in *Injector) RecordRetry(rank int) { in.counts[rank].retries.Add(1) }

// RecordDiscarded notes items lost when a round degrades past its retry
// budget.
func (in *Injector) RecordDiscarded(rank int, items uint64) {
	if items > 0 {
		in.counts[rank].discarded.Add(items)
	}
}

// RegisterMetrics publishes the injector's run-wide tallies into an
// observability registry: injected events by kind plus the recovery-side
// observations (bad frames, retries, discarded items). Call after a run
// completes; counters accumulate across runs sharing one registry.
func (in *Injector) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	var sum Counts
	for _, c := range in.Snapshot() {
		sum.Add(c)
	}
	for _, kv := range []struct {
		kind string
		n    uint64
	}{
		{"kill", sum.Killed}, {"delay", sum.Delayed},
		{"drop", sum.Dropped}, {"corrupt", sum.Corrupted},
	} {
		reg.Counter("fault_injected_total", "Injected fault events by kind.", obs.L("kind", kv.kind)).Add(kv.n)
	}
	reg.Counter("fault_bad_frames_total", "Frames that failed verification on receive.").Add(sum.BadFrames)
	reg.Counter("fault_retries_total", "Exchange rounds retried.").Add(sum.Retries)
	reg.Counter("fault_discarded_items_total", "Items lost to rounds degraded past the retry budget.").Add(sum.Discarded)
}

// Snapshot returns the per-rank tallies.
func (in *Injector) Snapshot() []Counts {
	out := make([]Counts, len(in.counts))
	for r := range in.counts {
		c := &in.counts[r]
		out[r] = Counts{
			Killed:    c.killed.Load(),
			Delayed:   c.delayed.Load(),
			Dropped:   c.dropped.Load(),
			Corrupted: c.corrupted.Load(),
			BadFrames: c.badFrames.Load(),
			Retries:   c.retries.Load(),
			Discarded: c.discarded.Load(),
		}
	}
	return out
}
