package fault

import (
	"bytes"
	"testing"
	"time"
)

func TestZeroConfigNeverFires(t *testing.T) {
	in, err := New(Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte{1, 2, 3, 4}
	for rank := 0; rank < 4; rank++ {
		for round := 0; round < 50; round++ {
			if in.Kill(rank, round) {
				t.Fatal("kill fired with zero config")
			}
			if in.Delay(rank, round) != 0 {
				t.Fatal("delay fired with zero config")
			}
			for dest := 0; dest < 4; dest++ {
				if in.Drop(rank, round, 0, dest) {
					t.Fatal("drop fired with zero config")
				}
				if _, hit := in.CorruptBytes(rank, round, 0, dest, frame); hit {
					t.Fatal("corrupt fired with zero config")
				}
			}
		}
	}
	for _, c := range in.Snapshot() {
		if c.Total() != 0 {
			t.Fatalf("counts non-zero: %+v", c)
		}
	}
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, Kill: 0.1, Delay: 0.1, Drop: 0.1, Corrupt: 0.1}
	a, _ := New(cfg, 8)
	b, _ := New(cfg, 8)
	frame := bytes.Repeat([]byte{0xAA}, 32)
	for rank := 0; rank < 8; rank++ {
		for round := 0; round < 20; round++ {
			if a.Kill(rank, round) != b.Kill(rank, round) {
				t.Fatal("kill schedule not deterministic")
			}
			if a.Delay(rank, round) != b.Delay(rank, round) {
				t.Fatal("delay schedule not deterministic")
			}
			for dest := 0; dest < 8; dest++ {
				if a.Drop(rank, round, 1, dest) != b.Drop(rank, round, 1, dest) {
					t.Fatal("drop schedule not deterministic")
				}
				fa, _ := a.CorruptBytes(rank, round, 1, dest, frame)
				fb, _ := b.CorruptBytes(rank, round, 1, dest, frame)
				if !bytes.Equal(fa, fb) {
					t.Fatal("corruption not deterministic")
				}
			}
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, _ := New(Config{Seed: 1, Drop: 0.5}, 4)
	b, _ := New(Config{Seed: 2, Drop: 0.5}, 4)
	same := true
	for round := 0; round < 64 && same; round++ {
		for dest := 0; dest < 4; dest++ {
			if a.Drop(0, round, 0, dest) != b.Drop(0, round, 0, dest) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical drop schedule")
	}
}

func TestAttemptRerollsDecision(t *testing.T) {
	// A retry (attempt+1) must re-roll: with p=0.5 some (round, dest) that
	// dropped on attempt 0 must clear on attempt 1.
	in, _ := New(Config{Seed: 7, Drop: 0.5}, 2)
	cleared := false
	for round := 0; round < 128; round++ {
		if in.Drop(0, round, 0, 1) && !in.Drop(0, round, 1, 1) {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("no dropped payload ever cleared on retry")
	}
}

func TestRatesApproximateProbability(t *testing.T) {
	in, _ := New(Config{Seed: 3, Drop: 0.1}, 1)
	fired := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if in.Drop(0, i, 0, 0) {
			fired++
		}
	}
	rate := float64(fired) / trials
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("drop rate %.3f far from configured 0.1", rate)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	in, _ := New(Config{Seed: 9, Corrupt: 1}, 1)
	frame := bytes.Repeat([]byte{0x5C}, 16)
	orig := append([]byte(nil), frame...)
	out, hit := in.CorruptBytes(0, 0, 0, 0, frame)
	if !hit {
		t.Fatal("corrupt with p=1 did not fire")
	}
	if !bytes.Equal(frame, orig) {
		t.Fatal("CorruptBytes mutated the caller's frame")
	}
	diff := 0
	for i := range out {
		for b := 0; b < 8; b++ {
			if (out[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want 1", diff)
	}

	words := []uint64{1, 2, 3}
	wout, hit := in.CorruptWords(0, 0, 0, 0, words)
	if !hit {
		t.Fatal("word corrupt with p=1 did not fire")
	}
	wdiff := 0
	for i := range wout {
		x := wout[i] ^ words[i]
		for ; x != 0; x &= x - 1 {
			wdiff++
		}
	}
	if wdiff != 1 {
		t.Fatalf("flipped %d word bits, want 1", wdiff)
	}
}

func TestCountersAndSnapshot(t *testing.T) {
	in, _ := New(Config{Seed: 5, Kill: 1, Delay: 1, Drop: 1, Corrupt: 1, DelayFor: time.Millisecond}, 3)
	if !in.Kill(1, 0) {
		t.Fatal("kill p=1 did not fire")
	}
	if in.Delay(1, 0) != time.Millisecond {
		t.Fatal("delay p=1 did not fire with configured duration")
	}
	in.Drop(1, 0, 0, 2)
	in.CorruptBytes(1, 0, 0, 2, []byte{1})
	in.RecordBadFrames(2, 3)
	in.RecordRetry(2)
	in.RecordDiscarded(2, 17)
	s := in.Snapshot()
	if s[1].Killed != 1 || s[1].Delayed != 1 || s[1].Dropped != 1 || s[1].Corrupted != 1 {
		t.Fatalf("rank 1 counts = %+v", s[1])
	}
	if s[2].BadFrames != 3 || s[2].Retries != 1 || s[2].Discarded != 17 {
		t.Fatalf("rank 2 counts = %+v", s[2])
	}
	if s[0].Total() != 0 {
		t.Fatalf("rank 0 counts = %+v", s[0])
	}
	var sum Counts
	for _, c := range s {
		sum.Add(c)
	}
	if sum.Total() != 4 || sum.Discarded != 17 {
		t.Fatalf("aggregate = %+v", sum)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Kill: -0.1},
		{Drop: 1.5},
		{Corrupt: 2},
		{DelayFor: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, 2); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := New(Config{Drop: 0.5}, 0); err == nil {
		t.Error("zero world size should be rejected")
	}
	if !(Config{Drop: 0.01}).Enabled() {
		t.Error("non-zero drop should report enabled")
	}
	if (Config{}).Enabled() {
		t.Error("zero config should report disabled")
	}
}
