package gpusim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dedukt/internal/obs"
)

// Device executes kernels under a Config.
type Device struct {
	cfg Config
	// contention is a hashed per-address atomic-op counter (single-row
	// count-min sketch). The max bucket is a deterministic upper bound on
	// the per-address maximum, used for the hotspot roofline term.
	contention []uint64
	arenaNext  uint64
	// reg, when set via Observe, receives per-kernel efficiency counters
	// after every launch.
	reg *obs.Registry
	// scratch pools per-worker launch state (lane recorders and fold
	// buffers) across launches. Multi-round pipelines launch the same
	// kernels dozens of times; without the pool every launch re-grows each
	// lane's access log from nil, which dominated the streamed pipeline's
	// allocation profile.
	scratch sync.Pool
}

// contentionBuckets is the sketch width. Counter-style hot addresses (a few
// hundred buffer tails) essentially never collide at this width, and table
// slots are individually cold, so the bound stays tight. The width is kept
// modest (512 KiB per device) because large simulations instantiate one
// device per simulated rank.
const contentionBuckets = 1 << 16

// NewDevice validates cfg and returns a Device.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg, contention: make([]uint64, contentionBuckets), arenaNext: 1 << 12}, nil
}

// MustDevice is NewDevice for known-good configs; it panics on error.
func MustDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Observe attaches a metrics registry: every subsequent Launch publishes
// its kernel stats (launches, divergence-adjusted and raw ops, memory
// transactions, atomics) as counters labeled by kernel name. Set before
// launching; a nil registry detaches.
func (d *Device) Observe(reg *obs.Registry) { d.reg = reg }

// publishStats records one launch's stats into the attached registry.
func (d *Device) publishStats(s *KernelStats) {
	if d.reg == nil {
		return
	}
	kernel := obs.L("kernel", s.Name)
	d.reg.Counter("gpusim_kernel_launches_total", "Kernel launches by kernel name.", kernel).Inc()
	d.reg.Counter("gpusim_compute_ops_total", "Divergence-adjusted compute ops (max lane per warp × warp size).", kernel).Add(s.ComputeOps)
	d.reg.Counter("gpusim_raw_compute_ops_total", "Per-lane compute ops before the divergence charge.", kernel).Add(s.RawComputeOps)
	d.reg.Counter("gpusim_mem_transactions_total", "32-byte memory sectors moved after warp coalescing.", kernel).Add(s.MemTransactions)
	d.reg.Counter("gpusim_atomic_ops_total", "Atomic operations issued.", kernel).Add(s.AtomicOps)
}

// Alloc reserves a 256-byte-aligned simulated device address range of the
// given size and returns its base address. Kernels use these addresses when
// recording accesses so coalescing analysis sees realistic layouts.
func (d *Device) Alloc(bytes int64) uint64 {
	if bytes < 0 {
		panic("gpusim: negative allocation")
	}
	size := (uint64(bytes) + 255) &^ 255
	end := atomic.AddUint64(&d.arenaNext, size)
	return end - size
}

// accessKind distinguishes recorded operations.
type accessKind uint8

const (
	accRead accessKind = iota
	accWrite
	accAtomic
)

type access struct {
	kind accessKind
	addr uint64
	size uint32
}

// Ctx is the per-thread recorder handed to kernel bodies. It is only valid
// during the call.
type Ctx struct {
	tid      int
	ops      uint64
	accesses []access
}

// TID returns the global thread index.
func (c *Ctx) TID() int { return c.tid }

// Compute records n abstract arithmetic/logic operations.
func (c *Ctx) Compute(n int) { c.ops += uint64(n) }

// Read records a global-memory load of size bytes at addr.
func (c *Ctx) Read(addr uint64, size int) {
	c.accesses = append(c.accesses, access{accRead, addr, uint32(size)})
}

// Write records a global-memory store.
func (c *Ctx) Write(addr uint64, size int) {
	c.accesses = append(c.accesses, access{accWrite, addr, uint32(size)})
}

// Atomic records an atomic read-modify-write at addr (e.g. atomicAdd on an
// outgoing-buffer tail, or atomicCAS on a hash-table slot).
func (c *Ctx) Atomic(addr uint64, size int) {
	c.accesses = append(c.accesses, access{accAtomic, addr, uint32(size)})
}

// LaunchSpec describes kernel geometry.
type LaunchSpec struct {
	// Name labels the kernel in stats.
	Name string
	// Threads is the total logical thread count (grid × block).
	Threads int
	// BlockSize is threads per block; 0 defaults to 256.
	BlockSize int
}

// Launch executes body for every thread of the spec and returns aggregated
// stats. Bodies run with real effects (they may write Go memory; use
// sync/atomic for shared state). Warps execute their lanes sequentially
// inside one goroutine; distinct warps may run on different goroutines, so
// cross-thread coordination other than atomics must not be assumed — the
// same portability rule a real CUDA grid imposes.
func (d *Device) Launch(spec LaunchSpec, body func(tid int, ctx *Ctx)) (KernelStats, error) {
	if spec.Threads < 0 {
		return KernelStats{}, fmt.Errorf("gpusim: negative thread count %d", spec.Threads)
	}
	block := spec.BlockSize
	if block == 0 {
		block = 256
	}
	if block <= 0 || block%d.cfg.WarpSize != 0 {
		return KernelStats{}, fmt.Errorf("gpusim: block size %d not a positive multiple of warp size %d", block, d.cfg.WarpSize)
	}
	stats := KernelStats{
		Name:    spec.Name,
		Threads: spec.Threads,
		Blocks:  (spec.Threads + block - 1) / block,
	}
	ws := d.cfg.WarpSize
	nWarps := (spec.Threads + ws - 1) / ws

	workers := runtime.GOMAXPROCS(0)
	if workers > nWarps {
		workers = nWarps
	}
	if workers < 1 {
		workers = 1
	}
	partials := make([]KernelStats, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[slot] = fmt.Errorf("gpusim: kernel %q panicked: %v", spec.Name, p)
				}
			}()
			sc := d.getScratch(ws)
			defer d.scratch.Put(sc)
			lanes := sc.lanes
			fs := &sc.fs
			for {
				warp := int(next.Add(1)) - 1
				if warp >= nWarps {
					return
				}
				lo := warp * ws
				hi := lo + ws
				if hi > spec.Threads {
					hi = spec.Threads
				}
				for i := range lanes {
					lanes[i].ops = 0
					lanes[i].accesses = lanes[i].accesses[:0]
				}
				for tid := lo; tid < hi; tid++ {
					lane := &lanes[tid-lo]
					lane.tid = tid
					body(tid, lane)
				}
				d.foldWarp(&partials[slot], lanes[:hi-lo], fs)
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return stats, e
		}
	}
	for i := range partials {
		stats.Add(partials[i]) // partials carry zero geometry, only work counters
	}
	// Hotspot bound from the contention sketch.
	var maxBucket uint64
	for _, c := range d.contention {
		if c > maxBucket {
			maxBucket = c
		}
	}
	if maxBucket > stats.MaxAtomicPerAddr {
		stats.MaxAtomicPerAddr = maxBucket
	}
	d.publishStats(&stats)
	return stats, nil
}

// ResetContention clears the hotspot sketch (between kernels whose atomics
// target different structures).
func (d *Device) ResetContention() {
	for i := range d.contention {
		d.contention[i] = 0
	}
}

// foldScratch holds one worker's reusable replay buffers for foldWarp.
type foldScratch struct {
	sectors []uint64
	atomics []uint64
}

// workerScratch is one launch worker's pooled state: the warp's lane
// recorders (whose access logs keep their grown capacity between launches)
// and the fold buffers.
type workerScratch struct {
	lanes []Ctx
	fs    foldScratch
}

// getScratch takes a worker scratch from the pool, allocating a fresh one
// on first use (or if the warp size ever changed, which it cannot for one
// device).
func (d *Device) getScratch(ws int) *workerScratch {
	if sc, ok := d.scratch.Get().(*workerScratch); ok && len(sc.lanes) == ws {
		return sc
	}
	return &workerScratch{
		lanes: make([]Ctx, ws),
		fs: foldScratch{
			sectors: make([]uint64, 0, ws*2),
			atomics: make([]uint64, 0, ws),
		},
	}
}

// foldWarp applies lockstep coalescing to one warp's recorded lanes and
// accumulates into st. fs provides reusable scratch owned by the caller.
func (d *Device) foldWarp(st *KernelStats, lanes []Ctx, fs *foldScratch) {
	// Divergence-adjusted compute: warps execute the union of their lanes'
	// paths, so every lane pays for the longest lane.
	var maxOps uint64
	maxAcc := 0
	for i := range lanes {
		st.RawComputeOps += lanes[i].ops
		if lanes[i].ops > maxOps {
			maxOps = lanes[i].ops
		}
		if len(lanes[i].accesses) > maxAcc {
			maxAcc = len(lanes[i].accesses)
		}
	}
	st.ComputeOps += maxOps * uint64(d.cfg.WarpSize)

	// Lockstep memory replay: the i-th access of each lane coalesces into
	// distinct 32-byte sectors. Atomics within one warp step aimed at the
	// same address are warp-aggregated into a single device atomic (the
	// standard nvcc/libcu++ optimization), so both the atomic throughput
	// term and the contention sketch see distinct addresses per step.
	sectors, atomics := fs.sectors, fs.atomics
	for step := 0; step < maxAcc; step++ {
		sectors = sectors[:0]
		atomics = atomics[:0]
		for i := range lanes {
			if step >= len(lanes[i].accesses) {
				continue // lane inactive at this step (divergence)
			}
			a := lanes[i].accesses[step]
			st.MemBytesRequested += uint64(a.size)
			first := a.addr / SectorBytes
			last := (a.addr + uint64(a.size) - 1) / SectorBytes
			for s := first; s <= last; s++ {
				sectors = append(sectors, s)
			}
			if a.kind == accAtomic {
				atomics = append(atomics, a.addr)
			}
		}
		if len(atomics) > 0 {
			sortU64(atomics)
			for i, addr := range atomics {
				if i > 0 && addr == atomics[i-1] {
					continue // warp-aggregated
				}
				st.AtomicOps++
				b := mixAddr(addr) % contentionBuckets
				atomic.AddUint64(&d.contention[b], 1)
			}
		}
		if len(sectors) == 0 {
			continue
		}
		sortU64(sectors)
		distinct := 1
		for i := 1; i < len(sectors); i++ {
			if sectors[i] != sectors[i-1] {
				distinct++
			}
		}
		st.MemTransactions += uint64(distinct)
	}
	// Keep any growth (wide multi-sector accesses) for the next warp.
	fs.sectors, fs.atomics = sectors, atomics
}

// sortU64 is an allocation-free insertion sort for the small per-step
// sector/atomic slices (≤ ~64 entries).
func sortU64(a []uint64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// mixAddr scrambles an address into the sketch index space.
func mixAddr(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}
