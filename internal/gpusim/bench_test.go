package gpusim

import "testing"

// BenchmarkLaunch measures the simulator's own per-thread overhead (a
// simulation-cost figure, not a modeled-GPU figure).
func BenchmarkLaunch(b *testing.B) {
	d := MustDevice(V100())
	base := d.Alloc(1 << 20)
	const threads = 10_000
	b.SetBytes(threads)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Launch(LaunchSpec{Name: "bench", Threads: threads}, func(tid int, ctx *Ctx) {
			ctx.Compute(10)
			ctx.Read(base+uint64(tid*8), 8)
			if tid%7 == 0 {
				ctx.Atomic(base, 4)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelTimeEval(b *testing.B) {
	cfg := V100()
	st := &KernelStats{ComputeOps: 1 << 20, MemTransactions: 1 << 16, AtomicOps: 1 << 10, MaxAtomicPerAddr: 64}
	for i := 0; i < b.N; i++ {
		if cfg.KernelTime(st) <= 0 {
			b.Fatal("non-positive time")
		}
	}
}
