package gpusim

import (
	"sync/atomic"
	"testing"
	"time"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(V100())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	if err := V100().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := V100()
	bad.NumSMs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("NumSMs=0 should fail")
	}
	bad = V100()
	bad.HBMBandwidthGBs = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative bandwidth should fail")
	}
	if _, err := NewDevice(bad); err == nil {
		t.Fatal("NewDevice must validate")
	}
}

func TestLaunchRunsEveryThread(t *testing.T) {
	d := testDevice(t)
	const n = 1000
	var hits [n]int32
	_, err := d.Launch(LaunchSpec{Name: "touch", Threads: n}, func(tid int, ctx *Ctx) {
		atomic.AddInt32(&hits[tid], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("thread %d ran %d times", i, h)
		}
	}
}

func TestLaunchGeometry(t *testing.T) {
	d := testDevice(t)
	st, err := d.Launch(LaunchSpec{Name: "g", Threads: 1000, BlockSize: 128}, func(int, *Ctx) {})
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks != 8 { // ceil(1000/128)
		t.Fatalf("Blocks = %d, want 8", st.Blocks)
	}
	if st.Threads != 1000 {
		t.Fatalf("Threads = %d", st.Threads)
	}
	if _, err := d.Launch(LaunchSpec{Threads: 10, BlockSize: 100}, func(int, *Ctx) {}); err == nil {
		t.Fatal("non-multiple block size should fail")
	}
	if _, err := d.Launch(LaunchSpec{Threads: -1}, func(int, *Ctx) {}); err == nil {
		t.Fatal("negative threads should fail")
	}
}

func TestCoalescedAccessOneWarpFourSectors(t *testing.T) {
	// 32 lanes reading consecutive 4-byte words span 128 bytes = 4 sectors.
	d := testDevice(t)
	base := d.Alloc(1 << 12)
	st, err := d.Launch(LaunchSpec{Name: "coal", Threads: 32}, func(tid int, ctx *Ctx) {
		ctx.Read(base+uint64(tid*4), 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MemTransactions != 4 {
		t.Fatalf("coalesced warp read = %d transactions, want 4", st.MemTransactions)
	}
	if st.MemBytesRequested != 128 {
		t.Fatalf("requested = %d bytes", st.MemBytesRequested)
	}
}

func TestStridedAccessUncoalesced(t *testing.T) {
	// 32 lanes reading 4 bytes each, 256 bytes apart: 32 distinct sectors.
	d := testDevice(t)
	base := d.Alloc(1 << 16)
	st, err := d.Launch(LaunchSpec{Name: "stride", Threads: 32}, func(tid int, ctx *Ctx) {
		ctx.Read(base+uint64(tid*256), 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MemTransactions != 32 {
		t.Fatalf("strided warp read = %d transactions, want 32", st.MemTransactions)
	}
	if eff := st.CoalescingEfficiency(); eff > 0.2 {
		t.Fatalf("strided efficiency %.2f should be poor", eff)
	}
}

func TestAccessSpanningTwoSectors(t *testing.T) {
	d := testDevice(t)
	base := d.Alloc(1 << 10) // 256-aligned, so base+30 straddles a boundary
	st, err := d.Launch(LaunchSpec{Name: "span", Threads: 1}, func(tid int, ctx *Ctx) {
		ctx.Read(base+30, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MemTransactions != 2 {
		t.Fatalf("straddling read = %d transactions, want 2", st.MemTransactions)
	}
}

func TestDivergenceAccounting(t *testing.T) {
	d := testDevice(t)
	// Half the warp does 100 ops, half does 10: warp pays 100×32.
	st, err := d.Launch(LaunchSpec{Name: "div", Threads: 32}, func(tid int, ctx *Ctx) {
		if tid%2 == 0 {
			ctx.Compute(100)
		} else {
			ctx.Compute(10)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ComputeOps != 100*32 {
		t.Fatalf("ComputeOps = %d, want 3200", st.ComputeOps)
	}
	if st.RawComputeOps != 16*100+16*10 {
		t.Fatalf("RawComputeOps = %d", st.RawComputeOps)
	}
	if w := st.DivergenceWaste(); w < 1.5 {
		t.Fatalf("divergence waste %.2f, want ≈1.8", w)
	}
}

func TestAtomicHotspotTracking(t *testing.T) {
	d := testDevice(t)
	base := d.Alloc(1024)
	const n = 4096
	const warps = n / 32
	st, err := d.Launch(LaunchSpec{Name: "hot", Threads: n}, func(tid int, ctx *Ctx) {
		ctx.Atomic(base, 4) // everyone hammers one counter
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same-address atomics within a warp step are warp-aggregated: one
	// device atomic per warp.
	if st.AtomicOps != warps {
		t.Fatalf("AtomicOps = %d, want %d (warp-aggregated)", st.AtomicOps, warps)
	}
	if st.MaxAtomicPerAddr < warps {
		t.Fatalf("MaxAtomicPerAddr = %d, want ≥ %d", st.MaxAtomicPerAddr, warps)
	}

	// After reset, spread atomics show low contention.
	d.ResetContention()
	st2, err := d.Launch(LaunchSpec{Name: "cold", Threads: n}, func(tid int, ctx *Ctx) {
		ctx.Atomic(base+uint64(tid*64), 4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.MaxAtomicPerAddr > 4 {
		t.Fatalf("spread atomics contention %d, want small", st2.MaxAtomicPerAddr)
	}
}

func TestKernelTimeRoofline(t *testing.T) {
	cfg := V100()
	// Memory-bound stats: time ≈ sectors×32/BW, derated by the calibrated
	// sustained fraction.
	st := &KernelStats{MemTransactions: 1 << 20}
	want := float64(uint64(1<<20)*SectorBytes) / (cfg.HBMBandwidthGBs * 1e9) / cfg.SustainedFraction
	got := cfg.KernelTime(st).Seconds()
	if got < want || got > want+cfg.LaunchOverheadUs*1e-6*2 {
		t.Fatalf("memory-bound time %.3e, want ≈%.3e", got, want)
	}
	// An uncalibrated config (SustainedFraction unset) runs at the roofline.
	raw := cfg
	raw.SustainedFraction = 0
	wantRaw := float64(uint64(1<<20)*SectorBytes) / (cfg.HBMBandwidthGBs * 1e9)
	gotRaw := raw.KernelTime(st).Seconds()
	if gotRaw < wantRaw || gotRaw > wantRaw+cfg.LaunchOverheadUs*1e-6*2 {
		t.Fatalf("roofline time %.3e, want ≈%.3e", gotRaw, wantRaw)
	}
	// Adding compute below the roofline must not change time.
	st2 := *st
	st2.ComputeOps = 1000
	if cfg.KernelTime(&st2) != cfg.KernelTime(st) {
		t.Fatal("sub-roofline compute changed kernel time")
	}
	// Dominating hotspot must raise it.
	st3 := *st
	st3.MaxAtomicPerAddr = 1 << 30
	if cfg.KernelTime(&st3) <= cfg.KernelTime(st) {
		t.Fatal("hotspot term ignored")
	}
}

func TestKernelTimeMonotonic(t *testing.T) {
	cfg := V100()
	small := &KernelStats{ComputeOps: 1 << 20, MemTransactions: 1 << 10}
	big := &KernelStats{ComputeOps: 1 << 30, MemTransactions: 1 << 10}
	if cfg.KernelTime(big) <= cfg.KernelTime(small) {
		t.Fatal("more compute should cost more")
	}
}

func TestTransferTime(t *testing.T) {
	cfg := V100()
	t0 := cfg.TransferTime(0)
	if t0 < time.Duration(cfg.LinkLatencyUs*1000)*time.Nanosecond {
		t.Fatal("zero-byte transfer should still pay latency")
	}
	oneGB := cfg.TransferTime(1 << 30)
	if oneGB.Seconds() < 1.0/cfg.LinkGBs*0.9 {
		t.Fatalf("1 GiB transfer %.4fs too fast", oneGB.Seconds())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative size should panic")
		}
	}()
	cfg.TransferTime(-1)
}

func TestAllocDisjointAligned(t *testing.T) {
	d := testDevice(t)
	a := d.Alloc(100)
	b := d.Alloc(300)
	c := d.Alloc(1)
	if a%256 != 0 || b%256 != 0 || c%256 != 0 {
		t.Fatal("allocations not 256-aligned")
	}
	if b < a+100 || c < b+300 {
		t.Fatal("allocations overlap")
	}
}

func TestStatsAdd(t *testing.T) {
	a := KernelStats{ComputeOps: 1, RawComputeOps: 1, MemTransactions: 2, MemBytesRequested: 3, AtomicOps: 4, MaxAtomicPerAddr: 5}
	b := KernelStats{ComputeOps: 10, RawComputeOps: 10, MemTransactions: 20, MemBytesRequested: 30, AtomicOps: 40, MaxAtomicPerAddr: 2}
	a.Add(b)
	if a.ComputeOps != 11 || a.MemTransactions != 22 || a.MemBytesRequested != 33 || a.AtomicOps != 44 {
		t.Fatalf("Add result %+v", a)
	}
	if a.MaxAtomicPerAddr != 5 {
		t.Fatalf("MaxAtomicPerAddr = %d, want max not sum", a.MaxAtomicPerAddr)
	}
}

func TestLaunchDeterministicStats(t *testing.T) {
	// Stats must not depend on warp scheduling order.
	run := func() KernelStats {
		d := testDevice(t)
		base := d.Alloc(1 << 20)
		st, err := d.Launch(LaunchSpec{Name: "det", Threads: 10_000}, func(tid int, ctx *Ctx) {
			ctx.Compute(tid % 7)
			ctx.Read(base+uint64(tid*8), 8)
			if tid%3 == 0 {
				ctx.Atomic(base, 4)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stats differ across runs:\n%+v\n%+v", a, b)
	}
}

func TestLaunchKernelEffectsReal(t *testing.T) {
	// Kernel bodies compute real results: parallel sum via atomics.
	d := testDevice(t)
	var sum atomic.Int64
	const n = 5000
	_, err := d.Launch(LaunchSpec{Name: "sum", Threads: n}, func(tid int, ctx *Ctx) {
		sum.Add(int64(tid))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != n*(n-1)/2 {
		t.Fatalf("sum = %d, want %d", got, n*(n-1)/2)
	}
}

func TestA100FasterThanV100(t *testing.T) {
	// Memory-bound kernels gain the HBM bandwidth ratio (~1.7×) on the
	// newer part; the what-if projection must reflect that ordering.
	st := &KernelStats{MemTransactions: 1 << 22}
	v, a := V100(), A100()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	tv, ta := v.KernelTime(st), a.KernelTime(st)
	if ta >= tv {
		t.Fatalf("A100 %v not faster than V100 %v on a memory-bound kernel", ta, tv)
	}
	ratio := tv.Seconds() / ta.Seconds()
	if ratio < 1.5 || ratio > 1.9 {
		t.Fatalf("bandwidth ratio %.2f, want ≈1.7", ratio)
	}
}
