// Package gpusim is a deterministic SIMT GPU simulator with a calibrated
// analytic cost model. It substitutes for the CUDA/V100 layer of the paper
// (see DESIGN.md, "Substitutions").
//
// # Execution model
//
// A kernel is launched over N logical threads grouped into warps of 32 and
// blocks of BlockSize. Thread bodies are ordinary Go functions; they compute
// real results (the simulation is functional, not just temporal). While
// running, each thread records its abstract work through its Ctx:
// arithmetic ops, global-memory reads/writes (with addresses), and atomic
// operations. The engine replays each warp's recorded accesses in lockstep
// and applies the CUDA coalescing rule — the i-th access of the 32 lanes is
// merged into the set of distinct 32-byte sectors it touches — yielding the
// memory-transaction count a real GPU would issue.
//
// # Time model
//
// Kernel time is a throughput roofline over four terms:
//
//	compute  = warpComputeOps / (NumSMs · ALULanesPerSM · Clock)
//	memory   = sectors · 32B / HBMBandwidth
//	atomic   = atomicOps / (AtomicOpsPerCycle · Clock)
//	hotspot  = MaxAtomicPerAddr · AtomicRoundTripCycles / Clock
//	kernel   = max(compute, memory, atomic, hotspot) + LaunchOverhead
//
// where warpComputeOps charges every warp the maximum lane cost times the
// warp width (lockstep divergence, §III-B.1's motivation for even work
// distribution), and hotspot is the serialization floor of atomics aimed at
// one address (e.g. one outgoing-buffer tail counter, or the table slot of
// the most frequent k-mer — the skew effect of §V-E).
package gpusim

import (
	"fmt"
	"time"
)

// SectorBytes is the memory transaction granularity (one DRAM sector).
const SectorBytes = 32

// Config describes the simulated device.
type Config struct {
	// Name identifies the device in reports.
	Name string
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// WarpSize is the SIMT width (32 on all NVIDIA parts).
	WarpSize int
	// ALULanesPerSM is the per-SM scalar op throughput per cycle.
	ALULanesPerSM int
	// ClockGHz is the SM clock in GHz.
	ClockGHz float64
	// HBMBandwidthGBs is the device memory bandwidth in GB/s.
	HBMBandwidthGBs float64
	// AtomicOpsPerCycle is the device-wide atomic throughput (ops/cycle)
	// when there is no address contention.
	AtomicOpsPerCycle float64
	// AtomicRoundTripCycles is the effective serialization cost of one
	// atomic to a contended address. On Volta, atomics resolve in the L2
	// atomic pipeline; back-to-back operations on one resident address
	// sustain roughly one per 8 cycles.
	AtomicRoundTripCycles float64
	// LaunchOverheadUs is the fixed kernel launch cost in microseconds.
	LaunchOverheadUs float64
	// MemBytes is the device memory capacity.
	MemBytes int64
	// LinkGBs is the host-device interconnect bandwidth (NVLink on
	// Summit: 25 GB/s per direction, §V-A).
	LinkGBs float64
	// LinkLatencyUs is the host-device transfer setup latency.
	LinkLatencyUs float64
	// SustainedFraction is the fraction of the roofline this kernel family
	// sustains end to end (0 or unset means 1.0). The roofline above omits
	// latency-bound scatter chains, occupancy limits and per-round launch
	// granularity; published GPU k-mer counting systems — Gerbil, MetaHipMer
	// kcount-gpu, and this paper's own measurement (≈167B k-mers parsed and
	// counted in ≈8 s of kernel time on 384 V100s, i.e. ≈9 ns per k-mer per
	// phase per GPU) — sustain a few percent of that roofline. With the
	// scatter-dominated memory term of these kernels (≈0.1-0.2 ns/k-mer at
	// the roofline), 0.01 calibrates the V100 preset to the measured
	// throughput.
	SustainedFraction float64
}

// V100 returns the configuration of one NVIDIA V100 as deployed in Summit
// nodes (§V-A: 80 SMs, 16 GB HBM2, NVLink 25 GB/s).
func V100() Config {
	return Config{
		Name:                  "V100-SXM2-16GB",
		NumSMs:                80,
		WarpSize:              32,
		ALULanesPerSM:         64,
		ClockGHz:              1.53,
		HBMBandwidthGBs:       900,
		AtomicOpsPerCycle:     32,
		AtomicRoundTripCycles: 8,
		LaunchOverheadUs:      5,
		MemBytes:              16 << 30,
		LinkGBs:               25,
		LinkLatencyUs:         10,
		SustainedFraction:     0.01,
	}
}

// A100 returns the configuration of one NVIDIA A100-SXM4-40GB — a newer
// part than the paper's V100s, provided for what-if projections of the
// same pipeline on a later machine (108 SMs, 1.41 GHz, 1555 GB/s HBM2e,
// 3rd-gen NVLink at 50 GB/s per direction). The sustained fraction carries
// over from the V100 calibration: the kernels' scatter character, not the
// part, determines it.
func A100() Config {
	return Config{
		Name:                  "A100-SXM4-40GB",
		NumSMs:                108,
		WarpSize:              32,
		ALULanesPerSM:         64,
		ClockGHz:              1.41,
		HBMBandwidthGBs:       1555,
		AtomicOpsPerCycle:     32,
		AtomicRoundTripCycles: 8,
		LaunchOverheadUs:      4,
		MemBytes:              40 << 30,
		LinkGBs:               50,
		LinkLatencyUs:         8,
		SustainedFraction:     0.01,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("gpusim: NumSMs=%d", c.NumSMs)
	case c.WarpSize <= 0:
		return fmt.Errorf("gpusim: WarpSize=%d", c.WarpSize)
	case c.ALULanesPerSM <= 0:
		return fmt.Errorf("gpusim: ALULanesPerSM=%d", c.ALULanesPerSM)
	case c.ClockGHz <= 0:
		return fmt.Errorf("gpusim: ClockGHz=%f", c.ClockGHz)
	case c.HBMBandwidthGBs <= 0:
		return fmt.Errorf("gpusim: HBMBandwidthGBs=%f", c.HBMBandwidthGBs)
	case c.AtomicOpsPerCycle <= 0:
		return fmt.Errorf("gpusim: AtomicOpsPerCycle=%f", c.AtomicOpsPerCycle)
	case c.SustainedFraction < 0 || c.SustainedFraction > 1:
		return fmt.Errorf("gpusim: SustainedFraction=%f outside [0,1]", c.SustainedFraction)
	}
	return nil
}

// sustained returns the effective roofline fraction.
func (c Config) sustained() float64 {
	if c.SustainedFraction == 0 {
		return 1
	}
	return c.SustainedFraction
}

// KernelStats aggregates the recorded work of one kernel launch.
type KernelStats struct {
	// Name is the kernel name from the LaunchSpec.
	Name string
	// Threads and Blocks describe the launch geometry.
	Threads, Blocks int
	// ComputeOps is the divergence-adjusted op count: Σ over warps of
	// (max lane ops) × WarpSize.
	ComputeOps uint64
	// RawComputeOps is Σ over lanes of their op counts (no divergence
	// charge); ComputeOps/RawComputeOps measures divergence waste.
	RawComputeOps uint64
	// MemTransactions is the number of 32-byte sectors moved after warp
	// coalescing.
	MemTransactions uint64
	// MemBytesRequested is the total bytes the lanes asked for (before
	// coalescing); Transactions×32/Requested measures access efficiency.
	MemBytesRequested uint64
	// AtomicOps is the total number of atomic operations.
	AtomicOps uint64
	// MaxAtomicPerAddr is the largest number of atomics aimed at a single
	// address. The launch engine tracks it exactly for the addresses seen.
	MaxAtomicPerAddr uint64
}

// Add accumulates other into s (for multi-launch pipelines).
func (s *KernelStats) Add(other KernelStats) {
	s.Threads += other.Threads
	s.Blocks += other.Blocks
	s.ComputeOps += other.ComputeOps
	s.RawComputeOps += other.RawComputeOps
	s.MemTransactions += other.MemTransactions
	s.MemBytesRequested += other.MemBytesRequested
	s.AtomicOps += other.AtomicOps
	if other.MaxAtomicPerAddr > s.MaxAtomicPerAddr {
		s.MaxAtomicPerAddr = other.MaxAtomicPerAddr
	}
}

// DivergenceWaste returns ComputeOps/RawComputeOps (≥1; 1 = perfectly
// converged warps).
func (s *KernelStats) DivergenceWaste() float64 {
	if s.RawComputeOps == 0 {
		return 1
	}
	return float64(s.ComputeOps) / float64(s.RawComputeOps)
}

// CoalescingEfficiency returns requested bytes / moved bytes (≤1 is not
// guaranteed: a fully coalesced 4-byte-per-lane warp access moves exactly
// what one sector holds, so the ratio can reach 4 when lanes share sectors).
func (s *KernelStats) CoalescingEfficiency() float64 {
	if s.MemTransactions == 0 {
		return 1
	}
	return float64(s.MemBytesRequested) / float64(s.MemTransactions*SectorBytes)
}

// KernelTime evaluates the roofline model for stats collected on device c.
func (c Config) KernelTime(s *KernelStats) time.Duration {
	clock := c.ClockGHz * 1e9
	compute := float64(s.ComputeOps) / (float64(c.NumSMs*c.ALULanesPerSM) * clock)
	memory := float64(s.MemTransactions*SectorBytes) / (c.HBMBandwidthGBs * 1e9)
	atomic := float64(s.AtomicOps) / (c.AtomicOpsPerCycle * clock)
	hotspot := float64(s.MaxAtomicPerAddr) * c.AtomicRoundTripCycles / clock
	t := compute
	if memory > t {
		t = memory
	}
	if atomic > t {
		t = atomic
	}
	if hotspot > t {
		t = hotspot
	}
	t /= c.sustained()
	t += c.LaunchOverheadUs * 1e-6
	return time.Duration(t * float64(time.Second))
}

// TransferTime models one host↔device copy of n bytes over the link.
func (c Config) TransferTime(n int64) time.Duration {
	if n < 0 {
		panic("gpusim: negative transfer size")
	}
	t := c.LinkLatencyUs*1e-6 + float64(n)/(c.LinkGBs*1e9)
	return time.Duration(t * float64(time.Second))
}
