package kcluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dedukt/internal/obs"
)

// healthzResponse is the router's GET /healthz body.
type healthzResponse struct {
	Status     string        `json:"status"` // "ready" or "degraded"
	K          int           `json:"k"`
	Canonical  bool          `json:"canonical"`
	ShardCount int           `json:"shard_count"`
	Rebalances uint64        `json:"rebalances"`
	Replicas   []ReplicaInfo `json:"replicas"`
}

// NewHandler exposes the router over HTTP with the same client surface as
// a single kserve replica — GET /kmer/{seq}, POST /batch — plus cluster
// introspection (/healthz, /replicas, /metrics). A client pointed at a
// replica can be repointed at the proxy unchanged; batch responses gain
// the degradation contract fields (complete, errors, per-key error).
func NewHandler(r *Router) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/kmer/", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		ctx, span := startProxySpan(r, req, "proxy_lookup")
		defer span.End()
		seq := strings.TrimPrefix(req.URL.Path, "/kmer/")
		res, err := r.Lookup(ctx, seq)
		if err != nil {
			span.SetAttr("error", err.Error())
			writeRouteErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("/batch", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		ctx, span := startProxySpan(r, req, "proxy_batch")
		defer span.End()
		var body struct {
			Kmers []string `json:"kmers"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBatchBody)).Decode(&body); err != nil {
			http.Error(w, fmt.Sprintf("bad batch body: %v", err), http.StatusBadRequest)
			return
		}
		span.SetAttr("batch_size", strconv.Itoa(len(body.Kmers)))
		resp, err := r.Batch(ctx, body.Kmers)
		if err != nil {
			span.SetAttr("error", err.Error())
			writeRouteErr(w, err)
			return
		}
		// Degraded batches still answer 200: the contract is per-key error
		// markers plus complete=false, not an all-or-nothing failure.
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		k, canonical, shards, _ := r.reg.Shape()
		resp := healthzResponse{
			Status:     "ready",
			K:          k,
			Canonical:  canonical,
			ShardCount: shards,
			Rebalances: r.reg.Rebalances(),
			Replicas:   r.reg.Snapshot(),
		}
		code := http.StatusOK
		if !r.reg.Ready() {
			resp.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, resp)
	})

	mux.HandleFunc("/replicas", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.reg.Snapshot())
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.reg.Obs().WritePrometheus(w)
	})

	if t := r.opts.Tracer; t != nil {
		mux.Handle("/debug/trace", t.DebugHandler())
	}

	return mux
}

// startProxySpan continues (or roots) a trace for one proxied request —
// the router-admission span of the end-to-end trace. A free no-op without
// a tracer; unsampled requests keep their context unwrapped.
func startProxySpan(r *Router, req *http.Request, name string) (context.Context, obs.ReqSpanHandle) {
	ctx := req.Context()
	t := r.opts.Tracer
	if t == nil {
		return ctx, obs.ReqSpanHandle{}
	}
	span := t.StartServer(req.Header, name, "http")
	if span.Sampled() {
		ctx = obs.ContextWithSpan(ctx, span.Context())
	}
	return ctx, span
}

func writeRouteErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotReady):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrShardUnavailable):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrBadQuery):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		// Everything else is an upstream failure (transport error or a
		// non-200 that survived retries).
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
