package kcluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dedukt/internal/dna"
	"dedukt/internal/kcount"
	"dedukt/internal/kernels"
	"dedukt/internal/kserve"
	"dedukt/internal/obs"
)

// sampleDB builds a deterministic database of n-ish distinct k-mers
// (mirrors the kserve test fixture).
func sampleDB(t testing.TB, k, n int, seed int64) *kcount.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tab := kcount.NewTable(n, kcount.Linear)
	mask := uint64(dna.KmerMask(k))
	for i := 0; i < n*3; i++ {
		tab.Inc(rng.Uint64() % (mask + 1))
	}
	return kcount.FromTable(tab, k, 0)
}

// testReplica is one real kserve process-equivalent: a Service behind an
// http.Server on a loopback port, holding one cluster shard of db.
type testReplica struct {
	t      *testing.T
	db     *kcount.Database
	idx    int
	of     int
	slow   time.Duration
	tracer *obs.Tracer

	svc  *kserve.Service
	srv  *http.Server
	addr string
}

// start brings the replica up; addr "" picks a free port, a previous addr
// restarts it in place (ring-rebalance tests).
func (r *testReplica) start(addr string) {
	r.t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	sub, err := kserve.FilterShard(r.db, r.idx, r.of)
	if err != nil {
		r.t.Fatal(err)
	}
	svc, err := kserve.New(sub, kserve.Options{
		Shards:     2,
		MaxWait:    -1,
		ReplicaID:  fmt.Sprintf("rep-%d-%s", r.idx, addr),
		ShardIndex: r.idx,
		ShardCount: r.of,
		Slow:       r.slow,
		Tracer:     r.tracer,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			r.t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond) // port may linger after a restart
	}
	r.svc = svc
	r.addr = ln.Addr().String()
	r.srv = &http.Server{Handler: kserve.NewHandler(svc)}
	go r.srv.Serve(ln)
	r.t.Cleanup(r.stop)
}

func (r *testReplica) stop() {
	if r.srv != nil {
		r.srv.Close()
		r.srv = nil
		r.svc.Close()
	}
}

// startCluster starts replicasPer replicas for each of shardCount shards.
// reps[shard*replicasPer+j] is replica j of that shard.
func startCluster(t *testing.T, db *kcount.Database, shardCount, replicasPer int) ([]*testReplica, []string) {
	t.Helper()
	var reps []*testReplica
	var seeds []string
	for s := 0; s < shardCount; s++ {
		for j := 0; j < replicasPer; j++ {
			r := &testReplica{t: t, db: db, idx: s, of: shardCount}
			r.start("")
			reps = append(reps, r)
			seeds = append(seeds, r.addr)
		}
	}
	return reps, seeds
}

// newTestRegistry builds a registry probed only via ProbeNow (the
// background interval is an hour), so tests control state transitions.
func newTestRegistry(t *testing.T, seeds []string) *Registry {
	t.Helper()
	reg, err := NewRegistry(RegistryOptions{
		Seeds:         seeds,
		ProbeInterval: time.Hour,
		ProbeTimeout:  2 * time.Second,
		FailThreshold: 2,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	reg.ProbeNow()
	return reg
}

func seqOf(key uint64, k int) string { return dna.Kmer(key).String(&dna.Random, k) }

func TestRouterRoutesAndMatches(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 2000, 1)
	_, seeds := startCluster(t, db, 2, 2)
	reg := newTestRegistry(t, seeds)
	if !reg.Ready() {
		t.Fatalf("cluster not ready after probe: %+v", reg.Snapshot())
	}
	gotK, canonical, shards, ready := reg.Shape()
	if !ready || gotK != k || canonical || shards != 2 {
		t.Fatalf("Shape() = %d %v %d %v", gotK, canonical, shards, ready)
	}
	rt := NewRouter(reg, RouterOptions{})
	ctx := context.Background()

	for _, e := range db.Entries[:200] {
		res, err := rt.Lookup(ctx, seqOf(e.Key, k))
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != e.Count || !res.Present {
			t.Fatalf("Lookup(%#x) = %+v, want count %d", e.Key, res, e.Count)
		}
	}
	// Absent key answers present=false, not an error.
	var absent uint64
	for db.Get(absent) != 0 {
		absent++
	}
	if res, err := rt.Lookup(ctx, seqOf(absent, k)); err != nil || res.Present {
		t.Fatalf("absent lookup = %+v, %v", res, err)
	}
	// Malformed k-mer is the client's fault.
	if _, err := rt.Lookup(ctx, "NOPE"); err == nil {
		t.Fatal("bad k-mer accepted")
	}

	// Batch crosses both shards and matches the database.
	kmers := make([]string, 0, 300)
	for _, e := range db.Entries[:300] {
		kmers = append(kmers, seqOf(e.Key, k))
	}
	resp, err := rt.Batch(ctx, kmers)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Complete || resp.Errors != 0 {
		t.Fatalf("batch degraded: complete=%v errors=%d", resp.Complete, resp.Errors)
	}
	for i, e := range db.Entries[:300] {
		if resp.Results[i].Count != e.Count {
			t.Fatalf("batch[%d] = %+v, want count %d", i, resp.Results[i], e.Count)
		}
	}
}

func TestHedgeFiresAndWins(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1500, 2)
	fast := &testReplica{t: t, db: db, idx: 0, of: 1}
	fast.start("")
	slow := &testReplica{t: t, db: db, idx: 0, of: 1, slow: 60 * time.Millisecond}
	slow.start("")
	reg := newTestRegistry(t, []string{fast.addr, slow.addr})
	rt := NewRouter(reg, RouterOptions{HedgeMin: time.Millisecond, HedgeMax: 5 * time.Millisecond})
	ctx := context.Background()

	start := time.Now()
	for _, e := range db.Entries[:80] {
		res, err := rt.Lookup(ctx, seqOf(e.Key, k))
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != e.Count {
			t.Fatalf("Lookup(%#x) = %d, want %d", e.Key, res.Count, e.Count)
		}
	}
	elapsed := time.Since(start)
	if rt.met.hedges.Value() == 0 {
		t.Fatal("no hedges fired against a 60ms straggler with a 5ms hedge deadline")
	}
	if rt.met.hedgeWins.Value() == 0 {
		t.Fatal("no hedge ever won the race")
	}
	// ~half the keys have the straggler as primary; without hedging those
	// 40 lookups alone would take ≥ 2.4s.
	if elapsed > 2*time.Second {
		t.Fatalf("80 hedged lookups took %v", elapsed)
	}
}

func TestReplicaFailureRetriesAndGoesDown(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1500, 3)
	reps, seeds := startCluster(t, db, 1, 2)
	reg := newTestRegistry(t, seeds)
	rt := NewRouter(reg, RouterOptions{})
	ctx := context.Background()

	before := reg.Rebalances()
	reps[1].stop() // hard kill, no drain
	for _, e := range db.Entries[:100] {
		res, err := rt.Lookup(ctx, seqOf(e.Key, k))
		if err != nil {
			t.Fatalf("lookup with a dead replica: %v", err)
		}
		if res.Count != e.Count {
			t.Fatalf("Lookup(%#x) = %d, want %d", e.Key, res.Count, e.Count)
		}
	}
	if rt.met.retries.Value() == 0 {
		t.Fatal("no retries recorded while a replica was dead")
	}
	// Request failures alone (no probe tick) must take the replica down.
	if got := findReplica(reg, reps[1].addr).State(); got != StateDown {
		t.Fatalf("dead replica state = %v, want down", got)
	}
	if reg.Rebalances() == before {
		t.Fatal("ring not rebalanced after replica death")
	}
	// Down replica is no longer a candidate.
	for _, e := range db.Entries[:50] {
		for _, c := range reg.Candidates(0, e.Key) {
			if c.Addr == reps[1].addr {
				t.Fatal("down replica still on the ring")
			}
		}
	}
}

func TestAllReplicasDownPartialBatch(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1500, 4)
	reps, seeds := startCluster(t, db, 2, 1)
	reg := newTestRegistry(t, seeds)
	rt := NewRouter(reg, RouterOptions{})
	ctx := context.Background()

	reps[1].stop() // shard 1 loses its only replica
	reg.ProbeNow()
	reg.ProbeNow() // second strike crosses FailThreshold
	if reg.Ready() {
		t.Fatal("registry still ready with shard 1 empty")
	}

	var kmers []string
	var wantErr []bool
	for _, e := range db.Entries[:200] {
		kmers = append(kmers, seqOf(e.Key, k))
		wantErr = append(wantErr, kernels.DestOf(e.Key, 2) == 1)
	}
	resp, err := rt.Batch(ctx, kmers)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Complete {
		t.Fatal("batch claims complete with a shard down")
	}
	if resp.Errors == 0 || resp.Errors == len(kmers) {
		t.Fatalf("errors = %d of %d, want partial", resp.Errors, len(kmers))
	}
	for i := range kmers {
		if wantErr[i] && resp.Results[i].Error == "" {
			t.Fatalf("shard-1 key %q answered without its shard", kmers[i])
		}
		if !wantErr[i] && resp.Results[i].Error != "" {
			t.Fatalf("shard-0 key %q degraded: %s", kmers[i], resp.Results[i].Error)
		}
	}
	if rt.met.partialBatches.Value() == 0 {
		t.Fatal("partial batch not counted")
	}
}

func TestRingRebalanceOnReturn(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1000, 5)
	reps, seeds := startCluster(t, db, 1, 2)
	reg := newTestRegistry(t, seeds)

	addr := reps[1].addr
	reps[1].stop()
	reg.ProbeNow()
	reg.ProbeNow()
	if got := findReplica(reg, addr).State(); got != StateDown {
		t.Fatalf("state after kill = %v, want down", got)
	}
	afterDown := reg.Rebalances()

	// Same shard, same address: the replica comes back.
	back := &testReplica{t: t, db: db, idx: 0, of: 1}
	back.start(addr)
	reg.ProbeNow()
	if got := findReplica(reg, addr).State(); got != StateUp {
		t.Fatalf("state after return = %v, want up", got)
	}
	if reg.Rebalances() == afterDown {
		t.Fatal("ring not rebalanced when the replica returned")
	}
	found := false
	for _, c := range reg.Candidates(0, db.Entries[0].Key) {
		if c.Addr == addr {
			found = true
		}
	}
	if !found {
		t.Fatal("returned replica not back on the ring")
	}
}

func TestDrainShiftsTraffic(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1000, 6)
	reps, seeds := startCluster(t, db, 1, 2)
	reg := newTestRegistry(t, seeds)
	rt := NewRouter(reg, RouterOptions{})
	ctx := context.Background()

	reps[1].svc.BeginDrain()
	reg.ProbeNow()
	drained := findReplica(reg, reps[1].addr)
	if got := drained.State(); got != StateDraining {
		t.Fatalf("state after BeginDrain = %v, want draining", got)
	}
	// The draining replica is still routable — but never the primary.
	for _, e := range db.Entries[:100] {
		cands := reg.Candidates(0, e.Key)
		if len(cands) != 2 {
			t.Fatalf("want both replicas routable, got %d", len(cands))
		}
		if cands[0] == drained {
			t.Fatal("draining replica still primary")
		}
		res, err := rt.Lookup(ctx, seqOf(e.Key, k))
		if err != nil || res.Count != e.Count {
			t.Fatalf("lookup during drain = %+v, %v", res, err)
		}
	}
}

func TestLoadgenAgainstCluster(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 2000, 7)
	_, seeds := startCluster(t, db, 2, 2)
	reg := newTestRegistry(t, seeds)
	rt := NewRouter(reg, RouterOptions{})
	srv := &http.Server{Handler: NewHandler(rt)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	sum, err := RunLoad(context.Background(), LoadOptions{
		Target:      "http://" + ln.Addr().String(),
		Requests:    150,
		Warmup:      20,
		Batch:       16,
		Concurrency: 4,
		Keys:        4096,
		Dist:        "zipf",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests != 150 || sum.Lookups != 150*16 {
		t.Fatalf("summary counts = %+v", sum)
	}
	if sum.Errors != 0 || sum.KeyErrors != 0 {
		t.Fatalf("load run saw errors: %+v", sum)
	}
	if sum.Latency.P50 <= 0 || sum.Latency.P999 < sum.Latency.P50 {
		t.Fatalf("implausible latency digest: %+v", sum.Latency)
	}

	// Open-loop mode measures from the scheduled arrival.
	open, err := RunLoad(context.Background(), LoadOptions{
		Target:      "http://" + ln.Addr().String(),
		Requests:    100,
		Batch:       1,
		Concurrency: 4,
		QPS:         2000,
		Keys:        1024,
		Dist:        "uniform",
	})
	if err != nil {
		t.Fatal(err)
	}
	if open.Errors != 0 {
		t.Fatalf("open-loop run saw errors: %+v", open)
	}
	if open.WallSec < 0.04 {
		t.Fatalf("open loop finished in %.3fs, faster than the offered rate allows", open.WallSec)
	}
}

func findReplica(reg *Registry, addr string) *Replica {
	for _, rep := range reg.replicas {
		if rep.Addr == addr {
			return rep
		}
	}
	return nil
}

func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("5ms:p99")
	if err != nil {
		t.Fatal(err)
	}
	if slo.Target != 5*time.Millisecond || slo.Quantile != 0.99 {
		t.Fatalf("ParseSLO(5ms:p99) = %+v", slo)
	}
	if got := slo.String(); got != "5ms:p99" {
		t.Fatalf("String() = %q, want 5ms:p99", got)
	}
	if slo, err = ParseSLO("250us:p99.9"); err != nil || math.Abs(slo.Quantile-0.999) > 1e-9 {
		t.Fatalf("ParseSLO(250us:p99.9) = %+v, %v", slo, err)
	}
	for _, bad := range []string{"", "5ms", "p99", "5ms:99", "5ms:p0", "5ms:p100", "-5ms:p99", "x:p99", "5ms:px"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Fatalf("ParseSLO(%q) accepted", bad)
		}
	}
}

func TestEvalSLO(t *testing.T) {
	slo := SLO{Target: time.Millisecond, Quantile: 0.9}
	// 100 latencies (µs): 95 fast, 5 over the 1000µs target → 5% violations
	// against a 10% budget: met, burn rate 0.5.
	lat := make([]float64, 100)
	for i := range lat {
		lat[i] = 100
	}
	for i := 0; i < 5; i++ {
		lat[i] = 5000
	}
	s := evalSLO(slo, lat)
	if !s.Met || s.Violations != 5 || s.ViolationRate != 0.05 {
		t.Fatalf("evalSLO = %+v, want met with 5 violations", s)
	}
	if math.Abs(s.ErrorBudget-0.1) > 1e-9 || math.Abs(s.BudgetBurnRate-0.5) > 1e-9 {
		t.Fatalf("budget accounting = %+v, want budget 0.1 burn 0.5", s)
	}
	// 20 violations blow the 10% budget: burn 2, not met.
	for i := 0; i < 20; i++ {
		lat[i] = 5000
	}
	if s := evalSLO(slo, lat); s.Met || math.Abs(s.BudgetBurnRate-2) > 1e-9 {
		t.Fatalf("evalSLO over budget = %+v, want burn 2, not met", s)
	}
	if s := evalSLO(slo, nil); !s.Met || s.Violations != 0 {
		t.Fatalf("evalSLO(empty) = %+v, want trivially met", s)
	}
}

// TestEndToEndTracing runs the full serving path — loadgen roots traces,
// the proxy continues them and spans every upstream attempt, both replicas
// record server and shard spans — against a deliberate straggler, then
// checks one trace ID stitches across all four processes and that a hedged
// attempt won at least one race. The same invariants cluster_smoke.sh
// asserts on the joined Chrome trace, here without processes.
func TestEndToEndTracing(t *testing.T) {
	const k = 17
	db := sampleDB(t, k, 1500, 7)
	fastTracer := obs.NewTracer("rep-fast", 1, 0)
	slowTracer := obs.NewTracer("rep-slow", 1, 0)
	fast := &testReplica{t: t, db: db, idx: 0, of: 1, tracer: fastTracer}
	fast.start("")
	slow := &testReplica{t: t, db: db, idx: 0, of: 1, slow: 50 * time.Millisecond, tracer: slowTracer}
	slow.start("")
	reg := newTestRegistry(t, []string{fast.addr, slow.addr})
	proxyTracer := obs.NewTracer("kproxy", 1, 0)
	rt := NewRouter(reg, RouterOptions{HedgeMin: time.Millisecond, HedgeMax: 5 * time.Millisecond, Tracer: proxyTracer})
	srv := httptest.NewServer(NewHandler(rt))
	defer srv.Close()

	loadTracer := obs.NewTracer("kload", 1, 0)
	sum, err := RunLoad(context.Background(), LoadOptions{
		Target:      srv.URL,
		Requests:    60,
		Concurrency: 4,
		Keys:        256,
		K:           k,
		Tracer:      loadTracer,
		SLO:         &SLO{Target: 2 * time.Second, Quantile: 0.99},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 || sum.KeyErrors != 0 {
		t.Fatalf("load errors: %+v", sum)
	}
	if sum.SLO == nil || !sum.SLO.Met {
		t.Fatalf("generous 2s:p99 SLO not met: %+v", sum.SLO)
	}
	if sum.Build.GoVersion == "" {
		t.Fatal("summary missing build info")
	}

	dumps := []obs.TraceDump{loadTracer.Dump(), proxyTracer.Dump(), fastTracer.Dump(), slowTracer.Dump()}
	// Index: trace ID → set of processes that recorded a span on it.
	procs := make(map[string]map[string]bool)
	hedgedWinner := false
	for _, d := range dumps {
		for _, sp := range d.Spans {
			m := procs[sp.Trace]
			if m == nil {
				m = make(map[string]bool)
				procs[sp.Trace] = m
			}
			m[d.Process] = true
			if sp.Attrs["hedged"] == "true" && sp.Attrs["outcome"] == "winner" {
				hedgedWinner = true
			}
		}
	}
	if !hedgedWinner {
		t.Fatal("no upstream span marked hedged winner against a 50ms straggler")
	}
	full := 0
	for _, m := range procs {
		if m["kload"] && m["kproxy"] && m["rep-fast"] {
			full++
		}
	}
	if full == 0 {
		t.Fatalf("no trace spans kload+kproxy+replica; traces: %v", procs)
	}

	// The joined Chrome trace must load: every span lands under a process
	// group with metadata events.
	var joined bytes.Buffer
	if err := obs.JoinTraces(&joined, dumps); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(joined.Bytes(), &tf); err != nil {
		t.Fatalf("joined trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	want := 0
	for _, d := range dumps {
		want += len(d.Spans)
	}
	if spans != want {
		t.Fatalf("joined trace has %d X events, want %d (one per span)", spans, want)
	}
}
