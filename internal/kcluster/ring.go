package kcluster

import (
	"sort"

	"dedukt/internal/hash"
)

// Ring seeds keep vnode placement and key affinity in distinct hash
// families, and both distinct from the owner-rank hash (kernels.DestSeed)
// that picks the shard — otherwise every key would land on the same arc.
const (
	ringVnodeSeed    = 0x766e6f6465 // "vnode"
	ringAffinitySeed = 0x61666669   // "affi"
)

// ring is the consistent-hash ring of one cluster shard's replicas. Each
// replica contributes vnodes points (hashes of addr × vnode index); a
// key's candidate order is the clockwise walk from the key's affinity
// hash, deduplicated to distinct replicas. Properties the router relies
// on:
//
//   - Stickiness: a key's primary is stable while membership is stable,
//     so each replica's hot-k-mer LRU concentrates on its arc.
//   - Minimal movement: removing a replica remaps only the keys whose
//     walk hit its points first; other keys keep their primary.
//   - Spread: vnodes (default 64 per replica) keep arc sizes near-even.
//
// Rings are immutable snapshots; the registry rebuilds them (a "rebalance
// event") whenever membership or routability changes.
type ring struct {
	points []ringPoint // sorted ascending by h
	// members are the distinct replicas on the ring, in point order of
	// first appearance (used when the walk must yield everyone).
	members []*Replica
}

type ringPoint struct {
	h   uint64
	rep *Replica
}

// pointHash places vnode v of the replica at addr on the ring.
func pointHash(addr string, v int) uint64 {
	return hash.Mix64Seeded(hash.Sum64([]byte(addr), ringVnodeSeed)^uint64(v)*0x9e3779b97f4a7c15, ringVnodeSeed)
}

// affinityOf places a key on the ring.
func affinityOf(key uint64) uint64 {
	return hash.Mix64Seeded(key, ringAffinitySeed)
}

// buildRing constructs the ring over members (each contributing vnodes
// points). An empty member set yields an empty ring (shard unavailable).
func buildRing(members []*Replica, vnodes int) *ring {
	r := &ring{}
	if len(members) == 0 {
		return r
	}
	r.points = make([]ringPoint, 0, len(members)*vnodes)
	for _, m := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{h: pointHash(m.Addr, v), rep: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
	seen := make(map[*Replica]bool, len(members))
	for _, p := range r.points {
		if !seen[p.rep] {
			seen[p.rep] = true
			r.members = append(r.members, p.rep)
		}
	}
	return r
}

// candidates returns every distinct replica on the ring in walk order from
// the key's affinity hash, with currently-draining replicas moved to the
// back (routable as a last resort only). The first entry is the key's
// sticky primary; the second is the hedge/retry target.
func (r *ring) candidates(key uint64) []*Replica {
	if len(r.points) == 0 {
		return nil
	}
	h := affinityOf(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if start == len(r.points) {
		start = 0
	}
	out := make([]*Replica, 0, len(r.members))
	var draining []*Replica
	seen := make(map[*Replica]bool, len(r.members))
	for i := 0; i < len(r.points) && len(seen) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.rep] {
			continue
		}
		seen[p.rep] = true
		if p.rep.State() == StateDraining {
			draining = append(draining, p.rep)
		} else {
			out = append(out, p.rep)
		}
	}
	return append(out, draining...)
}
