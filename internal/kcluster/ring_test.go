package kcluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func testReplicas(n int) []*Replica {
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = &Replica{Addr: fmt.Sprintf("10.0.0.%d:8080", i+1)}
		reps[i].state = StateUp
	}
	return reps
}

func TestRingCandidatesDistinctAndSticky(t *testing.T) {
	reps := testReplicas(4)
	r := buildRing(reps, 64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		key := rng.Uint64()
		cands := r.candidates(key)
		if len(cands) != len(reps) {
			t.Fatalf("key %#x: %d candidates, want %d", key, len(cands), len(reps))
		}
		seen := map[*Replica]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("key %#x: duplicate candidate %s", key, c.Addr)
			}
			seen[c] = true
		}
		again := r.candidates(key)
		for j := range cands {
			if cands[j] != again[j] {
				t.Fatalf("key %#x: candidate order not stable", key)
			}
		}
	}
}

func TestRingSpread(t *testing.T) {
	reps := testReplicas(4)
	r := buildRing(reps, 64)
	counts := map[*Replica]int{}
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.candidates(rng.Uint64())[0]]++
	}
	for _, rep := range reps {
		frac := float64(counts[rep]) / n
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("replica %s owns %.1f%% of keys, want near 25%%", rep.Addr, 100*frac)
		}
	}
}

func TestRingMinimalMovement(t *testing.T) {
	reps := testReplicas(4)
	full := buildRing(reps, 64)
	reduced := buildRing(reps[:3], 64) // reps[3] removed
	rng := rand.New(rand.NewSource(13))
	const n = 10000
	moved, ownedByLost := 0, 0
	for i := 0; i < n; i++ {
		key := rng.Uint64()
		before := full.candidates(key)[0]
		after := reduced.candidates(key)[0]
		if before == reps[3] {
			ownedByLost++
			continue // these must move; their new home is unconstrained
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d/%d keys not owned by the removed replica changed primary", moved, n)
	}
	if frac := float64(ownedByLost) / n; frac < 0.10 || frac > 0.45 {
		t.Errorf("removed replica owned %.1f%% of keys, want near 25%%", 100*frac)
	}
}

func TestRingDrainingSortsLast(t *testing.T) {
	reps := testReplicas(3)
	r := buildRing(reps, 64)
	reps[1].mu.Lock()
	reps[1].state = StateDraining
	reps[1].mu.Unlock()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		cands := r.candidates(rng.Uint64())
		if got := cands[len(cands)-1]; got != reps[1] {
			t.Fatalf("draining replica sorted at %v, want last", got.Addr)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	if got := buildRing(nil, 64).candidates(42); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
}

func TestReplicaEWMA(t *testing.T) {
	rep := &Replica{Addr: "x"}
	rep.observe(10 * time.Millisecond)
	if got := rep.EWMALatencyMs(); got != 10 {
		t.Fatalf("first sample = %v, want 10", got)
	}
	rep.observe(20 * time.Millisecond)
	want := (1-ewmaAlpha)*10 + ewmaAlpha*20
	if got := rep.EWMALatencyMs(); got != want {
		t.Fatalf("ewma = %v, want %v", got, want)
	}
}

func TestClampAndValidate(t *testing.T) {
	if got := clampDuration(5, 10, 20); got != 10 {
		t.Fatalf("clamp below = %v", got)
	}
	if got := clampDuration(25, 10, 20); got != 20 {
		t.Fatalf("clamp above = %v", got)
	}
	if got := clampDuration(15, 10, 20); got != 15 {
		t.Fatalf("clamp inside = %v", got)
	}
	if err := validateShard(0, 2); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		if validateShard(bad[0], bad[1]) == nil {
			t.Errorf("validateShard(%d, %d) accepted", bad[0], bad[1])
		}
	}
	for s, want := range map[State]bool{StateUnknown: false, StateUp: true, StateDraining: true, StateDown: false} {
		if s.Routable() != want {
			t.Errorf("%v.Routable() = %v", s, !want)
		}
	}
}
