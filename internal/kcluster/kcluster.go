// Package kcluster is the replicated serving tier over internal/kserve: a
// replica registry (static seed list, periodic /healthz probing, EWMA
// latency and inflight tracking), a consistent-hash ring per cluster shard,
// and a front router that fans point and batch lookups out per shard,
// hedges slow requests, retries failed ones, and degrades to per-key error
// markers when a shard loses every replica.
//
// The cluster applies the paper's owner-hash partitioning to the query
// path: every key belongs to cluster shard kernels.DestOf(key, S) — the
// same hash that assigned it to a counting rank — and each shard is held
// by N kserve replicas started with `-shard s/S` over the same database
// (kserve.FilterShard). The router never stores spectrum data; it only
// knows the hash, the ring, and the replicas' health:
//
//   - Registry probes every replica's /healthz on a fixed interval,
//     classifying it Up (200), Draining (503 with an orderly "draining"
//     body — kserve's BeginDrain handoff), or Down (consecutive hard
//     failures). Identity (replica id, shard, k, canonical) is learned
//     from the probe, so the seed list is just addresses.
//   - Each shard's replicas are placed on a consistent-hash ring with
//     virtual nodes. A key's candidate order is the ring walk from the
//     key's hash: the primary is sticky (one replica's LRU gets hot for
//     that key), the successor is the hedge/retry target, and replica
//     loss only remaps the lost arc. Ring rebuilds are counted as
//     rebalance events.
//   - Router sends each lookup (or per-shard sub-batch) to the primary,
//     arms a hedge timer at a latency quantile (obs.Histogram.Quantile of
//     observed upstream latencies, clamped to [HedgeMin, HedgeMax]), and
//     fires the same idempotent request at the next candidate if the
//     timer expires first — first success wins, losers are canceled. Hard
//     failures skip the timer and retry immediately, so killing a replica
//     mid-run costs latency, not errors. Draining replicas sort last in
//     the candidate order: routable as a last resort, avoided otherwise.
//
// cmd/kproxy wraps Router in a binary; cmd/kload (over RunLoad in this
// package) is the open-loop load harness used to prove the tier under a
// million requests, replica kills, and injected stragglers.
package kcluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State classifies a replica's routability, as learned from /healthz
// probing and request outcomes.
type State int32

const (
	// StateUnknown is a seed that has never answered a probe; not routable.
	StateUnknown State = iota
	// StateUp is a healthy, routable replica.
	StateUp
	// StateDraining is an orderly handoff: the replica answered 503 with a
	// "draining" body (kserve.BeginDrain). It still serves lookups, so it
	// stays routable — but only as a last resort.
	StateDraining
	// StateDown is a crashed or unreachable replica (consecutive probe
	// failures past the threshold); not routable.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// Routable reports whether the router may send requests to a replica in
// this state.
func (s State) Routable() bool { return s == StateUp || s == StateDraining }

// Exported failure modes.
var (
	// ErrNotReady reports that the registry has not yet learned the cluster
	// shape (no replica has answered a probe).
	ErrNotReady = errors.New("kcluster: cluster not ready")
	// ErrShardUnavailable reports that every replica of a key's shard is
	// down — the degraded mode batch responses mark per key.
	ErrShardUnavailable = errors.New("kcluster: shard unavailable")
	// ErrBadQuery wraps client mistakes (malformed k-mer, oversized batch)
	// so the HTTP layer can answer 400 instead of 502.
	ErrBadQuery = errors.New("kcluster: bad query")
)

// ewmaAlpha is the weight of the newest latency sample in a replica's
// moving average.
const ewmaAlpha = 0.2

// Replica is one kserve process in the cluster. Addr is fixed at seed
// time; everything else is learned from probing and request outcomes.
type Replica struct {
	// Addr is the replica's host:port.
	Addr string

	mu         sync.Mutex
	id         string
	shard      int
	shardCount int
	state      State
	fails      int     // consecutive hard failures (probe or request)
	ewmaMs     float64 // moving average of successful request/probe latency
	lastErr    string

	inflight atomic.Int64 // requests currently proxied to this replica
}

// State returns the replica's current routability.
func (r *Replica) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Inflight returns how many proxied requests are outstanding.
func (r *Replica) Inflight() int64 { return r.inflight.Load() }

// ID returns the replica's self-reported ID ("" until the first probe
// learns it from /healthz).
func (r *Replica) ID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.id
}

// EWMALatencyMs returns the replica's moving-average latency in
// milliseconds (0 until the first successful probe or request).
func (r *Replica) EWMALatencyMs() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ewmaMs
}

// observe folds one successful-interaction latency into the average.
func (r *Replica) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	if r.ewmaMs == 0 {
		r.ewmaMs = ms
	} else {
		r.ewmaMs = (1-ewmaAlpha)*r.ewmaMs + ewmaAlpha*ms
	}
	r.mu.Unlock()
}

// ReplicaInfo is a point-in-time snapshot of one replica, shaped for the
// router's /replicas and /healthz JSON.
type ReplicaInfo struct {
	Addr          string  `json:"addr"`
	ID            string  `json:"id,omitempty"`
	Shard         int     `json:"shard"`
	ShardCount    int     `json:"shard_count"`
	State         string  `json:"state"`
	EWMALatencyMs float64 `json:"ewma_latency_ms"`
	Inflight      int64   `json:"inflight"`
	LastError     string  `json:"last_error,omitempty"`
}

func (r *Replica) info() ReplicaInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaInfo{
		Addr:          r.Addr,
		ID:            r.id,
		Shard:         r.shard,
		ShardCount:    r.shardCount,
		State:         r.state.String(),
		EWMALatencyMs: r.ewmaMs,
		Inflight:      r.inflight.Load(),
		LastError:     r.lastErr,
	}
}

// clampDuration bounds d to [lo, hi].
func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// validateShard checks a probed (shard, shardCount) pair.
func validateShard(shard, shardCount int) error {
	if shardCount <= 0 || shard < 0 || shard >= shardCount {
		return fmt.Errorf("kcluster: replica reports shard %d/%d", shard, shardCount)
	}
	return nil
}
