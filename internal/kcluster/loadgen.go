package kcluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dedukt/internal/obs"
)

// LoadOptions configures one load run against a kproxy (or a bare kserve
// replica — both speak GET /kmer and POST /batch).
type LoadOptions struct {
	// Target is the base URL, e.g. "http://127.0.0.1:9090".
	Target string
	// Requests is the number of measured HTTP requests; Warmup requests
	// run first, untimed, to fill caches and the hedge latency histogram.
	Requests int
	Warmup   int
	// Batch is the lookups per request: 1 sends GET /kmer/{seq}, larger
	// sends POST /batch (default 1).
	Batch int
	// Concurrency is the worker count (default 8).
	Concurrency int
	// QPS, when > 0, switches to open-loop arrival: lookups are assigned
	// scheduled send times at the offered rate, and latency is measured
	// from the *scheduled* time, so a stalled server accrues the queueing
	// delay it caused (no coordinated omission). 0 runs closed-loop.
	QPS float64
	// Keys is the sampled key-population size (default 65536); Dist picks
	// keys "zipf" (default, ZipfS skew, default 1.1) or "uniform".
	Keys  int
	Dist  string
	ZipfS float64
	// K is the k-mer length; 0 learns it from GET {Target}/healthz.
	K int
	// Seed makes the key population and arrival mix reproducible
	// (default 1).
	Seed int64
	// Client overrides the HTTP client.
	Client *http.Client
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, mints a root span per measured request (head
	// sampling per the tracer's 1-in-N policy) and forwards its traceparent
	// so the proxy and replicas join the trace. Warmup is never traced.
	Tracer *obs.Tracer
	// SLO, when non-nil, adds service-level-objective accounting over the
	// measured request latencies to the summary.
	SLO *SLO
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Requests <= 0 {
		o.Requests = 1000
	}
	if o.Batch <= 0 {
		o.Batch = 1
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Keys <= 0 {
		o.Keys = 65536
	}
	if o.Dist == "" {
		o.Dist = "zipf"
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Client == nil {
		o.Client = &http.Client{
			Timeout:   10 * time.Second,
			Transport: &http.Transport{MaxIdleConnsPerHost: 256, MaxIdleConns: 1024},
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// LatencySummary is a percentile digest in microseconds.
type LatencySummary struct {
	P50  float64 `json:"p50_us"`
	P90  float64 `json:"p90_us"`
	P99  float64 `json:"p99_us"`
	P999 float64 `json:"p999_us"`
	Mean float64 `json:"mean_us"`
	Max  float64 `json:"max_us"`
}

// LoadSummary is one load run's result, shaped for JSON output
// (cmd/kload emits it verbatim; scripts/cluster_smoke.sh asserts on it).
type LoadSummary struct {
	Target      string         `json:"target"`
	Dist        string         `json:"dist"`
	Batch       int            `json:"batch"`
	Concurrency int            `json:"concurrency"`
	Requests    uint64         `json:"requests"`
	Lookups     uint64         `json:"lookups"`
	Errors      uint64         `json:"errors"`
	KeyErrors   uint64         `json:"key_errors"`
	WallSec     float64        `json:"wall_sec"`
	QPSOffered  float64        `json:"qps_offered"` // lookups/sec; 0 = closed loop
	QPSAchieved float64        `json:"qps_achieved"`
	Latency     LatencySummary `json:"latency"`
	SLO         *SLOSummary    `json:"slo,omitempty"`
	Build       obs.BuildInfo  `json:"build"`
}

// SLO is a latency service-level objective: at most 1−Quantile of measured
// requests may exceed Target (e.g. "5ms:p99" — 1% of requests may be
// slower than 5ms).
type SLO struct {
	Target   time.Duration
	Quantile float64 // 0 < Quantile < 1, e.g. 0.99 for p99
}

// String renders the objective back in ParseSLO's notation.
func (s SLO) String() string {
	return fmt.Sprintf("%s:p%s", s.Target, strconv.FormatFloat(s.Quantile*100, 'f', -1, 64))
}

// ParseSLO parses "<duration>:p<percentile>" — "5ms:p99", "250us:p99.9",
// "1s:p50" — into an SLO.
func ParseSLO(s string) (SLO, error) {
	dur, pct, ok := strings.Cut(s, ":")
	if !ok || !strings.HasPrefix(pct, "p") {
		return SLO{}, fmt.Errorf("kcluster: SLO %q not of the form <duration>:p<percentile>", s)
	}
	target, err := time.ParseDuration(dur)
	if err != nil || target <= 0 {
		return SLO{}, fmt.Errorf("kcluster: bad SLO target in %q: %v", s, err)
	}
	p, err := strconv.ParseFloat(pct[1:], 64)
	if err != nil || p <= 0 || p >= 100 {
		return SLO{}, fmt.Errorf("kcluster: bad SLO percentile in %q (want 0 < p < 100)", s)
	}
	return SLO{Target: target, Quantile: p / 100}, nil
}

// SLOSummary is the objective evaluated over one load run. ErrorBudget is
// the allowed violation fraction (1−quantile); BudgetBurnRate is the
// actual violation rate divided by that budget — burn < 1 means the run
// met the objective with room to spare, burn N means violations arrived N
// times faster than the budget allows.
type SLOSummary struct {
	Objective      string  `json:"objective"`
	TargetUS       float64 `json:"target_us"`
	Quantile       float64 `json:"quantile"`
	MeasuredUS     float64 `json:"measured_us"` // empirical latency at the objective quantile
	Met            bool    `json:"met"`
	Violations     uint64  `json:"violations"` // requests slower than target
	ViolationRate  float64 `json:"violation_rate"`
	ErrorBudget    float64 `json:"error_budget"`
	BudgetBurnRate float64 `json:"budget_burn_rate"`
}

// evalSLO scores measured request latencies (µs, any order) against the
// objective.
func evalSLO(slo SLO, lat []float64) *SLOSummary {
	out := &SLOSummary{
		Objective:   slo.String(),
		TargetUS:    float64(slo.Target) / float64(time.Microsecond),
		Quantile:    slo.Quantile,
		ErrorBudget: 1 - slo.Quantile,
	}
	if len(lat) == 0 {
		out.Met = true
		return out
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	out.MeasuredUS = s[int(slo.Quantile*float64(len(s)-1))]
	for _, v := range s {
		if v > out.TargetUS {
			out.Violations++
		}
	}
	out.ViolationRate = float64(out.Violations) / float64(len(s))
	out.BudgetBurnRate = out.ViolationRate / out.ErrorBudget
	out.Met = out.ViolationRate <= out.ErrorBudget
	return out
}

// learnK asks the target's /healthz for the served k-mer length (both
// kproxy and kserve report it).
func learnK(ctx context.Context, client *http.Client, target string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		K int `json:"k"`
	}
	if err := json.NewDecoder(&limitedReader{r: resp.Body, n: 1 << 16}).Decode(&h); err != nil {
		return 0, fmt.Errorf("bad healthz body from %s: %v", target, err)
	}
	if h.K <= 0 {
		return 0, fmt.Errorf("target %s reports k=%d", target, h.K)
	}
	return h.K, nil
}

// makeKeys generates the sampled k-mer population.
func makeKeys(rng *rand.Rand, n, k int) []string {
	const bases = "ACGT"
	keys := make([]string, n)
	buf := make([]byte, k)
	for i := range keys {
		for j := range buf {
			buf[j] = bases[rng.Intn(4)]
		}
		keys[i] = string(buf)
	}
	return keys
}

// picker selects key indices under the configured distribution.
type picker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newPicker(seed int64, opts LoadOptions) *picker {
	rng := rand.New(rand.NewSource(seed))
	p := &picker{rng: rng, n: opts.Keys}
	if opts.Dist == "zipf" {
		p.zipf = rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.Keys-1))
	}
	return p
}

func (p *picker) next() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.n)
}

// RunLoad drives the target: a warmup phase, then Requests measured
// requests, closed-loop or open-loop (QPS > 0). Per-key error markers in
// otherwise-successful batches are counted separately from request-level
// failures, matching the router's degradation contract.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadSummary, error) {
	opts = opts.withDefaults()
	if opts.Target == "" {
		return LoadSummary{}, fmt.Errorf("kcluster: load target required")
	}
	if opts.Dist != "zipf" && opts.Dist != "uniform" {
		return LoadSummary{}, fmt.Errorf("kcluster: unknown key distribution %q", opts.Dist)
	}
	k := opts.K
	if k <= 0 {
		var err error
		if k, err = learnK(ctx, opts.Client, opts.Target); err != nil {
			return LoadSummary{}, err
		}
	}
	keys := makeKeys(rand.New(rand.NewSource(opts.Seed)), opts.Keys, k)

	if opts.Warmup > 0 {
		opts.Logf("warmup: %d requests", opts.Warmup)
		w := opts
		w.Requests = opts.Warmup
		w.Warmup = 0
		w.QPS = 0      // warmup is a closed-loop burst
		w.Tracer = nil // only measured requests are traced
		runPhase(ctx, w, keys)
	}
	opts.Logf("measuring: %d requests x %d lookups", opts.Requests, opts.Batch)
	sum := runPhase(ctx, opts, keys)
	sum.Target = opts.Target
	sum.Dist = opts.Dist
	sum.Batch = opts.Batch
	sum.Concurrency = opts.Concurrency
	sum.Build = obs.ReadBuild()
	return sum, ctx.Err()
}

func runPhase(ctx context.Context, opts LoadOptions, keys []string) LoadSummary {
	var (
		next      atomic.Int64
		errs      atomic.Uint64
		keyErrs   atomic.Uint64
		completed atomic.Uint64
		lookups   atomic.Uint64
	)
	latencies := make([]float64, opts.Requests) // microseconds, indexed by request
	var interval time.Duration
	if opts.QPS > 0 {
		interval = time.Duration(float64(opts.Batch) / opts.QPS * float64(time.Second))
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick := newPicker(opts.Seed+int64(w)+1, opts)
			batch := make([]string, opts.Batch)
			tid := "worker " + strconv.Itoa(w)
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				sent := time.Now()
				if interval > 0 {
					// Open loop: this request was due at its scheduled
					// arrival; latency accrues from there even if every
					// worker was stuck behind a stalled server.
					sent = start.Add(time.Duration(i) * interval)
					if d := time.Until(sent); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
				}
				for j := range batch {
					batch[j] = keys[pick.next()]
				}
				span := opts.Tracer.StartRoot("request", tid)
				ke, err := doRequest(ctx, opts, batch, span.Context())
				latencies[i] = float64(time.Since(sent)) / float64(time.Microsecond)
				completed.Add(1)
				lookups.Add(uint64(opts.Batch))
				keyErrs.Add(uint64(ke))
				if err != nil {
					errs.Add(1)
					span.SetAttr("error", err.Error())
				}
				span.End()
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	sum := LoadSummary{
		Requests:   completed.Load(),
		Lookups:    lookups.Load(),
		Errors:     errs.Load(),
		KeyErrors:  keyErrs.Load(),
		WallSec:    wall,
		QPSOffered: opts.QPS,
	}
	if wall > 0 {
		sum.QPSAchieved = float64(sum.Lookups) / wall
	}
	sum.Latency = summarize(latencies[:completed.Load()])
	if opts.SLO != nil {
		sum.SLO = evalSLO(*opts.SLO, latencies[:completed.Load()])
	}
	return sum
}

// doRequest sends one lookup (batch of 1 → GET /kmer) or batch request,
// returning the per-key error-marker count and a request-level error. A
// sampled span context rides the request as its traceparent so the serving
// tier joins the trace rooted here.
func doRequest(ctx context.Context, opts LoadOptions, batch []string, sc obs.SpanContext) (keyErrors int, err error) {
	if len(batch) == 1 {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, opts.Target+"/kmer/"+batch[0], nil)
		if err != nil {
			return 0, err
		}
		if sc.Sampled {
			req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
		}
		resp, err := opts.Client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, readStatusError(resp)
		}
		var res Result
		if err := json.NewDecoder(&limitedReader{r: resp.Body, n: 1 << 16}).Decode(&res); err != nil {
			return 0, err
		}
		if res.Error != "" {
			return 1, nil
		}
		return 0, nil
	}
	body, err := json.Marshal(struct {
		Kmers []string `json:"kmers"`
	}{Kmers: batch})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.Target+"/batch", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc.Sampled {
		req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	}
	resp, err := opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, readStatusError(resp)
	}
	var br BatchResponse
	if err := json.NewDecoder(&limitedReader{r: resp.Body, n: maxBatchBody}).Decode(&br); err != nil {
		return 0, err
	}
	for i := range br.Results {
		if br.Results[i].Error != "" {
			keyErrors++
		}
	}
	return keyErrors, nil
}

// summarize digests latencies (µs) into percentiles.
func summarize(lat []float64) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	pct := func(q float64) float64 { return s[int(q*float64(len(s)-1))] }
	var sum float64
	for _, v := range s {
		sum += v
	}
	return LatencySummary{
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
		P999: pct(0.999),
		Mean: sum / float64(len(s)),
		Max:  s[len(s)-1],
	}
}
