package kcluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dedukt/internal/dna"
	"dedukt/internal/kcount"
	"dedukt/internal/kernels"
	"dedukt/internal/obs"
)

// Batch limits mirror kserve's: the router enforces them before fanning
// out, so an oversized batch is rejected once instead of per shard.
const (
	maxBatchBody  = 1 << 20
	maxBatchKmers = 8192
)

// RouterOptions tunes the front router.
type RouterOptions struct {
	// Enc is the base encoding queries are packed under; it must match the
	// replicas' (default dna.Random, the CLI default).
	Enc *dna.Encoding
	// HedgeQuantile is the observed-latency quantile at which a hedge
	// fires (default 0.9).
	HedgeQuantile float64
	// HedgeMin / HedgeMax clamp the hedge delay (defaults 1ms / 25ms).
	// Until HedgeMinSamples latencies are observed the delay is HedgeMax.
	HedgeMin        time.Duration
	HedgeMax        time.Duration
	HedgeMinSamples uint64
	// RequestTimeout bounds one upstream attempt (default 2s).
	RequestTimeout time.Duration
	// Client overrides the upstream HTTP client (default: pooled transport
	// with RequestTimeout).
	Client *http.Client
	// Tracer, when non-nil, records request spans for sampled traffic:
	// server spans for /kmer and /batch admission, one span per upstream
	// attempt (annotated replica, hedged, and winner/canceled/error
	// outcome), with the attempt's traceparent forwarded upstream so the
	// replica's spans join the same trace. nil disables tracing.
	Tracer *obs.Tracer
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.Enc == nil {
		o.Enc = &dna.Random
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.9
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = time.Millisecond
	}
	if o.HedgeMax <= 0 {
		o.HedgeMax = 25 * time.Millisecond
	}
	if o.HedgeMax < o.HedgeMin {
		o.HedgeMax = o.HedgeMin
	}
	if o.HedgeMinSamples == 0 {
		o.HedgeMinSamples = 64
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{
			Timeout:   o.RequestTimeout,
			Transport: &http.Transport{MaxIdleConnsPerHost: 256, MaxIdleConns: 1024},
		}
	}
	return o
}

// Result is one answered lookup. Error is set (and Count/Present zero)
// when the key could not be answered — a bad k-mer, or its shard down.
type Result struct {
	Kmer    string `json:"kmer"`
	Count   uint32 `json:"count"`
	Present bool   `json:"present"`
	Error   string `json:"error,omitempty"`
}

// BatchResponse is the router's POST /batch answer: results index-aligned
// with the request, Complete=false when any key degraded to an error
// marker for cluster reasons (shard unavailable, upstream failure) rather
// than a bad query.
type BatchResponse struct {
	Results  []Result `json:"results"`
	Complete bool     `json:"complete"`
	Errors   int      `json:"errors"`
}

// Router fans lookups out to the registry's replicas: shard by the
// pipeline owner hash, pick candidates off the shard ring, hedge at a
// latency quantile, retry hard failures, degrade per key.
type Router struct {
	reg  *Registry
	opts RouterOptions
	met  routerMetrics
}

type routerMetrics struct {
	requests       *obs.Counter
	batches        *obs.Counter
	hedges         *obs.Counter
	hedgeWins      *obs.Counter
	retries        *obs.Counter
	unrouteable    *obs.Counter
	partialBatches *obs.Counter
	latency        *obs.Histogram

	// stage latency histograms (kcluster_stage_seconds): where a request's
	// time goes inside the proxy — shard/candidate resolution, the winning
	// upstream attempt, how long the primary ran alone before a hedge
	// fired, and end-to-end routing.
	stageRoute     *obs.Histogram
	stageUpstream  *obs.Histogram
	stageHedgeWait *obs.Histogram
	stageTotal     *obs.Histogram
}

// NewRouter builds a router over an existing registry (whose Obs registry
// also receives the router metrics).
func NewRouter(reg *Registry, opts RouterOptions) *Router {
	r := &Router{reg: reg, opts: opts.withDefaults()}
	o := reg.Obs()
	r.met = routerMetrics{
		requests:       o.Counter("kcluster_requests_total", "Client lookups routed (batch keys count individually)."),
		batches:        o.Counter("kcluster_batches_total", "Client batch requests routed."),
		hedges:         o.Counter("kcluster_hedges_total", "Hedged upstream requests fired after the latency-quantile deadline."),
		hedgeWins:      o.Counter("kcluster_hedge_wins_total", "Races won by the hedged request."),
		retries:        o.Counter("kcluster_retries_total", "Upstream retries after a hard failure."),
		unrouteable:    o.Counter("kcluster_unrouteable_total", "Lookups degraded because their shard had no routable replica."),
		partialBatches: o.Counter("kcluster_partial_batches_total", "Batches answered with at least one cluster-degraded key."),
		latency:        o.Histogram("kcluster_request_latency_seconds", "Latency of winning upstream requests.", obs.ExpBuckets(0.00025, 2, 12)),
	}
	stageHelp := "Router stage latency: route is shard/candidate resolution, upstream the winning attempt, hedge_wait how long the primary ran before a hedge fired, total end-to-end routing."
	stageBuckets := obs.ExpBuckets(0.00001, 4, 10)
	r.met.stageRoute = o.Histogram("kcluster_stage_seconds", stageHelp, stageBuckets, obs.L("stage", "route"))
	r.met.stageUpstream = o.Histogram("kcluster_stage_seconds", stageHelp, stageBuckets, obs.L("stage", "upstream"))
	r.met.stageHedgeWait = o.Histogram("kcluster_stage_seconds", stageHelp, stageBuckets, obs.L("stage", "hedge_wait"))
	r.met.stageTotal = o.Histogram("kcluster_stage_seconds", stageHelp, stageBuckets, obs.L("stage", "total"))
	return r
}

// Registry returns the router's registry.
func (r *Router) Registry() *Registry { return r.reg }

// hedgeDelay is the current hedge deadline: the configured quantile of
// observed winning-upstream latencies, clamped to [HedgeMin, HedgeMax];
// HedgeMax until enough samples exist to trust the estimate.
func (r *Router) hedgeDelay() time.Duration {
	if r.met.latency.Count() < r.opts.HedgeMinSamples {
		return r.opts.HedgeMax
	}
	q := r.met.latency.Quantile(r.opts.HedgeQuantile)
	return clampDuration(time.Duration(q*float64(time.Second)), r.opts.HedgeMin, r.opts.HedgeMax)
}

// startAttempt opens one upstream-attempt span under the caller's trace.
// With no tracer, or an unsampled caller, the returned handle is a free
// no-op.
func (r *Router) startAttempt(ctx context.Context, rep *Replica, hedged bool) obs.ReqSpanHandle {
	t := r.opts.Tracer
	if t == nil {
		return obs.ReqSpanHandle{}
	}
	parent := obs.SpanFromContext(ctx)
	if !parent.Sampled {
		return obs.ReqSpanHandle{}
	}
	span := t.StartSpan(parent, "upstream", rep.ID())
	span.SetAttr("replica", rep.ID())
	span.SetAttr("addr", rep.Addr)
	span.SetAttr("hedged", strconv.FormatBool(hedged))
	return span
}

// httpStatusError is a non-200 upstream answer.
type httpStatusError struct {
	status int
	body   string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("upstream status %d: %s", e.status, e.body)
}

// isHealthStrike reports whether a failure should count against the
// replica's health: transport errors and 5xx, except 503 (draining or
// shedding — the probe loop classifies those by body) and 429 (admission
// control working as designed under load).
func isHealthStrike(err error) bool {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.status >= 500 && se.status != http.StatusServiceUnavailable
	}
	return !errors.Is(err, context.Canceled)
}

// raceReplicas runs do against cands in order: cands[0] immediately, the
// next candidate either when the hedge timer fires (hedge) or when the
// previous attempt hard-fails (retry). First success wins and cancels the
// losers; the replica's latency and failure streak feed the registry.
//
// When the caller's context carries a sampled trace, every attempt records
// an "upstream" span: the attempt's own span context rides the context
// into do (lookupOnce/batchOnce forward it as the outgoing traceparent, so
// the replica's server span becomes its child) and the span is annotated
// with the replica, whether it was a hedge, and how the race ended for it
// — winner, canceled (a loser cut down by the winner's cancel), or error.
func raceReplicas[T any](r *Router, ctx context.Context, cands []*Replica, do func(ctx context.Context, rep *Replica) (T, error)) (T, error) {
	var zero T
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		val    T
		err    error
		rep    *Replica
		hedged bool
		dur    time.Duration
	}
	var decided atomic.Bool // first successful attempt wins the race
	raceStart := time.Now()
	results := make(chan outcome, len(cands))
	launched := 0
	launch := func(hedged bool) {
		rep := cands[launched]
		launched++
		rep.inflight.Add(1)
		go func() {
			span := r.startAttempt(ctx, rep, hedged)
			actx := rctx
			if span.Sampled() {
				actx = obs.ContextWithSpan(rctx, span.Context())
			}
			start := time.Now()
			v, err := do(actx, rep)
			dur := time.Since(start)
			rep.inflight.Add(-1)
			won := err == nil && decided.CompareAndSwap(false, true)
			if span.Sampled() {
				switch {
				case won:
					span.SetAttr("outcome", "winner")
				case err == nil:
					span.SetAttr("outcome", "late_success")
				case errors.Is(err, context.Canceled) && ctx.Err() == nil:
					span.SetAttr("outcome", "canceled")
				default:
					span.SetAttr("outcome", "error")
					span.SetAttr("error", err.Error())
				}
				span.End()
			}
			results <- outcome{val: v, err: err, rep: rep, hedged: hedged, dur: dur}
		}()
	}
	launch(false)
	var hedgeC <-chan time.Time
	if len(cands) > 1 {
		t := time.NewTimer(r.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			if firstErr != nil {
				return zero, firstErr
			}
			return zero, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if launched < len(cands) {
				r.met.hedges.Inc()
				r.met.stageHedgeWait.Observe(time.Since(raceStart).Seconds())
				launch(true)
				pending++
			}
		case o := <-results:
			pending--
			if o.err == nil {
				r.reg.ReportSuccess(o.rep, o.dur)
				r.met.latency.Observe(o.dur.Seconds())
				r.met.stageUpstream.Observe(o.dur.Seconds())
				if o.hedged {
					r.met.hedgeWins.Inc()
				}
				return o.val, nil
			}
			// A loser canceled because someone else won never reaches here
			// (we return on first success); rctx cancellation only happens
			// via the parent ctx, handled above. So this is a real failure.
			if isHealthStrike(o.err) {
				r.reg.ReportFailure(o.rep, o.err)
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if launched < len(cands) {
				r.met.retries.Inc()
				launch(false)
				pending++
			} else if pending == 0 {
				return zero, firstErr
			}
		}
	}
}

// lookupOnce is one upstream GET /kmer attempt.
func (r *Router) lookupOnce(ctx context.Context, rep *Replica, seq string) (Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+rep.Addr+"/kmer/"+seq, nil)
	if err != nil {
		return Result{}, err
	}
	if sc := obs.SpanFromContext(ctx); sc.Sampled {
		req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return Result{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Result{}, readStatusError(resp)
	}
	var res Result
	if err := json.NewDecoder(&limitedReader{r: resp.Body, n: 1 << 16}).Decode(&res); err != nil {
		return Result{}, fmt.Errorf("bad upstream body: %w", err)
	}
	return res, nil
}

// batchOnce is one upstream POST /batch attempt for a per-replica key group.
func (r *Router) batchOnce(ctx context.Context, rep *Replica, seqs []string) ([]Result, error) {
	body, err := json.Marshal(struct {
		Kmers []string `json:"kmers"`
	}{Kmers: seqs})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+rep.Addr+"/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc := obs.SpanFromContext(ctx); sc.Sampled {
		req.Header.Set(obs.TraceparentHeader, sc.Traceparent())
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readStatusError(resp)
	}
	var br struct {
		Results []Result `json:"results"`
	}
	if err := json.NewDecoder(&limitedReader{r: resp.Body, n: maxBatchBody}).Decode(&br); err != nil {
		return nil, fmt.Errorf("bad upstream body: %w", err)
	}
	if len(br.Results) != len(seqs) {
		return nil, fmt.Errorf("upstream answered %d results for %d kmers", len(br.Results), len(seqs))
	}
	return br.Results, nil
}

func readStatusError(resp *http.Response) error {
	buf := make([]byte, 256)
	n, _ := resp.Body.Read(buf)
	return &httpStatusError{status: resp.StatusCode, body: string(bytes.TrimSpace(buf[:n]))}
}

// route parses a query and resolves its shard candidates. A parse error
// is terminal (bad query); an empty candidate list is cluster degradation.
func (r *Router) route(seq string) (key uint64, cands []*Replica, err error) {
	k, canonical, shards, ready := r.reg.Shape()
	if !ready {
		return 0, nil, ErrNotReady
	}
	key, err = kcount.ParseQuery(r.opts.Enc, k, canonical, seq)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	cands = r.reg.Candidates(kernels.DestOf(key, shards), key)
	if len(cands) == 0 {
		r.met.unrouteable.Inc()
		return key, nil, ErrShardUnavailable
	}
	return key, cands, nil
}

// Lookup answers one point lookup, hedging and retrying across the key's
// replica candidates.
func (r *Router) Lookup(ctx context.Context, seq string) (Result, error) {
	start := time.Now()
	r.met.requests.Inc()
	_, cands, err := r.route(seq)
	if err != nil {
		return Result{}, err
	}
	r.met.stageRoute.Observe(time.Since(start).Seconds())
	res, err := raceReplicas(r, ctx, cands, func(ctx context.Context, rep *Replica) (Result, error) {
		return r.lookupOnce(ctx, rep, seq)
	})
	r.met.stageTotal.Observe(time.Since(start).Seconds())
	return res, err
}

// batchGroup is the slice of a client batch bound for one primary replica.
type batchGroup struct {
	cands []*Replica
	seqs  []string
	idx   []int
}

// Batch answers a client batch: keys are grouped by their sticky primary
// replica, each group raced (hedge + retry) as one upstream sub-batch,
// and failures degrade to per-key error markers instead of failing the
// whole batch.
func (r *Router) Batch(ctx context.Context, kmers []string) (BatchResponse, error) {
	start := time.Now()
	r.met.batches.Inc()
	if len(kmers) > maxBatchKmers {
		return BatchResponse{}, fmt.Errorf("%w: batch of %d exceeds %d", ErrBadQuery, len(kmers), maxBatchKmers)
	}
	if _, _, _, ready := r.reg.Shape(); !ready {
		return BatchResponse{}, ErrNotReady
	}
	out := BatchResponse{Results: make([]Result, len(kmers)), Complete: true}
	groups := make(map[*Replica]*batchGroup)
	for i, seq := range kmers {
		r.met.requests.Inc()
		_, cands, err := r.route(seq)
		if err != nil {
			out.Results[i] = Result{Kmer: seq, Error: err.Error()}
			if errors.Is(err, ErrShardUnavailable) {
				out.Complete = false
			}
			continue
		}
		g := groups[cands[0]]
		if g == nil {
			g = &batchGroup{cands: cands}
			groups[cands[0]] = g
		}
		g.seqs = append(g.seqs, seq)
		g.idx = append(g.idx, i)
	}
	r.met.stageRoute.Observe(time.Since(start).Seconds())
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		degraded bool
	)
	for _, g := range groups {
		wg.Add(1)
		go func(g *batchGroup) {
			defer wg.Done()
			results, err := raceReplicas(r, ctx, g.cands, func(ctx context.Context, rep *Replica) ([]Result, error) {
				return r.batchOnce(ctx, rep, g.seqs)
			})
			if err != nil {
				mu.Lock()
				degraded = true
				for j, i := range g.idx {
					out.Results[i] = Result{Kmer: g.seqs[j], Error: err.Error()}
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			for j, i := range g.idx {
				out.Results[i] = results[j]
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if degraded {
		out.Complete = false
	}
	if !out.Complete {
		r.met.partialBatches.Inc()
	}
	for i := range out.Results {
		if out.Results[i].Error != "" {
			out.Errors++
		}
	}
	r.met.stageTotal.Observe(time.Since(start).Seconds())
	return out, nil
}
