package kcluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dedukt/internal/obs"
)

// RegistryOptions tunes the replica registry. The zero value (plus Seeds)
// picks sensible defaults.
type RegistryOptions struct {
	// Seeds are the replica addresses (host:port). Identity — replica id,
	// cluster shard, k, canonical — is learned by probing /healthz.
	Seeds []string
	// ProbeInterval is how often every replica is probed (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 1s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive hard failures (probe or
	// proxied request) mark a replica Down (default 2).
	FailThreshold int
	// Vnodes is the virtual-node count per replica on each shard ring
	// (default 64).
	Vnodes int
	// Client is the HTTP client probes use (default: a private client with
	// ProbeTimeout).
	Client *http.Client
	// Obs, when non-nil, is the observability registry cluster metrics are
	// registered into; nil creates a private one.
	Obs *obs.Registry
	// Logf receives probe-state transitions (log.Printf-shaped); nil
	// discards them.
	Logf func(format string, args ...any)
}

func (o RegistryOptions) withDefaults() RegistryOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.Vnodes <= 0 {
		o.Vnodes = 64
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: o.ProbeTimeout}
	}
	if o.Obs == nil {
		o.Obs = obs.NewRegistry()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// probeHealth mirrors kserve's /healthz body (the fields the registry
// needs; kept as a local struct so kcluster tracks the wire contract, not
// the kserve internals).
type probeHealth struct {
	Status     string `json:"status"`
	ReplicaID  string `json:"replica_id"`
	K          int    `json:"k"`
	Canonical  bool   `json:"canonical"`
	ShardIndex int    `json:"shard_index"`
	ShardCount int    `json:"shard_count"`
}

// Registry tracks the cluster's replicas: it probes /healthz on a fixed
// interval, learns each replica's identity and shard, classifies
// routability (Up / Draining / Down), and maintains one consistent-hash
// ring per cluster shard. Every ring rebuild is a rebalance event.
type Registry struct {
	opts RegistryOptions
	met  registryMetrics

	mu         sync.RWMutex
	replicas   []*Replica
	rings      []*ring // index = cluster shard; nil until shape known
	shardCount int
	k          int
	canonical  bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

type registryMetrics struct {
	rebalances    *obs.Counter
	probes        *obs.Counter
	probeFailures *obs.Counter
}

// NewRegistry builds a registry over the seed list and starts the probe
// loop. Call Close to stop probing; call ProbeNow to force a synchronous
// pass (startup, tests).
func NewRegistry(opts RegistryOptions) (*Registry, error) {
	opts = opts.withDefaults()
	if len(opts.Seeds) == 0 {
		return nil, fmt.Errorf("kcluster: no replica seeds")
	}
	g := &Registry{
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	seen := make(map[string]bool, len(opts.Seeds))
	for _, addr := range opts.Seeds {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		g.replicas = append(g.replicas, &Replica{Addr: addr})
	}
	if len(g.replicas) == 0 {
		return nil, fmt.Errorf("kcluster: no usable replica seeds in %v", opts.Seeds)
	}
	g.initMetrics()
	go g.probeLoop()
	return g, nil
}

func (g *Registry) initMetrics() {
	reg := g.opts.Obs
	g.met = registryMetrics{
		rebalances:    reg.Counter("kcluster_ring_rebalances_total", "Ring rebuilds caused by replica membership or routability changes."),
		probes:        reg.Counter("kcluster_probes_total", "Health probes sent."),
		probeFailures: reg.Counter("kcluster_probe_failures_total", "Health probes that failed."),
	}
	reg.Gauge("kcluster_replicas", "Replicas in the seed list.").Set(float64(len(g.replicas)))
	reg.GaugeFunc("kcluster_ready", "1 when every cluster shard has at least one Up replica.", func() float64 {
		if g.Ready() {
			return 1
		}
		return 0
	})
	for _, rep := range g.replicas {
		rep := rep
		label := obs.L("replica", rep.Addr)
		reg.GaugeFunc("kcluster_replica_up", "Replica routability: 1 up, 0.5 draining, 0 down/unknown.", func() float64 {
			switch rep.State() {
			case StateUp:
				return 1
			case StateDraining:
				return 0.5
			default:
				return 0
			}
		}, label)
		reg.GaugeFunc("kcluster_replica_inflight", "Requests currently proxied to the replica.", func() float64 {
			return float64(rep.Inflight())
		}, label)
		reg.GaugeFunc("kcluster_replica_ewma_latency_ms", "Moving-average latency of successful probes and proxied requests.", func() float64 {
			return rep.EWMALatencyMs()
		}, label)
	}
}

// Obs returns the observability registry cluster metrics live in.
func (g *Registry) Obs() *obs.Registry { return g.opts.Obs }

// Close stops the probe loop and waits for it to exit.
func (g *Registry) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
}

func (g *Registry) probeLoop() {
	defer close(g.done)
	t := time.NewTicker(g.opts.ProbeInterval)
	defer t.Stop()
	g.probeAll()
	for {
		select {
		case <-t.C:
			g.probeAll()
		case <-g.stop:
			return
		}
	}
}

// ProbeNow runs one synchronous probe pass over every replica.
func (g *Registry) ProbeNow() { g.probeAll() }

// probeAll probes every replica concurrently, then rebuilds the rings if
// any routability or identity changed.
func (g *Registry) probeAll() {
	g.mu.RLock()
	reps := append([]*Replica(nil), g.replicas...)
	g.mu.RUnlock()
	changed := make([]bool, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			changed[i] = g.probeOne(rep)
		}(i, rep)
	}
	wg.Wait()
	for _, c := range changed {
		if c {
			g.rebuild()
			return
		}
	}
}

// probeOne probes one replica and applies the outcome; reports whether its
// routability or shard assignment changed.
func (g *Registry) probeOne(rep *Replica) bool {
	g.met.probes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.ProbeTimeout)
	defer cancel()
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+rep.Addr+"/healthz", nil)
	if err != nil {
		return g.applyProbeFailure(rep, err)
	}
	resp, err := g.opts.Client.Do(req)
	if err != nil {
		return g.applyProbeFailure(rep, err)
	}
	defer resp.Body.Close()
	var h probeHealth
	decodeErr := json.NewDecoder(&limitedReader{r: resp.Body, n: 1 << 16}).Decode(&h)
	switch {
	case resp.StatusCode == http.StatusOK && decodeErr == nil:
		rep.observe(time.Since(start))
		return g.applyProbeUp(rep, h, StateUp)
	case resp.StatusCode == http.StatusServiceUnavailable && decodeErr == nil && h.Status == "draining":
		// An orderly drain, not a crash: the replica told us so. Keep it
		// routable as a last resort and don't count strikes against it.
		rep.observe(time.Since(start))
		return g.applyProbeUp(rep, h, StateDraining)
	default:
		if decodeErr != nil {
			err = fmt.Errorf("bad healthz body: %v", decodeErr)
		} else {
			err = fmt.Errorf("healthz status %d", resp.StatusCode)
		}
		return g.applyProbeFailure(rep, err)
	}
}

// applyProbeUp records a successful probe: adopt identity, validate the
// cluster shape, clear the failure streak.
func (g *Registry) applyProbeUp(rep *Replica, h probeHealth, state State) bool {
	if err := validateShard(h.ShardIndex, h.ShardCount); err != nil {
		return g.applyProbeFailure(rep, err)
	}
	if err := g.adoptShape(h); err != nil {
		return g.applyProbeFailure(rep, err)
	}
	rep.mu.Lock()
	changed := rep.state != state || rep.shard != h.ShardIndex || rep.shardCount != h.ShardCount
	prev := rep.state
	rep.id = h.ReplicaID
	rep.shard = h.ShardIndex
	rep.shardCount = h.ShardCount
	rep.state = state
	rep.fails = 0
	rep.lastErr = ""
	rep.mu.Unlock()
	if changed {
		g.opts.Logf("replica %s (%s, shard %d/%d): %s -> %s", rep.Addr, h.ReplicaID, h.ShardIndex, h.ShardCount, prev, state)
	}
	return changed
}

// applyProbeFailure records a hard failure; the replica goes Down once the
// consecutive-failure threshold is crossed.
func (g *Registry) applyProbeFailure(rep *Replica, err error) bool {
	g.met.probeFailures.Inc()
	rep.mu.Lock()
	rep.fails++
	rep.lastErr = err.Error()
	changed := rep.fails >= g.opts.FailThreshold && rep.state != StateDown && rep.state != StateUnknown
	prev := rep.state
	if changed {
		rep.state = StateDown
	}
	rep.mu.Unlock()
	if changed {
		g.opts.Logf("replica %s: %s -> down (%v)", rep.Addr, prev, err)
	}
	return changed
}

// ReportFailure lets the router feed hard request failures (connection
// refused, 5xx) into the health model without waiting for the next probe
// tick — a killed replica stops receiving primary traffic after
// FailThreshold failed requests instead of a probe interval later.
func (g *Registry) ReportFailure(rep *Replica, err error) {
	if g.applyProbeFailure(rep, err) {
		g.rebuild()
	}
}

// ReportSuccess folds a successful proxied-request latency into the
// replica's average and clears its failure streak.
func (g *Registry) ReportSuccess(rep *Replica, d time.Duration) {
	rep.observe(d)
	rep.mu.Lock()
	rep.fails = 0
	rep.mu.Unlock()
}

// adoptShape validates and adopts the cluster shape (k, canonical, shard
// count) learned from a replica.
func (g *Registry) adoptShape(h probeHealth) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.shardCount == 0 {
		g.shardCount = h.ShardCount
		g.k = h.K
		g.canonical = h.Canonical
		return nil
	}
	if g.shardCount != h.ShardCount || g.k != h.K || g.canonical != h.Canonical {
		return fmt.Errorf("kcluster: replica shape k=%d canonical=%v shards=%d disagrees with cluster k=%d canonical=%v shards=%d",
			h.K, h.Canonical, h.ShardCount, g.k, g.canonical, g.shardCount)
	}
	return nil
}

// rebuild reconstructs every shard ring from the currently routable
// replicas — one rebalance event.
func (g *Registry) rebuild() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.shardCount == 0 {
		return
	}
	rings := make([]*ring, g.shardCount)
	for s := range rings {
		var members []*Replica
		for _, rep := range g.replicas {
			rep.mu.Lock()
			ok := rep.state.Routable() && rep.shard == s && rep.shardCount == g.shardCount
			rep.mu.Unlock()
			if ok {
				members = append(members, rep)
			}
		}
		rings[s] = buildRing(members, g.opts.Vnodes)
	}
	g.rings = rings
	g.met.rebalances.Inc()
}

// Shape returns the learned cluster shape. ready is false until at least
// one replica has been probed successfully.
func (g *Registry) Shape() (k int, canonical bool, shards int, ready bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.k, g.canonical, g.shardCount, g.shardCount > 0
}

// Ready reports whether every cluster shard has at least one Up replica.
func (g *Registry) Ready() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.shardCount == 0 || len(g.rings) != g.shardCount {
		return false
	}
	for _, r := range g.rings {
		up := false
		for _, m := range r.members {
			if m.State() == StateUp {
				up = true
				break
			}
		}
		if !up {
			return false
		}
	}
	return true
}

// Candidates returns the key's ordered replica candidates within shard:
// the sticky ring primary first, then the hedge/retry successors, with
// draining replicas last. Empty when the shard has no routable replica.
func (g *Registry) Candidates(shard int, key uint64) []*Replica {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if shard < 0 || shard >= len(g.rings) || g.rings[shard] == nil {
		return nil
	}
	return g.rings[shard].candidates(key)
}

// Snapshot returns every replica's current state.
func (g *Registry) Snapshot() []ReplicaInfo {
	g.mu.RLock()
	reps := append([]*Replica(nil), g.replicas...)
	g.mu.RUnlock()
	out := make([]ReplicaInfo, len(reps))
	for i, rep := range reps {
		out[i] = rep.info()
	}
	return out
}

// Rebalances returns how many ring rebuilds have happened.
func (g *Registry) Rebalances() uint64 { return g.met.rebalances.Value() }

// limitedReader is io.LimitedReader without the import (bounds healthz
// bodies).
type limitedReader struct {
	r interface{ Read([]byte) (int, error) }
	n int64
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, fmt.Errorf("kcluster: healthz body too large")
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}
