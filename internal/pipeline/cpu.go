package pipeline

import (
	"fmt"

	"dedukt/internal/cluster"
	"dedukt/internal/dna"
	"dedukt/internal/fault"
	"dedukt/internal/kcount"
	"dedukt/internal/kernels"
	"dedukt/internal/minimizer"
	"dedukt/internal/mpisim"
	"dedukt/internal/obs"
)

// cpuRoundState is one parity's pooled round scratch for the CPU rank body:
// the staged base buffer, the round's per-destination send vectors (rows
// truncated and reused across rounds of the same parity) and its posted
// exchange.
type cpuRoundState struct {
	buf       dna.SeqBuffer
	sendWords [][]uint64
	sendWire  [][]byte
	routedW   [][]uint64
	routedB   [][]byte
	pend      *pendingExchange
	recvWords [][]uint64
	recvWire  [][]byte
	roundRecv uint64
}

// runCPURank executes the scalar baseline (Alg. 1) or the CPU-supermer
// ablation for one rank, metering abstract work with the same constants the
// GPU kernels use and converting it to Power9 time via the layout's
// CPUModel.
func runCPURank(cfg Config, destMap []uint16, inj *fault.Injector, c *mpisim.Comm, src chunkSource, bloomBases int, seat *rankSeat, ck *ckptCtl, rsp *rankSpill, out *rankOutcome) error {
	model := *cfg.Layout.CPU
	seedLen := 0
	for _, db := range seat.seed {
		seedLen += db.Len()
	}
	table := kcount.NewTable(seedLen+1, cfg.Probing)
	for _, db := range seat.seed {
		for _, e := range db.Entries {
			table.Add(e.Key, e.Count)
		}
	}
	var bloom *kcount.Bloom
	if cfg.FilterSingletons {
		fp := cfg.FilterFP
		if fp == 0 {
			fp = 0.01
		}
		// Size for this rank's expected distinct arrivals: its share of
		// the partition's k-mers is bounded by its share of the input
		// (bloomBases — known up front only on the in-memory path, which
		// is why RunStream rejects the filter).
		var err error
		bloom, err = kcount.NewBloom(bloomBases+1, fp)
		if err != nil {
			return err
		}
	}
	rec := cfg.Obs
	rank := seat.old
	wire := kernels.SupermerWire{K: cfg.K, Window: cfg.Window}
	ex := newExchanger(&cfg, c, rank, inj, out)
	var states [2]cpuRoundState

	// Round-start faults fire once per executed round, before its parse.
	start := func(r int) error {
		return killOrStall(inj, rank, r, rec)
	}

	// Parse & process the round's chunk into the parity slot's send
	// vectors.
	parse := func(r int) (bool, error) {
		st := &states[r%2]
		recs, more, err := src.nextChunk()
		if err != nil {
			return false, err
		}
		st.buf.Reset()
		for _, rd := range recs {
			st.buf.AppendRead(rd.Seq)
		}
		data := st.buf.Data()

		sp := rec.Begin(rank, r, obs.PhaseParse)
		var meter kernels.WorkMeter
		// Destinations are always the ORIGINAL world (see runGPURank).
		if cfg.Mode == KmerMode {
			st.sendWords, meter = cpuParseKmers(cfg, seat.nOrig, data, st.sendWords)
		} else {
			st.sendWire, meter, err = cpuBuildSupermers(cfg, destMap, seat.nOrig, data, st.sendWire)
			if err != nil {
				sp.End(0, 0)
				return false, err
			}
		}
		parseModeled := model.RankTimeLifted(meter.Ops, meter.Bytes, meter.Items, cfg.CPULoadLift)
		out.parse += parseModeled
		out.parseOps += meter.Ops

		var roundSent uint64
		if cfg.Mode == KmerMode {
			for _, part := range st.sendWords {
				roundSent += uint64(len(part))
				out.payloadSent += 8 * uint64(len(part))
			}
		} else {
			for _, part := range st.sendWire {
				roundSent += uint64(len(part) / wire.Stride())
				out.payloadSent += uint64(len(part))
			}
		}
		out.itemsSent += roundSent
		sp.End(parseModeled, roundSent)
		return more, nil
	}

	// Post the round's exchange with nonblocking collectives, carrying the
	// end-of-stream more flag on the announcement.
	post := func(r int, more bool) error {
		st := &states[r%2]
		if cfg.Mode == KmerMode {
			st.pend = ex.postWords(r, seat.route(st.sendWords, &st.routedW), more)
		} else {
			st.pend = ex.postWire(r, wire, seat.routeBytes(st.sendWire, &st.routedB), more)
		}
		return nil
	}

	// Complete the exchange; the received parts stay in the parity slot for
	// count (no staging legs on the CPU pipeline).
	finish := func(r int) (bool, error) {
		st := &states[r%2]
		pend := st.pend
		st.pend = nil
		st.roundRecv = 0
		var (
			anyMore bool
			err     error
		)
		if cfg.Mode == KmerMode {
			st.recvWords, anyMore, err = ex.finishWords(pend)
			if err != nil {
				return false, err
			}
			for _, part := range st.recvWords {
				st.roundRecv += uint64(len(part))
			}
		} else {
			st.recvWire, anyMore, err = ex.finishWire(pend)
			if err != nil {
				return false, err
			}
			for _, part := range st.recvWire {
				st.roundRecv += uint64(len(part) / wire.Stride())
			}
		}
		pend.sp.End(0, st.roundRecv)
		return anyMore, nil
	}

	// Count the received parts into the persistent per-rank table in place.
	// In spill mode (pass 1) the verified parts are appended to the rank's
	// disk bins instead and the insert is deferred to the per-bin pass.
	count := func(r int) error {
		st := &states[r%2]
		if rsp != nil {
			sp := rec.Begin(rank, r, obs.PhaseSpill)
			var (
				n   uint64
				err error
			)
			if cfg.Mode == KmerMode {
				n, err = rsp.spillWords(st.recvWords)
			} else {
				n, err = rsp.spillWire(wire, cfg.minimizerConfig(), st.recvWire)
			}
			if err != nil {
				sp.End(0, 0)
				return err
			}
			sp.End(0, n)
			return nil
		}
		sp := rec.Begin(rank, r, obs.PhaseCount)
		var (
			cmeter kernels.WorkMeter
			err    error
		)
		if cfg.Mode == KmerMode {
			cmeter = cpuCountKmers(cfg, table, bloom, st.recvWords)
		} else {
			cmeter, err = cpuCountSupermers(cfg, table, bloom, st.recvWire)
			if err != nil {
				sp.End(0, 0)
				return err
			}
		}
		countModeled := model.RankTimeLifted(cmeter.Ops, cmeter.Bytes, cmeter.Items, cfg.CPULoadLift)
		out.count += countModeled
		out.countOps += cmeter.Ops
		sp.End(countModeled, st.roundRecv)
		return nil
	}

	hooks := roundHooks{start: start, parse: parse, post: post, finish: finish, count: count}
	if ck != nil {
		hooks.ckptAt = ck.at
		hooks.ckpt = func(r int) error {
			return ck.write(c, seat, r, kcount.FromTable(table, cfg.K, ck.flags), out)
		}
	}
	rounds, err := runRounds(cfg.Overlap, seat.base, hooks)
	if err != nil {
		return err
	}
	out.rounds = rounds
	if rsp != nil {
		return cpuCountBins(cfg, model, rsp, rec, rank, out)
	}
	out.counted = table.TotalCount()
	out.distinct = uint64(table.Len())
	out.hist = table.Histogram()
	out.top = table.TopK(topKPerRank)
	if cfg.KeepTables {
		out.table = table
	}
	return nil
}

// cpuCountBins is the CPU engine's spill pass 2: seal the rank's bins,
// count each one into a fresh working-set table — sized for that bin
// alone, never the whole spectrum slice — and fold the bin spectra into
// the outcome. Bins partition the rank's key space, so the fold is
// bit-identical to the single-table path.
func cpuCountBins(cfg Config, model cluster.CPUModel, rsp *rankSpill, rec *obs.Recorder, rank int, out *rankOutcome) error {
	acc := kcount.NewBinAccumulator(topKPerRank)
	if err := rsp.seal(); err != nil {
		return err
	}
	wire := kernels.SupermerWire{K: cfg.K, Window: cfg.Window}
	stride := wire.Stride()
	var words []uint64
	for b := 0; b < rsp.ctl.bins; b++ {
		// Pass-2 spans carry round -1: bin counting happens after the round
		// loop, like recovery (the other round-free phase).
		sp := rec.Begin(rank, -1, obs.PhaseBinCount)
		bt := kcount.NewTable(1, cfg.Probing)
		var (
			binItems uint64
			bmeter   kernels.WorkMeter
		)
		err := rsp.readBin(b, func(payload []byte, items int) error {
			if cfg.Mode == KmerMode {
				if len(payload) != 8*items {
					return fmt.Errorf("spill record declares %d words for %d payload bytes: %w", items, len(payload), ErrSpillMismatch)
				}
				if cap(words) < items {
					words = make([]uint64, items)
				}
				words = words[:items]
				for i := range words {
					words[i] = leUint64(payload[8*i:])
				}
				bmeter.Add(cpuCountKmers(cfg, bt, nil, [][]uint64{words}))
			} else {
				if len(payload) != items*stride {
					return fmt.Errorf("spill record declares %d images for %d payload bytes (stride %d): %w", items, len(payload), stride, ErrSpillMismatch)
				}
				m, err := cpuCountSupermers(cfg, bt, nil, [][]byte{payload})
				if err != nil {
					return err
				}
				bmeter.Add(m)
			}
			binItems += uint64(items)
			return nil
		})
		if err != nil {
			sp.End(0, 0)
			return err
		}
		countModeled := model.RankTimeLifted(bmeter.Ops, bmeter.Bytes, bmeter.Items, cfg.CPULoadLift)
		out.count += countModeled
		out.countOps += bmeter.Ops
		acc.AddTable(bt)
		sp.End(countModeled, binItems)
	}
	rsp.cleanup(!out.incomplete)
	out.counted = acc.Total()
	out.distinct = acc.Distinct()
	out.hist = acc.Histogram()
	out.top = acc.TopK()
	return nil
}

// cpuParseKmers is the scalar PARSEKMER of Alg. 1: a rolling sliding-window
// parse, one hash per k-mer, append to the destination's outgoing vector.
// prev's rows are truncated and reused when provided.
func cpuParseKmers(cfg Config, nProc int, data []byte, prev [][]uint64) ([][]uint64, kernels.WorkMeter) {
	var m kernels.WorkMeter
	out := prev
	if len(out) != nProc {
		out = make([][]uint64, nProc)
	}
	for d := range out {
		out[d] = out[d][:0]
	}
	k, enc := cfg.K, cfg.Enc
	var kw uint64
	valid := 0
	m.AddBytes(len(data)) // one streaming read of the partition
	for _, ch := range data {
		code, ok := enc.Encode(ch)
		m.AddOps(kernels.OpsEncodeBase)
		if !ok {
			valid = 0
			continue
		}
		kw = (kw<<2 | uint64(code)) & kmerMask(k)
		m.AddOps(kernels.OpsKmerRoll)
		valid++
		if valid < k {
			continue
		}
		key := kw
		if cfg.Canonical {
			key = uint64(dna.Kmer(key).Canonical(enc, k))
			m.AddOps(k * kernels.OpsKmerRoll)
		}
		m.AddOps(kernels.OpsHash + kernels.OpsDestSelect + kernels.OpsEmit)
		m.AddItems(1)
		dest := kernels.DestOf(key, nProc)
		out[dest] = append(out[dest], key)
		m.AddBytes(8)
	}
	return out, m
}

// cpuBuildSupermers is the scalar BUILDSUPERMER of Alg. 2, windowed exactly
// like the GPU kernel so both engines ship identical supermer sets. prev's
// rows are truncated and reused when provided.
func cpuBuildSupermers(cfg Config, destMap []uint16, nProc int, data []byte, prev [][]byte) ([][]byte, kernels.WorkMeter, error) {
	var m kernels.WorkMeter
	out := prev
	if len(out) != nProc {
		out = make([][]byte, nProc)
	}
	for d := range out {
		out[d] = out[d][:0]
	}
	mc := cfg.minimizerConfig()
	wire := kernels.SupermerWire{K: cfg.K, Window: cfg.Window}
	m.AddBytes(len(data))
	// Per-base rolling cost and per-k-mer minimizer cost.
	nBases := 0
	for _, ch := range data {
		if cfg.Enc.Valid(ch) {
			nBases++
		}
	}
	m.AddOps(len(data) * kernels.OpsEncodeBase)
	m.AddOps(nBases * kernels.OpsKmerRoll)
	err := minimizer.BuildWindowed(cfg.Enc, data, mc, func(s minimizer.Supermer) {
		m.AddItems(s.NKmers)
		m.AddOps(s.NKmers * (mc.K - mc.M + 1) * kernels.OpsMinimizerCand)
		m.AddOps(s.Len(mc.K) * kernels.OpsPackBase)
		var dest int
		if destMap != nil {
			m.AddOps(kernels.OpsEmit)
			m.AddBytes(2)
			dest = int(destMap[s.Min])
		} else {
			m.AddOps(kernels.OpsHash + kernels.OpsDestSelect + kernels.OpsEmit)
			dest = kernels.DestOf(uint64(s.Min), nProc)
		}
		out[dest] = wire.Encode(out[dest], &s)
		m.AddBytes(wire.Stride())
	})
	if err != nil {
		return nil, m, err
	}
	return out, m, nil
}

// cpuCountKmers is the scalar COUNTKMER of Alg. 1 over an open-addressing
// table (the same structure the GPU uses, without atomics), consuming the
// received per-source parts in place.
func cpuCountKmers(cfg Config, table *kcount.Table, bloom *kcount.Bloom, parts [][]uint64) kernels.WorkMeter {
	var m kernels.WorkMeter
	for _, part := range parts {
		for _, key := range part {
			countOne(table, bloom, key, &m)
		}
	}
	return m
}

// countOne inserts one received k-mer, routing first sightings through the
// Bloom filter when the singleton pre-filter is active (BFCounter scheme:
// a key enters the table on its second sighting, with count 2 so surviving
// counts stay exact).
func countOne(table *kcount.Table, bloom *kcount.Bloom, key uint64, m *kernels.WorkMeter) {
	m.AddItems(1)
	if bloom != nil {
		m.AddOps(bloom.Hashes() * kernels.OpsHash)
		m.AddBytes(bloom.Hashes()) // one bit-word touch per hash
		if !bloom.TestAndSet(key) {
			return // first sighting stays in the filter
		}
	}
	before := table.Probes
	isNew := table.Inc(key)
	if bloom != nil && isNew {
		// The Bloom filter absorbed the first sighting: account for it.
		table.Add(key, 1)
	}
	probes := int(table.Probes - before)
	m.AddOps(kernels.OpsHash + probes*kernels.OpsProbe + kernels.OpsEmit)
	m.AddBytes(8 + probes*8 + 4)
}

// cpuCountSupermers extracts k-mers from received supermers and counts them
// (Alg. 2 COUNTKMER), consuming the received per-source parts in place. The
// received bytes are exchanged data: a decode failure surfaces as an error,
// never a panic.
func cpuCountSupermers(cfg Config, table *kcount.Table, bloom *kcount.Bloom, parts [][]byte) (kernels.WorkMeter, error) {
	var m kernels.WorkMeter
	wire := kernels.SupermerWire{K: cfg.K, Window: cfg.Window}
	stride := wire.Stride()
	for _, recv := range parts {
		n, err := wire.Count(recv)
		if err != nil {
			return m, err
		}
		for i := 0; i < n; i++ {
			seq, nk, err := wire.Decode(recv[i*stride:])
			if err != nil {
				return m, err
			}
			m.AddBytes(stride)
			var kw uint64
			for j := 0; j < cfg.K-1; j++ {
				kw = kw<<2 | uint64(seq.At(j))
				m.AddOps(kernels.OpsKmerRoll)
			}
			for j := 0; j < nk; j++ {
				kw = (kw<<2 | uint64(seq.At(j+cfg.K-1))) & kmerMask(cfg.K)
				m.AddOps(kernels.OpsKmerRoll)
				countOne(table, bloom, kw, &m)
			}
		}
	}
	return m, nil
}

func kmerMask(k int) uint64 {
	if k >= 32 {
		return ^uint64(0)
	}
	return (uint64(1) << (2 * uint(k))) - 1
}
