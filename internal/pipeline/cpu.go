package pipeline

import (
	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/fault"
	"dedukt/internal/kcount"
	"dedukt/internal/kernels"
	"dedukt/internal/minimizer"
	"dedukt/internal/mpisim"
	"dedukt/internal/obs"
)

// runCPURank executes the scalar baseline (Alg. 1) or the CPU-supermer
// ablation for one rank, metering abstract work with the same constants the
// GPU kernels use and converting it to Power9 time via the layout's
// CPUModel.
func runCPURank(cfg Config, destMap []uint16, inj *fault.Injector, c *mpisim.Comm, reads []fastq.Record, out *rankOutcome) error {
	model := *cfg.Layout.CPU
	chunks := chunkReads(reads, cfg.RoundBases)
	rounds, err := globalRounds(c, len(chunks))
	if err != nil {
		return err
	}
	out.rounds = rounds
	table := kcount.NewTable(1, cfg.Probing)
	var bloom *kcount.Bloom
	if cfg.FilterSingletons {
		fp := cfg.FilterFP
		if fp == 0 {
			fp = 0.01
		}
		// Size for this rank's expected distinct arrivals: its share of
		// the partition's k-mers is bounded by its share of the input.
		expected := 0
		for _, r := range reads {
			expected += len(r.Seq)
		}
		bloom, err = kcount.NewBloom(expected+1, fp)
		if err != nil {
			return err
		}
	}
	rec := cfg.Obs
	rank := c.Rank()
	wire := kernels.SupermerWire{K: cfg.K, Window: cfg.Window}
	ex := &exchanger{c: c, inj: inj, retries: cfg.maxRetries(), out: out, rec: rec}

	for r := 0; r < rounds; r++ {
		if err := killOrStall(inj, c, r, rec); err != nil {
			return err
		}
		buf := buildBuffer(chunkFor(chunks, r))
		data := buf.Data()

		// Parse & process.
		sp := rec.Begin(rank, r, obs.PhaseParse)
		var (
			sendWords [][]uint64
			sendWire  [][]byte
			meter     kernels.WorkMeter
		)
		if cfg.Mode == KmerMode {
			sendWords, meter = cpuParseKmers(cfg, c.Size(), data)
		} else {
			sendWire, meter, err = cpuBuildSupermers(cfg, destMap, c.Size(), data)
			if err != nil {
				sp.End(0, 0)
				return err
			}
		}
		parseModeled := model.RankTimeLifted(meter.Ops, meter.Bytes, meter.Items, cfg.CPULoadLift)
		out.parse += parseModeled
		out.parseOps += meter.Ops

		// Exchange (no staging legs on the CPU pipeline).
		counts := make([]int, c.Size())
		var roundSent uint64
		if cfg.Mode == KmerMode {
			for d, part := range sendWords {
				counts[d] = len(part)
				roundSent += uint64(len(part))
				out.payloadSent += 8 * uint64(len(part))
			}
		} else {
			for d, part := range sendWire {
				counts[d] = len(part) / wire.Stride()
				roundSent += uint64(len(part) / wire.Stride())
				out.payloadSent += uint64(len(part))
			}
		}
		out.itemsSent += roundSent
		sp.End(parseModeled, roundSent)

		sp = rec.Begin(rank, r, obs.PhaseExchange)
		expect, err := ex.announce(counts)
		if err != nil {
			sp.End(0, 0)
			return err
		}

		var recvWords []uint64
		var recvWire []byte
		var roundRecv uint64
		if cfg.Mode == KmerMode {
			recv, err := ex.exchangeWords(r, sendWords, expect)
			if err != nil {
				sp.End(0, 0)
				return err
			}
			recvWords = flattenWords(recv)
			roundRecv = uint64(len(recvWords))
		} else {
			recv, err := ex.exchangeWire(r, wire, sendWire, expect)
			if err != nil {
				sp.End(0, 0)
				return err
			}
			recvWire = flattenBytes(recv)
			roundRecv = uint64(len(recvWire) / wire.Stride())
		}
		sp.End(0, roundRecv)

		// Count into the persistent per-rank table.
		sp = rec.Begin(rank, r, obs.PhaseCount)
		var cmeter kernels.WorkMeter
		if cfg.Mode == KmerMode {
			cmeter = cpuCountKmers(cfg, table, bloom, recvWords)
		} else {
			cmeter, err = cpuCountSupermers(cfg, table, bloom, recvWire)
			if err != nil {
				sp.End(0, 0)
				return err
			}
		}
		countModeled := model.RankTimeLifted(cmeter.Ops, cmeter.Bytes, cmeter.Items, cfg.CPULoadLift)
		out.count += countModeled
		out.countOps += cmeter.Ops
		sp.End(countModeled, roundRecv)
	}
	out.counted = table.TotalCount()
	out.distinct = uint64(table.Len())
	out.hist = table.Histogram()
	out.top = table.TopK(topKPerRank)
	if cfg.KeepTables {
		out.table = table
	}
	return nil
}

// cpuParseKmers is the scalar PARSEKMER of Alg. 1: a rolling sliding-window
// parse, one hash per k-mer, append to the destination's outgoing vector.
func cpuParseKmers(cfg Config, nProc int, data []byte) ([][]uint64, kernels.WorkMeter) {
	var m kernels.WorkMeter
	out := make([][]uint64, nProc)
	k, enc := cfg.K, cfg.Enc
	var kw uint64
	valid := 0
	m.AddBytes(len(data)) // one streaming read of the partition
	for _, ch := range data {
		code, ok := enc.Encode(ch)
		m.AddOps(kernels.OpsEncodeBase)
		if !ok {
			valid = 0
			continue
		}
		kw = (kw<<2 | uint64(code)) & kmerMask(k)
		m.AddOps(kernels.OpsKmerRoll)
		valid++
		if valid < k {
			continue
		}
		key := kw
		if cfg.Canonical {
			key = uint64(dna.Kmer(key).Canonical(enc, k))
			m.AddOps(k * kernels.OpsKmerRoll)
		}
		m.AddOps(kernels.OpsHash + kernels.OpsDestSelect + kernels.OpsEmit)
		m.AddItems(1)
		dest := kernels.DestOf(key, nProc)
		out[dest] = append(out[dest], key)
		m.AddBytes(8)
	}
	return out, m
}

// cpuBuildSupermers is the scalar BUILDSUPERMER of Alg. 2, windowed exactly
// like the GPU kernel so both engines ship identical supermer sets.
func cpuBuildSupermers(cfg Config, destMap []uint16, nProc int, data []byte) ([][]byte, kernels.WorkMeter, error) {
	var m kernels.WorkMeter
	out := make([][]byte, nProc)
	mc := cfg.minimizerConfig()
	wire := kernels.SupermerWire{K: cfg.K, Window: cfg.Window}
	m.AddBytes(len(data))
	// Per-base rolling cost and per-k-mer minimizer cost.
	nBases := 0
	for _, ch := range data {
		if cfg.Enc.Valid(ch) {
			nBases++
		}
	}
	m.AddOps(len(data) * kernels.OpsEncodeBase)
	m.AddOps(nBases * kernels.OpsKmerRoll)
	err := minimizer.BuildWindowed(cfg.Enc, data, mc, func(s minimizer.Supermer) {
		m.AddItems(s.NKmers)
		m.AddOps(s.NKmers * (mc.K - mc.M + 1) * kernels.OpsMinimizerCand)
		m.AddOps(s.Len(mc.K) * kernels.OpsPackBase)
		var dest int
		if destMap != nil {
			m.AddOps(kernels.OpsEmit)
			m.AddBytes(2)
			dest = int(destMap[s.Min])
		} else {
			m.AddOps(kernels.OpsHash + kernels.OpsDestSelect + kernels.OpsEmit)
			dest = kernels.DestOf(uint64(s.Min), nProc)
		}
		out[dest] = wire.Encode(out[dest], &s)
		m.AddBytes(wire.Stride())
	})
	if err != nil {
		return nil, m, err
	}
	return out, m, nil
}

// cpuCountKmers is the scalar COUNTKMER of Alg. 1 over an open-addressing
// table (the same structure the GPU uses, without atomics).
func cpuCountKmers(cfg Config, table *kcount.Table, bloom *kcount.Bloom, recv []uint64) kernels.WorkMeter {
	var m kernels.WorkMeter
	for _, key := range recv {
		countOne(table, bloom, key, &m)
	}
	return m
}

// countOne inserts one received k-mer, routing first sightings through the
// Bloom filter when the singleton pre-filter is active (BFCounter scheme:
// a key enters the table on its second sighting, with count 2 so surviving
// counts stay exact).
func countOne(table *kcount.Table, bloom *kcount.Bloom, key uint64, m *kernels.WorkMeter) {
	m.AddItems(1)
	if bloom != nil {
		m.AddOps(bloom.Hashes() * kernels.OpsHash)
		m.AddBytes(bloom.Hashes()) // one bit-word touch per hash
		if !bloom.TestAndSet(key) {
			return // first sighting stays in the filter
		}
	}
	before := table.Probes
	isNew := table.Inc(key)
	if bloom != nil && isNew {
		// The Bloom filter absorbed the first sighting: account for it.
		table.Add(key, 1)
	}
	probes := int(table.Probes - before)
	m.AddOps(kernels.OpsHash + probes*kernels.OpsProbe + kernels.OpsEmit)
	m.AddBytes(8 + probes*8 + 4)
}

// cpuCountSupermers extracts k-mers from received supermers and counts them
// (Alg. 2 COUNTKMER). The received bytes are exchanged data: a decode
// failure surfaces as an error, never a panic.
func cpuCountSupermers(cfg Config, table *kcount.Table, bloom *kcount.Bloom, recv []byte) (kernels.WorkMeter, error) {
	var m kernels.WorkMeter
	wire := kernels.SupermerWire{K: cfg.K, Window: cfg.Window}
	stride := wire.Stride()
	n, err := wire.Count(recv)
	if err != nil {
		return m, err
	}
	for i := 0; i < n; i++ {
		seq, nk, err := wire.Decode(recv[i*stride:])
		if err != nil {
			return m, err
		}
		m.AddBytes(stride)
		var kw uint64
		for j := 0; j < cfg.K-1; j++ {
			kw = kw<<2 | uint64(seq.At(j))
			m.AddOps(kernels.OpsKmerRoll)
		}
		for j := 0; j < nk; j++ {
			kw = (kw<<2 | uint64(seq.At(j+cfg.K-1))) & kmerMask(cfg.K)
			m.AddOps(kernels.OpsKmerRoll)
			countOne(table, bloom, kw, &m)
		}
	}
	return m, nil
}

func kmerMask(k int) uint64 {
	if k >= 32 {
		return ^uint64(0)
	}
	return (uint64(1) << (2 * uint(k))) - 1
}
