package pipeline

import (
	"testing"
)

func TestBalancedPartitionReducesImbalance(t *testing.T) {
	// §VII future work, implemented: frequency-aware minimizer assignment
	// must (a) count identically, (b) keep the k-mer→rank function
	// consistent (oracle equality implies it), and (c) cut the supermer
	// load imbalance versus hash assignment.
	reads := testReads(t, 40_000, 10)
	layout := smallGPULayout(2)
	hashCfg := Default(layout, SupermerMode)
	balCfg := hashCfg
	balCfg.BalancedPartition = true

	resHash, err := Run(hashCfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	resBal, err := Run(balCfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, balCfg, reads, resBal)
	if resBal.TotalKmers != resHash.TotalKmers || resBal.DistinctKmers != resHash.DistinctKmers {
		t.Fatal("balanced partitioning changed counting results")
	}
	liHash, liBal := resHash.LoadImbalance(), resBal.LoadImbalance()
	if liBal >= liHash {
		t.Fatalf("balanced imbalance %.3f not below hash imbalance %.3f", liBal, liHash)
	}
	t.Logf("supermer load imbalance: hash %.3f -> balanced %.3f", liHash, liBal)
}

func TestBalancedPartitionCPU(t *testing.T) {
	reads := testReads(t, 15_000, 6)
	layout := smallGPULayout(1)
	_ = layout
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.BalancedPartition = true
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, cfg, reads, res)
}

func TestBalancedPartitionValidation(t *testing.T) {
	cfg := Default(smallGPULayout(1), KmerMode)
	cfg.BalancedPartition = true
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("balanced partitioning in kmer mode should be rejected")
	}
	cfg = Default(smallGPULayout(1), SupermerMode)
	cfg.BalancedPartition = true
	cfg.M = 13
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("balanced partitioning with m=13 should be rejected")
	}
}

func TestBuildBalancedMapProperties(t *testing.T) {
	reads := testReads(t, 10_000, 4)
	cfg := Default(smallGPULayout(1), SupermerMode)
	m := buildBalancedMap(cfg, reads)
	if len(m) != 1<<(2*uint(cfg.M)) {
		t.Fatalf("map has %d entries, want 4^%d", len(m), cfg.M)
	}
	p := cfg.Layout.Ranks()
	for bin, rank := range m {
		if int(rank) >= p {
			t.Fatalf("bin %d assigned to out-of-range rank %d", bin, rank)
		}
	}
	// Deterministic.
	m2 := buildBalancedMap(cfg, reads)
	for i := range m {
		if m[i] != m2[i] {
			t.Fatal("balanced map is not deterministic")
		}
	}
}
