package pipeline

import (
	"reflect"
	"testing"
	"time"

	"dedukt/internal/cluster"
	"dedukt/internal/fastq"
	"dedukt/internal/fault"
)

// runPair runs the same configuration serially and overlapped and returns
// both results.
func runPair(t *testing.T, cfg Config, reads []fastq.Record) (serial, overlapped *Result) {
	t.Helper()
	cfg.Overlap = false
	s, err := Run(cfg, reads)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	cfg.Overlap = true
	o, err := Run(cfg, reads)
	if err != nil {
		t.Fatalf("overlapped run: %v", err)
	}
	return s, o
}

// TestOverlapMatchesSerial checks that the overlapped schedule is a pure
// latency optimization: for every engine and exchange mode, with and without
// injected payload faults, the overlapped run produces exactly the results
// of the bulk-synchronous baseline (and both match the serial oracle).
func TestOverlapMatchesSerial(t *testing.T) {
	reads := testReads(t, 20_000, 8)
	layouts := map[string]cluster.Layout{
		"gpu": smallGPULayout(1),
		"cpu": func() cluster.Layout {
			l := cluster.SummitCPU(1)
			l.RanksPerNode = 6
			l.Net.RanksPerNode = 6
			return l
		}(),
	}
	faults := map[string]fault.Config{
		"clean": {},
		"faulted": {
			Seed: 11, Delay: 0.1, DelayFor: 200 * time.Microsecond,
			Drop: 0.04, Corrupt: 0.04,
		},
	}
	for engName, layout := range layouts {
		for _, mode := range []Mode{KmerMode, SupermerMode} {
			for fName, fc := range faults {
				for _, exch := range []Exchange{ExchangeFlat, ExchangeHier} {
					t.Run(engName+"/"+mode.String()+"/"+fName+"/"+exch.String(), func(t *testing.T) {
						cfg := Default(layout, mode)
						cfg.RoundBases = 6000 // force a multi-round run
						cfg.Fault = fc
						cfg.Exchange = exch
						if exch == ExchangeHier {
							// 3 fabric nodes of 2 out of the 6 test ranks.
							cfg.Layout.Net.RanksPerNode = 2
						}
						serial, overlapped := runPair(t, cfg, reads)
						if serial.Rounds < 2 {
							t.Fatalf("want a multi-round run, got %d rounds", serial.Rounds)
						}
						if overlapped.Rounds != serial.Rounds {
							t.Fatalf("round counts differ: serial %d, overlapped %d", serial.Rounds, overlapped.Rounds)
						}
						if !overlapped.Overlap || serial.Overlap {
							t.Fatal("Result.Overlap does not reflect the schedule")
						}
						if serial.Incomplete || overlapped.Incomplete {
							t.Fatal("retry budget exhausted; pick a friendlier seed")
						}
						if overlapped.TotalKmers != serial.TotalKmers {
							t.Fatalf("TotalKmers: serial %d, overlapped %d", serial.TotalKmers, overlapped.TotalKmers)
						}
						if overlapped.DistinctKmers != serial.DistinctKmers {
							t.Fatalf("DistinctKmers: serial %d, overlapped %d", serial.DistinctKmers, overlapped.DistinctKmers)
						}
						if !reflect.DeepEqual(overlapped.Histogram.Counts, serial.Histogram.Counts) {
							t.Fatal("histograms differ between schedules")
						}
						if !reflect.DeepEqual(overlapped.TopKmers, serial.TopKmers) {
							t.Fatal("top-k differs between schedules")
						}
						checkAgainstOracle(t, cfg, reads, overlapped)
					})
				}
			}
		}
	}
}

// TestModeledTotalOverlapRule pins the steady-state accounting: an
// overlapped multi-round run is bounded by max(compute, exchange) plus one
// round of pipeline fill, while serial runs add the phases.
func TestModeledTotalOverlapRule(t *testing.T) {
	res := &Result{Rounds: 4}
	res.Modeled.Parse = 30 * time.Millisecond
	res.Modeled.Count = 10 * time.Millisecond
	res.Modeled.Exchange = 100 * time.Millisecond

	if got, want := res.ModeledTotal(), 140*time.Millisecond; got != want {
		t.Fatalf("serial ModeledTotal = %v, want %v", got, want)
	}
	res.Overlap = true
	// Exchange-bound: exchange dominates, one round of compute fills the pipe.
	if got, want := res.ModeledTotal(), 110*time.Millisecond; got != want {
		t.Fatalf("overlapped exchange-bound ModeledTotal = %v, want %v", got, want)
	}
	// Compute-bound: exchange fully hidden.
	res.Modeled.Exchange = 20 * time.Millisecond
	if got, want := res.ModeledTotal(), 50*time.Millisecond; got != want {
		t.Fatalf("overlapped compute-bound ModeledTotal = %v, want %v", got, want)
	}
	// Single round: nothing to overlap with.
	res.Rounds = 1
	if got, want := res.ModeledTotal(), 60*time.Millisecond; got != want {
		t.Fatalf("single-round ModeledTotal = %v, want %v", got, want)
	}
}

// TestRoundLoopAllocs pins the hot round loop's marginal allocation cost:
// doubling the round count over the same input may only add a small
// per-round overhead (pooled scratch, parity buffers), not per-item
// allocations. Regressions that reintroduce per-round flattening or
// per-part framing garbage trip this.
func TestRoundLoopAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("alloc counts are inflated by the race detector")
	}
	reads := testReads(t, 20_000, 8)
	run := func(roundBases int) (rounds int) {
		cfg := Default(smallGPULayout(1), SupermerMode)
		cfg.RoundBases = roundBases
		res, err := Run(cfg, reads)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	measure := func(roundBases int) (float64, int) {
		var rounds int
		allocs := testing.AllocsPerRun(3, func() {
			rounds = run(roundBases)
		})
		return allocs, rounds
	}
	aFew, rFew := measure(12_000)
	aMany, rMany := measure(3_000)
	if rMany <= rFew || rFew < 2 {
		t.Fatalf("want rMany > rFew >= 2, got %d and %d rounds", rMany, rFew)
	}
	perRound := (aMany - aFew) / float64(rMany-rFew)
	t.Logf("rounds %d -> %d, allocs %.0f -> %.0f, marginal %.1f allocs/round", rFew, rMany, aFew, aMany, perRound)
	// Measured ~360 allocs/round across the 6-rank world now that the
	// device pools per-worker launch scratch (lane access logs, fold
	// buffers) across a rank's kernel launches; what remains is per-launch
	// goroutine spawn and per-collective bookkeeping. Before pooling, every
	// launch re-grew each lane's access log — ~3600 allocs/round, and worse
	// still when framing allocated per part.
	const budget = 1200
	if perRound > budget {
		t.Fatalf("marginal cost %.1f allocs/round exceeds budget %d", perRound, budget)
	}
}
