package pipeline

import (
	"reflect"
	"testing"

	"dedukt/internal/cluster"
	"dedukt/internal/kernels"
	"dedukt/internal/obs"
)

// exchangeMessages reads back the run's fabric-message counter for one
// strategy label (get-or-create returns the same series the pipeline wrote).
func exchangeMessages(rec *obs.Recorder, strategy string) uint64 {
	return rec.Registry().Counter("pipeline_exchange_messages_total", "",
		obs.L("strategy", strategy)).Value()
}

// phaseSpans counts the recorded spans with the given phase name.
func phaseSpans(rec *obs.Recorder, phase string) int {
	n := 0
	for _, sp := range rec.Spans() {
		if sp.Phase == phase {
			n++
		}
	}
	return n
}

// TestHierMatchesFlatExactly is the strategy-equivalence core of the
// hierarchical exchange: on a genuine multi-node world, flat and hier runs
// must agree bit-for-bit — totals, per-rank loads, histogram, top-k — while
// the message metric records the P² → (P/RanksPerNode)² collapse and the
// hier run emits its gather/leader_alltoall/scatter span triple.
func TestHierMatchesFlatExactly(t *testing.T) {
	reads := testReads(t, 12_000, 5)
	layout := smallGPULayout(2) // 12 ranks, 2 fabric nodes of 6
	p := layout.Ranks()
	rpn := layout.Net.RanksPerNode
	for _, mode := range []Mode{KmerMode, SupermerMode} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(exch Exchange) (*Result, *obs.Recorder) {
				cfg := Default(layout, mode)
				cfg.Exchange = exch
				cfg.RoundBases = 3000 // multi-round: the metric must scale with rounds
				cfg.Obs = obs.NewRecorder(p)
				res, err := Run(cfg, reads)
				if err != nil {
					t.Fatalf("%v run: %v", exch, err)
				}
				return res, cfg.Obs
			}
			flat, flatRec := run(ExchangeFlat)
			hier, hierRec := run(ExchangeHier)

			if flat.Rounds < 2 || hier.Rounds != flat.Rounds {
				t.Fatalf("rounds: flat %d, hier %d (want equal, multi-round)", flat.Rounds, hier.Rounds)
			}
			if hier.TotalKmers != flat.TotalKmers || hier.DistinctKmers != flat.DistinctKmers {
				t.Fatalf("totals differ: flat %d/%d, hier %d/%d",
					flat.TotalKmers, flat.DistinctKmers, hier.TotalKmers, hier.DistinctKmers)
			}
			if !reflect.DeepEqual(hier.PerRankKmers, flat.PerRankKmers) {
				t.Fatalf("per-rank loads differ:\n flat %v\n hier %v", flat.PerRankKmers, hier.PerRankKmers)
			}
			if !reflect.DeepEqual(hier.Histogram.Counts, flat.Histogram.Counts) {
				t.Fatal("histograms differ between strategies")
			}
			if !reflect.DeepEqual(hier.TopKmers, flat.TopKmers) {
				t.Fatal("top-k differs between strategies")
			}
			cfg := Default(layout, mode)
			checkAgainstOracle(t, cfg, reads, hier)

			// The message metric: P² per flat round collapses to L² per hier
			// round, L = P/RanksPerNode.
			wantFlat := uint64(flat.Rounds * kernels.FlatExchangeMessages(p))
			if got := exchangeMessages(flatRec, "flat"); got != wantFlat {
				t.Fatalf("flat messages = %d, want %d (%d rounds × %d²)", got, wantFlat, flat.Rounds, p)
			}
			wantHier := uint64(hier.Rounds * kernels.HierExchangeMessages(p, rpn))
			if got := exchangeMessages(hierRec, "hier"); got != wantHier {
				t.Fatalf("hier messages = %d, want %d (%d rounds × %d²)",
					got, wantHier, hier.Rounds, p/rpn)
			}
			if wantHier*uint64(rpn*rpn) != wantFlat {
				t.Fatalf("metric ratio %d/%d is not RanksPerNode²", wantFlat, wantHier)
			}

			// The hier run must stage through the gather → leader → scatter
			// spans; the flat run must not know those phases exist.
			for _, phase := range []string{obs.PhaseGather, obs.PhaseLeader, obs.PhaseScatter} {
				if n := phaseSpans(hierRec, phase); n != p*hier.Rounds {
					t.Fatalf("hier %s spans = %d, want %d (ranks × rounds)", phase, n, p*hier.Rounds)
				}
				if n := phaseSpans(flatRec, phase); n != 0 {
					t.Fatalf("flat run recorded %d %s spans", n, phase)
				}
			}
		})
	}
}

// TestHierRaggedWorld pins satellite semantics: a world whose size is not a
// multiple of RanksPerNode groups into a ragged last node (ceil division)
// and still counts exactly — Validate accepts the configuration rather than
// rejecting it. 7 ranks at 3 per node = nodes of 3, 3 and 1.
func TestHierRaggedWorld(t *testing.T) {
	reads := testReads(t, 8_000, 4)
	layout := cluster.SummitGPU(7)
	layout.RanksPerNode = 1 // 7 single-rank nodes for the layout math
	layout.Net.RanksPerNode = 3

	cfg := Default(layout, SupermerMode)
	cfg.Exchange = ExchangeHier
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected a ragged hier world: %v", err)
	}
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, cfg, reads, res)

	flat := cfg
	flat.Exchange = ExchangeFlat
	want, err := Run(flat, reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalKmers != want.TotalKmers || res.DistinctKmers != want.DistinctKmers ||
		!reflect.DeepEqual(res.PerRankKmers, want.PerRankKmers) {
		t.Fatalf("ragged hier diverges from flat: %d/%d vs %d/%d",
			res.TotalKmers, res.DistinctKmers, want.TotalKmers, want.DistinctKmers)
	}
}

// TestGPUDirectElidesStageSpans: under -gpudirect no stage_h2d span may be
// recorded at all — the input leg streams straight to device memory and the
// exchange legs skip the host bounce — and the counted spectrum is
// unchanged.
func TestGPUDirectElidesStageSpans(t *testing.T) {
	reads := testReads(t, 10_000, 4)
	layout := smallGPULayout(2)
	run := func(direct bool, exch Exchange) (*Result, *obs.Recorder) {
		cfg := Default(layout, SupermerMode)
		cfg.GPUDirect = direct
		cfg.Exchange = exch
		cfg.RoundBases = 3000
		cfg.Obs = obs.NewRecorder(layout.Ranks())
		res, err := Run(cfg, reads)
		if err != nil {
			t.Fatal(err)
		}
		return res, cfg.Obs
	}
	staged, stagedRec := run(false, ExchangeFlat)
	if n := phaseSpans(stagedRec, obs.PhaseStageH2D); n == 0 {
		t.Fatal("staged run recorded no stage_h2d spans")
	}
	for _, exch := range []Exchange{ExchangeFlat, ExchangeHier} {
		direct, directRec := run(true, exch)
		if n := phaseSpans(directRec, obs.PhaseStageH2D); n != 0 {
			t.Fatalf("%v gpudirect run recorded %d stage_h2d spans, want 0", exch, n)
		}
		// Modeled exchange folds the staging legs in; dropping them must
		// strictly shrink it.
		if direct.Modeled.Exchange >= staged.Modeled.Exchange {
			t.Fatalf("%v gpudirect modeled exchange %v, staged %v — staging not elided",
				exch, direct.Modeled.Exchange, staged.Modeled.Exchange)
		}
		if direct.TotalKmers != staged.TotalKmers || direct.DistinctKmers != staged.DistinctKmers {
			t.Fatalf("%v gpudirect changed the spectrum: %d/%d vs %d/%d", exch,
				direct.TotalKmers, direct.DistinctKmers, staged.TotalKmers, staged.DistinctKmers)
		}
	}
}

// TestParseExchange pins the flag surface and Validate's strategy check.
func TestParseExchange(t *testing.T) {
	for s, want := range map[string]Exchange{"flat": ExchangeFlat, "hier": ExchangeHier} {
		got, err := ParseExchange(s)
		if err != nil || got != want {
			t.Fatalf("ParseExchange(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("Exchange(%v).String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseExchange("ring"); err == nil {
		t.Fatal("ParseExchange accepted an unknown strategy")
	}
	cfg := Default(smallGPULayout(1), KmerMode)
	cfg.Exchange = Exchange(99)
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown exchange strategy")
	}
}
