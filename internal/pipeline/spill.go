package pipeline

// Two-pass out-of-core counting (DESIGN.md §16): with Config.Spill set,
// pass 1 runs the normal round loop but each rank appends its *received*
// (verified) items into minimizer-partitioned, CRC-framed bin files under
// Spill.Dir instead of growing one table holding its whole spectrum
// slice; pass 2 streams one bin at a time into a small working-set table
// and folds the bin spectra into the rank outcome. Because a key's bin is
// a pure function of the key (kmer mode) or of its minimizer (supermer
// mode — every k-mer of a supermer shares the supermer's minimizer), bins
// partition each rank's key set and the merged result is bit-identical to
// the in-memory path.
//
// The on-disk format mirrors internal/recover's hardening idioms: magic +
// version + CRC-framed header, CRC per record, atomic tmp+rename sealing,
// and structured sentinels — a damaged bin can fail a run, but it can
// never silently count wrong data.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dedukt/internal/dna"
	"dedukt/internal/kernels"
	"dedukt/internal/minimizer"
	"dedukt/internal/obs"
)

// Sentinel errors of the spill-bin reader; test with errors.Is. They
// mirror internal/recover's vocabulary (ErrTruncated/ErrChecksum/
// ErrMismatch) under spill-specific identities so callers can tell which
// durable layer failed.
var (
	// ErrSpillTruncated marks a bin file that ended inside its declared
	// structure (header or record cut short).
	ErrSpillTruncated = errors.New("pipeline: truncated spill bin")
	// ErrSpillChecksum marks a structurally complete bin whose CRC32 does
	// not match its contents.
	ErrSpillChecksum = errors.New("pipeline: spill bin checksum mismatch")
	// ErrSpillMismatch marks a bin that does not belong to this run: wrong
	// magic/version, a fingerprint for a different configuration, wrong
	// rank/bin coordinates, or a record whose declared item count cannot
	// describe its payload.
	ErrSpillMismatch = errors.New("pipeline: spill bin does not match this run")
)

// Spill bin file framing (all integers little-endian):
//
//	magic   "DKSB"   4 bytes
//	version uint16   (1)
//	rank    uint32   original rank id that owns the bin
//	bin     uint32   bin index on that rank
//	bins    uint32   total bins per rank this run
//	fphash  uint64   recover.Fingerprint.Hash() of the run
//	crc32   uint32   IEEE, over the 22 header bytes after the magic
//
// followed by zero or more records:
//
//	items   uint32   exchanged units in the payload (words or images)
//	length  uint32   payload bytes
//	crc32   uint32   IEEE, over the payload
//	payload length bytes (LE uint64 k-mer keys, or supermer wire images)
//
// EOF at a record boundary is a clean end; EOF inside a record is
// ErrSpillTruncated.
const (
	spillMagic      = "DKSB"
	spillVersion    = 1
	spillHeaderLen  = 4 + 22 + 4
	spillExt        = ".spill"
	spillTmpSuffix  = ".spill.tmp"
	spillQuarantine = ".partial"
	// maxSpillRecord caps one record's payload allocation; real records
	// are bounded by a round's received payload, far below this.
	maxSpillRecord = 1 << 28
)

// spillHeader identifies one bin file.
type spillHeader struct {
	rank, bin, bins int
	fphash          uint64
}

// writeSpillHeader encodes the CRC-framed file header.
func writeSpillHeader(w io.Writer, h spillHeader) error {
	var buf [spillHeaderLen]byte
	copy(buf[:4], spillMagic)
	binary.LittleEndian.PutUint16(buf[4:6], spillVersion)
	binary.LittleEndian.PutUint32(buf[6:10], uint32(h.rank))
	binary.LittleEndian.PutUint32(buf[10:14], uint32(h.bin))
	binary.LittleEndian.PutUint32(buf[14:18], uint32(h.bins))
	binary.LittleEndian.PutUint64(buf[18:26], h.fphash)
	binary.LittleEndian.PutUint32(buf[26:30], crc32.ChecksumIEEE(buf[4:26]))
	_, err := w.Write(buf[:])
	return err
}

// readSpillHeader decodes and validates the file header, returning
// ErrSpillTruncated / ErrSpillChecksum / ErrSpillMismatch on damage.
func readSpillHeader(r io.Reader) (spillHeader, error) {
	var buf [spillHeaderLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return spillHeader{}, fmt.Errorf("spill header: %w", spillEOF(err))
	}
	if string(buf[:4]) != spillMagic {
		return spillHeader{}, fmt.Errorf("spill magic %q: %w", buf[:4], ErrSpillMismatch)
	}
	if got, want := binary.LittleEndian.Uint32(buf[26:30]), crc32.ChecksumIEEE(buf[4:26]); got != want {
		return spillHeader{}, fmt.Errorf("spill header crc %08x != %08x: %w", got, want, ErrSpillChecksum)
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != spillVersion {
		return spillHeader{}, fmt.Errorf("spill version %d (want %d): %w", v, spillVersion, ErrSpillMismatch)
	}
	return spillHeader{
		rank:   int(binary.LittleEndian.Uint32(buf[6:10])),
		bin:    int(binary.LittleEndian.Uint32(buf[10:14])),
		bins:   int(binary.LittleEndian.Uint32(buf[14:18])),
		fphash: binary.LittleEndian.Uint64(buf[18:26]),
	}, nil
}

// appendSpillRecord frames one record onto dst.
func appendSpillRecord(dst []byte, payload []byte, items int) []byte {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(items))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readSpillBin decodes a bin stream: header, then records until a clean
// EOF, calling fn with each verified payload (valid only during the
// call — the buffer is reused). want, when non-nil, pins the expected
// coordinates so a misnamed or foreign file can never be counted.
// Damage surfaces as a sentinel-wrapped error, never a panic.
func readSpillBin(r io.Reader, want *spillHeader, fn func(payload []byte, items int) error) error {
	h, err := readSpillHeader(r)
	if err != nil {
		return err
	}
	if want != nil && h != *want {
		return fmt.Errorf("spill bin holds rank %d bin %d/%d run %016x, want rank %d bin %d/%d run %016x: %w",
			h.rank, h.bin, h.bins, h.fphash, want.rank, want.bin, want.bins, want.fphash, ErrSpillMismatch)
	}
	var hdr [12]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:1]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil // clean end at a record boundary
			}
			return fmt.Errorf("spill record header: %w", spillEOF(err))
		}
		if _, err := io.ReadFull(r, hdr[1:]); err != nil {
			return fmt.Errorf("spill record header: %w", spillEOF(err))
		}
		items := int(binary.LittleEndian.Uint32(hdr[0:4]))
		length := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxSpillRecord {
			return fmt.Errorf("spill record declares %d payload bytes: %w", length, ErrSpillMismatch)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("spill record payload: %w", spillEOF(err))
		}
		if got, want := binary.LittleEndian.Uint32(hdr[8:12]), crc32.ChecksumIEEE(payload); got != want {
			return fmt.Errorf("spill record crc %08x != %08x: %w", got, want, ErrSpillChecksum)
		}
		if err := fn(payload, items); err != nil {
			return err
		}
	}
}

// leUint64 decodes one little-endian word of a spill record payload.
func leUint64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// spillEOF maps io.ReadFull's end-of-input errors onto ErrSpillTruncated,
// keeping other I/O errors intact (the recover package's eofAs idiom).
func spillEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrSpillTruncated
	}
	return err
}

// spillBinsOf returns the effective bin count of a run, 0 when spilling
// is off (the Result convention: SpillBins echoes the mode).
func spillBinsOf(cfg Config) int {
	if cfg.Spill.Dir == "" {
		return 0
	}
	return cfg.Spill.bins()
}

// spillCtl is the run-wide spill state shared by every rank: the
// directory, bin geometry, run fingerprint, and the metrics the writers
// feed. Built once per run after the directory hygiene check.
type spillCtl struct {
	dir    string
	bins   int
	fphash uint64
	rec    *obs.Recorder
	// bytes and sealed are nil without a registry (the newExchanger
	// pattern: metric registration is guarded, recording is nil-checked).
	bytes  *obs.Counter
	sealed *obs.Counter
}

// newSpillCtl validates the spill directory and builds the shared state.
func newSpillCtl(cfg Config) (*spillCtl, error) {
	ctl := &spillCtl{
		dir:    cfg.Spill.Dir,
		bins:   cfg.Spill.bins(),
		fphash: buildFingerprint(cfg).Hash(),
		rec:    cfg.Obs,
	}
	if cfg.Obs != nil {
		if reg := cfg.Obs.Registry(); reg != nil {
			ctl.bytes = reg.Counter("pipeline_spill_bytes_total", "Payload bytes appended to spill bin files (pass 1).")
			ctl.sealed = reg.Counter("pipeline_spill_bins_total", "Spill bin files sealed for pass-2 counting.")
		}
	}
	if err := ctl.prepareDir(); err != nil {
		return nil, err
	}
	return ctl, nil
}

// prepareDir refuses a spill directory holding prior spill state — from
// a different configuration (counting into it would mix incompatible
// partitions), from an interrupted run (.spill.tmp), or quarantined by a
// degraded one (.partial). Spill bins are scratch, not a resume format:
// a fresh run always starts from an empty bin set, so any leftover is a
// refusal with a clear reason, never silent reuse. Unrelated files are
// ignored — a shared temp dir stays usable.
func (ctl *spillCtl) prepareDir() error {
	if err := os.MkdirAll(ctl.dir, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(ctl.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, spillTmpSuffix):
			return fmt.Errorf("pipeline: spill dir %s holds partial bin %s from an interrupted run; remove it or use a fresh directory", ctl.dir, name)
		case strings.HasSuffix(name, spillQuarantine):
			return fmt.Errorf("pipeline: spill dir %s holds quarantined bin %s from a degraded run; remove it or use a fresh directory", ctl.dir, name)
		case strings.HasSuffix(name, spillExt):
			f, err := os.Open(filepath.Join(ctl.dir, name))
			if err != nil {
				return err
			}
			h, err := readSpillHeader(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("pipeline: spill dir %s holds unreadable bin %s: %w", ctl.dir, name, err)
			}
			if h.fphash != ctl.fphash || h.bins != ctl.bins {
				return fmt.Errorf("pipeline: spill dir %s holds bin %s from a different configuration (run %016x, %d bins; this run %016x, %d bins): %w",
					ctl.dir, name, h.fphash, h.bins, ctl.fphash, ctl.bins, ErrSpillMismatch)
			}
			return fmt.Errorf("pipeline: spill dir %s holds leftover bin %s from a previous run of this configuration; remove it or use a fresh directory", ctl.dir, name)
		}
	}
	return nil
}

// rank builds one rank's private spill writer set.
func (ctl *spillCtl) rank(rank int) *rankSpill {
	return &rankSpill{
		ctl:   ctl,
		rank:  rank,
		wr:    make([]*spillBinWriter, ctl.bins),
		stage: make([][]byte, ctl.bins),
		items: make([]int, ctl.bins),
	}
}

// spillBinWriter is one open bin file, written as .spill.tmp and renamed
// to .spill at seal time (the recover package's atomic-write idiom), so a
// crash mid-run never leaves a file pass 2 would mistake for complete.
type spillBinWriter struct {
	f     *os.File
	bw    *bufio.Writer
	path  string // final .spill path
	frame []byte // pooled record-framing scratch
}

// rankSpill is one rank's pass-1 spill state: lazily opened bin writers
// plus per-round staging buffers that re-partition the received items
// into bins before appending one CRC record per non-empty bin.
type rankSpill struct {
	ctl   *spillCtl
	rank  int
	wr    []*spillBinWriter
	stage [][]byte
	items []int
}

// binPath returns the final path of one sealed bin file.
func (s *rankSpill) binPath(bin int) string {
	return filepath.Join(s.ctl.dir, fmt.Sprintf("r%04d-b%04d%s", s.rank, bin, spillExt))
}

// resetStage truncates the per-round staging buffers in place.
func (s *rankSpill) resetStage() {
	for b := range s.stage {
		s.stage[b] = s.stage[b][:0]
		s.items[b] = 0
	}
}

// spillWords re-partitions one round's received k-mer words into bins by
// key hash and appends each non-empty bin's staging as one record.
// Returns the items spilled (for the span) — the count hook's equivalent
// of the insert it defers to pass 2.
func (s *rankSpill) spillWords(parts [][]uint64) (uint64, error) {
	s.resetStage()
	var n uint64
	for _, part := range parts {
		for _, key := range part {
			b := kernels.SpillBinOf(key, s.ctl.bins)
			s.stage[b] = binary.LittleEndian.AppendUint64(s.stage[b], key)
			s.items[b]++
			n++
		}
	}
	return n, s.flushStage()
}

// spillWire re-partitions one round's received supermer images into bins
// by minimizer. The wire does not carry the minimizer, but every k-mer
// of a supermer shares it (BuildWindowed breaks runs on minimizer
// change), so it is recomputed from the image's first k-mer — the same
// pure function the sender used, keeping each distinct key in exactly
// one bin. The bytes are exchanged data: a decode failure is an error,
// never a panic.
func (s *rankSpill) spillWire(wire kernels.SupermerWire, mc minimizer.Config, parts [][]byte) (uint64, error) {
	s.resetStage()
	stride := wire.Stride()
	var n uint64
	for _, part := range parts {
		images, err := wire.Count(part)
		if err != nil {
			return n, err
		}
		for i := 0; i < images; i++ {
			img := part[i*stride : (i+1)*stride]
			seq, _, err := wire.Decode(img)
			if err != nil {
				return n, err
			}
			var first uint64
			for j := 0; j < mc.K; j++ {
				first = first<<2 | uint64(seq.At(j))
			}
			min := minimizer.Of(dna.Kmer(first), mc.K, mc.M, mc.Ord)
			b := minimizer.SpillBinOf(min, mc.M, mc.Ord, s.ctl.bins)
			s.stage[b] = append(s.stage[b], img...)
			s.items[b]++
			n++
		}
	}
	return n, s.flushStage()
}

// flushStage appends each non-empty staging buffer as one record to its
// bin writer, opening writers lazily so empty bins get no file.
func (s *rankSpill) flushStage() error {
	for b := range s.stage {
		if len(s.stage[b]) == 0 {
			continue
		}
		w := s.wr[b]
		if w == nil {
			path := s.binPath(b)
			f, err := os.Create(path + ".tmp") // r%04d-b%04d.spill.tmp
			if err != nil {
				return err
			}
			w = &spillBinWriter{f: f, bw: bufio.NewWriter(f), path: path}
			if err := writeSpillHeader(w.bw, spillHeader{rank: s.rank, bin: b, bins: s.ctl.bins, fphash: s.ctl.fphash}); err != nil {
				f.Close()
				return err
			}
			s.wr[b] = w
		}
		w.frame = appendSpillRecord(w.frame[:0], s.stage[b], s.items[b])
		if _, err := w.bw.Write(w.frame); err != nil {
			return err
		}
		if s.ctl.bytes != nil {
			s.ctl.bytes.Add(uint64(len(s.stage[b])))
		}
	}
	return nil
}

// seal flushes, closes and atomically renames every open bin from
// .spill.tmp to .spill — the boundary between pass 1 and pass 2. After
// seal, a crash leaves only complete, named bins (plus whatever pass 2
// has not yet removed); before it, only .tmp files a fresh run refuses.
func (s *rankSpill) seal() error {
	for _, w := range s.wr {
		if w == nil {
			continue
		}
		if err := w.bw.Flush(); err != nil {
			w.f.Close()
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		if err := os.Rename(w.path+".tmp", w.path); err != nil {
			return err
		}
		if s.ctl.sealed != nil {
			s.ctl.sealed.Inc()
		}
	}
	return nil
}

// readBin streams one sealed bin's verified records through fn. A bin
// that never opened a writer is empty — valid, zero records.
func (s *rankSpill) readBin(bin int, fn func(payload []byte, items int) error) error {
	if s.wr[bin] == nil {
		return nil
	}
	f, err := os.Open(s.binPath(bin))
	if err != nil {
		return err
	}
	defer f.Close()
	want := spillHeader{rank: s.rank, bin: bin, bins: s.ctl.bins, fphash: s.ctl.fphash}
	if err := readSpillBin(bufio.NewReader(f), &want, fn); err != nil {
		return fmt.Errorf("%s: %w", s.binPath(bin), err)
	}
	return nil
}

// cleanup disposes of this rank's bins after pass 2: removed outright on
// an exact run, renamed to .partial on a degraded one so the discarded
// state is quarantined for inspection rather than silently deleted.
// Failures are ignored — the counts are already folded; leftover files
// only make the next run's hygiene check refuse the directory.
func (s *rankSpill) cleanup(exact bool) {
	for b, w := range s.wr {
		if w == nil {
			continue
		}
		path := s.binPath(b)
		if exact {
			os.Remove(path)
		} else {
			os.Rename(path, path+spillQuarantine)
		}
	}
}
