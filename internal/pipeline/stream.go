package pipeline

import (
	"fmt"
	"io"
	"sync"

	"dedukt/internal/fastq"
	recov "dedukt/internal/recover"
)

// RunStream executes the configured pipeline over a streaming source,
// never materializing the dataset: each rank pulls bounded read chunks
// on demand from a shared producer, so the live working set stays under
// Config.MemBudgetBytes (counter tables excluded — they hold the output
// spectrum) regardless of input size. The spectrum is bit-identical to
// Run over the same records: k-mers are routed to their owning rank by
// key hash, so which rank parses a read never changes what is counted.
// The number of rounds is open-ended — ranks agree collectively, via a
// flag on each round's count announcement, when every rank has drained
// (see runRounds).
//
// Two Config features are rejected because they need the whole input up
// front: BalancedPartition (its minimizer-load profiling pass) and
// FilterSingletons (per-rank Bloom sizing). Preload the reads and use
// Run for those.
//
// With Config.Ckpt set, the run persists round-granularity checkpoints
// and survives rank death by shrink recovery (see ResumeStream and
// DESIGN.md §12); src must then be a fastq.CursorSource.
func RunStream(cfg Config, src fastq.Source) (*Result, error) {
	return runStream(cfg, src, nil)
}

// runStream is the shared core of RunStream (man == nil) and
// ResumeStream (man holds the validated checkpoint manifest and src is
// already fast-forwarded to its cursor).
func runStream(cfg Config, src fastq.Source, man *recov.Manifest) (*Result, error) {
	if err := validateRun(cfg); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("pipeline: nil stream source")
	}
	if cfg.BalancedPartition {
		return nil, fmt.Errorf("pipeline: BalancedPartition profiles the whole input before counting and cannot stream; preload the reads and use Run")
	}
	if cfg.FilterSingletons {
		return nil, fmt.Errorf("pipeline: FilterSingletons sizes its Bloom filter from the input size, unknown when streaming; preload the reads and use Run")
	}
	ckpt := cfg.Ckpt.Dir != ""
	if ckpt {
		if _, ok := src.(fastq.CursorSource); !ok {
			return nil, fmt.Errorf("pipeline: checkpointing needs a source with cursor support (got %T)", src)
		}
	}
	prod := &chunkProducer{src: src, maxBases: cfg.streamRoundBases(), track: ckpt}

	var ck *ckptCtl
	var rv *recoverRT
	var seats []*rankSeat
	if ckpt {
		ck = newCkptCtl(cfg, prod)
		if !cfg.Ckpt.NoShrink {
			rv = &recoverRT{ck: ck, prod: prod, reopen: cfg.Ckpt.Reopen, rec: cfg.Obs}
		}
	}
	world := cfg.Layout.Ranks()
	if man != nil {
		// Resuming: the producer has already delivered the checkpointed
		// prefix in the prior run; seed its tallies so Result reports the
		// whole input, and rebuild the manifest's (possibly shrunk) world.
		prod.reads, prod.bases = man.Reads, man.Bases
		var err error
		seats, err = seatsFromManifest(cfg, man, ck.fphash)
		if err != nil {
			return nil, err
		}
		world = len(seats)
	}
	sources := make([]chunkSource, world)
	for r := range sources {
		sources[r] = &streamHandle{prod: prod}
	}
	spl, err := maybeSpill(cfg)
	if err != nil {
		return nil, err
	}
	res, err := runWorld(cfg, nil, sources, nil, seats, ck, rv, spl)
	if err != nil {
		return nil, err
	}
	res.Streamed = true
	res.MemBudget = cfg.memBudget()
	res.InputReads = prod.reads
	res.InputBases = prod.bases
	res.Resumed = man != nil
	return res, nil
}

// chunkProducer cuts a shared Source into bounded chunks, handed to rank
// round loops in pull order. The cut points are deterministic — records
// are taken greedily until the next one would push the chunk past
// maxBases (a chunk always holds at least one record, so an oversized
// read still travels; the record that overflowed is retained as pending
// for the next chunk, never dropped) — but which rank receives which
// chunk depends on goroutine scheduling. That is safe because counting
// is partition-invariant: a k-mer's owning rank is a function of its key
// alone. A source error is sticky and surfaces on every subsequent pull,
// failing all ranks rather than silently truncating the input.
type chunkProducer struct {
	mu       sync.Mutex
	src      fastq.Source
	maxBases int
	pending  *fastq.Record // overflow record from the previous chunk
	done     bool
	err      error
	reads    uint64 // records delivered (retained past drain for Result)
	bases    uint64
	// track enables checkpoint cursor maintenance (requires src to be a
	// fastq.CursorSource); cur is the source position just before the
	// pending record was pulled, i.e. the replay point that re-delivers
	// it.
	track bool
	cur   fastq.Cursor
}

// fill appends the next chunk's records into buf, reporting whether the
// source continues past it. more is exact, not a guess: the producer
// stops filling only when a record is actually in hand that did not fit
// (it becomes pending, proving a next chunk exists) or when the source
// reports EOF.
func (p *chunkProducer) fill(buf *chunkBuf) (more bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return false, p.err
	}
	if p.done && p.pending == nil {
		return false, nil
	}
	bases := 0
	if p.pending != nil {
		bases += len(p.pending.Seq)
		buf.append(*p.pending)
		p.pending = nil
	}
	for !p.done {
		var pos fastq.Cursor
		if p.track {
			pos = p.src.(fastq.CursorSource).Cursor()
		}
		rec, err := p.src.Next()
		if err != nil {
			if err == io.EOF {
				p.done = true
				break
			}
			p.err = err
			return false, err
		}
		p.reads++
		p.bases += uint64(len(rec.Seq))
		if p.maxBases > 0 && bases > 0 && bases+len(rec.Seq) > p.maxBases {
			// Does not fit: retain it (deep-copied — the source reuses
			// its buffers) as the next chunk's first record.
			clone := rec.Clone()
			p.pending = &clone
			p.cur = pos
			return true, nil
		}
		bases += len(rec.Seq)
		buf.append(rec)
	}
	return p.pending != nil, nil
}

// ckptCursor returns the resume point as of the last delivered chunk:
// the source position from which a replay re-delivers exactly the
// records no chunk has carried yet, plus the read/base tallies of
// everything before it. A retained pending record has been pulled from
// the source but delivered to no round, so the cursor steps back over it
// — otherwise one read per checkpoint would vanish on resume.
func (p *chunkProducer) ckptCursor() (c fastq.Cursor, reads, bases uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pending != nil {
		return p.cur, p.reads - 1, p.bases - uint64(len(p.pending.Seq))
	}
	return p.src.(fastq.CursorSource).Cursor(), p.reads, p.bases
}

// reset re-feeds the producer from a reopened source during shrink
// recovery: the replayed rounds pull from src as if the run had just
// resumed from the checkpoint the cursor came from.
func (p *chunkProducer) reset(src fastq.Source, reads, bases uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.src = src
	p.pending = nil
	p.done = false
	p.err = nil
	p.reads = reads
	p.bases = bases
}

// streamHandle adapts one rank's view of the shared producer to the
// chunkSource interface, owning a reusable chunk buffer so steady-state
// pulls allocate nothing.
type streamHandle struct {
	prod *chunkProducer
	buf  chunkBuf
}

func (h *streamHandle) nextChunk() ([]fastq.Record, bool, error) {
	h.buf.reset()
	more, err := h.prod.fill(&h.buf)
	if err != nil {
		return nil, false, err
	}
	return h.buf.recs, more, nil
}

// chunkBuf accumulates one chunk's records with the sequence bytes in a
// single reusable arena. Only the bases survive the copy: the round loop
// concatenates sequences and never looks at IDs or qualities, so
// dropping them keeps the live per-base footprint minimal.
type chunkBuf struct {
	recs  []fastq.Record
	arena []byte
}

func (b *chunkBuf) reset() {
	b.recs = b.recs[:0]
	b.arena = b.arena[:0]
}

func (b *chunkBuf) append(rec fastq.Record) {
	off := len(b.arena)
	b.arena = append(b.arena, rec.Seq...)
	b.recs = append(b.recs, fastq.Record{Seq: b.arena[off:len(b.arena):len(b.arena)]})
}
