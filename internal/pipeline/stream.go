package pipeline

import (
	"fmt"
	"io"
	"sync"

	"dedukt/internal/fastq"
)

// RunStream executes the configured pipeline over a streaming source,
// never materializing the dataset: each rank pulls bounded read chunks
// on demand from a shared producer, so the live working set stays under
// Config.MemBudgetBytes (counter tables excluded — they hold the output
// spectrum) regardless of input size. The spectrum is bit-identical to
// Run over the same records: k-mers are routed to their owning rank by
// key hash, so which rank parses a read never changes what is counted.
// The number of rounds is open-ended — ranks agree collectively, via a
// flag on each round's count announcement, when every rank has drained
// (see runRounds).
//
// Two Config features are rejected because they need the whole input up
// front: BalancedPartition (its minimizer-load profiling pass) and
// FilterSingletons (per-rank Bloom sizing). Preload the reads and use
// Run for those.
func RunStream(cfg Config, src fastq.Source) (*Result, error) {
	if err := validateRun(cfg); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("pipeline: nil stream source")
	}
	if cfg.BalancedPartition {
		return nil, fmt.Errorf("pipeline: BalancedPartition profiles the whole input before counting and cannot stream; preload the reads and use Run")
	}
	if cfg.FilterSingletons {
		return nil, fmt.Errorf("pipeline: FilterSingletons sizes its Bloom filter from the input size, unknown when streaming; preload the reads and use Run")
	}
	p := cfg.Layout.Ranks()
	prod := &chunkProducer{src: src, maxBases: cfg.streamRoundBases()}
	sources := make([]chunkSource, p)
	for r := range sources {
		sources[r] = &streamHandle{prod: prod}
	}
	res, err := runWorld(cfg, nil, sources, nil)
	if err != nil {
		return nil, err
	}
	res.Streamed = true
	res.MemBudget = cfg.memBudget()
	res.InputReads = prod.reads
	res.InputBases = prod.bases
	return res, nil
}

// chunkProducer cuts a shared Source into bounded chunks, handed to rank
// round loops in pull order. The cut points are deterministic — records
// are taken greedily until the next one would push the chunk past
// maxBases (a chunk always holds at least one record, so an oversized
// read still travels; the record that overflowed is retained as pending
// for the next chunk, never dropped) — but which rank receives which
// chunk depends on goroutine scheduling. That is safe because counting
// is partition-invariant: a k-mer's owning rank is a function of its key
// alone. A source error is sticky and surfaces on every subsequent pull,
// failing all ranks rather than silently truncating the input.
type chunkProducer struct {
	mu       sync.Mutex
	src      fastq.Source
	maxBases int
	pending  *fastq.Record // overflow record from the previous chunk
	done     bool
	err      error
	reads    uint64 // records delivered (retained past drain for Result)
	bases    uint64
}

// fill appends the next chunk's records into buf, reporting whether the
// source continues past it. more is exact, not a guess: the producer
// stops filling only when a record is actually in hand that did not fit
// (it becomes pending, proving a next chunk exists) or when the source
// reports EOF.
func (p *chunkProducer) fill(buf *chunkBuf) (more bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return false, p.err
	}
	if p.done && p.pending == nil {
		return false, nil
	}
	bases := 0
	if p.pending != nil {
		bases += len(p.pending.Seq)
		buf.append(*p.pending)
		p.pending = nil
	}
	for !p.done {
		rec, err := p.src.Next()
		if err != nil {
			if err == io.EOF {
				p.done = true
				break
			}
			p.err = err
			return false, err
		}
		p.reads++
		p.bases += uint64(len(rec.Seq))
		if p.maxBases > 0 && bases > 0 && bases+len(rec.Seq) > p.maxBases {
			// Does not fit: retain it (deep-copied — the source reuses
			// its buffers) as the next chunk's first record.
			clone := rec.Clone()
			p.pending = &clone
			return true, nil
		}
		bases += len(rec.Seq)
		buf.append(rec)
	}
	return p.pending != nil, nil
}

// streamHandle adapts one rank's view of the shared producer to the
// chunkSource interface, owning a reusable chunk buffer so steady-state
// pulls allocate nothing.
type streamHandle struct {
	prod *chunkProducer
	buf  chunkBuf
}

func (h *streamHandle) nextChunk() ([]fastq.Record, bool, error) {
	h.buf.reset()
	more, err := h.prod.fill(&h.buf)
	if err != nil {
		return nil, false, err
	}
	return h.buf.recs, more, nil
}

// chunkBuf accumulates one chunk's records with the sequence bytes in a
// single reusable arena. Only the bases survive the copy: the round loop
// concatenates sequences and never looks at IDs or qualities, so
// dropping them keeps the live per-base footprint minimal.
type chunkBuf struct {
	recs  []fastq.Record
	arena []byte
}

func (b *chunkBuf) reset() {
	b.recs = b.recs[:0]
	b.arena = b.arena[:0]
}

func (b *chunkBuf) append(rec fastq.Record) {
	off := len(b.arena)
	b.arena = append(b.arena, rec.Seq...)
	b.recs = append(b.recs, fastq.Record{Seq: b.arena[off:len(b.arena):len(b.arena)]})
}
