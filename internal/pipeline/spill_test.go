package pipeline

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"dedukt/internal/cluster"
	"dedukt/internal/fastq"
	"dedukt/internal/fault"
	"dedukt/internal/genome"
)

// spillLeftovers lists the spill artifacts (bins, temps, quarantines)
// remaining in dir.
func spillLeftovers(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.Contains(e.Name(), spillExt) || strings.HasSuffix(e.Name(), spillQuarantine) {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestSpillMatchesInMemory is the out-of-core equivalence property at the
// heart of the spill mode: across engines, modes, schedules, exchange
// strategies, streaming, randomized k/m/window choices, and recoverable
// fault injection, the two-pass spill path must reproduce the in-memory
// spectrum bit-for-bit — counts, histogram, top-k, and per-rank loads —
// and leave no bin files behind on success.
func TestSpillMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	type tcase struct {
		engine   string
		streamed bool
		overlap  bool
		faulted  bool
		exch     Exchange
	}
	var cases []tcase
	for _, engine := range []string{"gpu", "cpu"} {
		for _, streamed := range []bool{false, true} {
			for _, overlap := range []bool{false, true} {
				for _, faulted := range []bool{false, true} {
					for _, exch := range []Exchange{ExchangeFlat, ExchangeHier} {
						cases = append(cases, tcase{engine, streamed, overlap, faulted, exch})
					}
				}
			}
		}
	}
	for i, tc := range cases {
		// Alternate the exchanged unit across cases so both wire formats
		// (and, in kmer mode, canonical folding every fourth case) cover
		// every other dimension.
		mode := []Mode{KmerMode, SupermerMode}[i%2]
		canonical := mode == KmerMode && i%4 == 0
		name := fmt.Sprintf("%s/%s/stream=%v/overlap=%v/faulted=%v/%s",
			tc.engine, mode, tc.streamed, tc.overlap, tc.faulted, tc.exch)
		// Per-case randomized operating point and dataset.
		k := []int{15, 17, 21}[rng.Intn(3)]
		m := []int{5, 7}[rng.Intn(2)]
		window := []int{9, 15}[rng.Intn(2)]
		reads := testReads(t, 6_000+rng.Intn(4_000), 3+rng.Float64()*2)
		t.Run(name, func(t *testing.T) {
			layout := smallGPULayout(1)
			if tc.engine == "cpu" {
				layout = smallCPULayout()
			}
			cfg := Default(layout, mode)
			cfg.K, cfg.M, cfg.Window = k, m, window
			cfg.Canonical = canonical
			cfg.Overlap = tc.overlap
			cfg.Exchange = tc.exch
			if tc.exch == ExchangeHier {
				cfg.Layout.Net.RanksPerNode = 2
			}
			if tc.faulted {
				cfg.Fault = fault.Config{
					Seed: uint64(200 + i), Delay: 0.02, DelayFor: 100 * time.Microsecond,
					Drop: 0.03, Corrupt: 0.02,
				}
				cfg.MaxRetries = 8 // plenty: every payload must recover
			}
			want, err := Run(cfg, reads)
			if err != nil {
				t.Fatal(err)
			}
			scfg := cfg
			scfg.Spill = SpillConfig{Dir: t.TempDir(), Bins: 7}
			var got *Result
			if tc.streamed {
				scfg.MemBudgetBytes = int64(cfg.Layout.Ranks() * streamBytesPerBase * 2_500)
				got, err = RunStream(scfg, fastq.NewSliceSource(reads))
			} else {
				got, err = Run(scfg, reads)
			}
			if err != nil {
				t.Fatal(err)
			}
			if !got.Spilled || got.SpillBins != 7 {
				t.Fatalf("spill accounting wrong: Spilled=%v SpillBins=%d", got.Spilled, got.SpillBins)
			}
			if tc.streamed && got.Rounds < 2 {
				t.Fatalf("streamed spill run should be multi-round, got %d rounds", got.Rounds)
			}
			if want.Incomplete || got.Incomplete {
				t.Fatalf("injected faults must recover fully (incomplete: in-memory=%v spilled=%v)",
					want.Incomplete, got.Incomplete)
			}
			sameCounts(t, want, got)
			if !reflect.DeepEqual(want.PerRankKmers, got.PerRankKmers) {
				t.Fatalf("per-rank loads differ:\n in-memory %v\n spilled   %v", want.PerRankKmers, got.PerRankKmers)
			}
			checkAgainstOracle(t, cfg, reads, got)
			if left := spillLeftovers(t, scfg.Spill.Dir); len(left) != 0 {
				t.Fatalf("exact run left spill artifacts behind: %v", left)
			}
		})
	}
}

// TestSpillDefaultBins: the zero Bins value runs with the documented
// default and reports it.
func TestSpillDefaultBins(t *testing.T) {
	reads := testReads(t, 5_000, 3)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.Spill = SpillConfig{Dir: t.TempDir()}
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spilled || res.SpillBins != defaultSpillBins {
		t.Fatalf("Spilled=%v SpillBins=%d, want true/%d", res.Spilled, res.SpillBins, defaultSpillBins)
	}
}

// TestSpillBoundedMemory is the out-of-core counting regression: stream a
// dataset whose spectrum footprint is ≥8× the working-set budget through
// the spill path and assert the sampled peak live heap stays under
// budget + a fixed slack. The in-memory path would hold the full
// per-rank tables — far above that ceiling — so the test fails if
// pass 2 ever regresses to materializing the whole spectrum slice.
func TestSpillBoundedMemory(t *testing.T) {
	const budget = int64(512 << 10)
	// Generate and write the dataset inside a helper so the read slice
	// dies before the baseline measurement. ErrRate 0 keeps the count
	// per genomic k-mer at the coverage; the spectrum is large because
	// the genome is, not because of error noise.
	dataset := func() string {
		g, err := genome.Generate("wide", genome.Config{
			Length: 1_200_000, RepeatFraction: 0.1, RepeatMinLen: 100,
			RepeatMaxLen: 300, GC: 0.5, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		prof := genome.DefaultLongReads()
		prof.MeanLen = 500
		prof.ErrRate = 0
		reads, err := genome.SimulateReads(g, 2, prof)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "wide.fastq")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := fastq.NewWriter(f)
		for _, rec := range reads {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}()

	layout := cluster.SummitCPU(1)
	layout.RanksPerNode = 2
	layout.Net.RanksPerNode = 2
	cfg := Default(layout, KmerMode)
	cfg.MemBudgetBytes = budget
	cfg.Spill = SpillConfig{Dir: t.TempDir(), Bins: 64}

	// Tighten the GC so sampled HeapAlloc tracks live data instead of
	// round-loop garbage awaiting collection.
	defer debug.SetGCPercent(debug.SetGCPercent(20))
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	sampler := startHeapSampler()

	src, err := fastq.OpenStream(dataset)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	res, err := RunStream(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	peak := sampler.Stop()

	if res.Rounds < 8 {
		t.Fatalf("want a deeply multi-round run, got %d rounds", res.Rounds)
	}
	// The spectrum must genuinely dwarf the budget: at ≥12 bytes per
	// distinct key (packed key + count, before load-factor headroom) the
	// single-table path could not fit budget+slack.
	if res.DistinctKmers*12 < uint64(8*budget) {
		t.Fatalf("spectrum footprint %d bytes is under 8x budget %d", res.DistinctKmers*12, 8*budget)
	}
	// Fixed slack: runtime overhead, the per-bin working-set tables, the
	// spill writers' buffers, and GC lag — everything except a
	// full-spectrum table.
	const slack = 16 << 20
	used := int64(peak) - int64(base.HeapAlloc)
	t.Logf("peak live heap over baseline: %.1f MiB (budget %.1f MiB, %d rounds, %d distinct)",
		float64(used)/(1<<20), float64(budget)/(1<<20), res.Rounds, res.DistinctKmers)
	if used > budget+slack {
		t.Fatalf("peak live heap %d bytes over baseline exceeds budget %d + slack %d", used, budget, slack)
	}
	if left := spillLeftovers(t, cfg.Spill.Dir); len(left) != 0 {
		t.Fatalf("exact run left spill artifacts behind: %v", left)
	}
}

// TestSpillQuarantineOnDegraded: when the retry budget exhausts and the
// run degrades to a lower bound, the degraded ranks' bins are renamed to
// .partial instead of deleted — discarded state is quarantined for
// inspection, never silently thrown away — and no live .spill files
// remain.
func TestSpillQuarantineOnDegraded(t *testing.T) {
	reads := testReads(t, 6_000, 3)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.Spill = SpillConfig{Dir: t.TempDir(), Bins: 5}
	cfg.Fault = fault.Config{Seed: 7, Drop: 0.8}
	cfg.MaxRetries = -1 // no retries: degrade immediately
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Fatal("run with Drop=0.8 and no retries should degrade")
	}
	left := spillLeftovers(t, cfg.Spill.Dir)
	partials := 0
	for _, name := range left {
		if !strings.HasSuffix(name, spillQuarantine) {
			t.Fatalf("degraded run left a non-quarantined artifact %s (all: %v)", name, left)
		}
		partials++
	}
	if partials == 0 {
		t.Fatal("degraded run should quarantine at least one bin as .partial")
	}
	// The quarantined directory is refused by the next run, not reused.
	if _, err := Run(cfg, reads); err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("dir with .partial bins: got %v, want quarantine refusal", err)
	}
}

// TestSpillRefusesDirtyDir: pre-existing spill state — from another
// configuration, an interrupted run, or a completed one — is refused
// with a clear, specific error. Only a clean (or unrelated-files-only)
// directory is accepted.
func TestSpillRefusesDirtyDir(t *testing.T) {
	reads := testReads(t, 4_000, 3)
	mkcfg := func(t *testing.T) Config {
		cfg := Default(smallGPULayout(1), SupermerMode)
		cfg.Spill = SpillConfig{Dir: t.TempDir(), Bins: 4}
		return cfg
	}

	t.Run("unrelated files ignored", func(t *testing.T) {
		cfg := mkcfg(t)
		if err := os.WriteFile(filepath.Join(cfg.Spill.Dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(cfg, reads); err != nil {
			t.Fatalf("unrelated file should not block spilling: %v", err)
		}
	})

	t.Run("interrupted tmp refused", func(t *testing.T) {
		cfg := mkcfg(t)
		if err := os.WriteFile(filepath.Join(cfg.Spill.Dir, "r0000-b0001"+spillTmpSuffix), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(cfg, reads); err == nil || !strings.Contains(err.Error(), "interrupted") {
			t.Fatalf("got %v, want interrupted-run refusal", err)
		}
	})

	t.Run("foreign config refused", func(t *testing.T) {
		cfg := mkcfg(t)
		var buf bytes.Buffer
		if err := writeSpillHeader(&buf, spillHeader{rank: 0, bin: 0, bins: 4, fphash: 0xdeadbeef}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cfg.Spill.Dir, "r0000-b0000"+spillExt), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(cfg, reads); !errors.Is(err, ErrSpillMismatch) {
			t.Fatalf("got %v, want ErrSpillMismatch", err)
		}
	})

	t.Run("leftover same config refused", func(t *testing.T) {
		cfg := mkcfg(t)
		var buf bytes.Buffer
		h := spillHeader{rank: 0, bin: 0, bins: cfg.Spill.bins(), fphash: buildFingerprint(cfg).Hash()}
		if err := writeSpillHeader(&buf, h); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cfg.Spill.Dir, "r0000-b0000"+spillExt), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(cfg, reads); err == nil || !strings.Contains(err.Error(), "leftover") {
			t.Fatalf("got %v, want leftover-state refusal", err)
		}
	})

	t.Run("garbage bin refused", func(t *testing.T) {
		cfg := mkcfg(t)
		if err := os.WriteFile(filepath.Join(cfg.Spill.Dir, "r0000-b0000"+spillExt), []byte("not a bin"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(cfg, reads); err == nil || !strings.Contains(err.Error(), "unreadable") {
			t.Fatalf("got %v, want unreadable-bin refusal", err)
		}
	})
}

// TestSpillRejectsIncompatibleConfig pins the Validate rules: spilling
// excludes exactly the features that require the full per-rank tables or
// in-memory spectrum state, with structured errors.
func TestSpillRejectsIncompatibleConfig(t *testing.T) {
	base := func() Config {
		cfg := Default(smallCPULayout(), KmerMode)
		cfg.Spill = SpillConfig{Dir: t.TempDir()}
		return cfg
	}
	if cfg := base(); cfg.Validate() != nil {
		t.Fatalf("baseline spill config should validate: %v", cfg.Validate())
	}
	cases := map[string]Config{}
	kt := base()
	kt.KeepTables = true
	cases["KeepTables"] = kt
	ck := base()
	ck.Ckpt = CkptConfig{Dir: t.TempDir(), Reopen: func(fastq.Cursor) (fastq.Source, error) { return nil, nil }}
	cases["Ckpt"] = ck
	fs := base()
	fs.FilterSingletons = true
	cases["FilterSingletons"] = fs
	nb := base()
	nb.Spill.Bins = -1
	cases["negative bins"] = nb
	hb := base()
	hb.Spill.Bins = maxSpillBins + 1
	cases["huge bins"] = hb
	bo := base()
	bo.Spill = SpillConfig{Bins: 8}
	cases["bins without dir"] = bo
	for name, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: want a validation error, got nil", name)
		}
	}
}

// FuzzSpillBin: whatever bytes a spill bin file holds — truncated,
// bit-flipped, or pure garbage — the reader returns nil or an error
// wrapping one of the spill sentinels. It never panics and never
// reports damage as an unstructured error.
func FuzzSpillBin(f *testing.F) {
	// A valid two-record bin as the structural seed.
	var valid bytes.Buffer
	if err := writeSpillHeader(&valid, spillHeader{rank: 3, bin: 1, bins: 8, fphash: 0x1234}); err != nil {
		f.Fatal(err)
	}
	rec := appendSpillRecord(nil, []byte{1, 2, 3, 4, 5, 6, 7, 8}, 1)
	rec = appendSpillRecord(rec, bytes.Repeat([]byte{0xab}, 40), 5)
	valid.Write(rec)
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:spillHeaderLen])   // header only: clean empty bin
	f.Add(valid.Bytes()[:spillHeaderLen+7]) // truncated record header
	f.Add(valid.Bytes()[:valid.Len()-3])    // truncated payload
	f.Add([]byte(spillMagic))               // magic only
	f.Add([]byte{})                         // empty file
	f.Add([]byte("DKSBwrong version etc..."))
	flipped := append([]byte(nil), valid.Bytes()...)
	flipped[spillHeaderLen+14] ^= 0x40 // corrupt a payload byte
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		err := readSpillBin(bytes.NewReader(data), nil, func(payload []byte, items int) error {
			if items < 0 {
				t.Fatalf("negative item count %d", items)
			}
			return nil
		})
		if err == nil {
			return
		}
		if errors.Is(err, ErrSpillTruncated) || errors.Is(err, ErrSpillChecksum) || errors.Is(err, ErrSpillMismatch) {
			return
		}
		t.Fatalf("unstructured error %v", err)
	})
}

// TestSpillReaderPinsCoordinates: a structurally valid bin belonging to
// a different rank/bin/run is rejected with ErrSpillMismatch when the
// caller pins expected coordinates — a misnamed or cross-wired file can
// never be counted into the wrong partition.
func TestSpillReaderPinsCoordinates(t *testing.T) {
	var buf bytes.Buffer
	h := spillHeader{rank: 2, bin: 5, bins: 8, fphash: 42}
	if err := writeSpillHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	want := h
	if err := readSpillBin(bytes.NewReader(buf.Bytes()), &want, nil); err != nil {
		t.Fatalf("matching coordinates: %v", err)
	}
	for name, w := range map[string]spillHeader{
		"rank":   {rank: 3, bin: 5, bins: 8, fphash: 42},
		"bin":    {rank: 2, bin: 6, bins: 8, fphash: 42},
		"bins":   {rank: 2, bin: 5, bins: 16, fphash: 42},
		"fphash": {rank: 2, bin: 5, bins: 8, fphash: 43},
	} {
		w := w
		if err := readSpillBin(bytes.NewReader(buf.Bytes()), &w, nil); !errors.Is(err, ErrSpillMismatch) {
			t.Fatalf("wrong %s: got %v, want ErrSpillMismatch", name, err)
		}
	}
}
