package pipeline

import (
	"io"
	"testing"

	"dedukt/internal/fastq"
	"dedukt/internal/genome"
	"dedukt/internal/obs"
)

// benchReads generates the shared benchmark read set once.
func benchReads(b *testing.B) []fastq.Record {
	b.Helper()
	g, err := genome.Generate("bench", genome.Config{
		Length: 20_000, RepeatFraction: 0.2,
		RepeatMinLen: 100, RepeatMaxLen: 400, GC: 0.5, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	prof := genome.DefaultLongReads()
	prof.MeanLen = 800
	prof.AmbigRate = 0.002
	reads, err := genome.SimulateReads(g, 8, prof)
	if err != nil {
		b.Fatal(err)
	}
	return reads
}

func benchRun(b *testing.B, rec *obs.Recorder) {
	reads := benchReads(b)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.Obs = rec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, reads)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LoadImbalance(), "imbalance")
	}
}

// BenchmarkPipelineSupermer is the nil-recorder baseline the observability
// overhead budget is measured against (instrumented call sites present,
// recording off).
func BenchmarkPipelineSupermer(b *testing.B) {
	benchRun(b, nil)
}

// BenchmarkPipelineTraced runs the same pipeline with a live recorder and
// trace export, bounding the cost of turning observability on.
func BenchmarkPipelineTraced(b *testing.B) {
	rec := obs.NewRecorder(smallGPULayout(1).Ranks())
	benchRun(b, rec)
	b.StopTimer()
	if err := rec.WriteTrace(io.Discard); err != nil {
		b.Fatal(err)
	}
}
