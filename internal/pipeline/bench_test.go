package pipeline

import (
	"io"
	"testing"
	"time"

	"dedukt/internal/fastq"
	"dedukt/internal/genome"
	"dedukt/internal/obs"
)

// benchReads generates the shared benchmark read set once.
func benchReads(b *testing.B) []fastq.Record {
	b.Helper()
	g, err := genome.Generate("bench", genome.Config{
		Length: 20_000, RepeatFraction: 0.2,
		RepeatMinLen: 100, RepeatMaxLen: 400, GC: 0.5, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	prof := genome.DefaultLongReads()
	prof.MeanLen = 800
	prof.AmbigRate = 0.002
	reads, err := genome.SimulateReads(g, 8, prof)
	if err != nil {
		b.Fatal(err)
	}
	return reads
}

func benchRun(b *testing.B, rec *obs.Recorder) {
	reads := benchReads(b)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.Obs = rec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, reads)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LoadImbalance(), "imbalance")
	}
}

// BenchmarkPipelineSupermer is the nil-recorder baseline the observability
// overhead budget is measured against (instrumented call sites present,
// recording off).
func BenchmarkPipelineSupermer(b *testing.B) {
	benchRun(b, nil)
}

// BenchmarkPipelineTraced runs the same pipeline with a live recorder and
// trace export, bounding the cost of turning observability on.
func BenchmarkPipelineTraced(b *testing.B) {
	rec := obs.NewRecorder(smallGPULayout(1).Ranks())
	benchRun(b, rec)
	b.StopTimer()
	if err := rec.WriteTrace(io.Discard); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPipelineKmer is the k-mer-mode counterpart of
// BenchmarkPipelineSupermer: whole-word exchange, no supermer packing.
func BenchmarkPipelineKmer(b *testing.B) {
	reads := benchReads(b)
	cfg := Default(smallGPULayout(1), KmerMode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, reads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineStream measures the streaming ingestion path: the
// shared bounded producer feeding multi-round pulls, against the same
// dataset BenchmarkPipelineSupermer preloads. The delta against that
// baseline is the out-of-core overhead (producer locking, per-chunk
// copies, open-ended round agreement).
func BenchmarkPipelineStream(b *testing.B) {
	reads := benchReads(b)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.MemBudgetBytes = int64(cfg.Layout.Ranks() * streamBytesPerBase * 3_000) // ~10 rounds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunStream(cfg, fastq.NewSliceSource(reads))
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds < 2 {
			b.Fatal("want a multi-round streamed run")
		}
		b.ReportMetric(float64(res.Rounds), "rounds")
	}
}

// BenchmarkPipelineOverlap compares the bulk-synchronous schedule against
// the overlapped one on a multi-round, two-node run with an emulated wire
// (the simulator's collectives are otherwise free in wall terms, which is
// exactly the cost §V says dominates). Serial ranks sit in the blocking
// Alltoallv for the wire time every round; overlapped ranks post it and
// parse the next round while it drains. The hier row overlaps the same
// rounds with the hierarchical strategy, which also shrinks the wire cost
// itself (fewer, node-credited fabric messages).
func BenchmarkPipelineOverlap(b *testing.B) {
	reads := benchReads(b)
	for _, mode := range []struct {
		name    string
		overlap bool
		exch    Exchange
	}{
		{"serial", false, ExchangeFlat},
		{"overlap", true, ExchangeFlat},
		{"overlap-hier", true, ExchangeHier},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Default(smallGPULayout(2), SupermerMode)
			cfg.RoundBases = 3_000 // ~10 rounds at this input size
			cfg.Overlap = mode.overlap
			cfg.Exchange = mode.exch
			benchWire(&cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg, reads)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds < 2 {
					b.Fatal("want a multi-round run")
				}
			}
		})
	}
}

// benchWire installs the emulated wall-clock wire the exchange benchmarks
// share: a per-message software/latency floor plus a bandwidth term, with
// intra-node traffic credited (Layout.Net.RanksPerNode is already the node
// width). The per-message floor is what the hierarchical exchange attacks:
// a 12-rank two-node world pays 6 off-node messages per rank per flat
// round, but only 1 per leader per hier round.
func benchWire(cfg *Config) {
	cfg.WireTime = func(sent int) time.Duration {
		return time.Duration(sent) * 10 * time.Nanosecond
	}
	cfg.WireMsg = func(msgs int) time.Duration {
		return time.Duration(msgs) * 750 * time.Microsecond
	}
}

// BenchmarkPipelineHier races the flat P×P exchange against the two-stage
// hierarchical one on a two-node world under the emulated wire. The flat
// row pays the per-message floor for every off-node destination every
// round; the hier row gathers on node leaders first, so only the L×L
// leader exchange touches the fabric.
func BenchmarkPipelineHier(b *testing.B) {
	reads := benchReads(b)
	for _, mode := range []struct {
		name string
		exch Exchange
	}{{"flat", ExchangeFlat}, {"hier", ExchangeHier}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Default(smallGPULayout(2), SupermerMode)
			cfg.RoundBases = 3_000
			cfg.Exchange = mode.exch
			benchWire(&cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg, reads)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds < 2 {
					b.Fatal("want a multi-round run")
				}
			}
		})
	}
}
