package pipeline

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dedukt/internal/fastq"
	"dedukt/internal/fault"
	"dedukt/internal/obs"
	recov "dedukt/internal/recover"
)

// sliceReopen is the Ckpt.Reopen for an in-memory read set: a fresh
// SliceSource fast-forwarded to the cursor, like reopening input files.
func sliceReopen(reads []fastq.Record) func(fastq.Cursor) (fastq.Source, error) {
	return func(c fastq.Cursor) (fastq.Source, error) {
		s := fastq.NewSliceSource(reads)
		if err := s.SeekCursor(c); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// ckptConfig enables checkpointing into dir for an in-memory read set.
func ckptConfig(cfg Config, dir string, reads []fastq.Record, every int, noShrink bool) Config {
	cfg.Ckpt = CkptConfig{Dir: dir, Every: every, NoShrink: noShrink, Reopen: sliceReopen(reads)}
	return cfg
}

// TestKillResumeShrinkEquivalence is the equivalence matrix of the
// recovery subsystem: a run with a seeded fatal kill at a fixed round,
// completed either by offline resume (-resume semantics: the failed
// run's checkpoint continues in a fresh world) or by in-place shrink
// recovery (survivors absorb the dead rank), must be bit-identical —
// counts, histogram, top-k — to the unfaulted run, under both the serial
// and the overlapped schedule and on both engines.
func TestKillResumeShrinkEquivalence(t *testing.T) {
	reads := testReads(t, 8_000, 6)
	matrix := []struct {
		eng  string
		mode Mode
	}{
		{"gpu", KmerMode},
		{"gpu", SupermerMode},
		{"cpu", KmerMode},
		{"cpu", SupermerMode},
	}
	for _, mx := range matrix {
		layout := smallGPULayout(1)
		if mx.eng == "cpu" {
			layout = smallCPULayout()
		}
		for _, overlap := range []bool{false, true} {
			for _, exch := range []Exchange{ExchangeFlat, ExchangeHier} {
				name := mx.eng + "/" + mx.mode.String() + "/overlap=" + map[bool]string{false: "off", true: "on"}[overlap] + "/" + exch.String()
				t.Run(name, func(t *testing.T) {
					base := Default(layout, mx.mode)
					base.Overlap = overlap
					base.Exchange = exch
					if exch == ExchangeHier {
						// 3 fabric nodes of 2: the kill at rank 1 shrinks a
						// node to a single member mid-run, and the recovered
						// 5-rank world regroups ragged (2,2,1).
						base.Layout.Net.RanksPerNode = 2
					}
					base.RoundBases = 350 // many rounds: kills and checkpoints mid-run
					want, err := RunStream(base, fastq.NewSliceSource(reads))
					if err != nil {
						t.Fatal(err)
					}
					if want.Rounds < 7 {
						t.Fatalf("only %d rounds; the kill round would not be reached", want.Rounds)
					}
					checkAgainstOracle(t, base, reads, want)

					// Path 1: kill with NoShrink — the run fails, the
					// checkpoint resumes it offline, bit-identical.
					dir := t.TempDir()
					faulted := ckptConfig(base, dir, reads, 2, true)
					faulted.Fault = fault.Config{FatalKill: true, FatalRank: 1, FatalRound: 5}
					_, err = RunStream(faulted, fastq.NewSliceSource(reads))
					if !errors.Is(err, fault.ErrKilled) {
						t.Fatalf("NoShrink kill: want ErrKilled, got %v", err)
					}
					resumed := ckptConfig(base, dir, reads, 2, true)
					got, err := ResumeStream(resumed)
					if err != nil {
						t.Fatal(err)
					}
					sameCounts(t, want, got)
					if got.Incomplete {
						t.Fatal("resumed run flagged incomplete")
					}
					if !got.Resumed {
						t.Fatal("Resumed not set on a ResumeStream result")
					}
					if got.Rounds != want.Rounds {
						t.Fatalf("resumed Rounds = %d, unfaulted %d", got.Rounds, want.Rounds)
					}
					if got.InputReads != want.InputReads || got.InputBases != want.InputBases {
						t.Fatalf("resumed input tally %d/%d, unfaulted %d/%d",
							got.InputReads, got.InputBases, want.InputReads, want.InputBases)
					}

					// Path 2: same kill with shrink recovery enabled — the
					// run completes in one go, survivors absorbing rank 1.
					rec := obs.NewRecorder(layout.Ranks())
					shrunk := ckptConfig(base, t.TempDir(), reads, 2, false)
					shrunk.Fault = faulted.Fault
					shrunk.Obs = rec
					got2, err := RunStream(shrunk, fastq.NewSliceSource(reads))
					if err != nil {
						t.Fatal(err)
					}
					sameCounts(t, want, got2)
					if got2.Incomplete {
						t.Fatal("shrink-recovered run flagged incomplete")
					}
					if !got2.Recovered {
						t.Fatal("Recovered not set after shrink recovery")
					}
					if len(got2.DeadRanks) != 1 || got2.DeadRanks[0] != 1 {
						t.Fatalf("DeadRanks = %v, want [1]", got2.DeadRanks)
					}
					if got2.Checkpoints == 0 {
						t.Fatal("no checkpoints recorded before the kill")
					}
					shrinks, ckpts := 0, 0
					for _, in := range rec.Instants() {
						switch in.Name {
						case obs.EvShrink:
							shrinks++
						case obs.EvCkpt:
							ckpts++
						}
					}
					if shrinks == 0 || ckpts == 0 {
						t.Fatalf("recovery instants missing: %d shrink, %d ckpt", shrinks, ckpts)
					}
				})
			}
		}
	}
}

// TestShrinkRecoveryWithoutCheckpoint: a rank dies before the first
// checkpoint ever lands — survivors replay from the very start of the
// stream and still produce the exact spectrum.
func TestShrinkRecoveryWithoutCheckpoint(t *testing.T) {
	reads := testReads(t, 6_000, 3)
	base := Default(smallGPULayout(1), KmerMode)
	base.RoundBases = 600
	want, err := RunStream(base, fastq.NewSliceSource(reads))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ckptConfig(base, t.TempDir(), reads, 100, false) // period > total rounds
	cfg.Fault = fault.Config{FatalKill: true, FatalRank: 2, FatalRound: 2}
	got, err := RunStream(cfg, fastq.NewSliceSource(reads))
	if err != nil {
		t.Fatal(err)
	}
	sameCounts(t, want, got)
	if !got.Recovered || got.Incomplete {
		t.Fatalf("Recovered=%v Incomplete=%v, want true/false", got.Recovered, got.Incomplete)
	}
	if got.Checkpoints != 0 {
		t.Fatalf("Checkpoints = %d, want 0 (period exceeds the run)", got.Checkpoints)
	}
}

// TestResumeRefusesMismatchedConfig: a checkpoint taken under one
// configuration must never resume under another — k, engine, ranks, or
// input list changes surface as recover.ErrMismatch.
func TestResumeRefusesMismatchedConfig(t *testing.T) {
	reads := testReads(t, 6_000, 3)
	dir := t.TempDir()
	cfg := ckptConfig(Default(smallGPULayout(1), KmerMode), dir, reads, 2, true)
	cfg.RoundBases = 600
	cfg.Fault = fault.Config{FatalKill: true, FatalRank: 0, FatalRound: 5}
	if _, err := RunStream(cfg, fastq.NewSliceSource(reads)); !errors.Is(err, fault.ErrKilled) {
		t.Fatalf("setup kill: %v", err)
	}
	bad := cfg
	bad.Fault = fault.Config{}
	bad.K = 19
	if _, err := ResumeStream(bad); !errors.Is(err, recov.ErrMismatch) {
		t.Fatalf("k change: want ErrMismatch, got %v", err)
	}
	bad = cfg
	bad.Fault = fault.Config{}
	bad.Ckpt.Inputs = []recov.InputFile{{Path: "other.fastq", Size: 1}}
	if _, err := ResumeStream(bad); !errors.Is(err, recov.ErrMismatch) {
		t.Fatalf("input change: want ErrMismatch, got %v", err)
	}
}

// TestResumeWithoutCheckpoint: -resume on a directory with no manifest
// is a structured ErrNoCheckpoint, not a crash or a silent fresh run.
func TestResumeWithoutCheckpoint(t *testing.T) {
	reads := testReads(t, 2_000, 2)
	cfg := ckptConfig(Default(smallGPULayout(1), KmerMode), t.TempDir(), reads, 2, true)
	if _, err := ResumeStream(cfg); !errors.Is(err, recov.ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

// TestCheckpointConfigRejections pins the structured configuration
// errors: checkpointing requires streaming, a cursor-capable source, and
// a Reopen hook.
func TestCheckpointConfigRejections(t *testing.T) {
	reads := testReads(t, 2_000, 2)
	cfg := ckptConfig(Default(smallGPULayout(1), KmerMode), t.TempDir(), reads, 2, false)
	if _, err := Run(cfg, reads); err == nil {
		t.Fatal("in-memory Run must reject checkpointing")
	}
	if _, err := RunStream(cfg, &failingSource{left: 4, err: errors.New("x")}); err == nil {
		t.Fatal("a cursor-less source must be rejected when checkpointing")
	}
	noReopen := cfg
	noReopen.Ckpt.Reopen = nil
	if _, err := RunStream(noReopen, fastq.NewSliceSource(reads)); err == nil {
		t.Fatal("Dir without Reopen must be rejected")
	}
	negEvery := cfg
	negEvery.Ckpt.Every = -1
	if _, err := RunStream(negEvery, fastq.NewSliceSource(reads)); err == nil {
		t.Fatal("negative checkpoint period must be rejected")
	}
}

// TestCheckpointCleanupKeepsLatestRound: after a checkpointed run, the
// directory holds exactly one round's files plus the manifest — stale
// rounds and tmp files are gone, and the manifest round matches the
// surviving rank files.
func TestCheckpointCleanupKeepsLatestRound(t *testing.T) {
	reads := testReads(t, 6_000, 3)
	dir := t.TempDir()
	cfg := ckptConfig(Default(smallGPULayout(1), KmerMode), dir, reads, 2, true)
	cfg.RoundBases = 600
	res, err := RunStream(cfg, fastq.NewSliceSource(reads))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints < 2 {
		t.Fatalf("Checkpoints = %d, want ≥ 2 so cleanup had work to do", res.Checkpoints)
	}
	man, err := recov.LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := map[string]bool{filepath.Base(recov.ManifestPath(dir)): true}
	for slot := range man.Survivors {
		wantFiles[filepath.Base(recov.RankFilePath(dir, man.Round, slot))] = true
	}
	for _, e := range entries {
		if !wantFiles[e.Name()] {
			t.Fatalf("unexpected leftover %q in checkpoint dir", e.Name())
		}
		delete(wantFiles, e.Name())
	}
	for name := range wantFiles {
		t.Fatalf("missing checkpoint file %q", name)
	}
}
