package pipeline

import (
	"errors"
	"fmt"
	"sort"

	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
	"dedukt/internal/mpisim"
	"dedukt/internal/obs"
	recov "dedukt/internal/recover"
)

// This file wires the durable-state layer (internal/recover) into the
// round loop: rank seats that survive communicator shrinks, the periodic
// checkpoint protocol, the shrink-recovery reload, and ResumeStream.
// See DESIGN.md §12 for the safety argument.

// rankSeat is one rank body's identity across communicator shrinks. The
// engines always partition keys over the ORIGINAL world (NumDest =
// nOrig) so checkpointed slices stay valid no matter how many ranks have
// died; the seat then folds the nOrig-row send set onto the current
// communicator via the successor remap. old is this seat's original rank
// id — the coordinate used for fault rolls and observability, so the
// injector's schedule and the report's rank axis stay stable across
// shrinks.
type rankSeat struct {
	old   int
	nOrig int
	// slots[i] is the original rank running as current-comm rank i
	// (identity until a shrink).
	slots []int
	// remap[d] is the current-comm rank owning original destination d:
	// the index in slots of recov.Successor(d, dead).
	remap []int
	// base is the first round this seat executes (man.Round+1 after a
	// resume or reload).
	base int
	// seed holds checkpointed spectrum slices to preload into the seat's
	// table before the round loop starts: its own slice plus those of
	// dead ranks it inherited.
	seed []*kcount.Database
	// degraded carries a resumed manifest's Incomplete bit into the
	// seat's outcome: a checkpoint taken after a degraded round stays a
	// lower bound when resumed.
	degraded bool
}

// identitySeat is the no-recovery seat: full world, round 0, no seed.
func identitySeat(rank, nOrig int) *rankSeat {
	slots := make([]int, nOrig)
	for i := range slots {
		slots[i] = i
	}
	return &rankSeat{old: rank, nOrig: nOrig, slots: slots}
}

// buildRemap rebuilds the successor remap for the given dead set (over
// original rank ids). Every key keeps its kernels.DestOf destination;
// dead destinations forward to their successor's seat.
func (s *rankSeat) buildRemap(dead []bool) error {
	idx := make(map[int]int, len(s.slots))
	for i, o := range s.slots {
		idx[o] = i
	}
	if s.remap == nil || len(s.remap) != s.nOrig {
		s.remap = make([]int, s.nOrig)
	}
	for d := 0; d < s.nOrig; d++ {
		o := recov.Successor(d, dead)
		if o < 0 {
			return fmt.Errorf("pipeline: every rank dead, nothing to remap to")
		}
		r, ok := idx[o]
		if !ok {
			return fmt.Errorf("pipeline: successor %d of destination %d is not a live slot", o, d)
		}
		s.remap[d] = r
	}
	return nil
}

// route folds an nOrig-row word send set onto the current communicator.
// Identity seats pass the rows through untouched; shrunk seats
// concatenate each dead destination's row onto its successor's (counting
// is order-invariant, so the fold preserves the spectrum exactly). buf
// is per-caller pooled scratch — the overlapped schedule routes two
// rounds concurrently, so each parity owns its own.
func (s *rankSeat) route(send [][]uint64, buf *[][]uint64) [][]uint64 {
	if len(s.slots) == s.nOrig {
		return send // identity: no rank has died
	}
	out := *buf
	if len(out) != len(s.slots) {
		out = make([][]uint64, len(s.slots))
	}
	for i := range out {
		out[i] = out[i][:0]
	}
	for d, part := range send {
		r := s.remap[d]
		out[r] = append(out[r], part...)
	}
	*buf = out
	return out
}

// routeBytes is route for supermer wire payloads (whole encoded records
// concatenate; the wire format is self-delimiting per stride).
func (s *rankSeat) routeBytes(send [][]byte, buf *[][]byte) [][]byte {
	if len(s.slots) == s.nOrig {
		return send
	}
	out := *buf
	if len(out) != len(s.slots) {
		out = make([][]byte, len(s.slots))
	}
	for i := range out {
		out[i] = out[i][:0]
	}
	for d, part := range send {
		r := s.remap[d]
		out[r] = append(out[r], part...)
	}
	*buf = out
	return out
}

// deadOf derives the dead set implied by this seat's live slots.
func (s *rankSeat) deadOf() []bool {
	dead := make([]bool, s.nOrig)
	for d := range dead {
		dead[d] = true
	}
	for _, o := range s.slots {
		dead[o] = false
	}
	return dead
}

// ckptCtl drives the periodic checkpoint protocol shared by all ranks of
// a checkpointing run.
type ckptCtl struct {
	dir    string
	every  int
	fp     recov.Fingerprint
	fphash uint64
	flags  uint32
	k      int
	prod   *chunkProducer
	rec    *obs.Recorder
}

func newCkptCtl(cfg Config, prod *chunkProducer) *ckptCtl {
	fp := buildFingerprint(cfg)
	var flags uint32
	if cfg.Canonical {
		flags |= kcount.FlagCanonical
	}
	return &ckptCtl{
		dir: cfg.Ckpt.Dir, every: cfg.Ckpt.every(),
		fp: fp, fphash: fp.Hash(), flags: flags, k: cfg.K,
		prod: prod, rec: cfg.Obs,
	}
}

// at reports whether round r checkpoints — a pure function of r, so
// every rank (and a resumed run) agrees on the checkpoint schedule.
func (ck *ckptCtl) at(r int) bool { return (r+1)%ck.every == 0 }

// write persists one rank's slice and, on comm rank 0, the manifest, in
// crash-safe order: all slices land (the AllreduceSum is the collective
// round barrier, doubling as the degraded-state agreement), then the
// manifest (tmp+rename — a crash mid-protocol leaves the previous
// checkpoint intact and loadable), then a barrier so no rank runs ahead
// of a durable manifest, then stale-round cleanup.
func (ck *ckptCtl) write(c *mpisim.Comm, seat *rankSeat, r int, db *kcount.Database, out *rankOutcome) error {
	sp := ck.rec.Begin(seat.old, r, obs.PhaseCkpt)
	slot := c.Rank()
	if err := recov.SaveRankFile(ck.dir, r, slot, ck.fphash, db); err != nil {
		sp.End(0, 0)
		return err
	}
	var degraded uint64
	if out.incomplete {
		degraded = 1
	}
	worldDegraded, err := c.AllreduceSum(degraded)
	if err != nil {
		sp.End(0, 0)
		return err
	}
	if slot == 0 {
		cursor, reads, bases := ck.prod.ckptCursor()
		man := &recov.Manifest{
			Fingerprint: ck.fp,
			Round:       r,
			Cursor:      cursor,
			Reads:       reads,
			Bases:       bases,
			Survivors:   append([]int(nil), seat.slots...),
			Dead:        deadList(seat.deadOf()),
			Incomplete:  worldDegraded > 0,
		}
		if err := recov.SaveManifest(ck.dir, man); err != nil {
			sp.End(0, 0)
			return err
		}
	}
	if err := c.Barrier(); err != nil {
		sp.End(0, 0)
		return err
	}
	if slot == 0 {
		recov.RemoveStale(ck.dir, r)
	}
	out.ckpts++
	ck.rec.Instant(seat.old, r, obs.EvCkpt)
	sp.End(0, uint64(db.Len()))
	return nil
}

// recoverRT is the shrink-recovery runtime handed to rank bodies when
// Config.Ckpt enables in-place recovery.
type recoverRT struct {
	ck     *ckptCtl
	prod   *chunkProducer
	reopen func(fastq.Cursor) (fastq.Source, error)
	rec    *obs.Recorder
}

// shrinkReload runs one survivor's half of the recovery protocol after
// ErrPeerDead: shrink the communicator, agree on the dead set, rebuild
// the ownership remap, reload the latest checkpoint (or reset to round 0
// when none exists yet), and re-feed the shared source from the recorded
// cursor. On return the caller restarts its engine segment from
// seat.base with seat.seed preloaded; the replay is deterministic, so
// the merged spectrum is bit-identical to an unfaulted run's.
func (rv *recoverRT) shrinkReload(c *mpisim.Comm, seat *rankSeat, out *rankOutcome) error {
	sp := rv.rec.Begin(seat.old, -1, obs.PhaseRecovery)
	prev, err := c.Shrink()
	if err != nil {
		sp.End(0, 0)
		return err
	}
	// prev maps new comm rank → previous-world rank; compose with the
	// seat's previous slots to reach original ids.
	newSlots := make([]int, len(prev))
	for i, p := range prev {
		newSlots[i] = seat.slots[p]
	}
	seat.slots = newSlots
	if seat.slots[c.Rank()] != seat.old {
		sp.End(0, 0)
		return fmt.Errorf("pipeline: seat %d landed on slot %d owned by %d after shrink", seat.old, c.Rank(), seat.slots[c.Rank()])
	}
	dead := seat.deadOf()

	// Agree on the dead set collectively: each survivor contributes its
	// local view as a bit mask and the OR is the union. The views are
	// derived from the same shrink, so any mismatch means the worlds
	// diverged — fail loudly rather than count on a wrong partition.
	for base := 0; base < seat.nOrig; base += 64 {
		var mask uint64
		for i := 0; i < 64 && base+i < seat.nOrig; i++ {
			if dead[base+i] {
				mask |= 1 << uint(i)
			}
		}
		agreed, err := c.AllreduceOr(mask)
		if err != nil {
			sp.End(0, 0)
			return err
		}
		if agreed != mask {
			sp.End(0, 0)
			return fmt.Errorf("pipeline: dead-set disagreement after shrink: local %x, union %x", mask, agreed)
		}
	}
	if err := seat.buildRemap(dead); err != nil {
		sp.End(0, 0)
		return err
	}

	// Reload the latest checkpoint. No manifest yet means no round ever
	// checkpointed: replay from the start of the stream.
	man, err := recov.LoadManifest(rv.ck.dir)
	if err != nil && !errors.Is(err, recov.ErrNoCheckpoint) {
		sp.End(0, 0)
		return err
	}
	seat.seed = nil
	seat.base = 0
	var cursor fastq.Cursor
	var reads, bases uint64
	out.incomplete = false
	if man != nil {
		if man.Fingerprint.Hash() != rv.ck.fphash {
			sp.End(0, 0)
			return fmt.Errorf("pipeline: checkpoint in %s belongs to a different run: %w", rv.ck.dir, recov.ErrMismatch)
		}
		seat.base = man.Round + 1
		cursor, reads, bases = man.Cursor, man.Reads, man.Bases
		out.incomplete = man.Incomplete
		for j, oldID := range man.Survivors {
			// The checkpoint slot's keys were owned by oldID when it was
			// written; under the enlarged dead set their owner is
			// Successor(oldID, dead) — Successor composes over growing
			// dead sets, so this holds even when the checkpoint itself
			// postdates an earlier shrink.
			if recov.Successor(oldID, dead) != seat.old {
				continue
			}
			db, err := recov.LoadRankFile(recov.RankFilePath(rv.ck.dir, man.Round, j), man.Round, j, rv.ck.fphash)
			if err != nil {
				sp.End(0, 0)
				return err
			}
			seat.seed = append(seat.seed, db)
		}
	}

	// Re-feed the shared producer from the checkpoint cursor: the new
	// comm rank 0 reopens the source; everyone else waits on the
	// barrier. If the reopen fails, rank 0 dies before the barrier and
	// the survivors recurse into another shrink — each attempt loses a
	// rank, so the recursion terminates.
	if c.Rank() == 0 {
		src, err := rv.reopen(cursor)
		if err != nil {
			sp.End(0, 0)
			return err
		}
		if _, ok := src.(fastq.CursorSource); !ok {
			sp.End(0, 0)
			return fmt.Errorf("pipeline: Ckpt.Reopen returned a source without cursor support")
		}
		rv.prod.reset(src, reads, bases)
	}
	if err := c.Barrier(); err != nil {
		sp.End(0, 0)
		return err
	}
	out.recovered = true
	out.deadRanks = deadList(dead)
	out.replays++
	rv.rec.Instant(seat.old, -1, obs.EvShrink)
	sp.End(0, uint64(len(out.deadRanks)))
	return nil
}

// deadList converts a dead mask to a sorted id list.
func deadList(dead []bool) []int {
	var out []int
	for r, d := range dead {
		if d {
			out = append(out, r)
		}
	}
	return out
}

// buildFingerprint derives the checkpoint fingerprint from the config:
// every field that changes the spectrum or its partition.
func buildFingerprint(cfg Config) recov.Fingerprint {
	engine := "cpu"
	if cfg.Layout.GPU != nil {
		engine = "gpu"
	}
	return recov.Fingerprint{
		K: cfg.K, M: cfg.M, Window: cfg.Window,
		Mode: cfg.Mode.String(), Engine: engine, Encoding: cfg.Enc.Name(),
		Canonical: cfg.Canonical,
		Ranks:     cfg.Layout.Ranks(), Nodes: cfg.Layout.Nodes,
		Inputs: cfg.Ckpt.Inputs,
	}
}

// ResumeStream continues a checkpointed streaming run: it validates the
// manifest in cfg.Ckpt.Dir against the config fingerprint (k, ranks,
// engine, encoding, mode, input list — resuming under a different
// configuration would merge incompatible state and is refused with
// recover.ErrMismatch), reopens the source fast-forwarded to the
// recorded cursor via cfg.Ckpt.Reopen, reloads each surviving slot's
// spectrum slice, and runs the round loop from the checkpointed round.
// The completed spectrum is bit-identical to an unfaulted run over the
// same input.
func ResumeStream(cfg Config) (*Result, error) {
	if err := validateRun(cfg); err != nil {
		return nil, err
	}
	if cfg.Ckpt.Dir == "" {
		return nil, fmt.Errorf("pipeline: ResumeStream needs Ckpt.Dir")
	}
	man, err := recov.LoadManifest(cfg.Ckpt.Dir)
	if err != nil {
		return nil, err
	}
	fp := buildFingerprint(cfg)
	if man.Fingerprint.Hash() != fp.Hash() {
		return nil, fmt.Errorf("pipeline: checkpoint in %s was taken under a different configuration (k=%d mode=%s engine=%s ranks=%d, want k=%d mode=%s engine=%s ranks=%d): %w",
			cfg.Ckpt.Dir,
			man.Fingerprint.K, man.Fingerprint.Mode, man.Fingerprint.Engine, man.Fingerprint.Ranks,
			fp.K, fp.Mode, fp.Engine, fp.Ranks, recov.ErrMismatch)
	}
	src, err := cfg.Ckpt.Reopen(man.Cursor)
	if err != nil {
		return nil, err
	}
	return runStream(cfg, src, man)
}

// seatsFromManifest rebuilds the world a checkpoint recorded: one seat
// per surviving slot, seeded from its slice file, starting at
// man.Round+1.
func seatsFromManifest(cfg Config, man *recov.Manifest, fphash uint64) ([]*rankSeat, error) {
	nOrig := cfg.Layout.Ranks()
	seats := make([]*rankSeat, len(man.Survivors))
	slots := append([]int(nil), man.Survivors...)
	for j, oldID := range man.Survivors {
		seat := &rankSeat{old: oldID, nOrig: nOrig, slots: slots, base: man.Round + 1}
		if err := seat.buildRemap(seat.deadOf()); err != nil {
			return nil, err
		}
		db, err := recov.LoadRankFile(recov.RankFilePath(cfg.Ckpt.Dir, man.Round, j), man.Round, j, fphash)
		if err != nil {
			return nil, err
		}
		seat.seed = []*kcount.Database{db}
		seat.degraded = man.Incomplete
		seats[j] = seat
	}
	return seats, nil
}

// mergeDead folds per-outcome dead lists into one sorted, deduplicated
// list for the Result.
func mergeDead(outcomes []rankOutcome) []int {
	seen := map[int]bool{}
	for i := range outcomes {
		for _, d := range outcomes[i].deadRanks {
			seen[d] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}
