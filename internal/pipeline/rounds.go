package pipeline

import (
	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
)

// chunkSource feeds one rank's round loop: nextChunk returns the next
// round's read set plus a more flag reporting whether this rank's input
// may continue past it. A drained source keeps returning (nil, false,
// nil) — a rank whose input ends early pulls empty chunks and keeps
// participating in the world's collectives until every rank drains (the
// end-of-stream agreement rides on the exchange announcement, see
// exchanger.post*). The returned records are only valid until the next
// call; the round loop copies the bases it needs into its own buffers
// before pulling again.
type chunkSource interface {
	nextChunk() (recs []fastq.Record, more bool, err error)
}

// sliceChunker is the in-memory producer: it cuts a preloaded partition
// into contiguous chunks of at most maxBases each (at least one read per
// chunk), implementing the paper's multi-round processing: "Depending on
// the total size of the input, relative to software limits
// (approximating available memory), the computation and communication
// may proceed in multiple rounds" (§III-A). maxBases ≤ 0 yields a single
// chunk; a final partial chunk below maxBases is still delivered.
type sliceChunker struct {
	reads    []fastq.Record
	maxBases int
	i        int
}

func (s *sliceChunker) nextChunk() ([]fastq.Record, bool, error) {
	if s.i >= len(s.reads) {
		return nil, false, nil
	}
	start, bases := s.i, 0
	for s.i < len(s.reads) {
		n := len(s.reads[s.i].Seq)
		if s.maxBases > 0 && bases > 0 && bases+n > s.maxBases {
			break
		}
		bases += n
		s.i++
	}
	return s.reads[start:s.i], s.i < len(s.reads), nil
}

// roundHooks is one rank's round-loop stage set. start(r) applies
// round-start faults; parse(r) pulls round r's chunk and builds its send
// buffers, reporting whether this rank's own input continues past it;
// post(r, more) posts round r's exchange with nonblocking collectives,
// piggybacking the more flag on the count announcement; finish(r)
// completes the exchange (verification, retries, the settle collective)
// and returns the world's agreement on whether any rank still has input;
// count(r) inserts the received items into the rank's table.
// The optional checkpoint pair rides along: ckptAt(r) reports whether
// round r is a checkpoint round — it must be a pure function of r, the
// same on every rank, because ckpt(r) runs collective barriers — and
// ckpt(r) persists the rank's state as of the end of round r.
type roundHooks struct {
	start  func(r int) error
	parse  func(r int) (more bool, err error)
	post   func(r int, more bool) error
	finish func(r int) (anyMore bool, err error)
	count  func(r int) error
	ckptAt func(r int) bool
	ckpt   func(r int) error
}

// runRounds drives one rank's open-ended round loop until the world
// agrees no rank has input left, returning the number of rounds
// executed. The round count is not known up front — a streaming source
// reveals its end only by draining — so termination is collective: every
// outgoing announcement carries the sender's "my input continues" flag,
// finish(r) folds the incoming flags into anyMore, and every rank
// observes the same announcements, so all ranks exit after the same
// round. Every rank runs every round (with empty sends once its own data
// is exhausted): collectives stay matched across ranks with no extra
// agreement traffic.
//
// Serial schedule: start, parse, post, finish, count per round — post's
// requests are waited immediately, reproducing the bulk-synchronous
// baseline.
//
// Overlapped schedule: round r's exchange is in flight while the rank
// runs parse(r+1), and round r+1's exchange is posted before count(r),
// so the wire hides behind both the next parse and the current count.
// Whether round r+1 exists is only known at finish(r) — but a rank whose
// own input continues (more from parse(r)) knows r+1 must happen and
// parses it early; a drained rank parses its (empty) next chunk after
// finish(r) confirms the world goes on. Either way each executed round
// sees exactly one start/parse/post/finish/count, so the per-round
// observability spans and fault schedule match the serial schedule. The
// order per iteration is parse(r+1); finish(r); post(r+1); count(r),
// which keeps at most one round's requests outstanding — finish's
// blocking retry/settle collectives stay legal (mpisim forbids blocking
// calls with posted requests pending), and double-buffered
// (parity-indexed) scratch is safe: post(r+1) reuses parity (r+1)%2 only
// after finish(r)'s settle collective completed on every rank, which
// implies every peer finished round r-1 — the last user of that parity's
// buffers. count(r) reads round r's received parts (parity r%2) while
// round r+1 flies on the other parity.
//
// base is the first round index (non-zero when resuming from a
// checkpoint); hooks see global round numbers and the returned count is
// the global total (base + rounds executed here), so a resumed run
// reports the same Rounds as an unfaulted one.
//
// Checkpoint rounds drain the overlap: a checkpoint must capture the
// stream cursor *before* round r+1's chunk is pulled, so when ckptAt(r)
// the speculative parse(r+1) is suppressed and the iteration runs
// finish(r); count(r); ckpt(r); parse(r+1); post(r+1) — a pipeline
// bubble every Ckpt.Every rounds, which is the checkpoint's entire
// steady-state cost. ckpt(r) runs blocking collectives, which is legal
// exactly there: round r's requests were waited by finish(r) and round
// r+1's are not yet posted.
func runRounds(overlap bool, base int, h roundHooks) (rounds int, err error) {
	ckptDue := func(r int) bool { return h.ckptAt != nil && h.ckptAt(r) }
	if !overlap {
		for r := base; ; r++ {
			if err := h.start(r); err != nil {
				return r, err
			}
			more, err := h.parse(r)
			if err != nil {
				return r, err
			}
			if err := h.post(r, more); err != nil {
				return r, err
			}
			anyMore, err := h.finish(r)
			if err != nil {
				return r, err
			}
			if err := h.count(r); err != nil {
				return r, err
			}
			if !anyMore {
				return r + 1, nil
			}
			if ckptDue(r) {
				if err := h.ckpt(r); err != nil {
					return r, err
				}
			}
		}
	}
	if err := h.start(base); err != nil {
		return base, err
	}
	selfMore, err := h.parse(base)
	if err != nil {
		return base, err
	}
	if err := h.post(base, selfMore); err != nil {
		return base, err
	}
	for r := base; ; r++ {
		drain := ckptDue(r)
		var nextMore bool
		parsedNext := false
		if selfMore && !drain {
			// This rank's own input continues, so round r+1 is certain:
			// parse it while round r's exchange is in flight. (On a
			// checkpoint round the pull waits until after ckpt(r) captured
			// the cursor.)
			if err := h.start(r + 1); err != nil {
				return r, err
			}
			if nextMore, err = h.parse(r + 1); err != nil {
				return r, err
			}
			parsedNext = true
		}
		anyMore, err := h.finish(r)
		if err != nil {
			return r, err
		}
		if !anyMore {
			if err := h.count(r); err != nil {
				return r, err
			}
			return r + 1, nil
		}
		if parsedNext {
			if err := h.post(r+1, nextMore); err != nil {
				return r, err
			}
			if err := h.count(r); err != nil {
				return r, err
			}
		} else {
			// No speculative parse happened — the rank's input is drained
			// or round r checkpoints. Count first (the checkpoint includes
			// round r's counts), persist, then pull and post round r+1.
			if err := h.count(r); err != nil {
				return r, err
			}
			if drain {
				if err := h.ckpt(r); err != nil {
					return r, err
				}
			}
			if err := h.start(r + 1); err != nil {
				return r, err
			}
			if nextMore, err = h.parse(r + 1); err != nil {
				return r, err
			}
			if err := h.post(r+1, nextMore); err != nil {
				return r, err
			}
		}
		selfMore = nextMore
	}
}

// ensureCapacity grows a fixed-capacity atomic table ahead of a round that
// may push it past its load ceiling: the old table is snapshotted and
// rehashed into one sized for the new total. This models the device-side
// rehash a fixed-memory GPU table needs between rounds; its cost is
// dominated by the counting kernels and is not separately charged.
func ensureCapacity(table *kcount.AtomicTable, incoming int, load float64, prob kcount.Probing) (*kcount.AtomicTable, error) {
	needed := table.Len() + incoming
	if float64(needed) <= load*float64(table.Cap()) {
		return table, nil
	}
	bigger := kcount.NewAtomicTable(needed, load, prob)
	var rehashErr error
	table.ForEach(func(k uint64, c uint32) {
		if rehashErr != nil {
			return
		}
		if _, _, err := bigger.Add(k, c); err != nil {
			rehashErr = err
		}
	})
	if rehashErr != nil {
		// Sized for needed items, so this cannot fill in practice; surface
		// it as a rank error rather than a panic regardless.
		return nil, rehashErr
	}
	return bigger, nil
}
