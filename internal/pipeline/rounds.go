package pipeline

import (
	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
	"dedukt/internal/mpisim"
)

// chunkReads splits a rank's reads into contiguous chunks of at most
// maxBases each (at least one read per chunk), implementing the paper's
// multi-round processing: "Depending on the total size of the input,
// relative to software limits (approximating available memory), the
// computation and communication may proceed in multiple rounds" (§III-A).
// maxBases ≤ 0 yields a single chunk.
func chunkReads(reads []fastq.Record, maxBases int) [][]fastq.Record {
	if maxBases <= 0 || len(reads) == 0 {
		return [][]fastq.Record{reads}
	}
	var chunks [][]fastq.Record
	start, bases := 0, 0
	for i, r := range reads {
		if bases > 0 && bases+len(r.Seq) > maxBases {
			chunks = append(chunks, reads[start:i])
			start, bases = i, 0
		}
		bases += len(r.Seq)
	}
	chunks = append(chunks, reads[start:])
	return chunks
}

// globalRounds agrees on a common round count: collectives are matched
// across ranks, so every rank participates in the maximum number of rounds
// (with empty sends once its own data is exhausted).
func globalRounds(c *mpisim.Comm, localChunks int) (int, error) {
	n, err := c.AllreduceMax(uint64(localChunks))
	return int(n), err
}

// chunkFor returns the r-th chunk, or an empty read set when this rank has
// fewer chunks than the global round count.
func chunkFor(chunks [][]fastq.Record, r int) []fastq.Record {
	if r < len(chunks) {
		return chunks[r]
	}
	return nil
}

// runRounds drives one rank's round loop through four stages: parse(r)
// builds round r's send buffers, post(r) posts its exchange with
// nonblocking collectives, finish(r) completes the exchange (verification,
// retries, the settle collective), and count(r) inserts the received items
// into the rank's table.
//
// Serial schedule: parse, post, finish, count per round — post's requests
// are waited immediately, reproducing the bulk-synchronous baseline.
//
// Overlapped schedule: round r's exchange is in flight while the rank runs
// parse(r+1), and round r+1's exchange is posted before count(r), so the
// wire hides behind both the next parse and the current count. The order
// per iteration is parse(r+1); finish(r); post(r+1); count(r), which keeps
// at most one round's requests outstanding — finish's blocking retry/settle
// collectives stay legal (mpisim forbids blocking calls with posted
// requests pending), and double-buffered (parity-indexed) scratch is safe:
// post(r+1) reuses parity (r+1)%2 only after finish(r)'s settle collective
// completed on every rank, which implies every peer finished round r-1 —
// the last user of that parity's buffers. count(r) reads round r's received
// parts (parity r%2) while round r+1 flies on the other parity.
func runRounds(rounds int, overlap bool, parse, post, finish, count func(r int) error) error {
	if rounds == 0 {
		return nil
	}
	if !overlap {
		for r := 0; r < rounds; r++ {
			for _, f := range []func(int) error{parse, post, finish, count} {
				if err := f(r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := parse(0); err != nil {
		return err
	}
	if err := post(0); err != nil {
		return err
	}
	for r := 0; r < rounds; r++ {
		if r+1 < rounds {
			if err := parse(r + 1); err != nil {
				return err
			}
		}
		if err := finish(r); err != nil {
			return err
		}
		if r+1 < rounds {
			if err := post(r + 1); err != nil {
				return err
			}
		}
		if err := count(r); err != nil {
			return err
		}
	}
	return nil
}

// ensureCapacity grows a fixed-capacity atomic table ahead of a round that
// may push it past its load ceiling: the old table is snapshotted and
// rehashed into one sized for the new total. This models the device-side
// rehash a fixed-memory GPU table needs between rounds; its cost is
// dominated by the counting kernels and is not separately charged.
func ensureCapacity(table *kcount.AtomicTable, incoming int, load float64, prob kcount.Probing) (*kcount.AtomicTable, error) {
	needed := table.Len() + incoming
	if float64(needed) <= load*float64(table.Cap()) {
		return table, nil
	}
	bigger := kcount.NewAtomicTable(needed, load, prob)
	var rehashErr error
	table.ForEach(func(k uint64, c uint32) {
		if rehashErr != nil {
			return
		}
		if _, _, err := bigger.Add(k, c); err != nil {
			rehashErr = err
		}
	})
	if rehashErr != nil {
		// Sized for needed items, so this cannot fill in practice; surface
		// it as a rank error rather than a panic regardless.
		return nil, rehashErr
	}
	return bigger, nil
}
