package pipeline

import (
	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
	"dedukt/internal/mpisim"
)

// chunkReads splits a rank's reads into contiguous chunks of at most
// maxBases each (at least one read per chunk), implementing the paper's
// multi-round processing: "Depending on the total size of the input,
// relative to software limits (approximating available memory), the
// computation and communication may proceed in multiple rounds" (§III-A).
// maxBases ≤ 0 yields a single chunk.
func chunkReads(reads []fastq.Record, maxBases int) [][]fastq.Record {
	if maxBases <= 0 || len(reads) == 0 {
		return [][]fastq.Record{reads}
	}
	var chunks [][]fastq.Record
	start, bases := 0, 0
	for i, r := range reads {
		if bases > 0 && bases+len(r.Seq) > maxBases {
			chunks = append(chunks, reads[start:i])
			start, bases = i, 0
		}
		bases += len(r.Seq)
	}
	chunks = append(chunks, reads[start:])
	return chunks
}

// globalRounds agrees on a common round count: collectives are matched
// across ranks, so every rank participates in the maximum number of rounds
// (with empty sends once its own data is exhausted).
func globalRounds(c *mpisim.Comm, localChunks int) (int, error) {
	n, err := c.AllreduceMax(uint64(localChunks))
	return int(n), err
}

// chunkFor returns the r-th chunk, or an empty read set when this rank has
// fewer chunks than the global round count.
func chunkFor(chunks [][]fastq.Record, r int) []fastq.Record {
	if r < len(chunks) {
		return chunks[r]
	}
	return nil
}

// ensureCapacity grows a fixed-capacity atomic table ahead of a round that
// may push it past its load ceiling: the old table is snapshotted and
// rehashed into one sized for the new total. This models the device-side
// rehash a fixed-memory GPU table needs between rounds; its cost is
// dominated by the counting kernels and is not separately charged.
func ensureCapacity(table *kcount.AtomicTable, incoming int, load float64, prob kcount.Probing) (*kcount.AtomicTable, error) {
	needed := table.Len() + incoming
	if float64(needed) <= load*float64(table.Cap()) {
		return table, nil
	}
	bigger := kcount.NewAtomicTable(needed, load, prob)
	var rehashErr error
	table.ForEach(func(k uint64, c uint32) {
		if rehashErr != nil {
			return
		}
		if _, _, err := bigger.Add(k, c); err != nil {
			rehashErr = err
		}
	})
	if rehashErr != nil {
		// Sized for needed items, so this cannot fill in practice; surface
		// it as a rank error rather than a panic regardless.
		return nil, rehashErr
	}
	return bigger, nil
}
