package pipeline

import (
	"testing"

	"dedukt/internal/cluster"
	"dedukt/internal/fastq"
)

func cpuTestLayout() cluster.Layout {
	l := cluster.SummitCPU(1)
	l.RanksPerNode = 8
	l.Net.RanksPerNode = 8
	return l
}

func TestFilterSingletons(t *testing.T) {
	// The BFCounter-style pre-filter must (a) keep (almost) all singletons
	// out of the table, (b) preserve exact counts for surviving k-mers
	// modulo rare Bloom false positives.
	reads := testReads(t, 20_000, 8) // error k-mers create many singletons
	for _, mode := range []Mode{KmerMode, SupermerMode} {
		cfg := Default(cpuTestLayout(), mode)
		cfg.FilterSingletons = true
		cfg.FilterFP = 0.001
		res, err := Run(cfg, reads)
		if err != nil {
			t.Fatal(err)
		}
		plain := Default(cpuTestLayout(), mode)
		oracle := oracleFor(plain, reads)
		var singles, multis uint64
		for _, c := range oracle {
			if c == 1 {
				singles++
			} else {
				multis++
			}
		}
		if singles == 0 {
			t.Fatal("test input has no singletons; raise the error rate")
		}
		// Distinct k-mers in the filtered table ≈ oracle multis; allow a
		// small false-positive margin.
		slack := singles/50 + 5
		if res.DistinctKmers < multis || res.DistinctKmers > multis+slack {
			t.Fatalf("%s: filtered distinct %d, want ≈%d (+%d fp slack, %d singletons)",
				mode, res.DistinctKmers, multis, slack, singles)
		}
		// Counts of surviving k-mers are exact except fp incidents: total
		// counted mass ≈ oracle total - singletons.
		var wantTotal uint64
		for _, c := range oracle {
			if c > 1 {
				wantTotal += uint64(c)
			}
		}
		if res.TotalKmers < wantTotal || res.TotalKmers > wantTotal+2*slack {
			t.Fatalf("%s: filtered total %d, want ≈%d", mode, res.TotalKmers, wantTotal)
		}
		if res.Histogram.Counts[1] > slack {
			t.Fatalf("%s: %d singletons leaked into the table", mode, res.Histogram.Counts[1])
		}
		t.Logf("%s: %d singletons filtered, %d/%d distinct kept", mode, singles, res.DistinctKmers, multis)
	}
}

func TestFilterRejectedOnGPU(t *testing.T) {
	cfg := Default(smallGPULayout(1), KmerMode)
	cfg.FilterSingletons = true
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("GPU + bloom filter should be rejected")
	}
}

func TestFilterFPValidation(t *testing.T) {
	cfg := Default(cpuTestLayout(), KmerMode)
	cfg.FilterFP = 1.5
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("FilterFP=1.5 should be rejected")
	}
}

func TestFilterMatchesTruncatedOracle(t *testing.T) {
	// Deterministic spot check: build reads with known multiplicities and
	// verify per-k-mer counts survive exactly.
	read := []byte("ACGTACGTTGCAGGCATTAGCCATGG") // appears 3 times
	single := []byte("TTTTTCCCCCAAAAAGGGGGTT")   // k-mers appear once
	reads := testReadsFromSeqs([][]byte{read, read, read, single})
	cfg := Default(cpuTestLayout(), KmerMode)
	cfg.FilterSingletons = true
	cfg.FilterFP = 0.0001
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	// Every k-mer of `read` has count 3; every k-mer of `single` count 1.
	wantDistinct := uint64(len(read) - cfg.K + 1)
	if res.DistinctKmers != wantDistinct {
		t.Fatalf("distinct %d, want %d", res.DistinctKmers, wantDistinct)
	}
	if res.Histogram.Counts[3] != wantDistinct {
		t.Fatalf("count-3 class has %d, want %d", res.Histogram.Counts[3], wantDistinct)
	}
}

func testReadsFromSeqs(seqs [][]byte) []fastq.Record {
	out := make([]fastq.Record, len(seqs))
	for i, s := range seqs {
		out[i] = fastq.Record{ID: "r", Seq: s}
	}
	return out
}
