package pipeline

import (
	"errors"
	"testing"
	"time"

	"dedukt/internal/cluster"
	"dedukt/internal/fault"
	"dedukt/internal/mpisim"
)

// faultEngines returns small per-engine layouts for the fault matrix.
func faultEngines() map[string]cluster.Layout {
	cpu := cluster.SummitCPU(1)
	cpu.RanksPerNode = 6
	cpu.Net.RanksPerNode = 6
	return map[string]cluster.Layout{
		"gpu": smallGPULayout(1),
		"cpu": cpu,
	}
}

// sameCounts asserts two results agree on everything the oracle checks.
func sameCounts(t *testing.T, want, got *Result) {
	t.Helper()
	if got.TotalKmers != want.TotalKmers || got.DistinctKmers != want.DistinctKmers {
		t.Fatalf("counts differ under faults: %d/%d vs clean %d/%d",
			got.TotalKmers, got.DistinctKmers, want.TotalKmers, want.DistinctKmers)
	}
	for f, c := range want.Histogram.Counts {
		if got.Histogram.Counts[f] != c {
			t.Fatalf("histogram class %d differs: %d vs %d", f, got.Histogram.Counts[f], c)
		}
	}
	if len(got.TopKmers) != len(want.TopKmers) {
		t.Fatalf("top-k length differs: %d vs %d", len(got.TopKmers), len(want.TopKmers))
	}
	for i := range want.TopKmers {
		if got.TopKmers[i] != want.TopKmers[i] {
			t.Fatalf("top-k entry %d differs: %+v vs %+v", i, got.TopKmers[i], want.TopKmers[i])
		}
	}
}

// TestFaultRecoveryViaRetry is the headline robustness property: with drop
// and corruption faults firing at seed-deterministic rates, the retry loop
// recovers a byte-identical result — Retries > 0 proves faults actually
// fired and were absorbed, Incomplete stays false.
func TestFaultRecoveryViaRetry(t *testing.T) {
	reads := testReads(t, 10_000, 4)
	for engName, layout := range faultEngines() {
		for _, mode := range []Mode{KmerMode, SupermerMode} {
			t.Run(engName+"/"+mode.String(), func(t *testing.T) {
				base := Default(layout, mode)
				base.RoundBases = 4_000 // several rounds: more fault opportunities
				clean, err := Run(base, reads)
				if err != nil {
					t.Fatal(err)
				}
				cfg := base
				cfg.Fault = fault.Config{Seed: 1, Drop: 0.05, Corrupt: 0.05}
				cfg.MaxRetries = 8
				res, err := Run(cfg, reads)
				if err != nil {
					t.Fatal(err)
				}
				if res.Incomplete {
					t.Fatal("run degraded despite ample retry budget")
				}
				tf := res.TotalFaults()
				if tf.Dropped+tf.Corrupted == 0 {
					t.Fatal("no faults fired; the test exercised nothing")
				}
				if tf.Retries == 0 {
					t.Fatal("faults fired but no retries recorded")
				}
				if tf.BadFrames == 0 {
					t.Fatal("faults fired but no bad frames observed")
				}
				sameCounts(t, clean, res)
				checkAgainstOracle(t, cfg, reads, res)
			})
		}
	}
}

// TestFaultDegradesPastRetryBudget: with retries disabled and persistent
// drops, the run must neither deadlock nor panic — it returns a partial
// result flagged Incomplete, with the damage itemized in Faults.
func TestFaultDegradesPastRetryBudget(t *testing.T) {
	reads := testReads(t, 10_000, 4)
	for engName, layout := range faultEngines() {
		for _, mode := range []Mode{KmerMode, SupermerMode} {
			t.Run(engName+"/"+mode.String(), func(t *testing.T) {
				base := Default(layout, mode)
				clean, err := Run(base, reads)
				if err != nil {
					t.Fatal(err)
				}
				cfg := base
				cfg.Fault = fault.Config{Seed: 2, Drop: 0.5}
				cfg.MaxRetries = -1 // no retries: every drop is final
				res, err := Run(cfg, reads)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Incomplete {
					t.Fatal("half the payloads dropped with no retries, yet Incomplete is false")
				}
				tf := res.TotalFaults()
				if tf.Dropped == 0 || tf.BadFrames == 0 {
					t.Fatalf("degraded run recorded no damage: %+v", tf)
				}
				if tf.Discarded == 0 {
					t.Fatal("payloads were lost but no discarded items recorded")
				}
				if res.TotalKmers >= clean.TotalKmers {
					t.Fatalf("degraded run counted %d k-mers, clean run %d", res.TotalKmers, clean.TotalKmers)
				}
				if res.Histogram.Total() != res.TotalKmers {
					t.Fatal("degraded result is internally inconsistent")
				}
			})
		}
	}
}

// TestFaultKillReturnsStructuredError: a killed rank must surface as a
// structured error — the victim's fault.ErrKilled plus the peers'
// mpisim.ErrPeerDead — never a hang or panic.
func TestFaultKillReturnsStructuredError(t *testing.T) {
	reads := testReads(t, 10_000, 4)
	for engName, layout := range faultEngines() {
		for _, mode := range []Mode{KmerMode, SupermerMode} {
			t.Run(engName+"/"+mode.String(), func(t *testing.T) {
				cfg := Default(layout, mode)
				cfg.RoundBases = 4_000
				cfg.Fault = fault.Config{Seed: 3, Kill: 0.3}
				res, err := Run(cfg, reads)
				if err == nil {
					t.Fatalf("kill probability 0.3 over %d ranks fired nothing", layout.Ranks())
				}
				if res != nil {
					t.Fatal("failed run returned a result")
				}
				if !errors.Is(err, fault.ErrKilled) {
					t.Fatalf("error does not wrap fault.ErrKilled: %v", err)
				}
				if !errors.Is(err, mpisim.ErrPeerDead) {
					t.Fatalf("surviving peers did not report ErrPeerDead: %v", err)
				}
			})
		}
	}
}

// TestFaultStragglerCompletes: a straggler stall is a performance fault, not
// a correctness fault — without a deadline the peers wait it out and the
// result is identical.
func TestFaultStragglerCompletes(t *testing.T) {
	reads := testReads(t, 10_000, 4)
	layout := smallGPULayout(1)
	for _, mode := range []Mode{KmerMode, SupermerMode} {
		t.Run(mode.String(), func(t *testing.T) {
			base := Default(layout, mode)
			base.RoundBases = 4_000
			clean, err := Run(base, reads)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Fault = fault.Config{Seed: 4, Delay: 0.4, DelayFor: time.Millisecond}
			res, err := Run(cfg, reads)
			if err != nil {
				t.Fatal(err)
			}
			if res.Incomplete {
				t.Fatal("straggler stalls must not degrade the result")
			}
			if res.TotalFaults().Delayed == 0 {
				t.Fatal("no straggler stalls fired")
			}
			sameCounts(t, clean, res)
		})
	}
}

// TestFaultStragglerTripsDeadline: with an ExchangeDeadline shorter than the
// stall, the waiting peers abandon the collective with ErrDeadline instead
// of waiting forever.
func TestFaultStragglerTripsDeadline(t *testing.T) {
	reads := testReads(t, 10_000, 4)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.Fault = fault.Config{Seed: 4, Delay: 0.4, DelayFor: 300 * time.Millisecond}
	cfg.ExchangeDeadline = 25 * time.Millisecond
	_, err := Run(cfg, reads)
	if err == nil {
		t.Fatal("stall 12x the deadline did not trip it")
	}
	if !errors.Is(err, mpisim.ErrDeadline) {
		t.Fatalf("error does not wrap mpisim.ErrDeadline: %v", err)
	}
}

// TestFaultScheduleDeterministic: the same seed replays the same faults and
// the same recovery, down to the per-rank tallies.
func TestFaultScheduleDeterministic(t *testing.T) {
	reads := testReads(t, 10_000, 4)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.RoundBases = 4_000
	cfg.Fault = fault.Config{Seed: 1, Drop: 0.05, Corrupt: 0.05}
	cfg.MaxRetries = 8
	a, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	sameCounts(t, a, b)
	for r := range a.Faults {
		if a.Faults[r] != b.Faults[r] {
			t.Fatalf("rank %d fault tally differs across identical runs: %+v vs %+v",
				r, a.Faults[r], b.Faults[r])
		}
	}
}
