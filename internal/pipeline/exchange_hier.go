package pipeline

import (
	"encoding/binary"
	"errors"

	"dedukt/internal/kernels"
	"dedukt/internal/mpisim"
	"dedukt/internal/obs"
)

// hierStrategy is the topology-aware two-stage exchange (ROADMAP item 1,
// mirroring the communication hierarchy of the Summit-era codes the paper
// cites): instead of the flat P×P Alltoallv, each round's frames travel
//
//	gather  — every rank ships its frames over the node tier: same-node
//	          frames straight to their destination, off-node frames onto
//	          its node leader (NodeAlltoallv: NVLink, free in wire terms);
//	leader  — the leaders run one L×L Alltoallv, L = ceil(P/RanksPerNode),
//	          each row batching every frame its node sends to one peer
//	          node — the only fabric hop, posted nonblocking so it
//	          overlaps the next round's parse exactly like the flat path;
//	scatter — leaders sort arrivals per member and deliver them over the
//	          node tier again.
//
// This cuts the fabric message count from P² to L² and batches the many
// small per-rank payloads into node-sized transfers, at the price of two
// intra-node copies. Frames are opaque to the routing: each travels inside
// a record [header, frame...] whose header packs (src, dest, length), so
// the receiving rank reassembles exactly the per-source frame vector the
// flat path would have delivered — dropped frames simply have no record —
// and the exchanger's shared CRC/verify/retry machinery runs unchanged.
//
// The gather stage is a blocking collective inside the post half; that is
// legal because the round loop guarantees no nonblocking requests are
// pending at any post site (rounds.go). The strategy keeps its own
// parity-indexed slot pair, reused under the same liveness rule as the
// exchanger's arenas. Topology is derived from the current communicator at
// construction time, so after a shrink recovery the rebuilt exchanger
// re-groups the surviving (renumbered) ranks — a ragged last node, whether
// configured or produced by a shrink, needs no special casing beyond ceil
// division.
type hierStrategy struct {
	e     *exchanger
	topo  mpisim.Topology
	slots [2]hierSlot
}

// hierSlot is one parity's pooled routing state. Rows are truncated, never
// freed, so steady-state rounds do not allocate.
type hierSlot struct {
	gatherW  [][]uint64 // per-rank node-tier rows (stage 1 send)
	leaderW  [][]uint64 // per-rank fabric rows, non-empty on leaders only
	scatterW [][]uint64 // per-member node-tier rows (stage 3 send)
	recvGatW [][]uint64 // stage 1 receive, retained from post to finish
	recvW    [][]uint64 // assembled per-source frames

	gatherB  [][]byte
	leaderB  [][]byte
	scatterB [][]byte
	recvGatB [][]byte
	recvB    [][]byte
}

func (s *hierStrategy) name() string { return "hier" }

func (s *hierStrategy) messages() int {
	return kernels.HierExchangeMessages(s.e.c.Size(), s.topo.RanksPerNode)
}

// errHierContainer guards the record walk; the container never leaves
// mpisim's shared memory, so a malformed header means a routing bug, not a
// wire fault (wire faults corrupt frame payloads, which the CRC catches).
var errHierContainer = errors.New("pipeline: malformed hierarchical exchange container")

// hierHdr packs one record header: the source and destination rank (both
// current-communicator coordinates) and the frame length in payload units.
func hierHdr(src, dest, n int) uint64 {
	return uint64(src)<<48 | uint64(dest)<<32 | uint64(uint32(n))
}

func hierHdrFields(h uint64) (src, dest, n int) {
	return int(h >> 48), int(uint16(h >> 32)), int(uint32(h))
}

// growRows resizes a pooled row vector to n rows, each truncated to zero
// length with capacity retained.
func growRows[T any](rows [][]T, n int) [][]T {
	if cap(rows) < n {
		rows = make([][]T, n)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = rows[i][:0]
	}
	return rows
}

// nilRows resizes a pooled row vector to n nil rows: the assembled frame
// vector distinguishes nil (dropped in flight) from empty (a legitimate
// zero-item frame), matching the flat Alltoallv's semantics.
func nilRows[T any](rows [][]T, n int) [][]T {
	if cap(rows) < n {
		rows = make([][]T, n)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = nil
	}
	return rows
}

// eachRecordW walks a word container, yielding each record's header fields
// and a capacity-clamped view of its frame.
func eachRecordW(blob []uint64, fn func(src, dest int, frame []uint64)) error {
	for i := 0; i < len(blob); {
		src, dest, n := hierHdrFields(blob[i])
		i++
		if n < 0 || i+n > len(blob) {
			return errHierContainer
		}
		fn(src, dest, blob[i:i+n:i+n])
		i += n
	}
	return nil
}

// eachRecordB is eachRecordW for byte containers (8-byte little-endian
// header, then n frame bytes).
func eachRecordB(blob []byte, fn func(src, dest int, frame []byte)) error {
	for i := 0; i < len(blob); {
		if i+8 > len(blob) {
			return errHierContainer
		}
		src, dest, n := hierHdrFields(binary.LittleEndian.Uint64(blob[i:]))
		i += 8
		if n < 0 || i+n > len(blob) {
			return errHierContainer
		}
		fn(src, dest, blob[i:i+n:i+n])
		i += n
	}
	return nil
}

func (s *hierStrategy) postWords(p *pendingExchange, counts []int, framed [][]uint64) {
	e, c := s.e, s.e.c
	me, n := c.Rank(), c.Size()
	hs := &s.slots[p.round%2]
	p.hier = hs

	// Stage 1: route each destination's frame over the node tier — direct
	// to same-node destinations, onto this rank's leader otherwise. A
	// dropped frame (nil) has no record: its destination assembles a nil
	// entry and the shared verifier sees exactly a dropped flat payload.
	hs.gatherW = growRows(hs.gatherW, n)
	leader := s.topo.LeaderOf(me)
	var packed uint64
	for d, f := range framed {
		if f == nil {
			continue
		}
		row := d
		if !s.topo.SameNode(me, d) {
			row = leader
		}
		hs.gatherW[row] = append(hs.gatherW[row], hierHdr(me, d, len(f)))
		hs.gatherW[row] = append(hs.gatherW[row], f...)
		packed++
	}
	sp := e.rec.Begin(e.rank, p.round, obs.PhaseGather)
	recv, err := c.NodeAlltoallvUint64(s.topo, hs.gatherW)
	sp.End(0, packed)
	if err != nil {
		p.postErr = err
		return
	}
	hs.recvGatW = recv

	// Leaders re-bucket the forwarded records by destination node; records
	// addressed to this node stay in recvGatW for the finish half. On a
	// container error (a routing bug, not a wire fault) the collectives
	// below are still posted so the world-wide collective order stays
	// consistent; the error surfaces when the round is finished.
	hs.leaderW = growRows(hs.leaderW, n)
	if s.topo.IsLeader(me) {
		for _, blob := range recv {
			err := eachRecordW(blob, func(src, dest int, frame []uint64) {
				if s.topo.SameNode(me, dest) {
					return
				}
				lr := s.topo.LeaderOf(dest)
				hs.leaderW[lr] = append(hs.leaderW[lr], hierHdr(src, dest, len(frame)))
				hs.leaderW[lr] = append(hs.leaderW[lr], frame...)
			})
			if err != nil {
				p.postErr = err
				break
			}
		}
	}

	// Stage 2, posted nonblocking: the L×L leader exchange (non-leader
	// rows are all empty) overlaps the next round's parse.
	p.ann = c.IAlltoall(counts)
	p.leaderWordsReq = c.IAlltoallvUint64(hs.leaderW)
}

func (s *hierStrategy) finishWords(p *pendingExchange) ([][]uint64, error) {
	e, c := s.e, s.e.c
	me, n := c.Rank(), c.Size()
	hs := p.hier

	sp := e.rec.Begin(e.rank, p.round, obs.PhaseLeader)
	lrecv, err := p.leaderWordsReq.Wait()
	sp.End(0, 0)
	if err != nil {
		return nil, err
	}

	// Stage 3: leaders sort fabric arrivals into per-member rows (their
	// own records included — self-delivery through the scatter keeps the
	// stage uniform) and deliver over the node tier.
	hs.scatterW = growRows(hs.scatterW, n)
	if s.topo.IsLeader(me) {
		for _, blob := range lrecv {
			err := eachRecordW(blob, func(src, dest int, frame []uint64) {
				hs.scatterW[dest] = append(hs.scatterW[dest], hierHdr(src, dest, len(frame)))
				hs.scatterW[dest] = append(hs.scatterW[dest], frame...)
			})
			if err != nil {
				return nil, err
			}
		}
	}
	sp = e.rec.Begin(e.rank, p.round, obs.PhaseScatter)
	srecv, err := c.NodeAlltoallvUint64(s.topo, hs.scatterW)
	sp.End(0, 0)
	if err != nil {
		return nil, err
	}

	// Assemble the per-source frame vector the shared verifier expects:
	// direct same-node frames from the gather stage (a leader also holds
	// forwarded records there — skipped by the dest filter), off-node
	// frames from the scatter.
	hs.recvW = nilRows(hs.recvW, n)
	collect := func(blob []uint64) error {
		return eachRecordW(blob, func(src, dest int, frame []uint64) {
			if dest == me {
				hs.recvW[src] = frame
			}
		})
	}
	for _, blob := range hs.recvGatW {
		if err := collect(blob); err != nil {
			return nil, err
		}
	}
	for _, blob := range srecv {
		if err := collect(blob); err != nil {
			return nil, err
		}
	}
	return hs.recvW, nil
}

func (s *hierStrategy) postBytes(p *pendingExchange, counts []int, framed [][]byte) {
	e, c := s.e, s.e.c
	me, n := c.Rank(), c.Size()
	hs := &s.slots[p.round%2]
	p.hier = hs

	hs.gatherB = growRows(hs.gatherB, n)
	leader := s.topo.LeaderOf(me)
	var packed uint64
	var hdr [8]byte
	for d, f := range framed {
		if f == nil {
			continue
		}
		row := d
		if !s.topo.SameNode(me, d) {
			row = leader
		}
		binary.LittleEndian.PutUint64(hdr[:], hierHdr(me, d, len(f)))
		hs.gatherB[row] = append(hs.gatherB[row], hdr[:]...)
		hs.gatherB[row] = append(hs.gatherB[row], f...)
		packed++
	}
	sp := e.rec.Begin(e.rank, p.round, obs.PhaseGather)
	recv, err := c.NodeAlltoallvBytes(s.topo, hs.gatherB)
	sp.End(0, packed)
	if err != nil {
		p.postErr = err
		return
	}
	hs.recvGatB = recv

	// See postWords: collectives are posted even on a container error so
	// the collective order stays consistent.
	hs.leaderB = growRows(hs.leaderB, n)
	if s.topo.IsLeader(me) {
		for _, blob := range recv {
			err := eachRecordB(blob, func(src, dest int, frame []byte) {
				if s.topo.SameNode(me, dest) {
					return
				}
				lr := s.topo.LeaderOf(dest)
				binary.LittleEndian.PutUint64(hdr[:], hierHdr(src, dest, len(frame)))
				hs.leaderB[lr] = append(hs.leaderB[lr], hdr[:]...)
				hs.leaderB[lr] = append(hs.leaderB[lr], frame...)
			})
			if err != nil {
				p.postErr = err
				break
			}
		}
	}

	p.ann = c.IAlltoall(counts)
	p.leaderBytesReq = c.IAlltoallvBytes(hs.leaderB)
}

func (s *hierStrategy) finishBytes(p *pendingExchange) ([][]byte, error) {
	e, c := s.e, s.e.c
	me, n := c.Rank(), c.Size()
	hs := p.hier

	sp := e.rec.Begin(e.rank, p.round, obs.PhaseLeader)
	lrecv, err := p.leaderBytesReq.Wait()
	sp.End(0, 0)
	if err != nil {
		return nil, err
	}

	hs.scatterB = growRows(hs.scatterB, n)
	if s.topo.IsLeader(me) {
		var hdr [8]byte
		for _, blob := range lrecv {
			err := eachRecordB(blob, func(src, dest int, frame []byte) {
				binary.LittleEndian.PutUint64(hdr[:], hierHdr(src, dest, len(frame)))
				hs.scatterB[dest] = append(hs.scatterB[dest], hdr[:]...)
				hs.scatterB[dest] = append(hs.scatterB[dest], frame...)
			})
			if err != nil {
				return nil, err
			}
		}
	}
	sp = e.rec.Begin(e.rank, p.round, obs.PhaseScatter)
	srecv, err := c.NodeAlltoallvBytes(s.topo, hs.scatterB)
	sp.End(0, 0)
	if err != nil {
		return nil, err
	}

	hs.recvB = nilRows(hs.recvB, n)
	collect := func(blob []byte) error {
		return eachRecordB(blob, func(src, dest int, frame []byte) {
			if dest == me {
				hs.recvB[src] = frame
			}
		})
	}
	for _, blob := range hs.recvGatB {
		if err := collect(blob); err != nil {
			return nil, err
		}
	}
	for _, blob := range srecv {
		if err := collect(blob); err != nil {
			return nil, err
		}
	}
	return hs.recvB, nil
}
