// Package pipeline assembles the substrates into the four end-to-end
// distributed k-mer counters the paper evaluates:
//
//   - CPU k-mer (Alg. 1) — the diBELLA-derived baseline (§III-A, §V-A),
//   - GPU k-mer (§III-B),
//   - GPU supermer (§IV, Alg. 2) — the paper's headline configuration,
//   - CPU supermer — an ablation beyond the paper isolating the supermer
//     optimization from GPU acceleration.
//
// Every variant runs the same three bulk-synchronous phases per rank —
// parse & process, exchange, count — over the mpisim communicator, computes
// bit-exact results, and reports a per-phase Summit-projected time
// breakdown (Fig. 3/7) plus the exchanged-volume and load-balance metrics
// (Tables II and III).
package pipeline

import (
	"fmt"
	"time"

	"dedukt/internal/cluster"
	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/fault"
	"dedukt/internal/gpusim"
	"dedukt/internal/kcount"
	"dedukt/internal/minimizer"
	"dedukt/internal/mpisim"
	"dedukt/internal/obs"
	recov "dedukt/internal/recover"
)

// Mode selects the exchanged unit.
type Mode int

const (
	// KmerMode ships individual packed k-mers (Alg. 1).
	KmerMode Mode = iota
	// SupermerMode ships minimizer-partitioned supermers (Alg. 2).
	SupermerMode
)

func (m Mode) String() string {
	switch m {
	case KmerMode:
		return "kmer"
	case SupermerMode:
		return "supermer"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Exchange selects the exchange strategy (see internal/pipeline/exchange.go
// and exchange_hier.go). Strategies are bit-identical in results; they
// differ in how attempt-0 payload frames travel and therefore in fabric
// message count and modeled/emulated exchange time.
type Exchange int

const (
	// ExchangeFlat is the paper's baseline: one P×P payload Alltoallv per
	// round.
	ExchangeFlat Exchange = iota
	// ExchangeHier is the topology-aware two-stage exchange: intra-node
	// gather onto node leaders (the NVLink tier), one
	// ceil(P/RanksPerNode)² Alltoallv between leaders, intra-node scatter.
	// A world size not divisible by RanksPerNode is handled as a ragged
	// last node.
	ExchangeHier
)

func (e Exchange) String() string {
	switch e {
	case ExchangeFlat:
		return "flat"
	case ExchangeHier:
		return "hier"
	default:
		return fmt.Sprintf("Exchange(%d)", int(e))
	}
}

// ParseExchange parses an -exchange flag value.
func ParseExchange(s string) (Exchange, error) {
	switch s {
	case "flat":
		return ExchangeFlat, nil
	case "hier":
		return ExchangeHier, nil
	default:
		return 0, fmt.Errorf("pipeline: unknown exchange strategy %q (want flat or hier)", s)
	}
}

// Config parameterizes one pipeline run.
type Config struct {
	// Layout selects the machine (nodes, ranks, GPU or CPU engine).
	Layout cluster.Layout
	// Mode selects k-mer or supermer exchange.
	Mode Mode
	// Enc is the base encoding; dna.Random is the paper's choice (§IV-A).
	Enc *dna.Encoding
	// K is the k-mer length (paper: 17).
	K int
	// M is the minimizer length (paper: 7 or 9); supermer mode only.
	M int
	// Window is the per-thread window in k-mer positions (paper: 15);
	// supermer mode only.
	Window int
	// Ord is the minimizer ordering; nil defaults to minimizer.Value{}.
	Ord minimizer.Ordering
	// Exchange selects the exchange strategy: ExchangeFlat (default, the
	// paper's P×P Alltoallv) or ExchangeHier (two-stage, node-leader
	// routed). Results are bit-identical either way.
	Exchange Exchange
	// GPUDirect, when true, models GPUDirect communication (§III-B.2):
	// payloads move NIC↔GPU directly and the host staging legs are skipped
	// entirely — no stage_h2d spans appear in traces and the modeled
	// staging time drops to zero.
	GPUDirect bool
	// Overlap, when true, runs each rank's round loop as a double-buffered
	// pipeline: round r's exchange is posted with nonblocking collectives
	// and round r+1's parse runs while it is in flight, hiding exchange
	// time behind compute (and vice versa). Results are bit-identical to
	// the serial schedule; the modeled steady-state round time becomes
	// max(compute, exchange) instead of their sum (see
	// Result.ModeledTotal). Off by default so the paper's bulk-synchronous
	// baseline stays reproducible.
	Overlap bool
	// TableLoad is the counter table's maximum load factor (default 0.5).
	TableLoad float64
	// Probing selects the collision policy (default linear, §III-B.3).
	Probing kcount.Probing
	// Canonical, when true, counts canonical k-mers (min of k-mer and its
	// reverse complement). The paper does not canonicalize; provided as a
	// library feature.
	Canonical bool
	// CPULoadLift evaluates the CPU baseline's load-dependent per-item
	// cost at items×CPULoadLift: scaled-down experiments set it to the
	// real-to-simulated dataset size ratio so the baseline's unit cost
	// sits at the paper's measured operating point (see
	// cluster.CPUModel.RankTimeLifted). Values ≤ 1 mean no lift.
	CPULoadLift float64
	// RoundBases caps the bases a rank processes per round; larger inputs
	// run in multiple parse-exchange-count rounds (§III-A's
	// memory-bounded multi-round execution). 0 = single round (in-memory
	// Run) or the MemBudgetBytes-derived cap (RunStream).
	RoundBases int
	// MemBudgetBytes bounds the live working-set of a streaming run
	// (RunStream): the per-rank round chunk is sized so that every rank's
	// round-loop buffers — the staged base chunk, the packed send
	// vectors, the framed wire arenas, and the received payloads —
	// together stay under the budget (see streamBytesPerBase for the
	// itemization). The counter tables are excluded: they hold the
	// output spectrum, which no out-of-core counting scheme can bound
	// without spilling. 0 defaults to DefaultMemBudget; when RoundBases
	// is also set, the tighter of the two caps applies. Ignored by the
	// in-memory Run.
	MemBudgetBytes int64
	// FilterSingletons enables the Bloom-filter singleton pre-filter of
	// the diBELLA/HipMer lineage (BFCounter-style): a k-mer's first
	// sighting is absorbed by a per-rank Bloom filter and only k-mers seen
	// at least twice enter the counter table, keeping error k-mers (the
	// bulk of distinct k-mers at high coverage) out of memory. Counts of
	// surviving k-mers stay exact except when a first sighting hits a
	// Bloom false positive (probability FilterFP). CPU engine only — the
	// paper's GPU pipeline has no Bloom stage.
	FilterSingletons bool
	// FilterFP is the Bloom false-positive target (default 0.01).
	FilterFP float64
	// KeepTables retains each rank's counted table in Result.Tables (they
	// are discarded by default: at scale they dominate memory). Downstream
	// consumers — de Bruijn graph construction, set operations, database
	// export — use them for per-k-mer access beyond the histogram.
	KeepTables bool
	// BalancedPartition enables the frequency-aware minimizer-to-rank
	// assignment (supermer mode only): minimizer bins are weighted by
	// their k-mer load and LPT-assigned to ranks, implementing the
	// "better partitioning algorithm that maintains the locality and at
	// the same time partitions data evenly" the paper leaves as future
	// work (§VII). Requires m ≤ 12.
	BalancedPartition bool
	// Fault configures the deterministic fault injector (see
	// internal/fault): seeded kill/straggler/drop/corrupt events against
	// the exchange path. The zero value injects nothing; the detection and
	// recovery machinery (checksummed frames, retry) runs either way.
	Fault fault.Config
	// MaxRetries bounds how many times a round whose exchange arrived
	// corrupted or incomplete is retried from the retained send buffers
	// before the round degrades (verified payloads only, Result.Incomplete
	// set). 0 means the default of 2; -1 disables retries entirely.
	MaxRetries int
	// ExchangeDeadline bounds how long a rank may wait inside one
	// collective for its peers before the run fails with
	// mpisim.ErrDeadline (a live-but-stalled peer; dead peers unblock
	// waiters immediately regardless). 0 disables the deadline.
	ExchangeDeadline time.Duration
	// WireTime, when non-nil, emulates fabric transfer time at wall level
	// in the simulator: every payload Alltoallv sleeps WireTime(bytes this
	// rank sent off-rank) before delivering. The simulator's collectives
	// are otherwise instantaneous in wall terms, which hides exactly the
	// communication cost the paper says dominates (§V); with a wire model
	// the Overlap schedule's latency hiding becomes measurable in wall
	// clock, not just in the modeled accounting. nil (the default) keeps
	// the wire instantaneous.
	WireTime func(sentBytes int) time.Duration
	// WireMsg, when non-nil, adds a per-message α component to the
	// emulated wire: a payload collective additionally waits WireMsg(m),
	// m being the number of off-node destinations the rank shipped payload
	// to. Together with the wire's node-aware byte crediting (intra-node
	// payload is free, see mpisim.Options.RanksPerNode) this is what makes
	// the hierarchical exchange's P²→(P/RanksPerNode)² message-count
	// reduction visible in wall clock, not just in the modeled accounting.
	WireMsg func(messages int) time.Duration
	// Obs, when non-nil, records per-rank per-round phase spans, fault
	// instants, and run metrics (see internal/obs). nil disables
	// observability at zero cost to the hot paths.
	Obs *obs.Recorder
	// Ckpt configures round-granularity checkpointing and shrink recovery
	// (DESIGN.md §12). Streaming runs only; the zero value disables both,
	// leaving PR 1's degrade-to-Incomplete as the terminal fault state.
	Ckpt CkptConfig
	// Spill configures two-pass out-of-core counting (DESIGN.md §16):
	// pass 1 appends each rank's received items to minimizer-partitioned
	// disk bins instead of one full-spectrum table; pass 2 counts one bin
	// at a time into a bounded working-set table and merges the bin
	// spectra bit-identically. The zero value keeps counting in memory.
	Spill SpillConfig
}

// SpillConfig parameterizes the out-of-core counting mode.
type SpillConfig struct {
	// Dir enables spilling: each rank writes its per-bin files
	// (r####-b####.spill) into this directory during pass 1 and removes
	// them after pass 2. The directory must not hold spill state from
	// another run. Empty disables the subsystem.
	Dir string
	// Bins is the number of disk bins per rank (default 32, max 4096).
	// More bins mean a smaller pass-2 working set and more open files.
	Bins int
}

// defaultSpillBins balances pass-2 working-set size against per-rank
// file count; maxSpillBins caps the open-file and staging-buffer cost.
const (
	defaultSpillBins = 32
	maxSpillBins     = 4096
)

// bins returns the effective bin count.
func (c SpillConfig) bins() int {
	if c.Bins == 0 {
		return defaultSpillBins
	}
	return c.Bins
}

// CkptConfig parameterizes the recovery subsystem of a streaming run.
type CkptConfig struct {
	// Dir enables checkpointing: every Every rounds each rank persists
	// its spectrum slice plus a round/cursor manifest into this
	// directory (see internal/recover for the on-disk format), and a
	// rank death triggers shrink recovery instead of failing the run.
	// Empty disables the subsystem.
	Dir string
	// Every is the checkpoint period in rounds (default 4).
	Every int
	// NoShrink disables the shrink-recovery path while keeping periodic
	// checkpoints: a rank death fails the run (resumable offline via
	// ResumeStream) instead of reconfiguring in place.
	NoShrink bool
	// Reopen opens a fresh source positioned at the given cursor. Shrink
	// recovery calls it to re-feed the replayed rounds, and ResumeStream
	// to fast-forward the input; required whenever Dir is set. The
	// source must be a fastq.CursorSource.
	Reopen func(fastq.Cursor) (fastq.Source, error)
	// Inputs fingerprints the input file list (path + size); a resume
	// refuses a checkpoint taken over different inputs.
	Inputs []recov.InputFile
}

// every returns the effective checkpoint period.
func (c CkptConfig) every() int {
	if c.Every == 0 {
		return 4
	}
	return c.Every
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Layout.Validate(); err != nil {
		return err
	}
	if c.Enc == nil {
		return fmt.Errorf("pipeline: nil encoding")
	}
	if c.K <= 0 || c.K > dna.MaxK {
		return fmt.Errorf("pipeline: k=%d outside (0,%d]", c.K, dna.MaxK)
	}
	if c.Mode == SupermerMode {
		mc := c.minimizerConfig()
		if err := mc.Validate(); err != nil {
			return err
		}
		if c.Window > 255 {
			return fmt.Errorf("pipeline: window=%d exceeds the wire format's 255", c.Window)
		}
		if c.BalancedPartition && c.M > 12 {
			return fmt.Errorf("pipeline: balanced partitioning requires m ≤ 12 (got %d)", c.M)
		}
	}
	if c.BalancedPartition && c.Mode != SupermerMode {
		return fmt.Errorf("pipeline: balanced partitioning applies to supermer mode only")
	}
	if c.RoundBases < 0 {
		return fmt.Errorf("pipeline: negative RoundBases %d", c.RoundBases)
	}
	if c.MemBudgetBytes < 0 {
		return fmt.Errorf("pipeline: negative MemBudgetBytes %d", c.MemBudgetBytes)
	}
	if c.FilterSingletons && c.Layout.GPU != nil {
		return fmt.Errorf("pipeline: the singleton Bloom filter is a CPU-baseline feature (GPU layout given)")
	}
	if c.FilterFP < 0 || c.FilterFP >= 1 {
		return fmt.Errorf("pipeline: FilterFP %v outside [0,1)", c.FilterFP)
	}
	if c.TableLoad < 0 || c.TableLoad >= 1 {
		return fmt.Errorf("pipeline: table load %.2f outside [0,1)", c.TableLoad)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	if c.MaxRetries < -1 {
		return fmt.Errorf("pipeline: MaxRetries %d below -1", c.MaxRetries)
	}
	switch c.Exchange {
	case ExchangeFlat:
	case ExchangeHier:
		// A world size not divisible by Net.RanksPerNode is fine: the
		// hierarchical strategy groups ranks by ceiling division, so the
		// trailing node is simply smaller and its first rank still leads
		// it. (Shrink recovery produces such worlds mid-run regardless of
		// the configured layout, so raggedness must work anyway.)
	default:
		return fmt.Errorf("pipeline: unknown exchange strategy %v", c.Exchange)
	}
	if c.ExchangeDeadline < 0 {
		return fmt.Errorf("pipeline: negative ExchangeDeadline %v", c.ExchangeDeadline)
	}
	if c.Ckpt.Every < 0 {
		return fmt.Errorf("pipeline: negative checkpoint period %d", c.Ckpt.Every)
	}
	if c.Ckpt.Dir != "" && c.Ckpt.Reopen == nil {
		return fmt.Errorf("pipeline: checkpointing requires Ckpt.Reopen (recovery re-feeds the source)")
	}
	if c.Spill.Bins < 0 || c.Spill.Bins > maxSpillBins {
		return fmt.Errorf("pipeline: spill bins %d outside [0,%d]", c.Spill.Bins, maxSpillBins)
	}
	if c.Spill.Bins > 0 && c.Spill.Dir == "" {
		return fmt.Errorf("pipeline: Spill.Bins set without Spill.Dir")
	}
	if c.Spill.Dir != "" {
		if c.KeepTables {
			return fmt.Errorf("pipeline: spill counting cannot keep per-rank tables (the full-spectrum table is exactly what spilling avoids)")
		}
		if c.Ckpt.Dir != "" {
			return fmt.Errorf("pipeline: spill counting and checkpointing are mutually exclusive (checkpoints persist the in-memory spectrum slice spilling never builds)")
		}
		if c.FilterSingletons {
			return fmt.Errorf("pipeline: spill counting cannot use the singleton Bloom filter (first sightings must survive until their bin is counted)")
		}
	}
	return nil
}

// maxRetries returns the retry budget (default 2; -1 configures zero).
func (c Config) maxRetries() int {
	switch {
	case c.MaxRetries == 0:
		return 2
	case c.MaxRetries < 0:
		return 0
	default:
		return c.MaxRetries
	}
}

func (c Config) ordering() minimizer.Ordering {
	if c.Ord == nil {
		return minimizer.Value{}
	}
	return c.Ord
}

func (c Config) minimizerConfig() minimizer.Config {
	return minimizer.Config{K: c.K, M: c.M, Window: c.Window, Ord: c.ordering()}
}

func (c Config) tableLoad() float64 {
	if c.TableLoad == 0 {
		return 0.5
	}
	return c.TableLoad
}

// DefaultMemBudget is the streaming working-set budget when
// Config.MemBudgetBytes is zero: 256 MiB across all simulated ranks.
const DefaultMemBudget = 256 << 20

// streamBytesPerBase is the modeled live bytes one input base pins across
// a streaming rank's round-loop buffers, used to translate a memory
// budget into a per-rank round chunk. Itemized per base: the staged
// chunk records and SeqBuffer copy (~3B), the packed send words or wire
// bytes plus the checksummed frame arena, double-buffered for the
// overlapped schedule (~4×8B upper bound: k-mer mode emits up to one
// 8-byte word per base), and the received payload views (~2×8B). The
// constant deliberately rounds up — streaming wants to be safely under
// budget, not precisely at it.
const streamBytesPerBase = 48

// memBudget returns the effective streaming budget.
func (c Config) memBudget() int64 {
	if c.MemBudgetBytes == 0 {
		return DefaultMemBudget
	}
	return c.MemBudgetBytes
}

// streamRoundBases derives the per-rank round chunk cap from the memory
// budget: the budget is shared by all ranks' live round buffers, each of
// which pins streamBytesPerBase per chunk base. An explicitly tighter
// RoundBases still wins.
func (c Config) streamRoundBases() int {
	per := int(c.memBudget() / int64(c.Layout.Ranks()*streamBytesPerBase))
	if per < 1 {
		per = 1
	}
	if c.RoundBases > 0 && c.RoundBases < per {
		per = c.RoundBases
	}
	return per
}

// Default returns the paper's operating point on the given layout: k=17,
// m=7, window=15, random encoding, value ordering.
func Default(layout cluster.Layout, mode Mode) Config {
	return Config{
		Layout: layout,
		Mode:   mode,
		Enc:    &dna.Random,
		K:      17,
		M:      7,
		Window: 15,
	}
}

// PhaseBreakdown is the three-module runtime split of Figs. 3 and 7.
type PhaseBreakdown struct {
	// Parse is "parse & process k-mers" (GPU kernels or CPU loop).
	Parse time.Duration
	// Exchange is "exchange (incl. MPI call)": host↔device staging plus
	// the fabric time of Alltoall + Alltoallv.
	Exchange time.Duration
	// Count is "k-mer counter" (table insertion).
	Count time.Duration
}

// Total returns the end-to-end modeled time (excluding I/O, as the paper
// reports).
func (p PhaseBreakdown) Total() time.Duration { return p.Parse + p.Exchange + p.Count }

// Result carries everything the experiments need from one run.
type Result struct {
	// Name echoes the layout name and mode.
	Name string
	// Ranks and Nodes record the world geometry.
	Ranks, Nodes int
	// Mode is the exchanged unit.
	Mode Mode
	// GPU reports whether the GPU engine ran.
	GPU bool
	// Modeled is the Summit-projected phase breakdown.
	Modeled PhaseBreakdown
	// Wall is the wall-clock time of the whole simulated run (Go time —
	// useful only for judging simulation cost, not Summit performance).
	Wall time.Duration
	// ItemsExchanged counts exchanged units (k-mers or supermers) — the
	// quantity of Table II.
	ItemsExchanged uint64
	// PayloadBytes is the exchanged payload volume including supermer
	// length bytes.
	PayloadBytes uint64
	// Volume summarizes the Alltoallv traffic matrix.
	Volume mpisim.VolumeStats
	// AlltoallvTime is the fabric time of the payload exchange alone
	// (Fig. 8 compares exactly this).
	AlltoallvTime time.Duration
	// TotalKmers is the counted multiset size; DistinctKmers the table
	// cardinality.
	TotalKmers, DistinctKmers uint64
	// PerRankKmers is the number of k-mer instances counted on each rank
	// (Table III's load column).
	PerRankKmers []uint64
	// Histogram is the global k-mer frequency spectrum.
	Histogram kcount.Histogram
	// TopKmers holds the globally most frequent k-mers (up to 64), counts
	// descending — the "k-mers of scientific interest by frequency" query
	// of §II-A.
	TopKmers []kcount.KV
	// ParseCompute and CountCompute expose engine-level detail for the
	// ablation benches (GPU: divergence-adjusted ops; CPU: metered ops).
	ParseCompute, CountCompute uint64
	// GPUParse and GPUCount aggregate the kernel statistics across ranks
	// and rounds (zero-valued on CPU runs): memory transactions after
	// coalescing, divergence waste, atomic counts — the efficiency
	// metrics §III-B's kernel design targets.
	GPUParse, GPUCount gpusim.KernelStats
	// Rounds is the number of parse-exchange-count rounds executed
	// (1 unless Config.RoundBases or a streaming memory budget forced
	// multi-round operation).
	Rounds int
	// Streamed reports that the run ingested its input out-of-core via
	// RunStream; MemBudget echoes the effective memory budget it ran
	// under (0 for in-memory runs).
	Streamed  bool
	MemBudget int64
	// Spilled reports that counting ran the two-pass out-of-core path
	// (Config.Spill); SpillBins echoes the per-rank bin count it used
	// (0 for in-memory counting).
	Spilled   bool
	SpillBins int
	// InputReads and InputBases count the ingested records and bases —
	// for streamed runs the only place the input size is known, since
	// the dataset is never materialized.
	InputReads, InputBases uint64
	// Overlap echoes Config.Overlap: whether the rank round loops ran the
	// double-buffered overlapped schedule. ModeledTotal applies the
	// overlap rule when set.
	Overlap bool
	// Tables holds each rank's counted partition when Config.KeepTables is
	// set (nil otherwise). Partitions are disjoint; merge with
	// kcount.Table.Merge for a global table.
	Tables []*kcount.Table
	// Incomplete reports that at least one exchange round exhausted its
	// retry budget and degraded: unverifiable payloads were discarded, so
	// the counts are a lower bound rather than exact. Faults itemizes the
	// damage per rank.
	Incomplete bool
	// Faults is the per-rank fault and recovery tally (indexed by rank):
	// injected kills/delays/drops/corruptions plus observed bad frames,
	// retried rounds, and discarded items. All-zero on a healthy run.
	Faults []fault.Counts
	// Checkpoints is the number of round checkpoints persisted (0 when
	// Config.Ckpt is unset).
	Checkpoints int
	// Recovered reports that at least one shrink recovery completed: one
	// or more ranks died, the survivors reconfigured, replayed, and the
	// counts are nevertheless full and exact. DeadRanks lists the
	// original ids of the ranks lost along the way.
	Recovered bool
	DeadRanks []int
	// Resumed reports that this run continued a checkpoint via
	// ResumeStream rather than starting from the beginning of the input.
	Resumed bool
}

// ModeledTotal returns the end-to-end modeled time under the run's
// schedule. Serial (bulk-synchronous) runs pay compute + exchange in full.
// Overlapped runs hide the shorter of the two behind the longer in every
// steady-state round: with R rounds, R-1 exchanges overlap the next round's
// compute, so the total is R·max(compute, exchange) plus the un-overlapped
// pipeline fill (the first round's compute or the last round's drain),
// approximated here as one round of compute.
func (r *Result) ModeledTotal() time.Duration {
	compute := r.Modeled.Parse + r.Modeled.Count
	if !r.Overlap || r.Rounds < 2 {
		return compute + r.Modeled.Exchange
	}
	steady := r.Modeled.Exchange
	if compute > steady {
		steady = compute
	}
	return steady + compute/time.Duration(r.Rounds)
}

// TotalFaults folds the per-rank fault tallies into one.
func (r *Result) TotalFaults() fault.Counts {
	var sum fault.Counts
	for _, c := range r.Faults {
		sum.Add(c)
	}
	return sum
}

// MergedTable folds all retained rank tables into one (nil when the run did
// not keep tables).
func (r *Result) MergedTable() *kcount.Table {
	if len(r.Tables) == 0 {
		return nil
	}
	out := kcount.NewTable(int(r.DistinctKmers), kcount.Linear)
	for _, t := range r.Tables {
		if t != nil {
			out.Merge(t)
		}
	}
	return out
}

// LoadImbalance returns max/avg of PerRankKmers (Table III).
func (r *Result) LoadImbalance() float64 {
	if len(r.PerRankKmers) == 0 {
		return 0
	}
	var sum, max uint64
	for _, v := range r.PerRankKmers {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	avg := float64(sum) / float64(len(r.PerRankKmers))
	return float64(max) / avg
}

// MinMaxPerRank returns the lightest and heaviest rank loads (Table III).
func (r *Result) MinMaxPerRank() (min, max uint64) {
	if len(r.PerRankKmers) == 0 {
		return 0, 0
	}
	min = r.PerRankKmers[0]
	for _, v := range r.PerRankKmers {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// InsertionRate returns counted k-mers per second of modeled compute time
// (parse+count, excluding exchange) — the y-axis of Fig. 9.
func (r *Result) InsertionRate() float64 {
	t := (r.Modeled.Parse + r.Modeled.Count).Seconds()
	if t == 0 {
		return 0
	}
	return float64(r.TotalKmers) / t
}
