package pipeline

import (
	"fmt"
	"time"

	"dedukt/internal/fault"
	"dedukt/internal/kernels"
	"dedukt/internal/mpisim"
	"dedukt/internal/obs"
)

// exchanger is the fault-tolerant exchange path shared by the GPU and CPU
// rank bodies. Every per-destination payload travels inside a checksummed
// frame (kernels.FrameBytes / FrameWords); the receiver verifies each frame
// and cross-checks its item count against the Alltoall announcement. When
// any rank receives a bad or missing frame, the world agrees (via
// AllreduceSum) to retry the round from the retained send buffers, up to
// maxRetries times. Payloads that already verified are kept across
// attempts — a retry only needs the previously-bad sources to clear — and
// the fault injector re-rolls per attempt, so transient faults do. A round
// that exhausts its budget degrades: the verified payloads are counted,
// the rest are discarded, and the rank's outcome is flagged incomplete.
//
// The exchange is split into a post half (postWords/postWire: announce the
// counts and ship attempt 0 with nonblocking collectives) and a finish half
// (finishWords/finishWire: wait, verify, retry, settle), so the round loop
// can run the next round's parse between them (Config.Overlap). Per-round
// state lives in two parity-indexed slots reused across rounds: the counts
// vector, the frame arena attempt-0 payloads are packed into, and the
// verification bookkeeping — the round loop guarantees a slot is dead on
// every rank before its parity comes up again. Retry attempts frame fresh
// allocations instead: receivers may retain verified views of earlier
// attempts, so the arena must never be rewritten while a round is live.
//
// HOW attempt-0 frames travel is pluggable (exchangeStrategy): the flat
// strategy ships the P×P Alltoallv directly; the hierarchical strategy
// routes off-node frames through node leaders over the NVLink tier. The
// announcement, CRC verification, retry, settle and degrade machinery is
// shared — strategies only move opaque frames — which is what keeps every
// strategy bit-identical under the fault × overlap × shrink matrix.
//
// When a recorder is configured, injected drops/corruptions surface as
// instant events, each retry attempt gets its own span nested inside the
// exchange span, and a degraded round emits a degraded_round instant.
type exchanger struct {
	c *mpisim.Comm
	// rank is the seat's original rank id — the coordinate for fault
	// rolls and observability. It differs from c.Rank() after a shrink
	// recovery: the fault schedule and the report's rank axis stay keyed
	// to the original world.
	rank    int
	inj     *fault.Injector
	retries int
	out     *rankOutcome
	rec     *obs.Recorder
	strat   exchangeStrategy
	// msgs counts the fabric messages posted by attempt-0 payload
	// exchanges (pipeline_exchange_messages_total); nil without a recorder.
	msgs  *obs.Counter
	slots [2]exchangeSlot
}

// exchangeStrategy is the pluggable attempt-0 shipping layer of the
// exchange. post* runs inside the exchanger's post half and must post the
// count announcement onto p.ann plus whatever payload collectives the
// strategy needs; it may issue blocking intra-node collectives first — the
// round loop guarantees no nonblocking requests are pending at any post
// site, in both schedules. finish* waits for those collectives and returns
// the attempt-0 frames indexed by (current-communicator) source rank, nil
// marking a frame lost in flight — the shared verifier treats every
// returned frame exactly as a flat Alltoallv row, and retries always use
// the flat blocking path (the rare path optimizes for simplicity, and its
// frames are freshly framed from the retained send buffers either way).
type exchangeStrategy interface {
	// name labels the strategy in metrics ("flat", "hier").
	name() string
	postWords(p *pendingExchange, counts []int, framed [][]uint64)
	postBytes(p *pendingExchange, counts []int, framed [][]byte)
	finishWords(p *pendingExchange) ([][]uint64, error)
	finishBytes(p *pendingExchange) ([][]byte, error)
	// messages is the fabric message count of one round's attempt-0
	// payload exchange: P² flat, ceil(P/RanksPerNode)² hierarchical.
	messages() int
}

// newExchanger builds the configured strategy's exchanger for one rank
// body. It is re-created after a shrink recovery (the rank bodies are
// re-entered with the shrunk communicator), so the hierarchical topology
// always reflects the current world size.
func newExchanger(cfg *Config, c *mpisim.Comm, rank int, inj *fault.Injector, out *rankOutcome) *exchanger {
	e := &exchanger{
		c: c, rank: rank, inj: inj,
		retries: cfg.maxRetries(), out: out, rec: cfg.Obs,
	}
	switch cfg.Exchange {
	case ExchangeHier:
		e.strat = &hierStrategy{e: e, topo: cfg.Layout.Net.Topology()}
	default:
		e.strat = &flatStrategy{e: e}
	}
	if reg := cfg.Obs.Registry(); reg != nil {
		e.msgs = reg.Counter("pipeline_exchange_messages_total",
			"Fabric point-to-point messages comprised by attempt-0 payload exchanges (P² flat, (P/RanksPerNode)² hierarchical).",
			obs.L("strategy", e.strat.name()))
	}
	return e
}

// flatStrategy ships attempt-0 frames with the direct P×P nonblocking
// Alltoallv — the paper's baseline exchange.
type flatStrategy struct{ e *exchanger }

func (s *flatStrategy) name() string { return "flat" }

func (s *flatStrategy) postWords(p *pendingExchange, counts []int, framed [][]uint64) {
	p.ann = s.e.c.IAlltoall(counts)
	p.wordsReq = s.e.c.IAlltoallvUint64(framed)
}

func (s *flatStrategy) postBytes(p *pendingExchange, counts []int, framed [][]byte) {
	p.ann = s.e.c.IAlltoall(counts)
	p.bytesReq = s.e.c.IAlltoallvBytes(framed)
}

func (s *flatStrategy) finishWords(p *pendingExchange) ([][]uint64, error) {
	return p.wordsReq.Wait()
}

func (s *flatStrategy) finishBytes(p *pendingExchange) ([][]byte, error) {
	return p.bytesReq.Wait()
}

func (s *flatStrategy) messages() int {
	return kernels.FlatExchangeMessages(s.e.c.Size())
}

// exchangeSlot is one parity's pooled round state.
type exchangeSlot struct {
	counts  []int
	arenaW  []uint64
	arenaB  []byte
	framedW [][]uint64
	framedB [][]byte
	partsW  [][]uint64
	partsB  [][]byte
	ok      []bool
}

// pendingExchange is one posted round exchange awaiting its finish half.
type pendingExchange struct {
	round int
	// sp is the round's exchange span: opened at post, ended by the caller
	// after finish (or by finish itself on error).
	sp       obs.SpanHandle
	ann      *mpisim.Request[[]int]
	wordsReq *mpisim.Request[[][]uint64]
	bytesReq *mpisim.Request[[][]byte]
	// leaderWordsReq/leaderBytesReq carry the hierarchical strategy's
	// inter-node leader Alltoallv (nil under flat).
	leaderWordsReq *mpisim.Request[[][]uint64]
	leaderBytesReq *mpisim.Request[[][]byte]
	// postErr records a failure of a strategy's blocking post stage (the
	// intra-node gather); it surfaces when the round is finished.
	postErr   error
	hier      *hierSlot
	sendWords [][]uint64
	sendWire  [][]byte
	wire      kernels.SupermerWire
	slot      *exchangeSlot
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// moreFlag is the end-of-stream agreement bit piggybacked on the count
// announcement: a rank whose input continues past this round sets it on
// every outgoing count, and finish* folds the incoming flags into
// anyMore before stripping them. Because every rank derives anyMore from
// the same announcement, termination of the open-ended round loop is
// collective with zero extra collectives — and the announcement travels
// outside the fault injector's reach, so the agreement survives dropped
// and corrupted payload frames. Bit 30 leaves per-destination counts up
// to ~10⁹ items representable, far beyond any RoundBases-bounded round.
const moreFlag = 1 << 30

// stripMore extracts the more-bits from a received announcement in
// place, returning whether any sender's input continues.
func stripMore(expect []int) (anyMore bool) {
	for i, v := range expect {
		if v&moreFlag != 0 {
			anyMore = true
			expect[i] = v &^ moreFlag
		}
	}
	return anyMore
}

// postWords posts the k-mer mode round exchange: the attempt-0 frames are
// packed into the slot's pooled arena (presized so no append can
// reallocate mid-loop) and handed to the strategy, which posts the count
// announcement (IAlltoall — the vector is copied at post time, so the
// pooled slot is immediately reusable) and ships the frames. send must
// stay unmutated until finishWords returns (it is also the retry source).
// more announces that this rank's input continues past this round (see
// moreFlag).
func (e *exchanger) postWords(round int, send [][]uint64, more bool) *pendingExchange {
	rank := e.rank
	slot := &e.slots[round%2]
	p := &pendingExchange{round: round, sendWords: send, slot: slot}
	p.sp = e.rec.Begin(rank, round, obs.PhaseExchange)

	slot.counts = growInts(slot.counts, len(send))
	total := 0
	for d, part := range send {
		slot.counts[d] = len(part)
		if more {
			slot.counts[d] |= moreFlag
		}
		total += 1 + len(part)
	}

	if cap(slot.arenaW) < total {
		slot.arenaW = make([]uint64, 0, total)
	}
	arena := slot.arenaW[:0]
	if cap(slot.framedW) < len(send) {
		slot.framedW = make([][]uint64, len(send))
	}
	framed := slot.framedW[:len(send)]
	for d, part := range send {
		if e.inj.Drop(rank, round, 0, d) {
			framed[d] = nil // destination receives nil: a dropped payload
			e.rec.Instant(rank, round, obs.EvDrop)
			continue
		}
		off := len(arena)
		arena = kernels.AppendFrameWords(arena, part)
		f := arena[off:len(arena):len(arena)]
		var hit bool
		// CorruptWords copies on hit, so the arena itself stays clean.
		framed[d], hit = e.inj.CorruptWords(rank, round, 0, d, f)
		if hit {
			e.rec.Instant(rank, round, obs.EvCorrupt)
		}
	}
	slot.arenaW = arena[:0]
	e.strat.postWords(p, slot.counts, framed)
	e.countMessages()
	return p
}

// countMessages credits the round's fabric message count once per world —
// rank 0 of the current communicator adds the whole round's tally, so the
// counter reads as messages-per-run, not per-rank shares.
func (e *exchanger) countMessages() {
	if e.msgs != nil && e.c.Rank() == 0 {
		e.msgs.Add(uint64(e.strat.messages()))
	}
}

// postWire is postWords for supermer-mode wire payloads.
func (e *exchanger) postWire(round int, wire kernels.SupermerWire, send [][]byte, more bool) *pendingExchange {
	rank := e.rank
	slot := &e.slots[round%2]
	p := &pendingExchange{round: round, sendWire: send, wire: wire, slot: slot}
	p.sp = e.rec.Begin(rank, round, obs.PhaseExchange)

	stride := wire.Stride()
	slot.counts = growInts(slot.counts, len(send))
	total := 0
	for d, part := range send {
		slot.counts[d] = len(part) / stride
		if more {
			slot.counts[d] |= moreFlag
		}
		total += byteFrameOverhead + len(part)
	}

	if cap(slot.arenaB) < total {
		slot.arenaB = make([]byte, 0, total)
	}
	arena := slot.arenaB[:0]
	if cap(slot.framedB) < len(send) {
		slot.framedB = make([][]byte, len(send))
	}
	framed := slot.framedB[:len(send)]
	for d, part := range send {
		if e.inj.Drop(rank, round, 0, d) {
			framed[d] = nil
			e.rec.Instant(rank, round, obs.EvDrop)
			continue
		}
		off := len(arena)
		arena = kernels.AppendFrameBytes(arena, part, len(part)/stride)
		f := arena[off:len(arena):len(arena)]
		var hit bool
		framed[d], hit = e.inj.CorruptBytes(rank, round, 0, d, f)
		if hit {
			e.rec.Instant(rank, round, obs.EvCorrupt)
		}
	}
	slot.arenaB = arena[:0]
	e.strat.postBytes(p, slot.counts, framed)
	e.countMessages()
	return p
}

// byteFrameOverhead mirrors the kernels byte-frame header size for arena
// presizing (the exact value only affects capacity, not correctness).
const byteFrameOverhead = 16

// finishWords completes a posted k-mer exchange: wait for the announcement
// and attempt-0 payloads, verify every frame, retry bad rounds with
// blocking collectives (fresh frames — receivers hold views into the
// attempt-0 arena), and settle. It returns the per-source verified payloads
// (nil for a source whose payload was lost past the retry budget) plus the
// announcement's end-of-stream agreement: anyMore is true while any rank's
// input continues (see moreFlag). On error the exchange span is closed; on
// success it stays open for the caller to End with the staging time.
func (e *exchanger) finishWords(p *pendingExchange) ([][]uint64, bool, error) {
	rank := e.rank
	slot := p.slot
	if p.postErr != nil {
		p.sp.End(0, 0)
		return nil, false, p.postErr
	}
	expect, err := p.ann.Wait()
	if err != nil {
		p.sp.End(0, 0)
		return nil, false, err
	}
	anyMore := stripMore(expect)
	n := len(p.sendWords)
	if cap(slot.partsW) < n {
		slot.partsW = make([][]uint64, n)
	}
	parts := slot.partsW[:n]
	slot.ok = growBools(slot.ok, n)
	ok := slot.ok
	for i := range parts {
		parts[i], ok[i] = nil, false
	}
	for attempt := 0; ; attempt++ {
		sp := e.beginAttempt(rank, p.round, attempt)
		var recv [][]uint64
		if attempt == 0 {
			recv, err = e.strat.finishWords(p)
		} else {
			framed := slot.framedW[:n]
			for d, part := range p.sendWords {
				if e.inj.Drop(rank, p.round, attempt, d) {
					framed[d] = nil
					e.rec.Instant(rank, p.round, obs.EvDrop)
					continue
				}
				var hit bool
				framed[d], hit = e.inj.CorruptWords(rank, p.round, attempt, d, kernels.FrameWords(part))
				if hit {
					e.rec.Instant(rank, p.round, obs.EvCorrupt)
				}
			}
			recv, err = e.c.AlltoallvUint64(framed)
		}
		if err != nil {
			sp.End(0, 0)
			p.sp.End(0, 0)
			return nil, false, err
		}
		var bad uint64
		for i, f := range recv {
			if ok[i] {
				continue // verified on an earlier attempt
			}
			payload, ferr := kernels.UnframeWords(f)
			if ferr != nil || len(payload) != expect[i] {
				bad++
				continue
			}
			parts[i], ok[i] = payload, true
		}
		done, err := e.settle(p.round, attempt, bad)
		sp.End(0, bad)
		if err != nil {
			p.sp.End(0, 0)
			return nil, false, err
		}
		if !done {
			continue
		}
		var lost uint64
		for i := range parts {
			if !ok[i] {
				lost += uint64(expect[i])
			}
		}
		e.degrade(p.round, lost, bad)
		return parts, anyMore, nil
	}
}

// finishWire is finishWords for supermer-mode wire payloads: beyond the
// frame checksum, each accepted payload's images are structurally verified
// (length bytes in range) before release.
func (e *exchanger) finishWire(p *pendingExchange) ([][]byte, bool, error) {
	rank := e.rank
	slot := p.slot
	wire := p.wire
	if p.postErr != nil {
		p.sp.End(0, 0)
		return nil, false, p.postErr
	}
	expect, err := p.ann.Wait()
	if err != nil {
		p.sp.End(0, 0)
		return nil, false, err
	}
	anyMore := stripMore(expect)
	n := len(p.sendWire)
	if cap(slot.partsB) < n {
		slot.partsB = make([][]byte, n)
	}
	parts := slot.partsB[:n]
	slot.ok = growBools(slot.ok, n)
	ok := slot.ok
	for i := range parts {
		parts[i], ok[i] = nil, false
	}
	stride := wire.Stride()
	for attempt := 0; ; attempt++ {
		sp := e.beginAttempt(rank, p.round, attempt)
		var recv [][]byte
		if attempt == 0 {
			recv, err = e.strat.finishBytes(p)
		} else {
			framed := slot.framedB[:n]
			for d, part := range p.sendWire {
				if e.inj.Drop(rank, p.round, attempt, d) {
					framed[d] = nil
					e.rec.Instant(rank, p.round, obs.EvDrop)
					continue
				}
				var hit bool
				framed[d], hit = e.inj.CorruptBytes(rank, p.round, attempt, d, kernels.FrameBytes(part, len(part)/stride))
				if hit {
					e.rec.Instant(rank, p.round, obs.EvCorrupt)
				}
			}
			recv, err = e.c.AlltoallvBytes(framed)
		}
		if err != nil {
			sp.End(0, 0)
			p.sp.End(0, 0)
			return nil, false, err
		}
		var bad uint64
		for i, f := range recv {
			if ok[i] {
				continue // verified on an earlier attempt
			}
			payload, items, ferr := kernels.UnframeBytes(f)
			if ferr != nil || items != expect[i] {
				bad++
				continue
			}
			if n, verr := wire.VerifyImages(payload); verr != nil || n != expect[i] {
				bad++
				continue
			}
			parts[i], ok[i] = payload, true
		}
		done, err := e.settle(p.round, attempt, bad)
		sp.End(0, bad)
		if err != nil {
			p.sp.End(0, 0)
			return nil, false, err
		}
		if !done {
			continue
		}
		var lost uint64
		for i := range parts {
			if !ok[i] {
				lost += uint64(expect[i])
			}
		}
		e.degrade(p.round, lost, bad)
		return parts, anyMore, nil
	}
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// beginAttempt opens a retry span for attempts past the first (the first
// attempt lives inside the enclosing exchange span). The zero handle it
// returns for attempt 0 (or a nil recorder) makes End a no-op.
func (e *exchanger) beginAttempt(rank, round, attempt int) obs.SpanHandle {
	if attempt == 0 {
		return obs.SpanHandle{}
	}
	return e.rec.Begin(rank, round, obs.PhaseRetry)
}

// settle agrees world-wide on this attempt's outcome: done=true means the
// caller must release the (possibly degraded) payloads; done=false means
// every rank retries. The AllreduceSum keeps the decision collective —
// ranks never diverge on whether a retry happens.
func (e *exchanger) settle(round, attempt int, bad uint64) (done bool, err error) {
	rank := e.rank
	e.inj.RecordBadFrames(rank, bad)
	totalBad, err := e.c.AllreduceSum(bad)
	if err != nil {
		return false, err
	}
	if totalBad == 0 {
		return true, nil
	}
	if attempt < e.retries {
		e.inj.RecordRetry(rank)
		e.rec.Instant(rank, round, obs.EvRetry)
		return false, nil
	}
	return true, nil // budget exhausted: degrade
}

// degrade flags the rank outcome when payloads were lost for good.
func (e *exchanger) degrade(round int, lost, bad uint64) {
	if bad == 0 {
		return
	}
	e.out.incomplete = true
	e.inj.RecordDiscarded(e.rank, lost)
	e.rec.Instant(e.rank, round, obs.EvDegraded)
}

// killOrStall applies the injector's round-start faults for this rank: a
// straggler stall (recoverable — peers wait, or trip the deadline when one
// is configured), a probabilistic kill, or the deterministic fatal kill
// the recovery tests use (the rank abandons the computation, poisoning the
// world for its peers). rank is the seat's original id — the injector's
// schedule is keyed to the original world so a fatal kill targets the same
// rank whether or not earlier shrinks renumbered the communicator. Fired
// faults surface as instant events when a recorder is configured.
func killOrStall(inj *fault.Injector, rank, round int, rec *obs.Recorder) error {
	if d := inj.Delay(rank, round); d > 0 {
		rec.Instant(rank, round, obs.EvDelay)
		time.Sleep(d)
	}
	if inj.Kill(rank, round) || inj.FatalKill(rank, round) {
		rec.Instant(rank, round, obs.EvKill)
		return fmt.Errorf("pipeline: rank %d at round %d: %w", rank, round, fault.ErrKilled)
	}
	return nil
}
