package pipeline

import (
	"fmt"
	"time"

	"dedukt/internal/fault"
	"dedukt/internal/kernels"
	"dedukt/internal/mpisim"
	"dedukt/internal/obs"
)

// exchanger is the fault-tolerant exchange path shared by the GPU and CPU
// rank bodies. Every per-destination payload travels inside a checksummed
// frame (kernels.FrameBytes / FrameWords); the receiver verifies each frame
// and cross-checks its item count against the Alltoall announcement. When
// any rank receives a bad or missing frame, the world agrees (via
// AllreduceSum) to retry the round from the retained send buffers, up to
// maxRetries times. Payloads that already verified are kept across
// attempts — a retry only needs the previously-bad sources to clear — and
// the fault injector re-rolls per attempt, so transient faults do. A round
// that exhausts its budget degrades: the verified payloads are counted,
// the rest are discarded, and the rank's outcome is flagged incomplete.
//
// When a recorder is configured, injected drops/corruptions surface as
// instant events, each retry attempt gets its own span nested inside the
// exchange span, and a degraded round emits a degraded_round instant.
type exchanger struct {
	c       *mpisim.Comm
	inj     *fault.Injector
	retries int
	out     *rankOutcome
	rec     *obs.Recorder
}

// announce runs the count exchange (MPI_Alltoall of Alg. 1) and returns the
// per-source expected item counts.
func (e *exchanger) announce(counts []int) ([]int, error) {
	return e.c.Alltoall(counts)
}

// exchangeWords ships k-mer mode word payloads; expect is the per-source
// item announcement from announce. It returns the per-source verified
// payloads (nil for a source whose payload was lost past the retry budget).
func (e *exchanger) exchangeWords(round int, send [][]uint64, expect []int) ([][]uint64, error) {
	rank := e.c.Rank()
	parts := make([][]uint64, len(send))
	ok := make([]bool, len(send))
	for attempt := 0; ; attempt++ {
		sp := e.beginAttempt(rank, round, attempt)
		framed := make([][]uint64, len(send))
		for d, part := range send {
			if e.inj.Drop(rank, round, attempt, d) {
				e.rec.Instant(rank, round, obs.EvDrop)
				continue // destination receives nil: a dropped payload
			}
			var hit bool
			framed[d], hit = e.inj.CorruptWords(rank, round, attempt, d, kernels.FrameWords(part))
			if hit {
				e.rec.Instant(rank, round, obs.EvCorrupt)
			}
		}
		recv, err := e.c.AlltoallvUint64(framed)
		if err != nil {
			sp.End(0, 0)
			return nil, err
		}
		var bad uint64
		for i, f := range recv {
			if ok[i] {
				continue // verified on an earlier attempt
			}
			payload, ferr := kernels.UnframeWords(f)
			if ferr != nil || len(payload) != expect[i] {
				bad++
				continue
			}
			parts[i], ok[i] = payload, true
		}
		done, err := e.settle(round, attempt, bad)
		sp.End(0, bad)
		if err != nil {
			return nil, err
		}
		if !done {
			continue
		}
		var lost uint64
		for i := range parts {
			if !ok[i] {
				lost += uint64(expect[i])
			}
		}
		e.degrade(round, lost, bad)
		return parts, nil
	}
}

// exchangeWire ships supermer-mode wire payloads; expect is the per-source
// supermer announcement. Beyond the frame checksum, each accepted payload's
// images are structurally verified (length bytes in range) before release.
func (e *exchanger) exchangeWire(round int, wire kernels.SupermerWire, send [][]byte, expect []int) ([][]byte, error) {
	rank := e.c.Rank()
	parts := make([][]byte, len(send))
	ok := make([]bool, len(send))
	for attempt := 0; ; attempt++ {
		sp := e.beginAttempt(rank, round, attempt)
		framed := make([][]byte, len(send))
		for d, part := range send {
			if e.inj.Drop(rank, round, attempt, d) {
				e.rec.Instant(rank, round, obs.EvDrop)
				continue
			}
			var hit bool
			framed[d], hit = e.inj.CorruptBytes(rank, round, attempt, d, kernels.FrameBytes(part, len(part)/wire.Stride()))
			if hit {
				e.rec.Instant(rank, round, obs.EvCorrupt)
			}
		}
		recv, err := e.c.AlltoallvBytes(framed)
		if err != nil {
			sp.End(0, 0)
			return nil, err
		}
		var bad uint64
		for i, f := range recv {
			if ok[i] {
				continue // verified on an earlier attempt
			}
			payload, items, ferr := kernels.UnframeBytes(f)
			if ferr != nil || items != expect[i] {
				bad++
				continue
			}
			if n, verr := wire.VerifyImages(payload); verr != nil || n != expect[i] {
				bad++
				continue
			}
			parts[i], ok[i] = payload, true
		}
		done, err := e.settle(round, attempt, bad)
		sp.End(0, bad)
		if err != nil {
			return nil, err
		}
		if !done {
			continue
		}
		var lost uint64
		for i := range parts {
			if !ok[i] {
				lost += uint64(expect[i])
			}
		}
		e.degrade(round, lost, bad)
		return parts, nil
	}
}

// beginAttempt opens a retry span for attempts past the first (the first
// attempt lives inside the enclosing exchange span). The zero handle it
// returns for attempt 0 (or a nil recorder) makes End a no-op.
func (e *exchanger) beginAttempt(rank, round, attempt int) obs.SpanHandle {
	if attempt == 0 {
		return obs.SpanHandle{}
	}
	return e.rec.Begin(rank, round, obs.PhaseRetry)
}

// settle agrees world-wide on this attempt's outcome: done=true means the
// caller must release the (possibly degraded) payloads; done=false means
// every rank retries. The AllreduceSum keeps the decision collective —
// ranks never diverge on whether a retry happens.
func (e *exchanger) settle(round, attempt int, bad uint64) (done bool, err error) {
	rank := e.c.Rank()
	e.inj.RecordBadFrames(rank, bad)
	totalBad, err := e.c.AllreduceSum(bad)
	if err != nil {
		return false, err
	}
	if totalBad == 0 {
		return true, nil
	}
	if attempt < e.retries {
		e.inj.RecordRetry(rank)
		e.rec.Instant(rank, round, obs.EvRetry)
		return false, nil
	}
	return true, nil // budget exhausted: degrade
}

// degrade flags the rank outcome when payloads were lost for good.
func (e *exchanger) degrade(round int, lost, bad uint64) {
	if bad == 0 {
		return
	}
	e.out.incomplete = true
	e.inj.RecordDiscarded(e.c.Rank(), lost)
	e.rec.Instant(e.c.Rank(), round, obs.EvDegraded)
}

// killOrStall applies the injector's round-start faults for this rank: a
// straggler stall (recoverable — peers wait, or trip the deadline when one
// is configured) or a kill (the rank abandons the computation, poisoning
// the world for its peers). Fired faults surface as instant events when a
// recorder is configured.
func killOrStall(inj *fault.Injector, c *mpisim.Comm, round int, rec *obs.Recorder) error {
	if d := inj.Delay(c.Rank(), round); d > 0 {
		rec.Instant(c.Rank(), round, obs.EvDelay)
		time.Sleep(d)
	}
	if inj.Kill(c.Rank(), round) {
		rec.Instant(c.Rank(), round, obs.EvKill)
		return fmt.Errorf("pipeline: rank %d at round %d: %w", c.Rank(), round, fault.ErrKilled)
	}
	return nil
}
