package pipeline

import (
	"compress/gzip"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"dedukt/internal/cluster"
	"dedukt/internal/fastq"
	"dedukt/internal/fault"
	"dedukt/internal/genome"
)

// smallCPULayout mirrors smallGPULayout for the CPU engine.
func smallCPULayout() cluster.Layout {
	l := cluster.SummitCPU(1)
	l.RanksPerNode = 6
	l.Net.RanksPerNode = 6
	return l
}

// writeGzFiles splits reads across n gzip-compressed FASTQ files in a
// temp dir, returning the paths.
func writeGzFiles(t *testing.T, reads []fastq.Record, n int) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, n)
	per := (len(reads) + n - 1) / n
	for i := 0; i < n; i++ {
		lo, hi := i*per, (i+1)*per
		if hi > len(reads) {
			hi = len(reads)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("part%d.fastq.gz", i))
		f, err := os.Create(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		zw := gzip.NewWriter(f)
		fw := fastq.NewWriter(zw)
		for _, rec := range reads[lo:hi] {
			if err := fw.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// TestStreamMatchesInMemory is the streaming/in-memory equivalence
// property: across engines, modes, schedules, randomized k/m/window
// choices, and recoverable fault injection, RunStream over a bounded
// producer must reproduce Run's spectrum bit-for-bit — counts,
// histogram, top-k, and per-rank loads — while actually running
// multi-round under its memory budget. Half the cases stream from
// gzip-compressed multi-file fixtures, the other half from an in-memory
// source.
func TestStreamMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type tcase struct {
		engine  string
		mode    Mode
		overlap bool
		faulted bool
		exch    Exchange
	}
	var cases []tcase
	for _, engine := range []string{"gpu", "cpu"} {
		for _, mode := range []Mode{KmerMode, SupermerMode} {
			for _, overlap := range []bool{false, true} {
				for _, faulted := range []bool{false, true} {
					for _, exch := range []Exchange{ExchangeFlat, ExchangeHier} {
						cases = append(cases, tcase{engine, mode, overlap, faulted, exch})
					}
				}
			}
		}
	}
	for i, tc := range cases {
		name := fmt.Sprintf("%s/%s/overlap=%v/faulted=%v/%s", tc.engine, tc.mode, tc.overlap, tc.faulted, tc.exch)
		// Per-case randomized operating point and dataset.
		k := []int{15, 17, 21}[rng.Intn(3)]
		m := []int{5, 7}[rng.Intn(2)]
		window := []int{9, 15}[rng.Intn(2)]
		reads := testReads(t, 6_000+rng.Intn(4_000), 3+rng.Float64()*2)
		// Alternate at stride 2 so both exchange strategies (the innermost
		// dimension) see both file-backed and in-memory sources.
		fromFiles := i%4 < 2
		t.Run(name, func(t *testing.T) {
			layout := smallGPULayout(1)
			if tc.engine == "cpu" {
				layout = smallCPULayout()
			}
			cfg := Default(layout, tc.mode)
			cfg.K, cfg.M, cfg.Window = k, m, window
			cfg.Overlap = tc.overlap
			cfg.Exchange = tc.exch
			if tc.exch == ExchangeHier {
				// Group the 6 test ranks into 3 fabric nodes of 2 so the
				// hierarchical strategy actually has leaders to route through.
				cfg.Layout.Net.RanksPerNode = 2
			}
			if tc.faulted {
				cfg.Fault = fault.Config{
					Seed: uint64(100 + i), Delay: 0.02, DelayFor: 100 * time.Microsecond,
					Drop: 0.03, Corrupt: 0.02,
				}
				cfg.MaxRetries = 8 // plenty: every payload must recover
			}
			want, err := Run(cfg, reads)
			if err != nil {
				t.Fatal(err)
			}
			// The streamed run pulls through the shared bounded producer,
			// sized to force several rounds.
			scfg := cfg
			scfg.MemBudgetBytes = int64(cfg.Layout.Ranks() * streamBytesPerBase * 2_500)
			var src fastq.Source
			if fromFiles {
				stream, err := fastq.OpenStream(writeGzFiles(t, reads, 3)...)
				if err != nil {
					t.Fatal(err)
				}
				defer stream.Close()
				src = stream
			} else {
				src = fastq.NewSliceSource(reads)
			}
			got, err := RunStream(scfg, src)
			if err != nil {
				t.Fatal(err)
			}
			if got.Rounds < 2 {
				t.Fatalf("streamed run should be multi-round, got %d rounds", got.Rounds)
			}
			if !got.Streamed || got.MemBudget != scfg.MemBudgetBytes {
				t.Fatalf("streamed accounting wrong: %v/%d", got.Streamed, got.MemBudget)
			}
			if got.InputReads != uint64(len(reads)) {
				t.Fatalf("InputReads = %d, want %d", got.InputReads, len(reads))
			}
			if want.Incomplete || got.Incomplete {
				t.Fatalf("injected faults must recover fully (incomplete: in-memory=%v streamed=%v)",
					want.Incomplete, got.Incomplete)
			}
			sameCounts(t, want, got)
			if !reflect.DeepEqual(want.PerRankKmers, got.PerRankKmers) {
				t.Fatalf("per-rank loads differ:\n in-memory %v\n streamed  %v", want.PerRankKmers, got.PerRankKmers)
			}
			checkAgainstOracle(t, cfg, reads, got)
		})
	}
}

// TestStreamKillFault: a killed rank must fail the streamed run the same
// way it fails the in-memory one — a structured error, not a hang on the
// end-of-stream agreement.
func TestStreamKillFault(t *testing.T) {
	reads := testReads(t, 5_000, 3)
	cfg := Default(smallGPULayout(1), KmerMode)
	cfg.Fault = fault.Config{Seed: 5, Kill: 1}
	if _, err := Run(cfg, reads); !errors.Is(err, fault.ErrKilled) {
		t.Fatalf("in-memory kill: %v", err)
	}
	cfg.MemBudgetBytes = 1 << 20
	if _, err := RunStream(cfg, fastq.NewSliceSource(reads)); !errors.Is(err, fault.ErrKilled) {
		t.Fatalf("streamed kill: %v", err)
	}
}

// failingSource delivers a few records, then fails.
type failingSource struct {
	left int
	err  error
}

func (s *failingSource) Next() (fastq.Record, error) {
	if s.left == 0 {
		return fastq.Record{}, s.err
	}
	s.left--
	return fastq.Record{ID: "r", Seq: []byte("ACGTACGTACGTACGTACGT")}, nil
}

// TestStreamSourceError: a source failure mid-stream must fail the whole
// run with the source's error — every rank surfaces it via the sticky
// producer, no deadlock, no partial silent result.
func TestStreamSourceError(t *testing.T) {
	boom := errors.New("disk on fire")
	cfg := Default(smallGPULayout(1), KmerMode)
	cfg.MemBudgetBytes = 1 << 20
	for _, overlap := range []bool{false, true} {
		cfg.Overlap = overlap
		_, err := RunStream(cfg, &failingSource{left: 40, err: boom})
		if !errors.Is(err, boom) {
			t.Fatalf("overlap=%v: want source error, got %v", overlap, err)
		}
	}
}

// TestStreamRejectsWholeInputFeatures: config features that need the
// whole input up front are structured errors, not silent misbehavior.
func TestStreamRejectsWholeInputFeatures(t *testing.T) {
	src := fastq.NewSliceSource(nil)
	bp := Default(smallGPULayout(1), SupermerMode)
	bp.BalancedPartition = true
	if _, err := RunStream(bp, src); err == nil {
		t.Fatal("BalancedPartition must be rejected when streaming")
	}
	fs := Default(smallCPULayout(), KmerMode)
	fs.FilterSingletons = true
	if _, err := RunStream(fs, src); err == nil {
		t.Fatal("FilterSingletons must be rejected when streaming")
	}
	if _, err := RunStream(Default(smallGPULayout(1), KmerMode), nil); err == nil {
		t.Fatal("nil source must be rejected")
	}
}

// TestChunkProducer pins the shared producer's contract: deterministic
// cut points matching sliceChunker's, an exact more flag (the overflow
// record is retained as pending, never dropped), empty-source behavior,
// and steady-state empties after drain.
func TestChunkProducer(t *testing.T) {
	pull := func(p *chunkProducer) (sizes []int, mores []bool) {
		h := &streamHandle{prod: p}
		for i := 0; i < 100; i++ {
			recs, more, err := h.nextChunk()
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, len(recs))
			mores = append(mores, more)
			if !more {
				return sizes, mores
			}
		}
		t.Fatal("producer never drained")
		return nil, nil
	}
	// Same cut points as the in-memory sliceChunker: [10,10] [20] [30].
	reads := mkReads(10, 10, 20, 30)
	p := &chunkProducer{src: fastq.NewSliceSource(reads), maxBases: 25}
	sizes, mores := pull(p)
	if !reflect.DeepEqual(sizes, []int{2, 1, 1}) {
		t.Fatalf("chunk sizes %v, want [2 1 1]", sizes)
	}
	if !reflect.DeepEqual(mores, []bool{true, true, false}) {
		t.Fatalf("more flags %v, want [true true false]", mores)
	}
	if p.reads != 4 || p.bases != 70 {
		t.Fatalf("tallies %d reads / %d bases, want 4/70", p.reads, p.bases)
	}
	// Drained producer keeps serving empty chunks.
	h := &streamHandle{prod: p}
	if recs, more, err := h.nextChunk(); err != nil || more || len(recs) != 0 {
		t.Fatal("drained producer must keep returning empty chunks")
	}
	// Empty source: one empty pull, more=false.
	sizes, mores = pull(&chunkProducer{src: fastq.NewSliceSource(nil), maxBases: 25})
	if !reflect.DeepEqual(sizes, []int{0}) || mores[0] {
		t.Fatalf("empty source: sizes=%v mores=%v", sizes, mores)
	}
	// The producer deep-copies chunks: mutating the source's buffers
	// after a pull must not change delivered bases.
	mut := []fastq.Record{{Seq: []byte("AAAA")}, {Seq: []byte("CCCC")}}
	p = &chunkProducer{src: fastq.NewSliceSource(mut), maxBases: 4}
	h = &streamHandle{prod: p}
	recs, _, err := h.nextChunk()
	if err != nil {
		t.Fatal(err)
	}
	mut[0].Seq[0] = 'T' // the pending record for chunk 2 was cloned
	if string(recs[0].Seq) != "AAAA" {
		t.Fatalf("chunk aliases source buffer: %q", recs[0].Seq)
	}
	recs, _, err = h.nextChunk()
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "CCCC" {
		t.Fatalf("pending record corrupted: %q", recs[0].Seq)
	}
}

// heapSampler polls the live heap in the background and records the peak.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		for {
			select {
			case <-s.stop:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak.Load() {
					s.peak.Store(ms.HeapAlloc)
				}
			}
		}
	}()
	return s
}

func (s *heapSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	return s.peak.Load()
}

// TestStreamBoundedMemory is the out-of-core regression: stream a
// dataset ≥8× larger than MemBudgetBytes and assert the peak live heap
// during the run stays under budget + a fixed slack. The in-memory path
// would hold the whole read set plus single-round send/recv buffers —
// an order of magnitude over the ceiling asserted here — so the test
// fails if streaming ever regresses to materializing its input.
func TestStreamBoundedMemory(t *testing.T) {
	const budget = int64(512 << 10)
	// Generate and write the dataset inside a helper so the read slice
	// dies before the baseline measurement.
	dataset := func() string {
		g, err := genome.Generate("big", genome.Config{
			Length: 50_000, RepeatFraction: 0.1, RepeatMinLen: 100,
			RepeatMaxLen: 300, GC: 0.5, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		prof := genome.DefaultLongReads()
		prof.MeanLen = 500
		prof.ErrRate = 0 // keep the spectrum (and tables) small
		reads, err := genome.SimulateReads(g, 96, prof)
		if err != nil {
			t.Fatal(err)
		}
		var bases int64
		for _, r := range reads {
			bases += int64(len(r.Seq))
		}
		if bases < 8*budget {
			t.Fatalf("dataset %d bases is under 8x budget %d", bases, budget)
		}
		path := filepath.Join(t.TempDir(), "big.fastq")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := fastq.NewWriter(f)
		for _, rec := range reads {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}()

	layout := cluster.SummitCPU(1)
	layout.RanksPerNode = 2
	layout.Net.RanksPerNode = 2
	cfg := Default(layout, KmerMode)
	cfg.MemBudgetBytes = budget

	// Tighten the GC so sampled HeapAlloc tracks live data instead of
	// round-loop garbage awaiting collection.
	defer debug.SetGCPercent(debug.SetGCPercent(20))
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	sampler := startHeapSampler()

	src, err := fastq.OpenStream(dataset)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	res, err := RunStream(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	peak := sampler.Stop()

	if res.InputBases < uint64(8*budget) {
		t.Fatalf("streamed only %d bases, want >= %d", res.InputBases, 8*budget)
	}
	if res.Rounds < 8 {
		t.Fatalf("want a deeply multi-round run, got %d rounds", res.Rounds)
	}
	if res.TotalKmers == 0 {
		t.Fatal("no k-mers counted")
	}
	// Fixed slack: runtime overhead, the counter tables (output, not
	// input, state), and GC lag. The in-memory path peaks far above
	// budget+slack on this dataset.
	const slack = 16 << 20
	used := int64(peak) - int64(base.HeapAlloc)
	t.Logf("peak live heap over baseline: %.1f MiB (budget %.1f MiB, %d rounds, %d bases)",
		float64(used)/(1<<20), float64(budget)/(1<<20), res.Rounds, res.InputBases)
	if used > budget+slack {
		t.Fatalf("peak live heap %d bytes over baseline exceeds budget %d + slack %d", used, budget, slack)
	}
}

// TestStreamLoopAllocs pins the streamed round loop's marginal allocation
// cost, the streaming twin of TestRoundLoopAllocs: shrinking the memory
// budget multiplies the rounds the same input takes, and each extra round
// may only cost pooled-loop overhead — not re-grown kernel scratch or
// per-item framing garbage (the regression that once put the streamed
// benchmark at ~9× the in-memory allocation count).
func TestStreamLoopAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("alloc counts are inflated by the race detector")
	}
	reads := testReads(t, 20_000, 8)
	run := func(basesPerRank int) (rounds int) {
		cfg := Default(smallGPULayout(1), SupermerMode)
		cfg.MemBudgetBytes = int64(cfg.Layout.Ranks() * streamBytesPerBase * basesPerRank)
		res, err := RunStream(cfg, fastq.NewSliceSource(reads))
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	measure := func(basesPerRank int) (float64, int) {
		var rounds int
		allocs := testing.AllocsPerRun(3, func() {
			rounds = run(basesPerRank)
		})
		return allocs, rounds
	}
	aFew, rFew := measure(12_000)
	aMany, rMany := measure(3_000)
	if rMany <= rFew || rFew < 2 {
		t.Fatalf("want rMany > rFew >= 2, got %d and %d rounds", rMany, rFew)
	}
	perRound := (aMany - aFew) / float64(rMany-rFew)
	t.Logf("rounds %d -> %d, allocs %.0f -> %.0f, marginal %.1f allocs/round", rFew, rMany, aFew, aMany, perRound)
	// Measured ~400 allocs/round (the in-memory loop's overhead plus the
	// producer's per-chunk record headers); the budget leaves headroom for
	// scheduler noise without readmitting per-item costs.
	const budget = 1500
	if perRound > budget {
		t.Fatalf("marginal cost %.1f allocs/round exceeds budget %d", perRound, budget)
	}
}
