package pipeline

import (
	"testing"

	"dedukt/internal/cluster"
	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
)

func mkReads(lens ...int) []fastq.Record {
	var out []fastq.Record
	for _, l := range lens {
		out = append(out, fastq.Record{Seq: make([]byte, l)})
	}
	return out
}

// drainChunker pulls a chunk source dry, returning the chunk sizes (in
// records) and the more-flag sequence.
func drainChunker(t *testing.T, src chunkSource) (sizes []int, mores []bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		recs, more, err := src.nextChunk()
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(recs))
		mores = append(mores, more)
		if !more {
			return sizes, mores
		}
	}
	t.Fatal("chunk source never drained")
	return nil, nil
}

func TestSliceChunker(t *testing.T) {
	// No cap: single chunk holding everything.
	sizes, mores := drainChunker(t, &sliceChunker{reads: mkReads(10, 20)})
	if len(sizes) != 1 || sizes[0] != 2 || mores[0] {
		t.Fatalf("uncapped chunking wrong: sizes=%v mores=%v", sizes, mores)
	}
	// Cap 25: [10,10] [20] [30] — the final partial chunk (30 > what's
	// left of nothing) still arrives, with more=false only on the last.
	sizes, mores = drainChunker(t, &sliceChunker{reads: mkReads(10, 10, 20, 30), maxBases: 25})
	if len(sizes) != 3 || sizes[0] != 2 || sizes[1] != 1 || sizes[2] != 1 {
		t.Fatalf("chunk sizes: %v, want [2 1 1]", sizes)
	}
	if !mores[0] || !mores[1] || mores[2] {
		t.Fatalf("more flags: %v, want [true true false]", mores)
	}
	// A read larger than the cap still forms its own chunk.
	sizes, _ = drainChunker(t, &sliceChunker{reads: mkReads(100), maxBases: 10})
	if len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("oversized read should be its own chunk, got %v", sizes)
	}
	// Empty input: one empty pull with more=false, then steady-state
	// empties — a drained rank keeps pulling while peers finish.
	empty := &sliceChunker{maxBases: 10}
	sizes, mores = drainChunker(t, empty)
	if len(sizes) != 1 || sizes[0] != 0 || mores[0] {
		t.Fatalf("empty input: sizes=%v mores=%v", sizes, mores)
	}
	if recs, more, err := empty.nextChunk(); err != nil || more || len(recs) != 0 {
		t.Fatal("drained chunker must keep returning empty chunks")
	}
}

// TestUnevenTailDrain pins the last-chunk boundary fix: ranks with wildly
// uneven inputs — including a rank with no reads at all — must keep
// participating in the collectives until the longest rank drains, a
// final partial chunk below the cap must still be counted, and the
// result must match the oracle. Exercised on both schedules, since the
// overlapped loop takes a different path for drained ranks.
func TestUnevenTailDrain(t *testing.T) {
	reads := testReads(t, 9_000, 4)
	cfg := Default(smallGPULayout(1), KmerMode)
	cfg.RoundBases = 2_500
	p := cfg.Layout.Ranks()
	for _, overlap := range []bool{false, true} {
		cfg.Overlap = overlap
		// Skewed hand-built split: rank 0 gets nearly everything, rank 1
		// a single read, the rest nothing.
		sources := make([]chunkSource, p)
		sources[0] = &sliceChunker{reads: reads[:len(reads)-1], maxBases: cfg.RoundBases}
		sources[1] = &sliceChunker{reads: reads[len(reads)-1:], maxBases: cfg.RoundBases}
		for r := 2; r < p; r++ {
			sources[r] = &sliceChunker{maxBases: cfg.RoundBases}
		}
		res, err := runWorld(cfg, nil, sources, nil, nil, nil, nil, nil)
		if err != nil {
			t.Fatalf("overlap=%v: %v", overlap, err)
		}
		// Every rank ran as many rounds as the heaviest one's chunks.
		want, _ := drainChunker(t, &sliceChunker{reads: reads[:len(reads)-1], maxBases: cfg.RoundBases})
		if res.Rounds != len(want) {
			t.Fatalf("overlap=%v: rounds=%d, want %d", overlap, res.Rounds, len(want))
		}
		if res.Rounds < 3 {
			t.Fatalf("overlap=%v: want a multi-round run, got %d", overlap, res.Rounds)
		}
		checkAgainstOracle(t, cfg, reads, res)
	}
}

func TestEnsureCapacity(t *testing.T) {
	table := kcount.NewAtomicTable(4, 0.5, kcount.Linear)
	for i := uint64(0); i < 4; i++ {
		if _, _, err := table.Inc(i); err != nil {
			t.Fatal(err)
		}
	}
	grown, err := ensureCapacity(table, 1000, 0.5, kcount.Linear)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Cap() <= table.Cap() {
		t.Fatalf("table did not grow: %d -> %d", table.Cap(), grown.Cap())
	}
	for i := uint64(0); i < 4; i++ {
		if grown.Get(i) != 1 {
			t.Fatalf("key %d lost during rehash", i)
		}
	}
	// No growth needed: same table returned.
	same, err := ensureCapacity(grown, 1, 0.5, kcount.Linear)
	if err != nil {
		t.Fatal(err)
	}
	if same != grown {
		t.Fatal("unneeded growth")
	}
}

func TestMultiRoundMatchesSingleRound(t *testing.T) {
	// §III-A: multi-round execution must not change results; only the
	// per-round buffer sizes differ.
	reads := testReads(t, 15_000, 6)
	for _, mode := range []Mode{KmerMode, SupermerMode} {
		single := Default(smallGPULayout(1), mode)
		multi := single
		multi.RoundBases = 5_000 // forces several rounds per rank
		resS, err := Run(single, reads)
		if err != nil {
			t.Fatal(err)
		}
		resM, err := Run(multi, reads)
		if err != nil {
			t.Fatal(err)
		}
		if resM.Rounds < 2 {
			t.Fatalf("%s: expected multiple rounds, got %d", mode, resM.Rounds)
		}
		if resS.Rounds != 1 {
			t.Fatalf("%s: single-round run reports %d rounds", mode, resS.Rounds)
		}
		if resS.TotalKmers != resM.TotalKmers || resS.DistinctKmers != resM.DistinctKmers {
			t.Fatalf("%s: rounds changed results: %d/%d vs %d/%d", mode,
				resS.TotalKmers, resS.DistinctKmers, resM.TotalKmers, resM.DistinctKmers)
		}
		for f, c := range resS.Histogram.Counts {
			if resM.Histogram.Counts[f] != c {
				t.Fatalf("%s: histogram class %d differs", mode, f)
			}
		}
		// Supermer boundaries are window-relative to each round's buffer,
		// so the supermer count may shift by a handful of splits across
		// rounds; the k-mer content (checked above) is what must match.
		ratio := float64(resM.ItemsExchanged) / float64(resS.ItemsExchanged)
		if ratio < 0.99 || ratio > 1.01 {
			t.Fatalf("%s: exchanged items differ too much: %d vs %d", mode, resS.ItemsExchanged, resM.ItemsExchanged)
		}
		checkAgainstOracle(t, single, reads, resM)
	}
}

func TestMultiRoundCPU(t *testing.T) {
	reads := testReads(t, 10_000, 5)
	layout := cluster.SummitCPU(1)
	layout.RanksPerNode = 8
	layout.Net.RanksPerNode = 8
	cfg := Default(layout, SupermerMode)
	cfg.RoundBases = 3_000
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Fatalf("expected multi-round CPU run, got %d rounds", res.Rounds)
	}
	checkAgainstOracle(t, cfg, reads, res)
}

func TestRoundBasesValidation(t *testing.T) {
	cfg := Default(smallGPULayout(1), KmerMode)
	cfg.RoundBases = -1
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("negative RoundBases should be rejected")
	}
}
