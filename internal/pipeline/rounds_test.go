package pipeline

import (
	"testing"

	"dedukt/internal/cluster"
	"dedukt/internal/fastq"
	"dedukt/internal/kcount"
)

func TestChunkReads(t *testing.T) {
	mk := func(lens ...int) []fastq.Record {
		var out []fastq.Record
		for _, l := range lens {
			out = append(out, fastq.Record{Seq: make([]byte, l)})
		}
		return out
	}
	// No cap: single chunk.
	if got := chunkReads(mk(10, 20), 0); len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("uncapped chunking wrong: %d chunks", len(got))
	}
	// Cap 25: [10,10] [20] [30].
	chunks := chunkReads(mk(10, 10, 20, 30), 25)
	if len(chunks) != 3 {
		t.Fatalf("%d chunks, want 3", len(chunks))
	}
	if len(chunks[0]) != 2 || len(chunks[1]) != 1 || len(chunks[2]) != 1 {
		t.Fatalf("chunk sizes: %d %d %d", len(chunks[0]), len(chunks[1]), len(chunks[2]))
	}
	// A read larger than the cap still forms its own chunk.
	chunks = chunkReads(mk(100), 10)
	if len(chunks) != 1 || len(chunks[0]) != 1 {
		t.Fatal("oversized read should be its own chunk")
	}
	// Empty input.
	if got := chunkReads(nil, 10); len(got) != 1 || len(got[0]) != 0 {
		t.Fatal("empty input should give one empty chunk")
	}
}

func TestEnsureCapacity(t *testing.T) {
	table := kcount.NewAtomicTable(4, 0.5, kcount.Linear)
	for i := uint64(0); i < 4; i++ {
		if _, _, err := table.Inc(i); err != nil {
			t.Fatal(err)
		}
	}
	grown, err := ensureCapacity(table, 1000, 0.5, kcount.Linear)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Cap() <= table.Cap() {
		t.Fatalf("table did not grow: %d -> %d", table.Cap(), grown.Cap())
	}
	for i := uint64(0); i < 4; i++ {
		if grown.Get(i) != 1 {
			t.Fatalf("key %d lost during rehash", i)
		}
	}
	// No growth needed: same table returned.
	same, err := ensureCapacity(grown, 1, 0.5, kcount.Linear)
	if err != nil {
		t.Fatal(err)
	}
	if same != grown {
		t.Fatal("unneeded growth")
	}
}

func TestMultiRoundMatchesSingleRound(t *testing.T) {
	// §III-A: multi-round execution must not change results; only the
	// per-round buffer sizes differ.
	reads := testReads(t, 15_000, 6)
	for _, mode := range []Mode{KmerMode, SupermerMode} {
		single := Default(smallGPULayout(1), mode)
		multi := single
		multi.RoundBases = 5_000 // forces several rounds per rank
		resS, err := Run(single, reads)
		if err != nil {
			t.Fatal(err)
		}
		resM, err := Run(multi, reads)
		if err != nil {
			t.Fatal(err)
		}
		if resM.Rounds < 2 {
			t.Fatalf("%s: expected multiple rounds, got %d", mode, resM.Rounds)
		}
		if resS.Rounds != 1 {
			t.Fatalf("%s: single-round run reports %d rounds", mode, resS.Rounds)
		}
		if resS.TotalKmers != resM.TotalKmers || resS.DistinctKmers != resM.DistinctKmers {
			t.Fatalf("%s: rounds changed results: %d/%d vs %d/%d", mode,
				resS.TotalKmers, resS.DistinctKmers, resM.TotalKmers, resM.DistinctKmers)
		}
		for f, c := range resS.Histogram.Counts {
			if resM.Histogram.Counts[f] != c {
				t.Fatalf("%s: histogram class %d differs", mode, f)
			}
		}
		// Supermer boundaries are window-relative to each round's buffer,
		// so the supermer count may shift by a handful of splits across
		// rounds; the k-mer content (checked above) is what must match.
		ratio := float64(resM.ItemsExchanged) / float64(resS.ItemsExchanged)
		if ratio < 0.99 || ratio > 1.01 {
			t.Fatalf("%s: exchanged items differ too much: %d vs %d", mode, resS.ItemsExchanged, resM.ItemsExchanged)
		}
		checkAgainstOracle(t, single, reads, resM)
	}
}

func TestMultiRoundCPU(t *testing.T) {
	reads := testReads(t, 10_000, 5)
	layout := cluster.SummitCPU(1)
	layout.RanksPerNode = 8
	layout.Net.RanksPerNode = 8
	cfg := Default(layout, SupermerMode)
	cfg.RoundBases = 3_000
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Fatalf("expected multi-round CPU run, got %d rounds", res.Rounds)
	}
	checkAgainstOracle(t, cfg, reads, res)
}

func TestRoundBasesValidation(t *testing.T) {
	cfg := Default(smallGPULayout(1), KmerMode)
	cfg.RoundBases = -1
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("negative RoundBases should be rejected")
	}
}
