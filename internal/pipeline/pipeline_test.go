package pipeline

import (
	"testing"

	"dedukt/internal/cluster"
	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/genome"
	"dedukt/internal/kcount"
	"dedukt/internal/minimizer"
)

// testReads generates a small deterministic read set.
func testReads(t *testing.T, genomeLen int, coverage float64) []fastq.Record {
	t.Helper()
	g, err := genome.Generate("t", genome.Config{
		Length: genomeLen, RepeatFraction: 0.2,
		RepeatMinLen: 100, RepeatMaxLen: 400, GC: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := genome.DefaultLongReads()
	prof.MeanLen = 800
	prof.AmbigRate = 0.002
	reads, err := genome.SimulateReads(g, coverage, prof)
	if err != nil {
		t.Fatal(err)
	}
	return reads
}

func oracleFor(cfg Config, reads []fastq.Record) map[dna.Kmer]uint32 {
	seqs := make([][]byte, len(reads))
	for i, r := range reads {
		seqs[i] = r.Seq
	}
	m := kcount.SerialCount(cfg.Enc, seqs, cfg.K)
	if cfg.Canonical {
		canon := make(map[dna.Kmer]uint32, len(m))
		for w, c := range m {
			canon[w.Canonical(cfg.Enc, cfg.K)] += c
		}
		return canon
	}
	return m
}

func checkAgainstOracle(t *testing.T, cfg Config, reads []fastq.Record, res *Result) {
	t.Helper()
	oracle := oracleFor(cfg, reads)
	var wantTotal uint64
	for _, c := range oracle {
		wantTotal += uint64(c)
	}
	if res.TotalKmers != wantTotal {
		t.Fatalf("TotalKmers = %d, oracle %d", res.TotalKmers, wantTotal)
	}
	if res.DistinctKmers != uint64(len(oracle)) {
		t.Fatalf("DistinctKmers = %d, oracle %d", res.DistinctKmers, len(oracle))
	}
	if res.Histogram.Total() != wantTotal || res.Histogram.Distinct() != uint64(len(oracle)) {
		t.Fatalf("histogram total/distinct %d/%d, oracle %d/%d",
			res.Histogram.Total(), res.Histogram.Distinct(), wantTotal, len(oracle))
	}
	var perRank uint64
	for _, v := range res.PerRankKmers {
		perRank += v
	}
	if perRank != wantTotal {
		t.Fatalf("per-rank sum %d != total %d", perRank, wantTotal)
	}
}

func smallGPULayout(nodes int) cluster.Layout {
	l := cluster.SummitGPU(nodes)
	return l
}

func TestAllVariantsMatchOracle(t *testing.T) {
	// Property (a) of DESIGN.md: every pipeline variant reproduces the
	// serial oracle exactly.
	reads := testReads(t, 20_000, 8)
	layouts := map[string]cluster.Layout{
		"gpu": smallGPULayout(2), // 12 ranks
		"cpu": func() cluster.Layout {
			// Two nodes: a single-node world has no fabric traffic, so its
			// modeled exchange time is legitimately zero and the phase
			// breakdown assertion below would be vacuous.
			l := cluster.SummitCPU(2)
			l.RanksPerNode = 4 // keep the test world small
			l.Net.RanksPerNode = 4
			return l
		}(),
	}
	for engName, layout := range layouts {
		for _, mode := range []Mode{KmerMode, SupermerMode} {
			name := engName + "/" + mode.String()
			t.Run(name, func(t *testing.T) {
				cfg := Default(layout, mode)
				res, err := Run(cfg, reads)
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstOracle(t, cfg, reads, res)
				if res.Modeled.Parse <= 0 || res.Modeled.Exchange <= 0 || res.Modeled.Count <= 0 {
					t.Fatalf("phase breakdown not populated: %+v", res.Modeled)
				}
				if res.ItemsExchanged == 0 || res.PayloadBytes == 0 {
					t.Fatal("exchange accounting missing")
				}
			})
		}
	}
}

func TestKmerAndSupermerCountIdentically(t *testing.T) {
	// The two modes must produce the same histogram — supermers are a
	// transport optimization, not a semantic change (§IV-A).
	reads := testReads(t, 15_000, 6)
	layout := smallGPULayout(1)
	resK, err := Run(Default(layout, KmerMode), reads)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := Run(Default(layout, SupermerMode), reads)
	if err != nil {
		t.Fatal(err)
	}
	if resK.TotalKmers != resS.TotalKmers || resK.DistinctKmers != resS.DistinctKmers {
		t.Fatalf("modes disagree: kmer %d/%d supermer %d/%d",
			resK.TotalKmers, resK.DistinctKmers, resS.TotalKmers, resS.DistinctKmers)
	}
	for f, c := range resK.Histogram.Counts {
		if resS.Histogram.Counts[f] != c {
			t.Fatalf("histogram class %d: %d vs %d", f, c, resS.Histogram.Counts[f])
		}
	}
}

func TestSupermerReducesExchange(t *testing.T) {
	// Table II / §V-D: supermers cut both item count (~3-4×) and payload
	// bytes (~2.5-3.5× at m=7, window=15) versus k-mer mode.
	reads := testReads(t, 30_000, 10)
	layout := smallGPULayout(2)
	resK, err := Run(Default(layout, KmerMode), reads)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := Run(Default(layout, SupermerMode), reads)
	if err != nil {
		t.Fatal(err)
	}
	itemRatio := float64(resK.ItemsExchanged) / float64(resS.ItemsExchanged)
	byteRatio := float64(resK.PayloadBytes) / float64(resS.PayloadBytes)
	if itemRatio < 2.0 {
		t.Fatalf("item reduction %.2f, want > 2", itemRatio)
	}
	if byteRatio < 1.8 {
		t.Fatalf("byte reduction %.2f, want > 1.8", byteRatio)
	}
	if resS.AlltoallvTime >= resK.AlltoallvTime {
		t.Fatalf("supermer alltoallv %v not faster than kmer %v", resS.AlltoallvTime, resK.AlltoallvTime)
	}
	t.Logf("reduction: items %.2f×, bytes %.2f×, alltoallv %.2f×",
		itemRatio, byteRatio, resK.AlltoallvTime.Seconds()/resS.AlltoallvTime.Seconds())
}

func TestGPUParseFasterThanCPU(t *testing.T) {
	// Fig. 3: at equal node count, GPU compute phases are orders of
	// magnitude faster; exchange volume is identical.
	reads := testReads(t, 15_000, 6)
	gpu := Default(smallGPULayout(1), KmerMode) // 6 ranks
	cpuLayout := cluster.SummitCPU(1)           // 42 ranks, same node count
	cpu := Default(cpuLayout, KmerMode)
	resG, err := Run(gpu, reads)
	if err != nil {
		t.Fatal(err)
	}
	resC, err := Run(cpu, reads)
	if err != nil {
		t.Fatal(err)
	}
	computeG := resG.Modeled.Parse + resG.Modeled.Count
	computeC := resC.Modeled.Parse + resC.Modeled.Count
	if ratio := computeC.Seconds() / computeG.Seconds(); ratio < 5 {
		t.Fatalf("GPU compute speedup %.1f×, want ≥5× even at toy scale", ratio)
	} else {
		t.Logf("node-for-node compute speedup: %.1f×", ratio)
	}
	if resG.TotalKmers != resC.TotalKmers {
		t.Fatalf("engines count differently: %d vs %d", resG.TotalKmers, resC.TotalKmers)
	}
}

func TestCanonicalMode(t *testing.T) {
	reads := testReads(t, 8_000, 5)
	cfg := Default(smallGPULayout(1), KmerMode)
	cfg.Canonical = true
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, cfg, reads, res)
	// Canonical counting merges k-mers with their reverse complements.
	plain, err := Run(Default(smallGPULayout(1), KmerMode), reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.DistinctKmers >= plain.DistinctKmers {
		t.Fatalf("canonical distinct %d should be < plain %d", res.DistinctKmers, plain.DistinctKmers)
	}
	if res.TotalKmers != plain.TotalKmers {
		t.Fatal("canonicalization must preserve the multiset size")
	}
}

func TestCanonicalSupermerRejected(t *testing.T) {
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.Canonical = true
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("canonical supermer mode should be rejected")
	}
}

func TestGPUDirectSkipsStaging(t *testing.T) {
	reads := testReads(t, 10_000, 5)
	staged := Default(smallGPULayout(1), KmerMode)
	direct := staged
	direct.GPUDirect = true
	resStaged, err := Run(staged, reads)
	if err != nil {
		t.Fatal(err)
	}
	resDirect, err := Run(direct, reads)
	if err != nil {
		t.Fatal(err)
	}
	if resDirect.Modeled.Exchange >= resStaged.Modeled.Exchange {
		t.Fatalf("GPUDirect exchange %v not faster than staged %v",
			resDirect.Modeled.Exchange, resStaged.Modeled.Exchange)
	}
	if resDirect.TotalKmers != resStaged.TotalKmers {
		t.Fatal("transport mode changed results")
	}
}

func TestConfigValidation(t *testing.T) {
	layout := smallGPULayout(1)
	bad := []Config{
		{Layout: layout, Enc: nil, K: 17},
		{Layout: layout, Enc: &dna.Random, K: 0},
		{Layout: layout, Enc: &dna.Random, K: 40},
		{Layout: layout, Enc: &dna.Random, K: 17, Mode: SupermerMode, M: 0, Window: 15},
		{Layout: layout, Enc: &dna.Random, K: 17, Mode: SupermerMode, M: 7, Window: 0},
		{Layout: layout, Enc: &dna.Random, K: 17, TableLoad: 1.5},
		{Layout: cluster.Layout{}, Enc: &dna.Random, K: 17},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, nil); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(Default(smallGPULayout(1), KmerMode), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalKmers != 0 || res.ItemsExchanged != 0 {
		t.Fatalf("empty input counted something: %+v", res)
	}
}

func TestLoadImbalanceSupermersWorse(t *testing.T) {
	// Table III: minimizer partitioning is more skewed than k-mer hashing.
	reads := testReads(t, 40_000, 10)
	layout := smallGPULayout(2)
	resK, err := Run(Default(layout, KmerMode), reads)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := Run(Default(layout, SupermerMode), reads)
	if err != nil {
		t.Fatal(err)
	}
	liK, liS := resK.LoadImbalance(), resS.LoadImbalance()
	if liS <= liK {
		t.Fatalf("supermer imbalance %.3f should exceed kmer imbalance %.3f", liS, liK)
	}
	minK, maxK := resK.MinMaxPerRank()
	if minK == 0 || maxK < minK {
		t.Fatalf("per-rank range broken: %d..%d", minK, maxK)
	}
	t.Logf("imbalance: kmer %.3f, supermer %.3f", liK, liS)
}

func TestResultHelpers(t *testing.T) {
	r := &Result{PerRankKmers: []uint64{10, 20, 30}}
	if li := r.LoadImbalance(); li < 1.49 || li > 1.51 {
		t.Fatalf("imbalance = %.3f, want 1.5", li)
	}
	min, max := r.MinMaxPerRank()
	if min != 10 || max != 30 {
		t.Fatalf("min/max = %d/%d", min, max)
	}
	empty := &Result{}
	if empty.LoadImbalance() != 0 || empty.InsertionRate() != 0 {
		t.Fatal("empty result helpers should return 0")
	}
}

func TestMinimizerOrderingConfigurable(t *testing.T) {
	reads := testReads(t, 10_000, 5)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.Ord = minimizer.NewKMC2(cfg.Enc)
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, cfg, reads, res)
}

func TestKeepTablesAndGPUStats(t *testing.T) {
	reads := testReads(t, 12_000, 5)
	cfg := Default(smallGPULayout(1), SupermerMode)
	cfg.KeepTables = true
	res, err := Run(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != res.Ranks {
		t.Fatalf("kept %d tables for %d ranks", len(res.Tables), res.Ranks)
	}
	merged := res.MergedTable()
	if merged == nil || uint64(merged.Len()) != res.DistinctKmers {
		t.Fatalf("merged table has %d keys, result says %d", merged.Len(), res.DistinctKmers)
	}
	if merged.TotalCount() != res.TotalKmers {
		t.Fatal("merged table count mismatch")
	}
	// GPU kernel stats aggregated.
	if res.GPUParse.Threads == 0 || res.GPUCount.Threads == 0 {
		t.Fatalf("GPU kernel stats not aggregated: %+v %+v", res.GPUParse, res.GPUCount)
	}
	if res.GPUParse.MemTransactions == 0 || res.GPUCount.AtomicOps == 0 {
		t.Fatal("GPU kernel counters empty")
	}

	// Without KeepTables, tables are discarded and MergedTable is nil.
	plain, err := Run(Default(smallGPULayout(1), SupermerMode), reads)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Tables != nil || plain.MergedTable() != nil {
		t.Fatal("tables retained without KeepTables")
	}
}
