package pipeline

import (
	"container/heap"
	"sort"

	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/kernels"
	"dedukt/internal/minimizer"
)

// buildBalancedMap computes the frequency-aware minimizer→rank assignment
// (the paper's §VII future work): a profiling pass measures each minimizer
// bin's k-mer load over the input, then bins are LPT-assigned — heaviest
// first, each to the currently lightest rank. Locality is preserved (every
// occurrence of a k-mer still reaches one rank, since the k-mer's minimizer
// is a function of the k-mer alone) while the load spread shrinks from the
// minimizer-granularity skew of hash assignment toward the LPT 4/3 bound.
//
// The profiling pass is an offline partitioning computation, as a
// production deployment would derive it from a sample or a previous run of
// the same library; its cost is not charged to the counting pipeline.
func buildBalancedMap(cfg Config, reads []fastq.Record) []uint16 {
	bins := 1 << (2 * uint(cfg.M))
	loads := make([]uint64, bins)
	mc := cfg.minimizerConfig()
	for _, r := range reads {
		// The builder's emitted supermers partition the read's k-mers by
		// minimizer, so accumulating NKmers per minimizer measures exactly
		// the load each bin will impose on its owner rank.
		_ = minimizer.BuildWindowed(cfg.Enc, r.Seq, mc, func(s minimizer.Supermer) {
			loads[s.Min] += uint64(s.NKmers)
		})
	}

	p := cfg.Layout.Ranks()
	destMap := make([]uint16, bins)
	// Zero-load bins keep the hash assignment so the map is total (they
	// carry no load either way).
	for b := range destMap {
		destMap[b] = uint16(kernels.DestOf(uint64(dna.Kmer(b)), p))
	}

	type bin struct {
		id   int
		load uint64
	}
	var loaded []bin
	for b, l := range loads {
		if l > 0 {
			loaded = append(loaded, bin{b, l})
		}
	}
	sort.Slice(loaded, func(i, j int) bool {
		if loaded[i].load != loaded[j].load {
			return loaded[i].load > loaded[j].load
		}
		return loaded[i].id < loaded[j].id
	})

	h := make(rankHeap, p)
	for r := range h {
		h[r] = rankLoad{rank: r}
	}
	heap.Init(&h)
	for _, b := range loaded {
		lightest := heap.Pop(&h).(rankLoad)
		destMap[b.id] = uint16(lightest.rank)
		lightest.load += b.load
		heap.Push(&h, lightest)
	}
	return destMap
}

// rankLoad pairs a rank with its assigned load for the LPT heap.
type rankLoad struct {
	rank int
	load uint64
}

type rankHeap []rankLoad

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].rank < h[j].rank
}
func (h rankHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *rankHeap) Push(x any)   { *h = append(*h, x.(rankLoad)) }
func (h *rankHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
