//go:build !race

package pipeline

// raceDetectorEnabled mirrors the -race build tag; see race_on_test.go.
const raceDetectorEnabled = false
