package pipeline

import (
	"fmt"
	"sort"
	"time"

	"dedukt/internal/dna"
	"dedukt/internal/fastq"
	"dedukt/internal/fault"
	"dedukt/internal/gpusim"
	"dedukt/internal/kcount"
	"dedukt/internal/kernels"
	"dedukt/internal/mpisim"
	"dedukt/internal/obs"
)

// rankOutcome collects one rank's contribution to the global result.
type rankOutcome struct {
	parse, count time.Duration // modeled compute time
	stage        time.Duration // host↔device staging legs of the exchange
	itemsSent    uint64
	payloadSent  uint64
	counted      uint64
	distinct     uint64
	hist         kcount.Histogram
	top          []kcount.KV
	table        *kcount.Table
	parseOps     uint64
	countOps     uint64
	parseSt      gpusim.KernelStats
	countSt      gpusim.KernelStats
	rounds       int
	incomplete   bool // a round degraded past its retry budget
}

// Run executes the configured pipeline over the reads and returns the
// global result. The reads are partitioned across ranks by balanced base
// count (the paper's parallel-I/O assumption, §IV-D).
//
// Failures are structured, never a panic or deadlock: a rank death
// (injected or real) poisons the communicator and surfaces as an error
// joining every rank's failure (see mpisim.Run); a corrupted or dropped
// exchange is retried up to Config.MaxRetries times and, past that budget,
// degrades the run to a partial result with Result.Incomplete set and the
// per-rank damage in Result.Faults.
func Run(cfg Config, reads []fastq.Record) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Canonical && cfg.Mode == SupermerMode {
		return nil, fmt.Errorf("pipeline: canonical counting is supported in kmer mode only")
	}
	var destMap []uint16
	if cfg.BalancedPartition {
		destMap = buildBalancedMap(cfg, reads)
	}
	p := cfg.Layout.Ranks()
	inj, err := fault.New(cfg.Fault, p)
	if err != nil {
		return nil, err
	}
	parts := fastq.Partition(reads, p)
	outcomes := make([]rankOutcome, p)

	start := time.Now()
	trace, err := mpisim.RunWithOptions(p, mpisim.Options{Deadline: cfg.ExchangeDeadline, Obs: cfg.Obs}, func(c *mpisim.Comm) error {
		if cfg.Layout.GPU != nil {
			return runGPURank(cfg, destMap, inj, c, parts[c.Rank()], &outcomes[c.Rank()])
		}
		return runCPURank(cfg, destMap, inj, c, parts[c.Rank()], &outcomes[c.Rank()])
	})
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	res := aggregate(cfg, trace, outcomes, wall)
	res.Faults = inj.Snapshot()
	if cfg.Obs != nil {
		registerRunMetrics(cfg.Obs.Registry(), res)
		inj.RegisterMetrics(cfg.Obs.Registry())
	}
	return res, nil
}

// registerRunMetrics publishes the run's headline numbers into the shared
// metrics registry so `-metrics-out` and scrapers see the pipeline beside
// the mpisim/gpusim/fault series. Counters accumulate across runs sharing
// one recorder; gauges reflect the latest run.
func registerRunMetrics(reg *obs.Registry, res *Result) {
	reg.Counter("pipeline_items_exchanged_total", "Exchanged units (k-mers or supermers) across all ranks and rounds.").Add(res.ItemsExchanged)
	reg.Counter("pipeline_payload_bytes_total", "Exchanged payload volume including supermer length bytes.").Add(res.PayloadBytes)
	reg.Counter("pipeline_kmers_counted_total", "Counted k-mer instances.").Add(res.TotalKmers)
	reg.Gauge("pipeline_distinct_kmers", "Distinct k-mers in the counted spectrum.").Set(float64(res.DistinctKmers))
	reg.Gauge("pipeline_rounds", "Parse-exchange-count rounds executed.").Set(float64(res.Rounds))
	reg.Gauge("pipeline_load_imbalance", "Max/avg of per-rank counted k-mers (Table III).").Set(res.LoadImbalance())
	incomplete := 0.0
	if res.Incomplete {
		incomplete = 1
	}
	reg.Gauge("pipeline_incomplete", "1 when a round degraded past its retry budget (counts are a lower bound).").Set(incomplete)
	for phase, d := range map[string]time.Duration{
		"parse":    res.Modeled.Parse,
		"exchange": res.Modeled.Exchange,
		"count":    res.Modeled.Count,
	} {
		reg.Gauge("pipeline_phase_seconds", "Summit-projected phase time (bulk-synchronous: slowest rank).", obs.L("phase", phase)).Set(d.Seconds())
	}
}

// buildBuffer stages a rank's reads into the concatenated,
// separator-delimited base array of §III-B.1.
func buildBuffer(reads []fastq.Record) *dna.SeqBuffer {
	var b dna.SeqBuffer
	for _, r := range reads {
		b.AppendRead(r.Seq)
	}
	return &b
}

func runGPURank(cfg Config, destMap []uint16, inj *fault.Injector, c *mpisim.Comm, reads []fastq.Record, out *rankOutcome) error {
	dev := gpusim.MustDevice(*cfg.Layout.GPU)
	if cfg.Obs != nil {
		dev.Observe(cfg.Obs.Registry())
	}
	chunks := chunkReads(reads, cfg.RoundBases)
	rounds, err := globalRounds(c, len(chunks))
	if err != nil {
		return err
	}
	out.rounds = rounds

	rec := cfg.Obs
	rank := c.Rank()
	table := kcount.NewAtomicTable(1, cfg.tableLoad(), cfg.Probing)
	wire := kernels.SupermerWire{K: cfg.K, Window: cfg.Window}
	ex := &exchanger{c: c, inj: inj, retries: cfg.maxRetries(), out: out, rec: rec}

	for r := 0; r < rounds; r++ {
		if err := killOrStall(inj, c, r, rec); err != nil {
			return err
		}

		// Stage: build the round's concatenated base buffer and model its
		// host→device transfer.
		sp := rec.Begin(rank, r, obs.PhaseStageH2D)
		buf := buildBuffer(chunkFor(chunks, r))
		data := buf.Data()
		h2dIn := dev.Config().TransferTime(int64(len(data)))
		sp.End(h2dIn, uint64(len(data)))

		// Parse & process: run the parse (or supermer) kernel.
		sp = rec.Begin(rank, r, obs.PhaseParse)
		var (
			sendWords [][]uint64 // kmer mode payload
			sendWire  [][]byte   // supermer mode payload
			parseSt   gpusim.KernelStats
			err       error
		)
		if cfg.Mode == KmerMode {
			sendWords, parseSt, err = kernels.ParseKmers(dev, kernels.ParseConfig{
				Enc: cfg.Enc, K: cfg.K, NumDest: c.Size(), Canonical: cfg.Canonical,
			}, data)
		} else {
			sendWire, parseSt, err = kernels.BuildSupermers(dev, kernels.SupermerConfig{
				Enc: cfg.Enc, C: cfg.minimizerConfig(), NumDest: c.Size(), DestMap: destMap,
			}, data)
		}
		if err != nil {
			sp.End(0, 0)
			return err
		}
		out.parse += h2dIn + dev.Config().KernelTime(&parseSt)
		out.parseOps += parseSt.ComputeOps
		out.parseSt.Add(parseSt)

		// Per-destination counts for the announcement (and the parse span's
		// item tally).
		counts := make([]int, c.Size())
		var bytesOut, roundSent uint64
		if cfg.Mode == KmerMode {
			for d, part := range sendWords {
				counts[d] = len(part)
				roundSent += uint64(len(part))
				bytesOut += 8 * uint64(len(part))
			}
		} else {
			for d, part := range sendWire {
				counts[d] = len(part) / wire.Stride()
				roundSent += uint64(len(part) / wire.Stride())
				bytesOut += uint64(len(part))
			}
		}
		out.itemsSent += roundSent
		out.payloadSent += bytesOut
		sp.End(dev.Config().KernelTime(&parseSt), roundSent)

		// Exchange: counts via Alltoall, checksummed payload frames via
		// Alltoallv with round-level retry, and host staging (D2H out,
		// H2D in) unless GPUDirect.
		sp = rec.Begin(rank, r, obs.PhaseExchange)
		expect, err := ex.announce(counts)
		if err != nil {
			sp.End(0, 0)
			return err
		}

		var recvWords []uint64
		var recvWire []byte
		var bytesIn, roundRecv uint64
		if cfg.Mode == KmerMode {
			recv, err := ex.exchangeWords(r, sendWords, expect)
			if err != nil {
				sp.End(0, 0)
				return err
			}
			for _, part := range recv {
				bytesIn += 8 * uint64(len(part))
			}
			recvWords = flattenWords(recv)
			roundRecv = uint64(len(recvWords))
		} else {
			recv, err := ex.exchangeWire(r, wire, sendWire, expect)
			if err != nil {
				sp.End(0, 0)
				return err
			}
			for _, part := range recv {
				bytesIn += uint64(len(part))
			}
			recvWire = flattenBytes(recv)
			roundRecv = uint64(len(recvWire) / wire.Stride())
		}
		var stage time.Duration
		if !cfg.GPUDirect {
			stage = dev.Config().TransferTime(int64(bytesOut)) + dev.Config().TransferTime(int64(bytesIn))
			out.stage += stage
		}
		sp.End(stage, roundRecv)

		// Count: insert the round's received items into this rank's table
		// partition, growing it between rounds when needed.
		sp = rec.Begin(rank, r, obs.PhaseCount)
		var countSt gpusim.KernelStats
		if cfg.Mode == KmerMode {
			table, err = ensureCapacity(table, len(recvWords), cfg.tableLoad(), cfg.Probing)
			if err != nil {
				sp.End(0, 0)
				return err
			}
			countSt, err = kernels.CountKmers(dev, table, recvWords)
		} else {
			n := len(recvWire) / wire.Stride()
			table, err = ensureCapacity(table, n*cfg.Window, cfg.tableLoad(), cfg.Probing)
			if err != nil {
				sp.End(0, 0)
				return err
			}
			countSt, err = kernels.CountSupermers(dev, table, wire, recvWire)
		}
		if err != nil {
			sp.End(0, 0)
			return err
		}
		out.count += dev.Config().KernelTime(&countSt)
		out.countOps += countSt.ComputeOps
		out.countSt.Add(countSt)
		sp.End(dev.Config().KernelTime(&countSt), roundRecv)
	}

	snap := table.Snapshot()
	out.counted = snap.TotalCount()
	out.distinct = uint64(snap.Len())
	out.hist = snap.Histogram()
	out.top = snap.TopK(topKPerRank)
	if cfg.KeepTables {
		out.table = snap
	}
	return nil
}

// topKPerRank bounds the per-rank contribution to the global top-k merge.
const topKPerRank = 64

func flattenWords(recv [][]uint64) []uint64 {
	n := 0
	for _, p := range recv {
		n += len(p)
	}
	out := make([]uint64, 0, n)
	for _, p := range recv {
		out = append(out, p...)
	}
	return out
}

func flattenBytes(recv [][]byte) []byte {
	n := 0
	for _, p := range recv {
		n += len(p)
	}
	out := make([]byte, 0, n)
	for _, p := range recv {
		out = append(out, p...)
	}
	return out
}

// aggregate folds per-rank outcomes and the communication trace into the
// global Result. Phase times follow the bulk-synchronous rule: a phase ends
// when its slowest rank finishes.
func aggregate(cfg Config, trace []mpisim.TraceEntry, outcomes []rankOutcome, wall time.Duration) *Result {
	res := &Result{
		Name:         fmt.Sprintf("%s/%s", cfg.Layout.Name, cfg.Mode),
		Ranks:        cfg.Layout.Ranks(),
		Nodes:        cfg.Layout.Nodes,
		Mode:         cfg.Mode,
		GPU:          cfg.Layout.GPU != nil,
		Wall:         wall,
		Histogram:    kcount.Histogram{Counts: make(map[uint32]uint64)},
		PerRankKmers: make([]uint64, len(outcomes)),
	}
	var maxParse, maxCount, maxStage time.Duration
	for r := range outcomes {
		o := &outcomes[r]
		if o.parse > maxParse {
			maxParse = o.parse
		}
		if o.count > maxCount {
			maxCount = o.count
		}
		if o.stage > maxStage {
			maxStage = o.stage
		}
		if o.rounds > res.Rounds {
			res.Rounds = o.rounds
		}
		if o.incomplete {
			res.Incomplete = true
		}
		res.ItemsExchanged += o.itemsSent
		res.PayloadBytes += o.payloadSent
		res.TotalKmers += o.counted
		res.DistinctKmers += o.distinct
		res.PerRankKmers[r] = o.counted
		res.Histogram.Merge(o.hist)
		res.TopKmers = append(res.TopKmers, o.top...)
		res.ParseCompute += o.parseOps
		res.CountCompute += o.countOps
		res.GPUParse.Add(o.parseSt)
		res.GPUCount.Add(o.countSt)
		if cfg.KeepTables {
			res.Tables = append(res.Tables, o.table)
		}
	}
	// Ranks own disjoint k-mer partitions, so the global top-k is a merge
	// of the per-rank top lists.
	sort.Slice(res.TopKmers, func(i, j int) bool {
		if res.TopKmers[i].Count != res.TopKmers[j].Count {
			return res.TopKmers[i].Count > res.TopKmers[j].Count
		}
		return res.TopKmers[i].Key < res.TopKmers[j].Key
	})
	if len(res.TopKmers) > topKPerRank {
		res.TopKmers = res.TopKmers[:topKPerRank]
	}
	res.Modeled.Parse = maxParse
	res.Modeled.Count = maxCount

	var fabric time.Duration
	for _, e := range trace {
		if e.Bytes == nil {
			continue
		}
		t := cfg.Layout.Net.CollectiveTime(e.Bytes)
		fabric += t
		if e.Op == "alltoallv" {
			res.AlltoallvTime += t
			vs := cfg.Layout.Net.Volumes(e.Bytes)
			res.Volume.TotalBytes += vs.TotalBytes
			res.Volume.FabricBytes += vs.FabricBytes
			if vs.MaxNodeBytes > res.Volume.MaxNodeBytes {
				res.Volume.MaxNodeBytes = vs.MaxNodeBytes
			}
		}
	}
	res.Modeled.Exchange = maxStage + fabric
	return res
}
